(** An alternative persistent labelling scheme in the LSDX style (Duong &
    Zhang, cited as [8] by the paper): letter-string labels, one suffix
    per level, ordered lexicographically.  Functionally equivalent to
    {!Ordpath} — no renumbering on any insertion, all axes derivable from
    labels — with a different growth trade-off (label {e length} grows
    under both append-heavy and bisection-heavy insertion, instead of
    ORDPATH's component values / carets).

    The module exists as a second implementation of the numbering-scheme
    contract of §3.1: the test-suite drives both schemes through
    identical insertion scripts and checks they agree on order and
    parenthood; the E14 ablation compares label sizes. *)

type t

val document : t
val root : t

val compare : t -> t -> int
(** Document order: ancestors first, siblings left to right. *)

val equal : t -> t -> bool
val depth : t -> int
val parent : t -> t option
val is_ancestor : ancestor:t -> t -> bool
val is_child : parent:t -> t -> bool

val first_child : t -> t

val child_under : parent:t -> left:t option -> right:t option -> t
(** Fresh label for a child of [parent] strictly between the sibling
    bounds.  @raise Invalid_argument on bad bounds, as {!Ordpath}. *)

val append_after : t -> last:t option -> t

val to_string : t -> string
(** Slash-separated level suffixes, e.g. ["n/t/nb"]; document = ["/"]. *)

val byte_size : t -> int
(** Total label length in bytes — the growth metric of the E14
    ablation. *)
