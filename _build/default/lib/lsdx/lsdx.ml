(* Labels are lists of level suffixes; a suffix is a non-empty string over
   'a'..'z' that never ends in 'a' (so there is always room below it).
   Sibling order is lexicographic on the suffix; fresh suffixes come from
   the classic fractional-indexing midpoint construction. *)

type t = string list

let document = []

let digit_lo s i = if i < String.length s then Char.code s.[i] - Char.code 'a' else -1
let digit_hi s i = if i < String.length s then Char.code s.[i] - Char.code 'a' else 26
let chr d = Char.chr (d + Char.code 'a')

(* Smallest convenient suffix strictly greater than [s], unbounded above. *)
let after s =
  let n = String.length s in
  let rec first_non_z i = if i < n && s.[i] = 'z' then first_non_z (i + 1) else i in
  let j = first_non_z 0 in
  if j = n then s ^ "n"
  else String.sub s 0 j ^ String.make 1 (Char.chr (Char.code s.[j] + 1))

(* A suffix strictly between [lo] and [hi]; [hi = None] means unbounded.
   Requires lo < hi.  Results never end in 'a'. *)
let between_suffixes lo hi =
  match hi with
  | None -> if lo = "" then "n" else after lo
  | Some hi ->
    let buf = Buffer.create 8 in
    let rec go i =
      let da = digit_lo lo i and db = digit_hi hi i in
      let mid = (da + db) / 2 in
      if da = db then begin
        Buffer.add_char buf (chr da);
        go (i + 1)
      end
      else if db - da >= 2 && mid >= 1 then
        (* room for a one-digit split that does not end in 'a' *)
        Buffer.add_char buf (chr mid)
      else if da >= 0 then begin
        (* db = da + 1: keep lo's digit, then exceed lo's tail. *)
        Buffer.add_char buf (chr da);
        let tail =
          if i + 1 <= String.length lo then
            String.sub lo (i + 1) (String.length lo - i - 1)
          else ""
        in
        Buffer.add_string buf (if tail = "" then "n" else after tail)
      end
      else begin
        (* da = -1: descend below hi.  If hi continues with 'a' we must
           follow it and keep splitting against its tail; otherwise any
           'a'-prefixed suffix fits. *)
        Buffer.add_char buf 'a';
        if db = 0 then go (i + 1) else Buffer.add_string buf "n"
      end
    in
    go 0;
    Buffer.contents buf

let compare a b = List.compare String.compare a b
let equal a b = compare a b = 0
let depth = List.length

let parent = function
  | [] -> None
  | t ->
    (match List.rev t with
     | _ :: rev_rest -> Some (List.rev rev_rest)
     | [] -> None)

let rec is_prefix p t =
  match p, t with
  | [], _ -> true
  | _, [] -> false
  | x :: p', y :: t' -> String.equal x y && is_prefix p' t'

let is_ancestor ~ancestor t =
  List.length ancestor < List.length t && is_prefix ancestor t

let is_child ~parent:p t =
  match parent t with Some q -> equal p q | None -> false

let suffix_of ~parent:p t =
  match List.rev t with
  | s :: _ when is_child ~parent:p t -> s
  | _ -> invalid_arg "Lsdx: not a child of the given parent"

let child_under ~parent:p ~left ~right =
  let lo = match left with None -> "" | Some l -> suffix_of ~parent:p l in
  let hi = Option.map (fun r -> suffix_of ~parent:p r) right in
  (match hi with
   | Some h when String.compare lo h >= 0 ->
     invalid_arg "Lsdx.child_under: left >= right"
   | _ -> ());
  p @ [ between_suffixes lo hi ]

let first_child p = child_under ~parent:p ~left:None ~right:None
let root = first_child document

let append_after p ~last = child_under ~parent:p ~left:last ~right:None

let to_string = function [] -> "/" | t -> String.concat "/" t

let byte_size t = List.fold_left (fun acc s -> acc + String.length s) 0 t
