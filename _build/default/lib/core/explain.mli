(** Decision explanation: which rule of the policy made a node visible,
    restricted or hidden, and why a privilege does or does not hold.
    Useful for policy debugging and exercised by the CLI's [explain]
    subcommand. *)

type visibility =
  | Visible of Rule.t  (** read granted by this rule *)
  | Restricted of { position : Rule.t; read_denied : Rule.t option }
      (** shown with the RESTRICTED label *)
  | Hidden of { denied_by : Rule.t option }
      (** not covered by any accept rule ([None]) or denied ([Some]) *)
  | Pruned of Ordpath.t
      (** the node itself would be visible, but this ancestor is hidden
          (axioms 16–17 require the parent to be selected) *)
  | No_such_node

val visibility : Session.t -> Ordpath.t -> visibility

val privilege : Session.t -> Privilege.t -> Ordpath.t -> string
(** One-line explanation of the [perm] decision, naming the deciding
    rule. *)

val describe : Session.t -> Ordpath.t -> string
(** Multi-line explanation of the node's visibility and all five
    privileges. *)
