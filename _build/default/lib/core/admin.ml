type delegation = {
  privilege : Privilege.t;
  path_src : string;
  subject : string;
  with_option : bool;
  issuer : string;
  timestamp : int;
}

type t = {
  owner : string;
  policy : Policy.t;
  delegations : delegation list;  (* ascending timestamp *)
  issuers : (int * string) list;  (* rule priority -> issuer *)
  clock : int;
}

let create ~owner policy =
  if not (Subject.mem (Policy.subjects policy) owner) then
    raise (Subject.Unknown_subject owner);
  {
    owner;
    policy;
    delegations = [];
    issuers =
      List.map (fun (r : Rule.t) -> (r.priority, owner)) (Policy.rules policy);
    clock = 1 + Policy.next_priority policy;
  }

let policy t = t.policy
let owner t = t.owner
let delegations t = t.delegations
let issuer_of t ~priority = List.assoc_opt priority t.issuers

let select_path doc ~user path_src =
  let vars = [ ("USER", Xpath.Value.Str user) ] in
  Xpath.Eval.select
    (Xpath.Eval.env ~vars doc)
    (Xpath.Parser.parse_path path_src)

(* Authority: the owner everywhere; otherwise the union of the node sets
   of the delegations held (directly or through roles) for that
   privilege. *)
let authority t doc ~issuer privilege nodes =
  String.equal issuer t.owner
  ||
  let subjects = Policy.subjects t.policy in
  let covered =
    List.fold_left
      (fun acc (d : delegation) ->
        if
          Privilege.equal d.privilege privilege
          && Subject.isa subjects issuer d.subject
        then
          List.fold_left
            (fun acc id -> Ordpath.Set.add id acc)
            acc
            (select_path doc ~user:issuer d.path_src)
        else acc)
      Ordpath.Set.empty t.delegations
  in
  List.for_all (fun id -> Ordpath.Set.mem id covered) nodes

let delegation_authority t doc ~issuer privilege nodes =
  String.equal issuer t.owner
  ||
  (* Further delegation requires delegations carrying the option. *)
  let subjects = Policy.subjects t.policy in
  let covered =
    List.fold_left
      (fun acc (d : delegation) ->
        if
          d.with_option
          && Privilege.equal d.privilege privilege
          && Subject.isa subjects issuer d.subject
        then
          List.fold_left
            (fun acc id -> Ordpath.Set.add id acc)
            acc
            (select_path doc ~user:issuer d.path_src)
        else acc)
      Ordpath.Set.empty t.delegations
  in
  List.for_all (fun id -> Ordpath.Set.mem id covered) nodes

let check_subject t name =
  if Subject.mem (Policy.subjects t.policy) name then Ok ()
  else Error (Printf.sprintf "unknown subject %s" name)

let add_rule t doc ~issuer decision privilege ~path ~subject =
  match check_subject t issuer, check_subject t subject with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () ->
    (match select_path doc ~user:issuer path with
     | exception Xpath.Parser.Error msg -> Error ("bad path: " ^ msg)
     | nodes ->
       if not (authority t doc ~issuer privilege nodes) then
         Error
           (Printf.sprintf "%s has no authority to %s %s on %s" issuer
              (Rule.decision_to_string decision)
              (Privilege.to_string privilege)
              path)
       else
         let priority = max t.clock (Policy.next_priority t.policy) in
         let rule = Rule.v decision privilege ~path ~subject ~priority in
         (match Policy.add_rule t.policy rule with
          | exception Subject.Unknown_subject s ->
            Error (Printf.sprintf "unknown subject %s" s)
          | policy ->
            Ok
              {
                t with
                policy;
                issuers = (priority, issuer) :: t.issuers;
                clock = priority + 1;
              }))

let grant t doc ~issuer privilege ~path ~subject =
  add_rule t doc ~issuer Rule.Accept privilege ~path ~subject

let deny t doc ~issuer privilege ~path ~subject =
  add_rule t doc ~issuer Rule.Deny privilege ~path ~subject

let delegate t doc ~issuer ?(with_option = false) privilege ~path ~subject =
  match check_subject t issuer, check_subject t subject with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () ->
    (match select_path doc ~user:issuer path with
     | exception Xpath.Parser.Error msg -> Error ("bad path: " ^ msg)
     | nodes ->
       if not (delegation_authority t doc ~issuer privilege nodes) then
         Error
           (Printf.sprintf "%s has no grant option for %s on %s" issuer
              (Privilege.to_string privilege)
              path)
       else
         Ok
           {
             t with
             delegations =
               t.delegations
               @ [
                   {
                     privilege;
                     path_src = path;
                     subject;
                     with_option;
                     issuer;
                     timestamp = t.clock;
                   };
                 ];
             clock = t.clock + 1;
           })

let revoke_rule t ~issuer ~priority =
  match issuer_of t ~priority with
  | None -> Error (Printf.sprintf "no rule with priority %d" priority)
  | Some original when original <> issuer && issuer <> t.owner ->
    Error (Printf.sprintf "%s may not revoke a rule issued by %s" issuer original)
  | Some _ ->
    Ok
      {
        t with
        policy = Policy.revoke t.policy ~priority;
        issuers = List.remove_assoc priority t.issuers;
      }

(* Cascading revalidation: repeatedly drop delegations and rules whose
   issuer no longer holds the necessary authority, until stable.
   Validation walks items in timestamp order so authority is judged
   against the surviving earlier delegations only. *)
let revalidate t doc =
  let rec fixpoint t =
    let valid_delegation acc (d : delegation) =
      let probe = { t with delegations = acc } in
      String.equal d.issuer t.owner
      || delegation_authority probe doc ~issuer:d.issuer d.privilege
           (select_path doc ~user:d.issuer d.path_src)
    in
    let surviving =
      List.fold_left
        (fun acc d -> if valid_delegation acc d then acc @ [ d ] else acc)
        [] t.delegations
    in
    let t' = { t with delegations = surviving } in
    let rule_ok (r : Rule.t) =
      match issuer_of t' ~priority:r.priority with
      | None -> true
      | Some issuer ->
        authority t' doc ~issuer r.privilege
          (select_path doc ~user:issuer r.path_src)
    in
    let bad_rules =
      List.filter (fun r -> not (rule_ok r)) (Policy.rules t'.policy)
    in
    let t' =
      List.fold_left
        (fun t (r : Rule.t) ->
          {
            t with
            policy = Policy.revoke t.policy ~priority:r.priority;
            issuers = List.remove_assoc r.priority t.issuers;
          })
        t' bad_rules
    in
    if
      bad_rules = []
      && List.length surviving = List.length t.delegations
    then t'
    else fixpoint t'
  in
  fixpoint t

let revoke_delegation t doc ~issuer ~timestamp =
  match
    List.find_opt (fun (d : delegation) -> d.timestamp = timestamp) t.delegations
  with
  | None -> Error (Printf.sprintf "no delegation with timestamp %d" timestamp)
  | Some d when d.issuer <> issuer && issuer <> t.owner ->
    Error
      (Printf.sprintf "%s may not revoke a delegation issued by %s" issuer
         d.issuer)
  | Some _ ->
    let t =
      {
        t with
        delegations =
          List.filter
            (fun (d : delegation) -> d.timestamp <> timestamp)
            t.delegations;
      }
    in
    Ok (revalidate t doc)
