(** The five privileges of §4.3.  [Position] is the paper's novel read-side
    privilege: it reveals that a node exists (shown as [RESTRICTED] in the
    view) without revealing its label. *)

type t =
  | Position
  | Read
  | Insert
  | Update
  | Delete

val all : t list

val to_string : t -> string
val of_string : string -> t option
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val is_read_side : t -> bool
(** [Position] and [Read] govern the view; the others govern writes. *)
