type finding =
  | Dead_rule of Rule.t * string
  | Unreachable_grant of Rule.t * string
  | Idle_subject of string

module IntMap = Map.Make (Int)

let analyse policy doc =
  let subjects = Policy.subjects policy in
  let users = Subject.users subjects in
  let rules = Policy.rules policy in
  (* Walk every (user, node, privilege) decision once. *)
  let live = Hashtbl.create 16 in
  let reachable = Hashtbl.create 16 in
  let grants_something = Hashtbl.create 16 in
  List.iter
    (fun user ->
      let perm = Perm.compute policy doc ~user in
      let view = View.derive doc perm in
      Xmldoc.Document.iter
        (fun (n : Xmldoc.Node.t) ->
          List.iter
            (fun priv ->
              match Perm.deciding_rule perm priv n.id with
              | None -> ()
              | Some r ->
                Hashtbl.replace live r.priority ();
                if r.decision = Rule.Accept && Privilege.is_read_side priv
                then begin
                  Hashtbl.replace grants_something r.priority ();
                  if Xmldoc.Document.mem view n.id then
                    Hashtbl.replace reachable r.priority ()
                end)
            Privilege.all)
        doc)
    users;
  let dead =
    List.filter_map
      (fun (r : Rule.t) ->
        if Hashtbl.mem live r.priority then None
        else
          let reason =
            if not (List.exists (fun u -> Subject.isa subjects u r.subject) users)
            then "no declared user is covered by its subject"
            else
              "it never decides a privilege for any user and node (empty \
               selection or always overridden by later rules)"
          in
          Some (Dead_rule (r, reason)))
      rules
  in
  let unreachable =
    List.filter_map
      (fun (r : Rule.t) ->
        if
          Hashtbl.mem grants_something r.priority
          && not (Hashtbl.mem reachable r.priority)
        then
          Some
            (Unreachable_grant
               ( r,
                 "every node it grants is pruned from the view by a hidden \
                  ancestor (axioms 16-17 require the parent selected)" ))
        else None)
      rules
  in
  let idle =
    List.filter_map
      (fun user ->
        if Policy.rules_for policy ~user = [] then Some (Idle_subject user)
        else None)
      users
  in
  dead @ unreachable @ idle

let to_string = function
  | Dead_rule (r, why) ->
    Format.asprintf "dead rule: %a — %s" Rule.pp r why
  | Unreachable_grant (r, why) ->
    Format.asprintf "unreachable grant: %a — %s" Rule.pp r why
  | Idle_subject s -> Printf.sprintf "idle subject: no rule applies to %s" s

let report policy doc =
  String.concat "\n" (List.map to_string (analyse policy doc))
