(** Security rules (§4.3): [rule(accept|deny, r, p, s, t)].  The priority
    [t] is the timestamp at which the administrator issued the rule; the
    most recent applicable rule wins (axiom 14). *)

type decision = Accept | Deny

type t = {
  decision : decision;
  privilege : Privilege.t;
  path : Xpath.Ast.expr;
  path_src : string;  (** concrete syntax, kept for printing/encoding *)
  subject : string;
  priority : int;
}

val v :
  decision -> Privilege.t -> path:string -> subject:string -> priority:int -> t
(** @raise Xpath.Parser.Error on a bad path. *)

val accept :
  Privilege.t -> path:string -> subject:string -> priority:int -> t

val deny : Privilege.t -> path:string -> subject:string -> priority:int -> t

val decision_to_string : decision -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Paper notation: [rule(accept, read, //*, staff, 10)]. *)

val uses_user_variable : t -> bool
(** Does the path mention [$USER] (rule 5 of axiom 13)?  Such rules must
    be re-evaluated per session. *)
