type decision = Accept | Deny

type t = {
  decision : decision;
  privilege : Privilege.t;
  path : Xpath.Ast.expr;
  path_src : string;
  subject : string;
  priority : int;
}

let v decision privilege ~path ~subject ~priority =
  {
    decision;
    privilege;
    path = Xpath.Parser.parse_path path;
    path_src = path;
    subject;
    priority;
  }

let accept privilege ~path ~subject ~priority =
  v Accept privilege ~path ~subject ~priority

let deny privilege ~path ~subject ~priority =
  v Deny privilege ~path ~subject ~priority

let decision_to_string = function Accept -> "accept" | Deny -> "deny"

let equal a b =
  a.decision = b.decision
  && Privilege.equal a.privilege b.privilege
  && String.equal a.path_src b.path_src
  && String.equal a.subject b.subject
  && a.priority = b.priority

let pp fmt t =
  Format.fprintf fmt "rule(%s, %a, %s, %s, %d)"
    (decision_to_string t.decision)
    Privilege.pp t.privilege t.path_src t.subject t.priority

let rec expr_uses_user (e : Xpath.Ast.expr) =
  let open Xpath.Ast in
  match e with
  | Var "USER" -> true
  | Var _ | Literal _ | Number _ -> false
  | Or (a, b) | And (a, b) | Cmp (_, a, b) | Arith (_, a, b) | Union (a, b) ->
    expr_uses_user a || expr_uses_user b
  | Neg a -> expr_uses_user a
  | Call (_, args) -> List.exists expr_uses_user args
  | Path p -> path_uses_user p
  | Filter (a, preds, steps) ->
    expr_uses_user a
    || List.exists expr_uses_user preds
    || List.exists step_uses_user steps

and path_uses_user (p : Xpath.Ast.path) = List.exists step_uses_user p.steps
and step_uses_user (s : Xpath.Ast.step) = List.exists expr_uses_user s.preds

let uses_user_variable t = expr_uses_user t.path
