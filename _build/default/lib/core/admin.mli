(** The security administration model the paper inherits from its
    predecessor [10] and omits for space (§4.3): ownership, delegation
    ("the privilege to transfer privileges", SQL's grant option) and
    cascading revocation.

    - The {e owner} may issue any rule and any delegation.
    - A {e delegation} gives a subject the authority to issue rules for
      one privilege over the nodes selected by a path — optionally with
      the right to delegate further ([with_option]).
    - An issuer may add a rule iff it holds authority for the rule's
      privilege over {e every} node its path selects on the current
      database.
    - Revoking a delegation triggers cascading revalidation: every rule
      or delegation whose issuer no longer holds authority is removed,
      to a fixpoint — the classical GRANT-OPTION cascade. *)

type t

type delegation = {
  privilege : Privilege.t;
  path_src : string;
  subject : string;  (** who receives the authority *)
  with_option : bool;  (** may the recipient delegate further? *)
  issuer : string;
  timestamp : int;
}

val create : owner:string -> Policy.t -> t
(** Starts from an existing policy; its rules are attributed to the
    owner.  @raise Subject.Unknown_subject if the owner is not
    declared. *)

val policy : t -> Policy.t
val owner : t -> string
val delegations : t -> delegation list
val issuer_of : t -> priority:int -> string option

val authority :
  t -> Xmldoc.Document.t -> issuer:string -> Privilege.t -> Ordpath.t list ->
  bool
(** Does the issuer hold (possibly delegated) authority for the privilege
    over all the given nodes? *)

val grant :
  t -> Xmldoc.Document.t -> issuer:string -> Privilege.t -> path:string ->
  subject:string -> (t, string) result

val deny :
  t -> Xmldoc.Document.t -> issuer:string -> Privilege.t -> path:string ->
  subject:string -> (t, string) result

val delegate :
  t -> Xmldoc.Document.t -> issuer:string -> ?with_option:bool ->
  Privilege.t -> path:string -> subject:string -> (t, string) result

val revoke_rule :
  t -> issuer:string -> priority:int -> (t, string) result
(** Only the rule's issuer or the owner may revoke it. *)

val revoke_delegation :
  t -> Xmldoc.Document.t -> issuer:string -> timestamp:int ->
  (t, string) result
(** Removes the delegation, then cascades: rules and delegations whose
    issuer lost authority are removed, to a fixpoint. *)
