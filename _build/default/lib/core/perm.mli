(** Conflict resolution (axiom 14): computes the actual privileges
    [perm(s, n, r)] a user holds on every node, from the accept/deny rules
    applicable to the user.  Because priorities are unique timestamps,
    axiom 14 is equivalent to "the most recent applicable rule covering
    [(r, n)] decides", which is how the computation proceeds. *)

type t

val compute : Policy.t -> Xmldoc.Document.t -> user:string -> t
(** Evaluates every applicable rule's path on the source document, with
    [$USER] bound to [user], in ascending priority order. *)

val user : t -> string

val holds : t -> Privilege.t -> Ordpath.t -> bool
(** [perm(user, n, r)]. *)

val permitted : t -> Privilege.t -> Ordpath.Set.t
(** All nodes on which the privilege is held. *)

val deciding_rule : t -> Privilege.t -> Ordpath.t -> Rule.t option
(** The rule that decided the privilege on this node ([None] when no
    applicable rule covers it — the closed-world default deny). *)

val facts : t -> Xmldoc.Document.t -> (Privilege.t * Ordpath.t) list
(** All [perm] facts over nodes of the document, for display and for the
    Datalog parity checks. *)
