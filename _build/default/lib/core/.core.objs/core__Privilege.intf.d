lib/core/privilege.mli: Format
