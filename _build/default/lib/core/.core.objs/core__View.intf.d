lib/core/view.mli: Ordpath Perm Xmldoc
