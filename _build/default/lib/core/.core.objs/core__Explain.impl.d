lib/core/explain.ml: Buffer Format List Option Ordpath Perm Printf Privilege Rule Session Xmldoc
