lib/core/policy_lang.mli: Policy
