lib/core/privilege.ml: Format Int
