lib/core/session.ml: Perm Policy Subject View Xmldoc Xpath
