lib/core/secure_update.mli: Format Ordpath Privilege Session Xupdate
