lib/core/xslt_enforcer.mli: Policy Xmldoc Xslt
