lib/core/policy.mli: Format Privilege Rule Subject
