lib/core/view.ml: Ordpath Perm Privilege String Xmldoc
