lib/core/explain.mli: Ordpath Privilege Rule Session
