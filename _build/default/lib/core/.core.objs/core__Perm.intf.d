lib/core/perm.mli: Ordpath Policy Privilege Rule Xmldoc
