lib/core/rule.ml: Format List Privilege String Xpath
