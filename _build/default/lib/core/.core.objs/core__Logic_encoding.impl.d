lib/core/logic_encoding.ml: Datalog List Ordpath Perm Policy Printf Privilege Rule Secure_update Session Subject Xmldoc Xpath Xupdate
