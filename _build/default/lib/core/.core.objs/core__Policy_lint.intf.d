lib/core/policy_lint.mli: Policy Rule Xmldoc
