lib/core/lazy_view.ml: Buffer Hashtbl List Ordpath Perm Privilege Session View Xmldoc Xpath
