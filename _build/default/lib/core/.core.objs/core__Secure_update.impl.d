lib/core/secure_update.ml: Format List Ordpath Privilege Session String Xmldoc Xpath Xupdate
