lib/core/admin.mli: Ordpath Policy Privilege Xmldoc
