lib/core/policy_lint.ml: Format Hashtbl Int List Map Perm Policy Printf Privilege Rule String Subject View Xmldoc
