lib/core/lazy_view.mli: Ordpath Perm Session Xmldoc Xpath
