lib/core/policy.ml: Format Int List Printf Rule Subject
