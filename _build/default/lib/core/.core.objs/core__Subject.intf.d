lib/core/subject.mli: Format
