lib/core/perm.ml: Array Hashtbl List Ordpath Policy Privilege Rule Xmldoc Xpath
