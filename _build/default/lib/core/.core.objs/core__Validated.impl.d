lib/core/validated.ml: List Secure_update Session Xmldoc
