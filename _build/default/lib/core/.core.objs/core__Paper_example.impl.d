lib/core/paper_example.ml: List Policy Policy_lang Privilege Rule Session String Subject Xmldoc
