lib/core/logic_encoding.mli: Datalog Ordpath Privilege Session Xupdate
