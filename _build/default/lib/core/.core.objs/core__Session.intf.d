lib/core/session.mli: Ordpath Perm Policy Privilege Xmldoc Xpath
