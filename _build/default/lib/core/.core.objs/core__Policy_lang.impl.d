lib/core/policy_lang.ml: Buffer List Policy Printf Privilege Rule String Subject Xpath
