lib/core/subject.ml: Format List Map Option Printf Set String
