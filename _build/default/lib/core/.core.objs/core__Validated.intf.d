lib/core/validated.mli: Secure_update Session Xmldoc Xupdate
