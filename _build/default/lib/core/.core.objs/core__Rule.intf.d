lib/core/rule.mli: Format Privilege Xpath
