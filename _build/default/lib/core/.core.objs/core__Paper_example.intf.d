lib/core/paper_example.mli: Ordpath Policy Session Subject Xmldoc
