lib/core/admin.ml: List Ordpath Policy Printf Privilege Rule String Subject Xpath
