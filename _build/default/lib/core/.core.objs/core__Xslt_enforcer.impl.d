lib/core/xslt_enforcer.ml: List Policy Privilege Rule View Xpath Xslt
