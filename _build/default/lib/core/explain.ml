type visibility =
  | Visible of Rule.t
  | Restricted of { position : Rule.t; read_denied : Rule.t option }
  | Hidden of { denied_by : Rule.t option }
  | Pruned of Ordpath.t
  | No_such_node

let would_be_selected perm id =
  Perm.holds perm Privilege.Read id || Perm.holds perm Privilege.Position id

let visibility session id =
  let source = Session.source session in
  let perm = Session.perm session in
  if not (Xmldoc.Document.mem source id) then No_such_node
  else if Ordpath.equal id Ordpath.document then
    (* Axiom 15: the document node is always in the view. *)
    Visible
      (Rule.v Rule.Accept Privilege.Read ~path:"/" ~subject:"*" ~priority:0)
  else
    (* Find the outermost hidden ancestor, if any. *)
    let rec outermost_hidden acc = function
      | [] -> acc
      | (n : Xmldoc.Node.t) :: rest ->
        if n.kind = Xmldoc.Node.Document then outermost_hidden acc rest
        else if would_be_selected perm n.id then outermost_hidden acc rest
        else outermost_hidden (Some n.id) rest
    in
    match
      outermost_hidden None (Xmldoc.Document.ancestors source id)
    with
    | Some ancestor -> if would_be_selected perm id then Pruned ancestor
      else Hidden { denied_by = Perm.deciding_rule perm Privilege.Read id }
    | None ->
      if Perm.holds perm Privilege.Read id then
        Visible (Option.get (Perm.deciding_rule perm Privilege.Read id))
      else if Perm.holds perm Privilege.Position id then
        Restricted
          {
            position = Option.get (Perm.deciding_rule perm Privilege.Position id);
            read_denied = Perm.deciding_rule perm Privilege.Read id;
          }
      else Hidden { denied_by = Perm.deciding_rule perm Privilege.Read id }

let rule_to_string r = Format.asprintf "%a" Rule.pp r

let privilege session priv id =
  let perm = Session.perm session in
  match Perm.deciding_rule perm priv id with
  | Some r when r.Rule.decision = Rule.Accept ->
    Printf.sprintf "%s granted by %s" (Privilege.to_string priv)
      (rule_to_string r)
  | Some r ->
    Printf.sprintf "%s denied by %s" (Privilege.to_string priv)
      (rule_to_string r)
  | None ->
    Printf.sprintf "%s denied: no applicable rule (closed world)"
      (Privilege.to_string priv)

let describe session id =
  let buf = Buffer.create 128 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match visibility session id with
   | No_such_node -> line "node %s does not exist" (Ordpath.to_string id)
   | Visible r ->
     line "node %s is visible (%s)" (Ordpath.to_string id) (rule_to_string r)
   | Restricted { position; read_denied } ->
     line "node %s is shown RESTRICTED (position via %s%s)"
       (Ordpath.to_string id) (rule_to_string position)
       (match read_denied with
        | Some r -> "; read denied by " ^ rule_to_string r
        | None -> "; no read rule applies")
   | Hidden { denied_by } ->
     line "node %s is hidden%s" (Ordpath.to_string id)
       (match denied_by with
        | Some r -> " (read denied by " ^ rule_to_string r ^ ")"
        | None -> " (no applicable read rule: closed world)")
   | Pruned ancestor ->
     line "node %s is pruned: ancestor %s is hidden" (Ordpath.to_string id)
       (Ordpath.to_string ancestor));
  List.iter
    (fun priv -> line "  %s" (privilege session priv id))
    Privilege.all;
  Buffer.contents buf
