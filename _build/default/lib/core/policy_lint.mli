(** Static policy analysis against a document: the mistakes the model
    makes easy to write and hard to notice.

    - {b Dead rules}: a rule none of whose selected nodes it actually
      decides for any user (every covered (user, node) pair is overridden
      by a later rule, or the path selects nothing).
    - {b Unreachable grants}: a read/position grant on nodes that can
      never appear in the holder's view because an ancestor is always
      hidden — the figure-1 pruning subtlety (axioms 16–17 require the
      parent selected).
    - {b Idle subjects}: declared users no rule (directly or through
      roles) ever applies to.

    The analysis is per-document (paths select node sets), matching how
    {!Perm} resolves the policy. *)

type finding =
  | Dead_rule of Rule.t * string  (** rule + why *)
  | Unreachable_grant of Rule.t * string
  | Idle_subject of string

val analyse : Policy.t -> Xmldoc.Document.t -> finding list

val to_string : finding -> string
val report : Policy.t -> Xmldoc.Document.t -> string
(** All findings, one per line; empty string when the policy is clean. *)
