type outcome =
  | Applied of Session.t * Secure_update.report
  | Rejected of { report : Secure_update.report; violations : int }

let apply ~schema ?root session op =
  let session', report = Secure_update.apply session op in
  match Xmldoc.Schema.validate ?root schema (Session.source session') with
  | [] -> Applied (session', report)
  | violations -> Rejected { report; violations = List.length violations }

let apply_all ~schema ?root session ops =
  let session, outcomes =
    List.fold_left
      (fun (session, outcomes) op ->
        match apply ~schema ?root session op with
        | Applied (session', _) as o -> (session', o :: outcomes)
        | Rejected _ as o -> (session, o :: outcomes))
      (session, []) ops
  in
  (session, List.rev outcomes)
