(** The XSLT-based security processor of §5: compiles a (policy, user)
    pair into an XSLT stylesheet whose application to the source database
    produces exactly the view of axioms 15–17.

    The compilation maps the model onto XSLT 1.0 mechanics:
    - each read rule becomes a template in mode [read] — accepts copy the
      node and recurse, denies re-dispatch the node into mode [position];
    - each position rule becomes a template in mode [position] — accepts
      emit the [RESTRICTED] mask (an element or a text node, depending on
      the kind of the current node) and recurse into mode [read], denies
      emit nothing;
    - rule priorities become template priorities, so XSLT's
      highest-priority-wins conflict resolution computes axiom 14;
    - low-priority catch-all templates implement the closed-world
      default deny;
    - [$USER] rules stay parameterised: the stylesheet is compiled once
      per policy and evaluated with the session's variable bindings.

    Known limitation (outside the paper's model): comment nodes visible
    only through [position] are dropped rather than masked. *)

val compile : Policy.t -> user:string -> Xslt.Ast.t
(** Uses the rules applicable to [user] (its role closure).  The result
    is independent of any document. *)

val enforce : Policy.t -> Xmldoc.Document.t -> user:string -> Xmldoc.Document.t
(** [Xslt.Engine.apply] of the compiled stylesheet, with [$USER] bound.
    The output document is freshly numbered; it serializes identically
    to {!View.derive}'s view. *)

val stylesheet_source : Policy.t -> user:string -> string
(** The generated stylesheet, printable XSLT (for inspection and the
    quickstart example). *)
