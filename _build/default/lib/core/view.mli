(** View derivation (axioms 15–17): the pruned copy of the source database
    a user is permitted to see.  A node is selected iff its parent is
    selected and the user holds [read] or [position] on it; position-only
    nodes are shown with the {!restricted} label.  Selected nodes keep
    their source identifiers (the paper: "selected nodes are not
    renumbered in the view"). *)

val restricted : string
(** ["RESTRICTED"] — the label of §2.1, after Sandhu & Jajodia. *)

val derive : Xmldoc.Document.t -> Perm.t -> Xmldoc.Document.t
(** The view as a first-class document: every query facility works on
    it unchanged. *)

val is_restricted : Xmldoc.Document.t -> Ordpath.t -> bool
(** Is the node shown with the [RESTRICTED] label in this view?  (Checks
    the label, so apply it to view documents only.) *)

val visible_count : Xmldoc.Document.t -> int
(** Number of nodes excluding the document node. *)
