type t =
  | Position
  | Read
  | Insert
  | Update
  | Delete

let all = [ Position; Read; Insert; Update; Delete ]

let to_string = function
  | Position -> "position"
  | Read -> "read"
  | Insert -> "insert"
  | Update -> "update"
  | Delete -> "delete"

let of_string = function
  | "position" -> Some Position
  | "read" -> Some Read
  | "insert" -> Some Insert
  | "update" -> Some Update
  | "delete" -> Some Delete
  | _ -> None

let rank = function
  | Position -> 0
  | Read -> 1
  | Insert -> 2
  | Update -> 3
  | Delete -> 4

let compare a b = Int.compare (rank a) (rank b)
let equal a b = a = b
let pp fmt t = Format.pp_print_string fmt (to_string t)

let is_read_side = function
  | Position | Read -> true
  | Insert | Update | Delete -> false
