(** The paper's logical theory, executable: encodes the database, the
    subject hierarchy, the policy and the session as Datalog facts, and
    axioms 11–25 as clauses, then derives [perm], the view ([node_view])
    and the updated database ([node_dbnew]) bottom-up — the same
    derivations the author's Prolog prototype performed.  Each derivation
    has a parity check against the direct OCaml implementation, used by
    the differential test-suite and the E10 bench.

    Encoding notes (DESIGN.md discusses them):
    - node identifiers are symbols via {!Ordpath.to_string};
    - [xpath(p, n, v)] and [xpath_view(p, n, v)] are {e materialised} by
      running the XPath engine, exactly as the prototype shipped xpath
      facts derived by its own interpreter;
    - [create_number(n, n', o, n'')] facts come from the ordpath
      allocator (the paper: "we do not give axioms for create_number
      since they depend on the numbering scheme");
    - the [cancelled] auxiliary predicate linearises axiom 14's negated
      conjunction; [priority(t)] facts make it range-restricted. *)

val session_db : Session.t -> Datalog.Db.t
(** EDB: [node/2], [child/2], [element/1], [doc_node/1], [subject/1],
    [isa/2] base edges, [rule/5], [priority/1], [xpath/3], [logged/1]. *)

val base_program : Datalog.Clause.t list
(** Axioms 11–12 (isa closure), tree geometry (descendant_or_self), and
    axiom 14 ([perm] with the [cancelled] auxiliary). *)

val view_program : Datalog.Clause.t list
(** Axioms 15–17 ([node_view]). *)

val update_program : Session.t -> Xupdate.Op.t -> Datalog.Db.t * Datalog.Clause.t list
(** EDB additions ([xpath_view/3], [child_view/2], [node_tree/2],
    [create_number/4]) and clauses (axioms 18–25) for one operation. *)

val derive_view : Session.t -> (Ordpath.t * string) list
(** The [node_view] facts, sorted by identifier. *)

val derive_perm : Session.t -> (Privilege.t * Ordpath.t) list
(** The [perm(user, n, r)] facts for the logged user. *)

val derive_dbnew : Session.t -> Xupdate.Op.t -> (Ordpath.t * string) list
(** The [node_dbnew] facts after the operation. *)

val view_parity : Session.t -> bool
(** Datalog view = direct {!View.derive} view. *)

val perm_parity : Session.t -> bool

val update_parity : Session.t -> Xupdate.Op.t -> bool
(** Datalog [node_dbnew] = the node facts of the direct
    {!Secure_update.apply} result. *)
