let read_mode = "read"
let position_mode = "position"
let catch_all_pattern = "//node() | //@*"
let catch_all_priority = -1e9

let apply_read_children =
  Xslt.Ast.Apply_templates
    {
      select = Some (Xpath.Parser.parse "@* | node()");
      mode = Some read_mode;
    }

let dispatch_self_to_position =
  Xslt.Ast.Apply_templates
    {
      select = Some (Xpath.Parser.parse ".");
      mode = Some position_mode;
    }

(* The RESTRICTED mask: an element wrapper for elements, a text node for
   text — the two node kinds the paper's figures show masked. *)
let restricted_mask =
  Xslt.Ast.Choose
    [
      {
        Xslt.Ast.test = Some (Xpath.Parser.parse "self::*");
        body =
          [
            Xslt.Ast.Literal_element
              {
                name = View.restricted;
                attrs = [];
                body =
                  [
                    Xslt.Ast.Apply_templates
                      { select = None; mode = Some read_mode };
                  ];
              };
          ];
      };
      {
        Xslt.Ast.test = Some (Xpath.Parser.parse "self::text()");
        body = [ Xslt.Ast.Text View.restricted ];
      };
      { Xslt.Ast.test = None; body = [] };
    ]

let compile policy ~user =
  let applicable = Policy.rules_for policy ~user in
  let rule_template (r : Rule.t) =
    let priority = float_of_int r.priority in
    match r.privilege, r.decision with
    | Privilege.Read, Rule.Accept ->
      Some
        (Xslt.Ast.template ~mode:read_mode ~priority r.path_src
           [ Xslt.Ast.Copy [ apply_read_children ] ])
    | Privilege.Read, Rule.Deny ->
      Some
        (Xslt.Ast.template ~mode:read_mode ~priority r.path_src
           [ dispatch_self_to_position ])
    | Privilege.Position, Rule.Accept ->
      Some
        (Xslt.Ast.template ~mode:position_mode ~priority r.path_src
           [ restricted_mask ])
    | Privilege.Position, Rule.Deny ->
      Some (Xslt.Ast.template ~mode:position_mode ~priority r.path_src [])
    | (Privilege.Insert | Privilege.Update | Privilege.Delete), _ ->
      (* Write privileges do not affect the view. *)
      None
  in
  Xslt.Ast.stylesheet
    ([
       (* Axiom 15: the document node is always selected; its children
          enter the read mode. *)
       Xslt.Ast.template "/"
         [ Xslt.Ast.Apply_templates { select = None; mode = Some read_mode } ];
       (* Closed world: nodes covered by no read rule may still be
          position-visible; nodes covered by no position rule vanish. *)
       Xslt.Ast.template ~mode:read_mode ~priority:catch_all_priority
         catch_all_pattern
         [ dispatch_self_to_position ];
       Xslt.Ast.template ~mode:position_mode ~priority:catch_all_priority
         catch_all_pattern [];
     ]
    @ List.filter_map rule_template applicable)

let enforce policy doc ~user =
  let vars = [ ("USER", Xpath.Value.Str user) ] in
  Xslt.Engine.apply ~vars (compile policy ~user) doc

let stylesheet_source policy ~user =
  Xslt.Parse.to_string (compile policy ~user)
