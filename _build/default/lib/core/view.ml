module D = Xmldoc.Document

let restricted = "RESTRICTED"

(* Document order visits parents before children, so a single fold
   implements the recursive axioms 15-17. *)
let derive doc perm =
  D.fold
    (fun (n : Xmldoc.Node.t) view ->
      if n.kind = Xmldoc.Node.Document then view (* axiom 15: always there *)
      else
        let parent_selected =
          match Ordpath.parent n.id with
          | None -> false
          | Some pid -> D.mem view pid
        in
        if not parent_selected then view
        else if Perm.holds perm Privilege.Read n.id then
          D.add_node view n (* axiom 16 *)
        else if Perm.holds perm Privilege.Position n.id then
          D.add_node view { n with Xmldoc.Node.label = restricted } (* axiom 17 *)
        else view)
    doc D.empty

let is_restricted view id =
  match D.label view id with
  | Some l -> String.equal l restricted
  | None -> false

let visible_count view = D.size view - 1
