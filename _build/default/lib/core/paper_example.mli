(** The paper's running example, in one place: the medical-records
    database of figure 2, the subject hierarchy of figure 3, and the
    twelve-rule policy of axiom 13 — reused by the tests, the examples and
    the reproduction benches.

    The two rules whose concrete XPath syntax in the paper is
    non-standard are transliterated (documented in DESIGN.md):
    - [//*]-style label wildcards become [//node()] because the paper's
      dialect lets [*] match text nodes;
    - rule 5's [/patients/descendant-or-self::*[$USER]] becomes
      [/patients/*[name() = $USER]/descendant-or-self::node()]. *)

val document : unit -> Xmldoc.Document.t
(** Figure 2: franck (otolarynology, tonsillitis) and robert (pneumology,
    pneumonia) under [/patients]. *)

val document_xml : string

val subjects : Subject.t
(** Figure 3: staff > {secretary > beaufort, doctor > laporte,
    epidemiologist > richard}; patient > {robert, franck}. *)

val policy : Policy.t
(** Axiom 13, priorities 10–21, on top of {!subjects}. *)

val policy_text : string
(** The same policy in the {!Policy_lang} concrete syntax. *)

val login : string -> Session.t
(** Session on the figure-2 database under {!policy}. *)

(** Users of figure 3. *)

val beaufort : string  (** secretary *)

val laporte : string  (** doctor *)

val richard : string  (** epidemiologist *)

val robert : string  (** patient *)

val franck : string  (** patient *)

val find : Xmldoc.Document.t -> string -> Ordpath.t
(** First node carrying the given label (raises [Not_found]); handy for
    addressing figure-2 nodes the way the paper writes n1 … n7. *)
