type regex =
  | Name of string
  | Seq of regex list
  | Choice of regex list
  | Opt of regex
  | Star of regex
  | Plus of regex

type content_model =
  | Empty
  | Any
  | Pcdata
  | Mixed of string list
  | Children of regex

type attr_type =
  | Cdata
  | Id
  | Idref
  | Nmtoken
  | Enum of string list

type attr_default =
  | Required
  | Implied
  | Fixed of string
  | Default of string

type attr_decl = {
  attr_name : string;
  attr_type : attr_type;
  default : attr_default;
}

module StrMap = Map.Make (String)

type t = {
  elements : content_model StrMap.t;
  attlists : attr_decl list StrMap.t;
}

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- content-model matching (Brzozowski derivatives) -------------------- *)

(* Internal regex with the empty-word and empty-set constants. *)
type d =
  | DEps
  | DFail
  | DName of string
  | DSeq of d * d
  | DChoice of d * d
  | DStar of d

let rec lift = function
  | Name n -> DName n
  | Seq [] -> DEps
  | Seq (r :: rest) -> DSeq (lift r, lift (Seq rest))
  | Choice [] -> DFail
  | Choice [ r ] -> lift r
  | Choice (r :: rest) -> DChoice (lift r, lift (Choice rest))
  | Opt r -> DChoice (lift r, DEps)
  | Star r -> DStar (lift r)
  | Plus r ->
    let d = lift r in
    DSeq (d, DStar d)

let rec nullable = function
  | DEps | DStar _ -> true
  | DFail | DName _ -> false
  | DSeq (a, b) -> nullable a && nullable b
  | DChoice (a, b) -> nullable a || nullable b

(* Light smart constructors keep the derivatives small. *)
let seq a b =
  match a, b with
  | DFail, _ | _, DFail -> DFail
  | DEps, r | r, DEps -> r
  | a, b -> DSeq (a, b)

let choice a b =
  match a, b with
  | DFail, r | r, DFail -> r
  | a, b -> DChoice (a, b)

let rec deriv d x =
  match d with
  | DEps | DFail -> DFail
  | DName n -> if String.equal n x then DEps else DFail
  | DSeq (a, b) ->
    let first = seq (deriv a x) b in
    if nullable a then choice first (deriv b x) else first
  | DChoice (a, b) -> choice (deriv a x) (deriv b x)
  | DStar r -> seq (deriv r x) (DStar r)

let matches regex names =
  nullable (List.fold_left deriv (lift regex) names)

(* --- DTD parsing --------------------------------------------------------- *)

type token =
  | IDENT of string
  | PCDATA_T
  | LPAREN
  | RPAREN
  | COMMA
  | PIPE
  | STAR_T
  | PLUS_T
  | QMARK
  | STRING of string
  | HASH of string  (* REQUIRED / IMPLIED / FIXED *)
  | DECL_OPEN of string  (* ELEMENT / ATTLIST *)
  | DECL_CLOSE
  | EOF

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.' || c = ':'

let tokenize src =
  let n = String.length src in
  let rec loop i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1) acc
      | '(' -> loop (i + 1) (LPAREN :: acc)
      | ')' -> loop (i + 1) (RPAREN :: acc)
      | ',' -> loop (i + 1) (COMMA :: acc)
      | '|' -> loop (i + 1) (PIPE :: acc)
      | '*' -> loop (i + 1) (STAR_T :: acc)
      | '+' -> loop (i + 1) (PLUS_T :: acc)
      | '?' -> loop (i + 1) (QMARK :: acc)
      | '>' -> loop (i + 1) (DECL_CLOSE :: acc)
      | '"' | '\'' ->
        let quote = src.[i] in
        let rec close j =
          if j >= n then fail "unterminated string in DTD"
          else if src.[j] = quote then j
          else close (j + 1)
        in
        let stop = close (i + 1) in
        loop (stop + 1) (STRING (String.sub src (i + 1) (stop - i - 1)) :: acc)
      | '#' ->
        let rec word j = if j < n && is_name_char src.[j] then word (j + 1) else j in
        let stop = word (i + 1) in
        let w = String.sub src (i + 1) (stop - i - 1) in
        if w = "PCDATA" then loop stop (PCDATA_T :: acc)
        else loop stop (HASH w :: acc)
      | '<' ->
        if i + 3 < n && String.sub src i 4 = "<!--" then begin
          let rec close j =
            if j + 2 >= n then fail "unterminated comment in DTD"
            else if String.sub src j 3 = "-->" then j + 3
            else close (j + 1)
          in
          loop (close (i + 4)) acc
        end
        else if i + 1 < n && src.[i + 1] = '!' then begin
          let rec word j = if j < n && is_name_char src.[j] then word (j + 1) else j in
          let stop = word (i + 2) in
          loop stop (DECL_OPEN (String.sub src (i + 2) (stop - i - 2)) :: acc)
        end
        else fail "unexpected '<' in DTD"
      | c when is_name_char c ->
        let rec word j = if j < n && is_name_char src.[j] then word (j + 1) else j in
        let stop = word i in
        loop stop (IDENT (String.sub src i (stop - i)) :: acc)
      | c -> fail "unexpected character %C in DTD" c
  in
  loop 0 []

type cursor = { mutable toks : token list }

let peek c = match c.toks with [] -> EOF | t :: _ -> t
let advance c = match c.toks with [] -> () | _ :: r -> c.toks <- r

let expect c t =
  if peek c = t then advance c else fail "malformed DTD declaration"

let ident c =
  match peek c with
  | IDENT n ->
    advance c;
    n
  | _ -> fail "expected a name in DTD"

(* children model: cp ::= (name | '(' choice-or-seq ')') modifier? *)
let rec parse_cp c =
  let base =
    match peek c with
    | IDENT n ->
      advance c;
      Name n
    | LPAREN ->
      advance c;
      let inner = parse_group c in
      expect c RPAREN;
      inner
    | _ -> fail "expected a content particle"
  in
  parse_modifier c base

and parse_modifier c base =
  match peek c with
  | STAR_T ->
    advance c;
    Star base
  | PLUS_T ->
    advance c;
    Plus base
  | QMARK ->
    advance c;
    Opt base
  | _ -> base

and parse_group c =
  let first = parse_cp c in
  match peek c with
  | COMMA ->
    let rec more acc =
      match peek c with
      | COMMA ->
        advance c;
        more (parse_cp c :: acc)
      | _ -> List.rev acc
    in
    Seq (more [ first ])
  | PIPE ->
    let rec more acc =
      match peek c with
      | PIPE ->
        advance c;
        more (parse_cp c :: acc)
      | _ -> List.rev acc
    in
    Choice (more [ first ])
  | _ -> Seq [ first ]

let parse_content_model c =
  match peek c with
  | IDENT "EMPTY" ->
    advance c;
    Empty
  | IDENT "ANY" ->
    advance c;
    Any
  | LPAREN ->
    advance c;
    (match peek c with
     | PCDATA_T ->
       advance c;
       (match peek c with
        | RPAREN ->
          advance c;
          (* optional trailing * on (#PCDATA)* *)
          (match peek c with STAR_T -> advance c | _ -> ());
          Pcdata
        | PIPE ->
          let rec names acc =
            match peek c with
            | PIPE ->
              advance c;
              names (ident c :: acc)
            | RPAREN ->
              advance c;
              expect c STAR_T;
              List.rev acc
            | _ -> fail "malformed mixed content model"
          in
          Mixed (names [])
        | _ -> fail "malformed #PCDATA model")
     | _ ->
       let inner = parse_group c in
       expect c RPAREN;
       Children (parse_modifier c inner))
  | _ -> fail "expected a content model"

let parse_attr_decls c =
  let rec loop acc =
    match peek c with
    | IDENT attr_name ->
      advance c;
      let attr_type =
        match peek c with
        | IDENT "CDATA" ->
          advance c;
          Cdata
        | IDENT "ID" ->
          advance c;
          Id
        | IDENT "IDREF" ->
          advance c;
          Idref
        | IDENT "NMTOKEN" ->
          advance c;
          Nmtoken
        | LPAREN ->
          advance c;
          let rec names acc =
            let n = ident c in
            match peek c with
            | PIPE ->
              advance c;
              names (n :: acc)
            | RPAREN ->
              advance c;
              List.rev (n :: acc)
            | _ -> fail "malformed enumerated attribute type"
          in
          Enum (names [])
        | _ -> fail "expected an attribute type"
      in
      let default =
        match peek c with
        | HASH "REQUIRED" ->
          advance c;
          Required
        | HASH "IMPLIED" ->
          advance c;
          Implied
        | HASH "FIXED" ->
          advance c;
          (match peek c with
           | STRING s ->
             advance c;
             Fixed s
           | _ -> fail "#FIXED needs a value")
        | STRING s ->
          advance c;
          Default s
        | _ -> fail "expected an attribute default"
      in
      loop ({ attr_name; attr_type; default } :: acc)
    | DECL_CLOSE -> List.rev acc
    | _ -> fail "malformed ATTLIST"
  in
  loop []

let of_string src =
  let c = { toks = tokenize src } in
  let rec loop schema =
    match peek c with
    | EOF -> schema
    | DECL_OPEN "ELEMENT" ->
      advance c;
      let name = ident c in
      let model = parse_content_model c in
      expect c DECL_CLOSE;
      loop { schema with elements = StrMap.add name model schema.elements }
    | DECL_OPEN "ATTLIST" ->
      advance c;
      let name = ident c in
      let decls = parse_attr_decls c in
      expect c DECL_CLOSE;
      let existing =
        Option.value ~default:[] (StrMap.find_opt name schema.attlists)
      in
      loop
        { schema with attlists = StrMap.add name (existing @ decls) schema.attlists }
    | DECL_OPEN d -> fail "unsupported declaration <!%s" d
    | _ -> fail "expected a declaration"
  in
  loop { elements = StrMap.empty; attlists = StrMap.empty }

let declared t = List.map fst (StrMap.bindings t.elements)
let content_model t name = StrMap.find_opt name t.elements
let attributes t name =
  Option.value ~default:[] (StrMap.find_opt name t.attlists)

(* --- validation ----------------------------------------------------------- *)

let rec regex_to_string = function
  | Name n -> n
  | Seq rs -> "(" ^ String.concat ", " (List.map regex_to_string rs) ^ ")"
  | Choice rs -> "(" ^ String.concat " | " (List.map regex_to_string rs) ^ ")"
  | Opt r -> regex_to_string r ^ "?"
  | Star r -> regex_to_string r ^ "*"
  | Plus r -> regex_to_string r ^ "+"

let is_nmtoken s =
  s <> "" && String.for_all is_name_char s

let validate ?root t doc =
  let problems = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match root, Document.root_element doc with
   | Some expected, Some r ->
     if not (String.equal r.Node.label expected) then
       complain "root element is <%s>, expected <%s>" r.Node.label expected
   | Some expected, None -> complain "no root element; expected <%s>" expected
   | None, _ -> ());
  Document.iter
    (fun (n : Node.t) ->
      if n.kind = Node.Element then begin
        let where = Ordpath.to_string n.id in
        match content_model t n.label with
        | None -> complain "<%s> at %s is not declared" n.label where
        | Some model ->
          let kids = Document.children doc n.id in
          let element_kids =
            List.filter_map
              (fun (k : Node.t) ->
                if k.kind = Node.Element then Some k.label else None)
              kids
          in
          let has_text =
            List.exists (fun (k : Node.t) -> k.kind = Node.Text) kids
          in
          (match model with
           | Any -> ()
           | Empty ->
             if element_kids <> [] || has_text then
               complain "<%s> at %s must be EMPTY" n.label where
           | Pcdata ->
             if element_kids <> [] then
               complain "<%s> at %s allows text only" n.label where
           | Mixed allowed ->
             List.iter
               (fun kid ->
                 if not (List.mem kid allowed) then
                   complain "<%s> at %s does not allow <%s> in mixed content"
                     n.label where kid)
               element_kids
           | Children regex ->
             if has_text then
               complain "<%s> at %s does not allow text content" n.label where;
             if not (matches regex element_kids) then
               complain "<%s> at %s: children (%s) do not match %s" n.label
                 where
                 (String.concat ", " element_kids)
                 (regex_to_string regex));
          (* attributes *)
          let decls = attributes t n.label in
          let present =
            List.map
              (fun (a : Node.t) -> (a.label, Document.string_value doc a.id))
              (Document.attributes doc n.id)
          in
          List.iter
            (fun (name, value) ->
              match
                List.find_opt (fun d -> String.equal d.attr_name name) decls
              with
              | None ->
                complain "<%s> at %s: undeclared attribute %s" n.label where name
              | Some d ->
                (match d.attr_type with
                 | Enum allowed when not (List.mem value allowed) ->
                   complain "<%s> at %s: attribute %s = %S not in (%s)" n.label
                     where name value
                     (String.concat "|" allowed)
                 | (Id | Idref | Nmtoken) when not (is_nmtoken value) ->
                   complain "<%s> at %s: attribute %s = %S is not a name token"
                     n.label where name value
                 | _ -> ());
                (match d.default with
                 | Fixed fixed when not (String.equal value fixed) ->
                   complain "<%s> at %s: attribute %s must be fixed to %S"
                     n.label where name fixed
                 | _ -> ()))
            present;
          List.iter
            (fun d ->
              if
                d.default = Required
                && not (List.mem_assoc d.attr_name present)
              then
                complain "<%s> at %s: missing required attribute %s" n.label
                  where d.attr_name)
            decls
      end)
    doc;
  List.rev !problems

let is_valid ?root t doc = validate ?root t doc = []
