(** Document types, which §3.1 sets aside ("for the sake of simplicity we
    shall not consider the type of XML documents"): a DTD subset —
    element content models and attribute lists — with validation.

    Supported declarations:
    {v
    <!ELEMENT patients (patient* )>
    <!ELEMENT patient (service, diagnosis?, visit* )>
    <!ELEMENT service (#PCDATA)>
    <!ELEMENT note (#PCDATA | b | i)* >
    <!ELEMENT sep EMPTY>
    <!ATTLIST visit n CDATA #REQUIRED kind (routine|emergency) "routine">
    v}

    Content models are matched with Brzozowski derivatives over the
    sequence of child element names.  Combined with
    [Core.Validated] this makes the integrity side of the paper's
    §4.4.2 confidentiality-vs-integrity trade-off enforceable. *)

type regex =
  | Name of string
  | Seq of regex list
  | Choice of regex list
  | Opt of regex
  | Star of regex
  | Plus of regex

type content_model =
  | Empty
  | Any
  | Pcdata  (** text only: [#PCDATA] *)
  | Mixed of string list  (** [#PCDATA | a | b], repeated *)
  | Children of regex

type attr_type =
  | Cdata
  | Id
  | Idref
  | Nmtoken
  | Enum of string list

type attr_default =
  | Required
  | Implied
  | Fixed of string
  | Default of string

type attr_decl = {
  attr_name : string;
  attr_type : attr_type;
  default : attr_default;
}

type t

exception Parse_error of string

val of_string : string -> t
(** Parses a sequence of [<!ELEMENT …>] / [<!ATTLIST …>] declarations
    (comments allowed).  @raise Parse_error *)

val declared : t -> string list
(** Declared element names, sorted. *)

val content_model : t -> string -> content_model option
val attributes : t -> string -> attr_decl list

val matches : regex -> string list -> bool
(** Does a sequence of child element names satisfy the model? *)

val validate : ?root:string -> t -> Document.t -> string list
(** Violations, human-readable; [[]] when valid.  Checks: the root
    element name when [root] is given, every declared element's content
    model and attribute list, and that no undeclared element or
    attribute appears under a declared parent.  Elements with no
    declaration at all are reported. *)

val is_valid : ?root:string -> t -> Document.t -> bool
