let check doc =
  let problems = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match Document.find doc Ordpath.document with
   | None -> complain "the document node is missing"
   | Some n ->
     if n.Node.kind <> Node.Document then complain "the document node has a wrong kind";
     if n.Node.label <> "/" then complain "the document node is mislabelled");
  Document.iter
    (fun (n : Node.t) ->
      let id = Ordpath.to_string n.id in
      (* Identifiers survive a components round-trip iff well-formed. *)
      (match Ordpath.of_components (Ordpath.to_components n.id) with
       | exception Invalid_argument _ -> complain "node %s: malformed identifier" id
       | _ -> ());
      (match n.kind with
       | Node.Document ->
         if not (Ordpath.equal n.id Ordpath.document) then
           complain "node %s: non-root node of document kind" id
       | Node.Element | Node.Attribute | Node.Text | Node.Comment ->
         (match Ordpath.parent n.id with
          | None -> complain "node %s: non-document node without a parent" id
          | Some pid ->
            if not (Document.mem doc pid) then
              complain "node %s: parent %s missing" id (Ordpath.to_string pid)));
      (match n.kind with
       | Node.Text | Node.Comment ->
         if Document.children doc n.id <> [] then
           complain "node %s: %s node with children" id
             (Node.kind_to_string n.kind)
       | Node.Attribute ->
         List.iter
           (fun (k : Node.t) ->
             if k.kind <> Node.Text then
               complain "node %s: attribute with non-text child %s" id
                 (Ordpath.to_string k.id))
           (Document.children doc n.id)
       | Node.Element | Node.Document -> ()))
    doc;
  List.iter
    (fun (n : Node.t) ->
      if n.kind = Node.Text then
        complain "document-level text node %s" (Ordpath.to_string n.id))
    (Document.children doc Ordpath.document);
  List.rev !problems

let check_document doc =
  let base = check doc in
  let elements =
    List.filter
      (fun (n : Node.t) -> n.kind = Node.Element)
      (Document.children doc Ordpath.document)
  in
  if List.length elements > 1 then
    base @ [ "more than one document-level element" ]
  else base

let is_valid doc = check doc = []
