type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment

type t = {
  id : Ordpath.t;
  kind : kind;
  label : string;
}

let v ~id ~kind label = { id; kind; label }

let kind_to_string = function
  | Document -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"
  | Comment -> "comment"

let equal a b =
  Ordpath.equal a.id b.id && a.kind = b.kind && String.equal a.label b.label

let pp fmt { id; kind; label } =
  Format.fprintf fmt "%a:%s(%s)" Ordpath.pp id (kind_to_string kind) label

let pp_fact fmt { id; label; _ } =
  Format.fprintf fmt "node(%a, %s)" Ordpath.pp id label
