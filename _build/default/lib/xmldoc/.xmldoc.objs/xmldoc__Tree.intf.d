lib/xmldoc/tree.mli: Format
