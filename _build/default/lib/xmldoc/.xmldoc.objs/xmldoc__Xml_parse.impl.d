lib/xmldoc/xml_parse.ml: Buffer Document List Option Printf String Tree Uchar
