lib/xmldoc/node.ml: Format Ordpath String
