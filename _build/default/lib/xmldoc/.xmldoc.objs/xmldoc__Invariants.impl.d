lib/xmldoc/invariants.ml: Document List Node Ordpath Printf
