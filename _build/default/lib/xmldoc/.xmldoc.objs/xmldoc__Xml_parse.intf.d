lib/xmldoc/xml_parse.mli: Document Tree
