lib/xmldoc/tree.ml: Format List String
