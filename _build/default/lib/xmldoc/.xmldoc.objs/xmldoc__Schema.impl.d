lib/xmldoc/schema.ml: Document List Map Node Option Ordpath Printf String
