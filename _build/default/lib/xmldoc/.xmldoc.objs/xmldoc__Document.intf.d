lib/xmldoc/document.mli: Node Ordpath Tree
