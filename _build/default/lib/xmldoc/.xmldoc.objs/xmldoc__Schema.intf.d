lib/xmldoc/schema.mli: Document
