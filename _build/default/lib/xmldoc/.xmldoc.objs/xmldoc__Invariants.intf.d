lib/xmldoc/invariants.mli: Document
