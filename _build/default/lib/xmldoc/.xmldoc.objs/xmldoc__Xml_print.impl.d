lib/xmldoc/xml_print.ml: Buffer Document Format List Node Option Ordpath Printf String Tree
