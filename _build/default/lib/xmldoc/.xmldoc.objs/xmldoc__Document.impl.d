lib/xmldoc/document.ml: Buffer List Node Option Ordpath Seq Tree
