lib/xmldoc/xml_print.mli: Document Format Ordpath Tree
