lib/xmldoc/node.mli: Format Ordpath
