(** Structural well-formedness checks over a document store, used by the
    failure-injection test-suites after random update sequences.  A valid
    store satisfies:

    - the document node is present, with label ["/"] and kind [Document];
    - every node's identifier is a well-formed {!Ordpath} label;
    - every non-document node's parent identifier is present (the store
      is closed under parenthood — views and databases both are trees);
    - text and comment nodes are leaves; attribute nodes carry only text
      children; only the document node has kind [Document];
    - the document node carries no text children (XML well-formedness);
    - element children of the document node number at most one for a
      well-formed XML document ({!check_document} only; views may prune
      the root element away). *)

val check : Document.t -> string list
(** Violations, human-readable; [[]] when the store is a valid tree. *)

val check_document : Document.t -> string list
(** {!check} plus the single-root-element XML constraint. *)

val is_valid : Document.t -> bool
