type t =
  | Element of string * t list
  | Attr of string * string
  | Text of string
  | Comment of string

let element name kids = Element (name, kids)
let attr name value = Attr (name, value)
let text s = Text s
let comment s = Comment s

let name = function
  | Element (n, _) -> n
  | Attr (n, _) -> n
  | Text s -> s
  | Comment s -> s

let children = function
  | Element (_, kids) -> kids
  | Attr (_, value) -> [ Text value ]
  | Text _ | Comment _ -> []

let rec equal a b =
  match a, b with
  | Element (na, ka), Element (nb, kb) ->
    String.equal na nb && List.equal equal ka kb
  | Attr (na, va), Attr (nb, vb) -> String.equal na nb && String.equal va vb
  | Text a, Text b | Comment a, Comment b -> String.equal a b
  | (Element _ | Attr _ | Text _ | Comment _), _ -> false

let rec size t = 1 + List.fold_left (fun acc k -> acc + size k) 0 (children t)

let rec pp fmt = function
  | Element (n, kids) ->
    Format.fprintf fmt "@[<hv 2>%s(%a)@]" n
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
      kids
  | Attr (n, v) -> Format.fprintf fmt "@%s=%S" n v
  | Text s -> Format.fprintf fmt "%S" s
  | Comment s -> Format.fprintf fmt "<!--%s-->" s
