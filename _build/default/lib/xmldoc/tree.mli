(** Un-numbered XML fragments: pure trees used as parser output and as the
    [TREE] parameter of the XUpdate insertion operations (§3.4.2).  A
    fragment becomes part of a document once {!Document.add_subtree}
    allocates persistent identifiers for its nodes. *)

type t =
  | Element of string * t list
  | Attr of string * string
  | Text of string
  | Comment of string

val element : string -> t list -> t
val attr : string -> string -> t
val text : string -> t
val comment : string -> t

val name : t -> string
(** The label the node will carry: tag name, attribute name, character
    data, or comment text. *)

val children : t -> t list
val equal : t -> t -> bool
val size : t -> int
(** Total number of nodes, counting attribute values as text children. *)

val pp : Format.formatter -> t -> unit
