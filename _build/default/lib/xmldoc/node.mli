(** Nodes of the XML data model of §3.1: each node is a pair of a unique
    persistent identifier and a label, plus a node kind.  Element labels are
    tag names; text labels are the character data; attribute labels are the
    attribute name (the attribute value is stored as a single text child,
    which keeps the [(id, label)] model uniform and lets the paper's
    rename/update axioms apply to attributes as well). *)

type kind =
  | Document  (** the unique parentless node, label ["/"] *)
  | Element
  | Attribute
  | Text
  | Comment

type t = {
  id : Ordpath.t;
  kind : kind;
  label : string;
}

val v : id:Ordpath.t -> kind:kind -> string -> t

val kind_to_string : kind -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val pp_fact : Format.formatter -> t -> unit
(** Prints the paper's [node(n, v)] fact notation, e.g.
    [node(1.3, diagnosis)]. *)
