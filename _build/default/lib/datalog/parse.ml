exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type token =
  | IDENT of string  (* lower-case: symbol / predicate *)
  | VARIABLE of string
  | INTEGER of int
  | QUOTED of string
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | TURNSTILE
  | NOT
  | OP of Clause.cmp
  | EOF

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_lower c || is_upper c || is_digit c || c = '-' || c = '_'

let tokenize src =
  let n = String.length src in
  let rec loop i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1) acc
      | '%' ->
        let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
        loop (eol i) acc
      | '(' -> loop (i + 1) (LPAREN :: acc)
      | ')' -> loop (i + 1) (RPAREN :: acc)
      | ',' -> loop (i + 1) (COMMA :: acc)
      | '.' -> loop (i + 1) (PERIOD :: acc)
      | ':' ->
        if i + 1 < n && src.[i + 1] = '-' then loop (i + 2) (TURNSTILE :: acc)
        else fail "unexpected ':' at offset %d" i
      | '=' -> loop (i + 1) (OP Clause.Eq :: acc)
      | '!' ->
        if i + 1 < n && src.[i + 1] = '=' then loop (i + 2) (OP Clause.Ne :: acc)
        else fail "unexpected '!' at offset %d" i
      | '<' ->
        if i + 1 < n && src.[i + 1] = '=' then loop (i + 2) (OP Clause.Le :: acc)
        else loop (i + 1) (OP Clause.Lt :: acc)
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then loop (i + 2) (OP Clause.Ge :: acc)
        else loop (i + 1) (OP Clause.Gt :: acc)
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then fail "unterminated quoted symbol"
          else if src.[j] = '\\' && j + 1 < n && src.[j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            scan (j + 2)
          end
          else if src.[j] = '\'' then j + 1
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        let next = scan (i + 1) in
        loop next (QUOTED (Buffer.contents buf) :: acc)
      | '-' when i + 1 < n && is_digit src.[i + 1] ->
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let stop = num (i + 1) in
        loop stop (INTEGER (int_of_string (String.sub src i (stop - i))) :: acc)
      | c when is_digit c ->
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let stop = num i in
        loop stop (INTEGER (int_of_string (String.sub src i (stop - i))) :: acc)
      | c when is_lower c ->
        let rec ident j =
          if j < n && is_ident_char src.[j] then ident (j + 1) else j
        in
        let stop = ident i in
        let word = String.sub src i (stop - i) in
        if word = "not" then loop stop (NOT :: acc)
        else loop stop (IDENT word :: acc)
      | c when is_upper c ->
        let rec ident j =
          if j < n && is_ident_char src.[j] then ident (j + 1) else j
        in
        let stop = ident i in
        loop stop (VARIABLE (String.sub src i (stop - i)) :: acc)
      | c -> fail "unexpected character %C at offset %d" c i
  in
  loop 0 []

type cursor = { mutable toks : token list }

let peek c = match c.toks with [] -> EOF | t :: _ -> t
let advance c = match c.toks with [] -> () | _ :: r -> c.toks <- r

let parse_term c =
  match peek c with
  | VARIABLE v ->
    advance c;
    Term.Var v
  | IDENT s ->
    advance c;
    Term.Sym s
  | QUOTED s ->
    advance c;
    Term.Sym s
  | INTEGER i ->
    advance c;
    Term.Int i
  | _ -> fail "expected a term"

let parse_atom c =
  match peek c with
  | IDENT pred | QUOTED pred ->
    advance c;
    if peek c = LPAREN then begin
      advance c;
      let rec args acc =
        let t = parse_term c in
        match peek c with
        | COMMA ->
          advance c;
          args (t :: acc)
        | RPAREN ->
          advance c;
          List.rev (t :: acc)
        | _ -> fail "expected ',' or ')' in atom arguments"
      in
      Clause.atom pred (args [])
    end
    else Clause.atom pred []
  | _ -> fail "expected a predicate name"

let parse_literal c =
  match peek c with
  | NOT ->
    advance c;
    Clause.Neg (parse_atom c)
  | VARIABLE _ | INTEGER _ ->
    (* comparison: term OP term *)
    let x = parse_term c in
    (match peek c with
     | OP op ->
       advance c;
       Clause.Cmp (op, x, parse_term c)
     | _ -> fail "expected a comparison operator")
  | IDENT _ | QUOTED _ ->
    (* Could be an atom or [sym OP term]; look ahead. *)
    let saved = c.toks in
    let a = parse_atom c in
    (match peek c, a.Clause.args with
     | OP op, [] ->
       c.toks <- saved;
       let x = parse_term c in
       (match peek c with
        | OP op' when op' = op ->
          advance c;
          Clause.Cmp (op, x, parse_term c)
        | _ -> fail "expected a comparison operator")
     | _ -> Clause.Pos a)
  | _ -> fail "expected a literal"

let parse_clause c =
  let head = parse_atom c in
  match peek c with
  | PERIOD ->
    advance c;
    Clause.clause head []
  | EOF -> Clause.clause head []
  | TURNSTILE ->
    advance c;
    let rec body acc =
      let l = parse_literal c in
      match peek c with
      | COMMA ->
        advance c;
        body (l :: acc)
      | PERIOD ->
        advance c;
        List.rev (l :: acc)
      | EOF -> List.rev (l :: acc)
      | _ -> fail "expected ',' or '.' after a literal"
    in
    Clause.clause head (body [])
  | _ -> fail "expected ':-' or '.' after the head"

let program src =
  let c = { toks = tokenize src } in
  let rec loop acc =
    if peek c = EOF then List.rev acc else loop (parse_clause c :: acc)
  in
  loop []

let clause src =
  match program src with
  | [ cl ] -> cl
  | _ -> fail "expected exactly one clause"

let atom src =
  let c = { toks = tokenize src } in
  let a = parse_atom c in
  (match peek c with PERIOD -> advance c | _ -> ());
  if peek c <> EOF then fail "trailing tokens after the atom";
  a
