type t =
  | Var of string
  | Sym of string
  | Int of int

let var name = Var name
let sym name = Sym name
let int i = Int i

let is_ground = function Var _ -> false | Sym _ | Int _ -> true

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Var _, (Sym _ | Int _) -> -1
  | Sym _, Var _ -> 1
  | Sym x, Sym y -> String.compare x y
  | Sym _, Int _ -> -1
  | Int _, (Var _ | Sym _) -> 1
  | Int x, Int y -> Stdlib.compare x y

let equal a b = compare a b = 0

let plain_symbol s =
  s <> ""
  && (s.[0] >= 'a' && s.[0] <= 'z')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s

let to_string = function
  | Var v -> v
  | Int i -> string_of_int i
  | Sym s ->
    if plain_symbol s then s
    else "'" ^ String.concat "\\'" (String.split_on_char '\'' s) ^ "'"

let pp fmt t = Format.pp_print_string fmt (to_string t)
