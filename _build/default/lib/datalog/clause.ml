type atom = {
  pred : string;
  args : Term.t list;
}

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of cmp * Term.t * Term.t

type t = {
  head : atom;
  body : literal list;
}

let atom pred args = { pred; args }
let fact pred args = { head = { pred; args }; body = [] }
let clause head body = { head; body }

let vars_of_terms terms =
  List.filter_map (function Term.Var v -> Some v | _ -> None) terms

let head_vars t = List.sort_uniq String.compare (vars_of_terms t.head.args)

let positive_body_vars t =
  List.sort_uniq String.compare
    (List.concat_map
       (function Pos a -> vars_of_terms a.args | Neg _ | Cmp _ -> [])
       t.body)

let check_safety t =
  let positive = positive_body_vars t in
  let bound v = List.mem v positive in
  let check_vars where vars =
    match List.find_opt (fun v -> not (bound v)) vars with
    | None -> Ok ()
    | Some v ->
      Error
        (Printf.sprintf "unsafe clause: variable %s in %s is not bound by a positive body atom"
           v where)
  in
  let rec check_body = function
    | [] -> Ok ()
    | Pos _ :: rest -> check_body rest
    | Neg a :: rest ->
      (match check_vars ("not " ^ a.pred) (vars_of_terms a.args) with
       | Ok () -> check_body rest
       | Error _ as e -> e)
    | Cmp (_, x, y) :: rest ->
      (match check_vars "a comparison" (vars_of_terms [ x; y ]) with
       | Ok () -> check_body rest
       | Error _ as e -> e)
  in
  match check_vars ("the head of " ^ t.head.pred) (head_vars t) with
  | Ok () -> check_body t.body
  | Error _ as e -> e

let atom_equal a b =
  String.equal a.pred b.pred && List.equal Term.equal a.args b.args

let literal_equal a b =
  match a, b with
  | Pos x, Pos y | Neg x, Neg y -> atom_equal x y
  | Cmp (o, x, y), Cmp (o', x', y') ->
    o = o' && Term.equal x x' && Term.equal y y'
  | (Pos _ | Neg _ | Cmp _), _ -> false

let equal a b =
  atom_equal a.head b.head && List.equal literal_equal a.body b.body

let cmp_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "!="

let pp_atom fmt { pred; args } =
  if args = [] then Format.pp_print_string fmt pred
  else
    Format.fprintf fmt "%s(%s)" pred
      (String.concat ", " (List.map Term.to_string args))

let pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg a -> Format.fprintf fmt "not %a" pp_atom a
  | Cmp (op, x, y) ->
    Format.fprintf fmt "%a %s %a" Term.pp x (cmp_to_string op) Term.pp y

let pp fmt { head; body } =
  if body = [] then Format.fprintf fmt "%a." pp_atom head
  else
    Format.fprintf fmt "%a :- %s." pp_atom head
      (String.concat ", "
         (List.map (Format.asprintf "%a" pp_literal) body))

let to_string t = Format.asprintf "%a" pp t
