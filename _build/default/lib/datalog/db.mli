(** Fact store: ground atoms grouped by predicate, with a first-argument
    index to speed up the joins the access-control rules perform. *)

type t

val empty : t

val add : t -> Clause.atom -> t
(** @raise Invalid_argument if the atom is not ground. *)

val add_fact : t -> string -> Term.t list -> t
val add_all : t -> Clause.atom list -> t
val mem : t -> Clause.atom -> bool

val facts : t -> string -> Term.t list list
(** All tuples of a predicate, in insertion-independent sorted order. *)

val all : t -> Clause.atom list

val matching : t -> string -> Term.t list -> Term.t list list
(** [matching db pred pattern]: tuples of [pred] that agree with [pattern]
    on its ground positions.  Uses the first-argument index when the first
    pattern position is ground. *)

val count : t -> int
val predicates : t -> string list
val union : t -> t -> t
val equal_on : string -> t -> t -> bool
(** Do both stores hold the same tuples for the given predicate? *)

val pp : Format.formatter -> t -> unit
