(** Concrete syntax for programs and facts, in the usual Datalog style:

    {v
    % tree geometry (§3.3)
    descendant(X, Y) :- child(X, Y).
    descendant(X, Z) :- child(X, Y), descendant(Y, Z).
    node('1.3', diagnosis).
    cancelled(S, R, N, T) :- rule(deny, R, P, S2, T2), T2 > T.
    v}

    Identifiers starting with an upper-case letter or [_] are variables;
    lower-case identifiers and ['...'] literals are symbols; integers are
    priorities.  [not] introduces negation; [%] starts a comment. *)

exception Error of string

val program : string -> Clause.t list
(** @raise Error on a syntax error. *)

val clause : string -> Clause.t
(** Parses a single clause (terminating ['.'] optional).
    @raise Error *)

val atom : string -> Clause.atom
(** Parses a single (possibly non-ground) atom. @raise Error *)
