lib/datalog/term.mli: Format
