lib/datalog/clause.mli: Format Term
