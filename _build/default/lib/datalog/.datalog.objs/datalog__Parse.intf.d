lib/datalog/parse.mli: Clause
