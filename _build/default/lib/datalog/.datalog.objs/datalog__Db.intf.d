lib/datalog/db.mli: Clause Format Term
