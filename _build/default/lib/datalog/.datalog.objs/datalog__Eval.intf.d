lib/datalog/eval.mli: Clause Db Term
