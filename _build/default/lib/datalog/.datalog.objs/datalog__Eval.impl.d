lib/datalog/eval.ml: Clause Db Int List Map Option Set String Term
