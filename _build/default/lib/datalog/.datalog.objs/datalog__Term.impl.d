lib/datalog/term.ml: Format Stdlib String
