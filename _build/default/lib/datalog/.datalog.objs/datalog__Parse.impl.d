lib/datalog/parse.ml: Buffer Clause List Printf String Term
