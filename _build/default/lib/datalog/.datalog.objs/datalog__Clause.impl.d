lib/datalog/clause.ml: Format List Printf String Term
