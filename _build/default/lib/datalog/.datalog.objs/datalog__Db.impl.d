lib/datalog/db.ml: Clause Format List Map Option Set String Term
