module Tuple = struct
  type t = Term.t list

  let compare = List.compare Term.compare
end

module TupleSet = Set.Make (Tuple)
module StrMap = Map.Make (String)

module TermMap = Map.Make (struct
  type t = Term.t

  let compare = Term.compare
end)

type relation = {
  tuples : TupleSet.t;
  by_first : TupleSet.t TermMap.t;
}

type t = relation StrMap.t

let empty = StrMap.empty

let empty_relation = { tuples = TupleSet.empty; by_first = TermMap.empty }

let add (t : t) (a : Clause.atom) =
  if not (List.for_all Term.is_ground a.Clause.args) then
    invalid_arg "Db.add: non-ground atom";
  let rel =
    Option.value ~default:empty_relation (StrMap.find_opt a.Clause.pred t)
  in
  if TupleSet.mem a.Clause.args rel.tuples then t
  else
    let rel =
      {
        tuples = TupleSet.add a.Clause.args rel.tuples;
        by_first =
          (match a.Clause.args with
           | [] -> rel.by_first
           | first :: _ ->
             let bucket =
               Option.value ~default:TupleSet.empty
                 (TermMap.find_opt first rel.by_first)
             in
             TermMap.add first (TupleSet.add a.Clause.args bucket) rel.by_first);
      }
    in
    StrMap.add a.Clause.pred rel t

let add_fact t pred args = add t (Clause.atom pred args)
let add_all t atoms = List.fold_left add t atoms

let mem (t : t) (a : Clause.atom) =
  match StrMap.find_opt a.Clause.pred t with
  | None -> false
  | Some rel -> TupleSet.mem a.Clause.args rel.tuples

let facts t pred =
  match StrMap.find_opt pred t with
  | None -> []
  | Some rel -> TupleSet.elements rel.tuples

let all t =
  StrMap.fold
    (fun pred rel acc ->
      TupleSet.fold (fun args acc -> Clause.atom pred args :: acc) rel.tuples acc)
    t []
  |> List.rev

let matching t pred pattern =
  match StrMap.find_opt pred t with
  | None -> []
  | Some rel ->
    let candidates =
      match pattern with
      | (Term.Sym _ | Term.Int _) as first :: _ ->
        Option.value ~default:TupleSet.empty (TermMap.find_opt first rel.by_first)
      | _ -> rel.tuples
    in
    let agrees tuple =
      List.length tuple = List.length pattern
      && List.for_all2
           (fun p v ->
             match p with Term.Var _ -> true | p -> Term.equal p v)
           pattern tuple
    in
    TupleSet.fold
      (fun tuple acc -> if agrees tuple then tuple :: acc else acc)
      candidates []
    |> List.rev

let count t =
  StrMap.fold (fun _ rel acc -> acc + TupleSet.cardinal rel.tuples) t 0

let predicates t = List.map fst (StrMap.bindings t)

let union a b =
  StrMap.fold
    (fun pred rel acc ->
      TupleSet.fold (fun args acc -> add_fact acc pred args) rel.tuples acc)
    b a

let equal_on pred a b =
  let rel t =
    Option.value ~default:empty_relation (StrMap.find_opt pred t)
  in
  TupleSet.equal (rel a).tuples (rel b).tuples

let pp fmt t =
  List.iter
    (fun atom -> Format.fprintf fmt "%a.@." Clause.pp_atom atom)
    (all t)
