(** Horn clauses with stratified negation and comparison builtins — the
    shape of every formula in the paper ("all the logical formulae given in
    this paper are Horn clauses", §5). *)

type atom = {
  pred : string;
  args : Term.t list;
}

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of cmp * Term.t * Term.t

type t = {
  head : atom;
  body : literal list;
}

val atom : string -> Term.t list -> atom
val fact : string -> Term.t list -> t
val clause : atom -> literal list -> t

val head_vars : t -> string list
val positive_body_vars : t -> string list

val check_safety : t -> (unit, string) result
(** Range restriction: every variable in the head, in a negated atom, or
    in a comparison must occur in some positive body atom. *)

val atom_equal : atom -> atom -> bool
val equal : t -> t -> bool

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
