(** Terms of the Datalog dialect used to encode the paper's theory:
    variables, symbolic constants (node identifiers, labels, subjects,
    paths) and integers (rule priorities). *)

type t =
  | Var of string
  | Sym of string
  | Int of int

val var : string -> t
val sym : string -> t
val int : int -> t

val is_ground : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** Symbols needing quoting are printed as ['...'] literals. *)

val pp : Format.formatter -> t -> unit
