(** Bottom-up evaluation: stratification followed by semi-naive fixpoint
    per stratum.  Computes the perfect model of a stratified program — the
    same least model the paper's Prolog prototype enumerates, under the
    closed world assumption of §3. *)

exception Unsafe of string
(** A clause fails the range-restriction check. *)

exception Unstratifiable of string
(** Negation occurs in a recursive cycle. *)

val stratify : Clause.t list -> (string * int) list
(** Stratum number of every predicate defined by the program.
    @raise Unstratifiable *)

val solve : Db.t -> Clause.t list -> Db.t
(** [solve edb program] extends [edb] with every fact derivable by
    [program].
    @raise Unsafe
    @raise Unstratifiable *)

val query : Db.t -> Clause.t list -> string -> Term.t list -> Term.t list list
(** [query edb program pred pattern] solves and returns the tuples of
    [pred] matching [pattern]. *)

val naive_solve : Db.t -> Clause.t list -> Db.t
(** Reference implementation (naive iteration to fixpoint), kept for
    differential testing against {!solve}. *)
