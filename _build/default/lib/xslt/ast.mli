(** Abstract syntax of the XSLT 1.0 subset used by the security processor
    of the paper's §5 ("we are currently implementing an XSLT-based
    security processor based on our model"): template rules with match
    patterns, modes and priorities, and the instructions needed to copy,
    mask or prune nodes. *)

type instruction =
  | Apply_templates of {
      select : Xpath.Ast.expr option;
          (** default: child nodes (attributes excluded, as XSLT) *)
      mode : string option;
    }
  | Copy of instruction list
      (** shallow copy of the current node; the body produces element
          content *)
  | Copy_of of Xpath.Ast.expr  (** deep verbatim copy of selected nodes *)
  | Text of string
  | Value_of of Xpath.Ast.expr  (** string value of the selection *)
  | Literal_element of {
      name : string;
      attrs : (string * string) list;
      body : instruction list;
    }
  | Element_inst of {
      name : Xpath.Ast.expr;  (** evaluated to the element name *)
      body : instruction list;
    }  (** [xsl:element] *)
  | Attribute_inst of {
      name : Xpath.Ast.expr;
      body : instruction list;  (** instantiated and string-concatenated *)
    }  (** [xsl:attribute] *)
  | Comment_inst of instruction list  (** [xsl:comment] *)
  | If of Xpath.Ast.expr * instruction list
  | Choose of branch list

and branch = {
  test : Xpath.Ast.expr option;  (** [None] = [xsl:otherwise] *)
  body : instruction list;
}

type template = {
  match_src : string;
  match_expr : Xpath.Ast.expr;
  mode : string option;
  priority : float;
  body : instruction list;
}

type t = {
  templates : template list;  (** stylesheet order: later wins ties *)
}

val template :
  ?mode:string -> ?priority:float -> string -> instruction list -> template
(** Parses the match pattern; default priority 0.
    @raise Xpath.Parser.Error *)

val stylesheet : template list -> t
val pp : Format.formatter -> t -> unit
