open Xmldoc

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let attr name kids =
  List.find_map
    (function Tree.Attr (n, v) when n = name -> Some v | _ -> None)
    kids

let content kids =
  List.filter (function Tree.Attr _ -> false | _ -> true) kids

let select_attr instr kids =
  match attr "select" kids with
  | Some s -> Xpath.Parser.parse s
  | None -> fail "%s: missing select attribute" instr

(* Computed names use the attribute-value-template brace convention:
   name="{expr}" evaluates, anything else is the literal name. *)
let name_expr v =
  let n = String.length v in
  if n >= 2 && v.[0] = '{' && v.[n - 1] = '}' then
    Xpath.Parser.parse (String.sub v 1 (n - 2))
  else Xpath.Ast.Literal v

let rec instruction (t : Tree.t) : Ast.instruction list =
  match t with
  | Tree.Text s -> [ Ast.Text s ]
  | Tree.Comment _ -> []
  | Tree.Attr _ -> []
  | Tree.Element ("xsl:apply-templates", kids) ->
    [ Ast.Apply_templates
        {
          select = Option.map Xpath.Parser.parse (attr "select" kids);
          mode = attr "mode" kids;
        } ]
  | Tree.Element ("xsl:copy", kids) ->
    [ Ast.Copy (body (content kids)) ]
  | Tree.Element ("xsl:copy-of", kids) ->
    [ Ast.Copy_of (select_attr "xsl:copy-of" kids) ]
  | Tree.Element ("xsl:text", kids) ->
    [ Ast.Text
        (String.concat ""
           (List.map
              (function
                | Tree.Text s -> s
                | _ -> fail "xsl:text: expected character content")
              (content kids))) ]
  | Tree.Element ("xsl:value-of", kids) ->
    [ Ast.Value_of (select_attr "xsl:value-of" kids) ]
  | Tree.Element ("xsl:element", kids) ->
    (match attr "name" kids with
     | None -> fail "xsl:element: missing name attribute"
     | Some name ->
       [ Ast.Element_inst { name = name_expr name; body = body (content kids) } ])
  | Tree.Element ("xsl:attribute", kids) ->
    (match attr "name" kids with
     | None -> fail "xsl:attribute: missing name attribute"
     | Some name ->
       [ Ast.Attribute_inst { name = name_expr name; body = body (content kids) } ])
  | Tree.Element ("xsl:comment", kids) ->
    [ Ast.Comment_inst (body (content kids)) ]
  | Tree.Element ("xsl:if", kids) ->
    (match attr "test" kids with
     | None -> fail "xsl:if: missing test attribute"
     | Some test -> [ Ast.If (Xpath.Parser.parse test, body (content kids)) ])
  | Tree.Element ("xsl:choose", kids) ->
    let branch (k : Tree.t) : Ast.branch option =
      match k with
      | Tree.Element ("xsl:when", ks) ->
        (match attr "test" ks with
         | None -> fail "xsl:when: missing test attribute"
         | Some test ->
           Some { Ast.test = Some (Xpath.Parser.parse test);
                  body = body (content ks) })
      | Tree.Element ("xsl:otherwise", ks) ->
        Some { Ast.test = None; body = body (content ks) }
      | Tree.Comment _ | Tree.Text _ -> None
      | t -> fail "xsl:choose: unexpected %s" (Tree.name t)
    in
    [ Ast.Choose (List.filter_map branch (content kids)) ]
  | Tree.Element (name, _) when String.length name > 4
                             && String.sub name 0 4 = "xsl:" ->
    fail "unsupported instruction %s" name
  | Tree.Element (name, kids) ->
    let attrs =
      List.filter_map
        (function Tree.Attr (k, v) -> Some (k, v) | _ -> None)
        kids
    in
    [ Ast.Literal_element { name; attrs; body = body (content kids) } ]

and body kids = List.concat_map instruction kids

let template (t : Tree.t) : Ast.template option =
  match t with
  | Tree.Element ("xsl:template", kids) ->
    let match_src =
      match attr "match" kids with
      | Some m -> m
      | None -> fail "xsl:template: missing match attribute"
    in
    let priority =
      match attr "priority" kids with
      | None -> 0.
      | Some p ->
        (match float_of_string_opt p with
         | Some f -> f
         | None -> fail "xsl:template: bad priority %s" p)
    in
    Some
      (Ast.template ?mode:(attr "mode" kids) ~priority match_src
         (body (content kids)))
  | Tree.Comment _ | Tree.Text _ | Tree.Attr _ -> None
  | t -> fail "expected xsl:template, found %s" (Tree.name t)

let of_tree = function
  | Tree.Element ("xsl:stylesheet", kids)
  | Tree.Element ("xsl:transform", kids) ->
    Ast.stylesheet (List.filter_map template (content kids))
  | t -> fail "expected <xsl:stylesheet>, found %s" (Tree.name t)

let of_string src = of_tree (Xml_parse.fragment_of_string src)

let to_string sheet = Format.asprintf "%a" Ast.pp sheet
