module D = Xmldoc.Document

exception Error of string

type state = {
  doc : D.t;
  env : Xpath.Eval.env;
  src : Xpath.Source.t;
  stylesheet : Ast.t;
  (* memoised pattern match sets, keyed by pattern source *)
  matches : (string, Ordpath.Set.t) Hashtbl.t;
}

let match_set st (t : Ast.template) =
  match Hashtbl.find_opt st.matches t.match_src with
  | Some s -> s
  | None ->
    let s =
      try
        List.fold_left
          (fun acc id -> Ordpath.Set.add id acc)
          Ordpath.Set.empty
          (Xpath.Eval.select st.env t.match_expr)
      with Xpath.Eval.Error msg ->
        raise (Error (Printf.sprintf "pattern %s: %s" t.match_src msg))
    in
    Hashtbl.add st.matches t.match_src s;
    s

(* Highest priority wins; later stylesheet position breaks ties. *)
let find_template st id mode =
  let best =
    List.fold_left
      (fun best (t : Ast.template) ->
        if t.mode <> mode then best
        else if not (Ordpath.Set.mem id (match_set st t)) then best
        else
          match best with
          | Some (b : Ast.template) when b.priority > t.priority -> best
          | _ -> Some t)
      None st.stylesheet.Ast.templates
  in
  best

let tree_children st id =
  List.filter
    (fun (n : Xmldoc.Node.t) -> n.kind <> Xmldoc.Node.Attribute)
    (D.children st.doc id)

let eval st id expr =
  Xpath.Eval.eval st.env ~context:id expr

let select_nodes st id expr =
  match eval st id expr with
  | Xpath.Value.Nodeset ns -> ns
  | _ -> raise (Error "select must evaluate to a node-set")

let rec process st id mode : Xmldoc.Tree.t list =
  match find_template st id mode with
  | Some t -> exec_body st id mode t.Ast.body
  | None ->
    (* Built-in template rules. *)
    (match D.kind st.doc id with
     | Some (Xmldoc.Node.Document | Xmldoc.Node.Element) ->
       List.concat_map
         (fun (n : Xmldoc.Node.t) -> process st n.id mode)
         (tree_children st id)
     | Some Xmldoc.Node.Text ->
       (match D.label st.doc id with
        | Some s -> [ Xmldoc.Tree.Text s ]
        | None -> [])
     | Some (Xmldoc.Node.Attribute | Xmldoc.Node.Comment) | None -> [])

and exec_body st id mode body =
  List.concat_map (exec st id mode) body

and exec st id mode : Ast.instruction -> Xmldoc.Tree.t list = function
  | Ast.Apply_templates { select; mode = new_mode } ->
    let mode = match new_mode with None -> mode | Some _ -> new_mode in
    let targets =
      match select with
      | None -> List.map (fun (n : Xmldoc.Node.t) -> n.id) (tree_children st id)
      | Some e -> select_nodes st id e
    in
    List.concat_map (fun t -> process st t mode) targets
  | Ast.Copy body ->
    (match D.find st.doc id with
     | None -> []
     | Some n ->
       (match n.kind with
        | Xmldoc.Node.Document -> exec_body st id mode body
        | Xmldoc.Node.Element ->
          [ Xmldoc.Tree.Element (n.label, exec_body st id mode body) ]
        | Xmldoc.Node.Text -> [ Xmldoc.Tree.Text n.label ]
        | Xmldoc.Node.Comment -> [ Xmldoc.Tree.Comment n.label ]
        | Xmldoc.Node.Attribute ->
          [ Xmldoc.Tree.Attr (n.label, D.string_value st.doc id) ]))
  | Ast.Copy_of e ->
    List.filter_map (D.to_tree st.doc) (select_nodes st id e)
  | Ast.Text s -> [ Xmldoc.Tree.Text s ]
  | Ast.Value_of e ->
    let s = Xpath.Value.to_string st.src (eval st id e) in
    if s = "" then [] else [ Xmldoc.Tree.Text s ]
  | Ast.Literal_element { name; attrs; body } ->
    [ Xmldoc.Tree.Element
        ( name,
          List.map (fun (k, v) -> Xmldoc.Tree.Attr (k, v)) attrs
          @ exec_body st id mode body ) ]
  | Ast.Element_inst { name; body } ->
    let n = Xpath.Value.to_string st.src (eval st id name) in
    if n = "" then raise (Error "xsl:element: empty name")
    else [ Xmldoc.Tree.Element (n, exec_body st id mode body) ]
  | Ast.Attribute_inst { name; body } ->
    let n = Xpath.Value.to_string st.src (eval st id name) in
    if n = "" then raise (Error "xsl:attribute: empty name")
    else
      let value =
        String.concat ""
          (List.map
             (function
               | Xmldoc.Tree.Text s -> s
               | _ -> raise (Error "xsl:attribute: content must be text"))
             (exec_body st id mode body))
      in
      [ Xmldoc.Tree.Attr (n, value) ]
  | Ast.Comment_inst body ->
    let text =
      String.concat ""
        (List.map
           (function
             | Xmldoc.Tree.Text s -> s
             | _ -> raise (Error "xsl:comment: content must be text"))
           (exec_body st id mode body))
    in
    [ Xmldoc.Tree.Comment text ]
  | Ast.If (test, body) ->
    if Xpath.Value.to_bool st.src (eval st id test) then
      exec_body st id mode body
    else []
  | Ast.Choose branches ->
    let rec first = function
      | [] -> []
      | { Ast.test = None; body } :: _ -> exec_body st id mode body
      | { Ast.test = Some t; body } :: rest ->
        if Xpath.Value.to_bool st.src (eval st id t) then
          exec_body st id mode body
        else first rest
    in
    first branches

let make_state ?vars stylesheet doc =
  {
    doc;
    env = Xpath.Eval.env ?vars doc;
    src = Xpath.Source.of_document doc;
    stylesheet;
    matches = Hashtbl.create 16;
  }

let apply_to_trees ?vars stylesheet doc =
  let st = make_state ?vars stylesheet doc in
  process st Ordpath.document None

let apply ?vars stylesheet doc =
  D.of_forest (apply_to_trees ?vars stylesheet doc)
