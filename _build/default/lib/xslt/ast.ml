type instruction =
  | Apply_templates of {
      select : Xpath.Ast.expr option;
      mode : string option;
    }
  | Copy of instruction list
  | Copy_of of Xpath.Ast.expr
  | Text of string
  | Value_of of Xpath.Ast.expr
  | Literal_element of {
      name : string;
      attrs : (string * string) list;
      body : instruction list;
    }
  | Element_inst of {
      name : Xpath.Ast.expr;
      body : instruction list;
    }
  | Attribute_inst of {
      name : Xpath.Ast.expr;
      body : instruction list;
    }
  | Comment_inst of instruction list
  | If of Xpath.Ast.expr * instruction list
  | Choose of branch list

and branch = {
  test : Xpath.Ast.expr option;
  body : instruction list;
}

type template = {
  match_src : string;
  match_expr : Xpath.Ast.expr;
  mode : string option;
  priority : float;
  body : instruction list;
}

type t = {
  templates : template list;
}

let template ?mode ?(priority = 0.) match_src body =
  {
    match_src;
    match_expr = Xpath.Parser.parse_path match_src;
    mode;
    priority;
    body;
  }

let stylesheet templates = { templates }

(* Attribute-value-template rendering: literals stay bare, computed names
   wear braces. *)
let name_avt = function
  | Xpath.Ast.Literal s -> s
  | e -> "{" ^ Xpath.Ast.to_string e ^ "}"

let rec pp_instruction fmt = function
  | Apply_templates { select; mode } ->
    Format.fprintf fmt "<xsl:apply-templates%s%s/>"
      (match select with
       | None -> ""
       | Some e -> Printf.sprintf " select=%S" (Xpath.Ast.to_string e))
      (match mode with None -> "" | Some m -> Printf.sprintf " mode=%S" m)
  | Copy body ->
    Format.fprintf fmt "@[<v 2><xsl:copy>%a@]@,</xsl:copy>" pp_body body
  | Copy_of e ->
    Format.fprintf fmt "<xsl:copy-of select=%S/>" (Xpath.Ast.to_string e)
  | Text s -> Format.fprintf fmt "<xsl:text>%s</xsl:text>" s
  | Value_of e ->
    Format.fprintf fmt "<xsl:value-of select=%S/>" (Xpath.Ast.to_string e)
  | Literal_element { name; attrs; body } ->
    Format.fprintf fmt "@[<v 2><%s%s>%a@]@,</%s>" name
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf " %s=%S" k v) attrs))
      pp_body body name
  | Element_inst { name; body } ->
    Format.fprintf fmt "@[<v 2><xsl:element name=%S>%a@]@,</xsl:element>"
      (name_avt name) pp_body body
  | Attribute_inst { name; body } ->
    Format.fprintf fmt "@[<v 2><xsl:attribute name=%S>%a@]@,</xsl:attribute>"
      (name_avt name) pp_body body
  | Comment_inst body ->
    Format.fprintf fmt "@[<v 2><xsl:comment>%a@]@,</xsl:comment>" pp_body body
  | If (test, body) ->
    Format.fprintf fmt "@[<v 2><xsl:if test=%S>%a@]@,</xsl:if>"
      (Xpath.Ast.to_string test) pp_body body
  | Choose branches ->
    Format.fprintf fmt "@[<v 2><xsl:choose>";
    List.iter
      (fun { test; body } ->
        match test with
        | Some t ->
          Format.fprintf fmt "@,@[<v 2><xsl:when test=%S>%a@]@,</xsl:when>"
            (Xpath.Ast.to_string t) pp_body body
        | None ->
          Format.fprintf fmt "@,@[<v 2><xsl:otherwise>%a@]@,</xsl:otherwise>"
            pp_body body)
      branches;
    Format.fprintf fmt "@]@,</xsl:choose>"

and pp_body fmt body =
  List.iter (fun i -> Format.fprintf fmt "@,%a" pp_instruction i) body

let pp fmt { templates } =
  Format.fprintf fmt "@[<v 2><xsl:stylesheet version=\"1.0\">";
  List.iter
    (fun t ->
      Format.fprintf fmt
        "@,@[<v 2><xsl:template match=%S%s priority=\"%g\">%a@]@,</xsl:template>"
        t.match_src
        (match t.mode with None -> "" | Some m -> Printf.sprintf " mode=%S" m)
        t.priority pp_body t.body)
    templates;
  Format.fprintf fmt "@]@,</xsl:stylesheet>@."
