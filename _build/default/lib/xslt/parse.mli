(** Parses the XML concrete syntax of the supported XSLT subset:
    [xsl:stylesheet], [xsl:template] (match / mode / priority),
    [xsl:apply-templates], [xsl:copy], [xsl:copy-of], [xsl:text],
    [xsl:value-of], [xsl:if], [xsl:choose]/[xsl:when]/[xsl:otherwise],
    plus literal result elements and text. *)

exception Error of string

val of_string : string -> Ast.t
(** @raise Error on unsupported or malformed constructs,
    [Xmldoc.Xml_parse.Error] on malformed XML,
    [Xpath.Parser.Error] on a bad pattern or select expression. *)

val of_tree : Xmldoc.Tree.t -> Ast.t

val to_string : Ast.t -> string
(** Pretty-prints a stylesheet; reparses to an equivalent one. *)
