lib/xslt/engine.mli: Ast Xmldoc Xpath
