lib/xslt/engine.ml: Ast Hashtbl List Ordpath Printf String Xmldoc Xpath
