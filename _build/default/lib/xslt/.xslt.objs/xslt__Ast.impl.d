lib/xslt/ast.ml: Format List Printf String Xpath
