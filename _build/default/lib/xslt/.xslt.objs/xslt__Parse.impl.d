lib/xslt/parse.ml: Ast Format List Option Printf String Tree Xml_parse Xmldoc Xpath
