lib/xslt/parse.mli: Ast Xmldoc
