lib/xslt/ast.mli: Format Xpath
