(** The XSLT processor: applies a stylesheet to a document.

    Template selection follows XSLT 1.0 conflict resolution — among the
    templates of the current mode whose pattern matches the node, the
    highest priority wins, later stylesheet position breaking ties —
    which is exactly the shape of the paper's axiom 14 and is what lets
    the security compiler map rule priorities straight onto template
    priorities. *)

exception Error of string

val apply :
  ?vars:(string * Xpath.Value.t) list -> Ast.t -> Xmldoc.Document.t ->
  Xmldoc.Document.t
(** Starts at the document node with no mode.  Built-in rules as in
    XSLT 1.0: document/element nodes apply templates to their children in
    the current mode; text nodes copy their data; attributes and comments
    produce nothing unless matched explicitly. *)

val apply_to_trees :
  ?vars:(string * Xpath.Value.t) list -> Ast.t -> Xmldoc.Document.t ->
  Xmldoc.Tree.t list
(** The raw result forest (before re-numbering into a document). *)
