open Ast

exception Error of string

type cursor = {
  mutable toks : Lexer.token list;
}

let peek c = match c.toks with [] -> Lexer.EOF | t :: _ -> t

let peek2 c =
  match c.toks with _ :: t :: _ -> t | _ -> Lexer.EOF

let advance c = match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let expect c tok =
  if peek c = tok then advance c
  else
    fail "expected %s but found %s"
      (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek c))

let node_test_of_call = function
  | "text" -> Some Text_test
  | "node" -> Some Node_test
  | "comment" -> Some Comment_test
  | _ -> None

(* The '//' abbreviation expands to /descendant-or-self::node()/. *)
let dslash_step = { axis = Descendant_or_self; test = Node_test; preds = [] }

let rec parse_expr c = parse_or c

and parse_or c =
  let rec loop left =
    match peek c with
    | Lexer.NAME "or" ->
      advance c;
      loop (Or (left, parse_and c))
    | _ -> left
  in
  loop (parse_and c)

and parse_and c =
  let rec loop left =
    match peek c with
    | Lexer.NAME "and" ->
      advance c;
      loop (And (left, parse_equality c))
    | _ -> left
  in
  loop (parse_equality c)

and parse_equality c =
  let rec loop left =
    match peek c with
    | Lexer.EQ ->
      advance c;
      loop (Cmp (Eq, left, parse_relational c))
    | Lexer.NEQ ->
      advance c;
      loop (Cmp (Neq, left, parse_relational c))
    | _ -> left
  in
  loop (parse_relational c)

and parse_relational c =
  let rec loop left =
    match peek c with
    | Lexer.LT ->
      advance c;
      loop (Cmp (Lt, left, parse_additive c))
    | Lexer.LE ->
      advance c;
      loop (Cmp (Le, left, parse_additive c))
    | Lexer.GT ->
      advance c;
      loop (Cmp (Gt, left, parse_additive c))
    | Lexer.GE ->
      advance c;
      loop (Cmp (Ge, left, parse_additive c))
    | _ -> left
  in
  loop (parse_additive c)

and parse_additive c =
  let rec loop left =
    match peek c with
    | Lexer.PLUS ->
      advance c;
      loop (Arith (Add, left, parse_multiplicative c))
    | Lexer.MINUS ->
      advance c;
      loop (Arith (Sub, left, parse_multiplicative c))
    | _ -> left
  in
  loop (parse_multiplicative c)

and parse_multiplicative c =
  let rec loop left =
    match peek c with
    | Lexer.STAR ->
      advance c;
      loop (Arith (Mul, left, parse_unary c))
    | Lexer.NAME "div" ->
      advance c;
      loop (Arith (Div, left, parse_unary c))
    | Lexer.NAME "mod" ->
      advance c;
      loop (Arith (Mod, left, parse_unary c))
    | _ -> left
  in
  loop (parse_unary c)

and parse_unary c =
  match peek c with
  | Lexer.MINUS ->
    advance c;
    Neg (parse_unary c)
  | _ -> parse_union c

and parse_union c =
  let rec loop left =
    match peek c with
    | Lexer.PIPE ->
      advance c;
      loop (Union (left, parse_path_expr c))
    | _ -> left
  in
  loop (parse_path_expr c)

(* PathExpr ::= LocationPath
              | FilterExpr (('/' | '//') RelativeLocationPath)? *)
and parse_path_expr c =
  let filter_start =
    match peek c with
    | Lexer.VAR _ | Lexer.LITERAL _ | Lexer.NUMBER _ | Lexer.LPAREN -> true
    | Lexer.NAME name ->
      peek2 c = Lexer.LPAREN && node_test_of_call name = None
    | _ -> false
  in
  if not filter_start then Path (parse_location_path c)
  else begin
    let primary = parse_primary c in
    let preds = parse_predicates c in
    let steps =
      match peek c with
      | Lexer.SLASH ->
        advance c;
        parse_relative_steps c
      | Lexer.DSLASH ->
        advance c;
        dslash_step :: parse_relative_steps c
      | _ -> []
    in
    if preds = [] && steps = [] then primary else Filter (primary, preds, steps)
  end

and parse_primary c =
  match peek c with
  | Lexer.VAR v ->
    advance c;
    Var v
  | Lexer.LITERAL s ->
    advance c;
    Literal s
  | Lexer.NUMBER f ->
    advance c;
    Number f
  | Lexer.LPAREN ->
    advance c;
    let e = parse_expr c in
    expect c Lexer.RPAREN;
    e
  | Lexer.NAME f ->
    advance c;
    expect c Lexer.LPAREN;
    let rec args acc =
      if peek c = Lexer.RPAREN then List.rev acc
      else begin
        let a = parse_expr c in
        if peek c = Lexer.COMMA then begin
          advance c;
          args (a :: acc)
        end
        else List.rev (a :: acc)
      end
    in
    let arguments = args [] in
    expect c Lexer.RPAREN;
    Call (f, arguments)
  | tok -> fail "unexpected token %s" (Lexer.token_to_string tok)

and parse_predicates c =
  let rec loop acc =
    if peek c = Lexer.LBRACKET then begin
      advance c;
      let e = parse_expr c in
      expect c Lexer.RBRACKET;
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

and parse_location_path c =
  match peek c with
  | Lexer.SLASH ->
    advance c;
    let steps =
      if starts_step c then parse_relative_steps c else []
    in
    { absolute = true; steps }
  | Lexer.DSLASH ->
    advance c;
    { absolute = true; steps = dslash_step :: parse_relative_steps c }
  | _ -> { absolute = false; steps = parse_relative_steps c }

and starts_step c =
  match peek c with
  | Lexer.NAME _ | Lexer.STAR | Lexer.AT | Lexer.DOT | Lexer.DOTDOT -> true
  | _ -> false

and parse_relative_steps c =
  let step = parse_step c in
  match peek c with
  | Lexer.SLASH ->
    advance c;
    step :: parse_relative_steps c
  | Lexer.DSLASH ->
    advance c;
    step :: dslash_step :: parse_relative_steps c
  | _ -> [ step ]

and parse_step c =
  match peek c with
  | Lexer.DOT ->
    advance c;
    { axis = Self; test = Node_test; preds = parse_predicates c }
  | Lexer.DOTDOT ->
    advance c;
    { axis = Parent; test = Node_test; preds = parse_predicates c }
  | Lexer.AT ->
    advance c;
    let test = parse_node_test c in
    { axis = Attribute; test; preds = parse_predicates c }
  | Lexer.NAME name when peek2 c = Lexer.COLONCOLON ->
    (match axis_of_string name with
     | None -> fail "unknown axis %s" name
     | Some axis ->
       advance c;
       advance c;
       let test = parse_node_test c in
       { axis; test; preds = parse_predicates c })
  | Lexer.NAME _ | Lexer.STAR ->
    let test = parse_node_test c in
    { axis = Child; test; preds = parse_predicates c }
  | tok -> fail "expected a step but found %s" (Lexer.token_to_string tok)

and parse_node_test c =
  match peek c with
  | Lexer.STAR ->
    advance c;
    Star
  | Lexer.NAME name when peek2 c = Lexer.LPAREN ->
    (match node_test_of_call name with
     | Some test ->
       advance c;
       advance c;
       expect c Lexer.RPAREN;
       test
     | None -> fail "unknown node test %s()" name)
  | Lexer.NAME name ->
    advance c;
    Name name
  | tok -> fail "expected a node test but found %s" (Lexer.token_to_string tok)

let parse src =
  let toks =
    try Lexer.tokenize src with
    | Lexer.Error { pos; message } ->
      fail "lexical error at offset %d: %s" pos message
  in
  let c = { toks } in
  let e = parse_expr c in
  if peek c <> Lexer.EOF then
    fail "trailing tokens starting at %s" (Lexer.token_to_string (peek c));
  e

let rec selects_nodes = function
  | Path _ | Filter _ -> true
  | Union (a, b) -> selects_nodes a && selects_nodes b
  | Var _ ->
    (* A variable may be bound to a node-set at evaluation time. *)
    true
  | Or _ | And _ | Cmp _ | Arith _ | Neg _ | Literal _ | Number _ | Call _ ->
    false

let parse_path src =
  let e = parse src in
  if selects_nodes e then e
  else fail "%S is not a location path" src
