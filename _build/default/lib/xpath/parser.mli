(** Recursive-descent parser for the XPath 1.0 grammar (expressions and
    location paths, abbreviated and unabbreviated syntax). *)

exception Error of string

val parse : string -> Ast.expr
(** @raise Error on a syntax error. *)

val parse_path : string -> Ast.expr
(** Like {!parse} but insists the result is a location path (or a union /
    filter of paths) — the shape required for the [PATH] parameter of
    security rules and XUpdate operations.
    @raise Error if the expression cannot select nodes. *)
