lib/xpath/lexer.mli:
