lib/xpath/lexer.ml: List Printf String
