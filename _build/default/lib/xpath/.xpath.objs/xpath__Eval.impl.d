lib/xpath/eval.ml: Ast Buffer Float Format List Ordpath Parser Printf Source String Value Xmldoc
