lib/xpath/ast.ml: Float Format List Printf String
