lib/xpath/source.mli: Ordpath Xmldoc
