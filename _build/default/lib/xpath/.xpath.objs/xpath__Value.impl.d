lib/xpath/value.ml: Ast Float Format List Ordpath Printf Source String
