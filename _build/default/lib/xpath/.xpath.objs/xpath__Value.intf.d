lib/xpath/value.mli: Ast Format Ordpath Source
