lib/xpath/eval.mli: Ast Ordpath Source Value Xmldoc
