lib/xpath/parser.mli: Ast
