lib/xpath/parser.ml: Ast Lexer List Printf
