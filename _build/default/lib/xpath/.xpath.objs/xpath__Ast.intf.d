lib/xpath/ast.mli: Format
