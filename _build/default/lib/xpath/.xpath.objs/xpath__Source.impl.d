lib/xpath/source.ml: Ordpath Xmldoc
