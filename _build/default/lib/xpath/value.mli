(** The four XPath 1.0 value types and the standard conversion rules.
    Node-sets are kept sorted in document order and de-duplicated. *)

type t =
  | Nodeset of Ordpath.t list
  | Bool of bool
  | Num of float
  | Str of string

val nodeset : Ordpath.t list -> t
(** Sorts and de-duplicates. *)

val to_bool : Source.t -> t -> bool
val to_num : Source.t -> t -> float
val to_string : Source.t -> t -> string

val number_of_string : string -> float
(** XPath [number()] semantics: optional sign and decimal; anything else
    is NaN. *)

val string_of_number : float -> string
(** XPath number-to-string: integers print without a decimal point; NaN
    prints ["NaN"]. *)

val nodes : t -> Ordpath.t list
(** The node list of a node-set; [[]] for other values. *)

val compare_values : Source.t -> Ast.cmp -> t -> t -> bool
(** Full XPath 1.0 comparison semantics, including the existential rules
    when one or both operands are node-sets. *)

val pp : Source.t -> Format.formatter -> t -> unit
