(** Tokenizer for XPath 1.0 expressions. *)

type token =
  | NAME of string  (** NCName or QName; axis/operator names are
                        disambiguated by the parser *)
  | NUMBER of float
  | LITERAL of string
  | VAR of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | DOT
  | DOTDOT
  | AT
  | COMMA
  | COLONCOLON
  | SLASH
  | DSLASH
  | PIPE
  | PLUS
  | MINUS
  | STAR
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of { pos : int; message : string }

val tokenize : string -> token list
(** @raise Error on an unrecognised character or unterminated literal. *)

val token_to_string : token -> string
