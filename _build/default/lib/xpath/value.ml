type t =
  | Nodeset of Ordpath.t list
  | Bool of bool
  | Num of float
  | Str of string

let nodeset ids = Nodeset (List.sort_uniq Ordpath.compare ids)

let number_of_string s =
  let s = String.trim s in
  match float_of_string_opt s with
  | Some f -> f
  | None -> Float.nan

let string_of_number f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else
    (* Shortest representation that still round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    s

let node_string (src : Source.t) id = src.Source.string_value id

let to_string doc = function
  | Str s -> s
  | Num f -> string_of_number f
  | Bool b -> if b then "true" else "false"
  | Nodeset [] -> ""
  | Nodeset (first :: _) -> node_string doc first

let to_bool _doc = function
  | Bool b -> b
  | Num f -> (not (Float.is_nan f)) && f <> 0.
  | Str s -> String.length s > 0
  | Nodeset ns -> ns <> []

let to_num doc = function
  | Num f -> f
  | Bool b -> if b then 1. else 0.
  | Str s -> number_of_string s
  | Nodeset _ as v -> number_of_string (to_string doc v)

let nodes = function Nodeset ns -> ns | Bool _ | Num _ | Str _ -> []

let cmp_num (op : Ast.cmp) a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Neq -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

(* XPath 1.0 §3.4: with two node-sets, comparison is existential over
   string values; a node-set against a boolean compares [boolean(ns)]
   directly; a node-set against a number or string is existential over
   the node string-values; otherwise = / != compare by the "strongest"
   type (boolean > number > string) and orderings always compare
   numbers. *)
let compare_values doc op left right =
  let flip = function
    | Ast.Lt -> Ast.Gt
    | Ast.Le -> Ast.Ge
    | Ast.Gt -> Ast.Lt
    | Ast.Ge -> Ast.Le
    | (Ast.Eq | Ast.Neq) as op -> op
  in
  let rec go op left right =
    match left, right with
    | Nodeset l, Nodeset r ->
      let strings ids = List.map (node_string doc) ids in
      let pred a b =
        match op with
        | Ast.Eq -> String.equal a b
        | Ast.Neq -> not (String.equal a b)
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          cmp_num op (number_of_string a) (number_of_string b)
      in
      List.exists
        (fun a -> List.exists (fun b -> pred a b) (strings r))
        (strings l)
    | Nodeset _, Bool b ->
      (match op with
       | Ast.Eq -> to_bool doc left = b
       | Ast.Neq -> to_bool doc left <> b
       | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
         cmp_num op (to_num doc left) (if b then 1. else 0.))
    | Nodeset l, v ->
      List.exists
        (fun id ->
          let s = node_string doc id in
          match op, v with
          | Ast.Eq, Num f -> number_of_string s = f
          | Ast.Neq, Num f -> number_of_string s <> f
          | Ast.Eq, Str s' -> String.equal s s'
          | Ast.Neq, Str s' -> not (String.equal s s')
          | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), v ->
            cmp_num op (number_of_string s) (to_num doc v)
          | (Ast.Eq | Ast.Neq), (Bool _ | Nodeset _) -> assert false)
        l
    | v, (Nodeset _ as ns) -> go (flip op) ns v
    | l, r ->
      (match op with
       | Ast.Eq | Ast.Neq ->
         let equal =
           match l, r with
           | Bool _, _ | _, Bool _ -> to_bool doc l = to_bool doc r
           | Num _, _ | _, Num _ -> to_num doc l = to_num doc r
           | _ -> String.equal (to_string doc l) (to_string doc r)
         in
         if op = Ast.Eq then equal else not equal
       | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
         cmp_num op (to_num doc l) (to_num doc r))
  in
  go op left right

let pp (_src : Source.t) fmt = function
  | Nodeset ns ->
    Format.fprintf fmt "nodeset{%s}"
      (String.concat ", " (List.map Ordpath.to_string ns))
  | Bool b -> Format.fprintf fmt "%b" b
  | Num f -> Format.pp_print_string fmt (string_of_number f)
  | Str s -> Format.fprintf fmt "%S" s
