type token =
  | NAME of string
  | NUMBER of float
  | LITERAL of string
  | VAR of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | DOT
  | DOTDOT
  | AT
  | COMMA
  | COLONCOLON
  | SLASH
  | DSLASH
  | PIPE
  | PLUS
  | MINUS
  | STAR
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of { pos : int; message : string }

let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

(* NCName, possibly followed by a single ':' + NCName (a QName).  A '::'
   axis separator is never consumed here. *)
let lex_name src pos =
  let n = String.length src in
  let rec run i = if i < n && is_name_char src.[i] then run (i + 1) else i in
  let stop = run (pos + 1) in
  let stop =
    if
      stop < n - 1
      && src.[stop] = ':'
      && src.[stop + 1] <> ':'
      && is_name_start src.[stop + 1]
    then run (stop + 1)
    else stop
  in
  (String.sub src pos (stop - pos), stop)

let lex_number src pos =
  let n = String.length src in
  let rec digits i = if i < n && is_digit src.[i] then digits (i + 1) else i in
  let stop = digits pos in
  let stop =
    if stop < n && src.[stop] = '.' then digits (stop + 1) else stop
  in
  let text = String.sub src pos (stop - pos) in
  match float_of_string_opt text with
  | Some f -> (f, stop)
  | None -> raise (Error { pos; message = "bad number " ^ text })

let lex_literal src pos =
  let quote = src.[pos] in
  let n = String.length src in
  let rec find i =
    if i >= n then raise (Error { pos; message = "unterminated literal" })
    else if src.[i] = quote then i
    else find (i + 1)
  in
  let stop = find (pos + 1) in
  (String.sub src (pos + 1) (stop - pos - 1), stop + 1)

let tokenize src =
  let n = String.length src in
  let rec loop pos acc =
    if pos >= n then List.rev (EOF :: acc)
    else
      let c = src.[pos] in
      let simple tok len = loop (pos + len) (tok :: acc) in
      match c with
      | ' ' | '\t' | '\n' | '\r' -> loop (pos + 1) acc
      | '(' -> simple LPAREN 1
      | ')' -> simple RPAREN 1
      | '[' -> simple LBRACKET 1
      | ']' -> simple RBRACKET 1
      | '@' -> simple AT 1
      | ',' -> simple COMMA 1
      | '|' -> simple PIPE 1
      | '+' -> simple PLUS 1
      | '-' -> simple MINUS 1
      | '*' -> simple STAR 1
      | '=' -> simple EQ 1
      | '/' ->
        if pos + 1 < n && src.[pos + 1] = '/' then simple DSLASH 2
        else simple SLASH 1
      | ':' ->
        if pos + 1 < n && src.[pos + 1] = ':' then simple COLONCOLON 2
        else raise (Error { pos; message = "unexpected ':'" })
      | '!' ->
        if pos + 1 < n && src.[pos + 1] = '=' then simple NEQ 2
        else raise (Error { pos; message = "unexpected '!'" })
      | '<' ->
        if pos + 1 < n && src.[pos + 1] = '=' then simple LE 2 else simple LT 1
      | '>' ->
        if pos + 1 < n && src.[pos + 1] = '=' then simple GE 2 else simple GT 1
      | '"' | '\'' ->
        let lit, stop = lex_literal src pos in
        loop stop (LITERAL lit :: acc)
      | '$' ->
        if pos + 1 < n && is_name_start src.[pos + 1] then begin
          let name, stop = lex_name src (pos + 1) in
          loop stop (VAR name :: acc)
        end
        else raise (Error { pos; message = "expected a variable name after '$'" })
      | '.' ->
        if pos + 1 < n && src.[pos + 1] = '.' then simple DOTDOT 2
        else if pos + 1 < n && is_digit src.[pos + 1] then begin
          let f, stop = lex_number src pos in
          loop stop (NUMBER f :: acc)
        end
        else simple DOT 1
      | c when is_digit c ->
        let f, stop = lex_number src pos in
        loop stop (NUMBER f :: acc)
      | c when is_name_start c ->
        let name, stop = lex_name src pos in
        loop stop (NAME name :: acc)
      | c ->
        raise (Error { pos; message = Printf.sprintf "unexpected character %C" c })
  in
  loop 0 []

let token_to_string = function
  | NAME s -> s
  | NUMBER f -> string_of_float f
  | LITERAL s -> Printf.sprintf "%S" s
  | VAR v -> "$" ^ v
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | DOT -> "."
  | DOTDOT -> ".."
  | AT -> "@"
  | COMMA -> ","
  | COLONCOLON -> "::"
  | SLASH -> "/"
  | DSLASH -> "//"
  | PIPE -> "|"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
