type t =
  | Rename of { path : Xpath.Ast.expr; new_label : string }
  | Update of { path : Xpath.Ast.expr; new_label : string }
  | Append of { path : Xpath.Ast.expr; content : Content.t }
  | Insert_before of { path : Xpath.Ast.expr; content : Content.t }
  | Insert_after of { path : Xpath.Ast.expr; content : Content.t }
  | Remove of { path : Xpath.Ast.expr }

let path = function
  | Rename { path; _ }
  | Update { path; _ }
  | Append { path; _ }
  | Insert_before { path; _ }
  | Insert_after { path; _ }
  | Remove { path } ->
    path

let name = function
  | Rename _ -> "xupdate:rename"
  | Update _ -> "xupdate:update"
  | Append _ -> "xupdate:append"
  | Insert_before _ -> "xupdate:insert-before"
  | Insert_after _ -> "xupdate:insert-after"
  | Remove _ -> "xupdate:remove"

let rename path new_label =
  Rename { path = Xpath.Parser.parse_path path; new_label }

let update path new_label =
  Update { path = Xpath.Parser.parse_path path; new_label }

let append_content path content =
  Append { path = Xpath.Parser.parse_path path; content }

let insert_before_content path content =
  Insert_before { path = Xpath.Parser.parse_path path; content }

let insert_after_content path content =
  Insert_after { path = Xpath.Parser.parse_path path; content }

let append path tree = append_content path (Content.of_tree tree)
let insert_before path tree = insert_before_content path (Content.of_tree tree)
let insert_after path tree = insert_after_content path (Content.of_tree tree)

let remove path = Remove { path = Xpath.Parser.parse_path path }

let pp fmt op =
  match op with
  | Rename { path; new_label } | Update { path; new_label } ->
    Format.fprintf fmt "%s(%s -> %s)" (name op) (Xpath.Ast.to_string path)
      new_label
  | Append { path; content } | Insert_before { path; content }
  | Insert_after { path; content } ->
    Format.fprintf fmt "%s(%s, %a)" (name op) (Xpath.Ast.to_string path)
      Content.pp content
  | Remove { path } ->
    Format.fprintf fmt "%s(%s)" (name op) (Xpath.Ast.to_string path)
