lib/xupdate/apply.mli: Op Ordpath Xmldoc Xpath
