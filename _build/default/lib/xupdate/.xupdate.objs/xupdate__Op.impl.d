lib/xupdate/op.ml: Content Format Xpath
