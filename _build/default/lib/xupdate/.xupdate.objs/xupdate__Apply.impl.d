lib/xupdate/apply.ml: Content List Op Ordpath Xmldoc Xpath
