lib/xupdate/xupdate_xml.ml: Content List Op Printf String Tree Xml_parse Xml_print Xmldoc Xpath
