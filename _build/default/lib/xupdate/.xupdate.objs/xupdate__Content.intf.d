lib/xupdate/content.mli: Format Ordpath Xmldoc Xpath
