lib/xupdate/op.mli: Content Format Xmldoc Xpath
