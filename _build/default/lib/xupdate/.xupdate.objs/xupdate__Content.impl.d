lib/xupdate/content.ml: Format Fun List Option String Xmldoc Xpath
