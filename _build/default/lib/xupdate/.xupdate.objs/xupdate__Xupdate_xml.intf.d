lib/xupdate/xupdate_xml.mli: Op Xmldoc
