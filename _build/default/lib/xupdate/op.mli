(** The six XUpdate operations of §3.4.  Each carries the [PATH] selecting
    target nodes and, where applicable, the new label [VNEW] or the
    fragment [TREE] to insert. *)

type t =
  | Rename of { path : Xpath.Ast.expr; new_label : string }
      (** relabel the nodes addressed by [path] (formulae 2–3) *)
  | Update of { path : Xpath.Ast.expr; new_label : string }
      (** relabel the {e children} of the nodes addressed by [path]
          (formulae 4–5) *)
  | Append of { path : Xpath.Ast.expr; content : Content.t }
      (** insert the instantiated content as last child of each addressed
          node (formula 7) *)
  | Insert_before of { path : Xpath.Ast.expr; content : Content.t }
      (** insert as immediately-preceding sibling *)
  | Insert_after of { path : Xpath.Ast.expr; content : Content.t }
      (** insert as immediately-following sibling *)
  | Remove of { path : Xpath.Ast.expr }
      (** delete the subtrees rooted at the addressed nodes
          (formulae 8–9) *)

val path : t -> Xpath.Ast.expr

val name : t -> string
(** The XUpdate instruction name, e.g. ["xupdate:insert-before"]. *)

(** Convenience constructors parsing the path from concrete syntax.
    All @raise Xpath.Parser.Error on a bad path. *)

val rename : string -> string -> t
val update : string -> string -> t
val append : string -> Xmldoc.Tree.t -> t
val insert_before : string -> Xmldoc.Tree.t -> t
val insert_after : string -> Xmldoc.Tree.t -> t
val remove : string -> t

val append_content : string -> Content.t -> t
val insert_before_content : string -> Content.t -> t
val insert_after_content : string -> Content.t -> t

val pp : Format.formatter -> t -> unit
