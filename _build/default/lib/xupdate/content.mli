(** Content templates for the XUpdate insertion operations.  The working
    draft allows constructed content to embed [xupdate:value-of]: a
    fragment computed from the database at application time, relative to
    the node being processed.  A template is {!instantiate}d into a plain
    {!Xmldoc.Tree} against a node source — the secure evaluator passes the
    user's {e view}, so computed content can never read data outside it
    (the §2.2 principle extended to insertions). *)

type t =
  | Element of string * t list
  | Attr of string * t list  (** value parts; instantiation concatenates *)
  | Text of string
  | Comment of string
  | Value_of of Xpath.Ast.expr
      (** string value of the selection, evaluated with the insertion
          target as context node *)

val of_tree : Xmldoc.Tree.t -> t
(** Static content. *)

val to_tree : t -> Xmldoc.Tree.t option
(** [Some] iff the template is static (no [Value_of]). *)

val is_static : t -> bool

val instantiate :
  ?vars:(string * Xpath.Value.t) list ->
  Xpath.Source.t -> context:Ordpath.t -> t -> Xmldoc.Tree.t
(** Evaluates every [Value_of] against the given source with the given
    context node.
    @raise Xpath.Eval.Error on evaluation failure. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
