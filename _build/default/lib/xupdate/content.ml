type t =
  | Element of string * t list
  | Attr of string * t list
  | Text of string
  | Comment of string
  | Value_of of Xpath.Ast.expr

let rec of_tree (tree : Xmldoc.Tree.t) =
  match tree with
  | Xmldoc.Tree.Element (name, kids) -> Element (name, List.map of_tree kids)
  | Xmldoc.Tree.Attr (name, value) -> Attr (name, [ Text value ])
  | Xmldoc.Tree.Text s -> Text s
  | Xmldoc.Tree.Comment s -> Comment s

let rec is_static = function
  | Value_of _ -> false
  | Element (_, kids) | Attr (_, kids) -> List.for_all is_static kids
  | Text _ | Comment _ -> true

let rec to_tree t : Xmldoc.Tree.t option =
  match t with
  | Value_of _ -> None
  | Text s -> Some (Xmldoc.Tree.Text s)
  | Comment s -> Some (Xmldoc.Tree.Comment s)
  | Attr (name, parts) ->
    let rec concat acc = function
      | [] -> Some acc
      | Text s :: rest -> concat (acc ^ s) rest
      | (Value_of _ | Element _ | Attr _ | Comment _) :: _ -> None
    in
    Option.map (fun v -> Xmldoc.Tree.Attr (name, v)) (concat "" parts)
  | Element (name, kids) ->
    let kids = List.map to_tree kids in
    if List.for_all Option.is_some kids then
      Some (Xmldoc.Tree.Element (name, List.filter_map Fun.id kids))
    else None

let instantiate ?vars src ~context t =
  let env = Xpath.Eval.env_of_source ?vars src in
  let value_of expr =
    Xpath.Value.to_string src (Xpath.Eval.eval env ~context expr)
  in
  let rec go = function
    | Text s -> [ Xmldoc.Tree.Text s ]
    | Comment s -> [ Xmldoc.Tree.Comment s ]
    | Value_of expr ->
      (match value_of expr with "" -> [] | s -> [ Xmldoc.Tree.Text s ])
    | Attr (name, parts) ->
      let value =
        String.concat ""
          (List.map
             (function
               | Text s -> s
               | Value_of expr -> value_of expr
               | Element _ | Attr _ | Comment _ ->
                 raise (Xpath.Eval.Error "attribute content must be textual"))
             parts)
      in
      [ Xmldoc.Tree.Attr (name, value) ]
    | Element (name, kids) ->
      [ Xmldoc.Tree.Element (name, List.concat_map go kids) ]
  in
  match go t with
  | [ tree ] -> tree
  | [] -> Xmldoc.Tree.Text ""
  | _ -> assert false

let rec equal a b =
  match a, b with
  | Element (na, ka), Element (nb, kb) | Attr (na, ka), Attr (nb, kb) ->
    String.equal na nb && List.equal equal ka kb
  | Text a, Text b | Comment a, Comment b -> String.equal a b
  | Value_of a, Value_of b ->
    String.equal (Xpath.Ast.to_string a) (Xpath.Ast.to_string b)
  | (Element _ | Attr _ | Text _ | Comment _ | Value_of _), _ -> false

let rec pp fmt = function
  | Element (n, kids) ->
    Format.fprintf fmt "%s(%a)" n
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
      kids
  | Attr (n, parts) -> Format.fprintf fmt "@%s=%a" n (Format.pp_print_list pp) parts
  | Text s -> Format.fprintf fmt "%S" s
  | Comment s -> Format.fprintf fmt "<!--%s-->" s
  | Value_of e -> Format.fprintf fmt "value-of(%s)" (Xpath.Ast.to_string e)
