(** The XUpdate XML wire syntax (Laux & Martin, xmldb.org working draft):
    parses an [<xupdate:modifications>] document into {!Op.t} values.

    Supported instructions: [xupdate:update], [xupdate:rename],
    [xupdate:append], [xupdate:insert-before], [xupdate:insert-after],
    [xupdate:remove].  Content may mix literal XML with the
    [xupdate:element] / [xupdate:attribute] / [xupdate:text] /
    [xupdate:comment] constructors.

    An insertion instruction containing several top-level content nodes
    expands into one {!Op.t} per node (ordered so the result preserves
    content order). *)

exception Error of string

val ops_of_string : string -> Op.t list
(** @raise Error on malformed modification documents,
    [Xmldoc.Xml_parse.Error] on malformed XML,
    [Xpath.Parser.Error] on a bad [select] path. *)

val ops_of_tree : Xmldoc.Tree.t -> Op.t list

val to_string : Op.t list -> string
(** Re-prints operations as an [<xupdate:modifications>] document. *)
