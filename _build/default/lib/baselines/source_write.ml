module D = Xmldoc.Document
module Op = Xupdate.Op

type report = {
  op : Op.t;
  targets : Ordpath.t list;
  relabelled : Ordpath.t list;
  removed : Ordpath.t list;
  inserted : Ordpath.t list;
  denied : (Ordpath.t * Core.Privilege.t) list;
  skipped : (Ordpath.t * string) list;
}

type state = {
  doc : D.t;
  relabelled : Ordpath.t list;
  removed : Ordpath.t list;
  inserted : Ordpath.t list;
  denied : (Ordpath.t * Core.Privilege.t) list;
  skipped : (Ordpath.t * string) list;
}

let can_hold_children doc id =
  match D.kind doc id with
  | Some (Xmldoc.Node.Element | Xmldoc.Node.Document) -> true
  | _ -> false

let apply policy doc ~user op =
  let perm = Core.Perm.compute policy doc ~user in
  let holds = Core.Perm.holds perm in
  let vars = [ ("USER", Xpath.Value.Str user) ] in
  (* The defining flaw: selection on the source. *)
  let targets = Xpath.Eval.select (Xpath.Eval.env ~vars doc) (Op.path op) in
  let st =
    { doc; relabelled = []; removed = []; inserted = []; denied = []; skipped = [] }
  in
  let relabel st id new_label =
    if not (holds Core.Privilege.Update id) then
      { st with denied = (id, Core.Privilege.Update) :: st.denied }
    else
      match D.kind st.doc id with
      | Some Xmldoc.Node.Document | None ->
        { st with skipped = (id, "document node") :: st.skipped }
      | Some _ ->
        { st with doc = D.relabel st.doc id new_label;
                  relabelled = id :: st.relabelled }
  in
  let insert st target content where =
    (* The baseline instantiates content on the SOURCE: a value-of can
       embed data the user cannot read — another face of the §2.2
       leak. *)
    let tree =
      Xupdate.Content.instantiate ~vars
        (Xpath.Source.of_document st.doc) ~context:target content
    in
    match where with
    | `Append ->
      if not (holds Core.Privilege.Insert target) then
        { st with denied = (target, Core.Privilege.Insert) :: st.denied }
      else if not (can_hold_children st.doc target) then
        { st with skipped = (target, "not an element") :: st.skipped }
      else
        let doc, id = D.append_tree st.doc ~parent:target tree in
        { st with doc; inserted = id :: st.inserted }
    | `Before | `After ->
      (match Ordpath.parent target with
       | None -> { st with skipped = (target, "document node") :: st.skipped }
       | Some parent ->
         if not (holds Core.Privilege.Insert parent) then
           { st with denied = (parent, Core.Privilege.Insert) :: st.denied }
         else
           let siblings =
             List.map (fun (n : Xmldoc.Node.t) -> n.id)
               (D.children st.doc parent)
           in
           let rec bounds prev = function
             | [] -> None
             | s :: rest when Ordpath.equal s target ->
               if where = `Before then Some (prev, Some s)
               else
                 Some (Some s,
                       match rest with [] -> None | next :: _ -> Some next)
             | s :: rest -> bounds (Some s) rest
           in
           (match bounds None siblings with
            | None -> { st with skipped = (target, "target gone") :: st.skipped }
            | Some (left, right) ->
              let doc, id = D.add_subtree st.doc ~parent ~left ~right tree in
              { st with doc; inserted = id :: st.inserted }))
  in
  let st =
    match op with
    | Op.Rename { new_label; _ } ->
      List.fold_left (fun st t -> relabel st t new_label) st targets
    | Op.Update { new_label; _ } ->
      List.fold_left
        (fun st t ->
          List.fold_left
            (fun st (kid : Xmldoc.Node.t) -> relabel st kid.id new_label)
            st (D.children doc t))
        st targets
    | Op.Append { content; _ } ->
      List.fold_left (fun st t -> insert st t content `Append) st targets
    | Op.Insert_before { content; _ } ->
      List.fold_left (fun st t -> insert st t content `Before) st targets
    | Op.Insert_after { content; _ } ->
      List.fold_left (fun st t -> insert st t content `After) st targets
    | Op.Remove _ ->
      List.fold_left
        (fun st t ->
          if not (D.mem st.doc t) then st
          else if Ordpath.equal t Ordpath.document then
            { st with skipped = (t, "document node") :: st.skipped }
          else if not (holds Core.Privilege.Delete t) then
            { st with denied = (t, Core.Privilege.Delete) :: st.denied }
          else
            { st with doc = D.remove_subtree st.doc t;
                      removed = t :: st.removed })
        st targets
  in
  ( st.doc,
    {
      op;
      targets;
      relabelled = List.rev st.relabelled;
      removed = List.rev st.removed;
      inserted = List.rev st.inserted;
      denied = List.rev st.denied;
      skipped = List.rev st.skipped;
    } )

let probe_leaks (r : report) = r.targets <> []
