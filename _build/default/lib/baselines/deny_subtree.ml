module D = Xmldoc.Document

let derive doc perm =
  D.fold
    (fun (n : Xmldoc.Node.t) view ->
      if n.kind = Xmldoc.Node.Document then view
      else
        let parent_kept =
          match Ordpath.parent n.id with
          | None -> false
          | Some pid -> D.mem view pid
        in
        if parent_kept && Core.Perm.holds perm Core.Privilege.Read n.id then
          D.add_node view n
        else view)
    doc D.empty

let lost_nodes doc perm =
  let view = derive doc perm in
  D.fold
    (fun (n : Xmldoc.Node.t) acc ->
      if
        n.kind <> Xmldoc.Node.Document
        && Core.Perm.holds perm Core.Privilege.Read n.id
        && not (D.mem view n.id)
      then n.id :: acc
      else acc)
    doc []
  |> List.rev
