(** The [7]-style baseline (Damiani et al., EDBT 2000, as §2 characterises
    it): to preserve document structure, "elements with negative
    authorizations are released if the element has a descendant with a
    positive authorization" — with their {e real} labels, which is the
    semantic leak the paper's RESTRICTED label repairs.

    The view keeps a node iff the user holds [read] on it or on one of
    its descendants; labels are never masked. *)

val derive : Xmldoc.Document.t -> Core.Perm.t -> Xmldoc.Document.t

val leaked_nodes : Xmldoc.Document.t -> Core.Perm.t -> Ordpath.t list
(** Nodes shown with their real label although [read] is not held — the
    leakage this baseline suffers and the core model avoids. *)
