module D = Xmldoc.Document

type comparison = {
  source_nodes : int;
  readable_nodes : int;
  core_visible : int;
  core_restricted : int;
  deny_subtree_visible : int;
  deny_subtree_lost : int;
  structure_preserving_visible : int;
  structure_preserving_leaked : int;
}

let core_leaked view perm =
  D.fold
    (fun (n : Xmldoc.Node.t) acc ->
      if
        n.kind <> Xmldoc.Node.Document
        && (not (Core.Perm.holds perm Core.Privilege.Read n.id))
        && not (String.equal n.label Core.View.restricted)
      then acc + 1
      else acc)
    view 0

let compare_models policy doc ~user =
  let perm = Core.Perm.compute policy doc ~user in
  let core_view = Core.View.derive doc perm in
  let restricted =
    D.fold
      (fun (n : Xmldoc.Node.t) acc ->
        if String.equal n.label Core.View.restricted then acc + 1 else acc)
      core_view 0
  in
  let readable = Ordpath.Set.cardinal (Core.Perm.permitted perm Core.Privilege.Read) in
  {
    source_nodes = D.size doc - 1;
    readable_nodes = readable;
    core_visible = Core.View.visible_count core_view;
    core_restricted = restricted;
    deny_subtree_visible =
      Core.View.visible_count (Deny_subtree.derive doc perm);
    deny_subtree_lost = List.length (Deny_subtree.lost_nodes doc perm);
    structure_preserving_visible =
      Core.View.visible_count (Structure_preserving.derive doc perm);
    structure_preserving_leaked =
      List.length (Structure_preserving.leaked_nodes doc perm);
  }

let header =
  Printf.sprintf "%-24s %10s %10s %10s" "model" "visible" "lost" "leaked"

let pp fmt c =
  Format.fprintf fmt "%-24s %10d %10s %10s@."
    "core (this paper)" c.core_visible "0" "0";
  Format.fprintf fmt "%-24s %10d %10d %10s@."
    "deny-subtree [11]" c.deny_subtree_visible c.deny_subtree_lost "0";
  Format.fprintf fmt "%-24s %10d %10s %10d"
    "structure-preserving [7]" c.structure_preserving_visible "0"
    c.structure_preserving_leaked
