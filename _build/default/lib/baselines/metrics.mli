(** Availability / leakage metrics comparing the core model's views with
    the §2 baselines, for the E11 experiment: the two failure modes the
    paper motivates its [position] privilege with, made measurable. *)

type comparison = {
  source_nodes : int;  (** nodes in the source, document node excluded *)
  readable_nodes : int;  (** nodes with the [read] privilege *)
  core_visible : int;  (** core-model view size *)
  core_restricted : int;  (** of which RESTRICTED *)
  deny_subtree_visible : int;  (** [11]-style view size *)
  deny_subtree_lost : int;
      (** readable nodes the [11]-style view loses (availability gap) *)
  structure_preserving_visible : int;
  structure_preserving_leaked : int;
      (** unreadable labels the [7]-style view reveals (leakage) *)
}

val compare_models :
  Core.Policy.t -> Xmldoc.Document.t -> user:string -> comparison

val core_leaked : Xmldoc.Document.t -> Core.Perm.t -> int
(** Labels revealed by the core view without [read] — always 0
    (RESTRICTED masks them); included so the invariant is executable. *)

val pp : Format.formatter -> comparison -> unit
(** One table row per model: visible / lost / leaked. *)

val header : string
