(** The vulnerable write model of [10] and of SQL, as §2.2 describes it:
    write operations are evaluated {e on the source database}, checking
    only the write privileges — the [PATH] predicate may consult data the
    user cannot read, which opens the covert channel the core model
    closes.

    Privilege checks mirror {!Core.Secure_update} minus every read-side
    requirement:
    - rename / update: [update] on the relabelled node;
    - append: [insert] on the target; insert-before/after: [insert] on
      the parent;
    - remove: [delete] on the target. *)

type report = {
  op : Xupdate.Op.t;
  targets : Ordpath.t list;  (** selected on the SOURCE document *)
  relabelled : Ordpath.t list;
  removed : Ordpath.t list;
  inserted : Ordpath.t list;
  denied : (Ordpath.t * Core.Privilege.t) list;
  skipped : (Ordpath.t * string) list;
}

val apply :
  Core.Policy.t -> Xmldoc.Document.t -> user:string -> Xupdate.Op.t ->
  Xmldoc.Document.t * report

val probe_leaks : report -> bool
(** Did the operation's outcome depend on source data?  True when it
    selected at least one target — under this model the user learns the
    predicate was satisfied even without read access (§2.2: "2 rows
    updated"). *)
