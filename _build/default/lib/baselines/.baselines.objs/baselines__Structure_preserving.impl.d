lib/baselines/structure_preserving.ml: Core List Xmldoc
