lib/baselines/source_write.mli: Core Ordpath Xmldoc Xupdate
