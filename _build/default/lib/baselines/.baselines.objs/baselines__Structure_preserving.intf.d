lib/baselines/structure_preserving.mli: Core Ordpath Xmldoc
