lib/baselines/metrics.mli: Core Format Xmldoc
