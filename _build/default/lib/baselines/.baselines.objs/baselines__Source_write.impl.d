lib/baselines/source_write.ml: Core List Ordpath Xmldoc Xpath Xupdate
