lib/baselines/deny_subtree.mli: Core Ordpath Xmldoc
