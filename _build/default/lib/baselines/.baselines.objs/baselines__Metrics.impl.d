lib/baselines/metrics.ml: Core Deny_subtree Format List Ordpath Printf String Structure_preserving Xmldoc
