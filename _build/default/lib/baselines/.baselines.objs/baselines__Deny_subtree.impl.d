lib/baselines/deny_subtree.ml: Core List Ordpath Xmldoc
