(** The [11]-style baseline (Gabillon & Bruno 2001, as §2 characterises
    it): there is no [position] privilege, so "if access to a node is
    denied then the user is not allowed to access the entire sub-tree
    under that node even if access to part of the sub-tree is permitted".

    Implemented against the same policies as the core model: the view
    keeps a node iff the user holds [read] on it {e and} its parent is
    kept — [position] grants are ignored. *)

val derive : Xmldoc.Document.t -> Core.Perm.t -> Xmldoc.Document.t

val lost_nodes : Xmldoc.Document.t -> Core.Perm.t -> Ordpath.t list
(** Read-permitted nodes absent from this baseline's view (the
    availability loss §2 criticises): nodes with [read] whose ancestor
    chain contains a node without [read]. *)
