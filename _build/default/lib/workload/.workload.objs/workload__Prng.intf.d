lib/workload/prng.mli:
