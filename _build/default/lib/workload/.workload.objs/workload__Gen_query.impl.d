lib/workload/gen_query.ml: Gen_doc List Printf Prng
