lib/workload/gen_doc.ml: Buffer Document List Printf Prng String Tree Xmldoc
