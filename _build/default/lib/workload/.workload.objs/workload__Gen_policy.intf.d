lib/workload/gen_policy.mli: Core Gen_doc
