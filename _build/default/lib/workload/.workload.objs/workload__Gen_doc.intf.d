lib/workload/gen_doc.mli: Xmldoc
