lib/workload/gen_policy.ml: Core Gen_doc List Prng
