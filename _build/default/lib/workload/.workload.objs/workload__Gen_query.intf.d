lib/workload/gen_query.mli:
