(** Query workloads over the {!Gen_doc} schema: a fixed representative mix
    (for throughput benches) and seeded random queries. *)

val mix : string list
(** Twelve queries exercising child steps, descendant steps, predicates,
    positions, attributes and functions. *)

val random : seed:int -> count:int -> string list
