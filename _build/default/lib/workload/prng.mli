(** A small, pure, deterministic PRNG (splitmix64) so every workload is
    reproducible from a seed, independent of [Stdlib.Random]'s global
    state. *)

type t

val create : int -> t
(** Seeded generator; equal seeds produce equal streams. *)

val next : t -> t * int64
val int : t -> int -> t * int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val pick : t -> 'a list -> t * 'a
(** Uniform choice. @raise Invalid_argument on an empty list. *)

val pick_weighted : t -> (int * 'a) list -> t * 'a
(** Choice proportional to the integer weights. *)

val bool : t -> float -> t * bool
(** [bool t p] is true with probability [p]. *)

val shuffle : t -> 'a list -> t * 'a list
