type t = int64

let create seed = Int64.of_int seed

let next state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (state, Int64.logxor z (Int64.shift_right_logical z 31))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let t, v = next t in
  let v = Int64.to_int (Int64.shift_right_logical v 2) in
  (t, v mod bound)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs ->
    let t, i = int t (List.length xs) in
    (t, List.nth xs i)

let pick_weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Prng.pick_weighted: no weight";
  let t, roll = int t total in
  let rec go roll = function
    | [] -> invalid_arg "Prng.pick_weighted: empty"
    | (w, x) :: rest -> if roll < w then x else go (roll - w) rest
  in
  (t, go roll choices)

let bool t p =
  let t, v = int t 1_000_000 in
  (t, float_of_int v < p *. 1_000_000.)

let shuffle t xs =
  let arr = Array.of_list xs in
  let t = ref t in
  for i = Array.length arr - 1 downto 1 do
    let t', j = int !t (i + 1) in
    t := t';
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  (!t, Array.to_list arr)
