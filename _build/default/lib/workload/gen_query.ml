let mix =
  [
    "/patients";
    "/patients/*";
    "//diagnosis";
    "//diagnosis/text()";
    "//service[text() = 'cardiology']";
    "/patients/*[diagnosis/text()]";
    "//visit[@n = 1]";
    "/patients/*[position() = last()]";
    "//visit/date/text()";
    "/patients/*[count(visit) > 1]";
    "//note[contains(text(), 'follow')]";
    "/patients/*[service = 'pneumology']/diagnosis";
  ]

let templates =
  [
    (fun _ -> "/patients/*");
    (fun name -> Printf.sprintf "/patients/%s" name);
    (fun name -> Printf.sprintf "/patients/%s/diagnosis/text()" name);
    (fun _ -> "//visit");
    (fun name -> Printf.sprintf "//%s/visit[@n = 1]/date" name);
    (fun _ -> "//diagnosis[text()]");
    (fun name -> Printf.sprintf "/patients/*[name() = '%s']" name);
  ]

let random ~seed ~count =
  let rng = Prng.create seed in
  let names = Gen_doc.patient_names Gen_doc.default in
  let rec go rng acc i =
    if i = count then List.rev acc
    else
      let rng, template = Prng.pick rng templates in
      let rng, name = Prng.pick rng names in
      go rng (template name :: acc) (i + 1)
  in
  go rng [] 0
