let hospital_staff = [ "beaufort"; "laporte"; "richard" ]

let hospital (config : Gen_doc.config) =
  let subjects =
    Core.Subject.of_list
      ([
         (Core.Subject.Role, "staff", []);
         (Core.Subject.Role, "secretary", [ "staff" ]);
         (Core.Subject.Role, "doctor", [ "staff" ]);
         (Core.Subject.Role, "epidemiologist", [ "staff" ]);
         (Core.Subject.Role, "patient", []);
         (Core.Subject.User, "beaufort", [ "secretary" ]);
         (Core.Subject.User, "laporte", [ "doctor" ]);
         (Core.Subject.User, "richard", [ "epidemiologist" ]);
       ]
      @ List.filter_map
          (fun name ->
            if List.mem name hospital_staff then None
            else Some (Core.Subject.User, name, [ "patient" ]))
          (Gen_doc.patient_names config))
  in
  Core.Policy.v subjects
    [
      Core.Rule.accept Core.Privilege.Read ~path:"//node()" ~subject:"staff"
        ~priority:10;
      Core.Rule.deny Core.Privilege.Read ~path:"//diagnosis/node()"
        ~subject:"secretary" ~priority:11;
      Core.Rule.accept Core.Privilege.Position ~path:"//diagnosis/node()"
        ~subject:"secretary" ~priority:12;
      Core.Rule.accept Core.Privilege.Read ~path:"/patients" ~subject:"patient"
        ~priority:13;
      Core.Rule.accept Core.Privilege.Read
        ~path:"/patients/*[name() = $USER]/descendant-or-self::node()"
        ~subject:"patient" ~priority:14;
      Core.Rule.deny Core.Privilege.Read ~path:"/patients/*"
        ~subject:"epidemiologist" ~priority:15;
      Core.Rule.accept Core.Privilege.Position ~path:"/patients/*"
        ~subject:"epidemiologist" ~priority:16;
      Core.Rule.accept Core.Privilege.Insert ~path:"/patients"
        ~subject:"secretary" ~priority:17;
      Core.Rule.accept Core.Privilege.Update ~path:"/patients/*"
        ~subject:"secretary" ~priority:18;
      Core.Rule.accept Core.Privilege.Insert ~path:"//diagnosis"
        ~subject:"doctor" ~priority:19;
      Core.Rule.accept Core.Privilege.Update ~path:"//diagnosis/node()"
        ~subject:"doctor" ~priority:20;
      Core.Rule.accept Core.Privilege.Delete ~path:"//diagnosis/node()"
        ~subject:"doctor" ~priority:21;
    ]

type random_config = {
  rules : int;
  deny_fraction : float;
  seed : int;
}

let path_pool =
  [
    "//node()"; "/patients"; "/patients/node()"; "//service"; "//diagnosis";
    "//diagnosis/node()"; "//visit"; "//visit/node()"; "//date"; "//note";
    "//service/node()"; "//text()"; "/patients/*"; "//visit[@n = 1]";
    "//*[diagnosis/text()]";
  ]

let random ?(paths = path_pool) { rules; deny_fraction; seed } =
  let path_pool = paths in
  let subjects =
    Core.Subject.of_list
      [
        (Core.Subject.Role, "r1", []);
        (Core.Subject.Role, "r2", [ "r1" ]);
        (Core.Subject.User, "u", [ "r2" ]);
      ]
  in
  let rng = Prng.create seed in
  let _, rule_list =
    let rec go rng acc i =
      if i = rules then (rng, List.rev acc)
      else
        let rng, deny = Prng.bool rng deny_fraction in
        let rng, path = Prng.pick rng path_pool in
        let rng, privilege = Prng.pick rng Core.Privilege.all in
        let rng, subject = Prng.pick rng [ "r1"; "r2"; "u" ] in
        let rule =
          Core.Rule.v
            (if deny then Core.Rule.Deny else Core.Rule.Accept)
            privilege ~path ~subject ~priority:(i + 1)
        in
        go rng (rule :: acc) (i + 1)
    in
    go rng [] 0
  in
  Core.Policy.v subjects rule_list
