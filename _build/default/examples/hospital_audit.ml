(* A scaled scenario: the epidemiologist's statistical audit the paper's
   §2.1 motivates ("permitted to read illnesses, most probably for
   statistical purpose, but forbidden to see patients' names").

   Generates a 200-patient hospital database, logs in as epidemiologist
   richard, and computes diagnosis statistics over the view — names are
   RESTRICTED, yet every figure is computable.  Then compares the three
   models' views (E11's metrics) and shows a patient session.

   Run with: dune exec examples/hospital_audit.exe *)

let config = { Workload.Gen_doc.default with patients = 200; seed = 7 }

let () =
  let doc = Workload.Gen_doc.generate config in
  let policy = Workload.Gen_policy.hospital config in
  Printf.printf "database: %d nodes, %d patients\n"
    (Xmldoc.Document.size doc - 1)
    config.patients;

  (* --- the epidemiologist's audit ------------------------------------- *)
  let audit = Core.Session.login policy doc ~user:"richard" in
  let view = Core.Session.view audit in
  Printf.printf "richard's view: %d nodes (%d of them RESTRICTED)\n\n"
    (Core.View.visible_count view)
    (List.length (Core.Session.query audit "//RESTRICTED"));

  print_endline "diagnosis frequency over the view (names never revealed):";
  let diagnoses = Core.Session.query audit "//diagnosis/text()" in
  let table = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let label = Option.value ~default:"?" (Xmldoc.Document.label view id) in
      Hashtbl.replace table label
        (1 + Option.value ~default:0 (Hashtbl.find_opt table label)))
    diagnoses;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  |> List.iter (fun (diagnosis, count) ->
         Printf.printf "  %-14s %4d\n" diagnosis count);
  Printf.printf "  %-14s %4d\n" "(none posed)"
    (List.length (Core.Session.query audit "//diagnosis[not(node())]"));

  (* Cross-tabulation service x has-diagnosis, still on the view. *)
  print_endline "\npatients per service with a posed diagnosis:";
  List.iter
    (fun service ->
      let q =
        Printf.sprintf "/patients/*[service = '%s'][diagnosis/text()]" service
      in
      let n = List.length (Core.Session.query audit q) in
      if n > 0 then Printf.printf "  %-14s %4d\n" service n)
    Workload.Gen_doc.services;

  (* What richard cannot do: read a name, or write anything. *)
  Printf.printf "\nname probes on the view: %d matches\n"
    (List.length (Core.Session.query audit "/patients/franck"));
  let _, report =
    Core.Secure_update.apply audit
      (Xupdate.Op.update "//diagnosis[text() = 'influenza']" "redacted")
  in
  Printf.printf "attempted redaction: %d denied, %d applied\n"
    (List.length report.denied)
    (List.length report.relabelled);

  (* --- model comparison (E11) ----------------------------------------- *)
  print_endline "\nmodel comparison for richard (E11 metrics):";
  let comparison = Baselines.Metrics.compare_models policy doc ~user:"richard" in
  print_endline Baselines.Metrics.header;
  Format.printf "%a@." Baselines.Metrics.pp comparison;
  print_endline
    "(deny-subtree loses every readable node below a hidden name;\n\
     structure-preserving reveals the names it was told to hide)";

  (* --- a patient session ----------------------------------------------- *)
  let patient = List.nth (Workload.Gen_doc.patient_names config) 3 in
  let session = Core.Session.login policy doc ~user:patient in
  Printf.printf "\npatient %s sees %d nodes; the secretary sees %d\n" patient
    (Core.View.visible_count (Core.Session.view session))
    (Core.View.visible_count
       (Core.Session.view (Core.Session.login policy doc ~user:"beaufort")));
  Printf.printf "%s's own diagnosis: %s\n" patient
    (match Core.Session.query session "//diagnosis/text()" with
     | [ id ] ->
       Option.value ~default:"?"
         (Xmldoc.Document.label (Core.Session.view session) id)
     | [] -> "(none posed)"
     | _ -> "(multiple?)")
