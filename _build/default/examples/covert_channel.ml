(* The §2.2 covert channel, transposed from SQL to XML, executed against
   both write models:

   - the [10]/SQL-style baseline evaluates updates on the SOURCE database,
     so a subject holding only the update privilege learns how many
     employees earn more than 3000 ("2 rows updated");
   - the paper's model evaluates updates on the subject's VIEW, where the
     salary values do not exist, so the probe returns nothing.

   Run with: dune exec examples/covert_channel.exe *)

let employees_xml =
  {|<employees>
  <employee><name>alice</name><salary>3500</salary></employee>
  <employee><name>bob</name><salary>2900</salary></employee>
  <employee><name>carol</name><salary>4100</salary></employee>
</employees>|}

(* user_B of §2.2: the owner granted the update privilege on salaries —
   and nothing else. *)
let policy =
  Core.Policy_lang.parse
    {|role user_b
user spy isa user_b
grant update on //salary to user_b
grant update on //salary/node() to user_b|}

let probe = Xupdate.Op.update "//employee[salary > 3000]/salary" "9999"

let () =
  let doc = Xmldoc.Xml_parse.of_string employees_xml in
  print_endline "Source database:";
  print_string (Xmldoc.Xml_print.tree_view doc);

  print_endline "\nThe probe (UPDATE ... WHERE salary > 3000, as XUpdate):";
  Format.printf "  %a@." Xupdate.Op.pp probe;

  print_endline "\n--- SQL-style baseline [10]: selection on the source ---";
  let _, report = Baselines.Source_write.apply policy doc ~user:"spy" probe in
  Printf.printf "targets matched: %d\nnodes updated:  %d\n"
    (List.length report.targets)
    (List.length report.relabelled);
  Printf.printf "=> the spy now knows %d employees earn more than 3000\n"
    (List.length report.targets);
  Printf.printf "leak detected: %b\n" (Baselines.Source_write.probe_leaks report);

  print_endline "\n--- This paper's model: selection on the view ---";
  let session = Core.Session.login policy doc ~user:"spy" in
  Printf.printf "the spy's view contains %d nodes:\n"
    (Core.View.visible_count (Core.Session.view session));
  print_string (Xmldoc.Xml_print.tree_view (Core.Session.view session));
  let _, secure_report = Core.Secure_update.apply session probe in
  Printf.printf "targets matched: %d\nnodes updated:  %d\n"
    (List.length secure_report.targets)
    (List.length secure_report.relabelled);
  print_endline "=> the predicate ran against the view; nothing was revealed";

  (* A second probe pattern: binary search on a specific employee's
     salary, the classic SQL trick, also returns nothing. *)
  print_endline "\n--- Binary-search probe on alice's salary ---";
  let binary_probe threshold =
    Xupdate.Op.update
      (Printf.sprintf "//employee[name = 'alice'][salary > %d]/salary" threshold)
      "0"
  in
  List.iter
    (fun threshold ->
      let _, baseline =
        Baselines.Source_write.apply policy doc ~user:"spy"
          (binary_probe threshold)
      in
      let _, secure = Core.Secure_update.apply session (binary_probe threshold) in
      Printf.printf
        "threshold %4d: baseline matches %d target(s); secure matches %d\n"
        threshold
        (List.length baseline.targets)
        (List.length secure.targets))
    [ 2000; 3000; 3400; 3600; 4000 ];
  print_endline
    "=> under the baseline the spy bisects alice's salary; under the\n\
     \   paper's model every probe is evaluated on the view and returns 0"
