(* A tour of all six XUpdate operations (§3.4), replaying the paper's
   worked examples on the figure-2 database — first unsecured (the §3.4
   semantics), then through the XML wire syntax, then through the secure
   path as doctor laporte.

   Run with: dune exec examples/xupdate_tour.exe *)

module P = Core.Paper_example

let show title doc =
  Printf.printf "\n--- %s ---\n%s%!" title (Xmldoc.Xml_print.tree_view doc)

let () =
  let doc = P.document () in
  show "Initial database (figure 2)" doc;

  (* §3.4.1: rename //service -> department *)
  let o = Xupdate.Apply.apply doc (Xupdate.Op.rename "//service" "department") in
  show "xupdate:rename //service -> department" o.doc;

  (* §3.4.1: update franck's diagnosis -> pharyngitis *)
  let o =
    Xupdate.Apply.apply doc
      (Xupdate.Op.update "/patients/franck/diagnosis" "pharyngitis")
  in
  show "xupdate:update /patients/franck/diagnosis -> pharyngitis" o.doc;

  (* §3.4.2: append albert's record *)
  let albert =
    Xmldoc.Tree.element "albert"
      [
        Xmldoc.Tree.element "service" [ Xmldoc.Tree.text "cardiology" ];
        Xmldoc.Tree.element "diagnosis" [];
      ]
  in
  let o = Xupdate.Apply.apply doc (Xupdate.Op.append "/patients" albert) in
  show "xupdate:append a new record under /patients" o.doc;
  Printf.printf "fresh identifiers: %s (no existing node was renumbered)\n"
    (String.concat ", " (List.map Ordpath.to_string o.inserted));

  (* insert-before / insert-after *)
  let o =
    Xupdate.Apply.apply doc
      (Xupdate.Op.insert_before "/patients/franck"
         (Xmldoc.Tree.element "aaron" []))
  in
  let o =
    Xupdate.Apply.apply o.doc
      (Xupdate.Op.insert_after "/patients/robert"
         (Xmldoc.Tree.element "zoe" []))
  in
  show "xupdate:insert-before aaron, insert-after zoe" o.doc;

  (* §3.4.3: remove franck's diagnosis *)
  let o =
    Xupdate.Apply.apply doc (Xupdate.Op.remove "/patients/franck/diagnosis")
  in
  show "xupdate:remove /patients/franck/diagnosis" o.doc;

  (* The same batch through the XUpdate XML wire syntax. *)
  let modifications =
    {|<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:rename select="//service">department</xupdate:rename>
  <xupdate:append select="/patients">
    <xupdate:element name="albert">
      <service>cardiology</service>
      <diagnosis/>
    </xupdate:element>
  </xupdate:append>
  <xupdate:remove select="/patients/franck/diagnosis"/>
</xupdate:modifications>|}
  in
  let ops = Xupdate.Xupdate_xml.ops_of_string modifications in
  Printf.printf "\nParsed %d operations from the wire syntax:\n"
    (List.length ops);
  List.iter (fun op -> Format.printf "  %a@." Xupdate.Op.pp op) ops;
  show "After applying the modification document"
    (Xupdate.Apply.apply_all doc ops);

  (* Finally, the secure path: the same operations as doctor laporte —
     the rename of //service is denied (doctors hold no update privilege
     on services), the rest succeed where privileges allow. *)
  print_endline "\n=== Secure path, as doctor laporte ===";
  let session = P.login P.laporte in
  let session, reports = Core.Secure_update.apply_all session ops in
  List.iter
    (fun (r : Core.Secure_update.report) ->
      Format.printf "%a@.@." Core.Secure_update.pp_report r)
    reports;
  show "Doctor's database afterwards" (Core.Session.source session)
