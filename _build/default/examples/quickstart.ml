(* Quickstart: the paper's running example end to end.

   Builds the figure-2 medical database, loads the figure-3 subject
   hierarchy and the axiom-13 policy, then logs four kinds of users in and
   prints the views of §4.4.1, finishing with a doctor updating a
   diagnosis through the secure write path.

   Run with: dune exec examples/quickstart.exe *)

module P = Core.Paper_example

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let () =
  section "Source database (figure 2)";
  let doc = P.document () in
  print_string (Xmldoc.Xml_print.tree_view doc);

  section "Security policy (axiom 13)";
  print_string P.policy_text;

  (* §4.4.1: one view per kind of subject. *)
  List.iter
    (fun (title, user) ->
      section title;
      let session = P.login user in
      print_string (Xmldoc.Xml_print.tree_view (Core.Session.view session)))
    [
      ("View for secretary beaufort (diagnosis contents RESTRICTED)", P.beaufort);
      ("View for patient robert (own record only)", P.robert);
      ("View for epidemiologist richard (patient names RESTRICTED)", P.richard);
      ("View for doctor laporte (everything)", P.laporte);
    ];

  section "Queries run on the view, not the source";
  let secretary = P.login P.beaufort in
  Printf.printf "secretary, //diagnosis/node(): %d nodes (all RESTRICTED)\n"
    (List.length (Core.Session.query secretary "//diagnosis/node()"));
  Printf.printf "secretary, //text()[. = 'tonsillitis']: %d nodes\n"
    (List.length (Core.Session.query secretary "//text()[. = 'tonsillitis']"));

  section "Doctor laporte updates franck's diagnosis (secure write)";
  let doctor = P.login P.laporte in
  let op = Xupdate.Op.update "/patients/franck/diagnosis" "pharyngitis" in
  let doctor, report = Core.Secure_update.apply doctor op in
  Format.printf "%a@." Core.Secure_update.pp_report report;
  print_string (Xmldoc.Xml_print.tree_view (Core.Session.source doctor));

  section "Secretary beaufort tries the same update";
  let secretary, report =
    Core.Secure_update.apply secretary op
  in
  Format.printf "%a@." Core.Secure_update.pp_report report;
  ignore secretary;

  section "Why is the diagnosis content RESTRICTED for the secretary?";
  let secretary = P.login P.beaufort in
  let tonsillitis = P.find (Core.Session.source secretary) "tonsillitis" in
  print_string (Core.Explain.describe secretary tonsillitis)
