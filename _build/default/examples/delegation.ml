(* Administration walkthrough: ownership, delegation with grant option,
   cascading revocation (the [10] administration model referenced in
   §4.3), plus the two §5 enforcement alternatives — the compiled XSLT
   security processor and the lazy query-filtering view.

   Run with: dune exec examples/delegation.exe *)

let subjects =
  Core.Subject.of_list
    [
      (Core.Subject.Role, "clerk", []);
      (Core.Subject.User, "chief", []);
      (Core.Subject.User, "alice", [ "clerk" ]);
      (Core.Subject.User, "bob", [ "clerk" ]);
    ]

let doc =
  Xmldoc.Xml_parse.of_string
    {|<hospital>
  <ward name="A">
    <patient><name>franck</name><diagnosis>tonsillitis</diagnosis></patient>
    <patient><name>robert</name><diagnosis>pneumonia</diagnosis></patient>
  </ward>
  <pharmacy>
    <stock item="aspirin">120</stock>
  </pharmacy>
</hospital>|}

let ok = function
  | Ok v -> v
  | Error msg -> failwith ("unexpected: " ^ msg)

let show_policy admin =
  print_string (Core.Policy_lang.to_string (Core.Admin.policy admin))

let () =
  print_endline "=== The chief owns the database ===";
  let admin = Core.Admin.create ~owner:"chief" (Core.Policy.v subjects []) in

  print_endline "\nchief lets every clerk see the database root (views are";
  print_endline "parent-closed: axioms 16-17 require the parent selected):";
  let admin =
    ok (Core.Admin.grant admin doc ~issuer:"chief" Core.Privilege.Read
          ~path:"/hospital" ~subject:"clerk")
  in

  print_endline "\nchief delegates read administration over ward A to alice,";
  print_endline "with the grant option:";
  let admin =
    ok (Core.Admin.delegate admin doc ~issuer:"chief" ~with_option:true
          Core.Privilege.Read ~path:"//ward/descendant-or-self::node()"
          ~subject:"alice")
  in
  let root_delegation = List.hd (Core.Admin.delegations admin) in

  print_endline "alice grants bob read access to the patients' records:";
  let admin =
    ok (Core.Admin.grant admin doc ~issuer:"alice" Core.Privilege.Read
          ~path:"//patient/descendant-or-self::node()" ~subject:"bob")
  in
  let admin =
    ok (Core.Admin.grant admin doc ~issuer:"alice" Core.Privilege.Read
          ~path:"//ward" ~subject:"bob")
  in

  print_endline "alice tries to touch the pharmacy (outside her authority):";
  (match
     Core.Admin.grant admin doc ~issuer:"alice" Core.Privilege.Read
       ~path:"//pharmacy" ~subject:"bob"
   with
   | Ok _ -> print_endline "  BUG: accepted"
   | Error msg -> Printf.printf "  rejected: %s\n" msg);

  print_endline "\nthe administered policy now reads:";
  show_policy admin;

  let policy = Core.Admin.policy admin in
  let session = Core.Session.login policy doc ~user:"bob" in
  Printf.printf "\nbob's view (%d nodes):\n"
    (Core.View.visible_count (Core.Session.view session));
  print_string (Xmldoc.Xml_print.tree_view (Core.Session.view session));

  print_endline "\n=== Enforcement alternatives (§5) ===";
  print_endline "\n1. The compiled XSLT security processor:";
  print_string (Core.Xslt_enforcer.stylesheet_source policy ~user:"bob");
  let enforced = Core.Xslt_enforcer.enforce policy doc ~user:"bob" in
  Printf.printf "stylesheet output equals the view: %b\n"
    (String.equal
       (Xmldoc.Xml_print.to_string ~indent:true (Core.Session.view session))
       (Xmldoc.Xml_print.to_string ~indent:true enforced));

  print_endline "\n2. Lazy query filtering (no materialisation):";
  let lv = Core.Lazy_view.of_session session in
  let hits = Core.Lazy_view.select_str lv "//patient/name/text()" in
  Printf.printf "//patient/name/text() through the lazy view: %d hits, "
    (List.length hits);
  Printf.printf "visibility decided for %d of %d nodes\n"
    (Core.Lazy_view.probed_nodes lv)
    (Xmldoc.Document.size doc);

  print_endline "\n=== Cascading revocation ===";
  Printf.printf "chief revokes alice's delegation (timestamp %d)...\n"
    root_delegation.timestamp;
  let admin =
    ok (Core.Admin.revoke_delegation admin doc ~issuer:"chief"
          ~timestamp:root_delegation.timestamp)
  in
  Printf.printf "remaining rules: %d, remaining delegations: %d\n"
    (List.length (Core.Policy.rules (Core.Admin.policy admin)))
    (List.length (Core.Admin.delegations admin));
  let session =
    Core.Session.login (Core.Admin.policy admin) doc ~user:"bob"
  in
  Printf.printf "bob's view afterwards: %d nodes\n"
    (Core.View.visible_count (Core.Session.view session))
