examples/hospital_audit.ml: Baselines Core Format Hashtbl Int List Option Printf Workload Xmldoc Xupdate
