examples/covert_channel.ml: Baselines Core Format List Printf Xmldoc Xupdate
