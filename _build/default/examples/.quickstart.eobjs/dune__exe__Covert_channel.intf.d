examples/covert_channel.mli:
