examples/delegation.ml: Core List Printf String Xmldoc
