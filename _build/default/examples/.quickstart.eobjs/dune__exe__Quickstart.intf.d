examples/quickstart.mli:
