examples/xupdate_tour.ml: Core Format List Ordpath Printf String Xmldoc Xupdate
