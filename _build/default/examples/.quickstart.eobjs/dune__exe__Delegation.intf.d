examples/delegation.mli:
