examples/hospital_audit.mli:
