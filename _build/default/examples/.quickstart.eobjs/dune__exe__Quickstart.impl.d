examples/quickstart.ml: Core Format List Printf Xmldoc Xupdate
