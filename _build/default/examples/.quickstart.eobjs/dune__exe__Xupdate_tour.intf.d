examples/xupdate_tour.mli:
