bin/xmlsecu.ml: Arg Baselines Cmd Cmdliner Core Format List Option Ordpath Printf Repl Term Xmldoc Xpath Xupdate
