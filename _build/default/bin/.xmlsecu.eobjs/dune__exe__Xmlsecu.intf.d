bin/xmlsecu.mli:
