bin/repl.ml: Baselines Core Format List Option Ordpath Printf String Xmldoc Xpath Xupdate
