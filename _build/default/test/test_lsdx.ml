(* Tests for the LSDX-style labelling scheme, including a differential
   check against Ordpath: both implementations of the §3.1 numbering
   contract must agree on order and parenthood for identical insertion
   scripts. *)

let test_basics () =
  Alcotest.(check string) "document" "/" (Lsdx.to_string Lsdx.document);
  Alcotest.(check int) "document depth" 0 (Lsdx.depth Lsdx.document);
  Alcotest.(check int) "root depth" 1 (Lsdx.depth Lsdx.root);
  Alcotest.(check bool) "parent of root" true
    (match Lsdx.parent Lsdx.root with
     | Some p -> Lsdx.equal p Lsdx.document
     | None -> false);
  Alcotest.(check bool) "document before root" true
    (Lsdx.compare Lsdx.document Lsdx.root < 0)

let test_sibling_allocation () =
  let p = Lsdx.root in
  let a = Lsdx.first_child p in
  let b = Lsdx.append_after p ~last:(Some a) in
  let c = Lsdx.append_after p ~last:(Some b) in
  Alcotest.(check bool) "a < b < c" true
    (Lsdx.compare a b < 0 && Lsdx.compare b c < 0);
  let m = Lsdx.child_under ~parent:p ~left:(Some a) ~right:(Some b) in
  Alcotest.(check bool) "a < m < b" true
    (Lsdx.compare a m < 0 && Lsdx.compare m b < 0);
  let before = Lsdx.child_under ~parent:p ~left:None ~right:(Some a) in
  Alcotest.(check bool) "before < a" true (Lsdx.compare before a < 0);
  List.iter
    (fun x -> Alcotest.(check bool) "child of p" true (Lsdx.is_child ~parent:p x))
    [ a; b; c; m; before ]

let test_ancestry () =
  let p = Lsdx.root in
  let c = Lsdx.first_child p in
  let g = Lsdx.first_child c in
  Alcotest.(check bool) "ancestor" true (Lsdx.is_ancestor ~ancestor:p g);
  Alcotest.(check bool) "not descendant" false (Lsdx.is_ancestor ~ancestor:g p);
  Alcotest.(check bool) "ancestor precedes" true (Lsdx.compare p g < 0);
  Alcotest.(check int) "depth" 3 (Lsdx.depth g)

let test_bad_bounds () =
  let p = Lsdx.root in
  let a = Lsdx.first_child p in
  let b = Lsdx.append_after p ~last:(Some a) in
  (match Lsdx.child_under ~parent:p ~left:(Some b) ~right:(Some a) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "left >= right must be rejected");
  match Lsdx.child_under ~parent:a ~left:(Some b) ~right:None with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign bound must be rejected"

(* Random sibling-insertion scenarios keep strict order (mirrors the
   ordpath property). *)
let prop_sibling_order =
  QCheck.Test.make ~count:300 ~name:"random insertions keep strict order"
    (QCheck.make ~print:QCheck.Print.(list int)
       QCheck.Gen.(list_size (int_range 1 80) (int_range 0 1000)))
    (fun choices ->
      let parent = Lsdx.root in
      let insert_at siblings gap_index =
        let n = List.length siblings in
        let gap = gap_index mod (n + 1) in
        let left = if gap = 0 then None else Some (List.nth siblings (gap - 1)) in
        let right = if gap = n then None else Some (List.nth siblings gap) in
        let fresh = Lsdx.child_under ~parent ~left ~right in
        let rec insert i = function
          | rest when i = gap -> fresh :: rest
          | [] -> [ fresh ]
          | x :: rest -> x :: insert (i + 1) rest
        in
        insert 0 siblings
      in
      let siblings =
        List.fold_left insert_at [ Lsdx.first_child parent ] choices
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Lsdx.compare a b < 0 && sorted rest
        | _ -> true
      in
      sorted siblings
      && List.for_all (fun s -> Lsdx.is_child ~parent s) siblings)

(* Differential: drive Ordpath and Lsdx through the same script; the
   relative order of the created labels must agree everywhere. *)
let prop_schemes_agree =
  QCheck.Test.make ~count:200 ~name:"ordpath and lsdx agree on order"
    (QCheck.make ~print:QCheck.Print.(list int)
       QCheck.Gen.(list_size (int_range 1 50) (int_range 0 1000)))
    (fun choices ->
      let step (ord_sibs, lsdx_sibs) gap_index =
        let n = List.length ord_sibs in
        let gap = gap_index mod (n + 1) in
        let bounds sibs =
          ( (if gap = 0 then None else Some (List.nth sibs (gap - 1))),
            if gap = n then None else Some (List.nth sibs gap) )
        in
        let ol, orr = bounds ord_sibs in
        let ll, lr = bounds lsdx_sibs in
        let o = Ordpath.child_under ~parent:Ordpath.root ~left:ol ~right:orr in
        let l = Lsdx.child_under ~parent:Lsdx.root ~left:ll ~right:lr in
        let rec insert i fresh = function
          | rest when i = gap -> fresh :: rest
          | [] -> [ fresh ]
          | x :: rest -> x :: insert (i + 1) fresh rest
        in
        (insert 0 o ord_sibs, insert 0 l lsdx_sibs)
      in
      let ord_sibs, lsdx_sibs =
        List.fold_left step
          ([ Ordpath.first_child Ordpath.root ], [ Lsdx.first_child Lsdx.root ])
          choices
      in
      (* Same length, and pairwise comparisons agree. *)
      List.length ord_sibs = List.length lsdx_sibs
      && List.for_all2
           (fun o l ->
             List.for_all2
               (fun o' l' ->
                 Stdlib.compare (Ordpath.compare o o' > 0)
                   (Lsdx.compare l l' > 0)
                 = 0)
               ord_sibs lsdx_sibs)
           ord_sibs lsdx_sibs)

let prop_midpoint_always_fits =
  (* Repeated bisection of the same pair never gets stuck. *)
  QCheck.Test.make ~count:100 ~name:"repeated bisection always succeeds"
    (QCheck.int_range 1 60)
    (fun rounds ->
      let parent = Lsdx.root in
      let a = Lsdx.first_child parent in
      let b = Lsdx.append_after parent ~last:(Some a) in
      let rec go left right n =
        n = 0
        ||
        let m = Lsdx.child_under ~parent ~left:(Some left) ~right:(Some right) in
        Lsdx.compare left m < 0
        && Lsdx.compare m right < 0
        && go left m (n - 1)
      in
      go a b rounds)

let () =
  Alcotest.run "lsdx"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "sibling allocation" `Quick test_sibling_allocation;
          Alcotest.test_case "ancestry" `Quick test_ancestry;
          Alcotest.test_case "bad bounds" `Quick test_bad_bounds;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sibling_order; prop_schemes_agree; prop_midpoint_always_fits ] );
    ]
