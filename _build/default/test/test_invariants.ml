(* Failure-injection suite: random secure-update sequences must keep the
   source database and every derived view structurally valid, preserve
   the no-renumbering contract, and never widen a user's access. *)

open Xmldoc
module P = Core.Paper_example

let test_valid_examples () =
  Alcotest.(check (list string)) "paper example" []
    (Invariants.check_document (P.document ()));
  Alcotest.(check (list string)) "empty document" []
    (Invariants.check Document.empty);
  let generated =
    Workload.Gen_doc.generate { Workload.Gen_doc.default with patients = 30 }
  in
  Alcotest.(check (list string)) "generated hospital" []
    (Invariants.check_document generated)

let test_detects_orphans_and_kinds () =
  let doc = P.document () in
  let orphan =
    Document.add_node doc
      (Node.v ~id:(Ordpath.of_string "5.1") ~kind:Node.Element "stray")
  in
  Alcotest.(check bool) "missing parent" false (Invariants.is_valid orphan);
  let text_with_child =
    let text_id = P.find doc "tonsillitis" in
    Document.add_node doc
      (Node.v ~id:(Ordpath.first_child text_id) ~kind:Node.Text "inside-text")
  in
  Alcotest.(check bool) "text node with a child" false
    (Invariants.is_valid text_with_child);
  let fake_document =
    Document.add_node doc
      (Node.v ~id:(Ordpath.of_string "7") ~kind:Node.Document "/")
  in
  Alcotest.(check bool) "second document-kind node" false
    (Invariants.is_valid fake_document);
  let two_roots =
    fst
      (Document.append_tree doc ~parent:Ordpath.document
         (Tree.element "second-root" []))
  in
  Alcotest.(check bool) "tree invariant still fine" true
    (Invariants.is_valid two_roots);
  Alcotest.(check bool) "but not a single-root document" false
    (Invariants.check_document two_roots = [])

(* --- failure injection ---------------------------------------------------- *)

let random_op rng =
  let paths =
    [ "//node()"; "/patients"; "/patients/*"; "//diagnosis"; "//service";
      "//diagnosis/node()"; "//text()"; "//RESTRICTED"; "/patients/*[1]" ]
  in
  let labels = [ "x"; "renamed"; "updated" ] in
  let rng, path = Workload.Prng.pick rng paths in
  let rng, label = Workload.Prng.pick rng labels in
  let tree = Tree.element "note" [ Tree.text "injected" ] in
  let rng, op_kind = Workload.Prng.int rng 6 in
  ( rng,
    match op_kind with
    | 0 -> Xupdate.Op.rename path label
    | 1 -> Xupdate.Op.update path label
    | 2 -> Xupdate.Op.append path tree
    | 3 -> Xupdate.Op.insert_before path tree
    | 4 -> Xupdate.Op.insert_after path tree
    | _ -> Xupdate.Op.remove path )

let users = [ P.beaufort; P.laporte; P.richard; P.robert ]

let prop_updates_preserve_invariants =
  QCheck.Test.make ~count:80
    ~name:"random secure-update sequences keep source and views valid"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Workload.Prng.create seed in
      let rng, steps = Workload.Prng.int rng 8 in
      let rec go rng session i ok =
        if (not ok) || i = steps then ok
        else
          let rng, user = Workload.Prng.pick rng users in
          let rng, op = random_op rng in
          let session =
            Core.Session.login (Core.Session.policy session)
              (Core.Session.source session) ~user
          in
          let session, _report = Core.Secure_update.apply session op in
          let source_ok =
            Invariants.check_document (Core.Session.source session) = []
          in
          let view_ok = Invariants.check (Core.Session.view session) = [] in
          go rng session (i + 1) (ok && source_ok && view_ok)
      in
      go rng (P.login P.laporte) 0 true)

let prop_no_renumbering_across_sequences =
  (* The §3.1 contract holds per update: a node surviving an operation
     keeps its identifier and kind.  (Across several operations an
     identifier freed by a remove may legitimately be reallocated to a
     fresh node, so the invariant is checked step by step.) *)
  QCheck.Test.make ~count:60
    ~name:"surviving nodes keep id and kind across each update"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Workload.Prng.create seed in
      let rec go rng session i ok =
        if (not ok) || i = 5 then ok
        else
          let rng, op = random_op rng in
          let before = Core.Session.source session in
          let session, _ = Core.Secure_update.apply session op in
          let after = Core.Session.source session in
          let step_ok =
            Document.fold
              (fun (n : Node.t) ok ->
                ok
                &&
                match Document.find after n.id with
                | None -> true (* removed *)
                | Some m -> m.kind = n.kind)
              before true
          in
          go rng session (i + 1) step_ok
      in
      go rng (P.login P.laporte) 0 true)

let prop_view_monotone_under_foreign_updates =
  (* A user's view never shows a node the user holds neither read nor
     position on, no matter what other users did to the database. *)
  QCheck.Test.make ~count:60 ~name:"views never over-expose after updates"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Workload.Prng.create seed in
      let rec go rng doc i =
        if i = 4 then doc
        else
          let rng, user = Workload.Prng.pick rng users in
          let rng, op = random_op rng in
          let session = Core.Session.login P.policy doc ~user in
          let session, _ = Core.Secure_update.apply session op in
          go rng (Core.Session.source session) (i + 1)
      in
      let doc = go rng (P.document ()) 0 in
      List.for_all
        (fun user ->
          let session = Core.Session.login P.policy doc ~user in
          let perm = Core.Session.perm session in
          Document.fold
            (fun (n : Node.t) ok ->
              ok
              && (n.kind = Node.Document
                 || Core.Perm.holds perm Core.Privilege.Read n.id
                 || Core.Perm.holds perm Core.Privilege.Position n.id))
            (Core.Session.view session)
            true)
        users)

let () =
  Alcotest.run "invariants"
    [
      ( "checks",
        [
          Alcotest.test_case "valid documents" `Quick test_valid_examples;
          Alcotest.test_case "violations detected" `Quick
            test_detects_orphans_and_kinds;
        ] );
      ( "failure injection",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_updates_preserve_invariants;
            prop_no_renumbering_across_sequences;
            prop_view_monotone_under_foreign_updates;
          ] );
    ]
