(* Tests for the workload generators: determinism, schema shape, and the
   scaled hospital policy. *)

open Xmldoc

let test_prng_determinism () =
  let stream seed n =
    let rec go rng acc i =
      if i = n then List.rev acc
      else
        let rng, v = Workload.Prng.int rng 1000 in
        go rng (v :: acc) (i + 1)
    in
    go (Workload.Prng.create seed) [] 0
  in
  Alcotest.(check (list int)) "same seed, same stream" (stream 42 20) (stream 42 20);
  Alcotest.(check bool) "different seeds differ" true
    (stream 42 20 <> stream 43 20)

let test_prng_bounds () =
  let rec go rng i =
    if i = 0 then ()
    else
      let rng, v = Workload.Prng.int rng 7 in
      Alcotest.(check bool) "in range" true (v >= 0 && v < 7);
      go rng (i - 1)
  in
  go (Workload.Prng.create 1) 1000

let test_prng_pick_weighted () =
  let rng = Workload.Prng.create 5 in
  let rec count rng zeros i =
    if i = 0 then zeros
    else
      let rng, v = Workload.Prng.pick_weighted rng [ (9, 0); (1, 1) ] in
      count rng (if v = 0 then zeros + 1 else zeros) (i - 1)
  in
  let zeros = count rng 0 1000 in
  Alcotest.(check bool) "weighting roughly respected" true
    (zeros > 800 && zeros < 980)

let test_prng_shuffle () =
  let original = List.init 20 Fun.id in
  let _, shuffled = Workload.Prng.shuffle (Workload.Prng.create 9) original in
  Alcotest.(check (list int)) "permutation" original
    (List.sort compare shuffled);
  Alcotest.(check bool) "actually shuffled" true (shuffled <> original)

let test_gen_doc_shape () =
  let config = { Workload.Gen_doc.default with patients = 25; seed = 1 } in
  let doc = Workload.Gen_doc.generate config in
  let root = Option.get (Document.root_element doc) in
  Alcotest.(check string) "root is patients" "patients" root.label;
  let records = Document.element_children doc root.id in
  Alcotest.(check int) "25 records" 25 (List.length records);
  List.iter
    (fun (p : Node.t) ->
      let kids =
        List.map (fun (n : Node.t) -> n.label)
          (Document.element_children doc p.id)
      in
      match kids with
      | "service" :: "diagnosis" :: rest ->
        Alcotest.(check bool) "only visits after" true
          (List.for_all (String.equal "visit") rest)
      | _ -> Alcotest.failf "bad record shape: %s" (String.concat "," kids))
    records

let test_gen_doc_determinism () =
  let config = { Workload.Gen_doc.default with patients = 10; seed = 77 } in
  Alcotest.(check bool) "same seed, same document" true
    (Document.equal (Workload.Gen_doc.generate config)
       (Workload.Gen_doc.generate config));
  Alcotest.(check bool) "different seed, different document" true
    (not
       (Document.equal
          (Workload.Gen_doc.generate config)
          (Workload.Gen_doc.generate { config with seed = 78 })))

let test_gen_doc_diagnosed_fraction () =
  let config =
    { Workload.Gen_doc.default with patients = 100; diagnosed_fraction = 0.0 }
  in
  let doc = Workload.Gen_doc.generate config in
  Alcotest.(check int) "no diagnosis text when fraction 0" 0
    (List.length (Xpath.Eval.select_str doc "//diagnosis/text()"));
  let all =
    Workload.Gen_doc.generate { config with diagnosed_fraction = 1.0 }
  in
  Alcotest.(check int) "all diagnosed when fraction 1" 100
    (List.length (Xpath.Eval.select_str all "//diagnosis/text()"))

let test_patient_names_unique () =
  let config = { Workload.Gen_doc.default with patients = 60 } in
  let names = Workload.Gen_doc.patient_names config in
  Alcotest.(check int) "unique" 60
    (List.length (List.sort_uniq String.compare names))

let test_hospital_policy () =
  let config = { Workload.Gen_doc.default with patients = 15; seed = 2 } in
  let doc = Workload.Gen_doc.generate config in
  let policy = Workload.Gen_policy.hospital config in
  (* Every patient can log in and sees exactly their own record. *)
  List.iter
    (fun name ->
      let session = Core.Session.login policy doc ~user:name in
      let own = Core.Session.query session (Printf.sprintf "/patients/%s" name) in
      Alcotest.(check int) (name ^ " sees own record") 1 (List.length own);
      let others = Core.Session.query session "/patients/*" in
      Alcotest.(check int) (name ^ " sees no other record") 1
        (List.length others))
    (Workload.Gen_doc.patient_names config);
  (* Staff logins work too. *)
  List.iter
    (fun user -> ignore (Core.Session.login policy doc ~user))
    Workload.Gen_policy.hospital_staff

let test_random_policy () =
  let policy =
    Workload.Gen_policy.random { rules = 50; deny_fraction = 0.5; seed = 3 }
  in
  Alcotest.(check int) "50 rules" 50 (List.length (Core.Policy.rules policy));
  (* Priorities are the issue order. *)
  let priorities = List.map (fun (r : Core.Rule.t) -> r.priority) (Core.Policy.rules policy) in
  Alcotest.(check (list int)) "ascending priorities"
    (List.init 50 (fun i -> i + 1))
    priorities;
  (* Deterministic. *)
  let policy2 =
    Workload.Gen_policy.random { rules = 50; deny_fraction = 0.5; seed = 3 }
  in
  Alcotest.(check bool) "deterministic" true
    (List.equal Core.Rule.equal (Core.Policy.rules policy)
       (Core.Policy.rules policy2))

let test_queries_parse_and_run () =
  let doc = Workload.Gen_doc.generate Workload.Gen_doc.default in
  List.iter
    (fun q -> ignore (Xpath.Eval.select_str doc q))
    (Workload.Gen_query.mix @ Workload.Gen_query.random ~seed:4 ~count:30)

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "weighted pick" `Quick test_prng_pick_weighted;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
        ] );
      ( "documents",
        [
          Alcotest.test_case "shape" `Quick test_gen_doc_shape;
          Alcotest.test_case "determinism" `Quick test_gen_doc_determinism;
          Alcotest.test_case "diagnosed fraction" `Quick
            test_gen_doc_diagnosed_fraction;
          Alcotest.test_case "unique names" `Quick test_patient_names_unique;
        ] );
      ( "policies",
        [
          Alcotest.test_case "hospital" `Quick test_hospital_policy;
          Alcotest.test_case "random" `Quick test_random_policy;
        ] );
      ( "queries",
        [ Alcotest.test_case "parse and run" `Quick test_queries_parse_and_run ] );
    ]
