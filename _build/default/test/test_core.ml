(* Tests for the security model: subject closure (§4.2), conflict
   resolution (§4.3), view derivation (§4.4.1), secure updates (§4.4.2),
   the policy language, explanation, and Datalog parity with the paper's
   axioms. *)

open Xmldoc
module P = Core.Paper_example

let view_labels session =
  List.map (fun (n : Node.t) -> n.label)
    (Document.nodes (Core.Session.view session))

let source_labels session =
  List.map (fun (n : Node.t) -> n.label)
    (Document.nodes (Core.Session.source session))

let all_labels =
  [
    "/"; "patients";
    "franck"; "service"; "otolarynology"; "diagnosis"; "tonsillitis";
    "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia";
  ]

(* --- subjects (fig. 3) ------------------------------------------------ *)

let test_subject_closure () =
  let s = P.subjects in
  Alcotest.(check (list string)) "beaufort's ancestors"
    [ "beaufort"; "secretary"; "staff" ]
    (Core.Subject.ancestors s "beaufort");
  Alcotest.(check bool) "reflexive" true (Core.Subject.isa s "staff" "staff");
  Alcotest.(check bool) "transitive" true (Core.Subject.isa s "laporte" "staff");
  Alcotest.(check bool) "patients are not staff" false
    (Core.Subject.isa s "robert" "staff");
  Alcotest.(check bool) "no reverse edge" false
    (Core.Subject.isa s "staff" "doctor")

let test_subject_cycles () =
  let s = Core.Subject.of_list
      [ (Core.Subject.Role, "a", []); (Core.Subject.Role, "b", [ "a" ]) ]
  in
  (match Core.Subject.add_isa s ~sub:"a" ~super:"b" with
   | exception Core.Subject.Cycle _ -> ()
   | _ -> Alcotest.fail "cycle should be rejected");
  (match Core.Subject.add_isa s ~sub:"a" ~super:"a" with
   | exception Core.Subject.Cycle _ -> ()
   | _ -> Alcotest.fail "self-loop should be rejected");
  (match Core.Subject.add_isa s ~sub:"a" ~super:"missing" with
   | exception Core.Subject.Unknown_subject _ -> ()
   | _ -> Alcotest.fail "unknown super should be rejected")

let test_multiple_inheritance () =
  let s =
    Core.Subject.of_list
      [
        (Core.Subject.Role, "nurse", []);
        (Core.Subject.Role, "admin", []);
        (Core.Subject.User, "carla", [ "nurse"; "admin" ]);
      ]
  in
  Alcotest.(check (list string)) "both roles"
    [ "admin"; "carla"; "nurse" ]
    (Core.Subject.ancestors s "carla")

(* --- perm (axiom 14) --------------------------------------------------- *)

let test_perm_secretary () =
  let session = P.login P.beaufort in
  let doc = Core.Session.source session in
  let tonsillitis = P.find doc "tonsillitis" in
  let diagnosis = P.find doc "diagnosis" in
  let franck = P.find doc "franck" in
  let patients = P.find doc "patients" in
  let holds = Core.Session.holds session in
  Alcotest.(check bool) "read on franck" true (holds Core.Privilege.Read franck);
  Alcotest.(check bool) "read on diagnosis element" true
    (holds Core.Privilege.Read diagnosis);
  Alcotest.(check bool) "no read on diagnosis text" false
    (holds Core.Privilege.Read tonsillitis);
  Alcotest.(check bool) "position on diagnosis text" true
    (holds Core.Privilege.Position tonsillitis);
  Alcotest.(check bool) "insert on patients" true
    (holds Core.Privilege.Insert patients);
  Alcotest.(check bool) "update on patient elements" true
    (holds Core.Privilege.Update franck);
  Alcotest.(check bool) "no delete anywhere" false
    (holds Core.Privilege.Delete franck)

let test_perm_priority_override () =
  (* A later grant cancels an earlier deny, and vice versa. *)
  let subjects =
    Core.Subject.of_list [ (Core.Subject.User, "u", []) ]
  in
  let doc = Xml_parse.of_string "<a><b>x</b></a>" in
  let policy0 = Core.Policy.v subjects [] in
  let p1 = Core.Policy.grant policy0 Core.Privilege.Read ~path:"//node()" ~subject:"u" in
  let p2 = Core.Policy.deny p1 Core.Privilege.Read ~path:"//b" ~subject:"u" in
  let p3 = Core.Policy.grant p2 Core.Privilege.Read ~path:"//b" ~subject:"u" in
  let b = P.find doc "b" in
  let s2 = Core.Session.login p2 doc ~user:"u" in
  let s3 = Core.Session.login p3 doc ~user:"u" in
  Alcotest.(check bool) "denied after deny" false
    (Core.Session.holds s2 Core.Privilege.Read b);
  Alcotest.(check bool) "restored by regrant" true
    (Core.Session.holds s3 Core.Privilege.Read b);
  (* Closed world: no rule means no privilege. *)
  let s0 = Core.Session.login policy0 doc ~user:"u" in
  Alcotest.(check bool) "closed world" false
    (Core.Session.holds s0 Core.Privilege.Read b)

let test_perm_user_variable () =
  let session = P.login P.robert in
  let doc = Core.Session.source session in
  Alcotest.(check bool) "robert reads his record" true
    (Core.Session.holds session Core.Privilege.Read (P.find doc "robert"));
  Alcotest.(check bool) "robert cannot read franck" false
    (Core.Session.holds session Core.Privilege.Read (P.find doc "franck"))

(* --- views (§4.4.1) ---------------------------------------------------- *)

let test_view_secretary () =
  let session = P.login P.beaufort in
  Alcotest.(check (list string)) "diagnosis contents RESTRICTED"
    [
      "/"; "patients";
      "franck"; "service"; "otolarynology"; "diagnosis"; "RESTRICTED";
      "robert"; "service"; "pneumology"; "diagnosis"; "RESTRICTED";
    ]
    (view_labels session)

let test_view_patient () =
  let session = P.login P.robert in
  Alcotest.(check (list string)) "own record only"
    [ "/"; "patients"; "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia" ]
    (view_labels session)

let test_view_epidemiologist () =
  let session = P.login P.richard in
  Alcotest.(check (list string)) "patient names RESTRICTED"
    [
      "/"; "patients";
      "RESTRICTED"; "service"; "otolarynology"; "diagnosis"; "tonsillitis";
      "RESTRICTED"; "service"; "pneumology"; "diagnosis"; "pneumonia";
    ]
    (view_labels session)

let test_view_doctor () =
  let session = P.login P.laporte in
  Alcotest.(check (list string)) "doctors see everything" all_labels
    (view_labels session)

let test_view_pruning () =
  (* Fig. 1: denying both read and position on a node hides its whole
     subtree, even parts that would otherwise be readable. *)
  let subjects = Core.Subject.of_list [ (Core.Subject.User, "u", []) ] in
  let doc = Xml_parse.of_string "<a><b><c>x</c></b><d/></a>" in
  let policy =
    Core.Policy.v subjects []
    |> fun p -> Core.Policy.grant p Core.Privilege.Read ~path:"//node()" ~subject:"u"
    |> fun p -> Core.Policy.deny p Core.Privilege.Read ~path:"//b" ~subject:"u"
  in
  let session = Core.Session.login policy doc ~user:"u" in
  Alcotest.(check (list string)) "b's subtree pruned entirely"
    [ "/"; "a"; "d" ]
    (view_labels session);
  (* Now grant position on b: the subtree reappears under RESTRICTED. *)
  let policy2 =
    Core.Policy.grant policy Core.Privilege.Position ~path:"//b" ~subject:"u"
  in
  let session2 = Core.Session.login policy2 doc ~user:"u" in
  Alcotest.(check (list string)) "b RESTRICTED, subtree visible"
    [ "/"; "a"; "RESTRICTED"; "c"; "x"; "d" ]
    (view_labels session2)

let test_view_ids_not_renumbered () =
  let session = P.login P.robert in
  let source = Core.Session.source session in
  let view = Core.Session.view session in
  Document.iter
    (fun (n : Node.t) ->
      match Document.find source n.id with
      | Some m ->
        Alcotest.(check bool) "same id and kind" true (m.kind = n.kind)
      | None -> Alcotest.fail "view id absent from source")
    view

let test_queries_run_on_view () =
  let session = P.login P.robert in
  Alcotest.(check int) "robert sees one diagnosis" 1
    (List.length (Core.Session.query session "//diagnosis"));
  Alcotest.(check int) "source has two" 2
    (List.length (Core.Session.query_source session "//diagnosis"));
  let secretary = P.login P.beaufort in
  Alcotest.(check int) "secretary sees two RESTRICTED nodes" 2
    (List.length (Core.Session.query secretary "//diagnosis/node()"));
  Alcotest.(check int) "RESTRICTED is addressable" 0
    (List.length
       (Core.Session.query secretary "//diagnosis/text()[. = 'tonsillitis']"))

(* --- secure updates (§4.4.2) ------------------------------------------ *)

let test_doctor_updates_diagnosis () =
  let session = P.login P.laporte in
  let op = Xupdate.Op.update "/patients/franck/diagnosis" "pharyngitis" in
  let session, report = Core.Secure_update.apply session op in
  Alcotest.(check bool) "fully applied" true
    (Core.Secure_update.fully_applied report);
  Alcotest.(check int) "one relabel" 1 (List.length report.relabelled);
  Alcotest.(check (list string)) "diagnosis updated"
    [
      "/"; "patients";
      "franck"; "service"; "otolarynology"; "diagnosis"; "pharyngitis";
      "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia";
    ]
    (source_labels session)

let test_doctor_poses_diagnosis () =
  let session = P.login P.laporte in
  (* First remove franck's diagnosis content, then pose a new one. *)
  let session, r1 =
    Core.Secure_update.apply session
      (Xupdate.Op.remove "/patients/franck/diagnosis/node()")
  in
  Alcotest.(check bool) "removal applied" true
    (Core.Secure_update.fully_applied r1);
  let session, r2 =
    Core.Secure_update.apply session
      (Xupdate.Op.append "/patients/franck/diagnosis" (Tree.text "laryngitis"))
  in
  Alcotest.(check bool) "append applied" true
    (Core.Secure_update.fully_applied r2);
  Alcotest.(check (list string)) "new diagnosis present"
    [
      "/"; "patients";
      "franck"; "service"; "otolarynology"; "diagnosis"; "laryngitis";
      "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia";
    ]
    (source_labels session)

let test_secretary_inserts_record () =
  let session = P.login P.beaufort in
  let albert =
    Tree.element "albert"
      [ Tree.element "service" [ Tree.text "cardiology" ];
        Tree.element "diagnosis" [] ]
  in
  let session, report =
    Core.Secure_update.apply session (Xupdate.Op.append "/patients" albert)
  in
  Alcotest.(check bool) "applied" true (Core.Secure_update.fully_applied report);
  Alcotest.(check int) "one insert" 1 (List.length report.inserted);
  Alcotest.(check int) "four new source nodes" 16
    (Document.size (Core.Session.source session));
  (* The secretary sees the new record (she created it and may read it). *)
  Alcotest.(check int) "albert visible" 1
    (List.length (Core.Session.query session "/patients/albert"))

let test_secretary_renames_patient () =
  let session = P.login P.beaufort in
  let session, report =
    Core.Secure_update.apply session
      (Xupdate.Op.rename "/patients/franck" "francois")
  in
  Alcotest.(check bool) "applied" true (Core.Secure_update.fully_applied report);
  Alcotest.(check int) "renamed" 1
    (List.length (Core.Session.query session "/patients/francois"))

let test_secretary_cannot_touch_diagnosis_text () =
  let session = P.login P.beaufort in
  (* xupdate:update on diagnosis needs update+read on the text child; the
     secretary has neither. *)
  let _, report =
    Core.Secure_update.apply session
      (Xupdate.Op.update "/patients/franck/diagnosis" "cured")
  in
  Alcotest.(check int) "denied" 1 (List.length report.denied);
  Alcotest.(check int) "nothing relabelled" 0 (List.length report.relabelled);
  (* Renaming the RESTRICTED node directly is also denied (it is a text
     node, addressed with node(); an element shown RESTRICTED is
     addressable by the RESTRICTED name test, cf. the next test). *)
  let _, report2 =
    Core.Secure_update.apply session
      (Xupdate.Op.rename "/patients/franck/diagnosis/node()" "cured")
  in
  Alcotest.(check int) "rename denied" 1 (List.length report2.denied);
  (match report2.denied with
   | [ d ] ->
     Alcotest.(check string) "update privilege missing first" "update"
       (Core.Privilege.to_string d.privilege)
   | _ -> Alcotest.fail "expected one denial")

let test_restricted_rename_denied_on_read () =
  (* A subject holding update but only position (not read) must not
     rename: the prose of §4.4.2. *)
  let subjects = Core.Subject.of_list [ (Core.Subject.User, "u", []) ] in
  let doc = Xml_parse.of_string "<a><b>x</b></a>" in
  let policy =
    Core.Policy.v subjects []
    |> fun p -> Core.Policy.grant p Core.Privilege.Read ~path:"/a" ~subject:"u"
    |> fun p -> Core.Policy.grant p Core.Privilege.Position ~path:"//b" ~subject:"u"
    |> fun p -> Core.Policy.grant p Core.Privilege.Update ~path:"//b" ~subject:"u"
  in
  let session = Core.Session.login policy doc ~user:"u" in
  let _, report =
    Core.Secure_update.apply session (Xupdate.Op.rename "/a/RESTRICTED" "c")
  in
  (match report.denied with
   | [ d ] ->
     Alcotest.(check string) "read denial" "read"
       (Core.Privilege.to_string d.privilege)
   | _ -> Alcotest.fail "expected exactly one denial");
  Alcotest.(check int) "no relabel" 0 (List.length report.relabelled)

let test_patient_cannot_reach_others () =
  let session = P.login P.robert in
  (* franck is not in robert's view: the operation selects nothing. *)
  let _, report =
    Core.Secure_update.apply session (Xupdate.Op.rename "/patients/franck" "x")
  in
  Alcotest.(check int) "no targets" 0 (List.length report.targets);
  Alcotest.(check int) "no denials either" 0 (List.length report.denied)

let test_remove_deletes_invisible_descendants () =
  (* Axiom 25: confidentiality over integrity. *)
  let subjects = Core.Subject.of_list [ (Core.Subject.User, "u", []) ] in
  let doc = Xml_parse.of_string "<a><b><secret>s</secret><c/></b></a>" in
  let policy =
    Core.Policy.v subjects []
    |> fun p -> Core.Policy.grant p Core.Privilege.Read ~path:"//node()" ~subject:"u"
    |> fun p -> Core.Policy.deny p Core.Privilege.Read ~path:"//secret" ~subject:"u"
    |> fun p -> Core.Policy.grant p Core.Privilege.Delete ~path:"//b" ~subject:"u"
  in
  let session = Core.Session.login policy doc ~user:"u" in
  Alcotest.(check (list string)) "secret hidden" [ "/"; "a"; "b"; "c" ]
    (view_labels session);
  let session, report =
    Core.Secure_update.apply session (Xupdate.Op.remove "//b")
  in
  Alcotest.(check bool) "applied" true (Core.Secure_update.fully_applied report);
  Alcotest.(check (list string)) "secret removed too" [ "/"; "a" ]
    (source_labels session)

let test_insert_before_after () =
  let session = P.login P.beaufort in
  (* Secretaries hold insert on /patients, the parent of each record. *)
  let session, r1 =
    Core.Secure_update.apply session
      (Xupdate.Op.insert_before "/patients/robert" (Tree.element "gaston" []))
  in
  Alcotest.(check bool) "before applied" true (Core.Secure_update.fully_applied r1);
  let session, r2 =
    Core.Secure_update.apply session
      (Xupdate.Op.insert_after "/patients/robert" (Tree.element "henri" []))
  in
  Alcotest.(check bool) "after applied" true (Core.Secure_update.fully_applied r2);
  Alcotest.(check (list string)) "sibling order"
    [ "franck"; "gaston"; "robert"; "henri" ]
    (List.map
       (fun (n : Node.t) -> n.label)
       (Document.element_children (Core.Session.source session)
          (P.find (Core.Session.source session) "patients")))

let test_insert_denied_without_privilege () =
  let session = P.login P.richard in
  (* Epidemiologists hold no insert privilege at all. *)
  let _, report =
    Core.Secure_update.apply session
      (Xupdate.Op.append "/patients" (Tree.element "eve" []))
  in
  Alcotest.(check int) "denied" 1 (List.length report.denied);
  (match report.denied with
   | [ d ] ->
     Alcotest.(check string) "insert" "insert"
       (Core.Privilege.to_string d.privilege)
   | _ -> Alcotest.fail "expected one denial")

(* --- §2.2: the covert channel is closed -------------------------------- *)

let covert_subjects =
  Core.Subject.of_list
    [ (Core.Subject.Role, "user_b", []); (Core.Subject.User, "spy", [ "user_b" ]) ]

let covert_doc () =
  Xml_parse.of_string
    {|<employees>
        <employee><name>alice</name><salary>3500</salary></employee>
        <employee><name>bob</name><salary>2900</salary></employee>
        <employee><name>carol</name><salary>4100</salary></employee>
      </employees>|}

(* user_B of §2.2: update privilege on the salary column, no read. *)
let covert_policy =
  Core.Policy.v covert_subjects []
  |> fun p ->
  Core.Policy.grant p Core.Privilege.Update ~path:"//salary/node()" ~subject:"user_b"
  |> fun p ->
  Core.Policy.grant p Core.Privilege.Update ~path:"//salary" ~subject:"user_b"

let test_covert_channel_closed () =
  let doc = covert_doc () in
  (* The §2.2 probe: "UPDATE ... WHERE salary > 3000". *)
  let probe = Xupdate.Op.update "//employee[salary > 3000]/salary" "9999" in
  (* Unsecured evaluation on the source (the SQL / [10] behaviour):
     the probe reveals there are two such employees. *)
  let unsecured = Xupdate.Apply.apply doc probe in
  Alcotest.(check int) "unsecured probe leaks 2 rows" 2
    (List.length unsecured.relabelled);
  (* Secured evaluation: the spy's view contains no salary values, so the
     predicate can never consult them. *)
  let session = Core.Session.login covert_policy doc ~user:"spy" in
  Alcotest.(check (list string)) "spy sees nothing" [ "/" ]
    (view_labels session);
  let _, report = Core.Secure_update.apply session probe in
  Alcotest.(check int) "secured probe selects nothing" 0
    (List.length report.targets)

(* --- policy language --------------------------------------------------- *)

let test_policy_lang_roundtrip () =
  let text = Core.Policy_lang.to_string P.policy in
  let reparsed = Core.Policy_lang.parse text in
  Alcotest.(check int) "same rule count"
    (List.length (Core.Policy.rules P.policy))
    (List.length (Core.Policy.rules reparsed));
  Alcotest.(check bool) "rules equal" true
    (List.equal Core.Rule.equal
       (Core.Policy.rules P.policy)
       (Core.Policy.rules reparsed));
  (* Views derived from the reparsed policy are identical. *)
  let s1 = Core.Session.login reparsed (P.document ()) ~user:P.beaufort in
  let s2 = P.login P.beaufort in
  Alcotest.(check bool) "same view" true
    (Document.equal (Core.Session.view s1) (Core.Session.view s2))

let test_policy_lang_errors () =
  List.iter
    (fun src ->
      match Core.Policy_lang.parse src with
      | exception Core.Policy_lang.Error _ -> ()
      | _ -> Alcotest.failf "%S should fail" src)
    [
      "frob x";
      "role";
      "grant read //a to u";
      "grant read on //a to nobody";
      "user u isa ghost";
      "grant fly on //a to u";
      "role a\nrole b isa a\nisa a b";
      "user u\ngrant read on //a to u priority 1\ndeny read on //a to u priority 1";
    ]

let test_policy_lang_quoted_paths () =
  let p =
    Core.Policy_lang.parse
      "user u\ngrant read on \"//a[name() = 'x y']\" to u"
  in
  match Core.Policy.rules p with
  | [ r ] -> Alcotest.(check string) "path kept" "//a[name() = 'x y']" r.path_src
  | _ -> Alcotest.fail "expected one rule"

(* --- explain ------------------------------------------------------------ *)

let test_explain () =
  let session = P.login P.beaufort in
  let doc = Core.Session.source session in
  let tonsillitis = P.find doc "tonsillitis" in
  (match Core.Explain.visibility session tonsillitis with
   | Core.Explain.Restricted { position; read_denied } ->
     Alcotest.(check int) "position granted by rule 12" 12 position.priority;
     (match read_denied with
      | Some r -> Alcotest.(check int) "read denied by rule 11" 11 r.priority
      | None -> Alcotest.fail "expected a deny rule")
   | _ -> Alcotest.fail "expected Restricted");
  let robert_session = P.login P.robert in
  let franck = P.find doc "franck" in
  (match Core.Explain.visibility robert_session franck with
   | Core.Explain.Hidden { denied_by = None } -> ()
   | _ -> Alcotest.fail "expected Hidden by closed world");
  let pruned_session = P.login P.robert in
  let tonsillitis_for_robert =
    Core.Explain.visibility pruned_session tonsillitis
  in
  (match tonsillitis_for_robert with
   | Core.Explain.Pruned _ | Core.Explain.Hidden _ -> ()
   | _ -> Alcotest.fail "franck's diagnosis should be unreachable");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    m = 0 || scan 0
  in
  let text = Core.Explain.describe session tonsillitis in
  Alcotest.(check bool) "mentions RESTRICTED" true (contains text "RESTRICTED")

(* --- datalog parity ------------------------------------------------------ *)

let test_datalog_view_parity () =
  List.iter
    (fun user ->
      Alcotest.(check bool)
        (Printf.sprintf "view parity for %s" user)
        true
        (Core.Logic_encoding.view_parity (P.login user)))
    [ P.beaufort; P.laporte; P.richard; P.robert; P.franck ]

let test_datalog_perm_parity () =
  List.iter
    (fun user ->
      Alcotest.(check bool)
        (Printf.sprintf "perm parity for %s" user)
        true
        (Core.Logic_encoding.perm_parity (P.login user)))
    [ P.beaufort; P.laporte; P.richard; P.robert ]

let test_datalog_update_parity () =
  let cases =
    [
      (P.laporte, Xupdate.Op.update "/patients/franck/diagnosis" "pharyngitis");
      (P.laporte, Xupdate.Op.remove "//diagnosis/node()");
      (P.laporte, Xupdate.Op.append "/patients/franck/diagnosis"
         (Tree.text "flu"));
      (P.beaufort, Xupdate.Op.rename "/patients/franck" "francois");
      (P.beaufort, Xupdate.Op.update "/patients/franck/diagnosis" "cured");
      (P.beaufort, Xupdate.Op.append "/patients"
         (Tree.element "albert" [ Tree.element "service" [ Tree.text "cardio" ] ]));
      (P.beaufort, Xupdate.Op.insert_before "/patients/robert"
         (Tree.element "gaston" []));
      (P.beaufort, Xupdate.Op.insert_after "/patients/franck"
         (Tree.element "henri" []));
      (P.richard, Xupdate.Op.remove "/patients/RESTRICTED");
      (P.robert, Xupdate.Op.rename "/patients/robert" "bob");
    ]
  in
  List.iteri
    (fun i (user, op) ->
      Alcotest.(check bool)
        (Printf.sprintf "update parity case %d (%s)" i user)
        true
        (Core.Logic_encoding.update_parity (P.login user) op))
    cases

(* --- properties ---------------------------------------------------------- *)

let label_pool = [ "a"; "b"; "c"; "d"; "t1"; "t2" ]

let doc_gen =
  QCheck.Gen.(
    let rec tree depth =
      if depth = 0 then map Tree.text (oneofl [ "x"; "y"; "z" ])
      else
        frequency
          [
            (1, map Tree.text (oneofl [ "x"; "y"; "z" ]));
            ( 3,
              map2 Tree.element (oneofl label_pool)
                (list_size (int_range 0 3) (tree (depth - 1))) );
          ]
    in
    map2
      (fun name kids -> Document.of_tree (Tree.element name kids))
      (oneofl [ "root" ])
      (list_size (int_range 0 4) (tree 2)))

let policy_gen =
  let subjects =
    Core.Subject.of_list
      [
        (Core.Subject.Role, "r1", []);
        (Core.Subject.Role, "r2", [ "r1" ]);
        (Core.Subject.User, "u", [ "r2" ]);
      ]
  in
  QCheck.Gen.(
    let path =
      oneofl
        ([ "//node()"; "/root"; "/root/node()"; "//text()" ]
        @ List.concat_map
            (fun l -> [ "//" ^ l; "//" ^ l ^ "/node()"; "/root/" ^ l ])
            label_pool)
    in
    let rule_gen i =
      map3
        (fun decision priv path ->
          Core.Rule.v decision priv ~path ~subject:(if i mod 2 = 0 then "r1" else "r2")
            ~priority:(i + 1))
        (oneofl [ Core.Rule.Accept; Core.Rule.Deny ])
        (oneofl Core.Privilege.all) path
    in
    sized_size (int_range 0 12) (fun n ->
        let rec gen_rules i =
          if i >= n then return []
          else
            rule_gen i >>= fun r ->
            gen_rules (i + 1) >>= fun rest -> return (r :: rest)
        in
        map (fun rules -> Core.Policy.v subjects rules) (gen_rules 0)))

let session_arb =
  QCheck.make
    ~print:(fun (doc, policy) ->
      Xml_print.to_string doc ^ "\n" ^ Core.Policy_lang.to_string policy)
    QCheck.Gen.(pair doc_gen policy_gen)

let prop_view_parent_closed =
  QCheck.Test.make ~count:120 ~name:"views are parent-closed and label-correct"
    session_arb
    (fun (doc, policy) ->
      let session = Core.Session.login policy doc ~user:"u" in
      let view = Core.Session.view session in
      let perm = Core.Session.perm session in
      Document.fold
        (fun (n : Node.t) ok ->
          ok
          &&
          if n.kind = Node.Document then true
          else
            let parent_in =
              match Ordpath.parent n.id with
              | None -> false
              | Some p -> Document.mem view p
            in
            let source_label = Option.get (Document.label doc n.id) in
            parent_in
            && (if Core.Perm.holds perm Core.Privilege.Read n.id then
                  String.equal n.label source_label
                else
                  String.equal n.label Core.View.restricted
                  && Core.Perm.holds perm Core.Privilege.Position n.id))
        view true)

let prop_view_datalog_parity =
  QCheck.Test.make ~count:60 ~name:"datalog view parity on random sessions"
    session_arb
    (fun (doc, policy) ->
      Core.Logic_encoding.view_parity (Core.Session.login policy doc ~user:"u"))

let op_gen =
  QCheck.Gen.(
    let path =
      oneofl
        ([ "//node()"; "/root" ]
        @ List.map (fun l -> "//" ^ l) label_pool)
    in
    let tree = return (Tree.element "new" [ Tree.text "v" ]) in
    oneof
      [
        map (fun p -> Xupdate.Op.rename p "renamed") path;
        map (fun p -> Xupdate.Op.update p "updated") path;
        map2 (fun p t -> Xupdate.Op.append p t) path tree;
        map2 (fun p t -> Xupdate.Op.insert_before p t) path tree;
        map2 (fun p t -> Xupdate.Op.insert_after p t) path tree;
        map (fun p -> Xupdate.Op.remove p) path;
      ])

let prop_update_datalog_parity =
  QCheck.Test.make ~count:80 ~name:"datalog dbnew parity on random updates"
    (QCheck.make
       ~print:(fun ((doc, policy), op) ->
         Xml_print.to_string doc ^ "\n"
         ^ Core.Policy_lang.to_string policy
         ^ "\n" ^ Format.asprintf "%a" Xupdate.Op.pp op)
       QCheck.Gen.(pair (pair doc_gen policy_gen) op_gen))
    (fun ((doc, policy), op) ->
      Core.Logic_encoding.update_parity
        (Core.Session.login policy doc ~user:"u")
        op)

let prop_secure_targets_in_view =
  QCheck.Test.make ~count:100
    ~name:"secure update targets always lie in the view"
    (QCheck.make
       ~print:(fun ((doc, policy), op) ->
         Xml_print.to_string doc ^ "\n"
         ^ Core.Policy_lang.to_string policy
         ^ "\n" ^ Format.asprintf "%a" Xupdate.Op.pp op)
       QCheck.Gen.(pair (pair doc_gen policy_gen) op_gen))
    (fun ((doc, policy), op) ->
      let session = Core.Session.login policy doc ~user:"u" in
      let view = Core.Session.view session in
      let _, report = Core.Secure_update.apply session op in
      List.for_all (Document.mem view) report.targets)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_view_parent_closed;
        prop_view_datalog_parity;
        prop_update_datalog_parity;
        prop_secure_targets_in_view;
      ]
  in
  Alcotest.run "core"
    [
      ( "subjects",
        [
          Alcotest.test_case "closure" `Quick test_subject_closure;
          Alcotest.test_case "cycles" `Quick test_subject_cycles;
          Alcotest.test_case "multiple inheritance" `Quick
            test_multiple_inheritance;
        ] );
      ( "perm",
        [
          Alcotest.test_case "secretary privileges" `Quick test_perm_secretary;
          Alcotest.test_case "priority override" `Quick
            test_perm_priority_override;
          Alcotest.test_case "$USER rules" `Quick test_perm_user_variable;
        ] );
      ( "views",
        [
          Alcotest.test_case "secretary" `Quick test_view_secretary;
          Alcotest.test_case "patient" `Quick test_view_patient;
          Alcotest.test_case "epidemiologist" `Quick test_view_epidemiologist;
          Alcotest.test_case "doctor" `Quick test_view_doctor;
          Alcotest.test_case "pruning vs RESTRICTED" `Quick test_view_pruning;
          Alcotest.test_case "no renumbering" `Quick
            test_view_ids_not_renumbered;
          Alcotest.test_case "queries on view" `Quick test_queries_run_on_view;
        ] );
      ( "secure updates",
        [
          Alcotest.test_case "doctor updates diagnosis" `Quick
            test_doctor_updates_diagnosis;
          Alcotest.test_case "doctor poses diagnosis" `Quick
            test_doctor_poses_diagnosis;
          Alcotest.test_case "secretary inserts record" `Quick
            test_secretary_inserts_record;
          Alcotest.test_case "secretary renames patient" `Quick
            test_secretary_renames_patient;
          Alcotest.test_case "secretary blocked on diagnosis" `Quick
            test_secretary_cannot_touch_diagnosis_text;
          Alcotest.test_case "RESTRICTED rename needs read" `Quick
            test_restricted_rename_denied_on_read;
          Alcotest.test_case "patient reaches own record only" `Quick
            test_patient_cannot_reach_others;
          Alcotest.test_case "remove deletes invisible nodes" `Quick
            test_remove_deletes_invisible_descendants;
          Alcotest.test_case "insert before/after" `Quick
            test_insert_before_after;
          Alcotest.test_case "insert denied" `Quick
            test_insert_denied_without_privilege;
          Alcotest.test_case "covert channel closed (§2.2)" `Quick
            test_covert_channel_closed;
        ] );
      ( "policy language",
        [
          Alcotest.test_case "roundtrip" `Quick test_policy_lang_roundtrip;
          Alcotest.test_case "errors" `Quick test_policy_lang_errors;
          Alcotest.test_case "quoted paths" `Quick test_policy_lang_quoted_paths;
        ] );
      ("explain", [ Alcotest.test_case "visibility" `Quick test_explain ]);
      ( "datalog parity",
        [
          Alcotest.test_case "views" `Quick test_datalog_view_parity;
          Alcotest.test_case "perms" `Quick test_datalog_perm_parity;
          Alcotest.test_case "updates" `Quick test_datalog_update_parity;
        ] );
      ("property", qsuite);
    ]
