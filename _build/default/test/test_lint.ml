(* Tests for the policy linter: dead rules, unreachable (pruned) grants,
   idle subjects — and that the paper's own policy is clean. *)

module P = Core.Paper_example

let kinds findings =
  List.map
    (function
      | Core.Policy_lint.Dead_rule (r, _) -> ("dead", r.Core.Rule.priority)
      | Core.Policy_lint.Unreachable_grant (r, _) ->
        ("unreachable", r.Core.Rule.priority)
      | Core.Policy_lint.Idle_subject s -> ("idle:" ^ s, 0))
    findings

let test_paper_policy_is_clean () =
  Alcotest.(check (list (pair string int))) "no findings" []
    (kinds (Core.Policy_lint.analyse P.policy (P.document ())))

let subjects =
  Core.Subject.of_list
    [
      (Core.Subject.Role, "r", []);
      (Core.Subject.Role, "lonely", []);
      (Core.Subject.User, "u", [ "r" ]);
      (Core.Subject.User, "idler", []);
    ]

let doc () = Xmldoc.Xml_parse.of_string "<a><b><c>x</c></b><d/></a>"

let test_dead_rules () =
  let policy =
    Core.Policy.v subjects
      [
        (* 1: fully shadowed by 3 on the same nodes *)
        Core.Rule.accept Core.Privilege.Read ~path:"//b" ~subject:"u" ~priority:1;
        (* 2: selects nothing *)
        Core.Rule.accept Core.Privilege.Read ~path:"//zzz" ~subject:"u" ~priority:2;
        (* 3: shadows 1 *)
        Core.Rule.deny Core.Privilege.Read ~path:"//b" ~subject:"u" ~priority:3;
        (* 4: granted to a role with no users *)
        Core.Rule.accept Core.Privilege.Read ~path:"//a" ~subject:"lonely"
          ~priority:4;
      ]
  in
  let findings = kinds (Core.Policy_lint.analyse policy (doc ())) in
  Alcotest.(check bool) "rule 1 dead" true (List.mem ("dead", 1) findings);
  Alcotest.(check bool) "rule 2 dead" true (List.mem ("dead", 2) findings);
  Alcotest.(check bool) "rule 3 live" false (List.mem ("dead", 3) findings);
  Alcotest.(check bool) "rule 4 dead (no user)" true
    (List.mem ("dead", 4) findings);
  Alcotest.(check bool) "idler reported" true
    (List.mem ("idle:idler", 0) findings)

let test_unreachable_grant () =
  (* Read on c, but its ancestors a and b are never visible: the grant can
     never surface in a view — the figure-1 pruning pitfall. *)
  let policy =
    Core.Policy.v subjects
      [ Core.Rule.accept Core.Privilege.Read ~path:"//c" ~subject:"u"
          ~priority:1 ]
  in
  let findings = kinds (Core.Policy_lint.analyse policy (doc ())) in
  Alcotest.(check bool) "unreachable" true
    (List.mem ("unreachable", 1) findings);
  (* Granting position on the ancestors repairs it. *)
  let repaired =
    Core.Policy.grant policy Core.Privilege.Position
      ~path:"/a/descendant-or-self::node()" ~subject:"u"
  in
  let findings = kinds (Core.Policy_lint.analyse repaired (doc ())) in
  Alcotest.(check bool) "reachable after repair" false
    (List.mem ("unreachable", 1) findings)

let test_report_text () =
  let policy =
    Core.Policy.v subjects
      [ Core.Rule.accept Core.Privilege.Read ~path:"//zzz" ~subject:"u"
          ~priority:1 ]
  in
  let text = Core.Policy_lint.report policy (doc ()) in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub text i m = sub || scan (i + 1)) in
    m = 0 || scan 0
  in
  Alcotest.(check bool) "mentions dead rule" true (contains "dead rule");
  Alcotest.(check bool) "mentions idle subject" true (contains "idle subject")

let test_hospital_policy_is_clean () =
  let config = { Workload.Gen_doc.default with patients = 10; seed = 2 } in
  let doc = Workload.Gen_doc.generate config in
  let policy = Workload.Gen_policy.hospital config in
  (* Rule 19 (insert on //diagnosis for doctors) is write-side and live;
     the read-side rules are all reachable. *)
  List.iter
    (fun f ->
      match f with
      | Core.Policy_lint.Unreachable_grant _ ->
        Alcotest.failf "unexpected: %s" (Core.Policy_lint.to_string f)
      | Core.Policy_lint.Dead_rule _ | Core.Policy_lint.Idle_subject _ ->
        Alcotest.failf "unexpected: %s" (Core.Policy_lint.to_string f))
    (Core.Policy_lint.analyse policy doc)

let () =
  Alcotest.run "lint"
    [
      ( "analysis",
        [
          Alcotest.test_case "paper policy clean" `Quick
            test_paper_policy_is_clean;
          Alcotest.test_case "dead rules" `Quick test_dead_rules;
          Alcotest.test_case "unreachable grants" `Quick test_unreachable_grant;
          Alcotest.test_case "report text" `Quick test_report_text;
          Alcotest.test_case "hospital policy clean" `Quick
            test_hospital_policy_is_clean;
        ] );
    ]
