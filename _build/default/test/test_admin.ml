(* Tests for the administration / delegation model (the [10] extension the
   paper references in §4.3): ownership, grant option, cascading
   revocation. *)

let subjects =
  Core.Subject.of_list
    [
      (Core.Subject.Role, "staff", []);
      (Core.Subject.User, "owner", []);
      (Core.Subject.User, "alice", [ "staff" ]);
      (Core.Subject.User, "bob", [ "staff" ]);
      (Core.Subject.User, "carol", [ "staff" ]);
    ]

let doc () =
  Xmldoc.Xml_parse.of_string
    "<library><book>ocaml</book><book>xml</book><journal>vldb</journal></library>"

let fresh () = Core.Admin.create ~owner:"owner" (Core.Policy.v subjects [])

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err name = function
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error _ -> ()

let test_owner_can_grant () =
  let admin = fresh () in
  let admin =
    ok (Core.Admin.grant admin (doc ()) ~issuer:"owner" Core.Privilege.Read
          ~path:"//book" ~subject:"alice")
  in
  Alcotest.(check int) "one rule" 1
    (List.length (Core.Policy.rules (Core.Admin.policy admin)));
  Alcotest.(check (option string)) "attributed to owner" (Some "owner")
    (Core.Admin.issuer_of admin
       ~priority:(List.hd (Core.Policy.rules (Core.Admin.policy admin))).priority)

let test_non_owner_needs_delegation () =
  let admin = fresh () in
  err "no authority"
    (Core.Admin.grant admin (doc ()) ~issuer:"alice" Core.Privilege.Read
       ~path:"//book" ~subject:"bob");
  (* Delegate read over //book to alice. *)
  let admin =
    ok (Core.Admin.delegate admin (doc ()) ~issuer:"owner" Core.Privilege.Read
          ~path:"//book" ~subject:"alice")
  in
  (* Now alice may grant within the delegated scope... *)
  let admin2 =
    ok (Core.Admin.grant admin (doc ()) ~issuer:"alice" Core.Privilege.Read
          ~path:"//book[1]" ~subject:"bob")
  in
  Alcotest.(check int) "granted" 1
    (List.length (Core.Policy.rules (Core.Admin.policy admin2)));
  (* ... but not outside it (journal), not for other privileges, and not
     delegate further (no grant option). *)
  err "outside scope"
    (Core.Admin.grant admin (doc ()) ~issuer:"alice" Core.Privilege.Read
       ~path:"//journal" ~subject:"bob");
  err "wrong privilege"
    (Core.Admin.grant admin (doc ()) ~issuer:"alice" Core.Privilege.Delete
       ~path:"//book" ~subject:"bob");
  err "no grant option"
    (Core.Admin.delegate admin (doc ()) ~issuer:"alice" Core.Privilege.Read
       ~path:"//book" ~subject:"bob")

let test_grant_option_chain () =
  let admin = fresh () in
  let admin =
    ok (Core.Admin.delegate admin (doc ()) ~issuer:"owner" ~with_option:true
          Core.Privilege.Read ~path:"//book" ~subject:"alice")
  in
  (* alice re-delegates to bob (she holds the option). *)
  let admin =
    ok (Core.Admin.delegate admin (doc ()) ~issuer:"alice"
          Core.Privilege.Read ~path:"//book" ~subject:"bob")
  in
  (* bob can now grant. *)
  let admin =
    ok (Core.Admin.grant admin (doc ()) ~issuer:"bob" Core.Privilege.Read
          ~path:"//book" ~subject:"carol")
  in
  Alcotest.(check int) "two delegations" 2
    (List.length (Core.Admin.delegations admin));
  Alcotest.(check int) "one rule" 1
    (List.length (Core.Policy.rules (Core.Admin.policy admin)))

let test_cascading_revocation () =
  let d = doc () in
  let admin = fresh () in
  let admin =
    ok (Core.Admin.delegate admin d ~issuer:"owner" ~with_option:true
          Core.Privilege.Read ~path:"//book" ~subject:"alice")
  in
  let root_delegation = List.hd (Core.Admin.delegations admin) in
  let admin =
    ok (Core.Admin.delegate admin d ~issuer:"alice" Core.Privilege.Read
          ~path:"//book" ~subject:"bob")
  in
  let admin =
    ok (Core.Admin.grant admin d ~issuer:"bob" Core.Privilege.Read
          ~path:"//book" ~subject:"carol")
  in
  (* Revoking the root delegation cascades through alice's delegation to
     bob and bob's rule for carol. *)
  let admin =
    ok (Core.Admin.revoke_delegation admin d ~issuer:"owner"
          ~timestamp:root_delegation.timestamp)
  in
  Alcotest.(check int) "all delegations gone" 0
    (List.length (Core.Admin.delegations admin));
  Alcotest.(check int) "dependent rule gone" 0
    (List.length (Core.Policy.rules (Core.Admin.policy admin)))

let test_cascade_spares_independent_grants () =
  let d = doc () in
  let admin = fresh () in
  (* Two independent delegations to alice and bob. *)
  let admin =
    ok (Core.Admin.delegate admin d ~issuer:"owner" Core.Privilege.Read
          ~path:"//book" ~subject:"alice")
  in
  let keep = List.hd (Core.Admin.delegations admin) in
  let admin =
    ok (Core.Admin.delegate admin d ~issuer:"owner" Core.Privilege.Read
          ~path:"//journal" ~subject:"bob")
  in
  let admin =
    ok (Core.Admin.grant admin d ~issuer:"alice" Core.Privilege.Read
          ~path:"//book" ~subject:"carol")
  in
  let admin =
    ok (Core.Admin.grant admin d ~issuer:"bob" Core.Privilege.Read
          ~path:"//journal" ~subject:"carol")
  in
  (* Revoke bob's delegation: only bob's grant disappears. *)
  let bob_delegation =
    List.find
      (fun (dg : Core.Admin.delegation) -> dg.subject = "bob")
      (Core.Admin.delegations admin)
  in
  let admin =
    ok (Core.Admin.revoke_delegation admin d ~issuer:"owner"
          ~timestamp:bob_delegation.timestamp)
  in
  Alcotest.(check int) "alice's delegation survives" 1
    (List.length (Core.Admin.delegations admin));
  Alcotest.(check bool) "it is alice's" true
    ((List.hd (Core.Admin.delegations admin)).timestamp = keep.timestamp);
  let rules = Core.Policy.rules (Core.Admin.policy admin) in
  Alcotest.(check int) "alice's grant survives" 1 (List.length rules);
  Alcotest.(check string) "on books" "//book" (List.hd rules).path_src

let test_revoke_rule_authority () =
  let d = doc () in
  let admin = fresh () in
  let admin =
    ok (Core.Admin.delegate admin d ~issuer:"owner" Core.Privilege.Read
          ~path:"//book" ~subject:"alice")
  in
  let admin =
    ok (Core.Admin.grant admin d ~issuer:"alice" Core.Privilege.Read
          ~path:"//book" ~subject:"bob")
  in
  let rule = List.hd (Core.Policy.rules (Core.Admin.policy admin)) in
  (* bob may not revoke alice's rule; alice and the owner may. *)
  err "bob cannot revoke"
    (Core.Admin.revoke_rule admin ~issuer:"bob" ~priority:rule.priority);
  let by_alice =
    ok (Core.Admin.revoke_rule admin ~issuer:"alice" ~priority:rule.priority)
  in
  Alcotest.(check int) "revoked by issuer" 0
    (List.length (Core.Policy.rules (Core.Admin.policy by_alice)));
  let by_owner =
    ok (Core.Admin.revoke_rule admin ~issuer:"owner" ~priority:rule.priority)
  in
  Alcotest.(check int) "revoked by owner" 0
    (List.length (Core.Policy.rules (Core.Admin.policy by_owner)))

let test_admin_feeds_sessions () =
  (* The administered policy drives ordinary sessions. *)
  let d = doc () in
  let admin = fresh () in
  let admin =
    ok (Core.Admin.grant admin d ~issuer:"owner" Core.Privilege.Read
          ~path:"//node()" ~subject:"alice")
  in
  let session = Core.Session.login (Core.Admin.policy admin) d ~user:"alice" in
  Alcotest.(check int) "alice sees the library" 7
    (Core.View.visible_count (Core.Session.view session));
  let bob = Core.Session.login (Core.Admin.policy admin) d ~user:"bob" in
  Alcotest.(check int) "bob sees nothing" 0
    (Core.View.visible_count (Core.Session.view bob))

let test_unknown_subjects_rejected () =
  let admin = fresh () in
  err "unknown issuer"
    (Core.Admin.grant admin (doc ()) ~issuer:"mallory" Core.Privilege.Read
       ~path:"//book" ~subject:"alice");
  err "unknown grantee"
    (Core.Admin.grant admin (doc ()) ~issuer:"owner" Core.Privilege.Read
       ~path:"//book" ~subject:"mallory");
  match Core.Admin.create ~owner:"mallory" (Core.Policy.v subjects []) with
  | exception Core.Subject.Unknown_subject _ -> ()
  | _ -> Alcotest.fail "unknown owner should be rejected"

let () =
  Alcotest.run "admin"
    [
      ( "delegation",
        [
          Alcotest.test_case "owner grants" `Quick test_owner_can_grant;
          Alcotest.test_case "delegation gates grants" `Quick
            test_non_owner_needs_delegation;
          Alcotest.test_case "grant-option chain" `Quick test_grant_option_chain;
        ] );
      ( "revocation",
        [
          Alcotest.test_case "cascade" `Quick test_cascading_revocation;
          Alcotest.test_case "cascade spares independents" `Quick
            test_cascade_spares_independent_grants;
          Alcotest.test_case "rule revocation authority" `Quick
            test_revoke_rule_authority;
        ] );
      ( "integration",
        [
          Alcotest.test_case "sessions" `Quick test_admin_feeds_sessions;
          Alcotest.test_case "unknown subjects" `Quick
            test_unknown_subjects_rejected;
        ] );
    ]
