(* Tests for the DTD subset: parsing, content-model matching (Brzozowski
   derivatives), document validation, and the integrity-checked secure
   updates of Core.Validated. *)

open Xmldoc
module P = Core.Paper_example

let hospital_dtd =
  {|<!-- the figure-2 schema, typed -->
<!ELEMENT patients (franck | robert | albert)*>
<!ELEMENT franck (service, diagnosis?)>
<!ELEMENT robert (service, diagnosis?)>
<!ELEMENT albert (service, diagnosis?)>
<!ELEMENT service (#PCDATA)>
<!ELEMENT diagnosis (#PCDATA)>|}

let schema () = Schema.of_string hospital_dtd

(* --- parsing -------------------------------------------------------------- *)

let test_parse () =
  let s = schema () in
  Alcotest.(check (list string)) "declared elements"
    [ "albert"; "diagnosis"; "franck"; "patients"; "robert"; "service" ]
    (Schema.declared s);
  (match Schema.content_model s "service" with
   | Some Schema.Pcdata -> ()
   | _ -> Alcotest.fail "service should be #PCDATA");
  match Schema.content_model s "franck" with
  | Some (Schema.Children _) -> ()
  | _ -> Alcotest.fail "franck should have a children model"

let test_parse_attlist () =
  let s =
    Schema.of_string
      {|<!ELEMENT visit EMPTY>
<!ATTLIST visit n CDATA #REQUIRED
                kind (routine|emergency) "routine"
                ref IDREF #IMPLIED
                version CDATA #FIXED "1">|}
  in
  let decls = Schema.attributes s "visit" in
  Alcotest.(check int) "four attributes" 4 (List.length decls);
  let kind = List.find (fun (d : Schema.attr_decl) -> d.attr_name = "kind") decls in
  (match kind.attr_type with
   | Schema.Enum [ "routine"; "emergency" ] -> ()
   | _ -> Alcotest.fail "kind should be enumerated");
  Alcotest.(check bool) "default recorded" true
    (kind.default = Schema.Default "routine")

let test_parse_errors () =
  List.iter
    (fun src ->
      match Schema.of_string src with
      | exception Schema.Parse_error _ -> ()
      | _ -> Alcotest.failf "%S should fail" src)
    [
      "<!ELEMENT a>";
      "<!ELEMENT a (b,)>";
      "<!ELEMENT a (#PCDATA | b)>";
      "<!ATTLIST a x>";
      "<!ATTLIST a x CDATA>";
      "<!FROBNICATE a>";
      "<!ELEMENT a (b | )>";
    ]

(* --- content models -------------------------------------------------------- *)

let test_matching () =
  let check name model words expected =
    let s = Schema.of_string (Printf.sprintf "<!ELEMENT x %s>" model) in
    match Schema.content_model s "x" with
    | Some (Schema.Children regex) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s vs %s" name model (String.concat " " words))
        expected (Schema.matches regex words)
    | _ -> Alcotest.fail "expected a children model"
  in
  check "seq" "(a, b, c)" [ "a"; "b"; "c" ] true;
  check "seq wrong order" "(a, b, c)" [ "a"; "c"; "b" ] false;
  check "seq missing" "(a, b, c)" [ "a"; "b" ] false;
  check "opt present" "(a, b?)" [ "a"; "b" ] true;
  check "opt absent" "(a, b?)" [ "a" ] true;
  check "star empty" "(a*)" [] true;
  check "star many" "(a*)" [ "a"; "a"; "a" ] true;
  check "plus empty" "(a+)" [] false;
  check "plus one" "(a+)" [ "a" ] true;
  check "choice left" "(a | b)" [ "a" ] true;
  check "choice right" "(a | b)" [ "b" ] true;
  check "choice neither" "(a | b)" [ "c" ] false;
  check "nested" "((a | b)+, c?)" [ "b"; "a"; "c" ] true;
  check "nested bad tail" "((a | b)+, c?)" [ "c"; "a" ] false;
  check "star of seq" "((a, b)*)" [ "a"; "b"; "a"; "b" ] true;
  check "star of seq odd" "((a, b)*)" [ "a"; "b"; "a" ] false;
  check "ambiguous backtracking" "((a, a) | (a, a, a))" [ "a"; "a"; "a" ] true

let test_validate_ok () =
  Alcotest.(check (list string)) "figure 2 validates" []
    (Schema.validate ~root:"patients" (schema ()) (P.document ()))

let test_validate_violations () =
  let s = schema () in
  let bad_root = Xml_parse.of_string "<hospital/>" in
  Alcotest.(check bool) "wrong root" false
    (Schema.is_valid ~root:"patients" s bad_root);
  let undeclared =
    Xml_parse.of_string "<patients><zoe><service>s</service></zoe></patients>"
  in
  Alcotest.(check bool) "undeclared element" false (Schema.is_valid s undeclared);
  let wrong_children =
    Xml_parse.of_string "<patients><franck><diagnosis>d</diagnosis></franck></patients>"
  in
  Alcotest.(check bool) "missing service" false (Schema.is_valid s wrong_children);
  let text_in_children =
    Xml_parse.of_string "<patients>stray text</patients>"
  in
  Alcotest.(check bool) "text in element content" false
    (Schema.is_valid s text_in_children);
  let nested_element_in_pcdata =
    Xml_parse.of_string
      "<patients><franck><service><b>x</b></service><diagnosis>d</diagnosis></franck></patients>"
  in
  Alcotest.(check bool) "element in #PCDATA" false
    (Schema.is_valid s nested_element_in_pcdata)

let test_validate_attributes () =
  let s =
    Schema.of_string
      {|<!ELEMENT v EMPTY>
<!ATTLIST v n CDATA #REQUIRED kind (a|b) "a" ver CDATA #FIXED "1">|}
  in
  let ok = Xml_parse.of_string {|<v n="7" kind="b" ver="1"/>|} in
  Alcotest.(check (list string)) "valid attributes" [] (Schema.validate s ok);
  let missing = Xml_parse.of_string {|<v kind="a"/>|} in
  Alcotest.(check bool) "missing required" false (Schema.is_valid s missing);
  let bad_enum = Xml_parse.of_string {|<v n="7" kind="z"/>|} in
  Alcotest.(check bool) "bad enum" false (Schema.is_valid s bad_enum);
  let bad_fixed = Xml_parse.of_string {|<v n="7" ver="2"/>|} in
  Alcotest.(check bool) "bad fixed" false (Schema.is_valid s bad_fixed);
  let undeclared = Xml_parse.of_string {|<v n="7" rogue="x"/>|} in
  Alcotest.(check bool) "undeclared attribute" false (Schema.is_valid s undeclared)

(* --- validated secure updates ---------------------------------------------- *)

let test_validated_apply () =
  let s = schema () in
  let doctor = P.login P.laporte in
  (* A legal update: replace a diagnosis text. *)
  (match
     Core.Validated.apply ~schema:s ~root:"patients" doctor
       (Xupdate.Op.update "/patients/franck/diagnosis" "flu")
   with
   | Core.Validated.Applied (session, _) ->
     Alcotest.(check int) "applied" 1
       (List.length
          (Core.Session.query_source session "//text()[. = 'flu']"))
   | Core.Validated.Rejected _ -> Alcotest.fail "legal update rejected");
  (* An integrity-breaking update: doctors may delete diagnosis contents
     but the schema allows it (diagnosis? is optional) — removing the
     whole service, however, breaks (service, diagnosis?). *)
  let secretary = P.login P.beaufort in
  let policy_with_delete =
    Core.Policy.grant P.policy Core.Privilege.Delete ~path:"//service"
      ~subject:"secretary"
  in
  let secretary =
    Core.Session.login policy_with_delete
      (Core.Session.source secretary) ~user:P.beaufort
  in
  match
    Core.Validated.apply ~schema:s ~root:"patients" secretary
      (Xupdate.Op.remove "/patients/franck/service")
  with
  | Core.Validated.Rejected { violations; _ } ->
    Alcotest.(check bool) "violations counted" true (violations > 0)
  | Core.Validated.Applied _ -> Alcotest.fail "schema violation not caught"

let test_validated_apply_all_transactional () =
  let s = schema () in
  let policy =
    Core.Policy.grant P.policy Core.Privilege.Delete ~path:"//node()"
      ~subject:"doctor"
  in
  let doctor = Core.Session.login policy (P.document ()) ~user:P.laporte in
  let session, outcomes =
    Core.Validated.apply_all ~schema:s ~root:"patients" doctor
      [
        Xupdate.Op.update "/patients/franck/diagnosis" "flu";
        (* breaks the model: service becomes missing *)
        Xupdate.Op.remove "/patients/franck/service";
        (* still fine afterwards: the rejected op rolled back *)
        Xupdate.Op.remove "/patients/robert/diagnosis";
      ]
  in
  (match outcomes with
   | [ Core.Validated.Applied _; Core.Validated.Rejected _;
       Core.Validated.Applied _ ] -> ()
   | _ -> Alcotest.fail "expected applied/rejected/applied");
  Alcotest.(check (list string)) "final document still valid" []
    (Schema.validate ~root:"patients" s (Core.Session.source session));
  Alcotest.(check int) "franck's service survived the rollback" 1
    (List.length
       (Core.Session.query_source session "/patients/franck/service"))

(* Property: the validator agrees with a generate-then-check oracle on
   star models. *)
let prop_star_model =
  QCheck.Test.make ~count:200 ~name:"(a*, b?) matches iff shape holds"
    (QCheck.make
       ~print:QCheck.Print.(list string)
       QCheck.Gen.(list_size (int_range 0 6) (oneofl [ "a"; "b"; "c" ])))
    (fun words ->
      let s = Schema.of_string "<!ELEMENT x (a*, b?)>" in
      let regex =
        match Schema.content_model s "x" with
        | Some (Schema.Children r) -> r
        | _ -> assert false
      in
      let rec shape = function
        | [] -> true
        | [ "b" ] -> true
        | "a" :: rest -> shape rest
        | _ -> false
      in
      Schema.matches regex words = shape words)

let () =
  Alcotest.run "schema"
    [
      ( "parsing",
        [
          Alcotest.test_case "elements" `Quick test_parse;
          Alcotest.test_case "attlist" `Quick test_parse_attlist;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "validation",
        [
          Alcotest.test_case "matching" `Quick test_matching;
          Alcotest.test_case "figure 2 valid" `Quick test_validate_ok;
          Alcotest.test_case "violations" `Quick test_validate_violations;
          Alcotest.test_case "attributes" `Quick test_validate_attributes;
        ] );
      ( "validated updates",
        [
          Alcotest.test_case "apply" `Quick test_validated_apply;
          Alcotest.test_case "transactional apply_all" `Quick
            test_validated_apply_all_transactional;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_star_model ]);
    ]
