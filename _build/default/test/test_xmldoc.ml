(* Tests for the document store: construction, geometry predicates (§3.2),
   parsing/printing roundtrips and subtree updates. *)

open Xmldoc

(* The paper's figure-2 database. *)
let patients_xml =
  {|<patients>
  <franck>
    <service>otolarynology</service>
    <diagnosis>tonsillitis</diagnosis>
  </franck>
  <robert>
    <service>pneumology</service>
    <diagnosis>pneumonia</diagnosis>
  </robert>
</patients>|}

let doc () = Xml_parse.of_string patients_xml

let labels_of nodes = List.map (fun (n : Node.t) -> n.label) nodes

let select_one doc label =
  match
    List.find_opt
      (fun (n : Node.t) -> n.label = label)
      (Document.nodes doc)
  with
  | Some n -> n.id
  | None -> Alcotest.failf "node %s not found" label

let test_parse_counts () =
  let d = doc () in
  (* document + patients + 2 * (patient + 2*(element+text)) = 12 *)
  Alcotest.(check int) "node count" 12 (Document.size d);
  let root = Option.get (Document.root_element d) in
  Alcotest.(check string) "root label" "patients" root.label

let test_children_order () =
  let d = doc () in
  let root = Option.get (Document.root_element d) in
  Alcotest.(check (list string)) "children in document order"
    [ "franck"; "robert" ]
    (labels_of (Document.children d root.id));
  let franck = select_one d "franck" in
  Alcotest.(check (list string)) "franck's children"
    [ "service"; "diagnosis" ]
    (labels_of (Document.children d franck))

let test_descendants () =
  let d = doc () in
  let franck = select_one d "franck" in
  Alcotest.(check (list string)) "descendants in document order"
    [ "service"; "otolarynology"; "diagnosis"; "tonsillitis" ]
    (labels_of (Document.descendants d franck))

let test_ancestors () =
  let d = doc () in
  let text = select_one d "tonsillitis" in
  Alcotest.(check (list string)) "ancestors nearest first"
    [ "diagnosis"; "franck"; "patients"; "/" ]
    (labels_of (Document.ancestors d text))

let test_siblings () =
  let d = doc () in
  let franck = select_one d "franck" in
  Alcotest.(check (list string)) "following siblings" [ "robert" ]
    (labels_of (Document.following_siblings d franck));
  let robert = select_one d "robert" in
  Alcotest.(check (list string)) "preceding siblings" [ "franck" ]
    (labels_of (Document.preceding_siblings d robert))

let test_following_preceding () =
  let d = doc () in
  let franck = select_one d "franck" in
  Alcotest.(check (list string)) "following excludes own subtree"
    [ "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia" ]
    (labels_of (Document.following d franck));
  let robert = select_one d "robert" in
  Alcotest.(check (list string)) "preceding excludes ancestors, nearest first"
    [ "tonsillitis"; "diagnosis"; "otolarynology"; "service"; "franck" ]
    (labels_of (Document.preceding d robert))

let test_string_value () =
  let d = doc () in
  let franck = select_one d "franck" in
  Alcotest.(check string) "concatenated text" "otolarynologytonsillitis"
    (Document.string_value d franck);
  let text = select_one d "pneumonia" in
  Alcotest.(check string) "text node value" "pneumonia"
    (Document.string_value d text)

let test_relabel () =
  let d = doc () in
  let service = select_one d "service" in
  let d' = Document.relabel d service "department" in
  Alcotest.(check (option string)) "relabelled" (Some "department")
    (Document.label d' service);
  Alcotest.(check (option string)) "original unchanged" (Some "service")
    (Document.label d service);
  Alcotest.(check int) "same size" (Document.size d) (Document.size d')

let test_remove_subtree () =
  let d = doc () in
  let franck = select_one d "franck" in
  let d' = Document.remove_subtree d franck in
  Alcotest.(check int) "five nodes removed" (Document.size d - 5)
    (Document.size d');
  Alcotest.(check bool) "franck gone" false (Document.mem d' franck);
  Alcotest.(check bool) "robert still there" true
    (Document.mem d' (select_one d "robert"))

let test_append_tree () =
  let d = doc () in
  let root = Option.get (Document.root_element d) in
  let albert =
    Tree.element "albert"
      [
        Tree.element "service" [ Tree.text "cardiology" ];
        Tree.element "diagnosis" [];
      ]
  in
  let d', id = Document.append_tree d ~parent:root.id albert in
  Alcotest.(check int) "four nodes added" (Document.size d + 4)
    (Document.size d');
  Alcotest.(check (list string)) "albert is last"
    [ "franck"; "robert"; "albert" ]
    (labels_of (Document.children d' root.id));
  Alcotest.(check bool) "fresh id after robert" true
    (Ordpath.compare (select_one d "robert") id < 0);
  (* Existing identifiers are untouched (no renumbering). *)
  List.iter
    (fun (n : Node.t) ->
      Alcotest.(check bool) "old node intact" true
        (match Document.find d' n.id with
         | Some m -> Node.equal n m
         | None -> false))
    (Document.nodes d)

let test_insert_between () =
  let d = doc () in
  let root = Option.get (Document.root_element d) in
  let franck = select_one d "franck" and robert = select_one d "robert" in
  let d', _ =
    Document.add_subtree d ~parent:root.id ~left:(Some franck)
      ~right:(Some robert)
      (Tree.element "gaston" [])
  in
  Alcotest.(check (list string)) "inserted between"
    [ "franck"; "gaston"; "robert" ]
    (labels_of (Document.children d' root.id))

let test_attributes () =
  let d = Xml_parse.of_string {|<a id="7" lang="fr"><b/></a>|} in
  let a = Option.get (Document.root_element d) in
  Alcotest.(check (list string)) "attributes" [ "id"; "lang" ]
    (labels_of (Document.attributes d a.id));
  Alcotest.(check (list string)) "element children skip attributes" [ "b" ]
    (labels_of (Document.element_children d a.id));
  let id_attr = select_one d "id" in
  Alcotest.(check string) "attribute string value" "7"
    (Document.string_value d id_attr)

let test_parse_errors () =
  let bad src =
    match Xml_parse.of_string src with
    | exception Xml_parse.Error _ -> ()
    | _ -> Alcotest.failf "parse of %S should fail" src
  in
  bad "";
  bad "<a>";
  bad "<a></b>";
  bad "<a><b></a></b>";
  bad "<a>&unknown;</a>";
  bad "<a/><b/>";
  bad "<a x=1/>"

let test_parse_entities_cdata () =
  let d = Xml_parse.of_string "<a>x &lt;&amp;&gt; <![CDATA[<raw>]]> &#65;&#x42;</a>" in
  let a = Option.get (Document.root_element d) in
  Alcotest.(check string) "decoded" "x <&> <raw> AB" (Document.string_value d a.id)

let test_print_roundtrip () =
  let d = doc () in
  let printed = Xml_print.to_string d in
  let d' = Xml_parse.of_string printed in
  Alcotest.(check bool) "roundtrip equal" true (Document.equal d d')

let test_print_escaping () =
  let t = Tree.element "a" [ Tree.attr "k" "a\"b<c"; Tree.text "1 < 2 & 3" ] in
  let printed = Xml_print.fragment_to_string t in
  let d = Xml_parse.of_string printed in
  let a = Option.get (Document.root_element d) in
  Alcotest.(check string) "text survives" "1 < 2 & 3"
    (Document.string_value d a.id);
  let attr =
    match Document.attributes d a.id with
    | [ attr ] -> attr
    | _ -> Alcotest.fail "expected one attribute"
  in
  Alcotest.(check string) "attr survives" "a\"b<c"
    (Document.string_value d attr.id)

let test_to_tree_roundtrip () =
  let original =
    Tree.element "r"
      [
        Tree.attr "x" "1";
        Tree.element "a" [ Tree.text "hello" ];
        Tree.element "b" [];
      ]
  in
  let d = Document.of_tree original in
  let root = Option.get (Document.root_element d) in
  match Document.to_tree d root.id with
  | Some t -> Alcotest.(check bool) "tree roundtrip" true (Tree.equal original t)
  | None -> Alcotest.fail "to_tree failed"

(* Property: parse . print = identity on generated documents. *)
let tree_gen =
  let open QCheck.Gen in
  let label = oneofl [ "a"; "b"; "c"; "item"; "x1"; "long-name" ] in
  let text = oneofl [ "t"; "hello world"; "1 < 2"; "a&b"; "Ümläut" ] in
  fix
    (fun self depth ->
      if depth = 0 then map Tree.text text
      else
        frequency
          [
            (2, map Tree.text text);
            ( 3,
              map2 Tree.element label
                (list_size (int_range 0 3) (self (depth - 1))) );
          ])
    3

let root_gen =
  QCheck.Gen.(
    map2
      (fun name kids -> Tree.element name kids)
      (oneofl [ "root"; "doc" ])
      (list_size (int_range 0 4) tree_gen))

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"parse (print t) = t" ~count:200
    (QCheck.make ~print:Xml_print.fragment_to_string root_gen)
    (fun tree ->
      (* Printing merges nothing and strip_whitespace could drop text nodes
         that are all blanks; the generator never produces blank text. *)
      let printed = Xml_print.fragment_to_string tree in
      let reparsed = Xml_parse.fragment_of_string printed in
      (* Adjacent text nodes merge on reparse; normalize by comparing
         string values and element structure. *)
      let rec norm t =
        match t with
        | Tree.Element (n, kids) ->
          Tree.Element (n, List.map norm (merge kids))
        | t -> t
      and merge = function
        | Tree.Text a :: Tree.Text b :: rest -> merge (Tree.Text (a ^ b) :: rest)
        | k :: rest -> k :: merge rest
        | [] -> []
      in
      Tree.equal (norm tree) (norm reparsed))

let prop_geometry_consistent =
  QCheck.Test.make ~name:"descendants = transitive children" ~count:100
    (QCheck.make ~print:Xml_print.fragment_to_string root_gen)
    (fun tree ->
      let d = Document.of_tree tree in
      let rec via_children id =
        let kids = Document.children d id in
        List.concat_map
          (fun (n : Node.t) -> n :: via_children n.id)
          kids
      in
      Document.fold
        (fun (n : Node.t) acc ->
          acc
          && List.equal Node.equal (Document.descendants d n.id)
               (via_children n.id))
        d true)

let prop_parent_child_inverse =
  QCheck.Test.make ~name:"parent is the inverse of children" ~count:100
    (QCheck.make ~print:Xml_print.fragment_to_string root_gen)
    (fun tree ->
      let d = Document.of_tree tree in
      Document.fold
        (fun (n : Node.t) acc ->
          acc
          && List.for_all
               (fun (k : Node.t) ->
                 match Document.parent d k.id with
                 | Some p -> Ordpath.equal p.id n.id
                 | None -> false)
               (Document.children d n.id))
        d true)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_print_parse_roundtrip;
        prop_geometry_consistent;
        prop_parent_child_inverse;
      ]
  in
  Alcotest.run "xmldoc"
    [
      ( "document",
        [
          Alcotest.test_case "parse counts" `Quick test_parse_counts;
          Alcotest.test_case "children order" `Quick test_children_order;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "ancestors" `Quick test_ancestors;
          Alcotest.test_case "siblings" `Quick test_siblings;
          Alcotest.test_case "following/preceding" `Quick test_following_preceding;
          Alcotest.test_case "string value" `Quick test_string_value;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "remove subtree" `Quick test_remove_subtree;
          Alcotest.test_case "append tree" `Quick test_append_tree;
          Alcotest.test_case "insert between" `Quick test_insert_between;
          Alcotest.test_case "attributes" `Quick test_attributes;
        ] );
      ( "parse/print",
        [
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "entities and CDATA" `Quick test_parse_entities_cdata;
          Alcotest.test_case "print roundtrip" `Quick test_print_roundtrip;
          Alcotest.test_case "print escaping" `Quick test_print_escaping;
          Alcotest.test_case "to_tree roundtrip" `Quick test_to_tree_roundtrip;
        ] );
      ("property", qsuite);
    ]
