(* Integration scenario: a multi-user day at the hospital, driven through
   the public API exactly as an application would, with the shipped sample
   files.  Every step asserts both the functional outcome and the
   security-relevant non-outcome. *)

open Xmldoc

let data file = Filename.concat ".." ("examples/data/" ^ file)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The shipped sample files parse and agree with the in-code example. *)
let test_sample_files () =
  let doc = Xml_parse.of_string (read_file (data "patients.xml")) in
  let policy = Core.Policy_lang.parse (read_file (data "hospital.acl")) in
  Alcotest.(check int) "12 rules" 12 (List.length (Core.Policy.rules policy));
  Alcotest.(check bool) "same document as Paper_example" true
    (Document.equal doc (Core.Paper_example.document ()));
  Alcotest.(check bool) "rules equal Paper_example's" true
    (List.equal Core.Rule.equal
       (Core.Policy.rules policy)
       (Core.Policy.rules Core.Paper_example.policy));
  let schema = Schema.of_string (read_file (data "hospital.dtd")) in
  Alcotest.(check (list string)) "document validates" []
    (Schema.validate ~root:"patients" schema doc);
  let ops = Xupdate.Xupdate_xml.ops_of_string (read_file (data "changes.xupdate")) in
  Alcotest.(check int) "two modifications" 2 (List.length ops)

let test_a_day_at_the_hospital () =
  let doc = Xml_parse.of_string (read_file (data "patients.xml")) in
  let policy = Core.Policy_lang.parse (read_file (data "hospital.acl")) in
  let schema = Schema.of_string (read_file (data "hospital.dtd")) in
  let login user current = Core.Session.login policy current ~user in

  (* 08:00 — the secretary registers a new patient, albert. *)
  let secretary = login "beaufort" doc in
  let secretary, r =
    Core.Secure_update.apply secretary
      (Xupdate.Op.append "/patients"
         (Tree.element "albert"
            [ Tree.element "service" [ Tree.text "cardiology" ];
              Tree.element "diagnosis" [] ]))
  in
  Alcotest.(check bool) "registration applied" true
    (Core.Secure_update.fully_applied r);
  let doc = Core.Session.source secretary in
  Alcotest.(check (list string)) "database still valid" []
    (Schema.validate ~root:"patients" schema doc);

  (* 08:05 — the secretary peeks at diagnoses: masked. *)
  Alcotest.(check int) "secretary sees masks only" 0
    (List.length
       (Core.Session.query secretary "//diagnosis/text()[. != 'RESTRICTED']"));

  (* 09:00 — the doctor poses albert's diagnosis. *)
  let doctor = login "laporte" doc in
  let doctor, r =
    Core.Secure_update.apply doctor
      (Xupdate.Op.append "/patients/albert/diagnosis" (Tree.text "arrhythmia"))
  in
  Alcotest.(check bool) "diagnosis posed" true (Core.Secure_update.fully_applied r);
  let doc = Core.Session.source doctor in

  (* 09:30 — the epidemiologist runs statistics without names. *)
  let epidemiologist = login "richard" doc in
  Alcotest.(check int) "three diagnoses countable" 3
    (List.length (Core.Session.query epidemiologist "//diagnosis/text()"));
  Alcotest.(check int) "no names visible" 0
    (List.length (Core.Session.query epidemiologist "/patients/albert"));
  Alcotest.(check int) "records are RESTRICTED" 3
    (List.length (Core.Session.query epidemiologist "/patients/RESTRICTED"));

  (* 10:00 — patient robert checks his record; sees only his own. *)
  let robert = login "robert" doc in
  Alcotest.(check int) "own diagnosis" 1
    (List.length (Core.Session.query robert "//diagnosis/text()[. = 'pneumonia']"));
  Alcotest.(check int) "nobody else's" 1
    (List.length (Core.Session.query robert "/patients/*"));

  (* 10:15 — robert tries to edit his diagnosis: denied. *)
  let _, r =
    Core.Secure_update.apply robert
      (Xupdate.Op.update "/patients/robert/diagnosis" "cured")
  in
  Alcotest.(check int) "denied" 1 (List.length r.denied);

  (* 11:00 — the doctor corrects franck's diagnosis through the XUpdate
     wire format (as a connected tool would). *)
  let doctor = login "laporte" doc in
  let ops =
    Xupdate.Xupdate_xml.ops_of_string
      {|<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:update select="/patients/franck/diagnosis">pharyngitis</xupdate:update>
        </xupdate:modifications>|}
  in
  let doctor, reports = Core.Secure_update.apply_all doctor ops in
  Alcotest.(check bool) "wire update applied" true
    (List.for_all Core.Secure_update.fully_applied reports);
  let doc = Core.Session.source doctor in

  (* 14:00 — audit: the three enforcement paths agree on every view. *)
  List.iter
    (fun user ->
      let session = login user doc in
      let view = Core.Session.view session in
      let serialize = Xml_print.to_string ~indent:true in
      Alcotest.(check string) (user ^ ": XSLT path agrees")
        (serialize view)
        (serialize (Core.Xslt_enforcer.enforce policy doc ~user));
      let lv = Core.Lazy_view.of_session session in
      Alcotest.(check bool) (user ^ ": lazy path agrees") true
        (Document.equal view (Core.Lazy_view.materialize lv));
      Alcotest.(check bool) (user ^ ": datalog path agrees") true
        (Core.Logic_encoding.view_parity session))
    [ "beaufort"; "laporte"; "richard"; "robert" ];

  (* 17:00 — the secretary archives franck (delete denied), then the
     doctor clears the diagnosis content instead. *)
  let secretary = login "beaufort" doc in
  let _, r =
    Core.Secure_update.apply secretary (Xupdate.Op.remove "/patients/franck")
  in
  Alcotest.(check int) "secretary cannot delete records" 1
    (List.length r.denied);
  let doctor = login "laporte" doc in
  let doctor, r =
    Core.Secure_update.apply doctor
      (Xupdate.Op.remove "/patients/franck/diagnosis/node()")
  in
  Alcotest.(check bool) "doctor clears diagnosis" true
    (Core.Secure_update.fully_applied r);
  let doc = Core.Session.source doctor in
  Alcotest.(check (list string)) "still schema-valid at end of day" []
    (Schema.validate ~root:"patients" schema doc);
  Alcotest.(check int) "franck's record survived" 1
    (List.length (Xpath.Eval.select_str doc "/patients/franck"))

let test_concurrent_sessions_see_consistent_snapshots () =
  (* Sessions are immutable values over immutable documents: an update in
     one session never mutates another session's snapshot. *)
  let doc = Core.Paper_example.document () in
  let policy = Core.Paper_example.policy in
  let doctor = Core.Session.login policy doc ~user:"laporte" in
  let secretary = Core.Session.login policy doc ~user:"beaufort" in
  let doctor2, _ =
    Core.Secure_update.apply doctor
      (Xupdate.Op.update "/patients/franck/diagnosis" "cured")
  in
  (* The secretary's old session still sees the old masked content. *)
  Alcotest.(check int) "old snapshot intact" 2
    (List.length (Core.Session.query secretary "//diagnosis/node()"));
  Alcotest.(check bool) "old source unchanged" true
    (Document.equal (Core.Session.source secretary) doc);
  Alcotest.(check bool) "new source changed" true
    (not (Document.equal (Core.Session.source doctor2) doc))

let () =
  Alcotest.run "scenario"
    [
      ( "integration",
        [
          Alcotest.test_case "sample files" `Quick test_sample_files;
          Alcotest.test_case "a day at the hospital" `Quick
            test_a_day_at_the_hospital;
          Alcotest.test_case "session snapshots" `Quick
            test_concurrent_sessions_see_consistent_snapshots;
        ] );
    ]
