test/test_lsdx.ml: Alcotest List Lsdx Ordpath QCheck QCheck_alcotest Stdlib
