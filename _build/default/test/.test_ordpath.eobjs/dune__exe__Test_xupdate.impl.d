test/test_xupdate.ml: Alcotest Core Document List Node Option Ordpath QCheck QCheck_alcotest Tree Xml_parse Xmldoc Xupdate
