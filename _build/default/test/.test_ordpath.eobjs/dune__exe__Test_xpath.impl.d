test/test_xpath.ml: Alcotest Document Format List Node Option Ordpath Printf QCheck QCheck_alcotest Xml_parse Xmldoc Xpath
