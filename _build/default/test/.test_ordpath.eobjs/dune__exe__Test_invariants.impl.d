test/test_invariants.ml: Alcotest Core Document Invariants List Node Ordpath QCheck QCheck_alcotest Tree Workload Xmldoc Xupdate
