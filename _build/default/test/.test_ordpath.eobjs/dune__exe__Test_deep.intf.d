test/test_deep.mli:
