test/test_xmldoc.mli:
