test/test_xpath_extra.ml: Alcotest Document Float List Node Option Ordpath Printf QCheck QCheck_alcotest String Xml_parse Xmldoc Xpath
