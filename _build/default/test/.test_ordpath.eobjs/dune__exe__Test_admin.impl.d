test/test_admin.ml: Alcotest Core List Xmldoc
