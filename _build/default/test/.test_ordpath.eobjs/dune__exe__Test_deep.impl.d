test/test_deep.ml: Alcotest Core Datalog Document List Node Ordpath Tree Workload Xml_parse Xml_print Xmldoc Xupdate
