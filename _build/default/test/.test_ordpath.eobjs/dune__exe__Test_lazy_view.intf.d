test/test_lazy_view.mli:
