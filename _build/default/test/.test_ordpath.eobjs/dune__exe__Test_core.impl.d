test/test_core.ml: Alcotest Core Document Format List Node Option Ordpath Printf QCheck QCheck_alcotest String Tree Xml_parse Xml_print Xmldoc Xupdate
