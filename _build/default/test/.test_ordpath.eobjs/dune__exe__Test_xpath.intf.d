test/test_xpath.mli:
