test/test_xupdate.mli:
