test/test_workload.ml: Alcotest Core Document Fun List Node Option Printf String Workload Xmldoc Xpath
