test/test_lsdx.mli:
