test/test_extra.ml: Alcotest Core Datalog Document List Node Option Ordpath Printf QCheck Tree Xml_parse Xmldoc Xupdate
