test/test_baselines.ml: Alcotest Baselines Core Document List Node Ordpath Printf QCheck Tree Workload Xml_parse Xmldoc Xpath Xupdate
