test/test_lint.ml: Alcotest Core List String Workload Xmldoc
