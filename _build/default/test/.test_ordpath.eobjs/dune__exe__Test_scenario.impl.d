test/test_scenario.ml: Alcotest Core Document Filename List Schema Tree Xml_parse Xml_print Xmldoc Xpath Xupdate
