test/test_xmldoc.ml: Alcotest Document List Node Option Ordpath QCheck QCheck_alcotest Tree Xml_parse Xml_print Xmldoc
