test/test_xpath_extra.mli:
