test/test_ordpath.mli:
