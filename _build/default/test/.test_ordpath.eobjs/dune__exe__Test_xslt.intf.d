test/test_xslt.mli:
