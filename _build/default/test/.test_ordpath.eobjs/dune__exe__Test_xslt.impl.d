test/test_xslt.ml: Alcotest Core Document List Ordpath Printf QCheck QCheck_alcotest String Tree Workload Xml_parse Xml_print Xmldoc Xpath Xslt
