test/test_ordpath.ml: Alcotest List Ordpath Printf QCheck QCheck_alcotest
