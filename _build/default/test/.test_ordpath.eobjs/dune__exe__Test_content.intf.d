test/test_content.mli:
