test/test_cli.ml: Alcotest Core Filename List Printf String Sys
