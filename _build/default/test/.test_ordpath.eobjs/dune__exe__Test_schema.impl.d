test/test_schema.ml: Alcotest Core List Printf QCheck QCheck_alcotest Schema String Xml_parse Xmldoc Xupdate
