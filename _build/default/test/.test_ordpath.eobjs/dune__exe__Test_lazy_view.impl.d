test/test_lazy_view.ml: Alcotest Core Document List Node Ordpath Printf QCheck QCheck_alcotest Tree Workload Xml_print Xmldoc Xpath
