test/test_security.ml: Alcotest Baselines Core Document Format List Node Ordpath QCheck QCheck_alcotest String Tree Workload Xml_print Xmldoc Xupdate
