test/test_datalog.ml: Alcotest Datalog List Printf QCheck QCheck_alcotest
