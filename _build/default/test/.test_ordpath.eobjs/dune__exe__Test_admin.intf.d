test/test_admin.mli:
