test/test_content.ml: Alcotest Baselines Core Document List Printf Tree Xml_parse Xmldoc Xpath Xupdate
