(* The security argument of the paper, as executable properties.

   The §2.2 claim is that a write operation "should not be able to read
   the data the user is not permitted to see".  Formally: if two source
   databases present the same view to a user (they differ only in data
   the user cannot read), then every operation the user issues selects
   the same targets, reports the same outcome, and leaves the user's view
   in the same state — the user cannot distinguish the two databases.

   (The property quantifies over databases differing in unreadable TEXT
   content under a fixed policy whose rule paths do not predicate over
   content — the paper's setting; rule paths are trusted policy, not
   subject input.) *)

open Xmldoc
module P = Core.Paper_example

(* Replace the label of every text node the user cannot read. *)
let mutate_invisible doc perm replacement =
  Document.fold
    (fun (n : Node.t) acc ->
      if
        n.kind = Node.Text
        && not (Core.Perm.holds perm Core.Privilege.Read n.id)
      then Document.relabel acc n.id replacement
      else acc)
    doc doc

let ops_under_test =
  [
    Xupdate.Op.rename "/patients/franck" "francois";
    Xupdate.Op.rename "/patients/*" "someone";
    Xupdate.Op.update "//diagnosis" "cured";
    Xupdate.Op.update "/patients/*[service = 'pneumology']/diagnosis" "cured";
    Xupdate.Op.append "/patients" (Tree.element "new" []);
    Xupdate.Op.append "//diagnosis" (Tree.text "flu");
    Xupdate.Op.insert_before "/patients/*[1]" (Tree.element "first" []);
    Xupdate.Op.insert_after "//diagnosis[node()]" (Tree.element "note" []);
    Xupdate.Op.remove "//diagnosis/node()";
    Xupdate.Op.remove "/patients/*[diagnosis/text() = 'tonsillitis']";
    (* Probes that explicitly predicate over content the user may not
       see. *)
    Xupdate.Op.update "//*[text() = 'tonsillitis']" "gotcha";
    Xupdate.Op.remove "/patients/*[service/text() = 'pneumology']";
  ]

let serialize d = Xml_print.to_string ~indent:true d

let report_fingerprint (r : Core.Secure_update.report) =
  ( List.map Ordpath.to_string r.targets,
    List.map Ordpath.to_string r.relabelled,
    List.map Ordpath.to_string r.removed,
    List.map Ordpath.to_string r.inserted,
    List.map
      (fun (d : Core.Secure_update.denial) ->
        (Ordpath.to_string d.node, Core.Privilege.to_string d.privilege))
      r.denied,
    List.map (fun (id, _) -> Ordpath.to_string id) r.skipped )

let check_indistinguishable user =
  let doc1 = P.document () in
  let perm = Core.Perm.compute P.policy doc1 ~user in
  let doc2 = mutate_invisible doc1 perm "ZZZ-SECRET" in
  let s1 = Core.Session.login P.policy doc1 ~user in
  let s2 = Core.Session.login P.policy doc2 ~user in
  Alcotest.(check string)
    (user ^ ": the two databases present the same view")
    (serialize (Core.Session.view s1))
    (serialize (Core.Session.view s2));
  List.iter
    (fun op ->
      let s1', r1 = Core.Secure_update.apply s1 op in
      let s2', r2 = Core.Secure_update.apply s2 op in
      let label = Format.asprintf "%s: %a" user Xupdate.Op.pp op in
      Alcotest.(check bool)
        (label ^ " — same report")
        true
        (report_fingerprint r1 = report_fingerprint r2);
      Alcotest.(check string)
        (label ^ " — same view afterwards")
        (serialize (Core.Session.view s1'))
        (serialize (Core.Session.view s2')))
    ops_under_test

let test_secretary () = check_indistinguishable P.beaufort
let test_epidemiologist () = check_indistinguishable P.richard
let test_patient () = check_indistinguishable P.robert

let test_baseline_is_distinguishable () =
  (* Sanity for the property itself: the source-write baseline DOES
     distinguish the two databases, so the mutation is meaningful. *)
  let user = P.beaufort in
  let doc1 = P.document () in
  let perm = Core.Perm.compute P.policy doc1 ~user in
  let doc2 = mutate_invisible doc1 perm "ZZZ-SECRET" in
  let probe = Xupdate.Op.rename "/patients/*[diagnosis = 'tonsillitis']" "leak" in
  let _, r1 = Baselines.Source_write.apply P.policy doc1 ~user probe in
  let _, r2 = Baselines.Source_write.apply P.policy doc2 ~user probe in
  Alcotest.(check bool) "baseline reports differ" true
    (List.length r1.targets <> List.length r2.targets)

(* Randomized form over generated hospitals: mutate the secretary's
   unreadable text, compare a probe batch. *)
let prop_indistinguishability_at_scale =
  QCheck.Test.make ~count:25 ~name:"indistinguishability on generated hospitals"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let config = { Workload.Gen_doc.default with patients = 12; seed } in
      let doc1 = Workload.Gen_doc.generate config in
      let policy = Workload.Gen_policy.hospital config in
      let user = "beaufort" in
      let perm = Core.Perm.compute policy doc1 ~user in
      let doc2 = mutate_invisible doc1 perm "XXX" in
      let s1 = Core.Session.login policy doc1 ~user in
      let s2 = Core.Session.login policy doc2 ~user in
      List.for_all
        (fun op ->
          let s1', r1 = Core.Secure_update.apply s1 op in
          let s2', r2 = Core.Secure_update.apply s2 op in
          report_fingerprint r1 = report_fingerprint r2
          && String.equal
               (serialize (Core.Session.view s1'))
               (serialize (Core.Session.view s2')))
        [
          Xupdate.Op.update "//*[diagnosis = 'pneumonia']/diagnosis" "x";
          Xupdate.Op.remove "/patients/*[diagnosis/text()]";
          Xupdate.Op.rename "/patients/*[contains(diagnosis, 'itis')]" "y";
          Xupdate.Op.append "/patients" (Tree.element "extra" []);
        ])

(* Monotonicity: granting a privilege never shrinks a view; denying
   never grows it. *)
let prop_grant_monotone =
  QCheck.Test.make ~count:60 ~name:"grants grow views, denies shrink them"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let rng = Workload.Prng.create seed in
      let doc = P.document () in
      let paths =
        [ "//node()"; "/patients"; "//diagnosis"; "//service/node()";
          "/patients/*" ]
      in
      let _, path = Workload.Prng.pick rng paths in
      let base = P.policy in
      let granted =
        Core.Policy.grant base Core.Privilege.Read ~path ~subject:"secretary"
      in
      let denied =
        Core.Policy.deny base Core.Privilege.Read ~path ~subject:"secretary"
      in
      let nodes policy =
        let s = Core.Session.login policy doc ~user:P.beaufort in
        Document.fold
          (fun (n : Node.t) acc -> Ordpath.Set.add n.id acc)
          (Core.Session.view s) Ordpath.Set.empty
      in
      let base_nodes = nodes base in
      (* A grant can only add nodes (or upgrade RESTRICTED to plain). *)
      Ordpath.Set.subset base_nodes (nodes granted)
      &&
      (* A deny can only remove nodes or downgrade them. *)
      Ordpath.Set.subset (nodes denied) base_nodes)

let () =
  Alcotest.run "security"
    [
      ( "view indistinguishability",
        [
          Alcotest.test_case "secretary" `Quick test_secretary;
          Alcotest.test_case "epidemiologist" `Quick test_epidemiologist;
          Alcotest.test_case "patient" `Quick test_patient;
          Alcotest.test_case "baseline distinguishes (sanity)" `Quick
            test_baseline_is_distinguishable;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_indistinguishability_at_scale; prop_grant_monotone ] );
    ]
