(* Tests for the §2 baseline models and the comparison metrics. *)

open Xmldoc
module P = Core.Paper_example

let labels doc =
  List.map (fun (n : Node.t) -> n.label) (Document.nodes doc)

let perm_for user =
  Core.Perm.compute P.policy (P.document ()) ~user

(* --- deny-subtree [11] -------------------------------------------------- *)

let test_deny_subtree_secretary () =
  (* The secretary lacks read on diagnosis texts: the [11] baseline drops
     them with no placeholder. *)
  let view = Baselines.Deny_subtree.derive (P.document ()) (perm_for P.beaufort) in
  Alcotest.(check (list string)) "texts silently missing"
    [
      "/"; "patients";
      "franck"; "service"; "otolarynology"; "diagnosis";
      "robert"; "service"; "pneumology"; "diagnosis";
    ]
    (labels view)

let test_deny_subtree_epidemiologist () =
  (* Patient names are denied: the whole records disappear even though
     the services and diagnoses below are readable — the availability
     problem of [18] quoted in §2. *)
  let doc = P.document () in
  let perm = perm_for P.richard in
  let view = Baselines.Deny_subtree.derive doc perm in
  Alcotest.(check (list string)) "records lost entirely" [ "/"; "patients" ]
    (labels view);
  let lost = Baselines.Deny_subtree.lost_nodes doc perm in
  Alcotest.(check int) "8 readable nodes lost" 8 (List.length lost)

let test_deny_subtree_subset_of_core () =
  (* The [11] view is always a subset of the core view. *)
  List.iter
    (fun user ->
      let doc = P.document () in
      let perm = perm_for user in
      let baseline = Baselines.Deny_subtree.derive doc perm in
      let core = Core.View.derive doc perm in
      Document.iter
        (fun (n : Node.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s in core view" (Ordpath.to_string n.id))
            true (Document.mem core n.id))
        baseline)
    [ P.beaufort; P.laporte; P.richard; P.robert ]

(* --- structure-preserving [7] ------------------------------------------- *)

let test_structure_preserving_epidemiologist () =
  (* The [7] baseline shows the denied patient names with their REAL
     labels — the leak the RESTRICTED label repairs. *)
  let doc = P.document () in
  let perm = perm_for P.richard in
  let view = Baselines.Structure_preserving.derive doc perm in
  Alcotest.(check (list string)) "names leaked"
    [
      "/"; "patients";
      "franck"; "service"; "otolarynology"; "diagnosis"; "tonsillitis";
      "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia";
    ]
    (labels view);
  Alcotest.(check int) "two leaked labels" 2
    (List.length (Baselines.Structure_preserving.leaked_nodes doc perm))

let test_structure_preserving_no_leak_on_leaves () =
  (* Denied leaves have no readable descendants: nothing to preserve,
     nothing leaked. *)
  let doc = P.document () in
  let perm = perm_for P.beaufort in
  Alcotest.(check int) "no leak for the secretary" 0
    (List.length (Baselines.Structure_preserving.leaked_nodes doc perm))

(* --- source-write [10] --------------------------------------------------- *)

let covert_policy =
  Core.Policy_lang.parse
    {|role user_b
user spy isa user_b
grant update on //salary to user_b
grant update on //salary/node() to user_b
grant delete on //bonus to user_b
grant insert on //employee to user_b|}

let employees () =
  Xml_parse.of_string
    {|<employees>
        <employee><name>alice</name><salary>3500</salary><bonus>100</bonus></employee>
        <employee><name>bob</name><salary>2900</salary></employee>
      </employees>|}

let test_source_write_leaks () =
  let doc = employees () in
  let probe = Xupdate.Op.update "//employee[salary > 3000]/salary" "0" in
  let _, report = Baselines.Source_write.apply covert_policy doc ~user:"spy" probe in
  Alcotest.(check int) "selects on source" 1 (List.length report.targets);
  Alcotest.(check bool) "leak flagged" true
    (Baselines.Source_write.probe_leaks report)

let test_source_write_checks_write_privileges () =
  let doc = employees () in
  (* No update privilege on names. *)
  let _, report =
    Baselines.Source_write.apply covert_policy doc ~user:"spy"
      (Xupdate.Op.rename "//name" "hidden")
  in
  Alcotest.(check int) "denied on both names" 2 (List.length report.denied);
  Alcotest.(check int) "nothing changed" 0 (List.length report.relabelled);
  (* Delete allowed on bonus only. *)
  let d2, report2 =
    Baselines.Source_write.apply covert_policy doc ~user:"spy"
      (Xupdate.Op.remove "//bonus")
  in
  Alcotest.(check int) "bonus removed" 1 (List.length report2.removed);
  Alcotest.(check bool) "document shrank" true
    (Document.size d2 < Document.size doc)

let test_source_write_insert () =
  let doc = employees () in
  let d2, report =
    Baselines.Source_write.apply covert_policy doc ~user:"spy"
      (Xupdate.Op.append "//employee[name = 'bob']"
         (Tree.element "bonus" [ Tree.text "50" ]))
  in
  Alcotest.(check int) "inserted" 1 (List.length report.inserted);
  Alcotest.(check int) "two bonuses now" 2
    (List.length (Xpath.Eval.select_str d2 "//bonus"))

let test_secure_model_blocks_the_same_probe () =
  let doc = employees () in
  let session = Core.Session.login covert_policy doc ~user:"spy" in
  let probe = Xupdate.Op.update "//employee[salary > 3000]/salary" "0" in
  let _, report = Core.Secure_update.apply session probe in
  Alcotest.(check int) "no targets on the view" 0 (List.length report.targets)

(* --- metrics -------------------------------------------------------------- *)

let test_metrics_consistency () =
  let config = { Workload.Gen_doc.default with patients = 30; seed = 5 } in
  let doc = Workload.Gen_doc.generate config in
  let policy = Workload.Gen_policy.hospital config in
  List.iter
    (fun user ->
      let c = Baselines.Metrics.compare_models policy doc ~user in
      Alcotest.(check bool) "visible <= source" true
        (c.core_visible <= c.source_nodes
         && c.deny_subtree_visible <= c.source_nodes
         && c.structure_preserving_visible <= c.source_nodes);
      Alcotest.(check bool) "deny-subtree <= readable" true
        (c.deny_subtree_visible <= c.readable_nodes);
      Alcotest.(check int) "lost = readable - deny-subtree-visible"
        c.deny_subtree_lost
        (c.readable_nodes - c.deny_subtree_visible);
      Alcotest.(check bool) "core dominates deny-subtree" true
        (c.core_visible >= c.deny_subtree_visible);
      Alcotest.(check bool) "restricted nodes are a subset of the view" true
        (c.core_restricted <= c.core_visible);
      Alcotest.(check bool) "leaks are a subset of the [7] view" true
        (c.structure_preserving_leaked <= c.structure_preserving_visible))
    ("beaufort" :: "laporte" :: "richard"
     :: [ List.nth (Workload.Gen_doc.patient_names config) 0 ])

let test_core_never_leaks_property () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:60 ~name:"core view leak count is always zero"
       (QCheck.make QCheck.Gen.(int_range 1 1000))
       (fun seed ->
         let policy =
           Workload.Gen_policy.random
             { rules = 12; deny_fraction = 0.4; seed }
         in
         let doc =
           Workload.Gen_doc.generate
             { Workload.Gen_doc.default with patients = 5; seed }
         in
         let perm = Core.Perm.compute policy doc ~user:"u" in
         Baselines.Metrics.core_leaked (Core.View.derive doc perm) perm = 0))

let () =
  Alcotest.run "baselines"
    [
      ( "deny-subtree [11]",
        [
          Alcotest.test_case "secretary" `Quick test_deny_subtree_secretary;
          Alcotest.test_case "epidemiologist" `Quick
            test_deny_subtree_epidemiologist;
          Alcotest.test_case "subset of core" `Quick
            test_deny_subtree_subset_of_core;
        ] );
      ( "structure-preserving [7]",
        [
          Alcotest.test_case "epidemiologist leak" `Quick
            test_structure_preserving_epidemiologist;
          Alcotest.test_case "no leak on leaves" `Quick
            test_structure_preserving_no_leak_on_leaves;
        ] );
      ( "source-write [10]",
        [
          Alcotest.test_case "probe leaks" `Quick test_source_write_leaks;
          Alcotest.test_case "write privileges checked" `Quick
            test_source_write_checks_write_privileges;
          Alcotest.test_case "insert" `Quick test_source_write_insert;
          Alcotest.test_case "secure model blocks probe" `Quick
            test_secure_model_blocks_the_same_probe;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "consistency" `Quick test_metrics_consistency;
          Alcotest.test_case "core never leaks" `Quick
            test_core_never_leaks_property;
        ] );
    ]
