(* Edge cases for the XPath engine: number formatting, coercion corners,
   parser precedence, axis boundary behaviour and error paths. *)

open Xmldoc

let doc =
  Xml_parse.of_string
    {|<inventory total="3">
  <item price="10.5" qty="2">widget</item>
  <item price="0" qty="0">gadget</item>
  <item price="-4" qty="7">gizmo</item>
  <empty/>
</inventory>|}

let vsrc = Xpath.Source.of_document doc
let env = Xpath.Eval.env doc

let eval src = Xpath.Eval.eval env ~context:Ordpath.document (Xpath.Parser.parse src)
let num src = Xpath.Value.to_num vsrc (eval src)
let str src = Xpath.Value.to_string vsrc (eval src)
let boolean src = Xpath.Value.to_bool vsrc (eval src)
let select src = Xpath.Eval.select_str doc src

(* --- numbers ------------------------------------------------------------- *)

let test_number_formatting () =
  Alcotest.(check string) "integer without point" "3" (str "1 + 2");
  Alcotest.(check string) "fraction" "0.5" (str "1 div 2");
  Alcotest.(check string) "negative" "-4" (str "0 - 4");
  Alcotest.(check string) "infinity" "Infinity" (str "1 div 0");
  Alcotest.(check string) "-infinity" "-Infinity" (str "-1 div 0");
  Alcotest.(check string) "NaN" "NaN" (str "0 div 0");
  Alcotest.(check string) "NaN from text" "NaN" (str "number('abc')")

let test_arithmetic_corners () =
  Alcotest.(check bool) "NaN is not equal to itself" false (boolean "0 div 0 = 0 div 0");
  Alcotest.(check bool) "NaN != NaN" true (boolean "0 div 0 != 0 div 0");
  Alcotest.(check (float 1e-9)) "mod sign follows dividend" (-1.) (num "-7 mod 2");
  Alcotest.(check (float 1e-9)) "mod fractional" 0.5 (num "2.5 mod 1");
  Alcotest.(check (float 1e-9)) "double negation" 3. (num "- -3");
  Alcotest.(check (float 1e-9)) "sum with negatives" 6.5 (num "sum(//@price)");
  Alcotest.(check (float 1e-9)) "round half up" 3. (num "round(2.5)");
  Alcotest.(check (float 1e-9)) "round negative" (-2.) (num "round(-2.5)");
  Alcotest.(check (float 1e-9)) "boolean to number" 1. (num "number(true())")

let test_coercions () =
  Alcotest.(check bool) "empty nodeset != '' as existential" false
    (boolean "//nothing = ''");
  Alcotest.(check bool) "empty nodeset != anything" false
    (boolean "//nothing = //nothing");
  Alcotest.(check bool) "empty nodeset equals false()" true
    (boolean "//nothing = false()");
  Alcotest.(check bool) "string number equality" true (boolean "'10.5' = 10.5");
  Alcotest.(check bool) "nodeset numeric compare" true (boolean "//@qty > 5");
  Alcotest.(check bool) "existential both ways" true
    (boolean "//@qty < //@price");
  Alcotest.(check bool) "string of empty nodeset is empty" true
    (boolean "string(//nothing) = ''")

(* --- parser -------------------------------------------------------------- *)

let test_precedence () =
  Alcotest.(check bool) "or/and precedence" true
    (boolean "true() or false() and false()");
  Alcotest.(check bool) "comparison binds tighter than and" true
    (boolean "1 < 2 and 3 < 4");
  Alcotest.(check bool) "equality chains left" true (boolean "(1 = 1) = true()");
  Alcotest.(check (float 1e-9)) "mul before add" 7. (num "1 + 2 * 3");
  Alcotest.(check (float 1e-9)) "parens" 9. (num "(1 + 2) * 3");
  Alcotest.(check (float 1e-9)) "div and mod same level" 1. (num "7 mod 3 * 1");
  Alcotest.(check bool) "unary minus below union" true
    (boolean "-1 < count(//item | //empty)")

let test_parser_names_as_operators () =
  (* 'and', 'or', 'div', 'mod' remain usable as element names. *)
  let d = Xml_parse.of_string "<or><and>1</and><div>2</div><mod>3</mod></or>" in
  Alcotest.(check int) "or element" 1
    (List.length (Xpath.Eval.select_str d "/or"));
  Alcotest.(check int) "and child" 1
    (List.length (Xpath.Eval.select_str d "/or/and"));
  Alcotest.(check int) "div by name" 1
    (List.length (Xpath.Eval.select_str d "//div"));
  Alcotest.(check bool) "and still an operator after an operand" true
    (match Xpath.Eval.select_str d "/or[and and mod]" with
     | [ _ ] -> true
     | _ -> false)

let test_qualified_names () =
  let d = Xml_parse.of_string "<x:root><x:kid/><plain/></x:root>" in
  Alcotest.(check int) "qname test" 1
    (List.length (Xpath.Eval.select_str d "/x:root/x:kid"));
  Alcotest.(check int) "qname star" 2
    (List.length (Xpath.Eval.select_str d "/x:root/*"))

(* --- axes ---------------------------------------------------------------- *)

let test_axis_boundaries () =
  Alcotest.(check int) "parent of document node is empty" 0
    (List.length (select "/.."));
  Alcotest.(check int) "following of last node" 0
    (List.length (select "//empty/following::node()"));
  Alcotest.(check int) "preceding of root element" 0
    (List.length (select "/inventory/preceding::node()"));
  Alcotest.(check int) "attribute parent" 3
    (List.length (select "//@price/.."));
  Alcotest.(check int) "ancestors of attribute include the document node" 3
    (List.length (select "//item[1]/@price/ancestor::node()"));
  Alcotest.(check int) "attributes not on child axis" 1
    (List.length (select "//item[1]/node()"));
  Alcotest.(check int) "attribute axis star" 7 (List.length (select "//@*"))

let test_document_node_context () =
  Alcotest.(check int) "self of document" 1 (List.length (select "/."));
  (* 23 stored nodes minus 7 attributes and their 7 text values. *)
  Alcotest.(check int) "descendant-or-self from document (tree nodes)" 9
    (List.length (select "/descendant-or-self::node()"));
  Alcotest.(check int) "root element is child of document" 1
    (List.length (select "/child::node()"))

let test_predicate_positions () =
  Alcotest.(check int) "non-integer position never matches" 0
    (List.length (select "//item[0.5]"));
  Alcotest.(check int) "position 0 never matches" 0
    (List.length (select "//item[0]"));
  Alcotest.(check int) "beyond last" 0 (List.length (select "//item[99]"));
  Alcotest.(check int) "last()" 1 (List.length (select "//item[last()]"));
  (* first element child of each parent: inventory, first item *)
  Alcotest.(check int) "predicate on //: per parent position" 2
    (List.length (select "//*[1]"));
  (* //item[1] finds the first item of each parent: one here. *)
  Alcotest.(check int) "//item[1]" 1 (List.length (select "//item[1]"))

let test_union_and_errors () =
  Alcotest.(check int) "union of disjoint" 4
    (List.length (select "//item | //empty"));
  Alcotest.(check int) "self union" 3 (List.length (select "//item | //item"));
  (match select "//item | 3" with
   | exception Xpath.Eval.Error _ -> ()
   | _ -> Alcotest.fail "union with number must fail");
  (match select "count(//item)/x" with
   | exception (Xpath.Eval.Error _ | Xpath.Parser.Error _) -> ()
   | _ -> Alcotest.fail "path step from a number must fail");
  (match eval "count(1)" with
   | exception Xpath.Eval.Error _ -> ()
   | _ -> Alcotest.fail "count of non-nodeset must fail");
  (match eval "count()" with
   | exception Xpath.Eval.Error _ -> ()
   | _ -> Alcotest.fail "count without argument must fail")

let test_string_functions_edges () =
  Alcotest.(check string) "substring NaN start" "" (str "substring('abc', 0 div 0)");
  Alcotest.(check string) "substring clamps low" "ab" (str "substring('abc', 0, 3)");
  Alcotest.(check string) "substring infinity length" "bc" (str "substring('abc', 2)");
  Alcotest.(check bool) "contains empty" true (boolean "contains('abc', '')");
  Alcotest.(check bool) "starts-with empty" true (boolean "starts-with('abc', '')");
  Alcotest.(check string) "substring-before absent" ""
    (str "substring-before('abc', 'z')");
  Alcotest.(check string) "substring-after absent" ""
    (str "substring-after('abc', 'z')");
  Alcotest.(check string) "translate shrinking" "bc"
    (str "translate('abc', 'a', '')")

let test_normalize_space_exact () =
  Alcotest.(check string) "tabs and newlines" "e a b"
    (str "normalize-space('\te  a \n b ')")

let test_value_semantics_on_elements () =
  Alcotest.(check string) "element string value" "widget" (str "string(//item)");
  Alcotest.(check bool) "string value across children" true
    (boolean "string(/inventory) = 'widgetgadgetgizmo'");
  Alcotest.(check (float 1e-9)) "count nested" 4. (num "count(/inventory/*)")

(* --- regression-style randomized checks ----------------------------------- *)

let prop_position_slices =
  QCheck.Test.make ~count:100 ~name:"//item[n] = nth of scan"
    (QCheck.int_range 1 5)
    (fun n ->
      let via = select (Printf.sprintf "/inventory/item[%d]" n) in
      let scan =
        List.filteri (fun i _ -> i = n - 1)
          (List.filter_map
             (fun (m : Node.t) ->
               if m.kind = Node.Element && m.label = "item" then Some m.id
               else None)
             (Document.children doc
                (Option.get (Document.root_element doc)).id))
      in
      via = scan)

(* Printer/parser fixpoint over generated ASTs: printing any expression
   and re-parsing yields an expression that prints identically (so the
   printer respects operator precedence). *)
let ast_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Xpath.Ast.Number (float_of_int i)) (int_range 0 20);
        map (fun s -> Xpath.Ast.Literal s) (oneofl [ "a"; "x y"; "" ]);
        map (fun v -> Xpath.Ast.Var v) (oneofl [ "USER"; "v" ]);
        oneofl
          [
            Xpath.Ast.Path
              { absolute = true;
                steps =
                  [ { axis = Xpath.Ast.Child; test = Xpath.Ast.Name "item";
                      preds = [] } ] };
            Xpath.Ast.Call ("true", []);
            Xpath.Ast.Call ("count",
              [ Xpath.Ast.Path
                  { absolute = true;
                    steps =
                      [ { axis = Xpath.Ast.Descendant_or_self;
                          test = Xpath.Ast.Node_test; preds = [] } ] } ]);
          ];
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        frequency
          [
            (2, leaf);
            (2, map2 (fun a b -> Xpath.Ast.Or (a, b)) sub sub);
            (2, map2 (fun a b -> Xpath.Ast.And (a, b)) sub sub);
            ( 3,
              map3
                (fun op a b -> Xpath.Ast.Cmp (op, a, b))
                (oneofl Xpath.Ast.[ Eq; Neq; Lt; Le; Gt; Ge ])
                sub sub );
            ( 3,
              map3
                (fun op a b -> Xpath.Ast.Arith (op, a, b))
                (oneofl Xpath.Ast.[ Add; Sub; Mul; Div; Mod ])
                sub sub );
            (1, map (fun a -> Xpath.Ast.Neg a) sub);
          ])
    3

let prop_print_parse_fixpoint =
  QCheck.Test.make ~count:400 ~name:"print/parse fixpoint on generated ASTs"
    (QCheck.make ~print:Xpath.Ast.to_string ast_gen)
    (fun e ->
      let printed = Xpath.Ast.to_string e in
      match Xpath.Parser.parse printed with
      | reparsed -> String.equal printed (Xpath.Ast.to_string reparsed)
      | exception Xpath.Parser.Error _ -> false)

let prop_print_parse_preserves_value =
  QCheck.Test.make ~count:300
    ~name:"re-parsed expressions evaluate identically"
    (QCheck.make ~print:Xpath.Ast.to_string ast_gen)
    (fun e ->
      let ev expr =
        match
          Xpath.Eval.eval
            (Xpath.Eval.env ~vars:[ ("USER", Xpath.Value.Str "u");
                                    ("v", Xpath.Value.Num 3.) ] doc)
            ~context:Ordpath.document expr
        with
        | Xpath.Value.Num f when Float.is_nan f -> Xpath.Value.Str "NaN-canon"
        | v -> v
      in
      ev e = ev (Xpath.Parser.parse (Xpath.Ast.to_string e)))

let prop_union_commutes =
  let paths = [ "//item"; "//empty"; "//@price"; "//text()"; "/inventory" ] in
  QCheck.Test.make ~count:60 ~name:"union commutes and is idempotent"
    QCheck.(pair (oneofl paths) (oneofl paths))
    (fun (a, b) ->
      select (a ^ " | " ^ b) = select (b ^ " | " ^ a)
      && select (a ^ " | " ^ a) = select a)

let () =
  Alcotest.run "xpath_extra"
    [
      ( "numbers",
        [
          Alcotest.test_case "formatting" `Quick test_number_formatting;
          Alcotest.test_case "arithmetic corners" `Quick test_arithmetic_corners;
          Alcotest.test_case "coercions" `Quick test_coercions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "operator names as elements" `Quick
            test_parser_names_as_operators;
          Alcotest.test_case "qualified names" `Quick test_qualified_names;
        ] );
      ( "axes",
        [
          Alcotest.test_case "boundaries" `Quick test_axis_boundaries;
          Alcotest.test_case "document context" `Quick test_document_node_context;
          Alcotest.test_case "predicate positions" `Quick test_predicate_positions;
        ] );
      ( "values",
        [
          Alcotest.test_case "union and errors" `Quick test_union_and_errors;
          Alcotest.test_case "string function edges" `Quick
            test_string_functions_edges;
          Alcotest.test_case "normalize-space" `Quick test_normalize_space_exact;
          Alcotest.test_case "element string values" `Quick
            test_value_semantics_on_elements;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_position_slices; prop_union_commutes;
            prop_print_parse_fixpoint; prop_print_parse_preserves_value;
          ] );
    ]
