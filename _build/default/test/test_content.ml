(* Tests for dynamic XUpdate content (xupdate:value-of): instantiation
   semantics, the wire syntax, and — crucially — that the secure path
   instantiates against the user's VIEW, so computed content cannot
   smuggle invisible data into visible places. *)

open Xmldoc
module P = Core.Paper_example
module Content = Xupdate.Content

let doc () = Xml_parse.of_string P.document_xml

let test_static_roundtrip () =
  let tree =
    Tree.element "a" [ Tree.attr "k" "v"; Tree.text "t"; Tree.element "b" [] ]
  in
  let c = Content.of_tree tree in
  Alcotest.(check bool) "static" true (Content.is_static c);
  (match Content.to_tree c with
   | Some t -> Alcotest.(check bool) "roundtrip" true (Tree.equal tree t)
   | None -> Alcotest.fail "expected static tree");
  let dynamic =
    Content.Element ("a", [ Content.Value_of (Xpath.Parser.parse ".") ])
  in
  Alcotest.(check bool) "dynamic" false (Content.is_static dynamic);
  Alcotest.(check bool) "no static tree" true (Content.to_tree dynamic = None)

let test_instantiate () =
  let d = doc () in
  let src = Xpath.Source.of_document d in
  let franck = P.find d "franck" in
  let content =
    Content.Element
      ( "summary",
        [
          Content.Attr
            ( "who",
              [ Content.Value_of (Xpath.Parser.parse "name(.)") ] );
          Content.Text "diagnosis: ";
          Content.Value_of (Xpath.Parser.parse "diagnosis");
        ] )
  in
  let tree = Content.instantiate src ~context:franck content in
  Alcotest.(check bool) "instantiated" true
    (Tree.equal tree
       (Tree.element "summary"
          [ Tree.attr "who" "franck"; Tree.text "diagnosis: ";
            Tree.text "tonsillitis" ]));
  (* Empty evaluation yields no text node. *)
  let empty =
    Content.Element ("x", [ Content.Value_of (Xpath.Parser.parse "nothing") ])
  in
  Alcotest.(check bool) "empty value-of" true
    (Tree.equal
       (Content.instantiate src ~context:franck empty)
       (Tree.element "x" []))

let test_unsecured_apply_with_value_of () =
  (* Append a summary into every patient, quoting its own service. *)
  let d = doc () in
  let op =
    Xupdate.Op.append_content "/patients/*"
      (Content.Element
         ("svc-copy", [ Content.Value_of (Xpath.Parser.parse "service") ]))
  in
  let outcome = Xupdate.Apply.apply d op in
  Alcotest.(check int) "two copies" 2 (List.length outcome.inserted);
  Alcotest.(check (list string)) "per-target values"
    [ "otolarynology"; "pneumology" ]
    (List.map (Document.string_value outcome.doc) outcome.inserted)

let test_wire_value_of () =
  let ops =
    Xupdate.Xupdate_xml.ops_of_string
      {|<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/patients/franck">
    <xupdate:element name="note">seen in <xupdate:value-of select="service"/></xupdate:element>
  </xupdate:append>
</xupdate:modifications>|}
  in
  let d = Xupdate.Apply.apply_all (doc ()) ops in
  let note = Xpath.Eval.select_str d "/patients/franck/note" in
  Alcotest.(check int) "one note" 1 (List.length note);
  Alcotest.(check string) "value spliced" "seen in otolarynology"
    (Document.string_value d (List.hd note));
  (* Printing round-trips the value-of constructor. *)
  let printed = Xupdate.Xupdate_xml.to_string ops in
  let ops2 = Xupdate.Xupdate_xml.ops_of_string printed in
  let d2 = Xupdate.Apply.apply_all (doc ()) ops2 in
  Alcotest.(check bool) "same effect after reprint" true (Document.equal d d2)

(* The crucial security case: a subject with insert-but-not-read tries to
   copy secret content into a place it can read. *)
let exfiltration_policy =
  Core.Policy_lang.parse
    {|role mole
user spy isa mole
grant read on /vault to mole
grant read on /vault/public/descendant-or-self::node() to mole
grant insert on /vault/public to mole|}

let vault_xml =
  {|<vault>
  <public><board>hello</board></public>
  <secret><code>1234</code></secret>
</vault>|}

let test_value_of_cannot_exfiltrate () =
  let d = Xml_parse.of_string vault_xml in
  (* Try to append <stolen>value-of //code</stolen> into the public area. *)
  let op =
    Xupdate.Op.append_content "/vault/public"
      (Content.Element
         ("stolen", [ Content.Value_of (Xpath.Parser.parse "//code") ]))
  in
  (* Under the source-write baseline the secret leaks. *)
  let d_baseline, report =
    Baselines.Source_write.apply exfiltration_policy d ~user:"spy" op
  in
  Alcotest.(check int) "baseline inserts" 1 (List.length report.inserted);
  Alcotest.(check string) "baseline leaks the code" "1234"
    (Document.string_value d_baseline (List.hd report.inserted));
  (* Under the secure path the value-of runs on the view: no code there. *)
  let session = Core.Session.login exfiltration_policy d ~user:"spy" in
  let session, secure_report = Core.Secure_update.apply session op in
  Alcotest.(check int) "secure insert applied" 1
    (List.length secure_report.inserted);
  Alcotest.(check string) "nothing exfiltrated" ""
    (Document.string_value (Core.Session.source session)
       (List.hd secure_report.inserted));
  (* With position granted, the masked label is all that can be copied —
     the probe must even address the node by its RESTRICTED view label,
     because that is the only name the spy's view exposes. *)
  let policy2 =
    Core.Policy.grant exfiltration_policy Core.Privilege.Position
      ~path:"//secret/descendant-or-self::node()" ~subject:"mole"
  in
  let masked_probe =
    Xupdate.Op.append_content "/vault/public"
      (Content.Element
         ("stolen", [ Content.Value_of (Xpath.Parser.parse "//RESTRICTED") ]))
  in
  let session2 = Core.Session.login policy2 d ~user:"spy" in
  let session2, report2 = Core.Secure_update.apply session2 masked_probe in
  Alcotest.(check string) "only the mask is visible" "RESTRICTED"
    (Document.string_value (Core.Session.source session2)
       (List.hd report2.inserted))

let test_datalog_parity_with_value_of () =
  (* The logic encoding instantiates per target on the view, so parity
     holds for dynamic content too. *)
  let cases =
    [
      (P.laporte,
       Xupdate.Op.append_content "//diagnosis"
         (Content.Element
            ("copy", [ Content.Value_of (Xpath.Parser.parse "..") ])));
      (P.beaufort,
       Xupdate.Op.insert_after_content "/patients/franck"
         (Content.Element
            ("echo", [ Content.Value_of (Xpath.Parser.parse "service") ])));
    ]
  in
  List.iteri
    (fun i (user, op) ->
      Alcotest.(check bool)
        (Printf.sprintf "parity case %d" i)
        true
        (Core.Logic_encoding.update_parity (P.login user) op))
    cases

let test_wire_errors () =
  List.iter
    (fun src ->
      match Xupdate.Xupdate_xml.ops_of_string src with
      | exception Xupdate.Xupdate_xml.Error _ -> ()
      | _ -> Alcotest.failf "%S should fail" src)
    [
      (* value-of without select *)
      "<xupdate:modifications><xupdate:append select='/a'><xupdate:value-of/></xupdate:append></xupdate:modifications>";
      (* element inside attribute *)
      "<xupdate:modifications><xupdate:append select='/a'><xupdate:attribute name='k'><b/></xupdate:attribute></xupdate:append></xupdate:modifications>";
    ]

let () =
  Alcotest.run "content"
    [
      ( "instantiation",
        [
          Alcotest.test_case "static roundtrip" `Quick test_static_roundtrip;
          Alcotest.test_case "instantiate" `Quick test_instantiate;
          Alcotest.test_case "unsecured apply" `Quick
            test_unsecured_apply_with_value_of;
          Alcotest.test_case "wire syntax" `Quick test_wire_value_of;
          Alcotest.test_case "wire errors" `Quick test_wire_errors;
        ] );
      ( "security",
        [
          Alcotest.test_case "value-of cannot exfiltrate" `Quick
            test_value_of_cannot_exfiltrate;
          Alcotest.test_case "datalog parity" `Quick
            test_datalog_parity_with_value_of;
        ] );
    ]
