(* Tests for the XSLT subset engine and the §5 security processor: a
   compiled stylesheet must produce exactly the view of axioms 15-17. *)

open Xmldoc
module P = Core.Paper_example

let doc () = Xml_parse.of_string P.document_xml

let serialize d = Xml_print.to_string ~indent:true d

(* --- engine ------------------------------------------------------------- *)

let identity_sheet =
  Xslt.Parse.of_string
    {|<xsl:stylesheet version="1.0">
        <xsl:template match="/ | //node() | //@*" priority="1">
          <xsl:copy><xsl:apply-templates select="@* | node()"/></xsl:copy>
        </xsl:template>
      </xsl:stylesheet>|}

let test_identity () =
  let d = doc () in
  let out = Xslt.Engine.apply identity_sheet d in
  Alcotest.(check string) "identity transform" (serialize d) (serialize out)

let test_identity_with_attributes () =
  let d = Xml_parse.of_string {|<a id="1"><b lang="fr">x</b><c/></a>|} in
  let out = Xslt.Engine.apply identity_sheet d in
  Alcotest.(check string) "attributes copied" (serialize d) (serialize out)

let test_builtin_rules () =
  (* With an empty stylesheet, built-ins walk elements and copy text. *)
  let d = doc () in
  let out = Xslt.Engine.apply (Xslt.Ast.stylesheet []) d in
  Alcotest.(check string) "text content only"
    "otolarynologytonsillitispneumologypneumonia"
    (Document.string_value out Ordpath.document)

let test_template_priorities () =
  let sheet =
    Xslt.Parse.of_string
      {|<xsl:stylesheet version="1.0">
          <xsl:template match="//service" priority="1"><low/></xsl:template>
          <xsl:template match="//service" priority="2"><high/></xsl:template>
          <xsl:template match="//diagnosis" priority="3"/>
        </xsl:stylesheet>|}
  in
  let out = Xslt.Engine.apply sheet (doc ()) in
  Alcotest.(check int) "high priority wins" 2
    (List.length (Xpath.Eval.select_str out "//high"));
  Alcotest.(check int) "low template never fires" 0
    (List.length (Xpath.Eval.select_str out "//low"));
  Alcotest.(check int) "empty template prunes" 0
    (List.length (Xpath.Eval.select_str out "//diagnosis"))

let test_modes () =
  let sheet =
    Xslt.Parse.of_string
      {|<xsl:stylesheet version="1.0">
          <xsl:template match="/">
            <xsl:apply-templates select="//service" mode="a"/>
            <xsl:apply-templates select="//service" mode="b"/>
          </xsl:template>
          <xsl:template match="//service" mode="a"><in-a/></xsl:template>
          <xsl:template match="//service" mode="b"><in-b/></xsl:template>
        </xsl:stylesheet>|}
  in
  let out = Xslt.Engine.apply sheet (doc ()) in
  Alcotest.(check int) "mode a" 2 (List.length (Xpath.Eval.select_str out "//in-a"));
  Alcotest.(check int) "mode b" 2 (List.length (Xpath.Eval.select_str out "//in-b"))

let test_value_of_if_choose () =
  let sheet =
    Xslt.Parse.of_string
      {|<xsl:stylesheet version="1.0">
          <xsl:template match="/">
            <report>
              <xsl:apply-templates select="/patients/*"/>
            </report>
          </xsl:template>
          <xsl:template match="/patients/*" priority="1">
            <patient>
              <xsl:if test="diagnosis/text()">
                <xsl:text>ill: </xsl:text>
                <xsl:value-of select="diagnosis"/>
              </xsl:if>
              <xsl:choose>
                <xsl:when test="service = 'pneumology'"><lungs/></xsl:when>
                <xsl:otherwise><other/></xsl:otherwise>
              </xsl:choose>
            </patient>
          </xsl:template>
        </xsl:stylesheet>|}
  in
  let out = Xslt.Engine.apply sheet (doc ()) in
  Alcotest.(check int) "two patients" 2
    (List.length (Xpath.Eval.select_str out "//patient"));
  Alcotest.(check int) "one lungs" 1
    (List.length (Xpath.Eval.select_str out "//lungs"));
  Alcotest.(check int) "one other" 1
    (List.length (Xpath.Eval.select_str out "//other"));
  Alcotest.(check int) "ill texts" 2
    (List.length (Xpath.Eval.select_str out "//patient/text()[starts-with(., 'ill: ')]"))

let test_copy_of () =
  let sheet =
    Xslt.Parse.of_string
      {|<xsl:stylesheet version="1.0">
          <xsl:template match="/">
            <archive><xsl:copy-of select="/patients/franck"/></archive>
          </xsl:template>
        </xsl:stylesheet>|}
  in
  let out = Xslt.Engine.apply sheet (doc ()) in
  Alcotest.(check int) "deep copy" 1
    (List.length (Xpath.Eval.select_str out "/archive/franck/diagnosis/text()"))

let test_computed_constructors () =
  (* An inversion transform: index patients by service, with computed
     element names and attributes. *)
  let sheet =
    Xslt.Parse.of_string
      {|<xsl:stylesheet version="1.0">
          <xsl:template match="/">
            <index><xsl:apply-templates select="/patients/*"/></index>
          </xsl:template>
          <xsl:template match="/patients/*" priority="1">
            <xsl:element name="{service}">
              <xsl:attribute name="patient"><xsl:value-of select="name(.)"/></xsl:attribute>
              <xsl:comment>generated</xsl:comment>
              <xsl:value-of select="diagnosis"/>
            </xsl:element>
          </xsl:template>
        </xsl:stylesheet>|}
  in
  let out = Xslt.Engine.apply sheet (doc ()) in
  Alcotest.(check int) "elements named by service" 1
    (List.length (Xpath.Eval.select_str out "/index/otolarynology"));
  Alcotest.(check int) "attribute carries the name" 1
    (List.length
       (Xpath.Eval.select_str out "/index/pneumology[@patient = 'robert']"));
  Alcotest.(check string) "content is the diagnosis" "tonsillitis"
    (match Xpath.Eval.select_str out "/index/otolarynology" with
     | [ id ] -> Document.string_value out id
     | _ -> "?");
  (* Static names work without braces; printing round-trips. *)
  let printed = Xslt.Parse.to_string sheet in
  let sheet2 = Xslt.Parse.of_string printed in
  Alcotest.(check string) "reprint equivalent"
    (serialize out)
    (serialize (Xslt.Engine.apply sheet2 (doc ())));
  (* Error paths. *)
  let empty_name =
    Xslt.Parse.of_string
      {|<xsl:stylesheet version="1.0">
          <xsl:template match="/"><xsl:element name="{//nothing}"/></xsl:template>
        </xsl:stylesheet>|}
  in
  match Xslt.Engine.apply empty_name (doc ()) with
  | exception Xslt.Engine.Error _ -> ()
  | _ -> Alcotest.fail "empty computed name must fail"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Xslt.Parse.of_string src with
      | exception Xslt.Parse.Error _ -> ()
      | _ -> Alcotest.failf "%S should fail" src)
    [
      "<not-a-stylesheet/>";
      "<xsl:stylesheet><xsl:template/></xsl:stylesheet>";
      "<xsl:stylesheet><xsl:template match='/'><xsl:frob/></xsl:template></xsl:stylesheet>";
      "<xsl:stylesheet><xsl:template match='/' priority='abc'/></xsl:stylesheet>";
      "<xsl:stylesheet><xsl:template match='/'><xsl:if>x</xsl:if></xsl:template></xsl:stylesheet>";
    ]

let test_print_reparse () =
  let sheet = Core.Xslt_enforcer.compile P.policy ~user:P.beaufort in
  let printed = Xslt.Parse.to_string sheet in
  let reparsed = Xslt.Parse.of_string printed in
  let d = doc () in
  let vars = [ ("USER", Xpath.Value.Str P.beaufort) ] in
  Alcotest.(check string) "reparsed stylesheet behaves identically"
    (serialize (Xslt.Engine.apply ~vars sheet d))
    (serialize (Xslt.Engine.apply ~vars reparsed d))

(* --- the security processor (§5) ----------------------------------------- *)

let check_enforcement user =
  let d = doc () in
  let via_view = Core.View.derive d (Core.Perm.compute P.policy d ~user) in
  let via_xslt = Core.Xslt_enforcer.enforce P.policy d ~user in
  Alcotest.(check string)
    (Printf.sprintf "XSLT enforcement = view for %s" user)
    (serialize via_view) (serialize via_xslt)

let test_enforce_secretary () = check_enforcement P.beaufort
let test_enforce_doctor () = check_enforcement P.laporte
let test_enforce_epidemiologist () = check_enforcement P.richard
let test_enforce_patient () = check_enforcement P.robert

let test_enforce_hospital_scale () =
  let config = { Workload.Gen_doc.default with patients = 40; seed = 31 } in
  let d = Workload.Gen_doc.generate config in
  let policy = Workload.Gen_policy.hospital config in
  List.iter
    (fun user ->
      let via_view = Core.View.derive d (Core.Perm.compute policy d ~user) in
      let via_xslt = Core.Xslt_enforcer.enforce policy d ~user in
      Alcotest.(check string) (user ^ " at scale") (serialize via_view)
        (serialize via_xslt))
    ("beaufort" :: "laporte" :: "richard"
    :: [ List.nth (Workload.Gen_doc.patient_names config) 7 ])

let test_stylesheet_is_document_independent () =
  (* One compilation serves any database. *)
  let sheet = Core.Xslt_enforcer.compile P.policy ~user:P.beaufort in
  let vars = [ ("USER", Xpath.Value.Str P.beaufort) ] in
  List.iter
    (fun xml ->
      let d = Xml_parse.of_string xml in
      let via_view =
        Core.View.derive d (Core.Perm.compute P.policy d ~user:P.beaufort)
      in
      Alcotest.(check string) "same view" (serialize via_view)
        (serialize (Xslt.Engine.apply ~vars sheet d)))
    [
      P.document_xml;
      "<patients><zoe><service>surgery</service><diagnosis>burn</diagnosis></zoe></patients>";
      "<patients/>";
    ]

(* Property: compiled enforcement equals the materialised view on random
   sessions (comment-free documents; see the documented limitation). *)
let label_pool = [ "a"; "b"; "c"; "d" ]

let doc_gen =
  QCheck.Gen.(
    let rec tree depth =
      if depth = 0 then map Tree.text (oneofl [ "x"; "y"; "z" ])
      else
        frequency
          [
            (1, map Tree.text (oneofl [ "x"; "y"; "z" ]));
            ( 3,
              map2 Tree.element (oneofl label_pool)
                (list_size (int_range 0 3) (tree (depth - 1))) );
          ]
    in
    map
      (fun kids -> Document.of_tree (Tree.element "root" kids))
      (list_size (int_range 0 4) (tree 2)))

let prop_enforcement_equals_view =
  QCheck.Test.make ~count:120 ~name:"XSLT enforcement = materialised view"
    (QCheck.make
       ~print:(fun (doc, seed) ->
         Xml_print.to_string doc ^ Printf.sprintf " seed=%d" seed)
       QCheck.Gen.(pair doc_gen (int_range 0 10000)))
    (fun (doc, seed) ->
      let rule_paths =
        [ "//node()"; "/root"; "/root/node()"; "//text()"; "//a"; "//b";
          "//c/node()"; "//d"; "/root/a"; "//a/node()" ]
      in
      let policy =
        Workload.Gen_policy.random ~paths:rule_paths
          { rules = 10; deny_fraction = 0.4; seed }
      in
      let view = Core.View.derive doc (Core.Perm.compute policy doc ~user:"u") in
      let enforced = Core.Xslt_enforcer.enforce policy doc ~user:"u" in
      String.equal (serialize view) (serialize enforced))

let () =
  Alcotest.run "xslt"
    [
      ( "engine",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "identity with attributes" `Quick
            test_identity_with_attributes;
          Alcotest.test_case "built-in rules" `Quick test_builtin_rules;
          Alcotest.test_case "priorities" `Quick test_template_priorities;
          Alcotest.test_case "modes" `Quick test_modes;
          Alcotest.test_case "value-of / if / choose" `Quick
            test_value_of_if_choose;
          Alcotest.test_case "copy-of" `Quick test_copy_of;
          Alcotest.test_case "computed constructors" `Quick
            test_computed_constructors;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "print/reparse" `Quick test_print_reparse;
        ] );
      ( "security processor",
        [
          Alcotest.test_case "secretary" `Quick test_enforce_secretary;
          Alcotest.test_case "doctor" `Quick test_enforce_doctor;
          Alcotest.test_case "epidemiologist" `Quick
            test_enforce_epidemiologist;
          Alcotest.test_case "patient" `Quick test_enforce_patient;
          Alcotest.test_case "hospital scale" `Quick
            test_enforce_hospital_scale;
          Alcotest.test_case "document independence" `Quick
            test_stylesheet_is_document_independent;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_enforcement_equals_view ] );
    ]
