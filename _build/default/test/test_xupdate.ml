(* Tests for the unsecured XUpdate semantics of §3.4 (the paper's worked
   examples) and the XUpdate XML wire syntax. *)

open Xmldoc

let doc () = Xml_parse.of_string Core.Paper_example.document_xml

let labels d =
  List.map (fun (n : Node.t) -> n.label) (Document.nodes d)

(* §3.4.1: xupdate:rename //service -> department. *)
let test_rename_example () =
  let outcome = Xupdate.Apply.apply (doc ()) (Xupdate.Op.rename "//service" "department") in
  Alcotest.(check (list string)) "services renamed"
    [
      "/"; "patients";
      "franck"; "department"; "otolarynology"; "diagnosis"; "tonsillitis";
      "robert"; "department"; "pneumology"; "diagnosis"; "pneumonia";
    ]
    (labels outcome.doc);
  Alcotest.(check int) "two targets" 2 (List.length outcome.targets);
  Alcotest.(check int) "two relabelled" 2 (List.length outcome.relabelled)

(* §3.4.1: xupdate:update /patients/franck/diagnosis -> pharyngitis. *)
let test_update_example () =
  let outcome =
    Xupdate.Apply.apply (doc ())
      (Xupdate.Op.update "/patients/franck/diagnosis" "pharyngitis")
  in
  Alcotest.(check (list string)) "diagnosis content updated"
    [
      "/"; "patients";
      "franck"; "service"; "otolarynology"; "diagnosis"; "pharyngitis";
      "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia";
    ]
    (labels outcome.doc)

(* §3.4.2: xupdate:append a new medical record under /patients. *)
let test_append_example () =
  let albert =
    Tree.element "albert"
      [ Tree.element "service" [ Tree.text "cardiology" ];
        Tree.element "diagnosis" [] ]
  in
  let outcome = Xupdate.Apply.apply (doc ()) (Xupdate.Op.append "/patients" albert) in
  Alcotest.(check (list string)) "albert appended"
    [
      "/"; "patients";
      "franck"; "service"; "otolarynology"; "diagnosis"; "tonsillitis";
      "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia";
      "albert"; "service"; "cardiology"; "diagnosis";
    ]
    (labels outcome.doc);
  (* Tree-geometry facts of §3.4.2: albert follows robert; the inserted
     children are in order. *)
  let d = outcome.doc in
  let albert_id = List.hd outcome.inserted in
  let robert_id =
    (List.find
       (fun (n : Node.t) -> n.label = "robert")
       (Document.nodes d)).id
  in
  Alcotest.(check bool) "preceding_sibling(robert, albert)" true
    (List.exists
       (fun (n : Node.t) -> Ordpath.equal n.id robert_id)
       (Document.preceding_siblings d albert_id))

(* §3.4.3: xupdate:remove /patients/franck/diagnosis. *)
let test_remove_example () =
  let outcome =
    Xupdate.Apply.apply (doc ()) (Xupdate.Op.remove "/patients/franck/diagnosis")
  in
  Alcotest.(check (list string)) "diagnosis subtree gone"
    [
      "/"; "patients";
      "franck"; "service"; "otolarynology";
      "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia";
    ]
    (labels outcome.doc)

let test_insert_before_after () =
  let d = doc () in
  let o1 =
    Xupdate.Apply.apply d
      (Xupdate.Op.insert_before "/patients/franck" (Tree.element "aaron" []))
  in
  let o2 =
    Xupdate.Apply.apply o1.doc
      (Xupdate.Op.insert_after "/patients/franck" (Tree.element "bella" []))
  in
  let patients =
    (Option.get (Document.root_element o2.doc)).id
  in
  Alcotest.(check (list string)) "order"
    [ "aaron"; "franck"; "bella"; "robert" ]
    (List.map (fun (n : Node.t) -> n.label)
       (Document.children o2.doc patients))

let test_multi_target_insert () =
  (* Inserting after every service: one copy per target (formula 7: "each
     node is inserted at as many places as nodes addressed by PATH"). *)
  let outcome =
    Xupdate.Apply.apply (doc ())
      (Xupdate.Op.insert_after "//service" (Tree.element "note" []))
  in
  Alcotest.(check int) "two copies" 2 (List.length outcome.inserted)

let test_remove_nested_targets () =
  (* //node() selects both franck and his descendants: removing franck
     first must not break the removal of the rest. *)
  let outcome = Xupdate.Apply.apply (doc ()) (Xupdate.Op.remove "//node()") in
  Alcotest.(check (list string)) "everything below / gone" [ "/" ]
    (labels outcome.doc)

let test_no_renumbering () =
  (* The numbering scheme contract of §3.1: identifiers of surviving nodes
     are stable across arbitrary update sequences. *)
  let d0 = doc () in
  let o1 =
    Xupdate.Apply.apply d0
      (Xupdate.Op.insert_before "/patients/franck" (Tree.element "x" []))
  in
  let o2 = Xupdate.Apply.apply o1.doc (Xupdate.Op.remove "/patients/x") in
  let o3 = Xupdate.Apply.apply o2.doc (Xupdate.Op.rename "//service" "dept") in
  Document.iter
    (fun (n : Node.t) ->
      match Document.find o3.doc n.id with
      | Some m ->
        if n.label = "service" then
          Alcotest.(check string) "renamed in place" "dept" m.label
        else Alcotest.(check string) "label stable" n.label m.label
      | None -> Alcotest.failf "node %s lost" (Ordpath.to_string n.id))
    d0

let test_skips () =
  let d = doc () in
  (* Appending under a text node is skipped, not an error. *)
  let o =
    Xupdate.Apply.apply d
      (Xupdate.Op.append "//service/text()" (Tree.element "x" []))
  in
  Alcotest.(check int) "two skips" 2 (List.length o.skipped);
  Alcotest.(check int) "no insertions" 0 (List.length o.inserted);
  (* Renaming the document node is skipped. *)
  let o2 = Xupdate.Apply.apply d (Xupdate.Op.rename "/" "boom") in
  Alcotest.(check int) "skip document" 1 (List.length o2.skipped);
  (* Removing the document node is skipped. *)
  let o3 = Xupdate.Apply.apply d (Xupdate.Op.remove "/") in
  Alcotest.(check int) "skip remove" 1 (List.length o3.skipped)

(* --- wire syntax -------------------------------------------------------- *)

let modifications =
  {|<?xml version="1.0"?>
<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:rename select="//service">department</xupdate:rename>
  <xupdate:update select="/patients/franck/diagnosis">pharyngitis</xupdate:update>
  <xupdate:append select="/patients">
    <xupdate:element name="albert">
      <xupdate:attribute name="id">77</xupdate:attribute>
      <service>cardiology</service>
      <xupdate:comment>new record</xupdate:comment>
    </xupdate:element>
  </xupdate:append>
  <xupdate:insert-before select="/patients/franck">
    <first/>
    <second/>
  </xupdate:insert-before>
  <xupdate:insert-after select="/patients/robert">
    <third/>
    <fourth/>
  </xupdate:insert-after>
  <xupdate:remove select="//diagnosis"/>
</xupdate:modifications>|}

let test_wire_parse () =
  let ops = Xupdate.Xupdate_xml.ops_of_string modifications in
  Alcotest.(check int) "seven ops (multi-content expands)" 8 (List.length ops);
  match List.nth ops 2 with
  | Xupdate.Op.Append { content; _ } ->
    (match Xupdate.Content.to_tree content with
     | Some tree ->
       Alcotest.(check string) "constructed element" "albert" (Tree.name tree);
       (match tree with
        | Tree.Element (_, Tree.Attr ("id", "77") :: _) -> ()
        | _ -> Alcotest.fail "expected the id attribute first")
     | None -> Alcotest.fail "static content expected")
  | _ -> Alcotest.fail "expected an append op"

let test_wire_apply_order () =
  let ops = Xupdate.Xupdate_xml.ops_of_string modifications in
  let d = Xupdate.Apply.apply_all (doc ()) ops in
  let patients = (Option.get (Document.root_element d)).id in
  Alcotest.(check (list string)) "content order preserved"
    [ "first"; "second"; "franck"; "robert"; "third"; "fourth"; "albert" ]
    (List.map (fun (n : Node.t) -> n.label) (Document.children d patients))

let test_wire_roundtrip () =
  let ops = Xupdate.Xupdate_xml.ops_of_string modifications in
  let printed = Xupdate.Xupdate_xml.to_string ops in
  let ops2 = Xupdate.Xupdate_xml.ops_of_string printed in
  Alcotest.(check int) "same op count" (List.length ops) (List.length ops2);
  let d1 = Xupdate.Apply.apply_all (doc ()) ops in
  let d2 = Xupdate.Apply.apply_all (doc ()) ops2 in
  Alcotest.(check bool) "same effect" true (Document.equal d1 d2)

let test_wire_errors () =
  List.iter
    (fun src ->
      match Xupdate.Xupdate_xml.ops_of_string src with
      | exception Xupdate.Xupdate_xml.Error _ -> ()
      | _ -> Alcotest.failf "%S should fail" src)
    [
      "<not-modifications/>";
      "<xupdate:modifications><xupdate:rename>x</xupdate:rename></xupdate:modifications>";
      "<xupdate:modifications><xupdate:frob select='/'/></xupdate:modifications>";
      "<xupdate:modifications><xupdate:update select='//a'><b/></xupdate:update></xupdate:modifications>";
      "<xupdate:modifications><xupdate:append select='//a'><xupdate:element>x</xupdate:element></xupdate:append></xupdate:modifications>";
    ]

(* Property: remove really removes — no descendant of a removed target
   survives, and nothing else is lost. *)
let prop_remove_exact =
  QCheck.Test.make ~count:100 ~name:"remove removes exactly the subtrees"
    (QCheck.oneofl [ "//service"; "//diagnosis"; "//franck"; "//nothing"; "//text()" ])
    (fun path ->
      let d = doc () in
      let o = Xupdate.Apply.apply d (Xupdate.Op.remove path) in
      let removed_under id =
        List.exists
          (fun t -> Ordpath.is_ancestor_or_self ~ancestor:t id)
          o.targets
      in
      Document.fold
        (fun (n : Node.t) ok ->
          ok && Document.mem o.doc n.id = not (removed_under n.id))
        d true)

let () =
  Alcotest.run "xupdate"
    [
      ( "paper examples (§3.4)",
        [
          Alcotest.test_case "rename" `Quick test_rename_example;
          Alcotest.test_case "update" `Quick test_update_example;
          Alcotest.test_case "append" `Quick test_append_example;
          Alcotest.test_case "remove" `Quick test_remove_example;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "insert before/after" `Quick
            test_insert_before_after;
          Alcotest.test_case "multi-target insert" `Quick
            test_multi_target_insert;
          Alcotest.test_case "nested remove targets" `Quick
            test_remove_nested_targets;
          Alcotest.test_case "no renumbering" `Quick test_no_renumbering;
          Alcotest.test_case "skips" `Quick test_skips;
        ] );
      ( "wire syntax",
        [
          Alcotest.test_case "parse" `Quick test_wire_parse;
          Alcotest.test_case "apply order" `Quick test_wire_apply_order;
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "errors" `Quick test_wire_errors;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_remove_exact ]);
    ]
