(* Tests for the XPath engine: lexer/parser, axes, predicates, functions,
   comparison semantics, and the $USER session variable. *)

open Xmldoc

let hospital =
  {|<patients>
  <franck age="34">
    <service>otolarynology</service>
    <diagnosis>tonsillitis</diagnosis>
  </franck>
  <robert age="71">
    <service>pneumology</service>
    <diagnosis>pneumonia</diagnosis>
  </robert>
  <albert age="58">
    <service>cardiology</service>
    <diagnosis/>
  </albert>
</patients>|}

let doc = Xml_parse.of_string hospital

let labels ids =
  List.map (fun id -> Option.value ~default:"?" (Document.label doc id)) ids

let select ?vars src = Xpath.Eval.select_str ?vars doc src

let check_labels name expected src =
  Alcotest.(check (list string)) name expected (labels (select src))

let check_count name expected src =
  Alcotest.(check int) name expected (List.length (select src))

(* --- parsing ---------------------------------------------------------- *)

let test_parse_roundtrip () =
  List.iter
    (fun src ->
      let e = Xpath.Parser.parse src in
      let reprinted = Xpath.Ast.to_string e in
      let e' = Xpath.Parser.parse reprinted in
      Alcotest.(check string)
        (Printf.sprintf "reparse of %s" src)
        (Xpath.Ast.to_string e) (Xpath.Ast.to_string e'))
    [
      "/patients/franck/diagnosis";
      "//diagnosis/*";
      "/patients/descendant-or-self::node()";
      "//*[name() = $USER]";
      "/patients/*[position() = last()]";
      "count(//diagnosis) > 2";
      "1 + 2 * 3";
      "//a | //b";
      "(//franck)[1]/service";
      "@age";
      "../service";
      "string-length(normalize-space(' x '))";
      "-3 + 4";
      "//franck[@age = 34]";
    ]

let test_parse_errors () =
  List.iter
    (fun src ->
      match Xpath.Parser.parse src with
      | exception Xpath.Parser.Error _ -> ()
      | _ -> Alcotest.failf "parse of %S should fail" src)
    [ "/patients/"; "//"; "foo("; "1 +"; "[x]"; "a::b"; "$"; "//*[" ]

let test_parse_path_rejects_scalars () =
  List.iter
    (fun src ->
      match Xpath.Parser.parse_path src with
      | exception Xpath.Parser.Error _ -> ()
      | _ -> Alcotest.failf "parse_path of %S should fail" src)
    [ "1 + 2"; "count(//a)"; "'lit'"; "true()" ]

(* --- selection -------------------------------------------------------- *)

let test_absolute_paths () =
  check_labels "root" [ "patients" ] "/patients";
  check_labels "child chain" [ "diagnosis" ] "/patients/franck/diagnosis";
  check_labels "document node" [ "/" ] "/";
  check_labels "all patients" [ "franck"; "robert"; "albert" ] "/patients/*"

let test_descendant_paths () =
  check_labels "all diagnosis" [ "diagnosis"; "diagnosis"; "diagnosis" ]
    "//diagnosis";
  check_labels "text under diagnosis" [ "tonsillitis"; "pneumonia" ]
    "//diagnosis/text()";
  check_count "descendant-or-self star" 10 "//*";
  check_labels "nested //" [ "tonsillitis"; "pneumonia" ] "//diagnosis//text()"

let test_attribute_axis () =
  check_labels "attributes" [ "age"; "age"; "age" ] "//@age";
  check_labels "franck by attribute" [ "franck" ] "//*[@age = 34]";
  check_labels "older than 50" [ "robert"; "albert" ] "/patients/*[@age > 50]"

let test_parent_ancestor () =
  check_labels "parent" [ "franck" ] "/patients/franck/diagnosis/..";
  check_labels "ancestor" [ "/"; "patients"; "franck" ]
    "/patients/franck/diagnosis/ancestor::node()";
  check_labels "ancestor-or-self elements" [ "patients"; "franck"; "diagnosis" ]
    "/patients/franck/diagnosis/ancestor-or-self::*"

let test_sibling_axes () =
  check_labels "following-sibling" [ "robert"; "albert" ]
    "/patients/franck/following-sibling::*";
  check_labels "preceding-sibling" [ "franck"; "robert" ]
    "/patients/albert/preceding-sibling::*";
  check_labels "first preceding sibling of albert" [ "robert" ]
    "/patients/albert/preceding-sibling::*[1]"

let test_positions () =
  check_labels "first" [ "franck" ] "/patients/*[1]";
  check_labels "last" [ "albert" ] "/patients/*[last()]";
  check_labels "position filter" [ "robert" ] "/patients/*[position() = 2]";
  check_labels "chained predicates" [ "robert" ]
    "/patients/*[position() > 1][1]"

let test_predicates () =
  check_labels "by content" [ "robert" ]
    "/patients/*[service = 'pneumology']";
  check_labels "empty diagnosis" [ "albert" ]
    "/patients/*[not(diagnosis/text())]";
  check_labels "has diagnosis text" [ "franck"; "robert" ]
    "/patients/*[diagnosis/text()]";
  check_labels "and" [ "robert" ]
    "/patients/*[diagnosis/text() and @age > 50]";
  check_labels "or" [ "franck"; "albert" ]
    "/patients/*[@age < 40 or not(diagnosis/text())]"

let test_union () =
  check_labels "union" [ "service"; "diagnosis" ]
    "/patients/franck/service | /patients/franck/diagnosis";
  check_labels "union dedups and sorts" [ "franck"; "robert"; "albert" ]
    "/patients/* | /patients/franck"

let test_filter_expr () =
  check_labels "parenthesised filter" [ "franck" ] "(//*)[2]";
  check_labels "filter then path" [ "otolarynology" ]
    "(/patients/*)[1]/service/text()"

let test_variables () =
  let vars = [ ("USER", Xpath.Value.Str "robert") ] in
  Alcotest.(check (list string)) "name() = $USER" [ "robert" ]
    (labels (select ~vars "/patients/*[name() = $USER]"));
  Alcotest.(check (list string)) "subtree of $USER"
    [ "robert"; "service"; "pneumology"; "diagnosis"; "pneumonia" ]
    (labels (select ~vars "/patients/*[name() = $USER]/descendant-or-self::node()"));
  (match select "/patients/*[name() = $USER]" with
   | exception Xpath.Eval.Error _ -> ()
   | _ -> Alcotest.fail "unbound variable should raise")

let test_functions () =
  let e = Xpath.Eval.env doc in
  let vsrc = Xpath.Source.of_document doc in
  let eval src =
    Xpath.Eval.eval e ~context:Ordpath.document (Xpath.Parser.parse src)
  in
  let check_num name expected src =
    match eval src with
    | Xpath.Value.Num f -> Alcotest.(check (float 1e-9)) name expected f
    | v -> Alcotest.failf "%s: expected number, got %s" name
             (Format.asprintf "%a" (Xpath.Value.pp vsrc) v)
  in
  let check_str name expected src =
    Alcotest.(check string) name expected (Xpath.Value.to_string vsrc (eval src))
  in
  let check_bool name expected src =
    Alcotest.(check bool) name expected (Xpath.Value.to_bool vsrc (eval src))
  in
  check_num "count" 3. "count(//diagnosis)";
  check_num "sum of ages" 163. "sum(//@age)";
  check_num "arith" 7. "1 + 2 * 3";
  check_num "div" 2.5 "5 div 2";
  check_num "mod" 1. "7 mod 2";
  check_num "floor" 2. "floor(2.7)";
  check_num "ceiling" 3. "ceiling(2.1)";
  check_num "round" 3. "round(2.5)";
  check_num "unary minus" (-4.) "-(2 + 2)";
  check_num "string-length" 5. "string-length('hello')";
  check_str "concat" "ab-cd" "concat('ab', '-', 'cd')";
  check_str "substring" "ell" "substring('hello', 2, 3)";
  check_str "substring-before" "1999" "substring-before('1999/04/01', '/')";
  check_str "substring-after" "04/01" "substring-after('1999/04/01', '/')";
  check_str "normalize-space" "a b" "normalize-space('  a   b ')";
  check_str "translate" "BAr" "translate('bar', 'abc', 'ABC')";
  check_str "string of first node" "otolarynology" "string(//service)";
  check_str "name" "patients" "name(/patients)";
  check_bool "starts-with" true "starts-with('tonsillitis', 'ton')";
  check_bool "contains" true "contains('tonsillitis', 'sill')";
  check_bool "not" false "not(true())";
  check_bool "boolean of empty nodeset" false "boolean(//nothing)";
  check_bool "boolean of nonempty nodeset" true "boolean(//service)";
  check_num "number conversion" 34. "number(//franck/@age)";
  (match eval "frobnicate(1)" with
   | exception Xpath.Eval.Error _ -> ()
   | _ -> Alcotest.fail "unknown function should raise")

let test_comparison_semantics () =
  let e = Xpath.Eval.env doc in
  let source = Xpath.Source.of_document doc in
  let eval src =
    Xpath.Value.to_bool source
      (Xpath.Eval.eval e ~context:Ordpath.document (Xpath.Parser.parse src))
  in
  (* Existential node-set semantics. *)
  Alcotest.(check bool) "exists equal" true (eval "//service = 'cardiology'");
  Alcotest.(check bool) "exists not-equal" true (eval "//service != 'cardiology'");
  Alcotest.(check bool) "no match" false (eval "//service = 'surgery'");
  Alcotest.(check bool) "numeric existential" true (eval "//@age > 70");
  Alcotest.(check bool) "numeric all below" false (eval "//@age > 100");
  (* Node-set vs boolean compares boolean(ns). *)
  Alcotest.(check bool) "empty ns = false()" true (eval "//nothing = false()");
  Alcotest.(check bool) "nonempty ns = true()" true (eval "//service = true()");
  (* Plain scalar comparisons. *)
  Alcotest.(check bool) "string eq" true (eval "'a' = 'a'");
  Alcotest.(check bool) "num coercion" true (eval "'2' = 2");
  Alcotest.(check bool) "bool coercion" true (eval "1 = true()")

let test_reverse_axis_positions () =
  (* position() on a reverse axis counts nearest-first. *)
  Alcotest.(check (list string)) "nearest ancestor first" [ "diagnosis" ]
    (labels (select "//diagnosis/text()[. = 'tonsillitis']/ancestor::*[1]"))

let test_self_and_dot () =
  check_labels "dot" [ "patients" ] "/patients/.";
  check_labels "self axis with test" [ "franck" ]
    "/patients/franck/self::franck";
  check_labels "self axis mismatched test" [] "/patients/franck/self::robert";
  Alcotest.(check (list string)) "dot in predicate" [ "pneumology" ]
    (labels (select "//service/text()[. = 'pneumology']"))

let test_matches () =
  let e = Xpath.Eval.env doc in
  let expr = Xpath.Parser.parse "//diagnosis" in
  let diag = select "//diagnosis" in
  List.iter
    (fun id ->
      Alcotest.(check bool) "matches selected" true (Xpath.Eval.matches e expr id))
    diag;
  let service = select "//service" in
  List.iter
    (fun id ->
      Alcotest.(check bool) "does not match others" false
        (Xpath.Eval.matches e expr id))
    service

(* Property: //X selects exactly descendants with label X. *)
let prop_dslash =
  QCheck.Test.make ~name:"//name = filtered descendants" ~count:50
    (QCheck.oneofl [ "service"; "diagnosis"; "franck"; "nothing" ])
    (fun name ->
      let via_xpath = select ("//" ^ name) in
      let via_scan =
        List.filter_map
          (fun (n : Node.t) ->
            if n.label = name && n.kind = Node.Element then Some n.id else None)
          (Document.descendants doc Ordpath.document)
      in
      via_xpath = via_scan)

(* Property: child::* steps compose like Document.children. *)
let prop_star_children =
  QCheck.Test.make ~name:"/patients/*/* equals two child scans" ~count:10
    QCheck.unit
    (fun () ->
      let via_xpath = select "/patients/*/*" in
      let root = Option.get (Document.root_element doc) in
      let via_scan =
        List.concat_map
          (fun (n : Node.t) ->
            List.filter_map
              (fun (k : Node.t) ->
                if k.kind = Node.Element then Some k.id else None)
              (Document.children doc n.id))
          (Document.element_children doc root.id)
      in
      via_xpath = List.sort_uniq Ordpath.compare via_scan)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_dslash; prop_star_children ]
  in
  Alcotest.run "xpath"
    [
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "parse_path rejects scalars" `Quick
            test_parse_path_rejects_scalars;
        ] );
      ( "selection",
        [
          Alcotest.test_case "absolute paths" `Quick test_absolute_paths;
          Alcotest.test_case "descendant paths" `Quick test_descendant_paths;
          Alcotest.test_case "attribute axis" `Quick test_attribute_axis;
          Alcotest.test_case "parent/ancestor" `Quick test_parent_ancestor;
          Alcotest.test_case "sibling axes" `Quick test_sibling_axes;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "filter expressions" `Quick test_filter_expr;
          Alcotest.test_case "variables" `Quick test_variables;
          Alcotest.test_case "self and dot" `Quick test_self_and_dot;
          Alcotest.test_case "reverse axis positions" `Quick
            test_reverse_axis_positions;
          Alcotest.test_case "matches" `Quick test_matches;
        ] );
      ( "functions",
        [
          Alcotest.test_case "core library" `Quick test_functions;
          Alcotest.test_case "comparison semantics" `Quick
            test_comparison_semantics;
        ] );
      ("property", qsuite);
    ]
