(* Tests for the lazy (query-filtering) view of §5: every query answered
   through the virtual source must agree with the materialised view, while
   touching fewer nodes. *)

open Xmldoc
module P = Core.Paper_example

let queries =
  [
    "/patients";
    "/patients/*";
    "//diagnosis";
    "//diagnosis/node()";
    "//service/text()";
    "//RESTRICTED";
    "/patients/*[service = 'pneumology']";
    "/patients/*[diagnosis/text()]";
    "//node()";
    "/patients/*[1]";
    "/patients/*[last()]/service";
    "//text()[. = 'RESTRICTED']";
    "//*[count(node()) > 1]";
    "/patients/franck/following-sibling::*";
    "//diagnosis/ancestor::*";
    "//diagnosis/..";
  ]

let agree_on_paper_example user =
  let session = P.login user in
  let lazy_view = Core.Lazy_view.of_session session in
  let materialized = Core.Session.view session in
  List.iter
    (fun q ->
      let via_lazy = Core.Lazy_view.select_str lazy_view q in
      let via_view = Xpath.Eval.select_str materialized q in
      Alcotest.(check (list string))
        (Printf.sprintf "%s for %s" q user)
        (List.map Ordpath.to_string via_view)
        (List.map Ordpath.to_string via_lazy))
    queries

let test_agreement_secretary () = agree_on_paper_example P.beaufort
let test_agreement_patient () = agree_on_paper_example P.robert
let test_agreement_epidemiologist () = agree_on_paper_example P.richard
let test_agreement_doctor () = agree_on_paper_example P.laporte

let test_labels_and_visibility () =
  let session = P.login P.beaufort in
  let lv = Core.Lazy_view.of_session session in
  let doc = Core.Session.source session in
  let tonsillitis = P.find doc "tonsillitis" in
  let franck = P.find doc "franck" in
  Alcotest.(check (option string)) "restricted label" (Some "RESTRICTED")
    (Core.Lazy_view.label lv tonsillitis);
  Alcotest.(check (option string)) "plain label" (Some "franck")
    (Core.Lazy_view.label lv franck);
  let robert_session = P.login P.robert in
  let lv2 = Core.Lazy_view.of_session robert_session in
  Alcotest.(check bool) "franck invisible to robert" false
    (Core.Lazy_view.visible lv2 franck);
  Alcotest.(check (option string)) "no label for invisible nodes" None
    (Core.Lazy_view.label lv2 franck)

let test_string_values_match () =
  (* string-value seen through the lazy view must match the materialised
     view (RESTRICTED text contributes the masked label). *)
  List.iter
    (fun user ->
      let session = P.login user in
      let lv = Core.Lazy_view.of_session session in
      let view = Core.Session.view session in
      let src = Core.Lazy_view.source lv in
      Document.iter
        (fun (n : Node.t) ->
          Alcotest.(check string)
            (Printf.sprintf "string-value of %s for %s"
               (Ordpath.to_string n.id) user)
            (Document.string_value view n.id)
            (src.Xpath.Source.string_value n.id))
        view)
    [ P.beaufort; P.richard; P.robert ]

let test_materialize_equals_view () =
  List.iter
    (fun user ->
      let session = P.login user in
      Alcotest.(check bool) (user ^ " materialize") true
        (Document.equal
           (Core.Lazy_view.materialize (Core.Lazy_view.of_session session))
           (Core.Session.view session)))
    [ P.beaufort; P.laporte; P.richard; P.robert ]

let test_probes_fewer_nodes () =
  (* A narrow query on a large database must not decide visibility for
     every node. *)
  let config = { Workload.Gen_doc.default with patients = 300; seed = 21 } in
  let doc = Workload.Gen_doc.generate config in
  let policy = Workload.Gen_policy.hospital config in
  let session = Core.Session.login policy doc ~user:"laporte" in
  let lv = Core.Lazy_view.of_session session in
  let hits = Core.Lazy_view.select_str lv "/patients/*[2]/service" in
  Alcotest.(check int) "one service" 1 (List.length hits);
  let probed = Core.Lazy_view.probed_nodes lv in
  let total = Document.size doc in
  Alcotest.(check bool)
    (Printf.sprintf "probed %d of %d nodes" probed total)
    true
    (probed < total / 2)

(* Differential property over random documents, policies and queries. *)
let label_pool = [ "a"; "b"; "c"; "d" ]

let doc_gen =
  QCheck.Gen.(
    let rec tree depth =
      if depth = 0 then map Tree.text (oneofl [ "x"; "y"; "z" ])
      else
        frequency
          [
            (1, map Tree.text (oneofl [ "x"; "y"; "z" ]));
            ( 3,
              map2 Tree.element (oneofl label_pool)
                (list_size (int_range 0 3) (tree (depth - 1))) );
          ]
    in
    map
      (fun kids -> Document.of_tree (Tree.element "root" kids))
      (list_size (int_range 0 4) (tree 2)))

let query_pool =
  [
    "//node()"; "//a"; "//b/node()"; "//text()"; "/root/*"; "//RESTRICTED";
    "//a[b]"; "//*[text() = 'x']"; "/root/*[1]"; "//c/ancestor::*";
    "//*[. = 'RESTRICTED']"; "//a/following-sibling::node()";
  ]

let prop_lazy_equals_materialized =
  QCheck.Test.make ~count:150
    ~name:"lazy view answers = materialised view answers"
    (QCheck.make
       ~print:(fun (doc, seed, q) ->
         Xml_print.to_string doc ^ Printf.sprintf " seed=%d q=%s" seed q)
       QCheck.Gen.(triple doc_gen (int_range 0 10000) (oneofl query_pool)))
    (fun (doc, seed, q) ->
      let rule_paths =
        [ "//node()"; "/root"; "/root/node()"; "//text()"; "//a"; "//b";
          "//c/node()"; "//d"; "/root/a"; "//a/node()" ]
      in
      let policy =
        Workload.Gen_policy.random ~paths:rule_paths
          { rules = 8; deny_fraction = 0.4; seed }
      in
      let session = Core.Session.login policy doc ~user:"u" in
      let lv = Core.Lazy_view.of_session session in
      Core.Lazy_view.select_str lv q
      = Xpath.Eval.select_str (Core.Session.view session) q)

let () =
  Alcotest.run "lazy_view"
    [
      ( "agreement",
        [
          Alcotest.test_case "secretary" `Quick test_agreement_secretary;
          Alcotest.test_case "patient" `Quick test_agreement_patient;
          Alcotest.test_case "epidemiologist" `Quick
            test_agreement_epidemiologist;
          Alcotest.test_case "doctor" `Quick test_agreement_doctor;
          Alcotest.test_case "string values" `Quick test_string_values_match;
          Alcotest.test_case "materialize" `Quick test_materialize_equals_view;
        ] );
      ( "laziness",
        [
          Alcotest.test_case "labels and visibility" `Quick
            test_labels_and_visibility;
          Alcotest.test_case "probes fewer nodes" `Quick test_probes_fewer_nodes;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_lazy_equals_materialized ] );
    ]
