(* Tests for the persistent labelling scheme: document order, level
   structure, geometry derivation, and the no-renumbering guarantee under
   arbitrary insertion sequences. *)

let op = Alcotest.testable Ordpath.pp Ordpath.equal

let path cs = Ordpath.of_components cs

(* --- unit tests ------------------------------------------------------ *)

let test_document_and_root () =
  Alcotest.(check string) "document prints /" "/" (Ordpath.to_string Ordpath.document);
  Alcotest.(check int) "document depth" 0 (Ordpath.depth Ordpath.document);
  Alcotest.(check int) "root depth" 1 (Ordpath.depth Ordpath.root);
  Alcotest.(check (option op)) "parent of root" (Some Ordpath.document)
    (Ordpath.parent Ordpath.root);
  Alcotest.(check (option op)) "parent of document" None
    (Ordpath.parent Ordpath.document)

let test_well_formed () =
  let ok cs = ignore (Ordpath.of_components cs) in
  let bad cs =
    Alcotest.check_raises "malformed"
      (Invalid_argument "Ordpath.of_components: malformed label") (fun () ->
        ignore (Ordpath.of_components cs))
  in
  ok [];
  ok [ 1 ];
  ok [ 1; 3 ];
  ok [ 1; 2; 1 ];
  ok [ -1 ];
  ok [ 1; 0; 5; 3 ];
  bad [ 2 ];
  bad [ 1; 2 ];
  bad [ 0 ]

let test_order () =
  let check_lt a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s < %s" (Ordpath.to_string a) (Ordpath.to_string b))
      true
      (Ordpath.compare a b < 0)
  in
  check_lt Ordpath.document (path [ 1 ]);
  check_lt (path [ 1 ]) (path [ 1; 1 ]);
  check_lt (path [ 1; 1 ]) (path [ 1; 3 ]);
  check_lt (path [ 1; 2; 1 ]) (path [ 1; 3 ]);
  check_lt (path [ 1; 1 ]) (path [ 1; 2; 1 ]);
  check_lt (path [ -1 ]) (path [ 1 ])

let test_parent () =
  Alcotest.(check (option op)) "parent strips one level" (Some (path [ 1 ]))
    (Ordpath.parent (path [ 1; 2; 1 ]));
  Alcotest.(check (option op)) "caret components stay with their level"
    (Some (path [ 1 ]))
    (Ordpath.parent (path [ 1; 2; 0; 5 ]));
  Alcotest.(check (option op)) "two plain levels" (Some (path [ 1 ]))
    (Ordpath.parent (path [ 1; 3 ]))

let test_ancestor () =
  Alcotest.(check bool) "strict" false
    (Ordpath.is_ancestor ~ancestor:(path [ 1 ]) (path [ 1 ]));
  Alcotest.(check bool) "prefix" true
    (Ordpath.is_ancestor ~ancestor:(path [ 1 ]) (path [ 1; 2; 1; 7 ]));
  Alcotest.(check bool) "non-prefix" false
    (Ordpath.is_ancestor ~ancestor:(path [ 1; 3 ]) (path [ 1; 5; 1 ]))

let test_relationship () =
  let check name expected a b =
    let show = function
      | `Self -> "self"
      | `Ancestor -> "ancestor"
      | `Descendant -> "descendant"
      | `Preceding -> "preceding"
      | `Following -> "following"
    in
    Alcotest.(check string) name (show expected) (show (Ordpath.relationship a b))
  in
  check "self" `Self (path [ 1 ]) (path [ 1 ]);
  check "b ancestor of a" `Ancestor (path [ 1; 1 ]) (path [ 1 ]);
  check "b descendant of a" `Descendant (path [ 1 ]) (path [ 1; 1 ]);
  check "preceding" `Preceding (path [ 1; 3 ]) (path [ 1; 1 ]);
  check "following" `Following (path [ 1; 1 ]) (path [ 1; 3 ])

let test_first_and_append () =
  let p = path [ 1 ] in
  let c1 = Ordpath.first_child p in
  Alcotest.check op "first child" (path [ 1; 1 ]) c1;
  let c2 = Ordpath.append_after p ~last:(Some c1) in
  Alcotest.check op "append" (path [ 1; 3 ]) c2;
  let c3 = Ordpath.append_after p ~last:(Some c2) in
  Alcotest.check op "append again" (path [ 1; 5 ]) c3

let test_between_carets () =
  let p = path [ 1 ] in
  let a = path [ 1; 1 ] and b = path [ 1; 3 ] in
  let m = Ordpath.child_under ~parent:p ~left:(Some a) ~right:(Some b) in
  Alcotest.check op "caret insertion" (path [ 1; 2; 1 ]) m;
  Alcotest.(check bool) "a < m" true (Ordpath.compare a m < 0);
  Alcotest.(check bool) "m < b" true (Ordpath.compare m b < 0);
  Alcotest.(check bool) "m is child of p" true (Ordpath.is_child ~parent:p m);
  (* insert again between a and the caret label *)
  let m2 = Ordpath.child_under ~parent:p ~left:(Some a) ~right:(Some m) in
  Alcotest.(check bool) "a < m2 < m" true
    (Ordpath.compare a m2 < 0 && Ordpath.compare m2 m < 0);
  Alcotest.(check bool) "m2 child of p" true (Ordpath.is_child ~parent:p m2)

let test_insert_before_first () =
  let p = path [ 1 ] in
  let c1 = path [ 1; 1 ] in
  let before = Ordpath.child_under ~parent:p ~left:None ~right:(Some c1) in
  Alcotest.check op "negative odd" (path [ 1; -1 ]) before;
  Alcotest.(check bool) "before < c1" true (Ordpath.compare before c1 < 0)

let test_string_roundtrip () =
  List.iter
    (fun cs ->
      let t = path cs in
      Alcotest.check op "roundtrip" t (Ordpath.of_string (Ordpath.to_string t)))
    [ []; [ 1 ]; [ 1; 3 ]; [ 1; 2; 1 ]; [ -3; 0; 7 ] ]

let test_bad_bounds () =
  let p = path [ 1 ] in
  Alcotest.(check bool) "left >= right rejected" true
    (try
       ignore
         (Ordpath.child_under ~parent:p ~left:(Some (path [ 1; 3 ]))
            ~right:(Some (path [ 1; 1 ])));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-child bound rejected" true
    (try
       ignore
         (Ordpath.child_under ~parent:p ~left:(Some (path [ 3 ])) ~right:None);
       false
     with Invalid_argument _ -> true)

(* --- property tests --------------------------------------------------- *)

(* A random insertion scenario: starting from one child under the root,
   repeatedly pick a random gap among current siblings and allocate a label
   there.  Invariants: all labels distinct, strictly ordered, all children
   of the root, and labels allocated earlier never change (trivially true
   by construction; we check they remain valid bounds). *)
let sibling_scenario =
  QCheck.make ~print:QCheck.Print.(list int)
    QCheck.Gen.(list_size (int_range 1 60) (int_range 0 1000))

let prop_sibling_insertions =
  QCheck.Test.make ~name:"random sibling insertions keep strict order"
    ~count:200 sibling_scenario (fun choices ->
      let parent = Ordpath.root in
      let insert_at siblings gap_index =
        let n = List.length siblings in
        let gap = gap_index mod (n + 1) in
        let left = if gap = 0 then None else Some (List.nth siblings (gap - 1)) in
        let right = if gap = n then None else Some (List.nth siblings gap) in
        let fresh = Ordpath.child_under ~parent ~left ~right in
        let rec insert i = function
          | rest when i = gap -> fresh :: rest
          | [] -> [ fresh ]
          | x :: rest -> x :: insert (i + 1) rest
        in
        insert 0 siblings
      in
      let siblings =
        List.fold_left insert_at [ Ordpath.first_child parent ] choices
      in
      let rec strictly_sorted = function
        | a :: (b :: _ as rest) ->
          Ordpath.compare a b < 0 && strictly_sorted rest
        | [ _ ] | [] -> true
      in
      strictly_sorted siblings
      && List.for_all (fun s -> Ordpath.is_child ~parent s) siblings)

let prop_parent_of_child =
  QCheck.Test.make ~name:"child_under result has the requested parent"
    ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 4) small_nat) small_nat)
    (fun (levels, k) ->
      (* Build a parent by descending [levels], then allocate children. *)
      let parent =
        List.fold_left
          (fun p _ -> Ordpath.first_child p)
          Ordpath.document levels
      in
      let rec allocate last n =
        if n = 0 then true
        else
          let c = Ordpath.append_after parent ~last in
          Ordpath.parent c = Some parent
          && (match last with
              | None -> true
              | Some l -> Ordpath.compare l c < 0)
          && allocate (Some c) (n - 1)
      in
      allocate None ((k mod 5) + 1))

let prop_compare_total_order =
  let label_gen =
    (* Generate valid labels: random levels, each a run of evens + odd. *)
    QCheck.Gen.(
      let level =
        list_size (int_range 0 2) (map (fun i -> 2 * i) (int_range 0 5))
        >>= fun evens ->
        map (fun i -> evens @ [ (2 * i) + 1 ]) (int_range 0 5)
      in
      map List.concat (list_size (int_range 0 4) level))
  in
  let arb =
    QCheck.make ~print:(fun cs -> Ordpath.to_string (Ordpath.of_components cs))
      label_gen
  in
  QCheck.Test.make ~name:"compare is a total order consistent with equality"
    ~count:300 (QCheck.pair arb arb) (fun (a, b) ->
      let a = Ordpath.of_components a and b = Ordpath.of_components b in
      let c1 = Ordpath.compare a b and c2 = Ordpath.compare b a in
      (c1 = 0) = Ordpath.equal a b && (c1 > 0) = (c2 < 0))

let prop_ancestor_iff_prefix_levels =
  QCheck.Test.make ~name:"parent chain matches depth" ~count:200
    QCheck.(int_range 1 6)
    (fun depth ->
      let rec descend p n = if n = 0 then p else descend (Ordpath.first_child p) (n - 1) in
      let leaf = descend Ordpath.document depth in
      let rec climb p count =
        match Ordpath.parent p with
        | None -> count
        | Some q -> climb q (count + 1)
      in
      Ordpath.depth leaf = depth && climb leaf 0 = depth)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_sibling_insertions;
        prop_parent_of_child;
        prop_compare_total_order;
        prop_ancestor_iff_prefix_levels;
      ]
  in
  Alcotest.run "ordpath"
    [
      ( "unit",
        [
          Alcotest.test_case "document and root" `Quick test_document_and_root;
          Alcotest.test_case "well-formedness" `Quick test_well_formed;
          Alcotest.test_case "document order" `Quick test_order;
          Alcotest.test_case "parent" `Quick test_parent;
          Alcotest.test_case "ancestor" `Quick test_ancestor;
          Alcotest.test_case "relationship" `Quick test_relationship;
          Alcotest.test_case "first child and append" `Quick test_first_and_append;
          Alcotest.test_case "caret insertion" `Quick test_between_carets;
          Alcotest.test_case "insert before first" `Quick test_insert_before_first;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "bad bounds" `Quick test_bad_bounds;
        ] );
      ("property", qsuite);
    ]
