(* Additional edge-case coverage across ordpath, xmldoc, datalog and the
   core security model. *)

open Xmldoc
module P = Core.Paper_example

(* --- ordpath -------------------------------------------------------------- *)

let test_ordpath_of_string_errors () =
  List.iter
    (fun s ->
      match Ordpath.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "of_string %S should fail" s)
    [ ""; "a"; "1.x"; "2"; "1.2"; "1..3" ]

let test_ordpath_relationship_consistency () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300
       ~name:"relationship agrees with compare and prefixing"
       (let level =
          QCheck.Gen.(
            list_size (int_range 0 1) (map (fun i -> 2 * i) (int_range 0 3))
            >>= fun evens ->
            map (fun i -> evens @ [ (2 * i) + 1 ]) (int_range 0 3))
        in
        let label =
          QCheck.Gen.(map List.concat (list_size (int_range 0 3) level))
        in
        QCheck.make
          ~print:(fun (a, b) ->
            Ordpath.to_string (Ordpath.of_components a)
            ^ " vs "
            ^ Ordpath.to_string (Ordpath.of_components b))
          QCheck.Gen.(pair label label))
       (fun (a, b) ->
         let a = Ordpath.of_components a and b = Ordpath.of_components b in
         match Ordpath.relationship a b with
         | `Self -> Ordpath.equal a b
         | `Ancestor -> Ordpath.is_ancestor ~ancestor:b a
         | `Descendant -> Ordpath.is_ancestor ~ancestor:a b
         | `Preceding ->
           Ordpath.compare b a < 0 && not (Ordpath.is_ancestor ~ancestor:b a)
         | `Following ->
           Ordpath.compare a b < 0 && not (Ordpath.is_ancestor ~ancestor:a b)))

let test_ordpath_between_bounds () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"between respects both bounds"
       (QCheck.make ~print:QCheck.Print.(pair int int)
          QCheck.Gen.(pair (int_range 0 20) (int_range 0 20)))
       (fun (i, j) ->
         let parent = Ordpath.root in
         (* Build an increasing run of children, then split gap (i, j). *)
         let children =
           let rec go last n acc =
             if n = 0 then List.rev acc
             else
               let c = Ordpath.append_after parent ~last in
               go (Some c) (n - 1) (c :: acc)
           in
           go None 22 []
         in
         let lo = min i j and hi = max i j + 1 in
         let left = List.nth children lo and right = List.nth children hi in
         let m = Ordpath.between ~left ~right in
         Ordpath.compare left m < 0
         && Ordpath.compare m right < 0
         && Ordpath.is_child ~parent m))

(* --- xmldoc --------------------------------------------------------------- *)

let test_of_forest () =
  let d =
    Document.of_forest
      [ Tree.comment "header"; Tree.element "root" [ Tree.text "x" ];
        Tree.comment "footer" ]
  in
  Alcotest.(check int) "document-level nodes" 3
    (List.length (Document.children d Ordpath.document));
  Alcotest.(check (option string)) "root element found" (Some "root")
    (Option.map (fun (n : Node.t) -> n.label) (Document.root_element d));
  (* to_tree of the document node only works for a single top-level. *)
  Alcotest.(check bool) "to_tree of multi-top document" true
    (Document.to_tree d Ordpath.document = None)

let test_parse_options () =
  let src = "<a> <b/> keep <!--c--> </a>" in
  let stripped = Xml_parse.of_string src in
  (* document, a, b and the non-blank " keep " text survive. *)
  Alcotest.(check int) "whitespace-only text dropped" 4 (Document.size stripped);
  let kept =
    Xml_parse.of_string ~strip_whitespace:false ~keep_comments:true src
  in
  (* document, a, 3 text runs, b, comment *)
  Alcotest.(check int) "everything kept" 7 (Document.size kept);
  let comments =
    List.filter (fun (n : Node.t) -> n.kind = Node.Comment) (Document.nodes kept)
  in
  Alcotest.(check (list string)) "comment content" [ "c" ]
    (List.map (fun (n : Node.t) -> n.label) comments)

let test_parse_prolog_and_pi () =
  let d =
    Xml_parse.of_string
      {|<?xml version="1.0" encoding="UTF-8"?>
<!-- leading comment -->
<!DOCTYPE a [ <!ELEMENT a ANY> ]>
<?target instruction?>
<a><?skip me?>x</a>
<!-- trailing comment -->|}
  in
  let a = Option.get (Document.root_element d) in
  Alcotest.(check string) "content survives prolog" "x"
    (Document.string_value d a.id)

let test_unicode_references () =
  let d = Xml_parse.of_string "<a>&#233;t&#xE9; &#x1F600;</a>" in
  let a = Option.get (Document.root_element d) in
  Alcotest.(check string) "decoded UTF-8" "été 😀" (Document.string_value d a.id)

let test_add_subtree_argument_errors () =
  let d = P.document () in
  let franck = P.find d "franck" in
  let robert = P.find d "robert" in
  (match
     Document.add_subtree d ~parent:(Ordpath.of_string "9.9")
       ~left:None ~right:None (Tree.element "x" [])
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unknown parent must be rejected");
  (match
     Document.add_subtree d ~parent:franck ~left:(Some robert) ~right:None
       (Tree.element "x" [])
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "foreign bound must be rejected")

let test_remove_document_node_ignored () =
  let d = P.document () in
  Alcotest.(check bool) "removing / is a no-op" true
    (Document.equal d (Document.remove_subtree d Ordpath.document))

(* --- datalog -------------------------------------------------------------- *)

let test_datalog_zero_arity () =
  let prog = Datalog.Parse.program "winter. cold :- winter. warm :- summer." in
  let db = Datalog.Eval.solve Datalog.Db.empty prog in
  Alcotest.(check bool) "cold derived" true
    (Datalog.Db.mem db (Datalog.Parse.atom "cold"));
  Alcotest.(check bool) "warm not derived" false
    (Datalog.Db.mem db (Datalog.Parse.atom "warm"))

let test_datalog_print_parse_roundtrip () =
  let clauses =
    [
      "p(X) :- q(X, 'hello world'), not r(X).";
      "fact('with \\' quote').";
      "cmp(X, Y) :- n(X), n(Y), X >= Y.";
      "edge(a-b, 7).";
    ]
  in
  List.iter
    (fun src ->
      let c = Datalog.Parse.clause src in
      let printed = Datalog.Clause.to_string c in
      let c' = Datalog.Parse.clause printed in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %s" src) true
        (Datalog.Clause.equal c c'))
    clauses

let test_datalog_query_api () =
  let edb =
    List.fold_left
      (fun db s -> Datalog.Db.add db (Datalog.Parse.atom s))
      Datalog.Db.empty
      [ "parent(tom, bob)"; "parent(bob, ann)"; "parent(bob, joe)" ]
  in
  let prog =
    Datalog.Parse.program
      "anc(X, Y) :- parent(X, Y). anc(X, Z) :- parent(X, Y), anc(Y, Z)."
  in
  let result =
    Datalog.Eval.query edb prog "anc"
      [ Datalog.Term.Sym "tom"; Datalog.Term.Var "Z" ]
  in
  Alcotest.(check int) "tom's descendants" 3 (List.length result)

let test_datalog_eq_ne_builtins () =
  let edb =
    List.fold_left
      (fun db s -> Datalog.Db.add db (Datalog.Parse.atom s))
      Datalog.Db.empty
      [ "n(a)"; "n(b)" ]
  in
  let prog =
    Datalog.Parse.program
      "same(X, Y) :- n(X), n(Y), X = Y. diff(X, Y) :- n(X), n(Y), X != Y."
  in
  let db = Datalog.Eval.solve edb prog in
  Alcotest.(check int) "2 same" 2 (List.length (Datalog.Db.facts db "same"));
  Alcotest.(check int) "2 diff" 2 (List.length (Datalog.Db.facts db "diff"))

let test_datalog_int_string_order () =
  (* Terms order: Sym < Int in comparisons never mix in practice, but the
     engine must stay total. *)
  let edb =
    List.fold_left
      (fun db s -> Datalog.Db.add db (Datalog.Parse.atom s))
      Datalog.Db.empty
      [ "v(1)"; "v(2)"; "v(x)" ]
  in
  let prog = Datalog.Parse.program "big(X) :- v(X), X > 1." in
  let db = Datalog.Eval.solve edb prog in
  Alcotest.(check bool) "2 > 1" true
    (Datalog.Db.mem db (Datalog.Parse.atom "big(2)"))

(* --- core ------------------------------------------------------------------ *)

let test_policy_revoke () =
  let p = P.policy in
  let p' = Core.Policy.revoke p ~priority:11 in
  Alcotest.(check int) "one fewer rule"
    (List.length (Core.Policy.rules p) - 1)
    (List.length (Core.Policy.rules p'));
  (* Without the deny, the secretary reads diagnosis contents again. *)
  let session = Core.Session.login p' (P.document ()) ~user:P.beaufort in
  Alcotest.(check int) "secretary reads diagnosis text now" 2
    (List.length (Core.Session.query session "//diagnosis/text()"));
  Alcotest.(check bool) "unknown priority ignored" true
    (Core.Policy.rules (Core.Policy.revoke p ~priority:999)
     = Core.Policy.rules p)

let test_rules_for_closure () =
  let for_beaufort = Core.Policy.rules_for P.policy ~user:P.beaufort in
  (* staff rules (1) + secretary rules (2, 3, 8, 9) *)
  Alcotest.(check int) "secretary inherits staff rules" 5
    (List.length for_beaufort);
  let for_robert = Core.Policy.rules_for P.policy ~user:P.robert in
  Alcotest.(check int) "patients get rules 4-5" 2 (List.length for_robert)

let test_view_of_user_without_rules () =
  let subjects = Core.Subject.of_list [ (Core.Subject.User, "ghost", []) ] in
  let policy = Core.Policy.v subjects [] in
  let session = Core.Session.login policy (P.document ()) ~user:"ghost" in
  Alcotest.(check int) "empty view" 0
    (Core.View.visible_count (Core.Session.view session))

let test_rule_on_document_node () =
  let subjects = Core.Subject.of_list [ (Core.Subject.User, "u", []) ] in
  let policy =
    Core.Policy.v subjects []
    |> fun p -> Core.Policy.grant p Core.Privilege.Read ~path:"/" ~subject:"u"
  in
  let session = Core.Session.login policy (P.document ()) ~user:"u" in
  (* The document node is always in the view anyway; granting read on it
     changes nothing below. *)
  Alcotest.(check int) "still empty below /" 0
    (Core.View.visible_count (Core.Session.view session))

let test_apply_all_reports () =
  let session = P.login P.laporte in
  let ops =
    [
      Xupdate.Op.update "/patients/franck/diagnosis" "a";
      Xupdate.Op.update "/patients/franck/diagnosis" "b";
      Xupdate.Op.remove "//diagnosis/node()";
    ]
  in
  let session, reports = Core.Secure_update.apply_all session ops in
  Alcotest.(check int) "three reports" 3 (List.length reports);
  Alcotest.(check bool) "all applied" true
    (List.for_all Core.Secure_update.fully_applied reports);
  Alcotest.(check int) "no diagnosis text left" 0
    (List.length (Core.Session.query session "//diagnosis/text()"))

let test_view_updates_after_secure_write () =
  (* The session's view refreshes after each write: a doctor's update is
     immediately reflected in what the doctor (and others) see. *)
  let doctor = P.login P.laporte in
  let doctor, _ =
    Core.Secure_update.apply doctor
      (Xupdate.Op.update "/patients/robert/diagnosis" "cured")
  in
  Alcotest.(check int) "doctor sees the new text" 1
    (List.length (Core.Session.query doctor "//text()[. = 'cured']"));
  let secretary =
    Core.Session.login P.policy (Core.Session.source doctor) ~user:P.beaufort
  in
  Alcotest.(check int) "secretary still sees RESTRICTED" 2
    (List.length (Core.Session.query secretary "//diagnosis/node()"));
  Alcotest.(check int) "secretary cannot see the word" 0
    (List.length (Core.Session.query secretary "//text()[. = 'cured']"))

let test_deciding_rule_exposed () =
  let session = P.login P.beaufort in
  let perm = Core.Session.perm session in
  let tonsillitis = P.find (Core.Session.source session) "tonsillitis" in
  (match Core.Perm.deciding_rule perm Core.Privilege.Read tonsillitis with
   | Some r ->
     Alcotest.(check int) "read decided by rule 11" 11 r.priority;
     Alcotest.(check string) "a deny" "deny" (Core.Rule.decision_to_string r.decision)
   | None -> Alcotest.fail "expected a deciding rule");
  Alcotest.(check (option Alcotest.reject)) "no rule for insert on text"
    None
    (Core.Perm.deciding_rule perm Core.Privilege.Insert tonsillitis
     |> Option.map (fun _ -> Alcotest.fail "unexpected rule"))

let test_subject_kind_conflict () =
  let s = Core.Subject.add_role Core.Subject.empty "x" in
  match Core.Subject.add_user s "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "conflicting redeclaration must fail"

let () =
  Alcotest.run "extra"
    [
      ( "ordpath",
        [
          Alcotest.test_case "of_string errors" `Quick
            test_ordpath_of_string_errors;
          Alcotest.test_case "relationship consistency" `Quick
            test_ordpath_relationship_consistency;
          Alcotest.test_case "between bounds" `Quick test_ordpath_between_bounds;
        ] );
      ( "xmldoc",
        [
          Alcotest.test_case "of_forest" `Quick test_of_forest;
          Alcotest.test_case "parse options" `Quick test_parse_options;
          Alcotest.test_case "prolog and PIs" `Quick test_parse_prolog_and_pi;
          Alcotest.test_case "unicode references" `Quick test_unicode_references;
          Alcotest.test_case "add_subtree errors" `Quick
            test_add_subtree_argument_errors;
          Alcotest.test_case "remove document node" `Quick
            test_remove_document_node_ignored;
        ] );
      ( "datalog",
        [
          Alcotest.test_case "zero arity" `Quick test_datalog_zero_arity;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_datalog_print_parse_roundtrip;
          Alcotest.test_case "query API" `Quick test_datalog_query_api;
          Alcotest.test_case "eq/ne builtins" `Quick test_datalog_eq_ne_builtins;
          Alcotest.test_case "mixed term order" `Quick
            test_datalog_int_string_order;
        ] );
      ( "core",
        [
          Alcotest.test_case "policy revoke" `Quick test_policy_revoke;
          Alcotest.test_case "rules_for closure" `Quick test_rules_for_closure;
          Alcotest.test_case "no-rule user" `Quick test_view_of_user_without_rules;
          Alcotest.test_case "rule on document node" `Quick
            test_rule_on_document_node;
          Alcotest.test_case "apply_all" `Quick test_apply_all_reports;
          Alcotest.test_case "view refresh after write" `Quick
            test_view_updates_after_secure_write;
          Alcotest.test_case "deciding rule" `Quick test_deciding_rule_exposed;
          Alcotest.test_case "subject kind conflict" `Quick
            test_subject_kind_conflict;
        ] );
    ]
