(* Final-coverage suite: rendering formats, policy-language corners,
   session variables, hashing, and cross-feature interactions that the
   per-module suites do not reach. *)

open Xmldoc
module P = Core.Paper_example

(* --- renderings ------------------------------------------------------------ *)

let test_tree_view_golden () =
  let doc = Xml_parse.of_string "<a><b>x</b><c k=\"v\"/></a>" in
  Alcotest.(check string) "tree view"
    "/            /\n\
     1              /a\n\
     1.1              /b\n\
     1.1.1              text()x\n\
     1.3              /c\n\
     1.3.1              @k\n\
     1.3.1.1              text()v\n"
    (Xml_print.tree_view doc);
  Alcotest.(check string) "without ids"
    "/\n  /a\n    /b\n      text()x\n    /c\n      @k\n        text()v\n"
    (Xml_print.tree_view ~show_ids:false doc)

let test_facts_golden () =
  let doc = Xml_parse.of_string "<a><b>x</b></a>" in
  Alcotest.(check string) "facts notation"
    "{ node(/, /), node(1, a), node(1.1, b), node(1.1.1, x) }"
    (Xml_print.facts doc)

let test_indented_xml () =
  let doc = Xml_parse.of_string "<a><b>x</b><c><d/></c></a>" in
  Alcotest.(check string) "indented form"
    "<a>\n  <b>x</b>\n  <c>\n    <d/>\n  </c>\n</a>\n"
    (Xml_print.to_string ~indent:true doc)

(* --- policy language corners ------------------------------------------------ *)

let test_policy_lang_corners () =
  let p =
    Core.Policy_lang.parse
      {|
# leading comment and blank lines are fine

role staff          # trailing comment
role nurse isa staff
role admin
user carla isa nurse,admin
grant read on //node() to carla
|}
  in
  Alcotest.(check (list string)) "multi-isa"
    [ "admin"; "carla"; "nurse"; "staff" ]
    (Core.Subject.ancestors (Core.Policy.subjects p) "carla");
  Alcotest.(check int) "one rule" 1 (List.length (Core.Policy.rules p));
  (* to_string of the roundtrip is stable (fixpoint). *)
  let s1 = Core.Policy_lang.to_string p in
  let s2 = Core.Policy_lang.to_string (Core.Policy_lang.parse s1) in
  Alcotest.(check string) "printing is a fixpoint" s1 s2

let test_policy_lang_reports_line_numbers () =
  match Core.Policy_lang.parse "role a\nrole b\ngrant fly on //x to a" with
  | exception Core.Policy_lang.Error { line; _ } ->
    Alcotest.(check int) "line 3" 3 line
  | _ -> Alcotest.fail "expected an error"

(* --- session variables ------------------------------------------------------ *)

let test_user_variable_in_session_queries () =
  let session = P.login P.robert in
  Alcotest.(check int) "$USER bound in queries" 1
    (List.length (Core.Session.query session "/patients/*[name() = $USER]"));
  let laporte = P.login P.laporte in
  Alcotest.(check int) "different session, different binding" 0
    (List.length (Core.Session.query laporte "/patients/*[name() = $USER]"))

(* --- hashing / ordering ------------------------------------------------------ *)

let test_ordpath_hash_consistent () =
  let a = Ordpath.of_string "1.2.1" in
  let b = Ordpath.of_components [ 1; 2; 1 ] in
  Alcotest.(check bool) "equal values" true (Ordpath.equal a b);
  Alcotest.(check int) "equal hashes" (Ordpath.hash a) (Ordpath.hash b)

let test_ordpath_set_map () =
  let ids = List.map Ordpath.of_string [ "1"; "1.1"; "1.3"; "1.1.1" ] in
  let set = Ordpath.Set.of_list ids in
  Alcotest.(check int) "set size" 4 (Ordpath.Set.cardinal set);
  Alcotest.(check (list string)) "sorted in document order"
    [ "1"; "1.1"; "1.1.1"; "1.3" ]
    (List.map Ordpath.to_string (Ordpath.Set.elements set))

(* --- datalog db extras -------------------------------------------------------- *)

let test_db_union_and_equality () =
  let mk atoms =
    List.fold_left
      (fun db s -> Datalog.Db.add db (Datalog.Parse.atom s))
      Datalog.Db.empty atoms
  in
  let a = mk [ "p(1)"; "q(x)" ] and b = mk [ "p(2)"; "q(x)" ] in
  let u = Datalog.Db.union a b in
  Alcotest.(check int) "union size" 3 (Datalog.Db.count u);
  Alcotest.(check bool) "equal on q" true (Datalog.Db.equal_on "q" a b);
  Alcotest.(check bool) "not equal on p" false (Datalog.Db.equal_on "p" a b);
  Alcotest.(check (list string)) "predicates sorted" [ "p"; "q" ]
    (Datalog.Db.predicates u)

(* --- cross-feature interactions ---------------------------------------------- *)

let test_insert_relative_to_restricted_sibling () =
  (* The secretary can address a RESTRICTED diagnosis element of a record
     she may update... here: insert after a RESTRICTED *element*. *)
  let subjects = Core.Subject.of_list [ (Core.Subject.User, "u", []) ] in
  let doc = Xml_parse.of_string "<r><hidden>x</hidden><open/></r>" in
  let policy =
    Core.Policy.v subjects []
    |> fun p -> Core.Policy.grant p Core.Privilege.Read ~path:"/r" ~subject:"u"
    |> fun p -> Core.Policy.grant p Core.Privilege.Read ~path:"//open" ~subject:"u"
    |> fun p ->
    Core.Policy.grant p Core.Privilege.Position ~path:"//hidden" ~subject:"u"
    |> fun p -> Core.Policy.grant p Core.Privilege.Insert ~path:"/r" ~subject:"u"
  in
  let session = Core.Session.login policy doc ~user:"u" in
  (* /r/RESTRICTED addresses the masked element on the view. *)
  let session, report =
    Core.Secure_update.apply session
      (Xupdate.Op.insert_after "/r/RESTRICTED" (Tree.element "marker" []))
  in
  Alcotest.(check bool) "applied" true (Core.Secure_update.fully_applied report);
  Alcotest.(check (list string)) "inserted between hidden and open"
    [ "hidden"; "marker"; "open" ]
    (List.map
       (fun (n : Node.t) -> n.label)
       (Document.element_children (Core.Session.source session)
          (P.find (Core.Session.source session) "r")))

let test_enforcer_position_only_policy () =
  (* A policy granting only position yields an all-RESTRICTED skeleton;
     the XSLT path must agree. *)
  let subjects = Core.Subject.of_list [ (Core.Subject.User, "u", []) ] in
  let doc = Xml_parse.of_string "<a><b>x</b></a>" in
  let policy =
    Core.Policy.v subjects []
    |> fun p ->
    Core.Policy.grant p Core.Privilege.Position ~path:"//node()" ~subject:"u"
  in
  let view = Core.View.derive doc (Core.Perm.compute policy doc ~user:"u") in
  Alcotest.(check (list string)) "all masked"
    [ "/"; "RESTRICTED"; "RESTRICTED"; "RESTRICTED" ]
    (List.map (fun (n : Node.t) -> n.label) (Document.nodes view));
  Alcotest.(check string) "XSLT agrees"
    (Xml_print.to_string ~indent:true view)
    (Xml_print.to_string ~indent:true
       (Core.Xslt_enforcer.enforce policy doc ~user:"u"))

let test_lazy_view_after_update () =
  (* A lazy view is a snapshot of (doc, perm): after a secure update, a
     fresh lazy view over the new session agrees with the new view. *)
  let session = P.login P.laporte in
  let session, _ =
    Core.Secure_update.apply session
      (Xupdate.Op.update "/patients/robert/diagnosis" "cured")
  in
  let lv = Core.Lazy_view.of_session session in
  Alcotest.(check bool) "agrees after update" true
    (Document.equal
       (Core.Lazy_view.materialize lv)
       (Core.Session.view session));
  Alcotest.(check int) "query sees new text" 1
    (List.length (Core.Lazy_view.select_str lv "//text()[. = 'cured']"))

let test_admin_policy_feeds_enforcer () =
  (* Policies built through the delegation machinery flow into every
     enforcement path. *)
  let subjects =
    Core.Subject.of_list
      [ (Core.Subject.User, "owner", []); (Core.Subject.User, "alice", []) ]
  in
  let doc = Xml_parse.of_string "<lib><a>1</a><b>2</b></lib>" in
  let admin = Core.Admin.create ~owner:"owner" (Core.Policy.v subjects []) in
  let admin =
    match
      Core.Admin.grant admin doc ~issuer:"owner" Core.Privilege.Read
        ~path:"/lib/descendant-or-self::node()" ~subject:"alice"
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "grant failed: %s" e
  in
  let policy = Core.Admin.policy admin in
  let view = Core.View.derive doc (Core.Perm.compute policy doc ~user:"alice") in
  Alcotest.(check int) "alice sees all" 5 (Core.View.visible_count view);
  Alcotest.(check string) "XSLT path agrees"
    (Xml_print.to_string ~indent:true view)
    (Xml_print.to_string ~indent:true
       (Core.Xslt_enforcer.enforce policy doc ~user:"alice"));
  Alcotest.(check bool) "datalog path agrees" true
    (Core.Logic_encoding.view_parity
       (Core.Session.login policy doc ~user:"alice"))

let test_gen_query_determinism () =
  Alcotest.(check (list string)) "random queries are seeded"
    (Workload.Gen_query.random ~seed:9 ~count:10)
    (Workload.Gen_query.random ~seed:9 ~count:10);
  Alcotest.(check bool) "seed changes the stream" true
    (Workload.Gen_query.random ~seed:9 ~count:10
     <> Workload.Gen_query.random ~seed:10 ~count:10)

let test_view_helpers () =
  let session = P.login P.beaufort in
  let view = Core.Session.view session in
  let doc = Core.Session.source session in
  Alcotest.(check int) "visible count excludes document node" 11
    (Core.View.visible_count view);
  Alcotest.(check bool) "is_restricted on masked text" true
    (Core.View.is_restricted view
       (P.find doc "tonsillitis"));
  Alcotest.(check bool) "is_restricted on plain node" false
    (Core.View.is_restricted view (P.find doc "franck"))

let () =
  Alcotest.run "deep"
    [
      ( "renderings",
        [
          Alcotest.test_case "tree view golden" `Quick test_tree_view_golden;
          Alcotest.test_case "facts golden" `Quick test_facts_golden;
          Alcotest.test_case "indented xml" `Quick test_indented_xml;
        ] );
      ( "policy language",
        [
          Alcotest.test_case "corners" `Quick test_policy_lang_corners;
          Alcotest.test_case "line numbers" `Quick
            test_policy_lang_reports_line_numbers;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "$USER in queries" `Quick
            test_user_variable_in_session_queries;
          Alcotest.test_case "view helpers" `Quick test_view_helpers;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "ordpath hash" `Quick test_ordpath_hash_consistent;
          Alcotest.test_case "ordpath set/map" `Quick test_ordpath_set_map;
          Alcotest.test_case "db union/equality" `Quick
            test_db_union_and_equality;
          Alcotest.test_case "gen_query determinism" `Quick
            test_gen_query_determinism;
        ] );
      ( "interactions",
        [
          Alcotest.test_case "insert after RESTRICTED" `Quick
            test_insert_relative_to_restricted_sibling;
          Alcotest.test_case "position-only policy" `Quick
            test_enforcer_position_only_policy;
          Alcotest.test_case "lazy view after update" `Quick
            test_lazy_view_after_update;
          Alcotest.test_case "admin feeds enforcer" `Quick
            test_admin_policy_feeds_enforcer;
        ] );
    ]
