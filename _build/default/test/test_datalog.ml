(* Tests for the Datalog engine: parsing, safety, stratification, and
   semi-naive vs naive evaluation. *)

module T = Datalog.Term
module C = Datalog.Clause

let solve_facts edb program pred =
  let db = Datalog.Eval.solve edb program in
  Datalog.Db.facts db pred

let program = Datalog.Parse.program

let edb_of_strings atoms =
  List.fold_left
    (fun db s -> Datalog.Db.add db (Datalog.Parse.atom s))
    Datalog.Db.empty atoms

let test_parse () =
  let c =
    Datalog.Parse.clause
      "perm(S, N, R) :- isa(S, S2), rule(accept, R, P, S2, T), not bad(S), T > 3."
  in
  Alcotest.(check string) "prints back"
    "perm(S, N, R) :- isa(S, S2), rule(accept, R, P, S2, T), not bad(S), T > 3."
    (C.to_string c);
  let facts = program "a(1). b(x, 'hello world'). c." in
  Alcotest.(check int) "three facts" 3 (List.length facts);
  (match program "p(X) :- q(X)" with
   | [ c ] -> Alcotest.(check string) "final period optional" "p(X) :- q(X)." (C.to_string c)
   | _ -> Alcotest.fail "expected one clause")

let test_parse_errors () =
  List.iter
    (fun src ->
      match program src with
      | exception Datalog.Parse.Error _ -> ()
      | _ -> Alcotest.failf "parse of %S should fail" src)
    [ "p(X :- q(X)."; "p(X) :- ."; "P(x)."; "p(X) q(X)."; "p(X) :- not not q(X)." ]

let test_safety () =
  let unsafe = [
    "p(X) :- q(Y).";
    "p(X) :- q(X), not r(Y).";
    "p(X) :- q(X), Y > 3.";
  ] in
  List.iter
    (fun src ->
      match Datalog.Eval.solve Datalog.Db.empty (program src) with
      | exception Datalog.Eval.Unsafe _ -> ()
      | _ -> Alcotest.failf "%S should be unsafe" src)
    unsafe

let test_transitive_closure () =
  let edb =
    edb_of_strings [ "edge(a, b)"; "edge(b, c)"; "edge(c, d)"; "edge(b, e)" ]
  in
  let prog =
    program "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."
  in
  let paths = solve_facts edb prog "path" in
  Alcotest.(check int) "8 paths" 8 (List.length paths);
  let db = Datalog.Eval.solve edb prog in
  Alcotest.(check bool) "a->d" true
    (Datalog.Db.mem db (Datalog.Parse.atom "path(a, d)"));
  Alcotest.(check bool) "no d->a" false
    (Datalog.Db.mem db (Datalog.Parse.atom "path(d, a)"))

let test_negation () =
  let edb = edb_of_strings [ "node(a)"; "node(b)"; "node(c)"; "edge(a, b)" ] in
  let prog =
    program
      {|reachable(X) :- edge(a, X).
        reachable(a) :- node(a).
        unreachable(X) :- node(X), not reachable(X).|}
  in
  let unreachable = solve_facts edb prog "unreachable" in
  Alcotest.(check (list string)) "only c"
    [ "c" ]
    (List.map (function [ T.Sym s ] -> s | _ -> "?") unreachable)

let test_unstratifiable () =
  let prog = program "p(X) :- q(X), not r(X). r(X) :- q(X), not p(X)." in
  match Datalog.Eval.solve (edb_of_strings [ "q(a)" ]) prog with
  | exception Datalog.Eval.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "expected Unstratifiable"

let test_comparisons () =
  let edb = edb_of_strings [ "n(1)"; "n(2)"; "n(3)"; "n(4)" ] in
  let prog = program "big(X) :- n(X), X > 2. pair(X, Y) :- n(X), n(Y), X < Y." in
  Alcotest.(check int) "big" 2 (List.length (solve_facts edb prog "big"));
  Alcotest.(check int) "pairs" 6 (List.length (solve_facts edb prog "pair"))

let test_builtin_priority_resolution () =
  (* A miniature of axiom 14. *)
  let edb =
    edb_of_strings
      [
        "rule(accept, read, n1, 10)";
        "rule(deny, read, n1, 11)";
        "rule(accept, read, n1, 12)";
        "rule(accept, read, n2, 5)";
        "priority(10)"; "priority(11)"; "priority(12)"; "priority(5)";
      ]
  in
  let prog =
    program
      {|cancelled(R, N, T) :- rule(deny, R, N, T2), priority(T), T2 > T.
        perm(N, R) :- rule(accept, R, N, T), not cancelled(R, N, T).|}
  in
  let db = Datalog.Eval.solve edb prog in
  Alcotest.(check bool) "n1 readable via priority 12" true
    (Datalog.Db.mem db (Datalog.Parse.atom "perm(n1, read)"));
  Alcotest.(check bool) "n2 readable" true
    (Datalog.Db.mem db (Datalog.Parse.atom "perm(n2, read)"));
  (* Remove the priority-12 accept: the deny at 11 must win. *)
  let edb2 =
    edb_of_strings
      [
        "rule(accept, read, n1, 10)";
        "rule(deny, read, n1, 11)";
        "priority(10)"; "priority(11)";
      ]
  in
  let db2 = Datalog.Eval.solve edb2 prog in
  Alcotest.(check bool) "deny wins" false
    (Datalog.Db.mem db2 (Datalog.Parse.atom "perm(n1, read)"))

let test_stratify () =
  let prog =
    program
      {|a(X) :- e(X).
        b(X) :- a(X), not c(X).
        c(X) :- e(X), not a(X).
        d(X) :- b(X), not c(X).|}
  in
  let strata = Datalog.Eval.stratify prog in
  let s p = List.assoc p strata in
  Alcotest.(check int) "a at 0" 0 (s "a");
  Alcotest.(check bool) "c above a" true (s "c" > s "a");
  Alcotest.(check bool) "b above c" true (s "b" > s "c");
  Alcotest.(check bool) "d above c" true (s "d" > s "c")

let test_db_matching () =
  let edb =
    edb_of_strings [ "f(a, 1)"; "f(a, 2)"; "f(b, 3)"; "g(a)" ]
  in
  Alcotest.(check int) "first-arg index" 2
    (List.length (Datalog.Db.matching edb "f" [ T.Sym "a"; T.Var "X" ]));
  Alcotest.(check int) "full scan" 3
    (List.length (Datalog.Db.matching edb "f" [ T.Var "A"; T.Var "X" ]));
  Alcotest.(check int) "ground second" 1
    (List.length (Datalog.Db.matching edb "f" [ T.Var "A"; T.Int 3 ]));
  Alcotest.(check int) "missing pred" 0
    (List.length (Datalog.Db.matching edb "h" [ T.Var "X" ]))

(* Differential: semi-naive vs naive on random edge sets. *)
let prop_semi_naive_matches_naive =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 30)
        (pair (int_range 0 8) (int_range 0 8)))
  in
  QCheck.Test.make ~count:100 ~name:"semi-naive = naive on closure+negation"
    (QCheck.make ~print:QCheck.Print.(list (pair int int)) gen)
    (fun edges ->
      let edb =
        List.fold_left
          (fun db (a, b) ->
            Datalog.Db.add_fact db "edge"
              [ T.Sym (Printf.sprintf "v%d" a); T.Sym (Printf.sprintf "v%d" b) ])
          Datalog.Db.empty edges
      in
      let edb =
        List.fold_left
          (fun db v -> Datalog.Db.add_fact db "vertex" [ T.Sym (Printf.sprintf "v%d" v) ])
          edb
          (List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges))
      in
      let prog =
        program
          {|path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            isolated(X) :- vertex(X), not path(X, X).|}
      in
      let a = Datalog.Eval.solve edb prog in
      let b = Datalog.Eval.naive_solve edb prog in
      Datalog.Db.equal_on "path" a b && Datalog.Db.equal_on "isolated" a b)

let () =
  Alcotest.run "datalog"
    [
      ( "parse",
        [
          Alcotest.test_case "clauses" `Quick test_parse;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "safety" `Quick test_safety;
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "unstratifiable" `Quick test_unstratifiable;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "priority resolution" `Quick
            test_builtin_priority_resolution;
          Alcotest.test_case "stratify" `Quick test_stratify;
          Alcotest.test_case "db matching" `Quick test_db_matching;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_semi_naive_matches_naive ] );
    ]
