module D = Xmldoc.Document

let readable_below doc perm id =
  Core.Perm.holds perm Core.Privilege.Read id
  || Seq.exists
       (fun (n : Xmldoc.Node.t) -> Core.Perm.holds perm Core.Privilege.Read n.id)
       (D.descendants_seq doc id)

let derive doc perm =
  D.fold
    (fun (n : Xmldoc.Node.t) view ->
      if n.kind = Xmldoc.Node.Document then view
      else if readable_below doc perm n.id then D.add_node view n
      else view)
    doc D.empty

let leaked_nodes doc perm =
  let view = derive doc perm in
  D.fold
    (fun (n : Xmldoc.Node.t) acc ->
      if
        n.kind <> Xmldoc.Node.Document
        && D.mem view n.id
        && not (Core.Perm.holds perm Core.Privilege.Read n.id)
      then n.id :: acc
      else acc)
    doc []
  |> List.rev
