exception Error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* Whitespace-separated words; double quotes group a path containing
   spaces. *)
let words_of_line line_no s =
  let n = String.length s in
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' -> loop (i + 1) acc
      | '#' -> List.rev acc
      | '"' ->
        let rec close j =
          if j >= n then fail line_no "unterminated quoted path"
          else if s.[j] = '"' then j
          else close (j + 1)
        in
        let stop = close (i + 1) in
        loop (stop + 1) (String.sub s (i + 1) (stop - i - 1) :: acc)
      | _ ->
        let rec word j =
          if j < n && s.[j] <> ' ' && s.[j] <> '\t' && s.[j] <> '#' then
            word (j + 1)
          else j
        in
        let stop = word i in
        loop stop (String.sub s i (stop - i) :: acc)
  in
  loop 0 []

let split_commas names = List.concat_map (String.split_on_char ',') names

let parse_subject_line line_no policy kind rest =
  match rest with
  | name :: tail ->
    let subjects = Policy.subjects policy in
    let subjects = Subject.add subjects kind name in
    let subjects =
      match tail with
      | [] -> subjects
      | "isa" :: supers when supers <> [] ->
        List.fold_left
          (fun s super ->
            try Subject.add_isa s ~sub:name ~super with
            | Subject.Unknown_subject s' -> fail line_no "unknown subject %s" s'
            | Subject.Cycle _ -> fail line_no "isa cycle through %s" name)
          subjects (split_commas supers)
      | _ -> fail line_no "expected: %s NAME [isa SUPER[,SUPER...]]"
               (match kind with Subject.Role -> "role" | Subject.User -> "user")
    in
    Policy.with_subjects policy subjects
  | [] -> fail line_no "expected a subject name"

let rule_of_words line_no ~default_priority decision rest =
  let privilege, rest =
    match rest with
    | p :: rest ->
      (match Privilege.of_string p with
       | Some priv -> (priv, rest)
       | None -> fail line_no "unknown privilege %s" p)
    | [] -> fail line_no "expected a privilege"
  in
  let path, rest =
    match rest with
    | "on" :: path :: rest -> (path, rest)
    | _ -> fail line_no "expected: on PATH"
  in
  let subject, rest =
    match rest with
    | "to" :: s :: rest -> (s, rest)
    | _ -> fail line_no "expected: to SUBJECT"
  in
  let priority =
    match rest with
    | [] -> default_priority ()
    | [ "priority"; p ] ->
      (match int_of_string_opt p with
       | Some i -> i
       | None -> fail line_no "bad priority %s" p)
    | _ -> fail line_no "trailing words after the rule"
  in
  try Rule.v decision privilege ~path ~subject ~priority with
  | Xpath.Parser.Error msg -> fail line_no "bad path %s: %s" path msg

let parse_rule_line line_no policy decision rest =
  let rule =
    rule_of_words line_no
      ~default_priority:(fun () -> Policy.next_priority policy)
      decision rest
  in
  try Policy.add_rule policy rule with
  | Subject.Unknown_subject s -> fail line_no "unknown subject %s" s
  | Invalid_argument msg -> fail line_no "%s" msg

let parse_rule ~priority src =
  match words_of_line 1 src with
  | "grant" :: rest ->
    rule_of_words 1 ~default_priority:(fun () -> priority) Rule.Accept rest
  | "deny" :: rest ->
    rule_of_words 1 ~default_priority:(fun () -> priority) Rule.Deny rest
  | w :: _ -> fail 1 "expected grant or deny, got %s" w
  | [] -> fail 1 "empty rule"

let parse_line line_no policy line =
  match words_of_line line_no line with
  | [] -> policy
  | "role" :: rest -> parse_subject_line line_no policy Subject.Role rest
  | "user" :: rest -> parse_subject_line line_no policy Subject.User rest
  | [ "isa"; sub; super ] ->
    (try
       Policy.with_subjects policy
         (Subject.add_isa (Policy.subjects policy) ~sub ~super)
     with
     | Subject.Unknown_subject s -> fail line_no "unknown subject %s" s
     | Subject.Cycle _ -> fail line_no "isa cycle through %s" sub)
  | "grant" :: rest -> parse_rule_line line_no policy Rule.Accept rest
  | "deny" :: rest -> parse_rule_line line_no policy Rule.Deny rest
  | word :: _ -> fail line_no "unknown directive %s" word

let parse src =
  let lines = String.split_on_char '\n' src in
  let policy, _ =
    List.fold_left
      (fun (policy, line_no) line -> (parse_line line_no policy line, line_no + 1))
      (Policy.empty, 1) lines
  in
  policy

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

let quote_path p = if String.contains p ' ' then "\"" ^ p ^ "\"" else p

let to_string policy =
  let buf = Buffer.create 256 in
  let subjects = Policy.subjects policy in
  (* Supers must be declared before the subjects referencing them. *)
  let rec topo emitted pending =
    if pending = [] then ()
    else
      let ready, blocked =
        List.partition
          (fun name ->
            List.for_all (fun s -> List.mem s emitted) (Subject.supers subjects name))
          pending
      in
      let ready = if ready = [] then pending else ready in
      List.iter
        (fun name ->
          let kw =
            match Subject.kind subjects name with
            | Some Subject.Role -> "role"
            | _ -> "user"
          in
          match Subject.supers subjects name with
          | [] -> Buffer.add_string buf (Printf.sprintf "%s %s\n" kw name)
          | ss ->
            Buffer.add_string buf
              (Printf.sprintf "%s %s isa %s\n" kw name (String.concat "," ss)))
        ready;
      if ready == pending then ()
      else topo (ready @ emitted) blocked
  in
  topo [] (Subject.subjects subjects);
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s on %s to %s priority %d\n"
           (match r.decision with Rule.Accept -> "grant" | Rule.Deny -> "deny")
           (Privilege.to_string r.privilege)
           (quote_path r.path_src) r.subject r.priority))
    (Policy.rules policy);
  Buffer.contents buf
