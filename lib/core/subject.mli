(** The subject hierarchy of §4.2: roles (internal nodes) and users
    (leaves), related by [isa].  {!ancestors} computes the reflexive and
    transitive closure of axioms 11–12, so a user acquires every rule
    granted or denied to the roles above it. *)

type kind = Role | User

type t
(** An immutable hierarchy.  [isa] edges may form any acyclic graph
    (a role can specialise several roles). *)

exception Unknown_subject of string
exception Cycle of string

val empty : t

val add : t -> kind -> string -> t
(** Declares a subject; re-declaring with the same kind is idempotent.
    @raise Invalid_argument when re-declaring with a different kind. *)

val add_role : t -> string -> t
val add_user : t -> string -> t

val add_isa : t -> sub:string -> super:string -> t
(** @raise Unknown_subject if either end is undeclared.
    @raise Cycle if the edge would create an [isa] cycle. *)

val remove_isa : t -> sub:string -> super:string -> t
(** Removes the direct [sub isa super] edge; removing an absent edge is
    the identity (mirroring {!Policy.revoke} on an unknown timestamp) —
    callers that must distinguish check {!has_isa_edge} first.
    @raise Unknown_subject if either end is undeclared. *)

val has_isa_edge : t -> sub:string -> super:string -> bool
(** Is there a {e direct} [isa] edge (not the transitive closure)? *)

val mem : t -> string -> bool
val kind : t -> string -> kind option
val subjects : t -> string list
(** Sorted. *)

val users : t -> string list
val roles : t -> string list
val supers : t -> string -> string list
(** Direct [isa] edges only. *)

val ancestors : t -> string -> string list
(** Reflexive-transitive closure, sorted: every [s'] with [isa(s, s')]. *)

val isa : t -> string -> string -> bool
(** Reflexive and transitive. *)

val of_list : (kind * string * string list) list -> t
(** [(kind, name, supers)] triples; supers must already be listed. *)

val pp : Format.formatter -> t -> unit
