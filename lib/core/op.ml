(* The transactional operation alphabet: a batch is a sequence of
   document mutations (XUpdate) and policy mutations (rule issue/retract,
   isa edge add/remove) in one commit order.  Policy ops carry explicit
   timestamps so journal replay re-issues exactly the rule the live
   commit issued — axiom 14 resolution depends on nothing else. *)

type policy_op =
  | Add_rule of Rule.t
  | Retract_rule of { priority : int }
  | Add_isa of { sub : string; super : string }
  | Remove_isa of { sub : string; super : string }

type t = Doc of Xupdate.Op.t | Policy of policy_op

let doc op = Doc op
let docs ops = List.map doc ops

let doc_ops ops =
  List.filter_map (function Doc o -> Some o | Policy _ -> None) ops

let is_policy = function Policy _ -> true | Doc _ -> false

let policy_kind = function
  | Add_rule _ -> "add_rule"
  | Retract_rule _ -> "retract_rule"
  | Add_isa _ -> "add_isa"
  | Remove_isa _ -> "remove_isa"

let name = function
  | Doc op -> Xupdate.Op.name op
  | Policy p -> policy_kind p

let pp_policy fmt = function
  | Add_rule r -> Format.fprintf fmt "add %a" Rule.pp r
  | Retract_rule { priority } -> Format.fprintf fmt "retract rule %d" priority
  | Add_isa { sub; super } -> Format.fprintf fmt "isa %s %s" sub super
  | Remove_isa { sub; super } ->
    Format.fprintf fmt "remove isa %s %s" sub super

let pp fmt = function
  | Doc op -> Format.fprintf fmt "xupdate:%s" (Xupdate.Op.name op)
  | Policy p -> pp_policy fmt p

(* Journal conversion.  The store is policy-agnostic, so rules travel as
   their wire fields; [of_journal] re-parses the path text with the same
   parser the live commit used, which makes replay deterministic. *)
let to_journal = function
  | Doc op -> Store.Journal.Doc op
  | Policy (Add_rule r) ->
    Store.Journal.Policy
      (Store.Journal.Padd
         {
           decision =
             (match r.Rule.decision with
              | Rule.Accept -> `Accept
              | Rule.Deny -> `Deny);
           privilege = Privilege.to_string r.privilege;
           path = r.path_src;
           subject = r.subject;
           priority = r.priority;
         })
  | Policy (Retract_rule { priority }) ->
    Store.Journal.Policy (Store.Journal.Pretract { priority })
  | Policy (Add_isa { sub; super }) ->
    Store.Journal.Policy (Store.Journal.Pisa { sub; super })
  | Policy (Remove_isa { sub; super }) ->
    Store.Journal.Policy (Store.Journal.Premove_isa { sub; super })

let of_journal = function
  | Store.Journal.Doc op -> Doc op
  | Store.Journal.Policy
      (Store.Journal.Padd { decision; privilege; path; subject; priority }) ->
    let privilege =
      match Privilege.of_string privilege with
      | Some p -> p
      | None ->
        (* scan-time validation makes this unreachable on journal input *)
        invalid_arg (Printf.sprintf "Op.of_journal: privilege %S" privilege)
    in
    let decision =
      match decision with `Accept -> Rule.Accept | `Deny -> Rule.Deny
    in
    Policy (Add_rule (Rule.v decision privilege ~path ~subject ~priority))
  | Store.Journal.Policy (Store.Journal.Pretract { priority }) ->
    Policy (Retract_rule { priority })
  | Store.Journal.Policy (Store.Journal.Pisa { sub; super }) ->
    Policy (Add_isa { sub; super })
  | Store.Journal.Policy (Store.Journal.Premove_isa { sub; super }) ->
    Policy (Remove_isa { sub; super })
