type entry = {
  mutable session : Session.t;
  mutable lazy_view : Lazy_view.t;
}

type t = {
  policy : Policy.t;
  mutable source : Xmldoc.Document.t;
  lock : Mutex.t;
      (* guards [sessions] (and [source]/[writes] writes): pool workers
         never touch the table, but login can race a broadcast snapshot *)
  sessions : (string, entry) Hashtbl.t;
  mutable writes : int;
  pool : Pool.t;
  persist : Store.t option;
      (* write-ahead journal: every committed batch is appended before it
         becomes visible to readers *)
}

(* Server-level instrumentation; per-stage spans come from Session,
   Secure_update and Lazy_view. *)
let m_queries =
  Obs.Metrics.counter Obs.Metrics.default "serve_queries_total"
    ~help:"Queries served on lazy views"

let m_updates =
  Obs.Metrics.counter Obs.Metrics.default "serve_updates_total"
    ~help:"Secure updates applied through the server"

let m_fanout =
  Obs.Metrics.counter Obs.Metrics.default "serve_broadcast_sessions_total"
    ~help:"Per-session delta rebases caused by broadcasts"

let m_rebase_incremental =
  Obs.Metrics.counter Obs.Metrics.default "serve_rebase_incremental_total"
    ~help:"Broadcast rebases that stayed delta-scoped (policy-local)"

let m_rebase_full =
  Obs.Metrics.counter Obs.Metrics.default "serve_rebase_full_total"
    ~help:"Broadcast rebases widened to a full refresh (non-local rules)"

let h_query =
  Obs.Metrics.histogram Obs.Metrics.default "serve_query_seconds"
    ~help:"End-to-end query latency (parse + lazy evaluation)"

let h_update =
  Obs.Metrics.histogram Obs.Metrics.default "serve_update_seconds"
    ~help:"End-to-end update latency (secure apply + broadcast)"

let h_broadcast =
  Obs.Metrics.histogram Obs.Metrics.default "serve_broadcast_seconds"
    ~help:"Broadcast fan-out latency (all non-writer rebases)"

let g_sessions =
  Obs.Metrics.gauge Obs.Metrics.default "serve_sessions"
    ~help:"Currently logged-in sessions"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Call with the lock held (or from single-threaded setup paths). *)
let sync_session_gauge t =
  Obs.Metrics.set_gauge g_sessions (float (Hashtbl.length t.sessions))

let create ?(pool = Pool.create 1) ?persist policy source =
  {
    policy;
    source;
    lock = Mutex.create ();
    sessions = Hashtbl.create 8;
    writes = 0;
    pool;
    persist;
  }

let pool t = t.pool
let persist t = t.persist

let fresh_entry t ~user =
  let session = Session.login t.policy t.source ~user in
  { session; lazy_view = Lazy_view.of_session session }

let login t ~user =
  if not (locked t (fun () -> Hashtbl.mem t.sessions user)) then begin
    let e = fresh_entry t ~user in
    locked t (fun () ->
        if not (Hashtbl.mem t.sessions user) then
          Hashtbl.replace t.sessions user e;
        sync_session_gauge t)
  end

(* Login-time fan-out: conflict resolution ([Perm.compute], inside
   [Session.login]) is the expensive part and is independent per user, so
   fresh sessions build on the pool and register under the lock
   afterwards.  All-or-nothing: if any login raises, none of this batch's
   fresh sessions is registered. *)
let login_many t users =
  let users = List.sort_uniq String.compare users in
  let fresh =
    locked t (fun () ->
        List.filter (fun u -> not (Hashtbl.mem t.sessions u)) users)
  in
  let arr = Array.of_list fresh in
  let out = Array.make (Array.length arr) None in
  Pool.run t.pool
    (List.init (Array.length arr) (fun i _slot ->
         out.(i) <- Some (fresh_entry t ~user:arr.(i))));
  locked t (fun () ->
      Array.iteri
        (fun i entry ->
          match entry with
          | Some e ->
            if not (Hashtbl.mem t.sessions arr.(i)) then
              Hashtbl.replace t.sessions arr.(i) e
          | None -> ())
        out;
      sync_session_gauge t)

let logout t ~user =
  locked t (fun () ->
      Hashtbl.remove t.sessions user;
      sync_session_gauge t)

let users t =
  List.sort String.compare
    (locked t (fun () ->
         Hashtbl.fold (fun user _ acc -> user :: acc) t.sessions []))

let source t = t.source
let policy t = t.policy
let writes t = t.writes

let entry t ~user =
  match locked t (fun () -> Hashtbl.find_opt t.sessions user) with
  | Some e -> e
  | None ->
    login t ~user;
    locked t (fun () -> Hashtbl.find t.sessions user)

let session t ~user = (entry t ~user).session
let lazy_view t ~user = (entry t ~user).lazy_view
let view t ~user = Session.view (session t ~user)

let query t ~user q =
  Obs.Metrics.inc m_queries;
  Obs.Metrics.time h_query @@ fun () ->
  Obs.Trace.with_span "serve.query" @@ fun () ->
  Obs.Trace.annotate "user" user;
  let e = entry t ~user in
  let expr =
    Obs.Trace.with_span "xpath.parse" (fun () -> Xpath.Parser.parse_path q)
  in
  let ids =
    Obs.Trace.with_span "query.eval" (fun () ->
        Lazy_view.select ~vars:(Session.user_vars e.session) e.lazy_view expr)
  in
  if Obs.Audit.enabled () then
    Obs.Audit.record Obs.Audit.default ~user ~action:"query" ~privilege:"read"
      ~target:q
      ~detail:(Printf.sprintf "%d node(s) on the lazy view" (List.length ids))
      Obs.Audit.Allowed;
  ids

let rebase_entry ?slot ?txn source delta e =
  Obs.Metrics.inc m_fanout;
  Obs.Trace.with_span "session.rebase" @@ fun () ->
  (match slot with
   | Some slot -> Obs.Trace.annotate "domain" (string_of_int slot)
   | None -> ());
  let session = Session.apply_delta e.session source delta in
  Obs.Trace.annotate "user" (Session.user session);
  (* apply_delta widens internally for non-local sessions; the lazy memo
     must be widened the same way, as its entries depend on the same
     locality argument. *)
  let lazy_delta =
    if Session.policy_local session then begin
      Obs.Metrics.inc m_rebase_incremental;
      Obs.Trace.annotate "mode" "incremental";
      delta
    end
    else begin
      Obs.Metrics.inc m_rebase_full;
      Obs.Trace.annotate "mode" "full-refresh";
      Delta.all
    end
  in
  (* Pool workers run on other domains, where the ambient correlation id
     is absent — the writer's id travels explicitly. *)
  Obs.Events.emit ?txn
    (Obs.Events.Rebase
       {
         user = Session.user session;
         mode =
           (if Session.policy_local session then "incremental"
            else "full-refresh");
       });
  e.session <- session;
  e.lazy_view <-
    Lazy_view.rebase e.lazy_view source (Session.perm session) lazy_delta

type committed = {
  reports : Secure_update.report list;
  delta : Delta.t;
}

(* Every mutation routes through here: one Txn.commit staging the whole
   batch on the writer's view, then — only on success — journal append,
   registration under the lock, and a single per-batch broadcast fan-out
   of the merged delta (one rebase per session per batch, not per op). *)
let commit ?(on_denial = `Abort) t ~user ops =
  let t0 = Obs.Mono.now () in
  Obs.Trace.with_span "serve.commit" @@ fun () ->
  Obs.Trace.annotate "user" user;
  Obs.Trace.annotate "ops" (string_of_int (List.length ops));
  (* One correlation id covers the whole write: Txn.commit reuses the
     ambient id, and the journal append / fsync / snapshot events inside
     Store.append inherit it from the same scope. *)
  let txn = Obs.Events.next_txn () in
  Obs.Events.with_txn txn @@ fun () ->
  let e = entry t ~user in
  match Txn.commit ~on_denial e.session ops with
  | Error _ as err -> err
  | Ok { Txn.session = session'; reports; delta } ->
    let source' = Session.source session' in
    (* Durability before visibility: the batch is in the journal before
       any reader can observe it. *)
    (match t.persist with
     | Some store when reports <> [] ->
       let mode =
         match on_denial with `Abort -> `Atomic | `Tolerate -> `Tolerant
       in
       ignore (Store.append store ~user ~mode ~doc:source' ops)
     | _ -> ());
    locked t (fun () ->
        t.source <- source';
        t.writes <- t.writes + List.length reports);
    Obs.Metrics.add m_updates (List.length reports);
    (* The writer's session is already rebased by the transaction; its
       lazy view and every other session get the merged delta. *)
    e.session <- session';
    let lazy_delta =
      if Session.policy_local session' then begin
        Obs.Metrics.inc m_rebase_incremental;
        delta
      end
      else begin
        Obs.Metrics.inc m_rebase_full;
        Delta.all
      end
    in
    e.lazy_view <-
      Obs.Trace.with_span "lazy_view.rebase" (fun () ->
          Lazy_view.rebase e.lazy_view source' (Session.perm session')
            lazy_delta);
    (* Fan-out over a lock-free snapshot: entries are disjoint per user,
       so workers never contend; pool size 1 reproduces the sequential
       broadcast exactly. *)
    let others =
      locked t (fun () ->
          Hashtbl.fold
            (fun other e' acc ->
              if String.equal other user then acc else e' :: acc)
            t.sessions [])
    in
    if reports <> [] then
      Obs.Metrics.time h_broadcast (fun () ->
          Obs.Trace.with_span "serve.broadcast" (fun () ->
              Obs.Trace.annotate "sessions"
                (string_of_int (List.length others));
              Obs.Trace.annotate "pool" (string_of_int (Pool.size t.pool));
              Obs.Events.emit
                (Obs.Events.Broadcast { sessions = List.length others });
              Pool.run t.pool
                (List.map
                   (fun e' slot -> rebase_entry ~slot ~txn source' delta e')
                   others)));
    Obs.Metrics.observe h_update (Obs.Mono.now () -. t0);
    Ok { reports; delta }

(* The historical per-op entry point, now a thin tolerant wrapper: §4.4.2
   semantics (partial per-target denials stay in the report) over a
   single-op transaction. *)
let update t ~user op =
  match commit ~on_denial:`Tolerate t ~user [ op ] with
  | Ok { reports = [ report ]; _ } -> report
  | Ok _ -> assert false
  | Error (Txn.Failed { exn; _ }) -> raise exn
  | Error err -> raise (Txn.Aborted err)

let update_all t ~user ops =
  match commit ~on_denial:`Tolerate t ~user ops with
  | Ok { reports; _ } -> reports
  | Error (Txn.Failed { exn; _ }) -> raise exn
  | Error err -> raise (Txn.Aborted err)
