type entry = {
  mutable session : Session.t;
  mutable lazy_view : Lazy_view.t;
}

type t = {
  policy : Policy.t;
  mutable source : Xmldoc.Document.t;
  sessions : (string, entry) Hashtbl.t;
  mutable writes : int;
}

let create policy source = { policy; source; sessions = Hashtbl.create 8; writes = 0 }

let login t ~user =
  if not (Hashtbl.mem t.sessions user) then begin
    let session = Session.login t.policy t.source ~user in
    Hashtbl.replace t.sessions user
      { session; lazy_view = Lazy_view.of_session session }
  end

let logout t ~user = Hashtbl.remove t.sessions user

let users t =
  List.sort String.compare
    (Hashtbl.fold (fun user _ acc -> user :: acc) t.sessions [])

let source t = t.source
let policy t = t.policy
let writes t = t.writes

let entry t ~user =
  login t ~user;
  Hashtbl.find t.sessions user

let session t ~user = (entry t ~user).session
let lazy_view t ~user = (entry t ~user).lazy_view
let view t ~user = Session.view (session t ~user)

let query t ~user q =
  let e = entry t ~user in
  Lazy_view.select_str
    ~vars:(Session.user_vars e.session)
    e.lazy_view q

let rebase_entry source delta e =
  let session = Session.apply_delta e.session source delta in
  (* apply_delta widens internally for non-local sessions; the lazy memo
     must be widened the same way, as its entries depend on the same
     locality argument. *)
  let lazy_delta = if Session.policy_local session then delta else Delta.all in
  e.session <- session;
  e.lazy_view <-
    Lazy_view.rebase e.lazy_view source (Session.perm session) lazy_delta

let update t ~user op =
  let e = entry t ~user in
  let session', report = Secure_update.apply e.session op in
  t.source <- Session.source session';
  t.writes <- t.writes + 1;
  (* The writer's session is already rebased by Secure_update; its lazy
     view and every other session get the broadcast delta. *)
  e.session <- session';
  let lazy_delta =
    if Session.policy_local session' then report.Secure_update.delta
    else Delta.all
  in
  e.lazy_view <-
    Lazy_view.rebase e.lazy_view t.source (Session.perm session') lazy_delta;
  Hashtbl.iter
    (fun other e' ->
      if not (String.equal other user) then
        rebase_entry t.source report.Secure_update.delta e')
    t.sessions;
  report

let update_all t ~user ops = List.map (update t ~user) ops

let cache_stats t ~user =
  let lv = lazy_view t ~user in
  (Lazy_view.hits lv, Lazy_view.misses lv)
