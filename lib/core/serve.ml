(* Permission-equivalence classes (see Perm.profile): users whose
   applicable rules are identical and $USER-free provably resolve to the
   same decision store, the same materialised view and the same lazy
   visibility — so the server keeps ONE shared state per class (the
   representative session + lazy view) and a thin per-user handle.
   Logins, broadcast rebases and memory all scale with the number of
   distinct permission profiles, not the number of sessions.  Users with
   a $USER rule form singleton classes and behave exactly as before. *)

type shared = {
  profile : string;
  mutable rep : Session.t;
      (* representative session; its identity is the first member that
         created the class (member handles impersonate it on demand) *)
  mutable lazy_view : Lazy_view.t;
  mutable members : int;
}

type entry = { user : string; cls : shared }

type t = {
  mutable policy : Policy.t;
      (* the current policy; rewritten (under the lock, together with the
         class table re-key) by every committed batch that carries policy
         ops *)
  mutable clock : int;
      (* administration timestamp allocator (paper §4.3: priorities ARE
         timestamps).  Monotonic and never reused, even across retracts
         and aborted batches — a recycled priority would collide in
         Perm.profile strings and Rulestats keys *)
  mutable source : Xmldoc.Document.t;
  mutable flat : Xmldoc.Flat.t;
      (* frozen columnar snapshot of [source], republished with it on
         every commit (epoch-style): readers fold the arrays, the writer
         path mutates the map-backed store and freezes once per batch *)
  lock : Mutex.t;
      (* guards [sessions]/[classes]/[plans] (and [source]/[writes]
         writes): pool workers never touch the tables, but login can race
         a broadcast snapshot *)
  sessions : (string, entry) Hashtbl.t;
  classes : (string, shared) Hashtbl.t;  (* Perm.profile -> shared state *)
  plans : (string, Rewrite.t) Hashtbl.t;
      (* query text -> compiled rewrite; plans are user- and
         policy-independent, so one cache serves every session *)
  rule_descs : (int, string) Hashtbl.t;
      (* priority -> rendered rule; priorities are unique within the
         policy, and rendering a rule is too slow for every plan record *)
  mutable writes : int;
  pool : Pool.t;
  persist : Store.t option;
      (* write-ahead journal: every committed batch is appended before it
         becomes visible to readers *)
}

(* Server-level instrumentation; per-stage spans come from Session,
   Secure_update and Lazy_view. *)
let m_queries =
  Obs.Metrics.counter Obs.Metrics.default "serve_queries_total"
    ~help:"Queries served on lazy views"

let m_updates =
  Obs.Metrics.counter Obs.Metrics.default "serve_updates_total"
    ~help:"Secure updates applied through the server"

let m_fanout =
  Obs.Metrics.counter Obs.Metrics.default "serve_broadcast_sessions_total"
    ~help:"Per-class delta rebases caused by broadcasts"

let m_rebase_incremental =
  Obs.Metrics.counter Obs.Metrics.default "serve_rebase_incremental_total"
    ~help:"Broadcast rebases that stayed delta-scoped (policy-local)"

let m_rebase_full =
  Obs.Metrics.counter Obs.Metrics.default "serve_rebase_full_total"
    ~help:"Broadcast rebases widened to a full refresh (non-local rules)"

let h_query =
  Obs.Metrics.histogram Obs.Metrics.default "serve_query_seconds"
    ~help:"End-to-end query latency (parse + lazy evaluation)"

let h_update =
  Obs.Metrics.histogram Obs.Metrics.default "serve_update_seconds"
    ~help:"End-to-end update latency (secure apply + broadcast)"

let h_broadcast =
  Obs.Metrics.histogram Obs.Metrics.default "serve_broadcast_seconds"
    ~help:"Broadcast fan-out latency (all non-writer rebases)"

let g_sessions =
  Obs.Metrics.gauge Obs.Metrics.default "serve_sessions"
    ~help:"Currently logged-in sessions"

let g_classes =
  Obs.Metrics.gauge Obs.Metrics.default "serve_permission_classes"
    ~help:"Distinct permission-equivalence classes among logged sessions"

let g_document_nodes =
  Obs.Metrics.gauge Obs.Metrics.default "document_nodes"
    ~help:"Nodes in the published source snapshot (document node included)"

let g_flat_bytes =
  Obs.Metrics.gauge Obs.Metrics.default "flat_bytes"
    ~help:"Approximate heap footprint of the published columnar snapshot"

let m_flat_freezes =
  Obs.Metrics.counter Obs.Metrics.default "flat_freezes_total"
    ~help:"Columnar snapshots frozen (one per server start or committed batch)"

let m_class_splits =
  Obs.Metrics.counter Obs.Metrics.default "serve_class_splits_total"
    ~help:"Permission-equivalence classes split by policy churn \
           (one old class fed several new profiles)"

let m_class_merges =
  Obs.Metrics.counter Obs.Metrics.default "serve_class_merges_total"
    ~help:"Permission-equivalence classes merged by policy churn \
           (several old classes collapsed into one profile)"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Call with the lock held (or from single-threaded setup paths). *)
let sync_gauges t =
  Obs.Metrics.set_gauge g_sessions (float (Hashtbl.length t.sessions));
  Obs.Metrics.set_gauge g_classes (float (Hashtbl.length t.classes))

let freeze source =
  let flat =
    Obs.Trace.with_span "flat.freeze" (fun () -> Xmldoc.Flat.of_document source)
  in
  Obs.Metrics.inc m_flat_freezes;
  Obs.Metrics.set_gauge g_document_nodes (float (Xmldoc.Flat.size flat));
  Obs.Metrics.set_gauge g_flat_bytes (float (Xmldoc.Flat.bytes flat));
  flat

let create ?pool ?persist policy source =
  let pool = match pool with Some p -> p | None -> Pool.of_env () in
  {
    policy;
    clock = Policy.next_priority policy;
    source;
    flat = freeze source;
    lock = Mutex.create ();
    sessions = Hashtbl.create 8;
    classes = Hashtbl.create 8;
    plans = Hashtbl.create 8;
    rule_descs = Hashtbl.create 8;
    writes = 0;
    pool;
    persist;
  }

let pool t = t.pool
let persist t = t.persist

let check_known t ~user =
  if not (Subject.mem (Policy.subjects t.policy) user) then
    raise (Session.Unknown_user user)

(* The (source, flat) pair must come from one consistent epoch — callers
   either hold the lock or snapshot the pair with {!snapshot} first. *)
let fresh_shared t ~source ~flat ~profile ~user =
  let rep = Session.login ~flat t.policy source ~user in
  if Obs.Rulestats.enabled () then
    Obs.Rulestats.note_class ~profile
      ~keys:
        (List.map
           (fun (r : Rule.t) -> r.Rule.priority)
           (Policy.rules_for t.policy ~user));
  { profile; rep; lazy_view = Lazy_view.of_session ~flat rep; members = 0 }

let snapshot t = locked t (fun () -> (t.source, t.flat))

(* Call with the lock held: binds [user] to its class (which must be in
   [t.classes]). *)
let register t ~user cls =
  cls.members <- cls.members + 1;
  if Obs.Rulestats.enabled () then
    Obs.Rulestats.note_member ~profile:cls.profile;
  Hashtbl.replace t.sessions user { user; cls }

let login t ~user =
  if not (locked t (fun () -> Hashtbl.mem t.sessions user)) then begin
    check_known t ~user;
    let profile = Perm.profile t.policy ~user in
    (* The expensive representative login happens outside the lock; the
       class table is re-checked under the lock (another thread may have
       created — or drained — the class meanwhile). *)
    let prebuilt =
      if locked t (fun () -> Hashtbl.mem t.classes profile) then None
      else begin
        let source, flat = snapshot t in
        Some (fresh_shared t ~source ~flat ~profile ~user)
      end
    in
    locked t (fun () ->
        if not (Hashtbl.mem t.sessions user) then begin
          let cls =
            match Hashtbl.find_opt t.classes profile with
            | Some cls -> cls
            | None ->
              let cls =
                match prebuilt with
                | Some cls -> cls
                | None ->
                  fresh_shared t ~source:t.source ~flat:t.flat ~profile ~user
              in
              Hashtbl.replace t.classes profile cls;
              cls
          in
          register t ~user cls;
          sync_gauges t
        end)
  end

(* Login-time fan-out: conflict resolution ([Perm.compute], inside
   [Session.login]) is the expensive part and is needed once per NEW
   permission class, not once per user — representative logins run on the
   pool, then every fresh user binds to its class under the lock.
   All-or-nothing: if any representative login raises, no fresh session
   from this batch is registered. *)
let login_many t users =
  let users = List.sort_uniq String.compare users in
  let fresh =
    locked t (fun () ->
        List.filter (fun u -> not (Hashtbl.mem t.sessions u)) users)
  in
  List.iter (fun user -> check_known t ~user) fresh;
  let profiles =
    List.map (fun u -> (u, Perm.profile t.policy ~user:u)) fresh
  in
  let need =
    let seen = Hashtbl.create 16 in
    locked t (fun () ->
        List.filter
          (fun (_, p) ->
            if Hashtbl.mem t.classes p || Hashtbl.mem seen p then false
            else begin
              Hashtbl.add seen p ();
              true
            end)
          profiles)
  in
  let arr = Array.of_list need in
  let built = Array.make (Array.length arr) None in
  let source, flat = snapshot t in
  Pool.run t.pool
    (List.init (Array.length arr) (fun i _slot ->
         let user, profile = arr.(i) in
         built.(i) <- Some (fresh_shared t ~source ~flat ~profile ~user)));
  locked t (fun () ->
      Array.iter
        (function
          | Some cls ->
            if not (Hashtbl.mem t.classes cls.profile) then
              Hashtbl.replace t.classes cls.profile cls
          | None -> ())
        built;
      List.iter
        (fun (user, profile) ->
          if not (Hashtbl.mem t.sessions user) then begin
            let cls =
              match Hashtbl.find_opt t.classes profile with
              | Some cls -> cls
              | None ->
                (* the class was drained by a concurrent logout between
                   the [need] probe and here: rebuild under the lock *)
                let cls =
                  fresh_shared t ~source:t.source ~flat:t.flat ~profile ~user
                in
                Hashtbl.replace t.classes profile cls;
                cls
            in
            register t ~user cls
          end)
        profiles;
      sync_gauges t)

let logout t ~user =
  locked t (fun () ->
      (match Hashtbl.find_opt t.sessions user with
       | Some e ->
         Hashtbl.remove t.sessions user;
         e.cls.members <- e.cls.members - 1;
         if e.cls.members <= 0 then Hashtbl.remove t.classes e.cls.profile
       | None -> ());
      sync_gauges t)

let users t =
  List.sort String.compare
    (locked t (fun () ->
         Hashtbl.fold (fun user _ acc -> user :: acc) t.sessions []))

let classes t = locked t (fun () -> Hashtbl.length t.classes)

let source t = t.source
let policy t = t.policy
let writes t = t.writes

(* Administration timestamps: the next unused priority, never recycled.
   Reading [Policy.next_priority] alone would not do — after a retract
   the policy's max priority drops, and reissuing a spent timestamp
   would violate the paper's total recency order (and collide in
   Perm.profile strings and Rulestats keys). *)
let fresh_priority t =
  locked t (fun () ->
      let p = max t.clock (Policy.next_priority t.policy) in
      t.clock <- p + 1;
      p)

let entry t ~user =
  match locked t (fun () -> Hashtbl.find_opt t.sessions user) with
  | Some e -> e
  | None ->
    login t ~user;
    locked t (fun () -> Hashtbl.find t.sessions user)

let session t ~user = Session.impersonate (entry t ~user).cls.rep ~user
let lazy_view t ~user = (entry t ~user).cls.lazy_view
let view t ~user = Session.view (session t ~user)

(* Compiled rewrite plans are keyed by query text and shared across every
   session: a downward plan cannot mention $USER and never depends on the
   policy (the visibility product happens at evaluation time). *)
let plan_for t q =
  match locked t (fun () -> Hashtbl.find_opt t.plans q) with
  | Some plan -> plan
  | None ->
    let plan =
      Obs.Trace.with_span "xpath.parse" (fun () -> Rewrite.plan_str q)
    in
    locked t (fun () ->
        match Hashtbl.find_opt t.plans q with
        | Some plan -> plan
        | None ->
          Hashtbl.replace t.plans q plan;
          plan)

(* Rendering a rule runs the Format machinery — far too slow per plan
   record, and queries keep resolving to the same few rules, so the
   rendered strings are memoised by priority for the server's lifetime. *)
let rule_desc t (r : Rule.t) =
  locked t (fun () ->
      match Hashtbl.find_opt t.rule_descs r.Rule.priority with
      | Some desc -> desc
      | None ->
        let desc = Format.asprintf "%a" Rule.pp r in
        Hashtbl.replace t.rule_descs r.Rule.priority desc;
        desc)

(* Deciding rules over (a bounded prefix of) the answer set: which rules
   actually granted Read on what the query returned.  Bounded so a
   100k-answer query costs at most [budget] binary searches of telemetry
   overhead. *)
let deciding_rules_of t perm ids ~budget =
  let seen = Hashtbl.create 8 in
  let rec go budget acc = function
    | [] -> List.rev acc
    | _ when budget <= 0 -> List.rev acc
    | id :: rest -> (
      match Perm.deciding_rule perm Privilege.Read id with
      | Some (r : Rule.t) when not (Hashtbl.mem seen r.Rule.priority) ->
        Hashtbl.add seen r.Rule.priority ();
        go (budget - 1) (rule_desc t r :: acc) rest
      | _ -> go (budget - 1) acc rest)
  in
  go budget [] ids

let query t ~user q =
  Obs.Metrics.inc m_queries;
  Obs.Trace.with_span "serve.query" @@ fun () ->
  Obs.Trace.annotate "user" user;
  let t0 = Obs.Mono.now () in
  let e = entry t ~user in
  let plan = plan_for t q in
  let stats =
    if Obs.Planlog.enabled () then Some (Xpath.Compile.stats ()) else None
  in
  let ids =
    Obs.Trace.with_span "query.eval" (fun () ->
        Rewrite.select
          ~vars:[ ("USER", Xpath.Value.Str user) ]
          ?stats plan e.cls.lazy_view)
  in
  let seconds = Obs.Mono.now () -. t0 in
  Obs.Metrics.observe h_query seconds;
  if Obs.Timeseries.enabled () then
    Obs.Timeseries.observe Obs.Timeseries.default "query_seconds" seconds;
  let answers = lazy (List.length ids) in
  (match stats with
  | Some s ->
    ignore
      (Obs.Planlog.record ~user ~query:q
         ~compiled:(Rewrite.compiled plan)
         ~states:s.Xpath.Compile.states ~visited:s.Xpath.Compile.visited
         ~pruned:s.Xpath.Compile.pruned
         ~answers:(Lazy.force answers)
         ~rules:(deciding_rules_of t (Session.perm e.cls.rep) ids ~budget:16)
         ~cls:e.cls.profile ~seconds)
  | None -> ());
  if Obs.Audit.enabled () then
    Obs.Audit.record Obs.Audit.default ~user ~action:"query" ~privilege:"read"
      ~target:q
      ~detail:
        (Printf.sprintf "%d node(s), %s path" (Lazy.force answers)
           (if Rewrite.compiled plan then "rewritten" else "fallback"))
      Obs.Audit.Allowed;
  ids

let rebase_class ?slot ?txn ~flat source delta cls =
  Obs.Metrics.inc m_fanout;
  Obs.Trace.with_span "session.rebase" @@ fun () ->
  (match slot with
   | Some slot -> Obs.Trace.annotate "domain" (string_of_int slot)
   | None -> ());
  let session = Session.apply_delta ~flat cls.rep source delta in
  Obs.Trace.annotate "user" (Session.user session);
  (* apply_delta widens internally for non-local sessions; the lazy memo
     must be widened the same way, as its entries depend on the same
     locality argument. *)
  let lazy_delta =
    if Session.policy_local session then begin
      Obs.Metrics.inc m_rebase_incremental;
      Obs.Trace.annotate "mode" "incremental";
      delta
    end
    else begin
      Obs.Metrics.inc m_rebase_full;
      Obs.Trace.annotate "mode" "full-refresh";
      Delta.all
    end
  in
  (* Pool workers run on other domains, where the ambient correlation id
     is absent — the writer's id travels explicitly. *)
  Obs.Events.emit ?txn
    (Obs.Events.Rebase
       {
         user = Session.user session;
         mode =
           (if Session.policy_local session then "incremental"
            else "full-refresh");
       });
  cls.rep <- session;
  cls.lazy_view <-
    Lazy_view.rebase ~flat cls.lazy_view source (Session.perm session)
      lazy_delta

type committed = {
  reports : Secure_update.report list;
  delta : Delta.t;
  policy_denials : Txn.policy_denial list;
  policy_changed : bool;
}

(* Policy churn re-keys the permission-equivalence classes: a profile is
   a function of the policy (the user's applicable-rule list), so rule
   or isa churn can SPLIT a class — two users whose rules were identical
   now differ — or MERGE classes whose rules collapsed to the same list.
   The rekey regroups the logged-in population by new profile and builds
   one shared state per group, rebasing per CLASS, not per session:

     - a group containing the writer's (new) profile reuses the staged
       writer session — its perm was already re-resolved incrementally
       during staging (Perm.update_policy);
     - every other group rebases one old representative onto the new
       document (apply_delta) and the new policy (apply_policy, again
       the incremental path);
     - a lazy view migrates by [Lazy_view.rebase] only when its old
       class fed exactly ONE new profile (rebasing shares the memo
       table, so one lazy view must be rebased at most once); groups fed
       by a split or a merge rebuild with [Lazy_view.of_session].

   Group builds are pure and run on the pool, like login fan-outs. *)
let rekey t ~txn ~flat ~source ~delta ~policy ~writer ~writer_cls
    ~writer_pdelta =
  Obs.Trace.with_span "serve.rekey" @@ fun () ->
  let entries =
    locked t (fun () ->
        Hashtbl.fold (fun _ e acc -> e :: acc) t.sessions [])
  in
  let groups : (string, (string * shared) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun e ->
      let profile = Perm.profile policy ~user:e.user in
      match Hashtbl.find_opt groups profile with
      | Some l -> l := (e.user, e.cls) :: !l
      | None -> Hashtbl.add groups profile (ref [ (e.user, e.cls) ]))
    entries;
  (* Old profile -> new profiles it feeds; drives both the split/merge
     counters and the sole-feeder lazy-view migration rule. *)
  let feeds : (string, string list ref) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun profile members ->
      List.iter
        (fun ((_, old) : string * shared) ->
          match Hashtbl.find_opt feeds old.profile with
          | Some ps -> if not (List.mem profile !ps) then ps := profile :: !ps
          | None -> Hashtbl.add feeds old.profile (ref [ profile ]))
        !members)
    groups;
  let splits =
    Hashtbl.fold
      (fun _ ps acc -> if List.length !ps > 1 then acc + 1 else acc)
      feeds 0
  in
  let merges =
    Hashtbl.fold
      (fun _ members acc ->
        let olds =
          List.sort_uniq String.compare
            (List.map (fun ((_, o) : string * shared) -> o.profile) !members)
        in
        if List.length olds > 1 then acc + 1 else acc)
      groups 0
  in
  let sole_feeder (old : shared) profile =
    match Hashtbl.find_opt feeds old.profile with
    | Some ps -> ( match !ps with [ p ] -> String.equal p profile | _ -> false)
    | None -> false
  in
  let writer_user = Session.user writer in
  let writer_profile = Perm.profile policy ~user:writer_user in
  let group_list =
    Hashtbl.fold (fun profile members acc -> (profile, !members) :: acc)
      groups []
  in
  let arr = Array.of_list group_list in
  let built = Array.make (Array.length arr) None in
  let build i =
    let profile, members = arr.(i) in
    Obs.Metrics.inc m_fanout;
    (* The lazy-view donor [old0] must be the class whose perm change the
       rebase delta actually covers: for the writer's group that is the
       writer's OLD class (writer_pdelta spans exactly its re-resolution);
       any other old class merged into this profile would need its own
       old->new delta, which we don't have. *)
    let rep', pdelta, old0 =
      if String.equal profile writer_profile then
        (writer, writer_pdelta, writer_cls)
      else begin
        let user0, old0 = List.hd members in
        let rep = Session.impersonate old0.rep ~user:user0 in
        let rep =
          Obs.Trace.with_span "session.rebase" (fun () ->
              Session.apply_delta ~flat rep source delta)
        in
        let rep', pdelta =
          Obs.Trace.with_span "session.rekey" (fun () ->
              Session.apply_policy ~flat rep policy)
        in
        (rep', pdelta, old0)
      end
    in
    let combined = Delta.union delta pdelta in
    let lazy_delta =
      if Session.policy_local rep' then combined else Delta.all
    in
    Obs.Metrics.inc
      (match lazy_delta with
       | Delta.All -> m_rebase_full
       | Delta.Local _ -> m_rebase_incremental);
    let lazy_view =
      if sole_feeder old0 profile then
        Obs.Trace.with_span "lazy_view.rebase" (fun () ->
            Lazy_view.rebase ~flat old0.lazy_view source (Session.perm rep')
              lazy_delta)
      else
        Obs.Trace.with_span "lazy_view.rebuild" (fun () ->
            Lazy_view.of_session ~flat rep')
    in
    if Obs.Rulestats.enabled () then
      Obs.Rulestats.note_class ~profile
        ~keys:
          (List.map
             (fun (r : Rule.t) -> r.Rule.priority)
             (Policy.rules_for policy ~user:(Session.user rep')));
    built.(i) <- Some { profile; rep = rep'; lazy_view; members = 0 }
  in
  Pool.run t.pool (List.init (Array.length arr) (fun i _slot -> build i));
  locked t (fun () ->
      Hashtbl.reset t.classes;
      Hashtbl.reset t.sessions;
      Array.iteri
        (fun i cls ->
          match cls with
          | Some cls ->
            let _, members = arr.(i) in
            Hashtbl.replace t.classes cls.profile cls;
            List.iter (fun (user, _) -> register t ~user cls) members
          | None -> ())
        built;
      sync_gauges t);
  Obs.Metrics.add m_class_splits splits;
  Obs.Metrics.add m_class_merges merges;
  Obs.Events.emit ?txn
    (Obs.Events.Rekey { classes = Array.length arr; splits; merges })

(* Every mutation routes through here: one Txn.commit_ops staging the
   whole mixed batch on the writer's view, then — only on success —
   journal append (of the APPLIED ops: replay never re-litigates
   authority), publication under the lock, and either the per-batch
   broadcast fan-out (document-only batches) or a class rekey (the batch
   carried policy ops). *)
let commit_ops ?(on_denial = `Abort) ?admin t ~user ops =
  let t0 = Obs.Mono.now () in
  Obs.Trace.with_span "serve.commit" @@ fun () ->
  Obs.Trace.annotate "user" user;
  Obs.Trace.annotate "ops" (string_of_int (List.length ops));
  (* One correlation id covers the whole write: Txn.commit_ops reuses
     the ambient id, and the journal append / fsync / snapshot events
     inside Store.append inherit it from the same scope. *)
  let txn = Obs.Events.next_txn () in
  Obs.Events.with_txn txn @@ fun () ->
  let e = entry t ~user in
  match
    Txn.commit_ops ~on_denial ?admin (Session.impersonate e.cls.rep ~user) ops
  with
  | Error _ as err -> err
  | Ok
      ({ Txn.session = session'; reports; delta; applied; policy_denials; _ }
       as c) ->
    let source' = Session.source session' in
    (* Durability before visibility: the batch is in the journal before
       any reader can observe it. *)
    (match t.persist with
     | Some store when applied <> [] ->
       let mode =
         match on_denial with `Abort -> `Atomic | `Tolerate -> `Tolerant
       in
       ignore
         (Store.append store ~user ~mode ~doc:source'
            (List.map Op.to_journal applied))
     | _ -> ());
    (* The freeze runs outside the lock; the new epoch — map-backed
       store, columnar snapshot and (on churn) policy + timestamp clock
       — is published atomically under it.  A policy-only batch leaves
       the document untouched and skips the re-freeze. *)
    let flat' = if source' == t.source then t.flat else freeze source' in
    locked t (fun () ->
        t.source <- source';
        t.flat <- flat';
        t.writes <- t.writes + List.length reports;
        if c.Txn.policy_changed then begin
          t.policy <- c.Txn.policy;
          t.clock <- max t.clock (Policy.next_priority c.Txn.policy)
        end);
    Obs.Metrics.add m_updates (List.length reports);
    if c.Txn.policy_changed then
      (* The rekey subsumes both the writer-class rebase and the
         broadcast: every class is regrouped and rebased exactly once
         against the new (document, policy) epoch. *)
      Obs.Metrics.time h_broadcast (fun () ->
          rekey t ~txn:(Some txn) ~flat:flat' ~source:source' ~delta
            ~policy:c.Txn.policy ~writer:session' ~writer_cls:e.cls
            ~writer_pdelta:c.Txn.policy_delta)
    else begin
      (* The writer's class is already rebased by the transaction (the
         staged session shares the class's decision profile); its lazy
         view and every other class get the merged delta. *)
      e.cls.rep <-
        Session.impersonate session' ~user:(Session.user e.cls.rep);
      let lazy_delta =
        if Session.policy_local session' then begin
          Obs.Metrics.inc m_rebase_incremental;
          delta
        end
        else begin
          Obs.Metrics.inc m_rebase_full;
          Delta.all
        end
      in
      e.cls.lazy_view <-
        Obs.Trace.with_span "lazy_view.rebase" (fun () ->
            Lazy_view.rebase ~flat:flat' e.cls.lazy_view source'
              (Session.perm session') lazy_delta);
      (* Fan-out over a lock-free snapshot: classes are disjoint, so
         workers never contend; pool size 1 reproduces the sequential
         broadcast exactly. *)
      let others =
        locked t (fun () ->
            Hashtbl.fold
              (fun _ cls acc -> if cls == e.cls then acc else cls :: acc)
              t.classes [])
      in
      if reports <> [] then
        Obs.Metrics.time h_broadcast (fun () ->
            Obs.Trace.with_span "serve.broadcast" (fun () ->
                Obs.Trace.annotate "sessions"
                  (string_of_int (List.length others));
                Obs.Trace.annotate "pool" (string_of_int (Pool.size t.pool));
                Obs.Events.emit
                  (Obs.Events.Broadcast { sessions = List.length others });
                Pool.run t.pool
                  (List.map
                     (fun cls slot ->
                       rebase_class ~slot ~txn ~flat:flat' source' delta cls)
                     others)))
    end;
    let seconds = Obs.Mono.now () -. t0 in
    Obs.Metrics.observe h_update seconds;
    if Obs.Timeseries.enabled () then
      Obs.Timeseries.observe Obs.Timeseries.default "update_seconds" seconds;
    Ok
      {
        reports;
        delta;
        policy_denials;
        policy_changed = c.Txn.policy_changed;
      }

let commit ?on_denial t ~user ops =
  commit_ops ?on_denial t ~user (Op.docs ops)

(* The historical per-op entry point, now a thin tolerant wrapper: §4.4.2
   semantics (partial per-target denials stay in the report) over a
   single-op transaction. *)
let update t ~user op =
  match commit ~on_denial:`Tolerate t ~user [ op ] with
  | Ok { reports = [ report ]; _ } -> report
  | Ok _ -> assert false
  | Error (Txn.Failed { exn; _ }) -> raise exn
  | Error err -> raise (Txn.Aborted err)

let update_all t ~user ops =
  match commit ~on_denial:`Tolerate t ~user ops with
  | Ok { reports; _ } -> reports
  | Error (Txn.Failed { exn; _ }) -> raise exn
  | Error err -> raise (Txn.Aborted err)
