(** Integrity-checked secure updates — the other resolution of the
    §4.4.2 confidentiality-vs-integrity conflict.

    The paper prefers confidentiality: [xupdate:remove] deletes a whole
    subtree even when the user cannot see parts of it, because rejecting
    the operation "would reveal to the user the existence of data she is
    not permitted to see".  When the database carries a document type
    ({!Xmldoc.Schema}), an administrator may prefer integrity: apply each
    operation transactionally and roll it back if the result violates the
    schema.

    Note the inherent trade-off the paper predicts: a rollback caused by
    invisible data (e.g. removing a visible node whose invisible
    descendant is required elsewhere — not expressible in our DTD subset,
    but undeclared-element violations behave similarly) would constitute
    exactly the inference channel the paper warns about.  The rejection
    message therefore only states that the result would be invalid, never
    which node was involved. *)

type outcome =
  | Applied of Session.t * Secure_update.report
  | Rejected of { report : Secure_update.report; violations : int }
      (** rolled back: the session is unchanged; only the violation
          {e count} is disclosed *)

val apply :
  schema:Xmldoc.Schema.t -> ?root:string -> Session.t -> Xupdate.Op.t ->
  outcome
(** Routed through {!Txn.commit} with the schema as the end-to-end
    validation: a rejected op is a rolled-back transaction, so neither
    metrics nor the audit ring retain any trace of it. *)

val apply_all :
  schema:Xmldoc.Schema.t -> ?root:string -> Session.t -> Xupdate.Op.t list ->
  Session.t * outcome list
(** Transactional per operation: a rejected operation rolls back but the
    sequence continues. *)
