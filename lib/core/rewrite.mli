(** Rewrite-based secure read path: evaluate a user query directly on the
    shared source document, in product with the user's visibility, with
    no per-user view materialisation.

    A downward query ({!Xpath.Ast.is_downward}) compiles to one
    {!Xpath.Compile} automaton; {!select} runs it through
    {!Xpath.Compile.fold_view} with the {!Lazy_view}'s visibility and
    label remapping as the view callback — hidden subtrees are pruned
    wholesale and position-only nodes present their [RESTRICTED] label to
    the automaton's name tests.  Non-downward queries (predicates, upward
    axes, [$USER]) fall back to {!Lazy_view.select}, which enforces the
    same axioms per axis call.  Either way the answers are exactly those
    of evaluating the query on the {!View.derive} materialisation, in
    document order — the equivalence [test/test_rewrite.ml] checks
    differentially on seeded (policy, document, query) triples.

    A plan mentions neither the user nor the policy: downward queries
    cannot reference [$USER], so one compiled plan is shared across all
    sessions (see [Serve]'s plan cache). *)

type t
(** A planned query: the parsed expression plus, when the query is
    downward, its compiled automaton. *)

val plan : Xpath.Ast.expr -> t

val plan_str : string -> t
(** @raise Xpath.Parser.Error *)

val compiled : t -> bool
(** Did the query compile (downward fragment), i.e. will {!select} take
    the one-pass product path rather than the lazy-view fallback? *)

val expr : t -> Xpath.Ast.expr

val select :
  ?vars:(string * Xpath.Value.t) list -> ?stats:Xpath.Compile.stats ->
  t -> Lazy_view.t -> Ordpath.t list
(** Answers on the virtual view, ascending document order.  [vars]
    ([$USER]) only affects the fallback path — a compiled plan is
    variable-free by construction.  [?stats] fills traversal counters for
    plan explainability: on the compiled path exactly as
    {!Xpath.Compile.fold_view} defines them; on the fallback path
    [visited] is the number of fresh visibility probes the evaluation
    forced ([states] and [pruned] stay untouched — there is no automaton
    product). *)

val select_str :
  ?vars:(string * Xpath.Value.t) list -> Lazy_view.t -> string ->
  Ordpath.t list
(** [plan_str] + {!select} (one-shot; callers with repeated queries
    should cache the plan). *)
