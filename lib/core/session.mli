(** A user session: the logged subject (the [logged(s)] predicate of
    §4.4.1), its resolved permissions, and the materialised view it is
    permitted to see.  All queries run against the view; secure updates
    (see {!Secure_update}) select their targets on the view too. *)

type t

exception Unknown_user of string

val login :
  ?flat:Xmldoc.Flat.t -> Policy.t -> Xmldoc.Document.t -> user:string -> t
(** When [?flat] is a frozen snapshot of the source, permission
    resolution and view derivation run over the columnar store (same
    answers, large documents resolve much faster).
    @raise Unknown_user if the user is not declared in the policy's
    subject hierarchy. *)

val impersonate : t -> user:string -> t
(** [impersonate t ~user] is [t] with the identity swapped to [user]; the
    permission store, materialised view and source are shared physically
    (no recomputation).  Sound exactly when [user] has the same
    {!Perm.profile} as [t]'s user — the sharing primitive behind
    {!Serve}'s permission-equivalence classes.
    @raise Unknown_user if [user] is not in the policy's hierarchy. *)

val user : t -> string
val policy : t -> Policy.t
val source : t -> Xmldoc.Document.t
val perm : t -> Perm.t
val view : t -> Xmldoc.Document.t

val holds : t -> Privilege.t -> Ordpath.t -> bool

val query : t -> string -> Ordpath.t list
(** Evaluates an XPath expression {e on the view}, with [$USER] bound.
    @raise Xpath.Parser.Error
    @raise Xpath.Eval.Error *)

val query_expr : t -> Xpath.Ast.expr -> Ordpath.t list

val query_source : t -> string -> Ordpath.t list
(** Trusted evaluation on the source database — what a security officer
    (not a regular subject) would see.  Used by baselines and tests. *)

val refresh : ?quiet:bool -> ?flat:Xmldoc.Flat.t -> t -> Xmldoc.Document.t -> t
(** Re-resolves permissions and re-derives the view after the source
    database changed.  [quiet] (default [false]) suppresses the session
    counters — {!Txn} stages speculative rebases that must leave the
    metrics registry untouched if the transaction aborts.  [?flat], when
    given, must be a frozen snapshot of the {e new} source. *)

val apply_delta :
  ?quiet:bool -> ?flat:Xmldoc.Flat.t -> t -> Xmldoc.Document.t -> Delta.t -> t
(** [apply_delta t source delta] rebases the session onto the updated
    source, re-resolving permissions ({!Perm.update}) and re-deriving the
    view ({!View.patch}) only inside the affected range.  Equivalent to
    [refresh t source] whenever [delta] covers the differences between
    the old and new source; sessions whose rules are not all downward
    (see {!policy_local}) silently widen the delta and pay the full
    {!refresh}. *)

val apply_policy :
  ?quiet:bool -> ?flat:Xmldoc.Flat.t -> t -> Policy.t -> t * Delta.t
(** [apply_policy t policy] rebases the session onto a changed policy
    over the {e unchanged} source: permissions via
    {!Perm.update_policy}, the view patched over exactly the returned
    delta (re-derived in full only when a non-downward rule forces it).
    The returned delta is what a lazy view must invalidate.  A session
    whose applicable rules are untouched by the change costs two rule
    list comparisons and no view work.  [?flat], when given, must be the
    frozen snapshot of the session's current source. *)

val policy_local : t -> bool
(** Are all the rules applicable to this session downward paths
    ({!Delta.local_rules}), i.e. does {!apply_delta} actually work
    incrementally for it? *)

val user_vars : t -> (string * Xpath.Value.t) list
(** The variable bindings of this session ([$USER]). *)
