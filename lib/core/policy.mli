(** A security policy: a subject hierarchy plus an ordered set of rules.
    Following §4.3, rules are issued one at a time and the issuing
    timestamp is the priority, so "the last issued command has the
    priority over the previous ones and possibly cancels them". *)

type t

val empty : t
val v : Subject.t -> Rule.t list -> t
(** @raise Invalid_argument if two rules share a priority. *)

val subjects : t -> Subject.t
val rules : t -> Rule.t list
(** Ascending priority. *)

val with_subjects : t -> Subject.t -> t

val grant :
  t -> Privilege.t -> path:string -> subject:string -> t
(** Appends an accept rule with the next timestamp.
    @raise Subject.Unknown_subject
    @raise Xpath.Parser.Error *)

val deny : t -> Privilege.t -> path:string -> subject:string -> t

val add_rule : t -> Rule.t -> t
(** Inserts a pre-timestamped rule.
    @raise Invalid_argument on a duplicate priority.
    @raise Subject.Unknown_subject *)

val revoke : t -> priority:int -> t
(** Removes the rule with the given timestamp (administrative deletion);
    unknown priorities are ignored. *)

val rule_with_priority : t -> priority:int -> Rule.t option

val add_isa : t -> sub:string -> super:string -> t
(** {!Subject.add_isa} lifted to the policy.
    @raise Subject.Unknown_subject
    @raise Subject.Cycle *)

val remove_isa : t -> sub:string -> super:string -> t
(** {!Subject.remove_isa} lifted to the policy.
    @raise Subject.Unknown_subject *)

val next_priority : t -> int

val rules_for : t -> user:string -> Rule.t list
(** The rules applicable to [user]: those whose subject [s'] satisfies
    [isa(user, s')], ascending priority. *)

val pp : Format.formatter -> t -> unit
