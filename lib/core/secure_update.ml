module D = Xmldoc.Document
module Op = Xupdate.Op

type denial = {
  target : Ordpath.t;
  node : Ordpath.t;
  privilege : Privilege.t;
  reason : string;
}

type report = {
  op : Op.t;
  targets : Ordpath.t list;
  relabelled : Ordpath.t list;
  removed : Ordpath.t list;
  inserted : Ordpath.t list;
  denied : denial list;
  skipped : (Ordpath.t * string) list;
  delta : Delta.t;
}

type state = {
  doc : D.t;
  relabelled : Ordpath.t list;
  removed : Ordpath.t list;
  inserted : Ordpath.t list;
  denied : denial list;
  skipped : (Ordpath.t * string) list;
}

let m_ops =
  Obs.Metrics.counter Obs.Metrics.default "secure_update_ops_total"
    ~help:"Secure XUpdate operations applied (axioms 18-25)"

let m_denials =
  Obs.Metrics.counter Obs.Metrics.default "secure_update_denials_total"
    ~help:"Per-node privilege denials during secure updates"

let m_skips =
  Obs.Metrics.counter Obs.Metrics.default "secure_update_skips_total"
    ~help:"Targets skipped (downgraded) during secure updates"

let h_apply =
  Obs.Metrics.histogram Obs.Metrics.default "secure_update_seconds"
    ~help:"Secure update latency incl. incremental view maintenance"

let f_decisions =
  Obs.Metrics.family Obs.Metrics.default "decisions_total"
    ~labels:[ "privilege"; "decision" ]
    ~help:"Per-node privilege check outcomes (axioms 18-25)"

(* The deciding rule behind a privilege check, rendered the way Explain
   reports it — what the audit trail shows next to each decision. *)
let rule_string session privilege id =
  match Perm.deciding_rule (Session.perm session) privilege id with
  | Some r -> Format.asprintf "%a" Rule.pp r
  | None -> "no applicable rule (closed world)"

(* Every privilege check of axioms 18-25 goes through here so the audit
   log sees each access decision with its deciding rule.  The event is
   handed to [emit] rather than recorded directly: a live [apply] runs it
   immediately, a staged op (see {!Txn}) queues it so an aborted
   transaction leaves the audit ring untouched.  The event strings are
   built eagerly, at decision time, so the deciding rule reflects the
   permissions the check actually consulted. *)
let audited_holds ~emit session ~action privilege id =
  let ok = Session.holds session privilege id in
  (* The labelled cell is resolved at decision time but incremented
     through [emit], like the audit event: an aborted transaction must
     not move decisions_total either. *)
  let cell =
    Obs.Metrics.labels f_decisions
      [ Privilege.to_string privilege; (if ok then "allow" else "deny") ]
  in
  emit (fun () -> Obs.Metrics.inc cell);
  if Obs.Audit.enabled () then begin
    let user = Session.user session in
    let privilege_s = Privilege.to_string privilege in
    let target = Ordpath.to_string id in
    let rule = rule_string session privilege id in
    let decision = if ok then Obs.Audit.Allowed else Obs.Audit.Denied in
    emit (fun () ->
        Obs.Audit.record Obs.Audit.default ~user ~action
          ~privilege:privilege_s ~target ~rule decision)
  end;
  ok

let deny st ~target ~node privilege reason =
  { st with denied = { target; node; privilege; reason } :: st.denied }

let skip ~emit ?session ?(action = "") st target reason =
  (match session with
   | Some session when Obs.Audit.enabled () ->
     let user = Session.user session in
     let target_s = Ordpath.to_string target in
     emit (fun () ->
         Obs.Audit.record Obs.Audit.default ~user ~action ~target:target_s
           ~detail:("skipped: " ^ reason) Obs.Audit.Denied)
   | _ -> ());
  { st with skipped = (target, reason) :: st.skipped }

let can_hold_children doc id =
  match D.kind doc id with
  | Some (Xmldoc.Node.Element | Xmldoc.Node.Document) -> true
  | _ -> false

(* Rename a single node: requires update, and the view label must be the
   original one (read privilege) — a RESTRICTED node cannot be renamed. *)
let rename_node ~emit session st ~action ~target id new_label =
  if not (audited_holds ~emit session ~action Privilege.Update id) then
    deny st ~target ~node:id Privilege.Update "update privilege required"
  else if not (audited_holds ~emit session ~action Privilege.Read id) then
    deny st ~target ~node:id Privilege.Read
      "the node is shown RESTRICTED and cannot be relabelled"
  else
    match D.kind st.doc id with
    | Some Xmldoc.Node.Document | None ->
      skip ~emit ~session ~action st target
        "the document node cannot be relabelled"
    | Some _ ->
      {
        st with
        doc = D.relabel st.doc id new_label;
        relabelled = id :: st.relabelled;
      }

(* The fresh numbers come from the source database (axioms 22-24 use
   create_number on db), so they never collide with invisible siblings.
   Dynamic content (value-of) is instantiated against the session's VIEW
   with the target as context: computed content can only embed data the
   user is permitted to see. *)
let instantiate_on_view session ~target content =
  Xupdate.Content.instantiate
    ~vars:(Session.user_vars session)
    (Xpath.Source.of_document (Session.view session))
    ~context:target content

let insert_tree ~emit session st ~action ~target content where =
  let source_doc = st.doc in
  match where with
  | `Append ->
    if not (audited_holds ~emit session ~action Privilege.Insert target) then
      deny st ~target ~node:target Privilege.Insert
        "insert privilege required on the addressed node"
    else if not (can_hold_children source_doc target) then
      skip ~emit ~session ~action st target "only element nodes accept children"
    else
      let tree = instantiate_on_view session ~target content in
      let doc, id = D.append_tree source_doc ~parent:target tree in
      { st with doc; inserted = id :: st.inserted }
  | `Before | `After ->
    let before = where = `Before in
    (match Ordpath.parent target with
     | None ->
       skip ~emit ~session ~action st target
         "the document node has no siblings"
     | Some parent ->
       if not (audited_holds ~emit session ~action Privilege.Insert parent) then
         deny st ~target ~node:parent Privilege.Insert
           "insert privilege required on the parent of the addressed node"
       else
         let siblings =
           List.map (fun (n : Xmldoc.Node.t) -> n.id)
             (D.children source_doc parent)
         in
         let rec bounds prev = function
           | [] -> None
           | s :: rest when Ordpath.equal s target ->
             if before then Some (prev, Some s)
             else
               Some
                 (Some s, (match rest with [] -> None | next :: _ -> Some next))
           | s :: rest -> bounds (Some s) rest
         in
         (match bounds None siblings with
          | None ->
            skip ~emit ~session ~action st target "target no longer present"
          | Some (left, right) ->
            let tree = instantiate_on_view session ~target content in
            let doc, id = D.add_subtree source_doc ~parent ~left ~right tree in
            { st with doc; inserted = id :: st.inserted }))

(* The shared op-application core: selects targets on the view, folds the
   per-axiom logic over them and builds the report — with {e no} registry
   side effects.  Audit events flow through [emit]; the counters are the
   caller's business ([apply] records them immediately,
   {!record_committed} at a transaction's commit point). *)
let run ~emit session op =
  let action = Op.name op in
  Obs.Trace.annotate "op" action;
  Obs.Trace.annotate "user" (Session.user session);
  let view = Session.view session in
  let targets =
    (* Target selection happens on the view (axioms 18-25). *)
    Obs.Trace.with_span "xpath.eval_targets" (fun () ->
        Xpath.Eval.select
          (Xpath.Eval.env ~vars:(Session.user_vars session) view)
          (Op.path op))
  in
  let st =
    {
      doc = Session.source session;
      relabelled = [];
      removed = [];
      inserted = [];
      denied = [];
      skipped = [];
    }
  in
  let st =
    Obs.Trace.with_span "xupdate.apply" @@ fun () ->
    match op with
    | Op.Rename { new_label; _ } ->
      List.fold_left
        (fun st target ->
          rename_node ~emit session st ~action ~target target new_label)
        st targets
    | Op.Update { new_label; _ } ->
      (* Axioms 20-21: relabel the view-children of each addressed node;
         each child needs both update and read. *)
      List.fold_left
        (fun st target ->
          match D.children view target with
          | [] ->
            skip ~emit ~session ~action st target
              "the addressed node has no visible children"
          | kids ->
            List.fold_left
              (fun st (kid : Xmldoc.Node.t) ->
                rename_node ~emit session st ~action ~target kid.id new_label)
              st kids)
        st targets
    | Op.Append { content; _ } ->
      List.fold_left
        (fun st target ->
          insert_tree ~emit session st ~action ~target content `Append)
        st targets
    | Op.Insert_before { content; _ } ->
      List.fold_left
        (fun st target ->
          insert_tree ~emit session st ~action ~target content `Before)
        st targets
    | Op.Insert_after { content; _ } ->
      List.fold_left
        (fun st target ->
          insert_tree ~emit session st ~action ~target content `After)
        st targets
    | Op.Remove _ ->
      List.fold_left
        (fun st target ->
          if not (D.mem st.doc target) then
            (* Inside a subtree removed by an earlier target. *)
            st
          else if Ordpath.equal target Ordpath.document then
            skip ~emit ~session ~action st target
              "the document node cannot be removed"
          else if
            not (audited_holds ~emit session ~action Privilege.Delete target)
          then
            deny st ~target ~node:target Privilege.Delete
              "delete privilege required on the addressed node"
          else
            {
              st with
              doc = D.remove_subtree st.doc target;
              removed = target :: st.removed;
            })
        st targets
  in
  let delta = Delta.of_roots (st.relabelled @ st.removed @ st.inserted) in
  let report =
    {
      op;
      targets;
      relabelled = List.rev st.relabelled;
      removed = List.rev st.removed;
      inserted = List.rev st.inserted;
      denied = List.rev st.denied;
      skipped = List.rev st.skipped;
      delta;
    }
  in
  if Obs.Audit.enabled () then begin
    let user = Session.user session in
    let target = Xpath.Ast.to_string (Op.path op) in
    let detail =
      Printf.sprintf
        "%d target(s): %d relabelled, %d removed, %d inserted, %d denied, \
         %d skipped"
        (List.length report.targets)
        (List.length report.relabelled)
        (List.length report.removed)
        (List.length report.inserted)
        (List.length report.denied)
        (List.length report.skipped)
    in
    let decision =
      if report.denied = [] then Obs.Audit.Allowed else Obs.Audit.Denied
    in
    emit (fun () ->
        Obs.Audit.record Obs.Audit.default ~user ~action ~target ~detail
          decision)
  end;
  (st.doc, report)

let record_committed reports =
  List.iter
    (fun (r : report) ->
      Obs.Metrics.inc m_ops;
      Obs.Metrics.add m_denials (List.length r.denied);
      Obs.Metrics.add m_skips (List.length r.skipped))
    reports

let apply session op =
  Obs.Metrics.time h_apply @@ fun () ->
  Obs.Trace.with_span "secure_update.apply" @@ fun () ->
  let doc, report = run ~emit:(fun event -> event ()) session op in
  record_committed [ report ];
  (Session.apply_delta session doc report.delta, report)

let stage ~defer session op =
  Obs.Trace.with_span "secure_update.stage" @@ fun () ->
  let doc, report = run ~emit:(fun event -> Queue.add event defer) session op in
  (Session.apply_delta ~quiet:true session doc report.delta, report)

let apply_all session ops =
  let session, reports =
    List.fold_left
      (fun (session, reports) op ->
        let session, report = apply session op in
        (session, report :: reports))
      (session, []) ops
  in
  (session, List.rev reports)

let fully_applied (r : report) = r.denied = [] && r.skipped = []

let pp_report fmt r =
  let ids ids = String.concat ", " (List.map Ordpath.to_string ids) in
  Format.fprintf fmt "@[<v>%a@,targets: [%s]@,relabelled: [%s]@,removed: [%s]@,inserted: [%s]@]"
    Op.pp r.op (ids r.targets) (ids r.relabelled) (ids r.removed)
    (ids r.inserted);
  List.iter
    (fun d ->
      Format.fprintf fmt "@,denied %a on %s (target %s): %s" Privilege.pp
        d.privilege (Ordpath.to_string d.node) (Ordpath.to_string d.target)
        d.reason)
    r.denied;
  List.iter
    (fun (id, reason) ->
      Format.fprintf fmt "@,skipped %s: %s" (Ordpath.to_string id) reason)
    r.skipped
