(* The virtual-security-view read path (§5's "applying filters reflecting
   the user privileges on the queries"): instead of materialising a view
   per user, a downward query is compiled to its automaton once and run
   over the *shared* source in product with the user's visibility
   predicate — Compile.fold_view prunes hidden subtrees wholesale and
   feeds the automaton the view labels (RESTRICTED under position-only),
   so name tests can neither match what the user must not read nor miss
   what the view renames.  Queries outside the downward fragment fall
   back to the memoised Lazy_view evaluator, which enforces the same
   axioms per axis call.  Both paths return exactly what evaluating the
   query on the View.derive materialisation would — the property
   test/test_rewrite.ml pins down differentially. *)

let m_compiled =
  Obs.Metrics.counter Obs.Metrics.default "rewrite_compiled_total"
    ~help:"Queries answered by the compiled rewrite (automaton x visibility)"

let m_fallback =
  Obs.Metrics.counter Obs.Metrics.default "rewrite_fallback_total"
    ~help:"Queries outside the downward fragment served via the lazy view"

type t = {
  expr : Xpath.Ast.expr;
  compiled : unit Xpath.Compile.t option;
}

(* Downward queries can never mention $USER (Var is outside the
   fragment), so one compiled plan is sound for every user — and, a
   fortiori, shareable across a whole server. *)
let plan expr =
  let compiled =
    if Xpath.Ast.is_downward expr then
      Some (Xpath.Compile.compile [ ((), expr) ])
    else None
  in
  { expr; compiled }

let plan_str src = plan (Xpath.Parser.parse_path src)

let compiled t = Option.is_some t.compiled
let expr t = t.expr

let select ?vars ?stats t lv =
  match t.compiled with
  | Some auto ->
    Obs.Metrics.inc m_compiled;
    Obs.Trace.with_span "rewrite.select" (fun () ->
        let f acc (n : Xmldoc.Node.t) _ = n.id :: acc in
        List.rev
          (match Lazy_view.flat_visibility lv with
           | Some (fl, vis) ->
             (* Per-epoch byte oracle: visibility is an array read, and
                only position-only nodes allocate a remapped copy. *)
             let view ix (n : Xmldoc.Node.t) =
               match Bytes.unsafe_get vis ix with
               | '\000' -> None
               | '\001' -> Some n
               | _ -> Some { n with label = View.restricted }
             in
             Xpath.Compile.fold_view_flat ?stats auto fl ~view ~init:[] ~f
           | None ->
             let view (n : Xmldoc.Node.t) =
               if Lazy_view.visible lv n.id then Some (Lazy_view.remap lv n)
               else None
             in
             Xpath.Compile.fold_view ?stats auto (Lazy_view.doc lv) ~view
               ~init:[] ~f))
  | None ->
    Obs.Metrics.inc m_fallback;
    (* No automaton on this path; approximate "visited" by the delta in
       memoised visibility probes the evaluation forces. *)
    let before =
      match stats with
      | Some _ -> Lazy_view.probed_nodes lv
      | None -> 0
    in
    let ids = Lazy_view.select ?vars lv t.expr in
    (match stats with
    | Some s ->
      s.Xpath.Compile.visited <-
        s.Xpath.Compile.visited + (Lazy_view.probed_nodes lv - before)
    | None -> ());
    ids

let select_str ?vars lv src = select ?vars (plan_str src) lv
