(** Conflict resolution (axiom 14): computes the actual privileges
    [perm(s, n, r)] a user holds on every node, from the accept/deny rules
    applicable to the user.  Because priorities are unique timestamps,
    axiom 14 is equivalent to "the most recent applicable rule covering
    [(r, n)] decides", which is how the computation proceeds. *)

type t

val compute : Policy.t -> Xmldoc.Document.t -> user:string -> t
(** Evaluates every applicable rule's path on the source document, with
    [$USER] bound to [user], in ascending priority order. *)

val user : t -> string

val update : t -> Policy.t -> Xmldoc.Document.t -> Delta.t -> t
(** [update t policy doc delta] re-resolves the permissions on the new
    document [doc], re-evaluating rules only for nodes inside [delta]
    (decisions outside an affected subtree cannot have changed when every
    applicable rule path is downward — see {!Delta.local_rules}).  Falls
    back to a full {!compute} on {!Delta.All} or when a non-downward rule
    applies.  Equivalent to [compute policy doc ~user:(user t)] whenever
    [delta] covers the differences between the old and new document. *)

val holds : t -> Privilege.t -> Ordpath.t -> bool
(** [perm(user, n, r)]. *)

val permitted : t -> Privilege.t -> Ordpath.Set.t
(** All nodes on which the privilege is held. *)

val deciding_rule : t -> Privilege.t -> Ordpath.t -> Rule.t option
(** The rule that decided the privilege on this node ([None] when no
    applicable rule covers it — the closed-world default deny). *)

val facts : t -> Xmldoc.Document.t -> (Privilege.t * Ordpath.t) list
(** All [perm] facts over nodes of the document, for display and for the
    Datalog parity checks. *)
