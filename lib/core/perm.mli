(** Conflict resolution (axiom 14): computes the actual privileges
    [perm(s, n, r)] a user holds on every node, from the accept/deny rules
    applicable to the user.  Because priorities are unique timestamps,
    axiom 14 is equivalent to "the most recent applicable rule covering
    [(r, n)] decides", which is how the computation proceeds. *)

type t

val compute :
  ?flat:Xmldoc.Flat.t -> Policy.t -> Xmldoc.Document.t -> user:string -> t
(** Resolves every applicable rule against the source document.  Rules in
    the downward fragment — in practice almost all of them — are merged
    into one {!Xpath.Compile} automaton and resolved for all five
    privileges in a single top-down pass; the rest are evaluated
    individually with [$USER] bound to [user].  The two result streams
    merge by rule priority, reproducing the ascending most-recent-wins
    order of axiom 14.

    When [?flat] is given it must be a frozen snapshot of [doc]; the
    traversals then run over the columnar store
    ({!Xpath.Compile.fold_flat}) instead of the node map, with identical
    results. *)

val compute_per_rule : Policy.t -> Xmldoc.Document.t -> user:string -> t
(** The pre-compilation implementation: one [Eval.select] per applicable
    rule, ascending priority.  Semantically equal to {!compute}; kept as
    the differential-testing and benchmarking baseline. *)

val user : t -> string

val with_user : t -> string -> t
(** Renames the store's user without recomputing anything: the decision
    arrays are shared physically.  Sound exactly when both users have the
    same {!profile} — see {!Session.impersonate}. *)

val profile : Policy.t -> user:string -> string
(** The user's permission-equivalence signature.  Two users with equal
    profiles provably receive identical decision stores from {!compute}
    on any document: priorities are unique, so the signature's priority
    list identifies the applicable rule list, and when no applicable rule
    mentions [$USER] (see {!Rule.uses_user_variable}) rule selections
    cannot depend on the user.  Users carrying a [$USER] rule have their
    name folded into the signature, i.e. they form singleton classes. *)

val update :
  ?flat:Xmldoc.Flat.t -> t -> Policy.t -> Xmldoc.Document.t -> Delta.t -> t
(** [update t policy doc delta] re-resolves the permissions on the new
    document [doc], re-evaluating rules only for nodes inside [delta]
    (decisions outside an affected subtree cannot have changed when every
    applicable rule path is downward — see {!Delta.local_rules}).  Falls
    back to a full {!compute} on {!Delta.All} or when a non-downward rule
    applies.  Equivalent to [compute policy doc ~user:(user t)] whenever
    [delta] covers the differences between the old and new document. *)

val update_policy :
  ?flat:Xmldoc.Flat.t ->
  t -> old_policy:Policy.t -> Policy.t -> Xmldoc.Document.t -> t * Delta.t
(** [update_policy t ~old_policy policy doc] re-resolves after a policy
    change on an {e unchanged} document, recomputing only the spans
    whose applicable-rule decisions can differ: the nodes selected by
    added or changed rules (one path evaluation each) plus the nodes the
    removed or changed rules currently decide (read off the stores).
    The affected subtrees are re-matched through the same compiled
    {!Xpath.Compile} machinery as {!update}.  Returns the new store and
    the delta it re-resolved — what view maintenance must cover
    ({!Delta.empty} when the user's applicable rules are untouched by
    the change; {!Delta.all} when a non-downward rule forces the full
    {!compute} fallback).  Equivalent to
    [compute policy doc ~user:(user t)] whenever [t] agrees with
    [compute old_policy doc]. *)

val holds : t -> Privilege.t -> Ordpath.t -> bool
(** [perm(user, n, r)]. *)

val permitted : t -> Privilege.t -> Ordpath.Set.t
(** All nodes on which the privilege is held. *)

val flat_visibility : t -> Xmldoc.Flat.t -> Bytes.t
(** Axioms 15-17 over a frozen snapshot of the source document, one byte
    per flat index: [0] hidden, [1] visible with its source label, [2]
    visible as RESTRICTED (position-only).  The decision stores and the
    snapshot share document order, so the whole array costs one merge
    scan — no per-node binary search.  Byte [i] is non-zero iff node [i]
    is in the {!View.derive} materialisation; the secure read paths
    consume it as an O(1) per-node visibility oracle. *)

val deciding_rule : t -> Privilege.t -> Ordpath.t -> Rule.t option
(** The rule that decided the privilege on this node ([None] when no
    applicable rule covers it — the closed-world default deny). *)

val facts : t -> Xmldoc.Document.t -> (Privilege.t * Ordpath.t) list
(** All [perm] facts over nodes of the document, for display and for the
    Datalog parity checks. *)
