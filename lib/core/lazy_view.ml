module D = Xmldoc.Document

(* Registry-backed totals aggregated across every lazy view; the
   per-instance stats below survive for tests and the E13 bench. *)
let m_hits =
  Obs.Metrics.counter Obs.Metrics.default "lazy_view_hits_total"
    ~help:"Memoised visibility decisions answered from the cache"

let m_misses =
  Obs.Metrics.counter Obs.Metrics.default "lazy_view_misses_total"
    ~help:"Visibility decisions computed afresh"

let m_rebase_incremental =
  Obs.Metrics.counter Obs.Metrics.default "lazy_view_rebase_incremental_total"
    ~help:"Rebases that evicted only the delta range"

let m_rebase_full =
  Obs.Metrics.counter Obs.Metrics.default "lazy_view_rebase_full_total"
    ~help:"Rebases that discarded the whole memo (Delta.All)"

type stats = { mutable hits : int; mutable misses : int }

type t = {
  doc : D.t;
  perm : Perm.t;
  flat : Xmldoc.Flat.t option;
      (* frozen snapshot of [doc], when the caller maintains one; lets
         the compiled read path fold the columnar arrays instead of the
         node map *)
  mutable flat_vis : Bytes.t option;
      (* byte-per-index visibility over [flat] (Perm.flat_visibility),
         built on first demand by the compiled read path and dropped on
         every rebase — the per-epoch analogue of [memo] *)
  memo : (Ordpath.t, bool) Hashtbl.t;
  stats : stats;
}

let create ?flat doc perm =
  { doc; perm; flat; flat_vis = None; memo = Hashtbl.create 64;
    stats = { hits = 0; misses = 0 } }

let of_session ?flat session =
  create ?flat (Session.source session) (Session.perm session)

(* Axioms 15-17, demand-driven: a node is selected iff its parent is and
   the user holds read or position on it. *)
let rec visible t id =
  match Hashtbl.find_opt t.memo id with
  | Some v ->
    t.stats.hits <- t.stats.hits + 1;
    Obs.Metrics.inc m_hits;
    v
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    Obs.Metrics.inc m_misses;
    let v =
      if Ordpath.equal id Ordpath.document then D.mem t.doc id
      else if not (D.mem t.doc id) then false
      else
        (Perm.holds t.perm Privilege.Read id
        || Perm.holds t.perm Privilege.Position id)
        &&
        match Ordpath.parent id with
        | None -> false
        | Some parent -> visible t parent
    in
    Hashtbl.add t.memo id v;
    v

(* Delta-aware invalidation: only memoised visibility decisions inside
   the affected range can have gone stale (the range is closed under
   descendants, and a decision depends only on the node's own permissions
   and its ancestors' — all inside the range whenever any of them is).
   The surviving entries migrate to the rebased value; the old value must
   not be used afterwards, as the table is shared, not copied. *)
let rebase ?flat t doc perm delta =
  match delta with
  | Delta.All ->
    Obs.Metrics.inc m_rebase_full;
    { doc; perm; flat; flat_vis = None; memo = Hashtbl.create 64;
      stats = t.stats }
  | Delta.Local [] -> { t with doc; perm; flat; flat_vis = None }
  | Delta.Local _ ->
    Obs.Metrics.inc m_rebase_incremental;
    Hashtbl.filter_map_inplace
      (fun id v -> if Delta.affects delta id then None else Some v)
      t.memo;
    { t with doc; perm; flat; flat_vis = None }

let label t id =
  if not (visible t id) then None
  else if Ordpath.equal id Ordpath.document then Some "/"
  else if Perm.holds t.perm Privilege.Read id then D.label t.doc id
  else Some View.restricted

let remap t (n : Xmldoc.Node.t) =
  if
    n.kind = Xmldoc.Node.Document
    || Perm.holds t.perm Privilege.Read n.id
  then n
  else { n with label = View.restricted }

let filter_map_nodes t nodes =
  List.filter_map
    (fun (n : Xmldoc.Node.t) ->
      if visible t n.id then Some (remap t n) else None)
    nodes

(* The view string-value: visible text descendants with their view
   labels, not descending into attribute subtrees (mirrors
   Document.string_value). *)
let string_value t id =
  if not (visible t id) then ""
  else
    match D.find t.doc id with
    | None -> ""
    | Some (start : Xmldoc.Node.t) ->
      let buf = Buffer.create 32 in
      let rec go (n : Xmldoc.Node.t) =
        if not (visible t n.id) then ()
        else
          match n.kind with
          | Xmldoc.Node.Text -> Buffer.add_string buf (remap t n).label
          | Xmldoc.Node.Attribute when not (Ordpath.equal n.id start.id) -> ()
          | Xmldoc.Node.Attribute | Xmldoc.Node.Element | Xmldoc.Node.Document
          | Xmldoc.Node.Comment ->
            List.iter go (D.children t.doc n.id)
      in
      go start;
      Buffer.contents buf

let source t : Xpath.Source.t =
  let doc = t.doc in
  let lift f id = filter_map_nodes t (f doc id) in
  {
    Xpath.Source.find =
      (fun id ->
        match D.find doc id with
        | Some n when visible t id -> Some (remap t n)
        | Some _ | None -> None);
    children = lift D.children;
    parent =
      (fun id ->
        match D.parent doc id with
        | Some p when visible t p.id -> Some (remap t p)
        | Some _ | None -> None);
    descendants = lift D.descendants;
    descendant_or_self = lift D.descendant_or_self;
    ancestors = lift D.ancestors;
    ancestor_or_self = lift D.ancestor_or_self;
    following_siblings = lift D.following_siblings;
    preceding_siblings = lift D.preceding_siblings;
    following = lift D.following;
    preceding = lift D.preceding;
    attributes = lift D.attributes;
    string_value = string_value t;
    (* No index: remapping rewrites labels (RESTRICTED) on the fly, so the
       source document's label index would both miss and leak. *)
    by_label = None;
  }

let select ?vars t expr =
  Xpath.Eval.select (Xpath.Eval.env_of_source ?vars (source t)) expr

let select_str ?vars t src = select ?vars t (Xpath.Parser.parse_path src)

let doc t = t.doc
let flat t = t.flat

let flat_visibility t =
  match t.flat with
  | None -> None
  | Some fl ->
    let vis =
      match t.flat_vis with
      | Some v -> v
      | None ->
        let v = Perm.flat_visibility t.perm fl in
        t.flat_vis <- Some v;
        v
    in
    Some (fl, vis)
let materialize t = View.derive ?flat:t.flat t.doc t.perm
let probed_nodes t = Hashtbl.length t.memo
let hits t = t.stats.hits
let misses t = t.stats.misses

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0
