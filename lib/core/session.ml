type t = {
  user : string;
  policy : Policy.t;
  source : Xmldoc.Document.t;
  perm : Perm.t;
  view : Xmldoc.Document.t;
  local : bool;
      (* are all applicable rule paths downward, i.e. is delta-scoped
         invalidation sound for this session? decided once at login *)
}

exception Unknown_user of string

(* Observability (all no-ops unless enabled; see lib/obs). *)
let m_logins =
  Obs.Metrics.counter Obs.Metrics.default "session_logins_total"
    ~help:"Sessions opened (perm resolution + view derivation)"

let m_queries =
  Obs.Metrics.counter Obs.Metrics.default "session_queries_total"
    ~help:"XPath queries evaluated on materialised views"

let m_refresh_full =
  Obs.Metrics.counter Obs.Metrics.default "session_refresh_full_total"
    ~help:"Full perm+view re-derivations (login excluded)"

let m_patch_incremental =
  Obs.Metrics.counter Obs.Metrics.default "session_patch_incremental_total"
    ~help:"Delta-scoped perm+view maintenance passes (Perm.update/View.patch)"

let m_delta_noop =
  Obs.Metrics.counter Obs.Metrics.default "session_delta_noop_total"
    ~help:"apply_delta calls whose delta was empty"

let m_delta_widened =
  Obs.Metrics.counter Obs.Metrics.default "session_delta_widened_total"
    ~help:"apply_delta calls widened to a full refresh because the \
           session's rules are not all downward"

let h_login =
  Obs.Metrics.histogram Obs.Metrics.default "session_login_seconds"
    ~help:"Login latency (perm resolution + view derivation)"

let login ?flat policy source ~user =
  if not (Subject.mem (Policy.subjects policy) user) then
    raise (Unknown_user user);
  Obs.Metrics.time h_login (fun () ->
      Obs.Trace.with_span "session.login" (fun () ->
          Obs.Trace.annotate "user" user;
          let perm =
            Obs.Trace.with_span "perm.compute" (fun () ->
                Perm.compute ?flat policy source ~user)
          in
          let view =
            Obs.Trace.with_span "view.derive" (fun () ->
                View.derive ?flat source perm)
          in
          let local = Delta.local_rules (Policy.rules_for policy ~user) in
          Obs.Metrics.inc m_logins;
          if Obs.Audit.enabled () then
            Obs.Audit.record Obs.Audit.default ~user ~action:"login"
              ~detail:
                (Printf.sprintf "view: %d nodes; %s" (View.visible_count view)
                   (if local then "delta-local" else "non-local rules"))
              Obs.Audit.Allowed;
          { user; policy; source; perm; view; local }))

(* Equivalence-class sharing (see Perm.profile): a member session is the
   representative's record with only the identity swapped — the perm
   store, the materialised view and the source are shared physically, so
   an impersonated session costs one small record, not a login. *)
let impersonate t ~user =
  if String.equal user t.user then t
  else begin
    if not (Subject.mem (Policy.subjects t.policy) user) then
      raise (Unknown_user user);
    { t with user; perm = Perm.with_user t.perm user }
  end

let user t = t.user
let policy t = t.policy
let source t = t.source
let perm t = t.perm
let view t = t.view
let policy_local t = t.local

let holds t privilege id = Perm.holds t.perm privilege id

let user_vars t = [ ("USER", Xpath.Value.Str t.user) ]

let query_expr t expr =
  Obs.Metrics.inc m_queries;
  Obs.Trace.with_span "query.eval" (fun () ->
      Xpath.Eval.select (Xpath.Eval.env ~vars:(user_vars t) t.view) expr)

let query t src =
  Obs.Trace.with_span "session.query" (fun () ->
      let expr =
        Obs.Trace.with_span "xpath.parse" (fun () ->
            Xpath.Parser.parse_path src)
      in
      let ids = query_expr t expr in
      if Obs.Audit.enabled () then
        Obs.Audit.record Obs.Audit.default ~user:t.user ~action:"query"
          ~privilege:"read" ~target:src
          ~detail:(Printf.sprintf "%d node(s) on the view" (List.length ids))
          Obs.Audit.Allowed;
      ids)

let query_source t src =
  Xpath.Eval.select_str ~vars:(user_vars t) t.source src

let refresh ?(quiet = false) ?flat t source =
  if not quiet then Obs.Metrics.inc m_refresh_full;
  Obs.Trace.with_span "session.refresh" (fun () ->
      Obs.Trace.annotate "user" t.user;
      let perm =
        Obs.Trace.with_span "perm.compute" (fun () ->
            Perm.compute ?flat t.policy source ~user:t.user)
      in
      let view =
        Obs.Trace.with_span "view.derive" (fun () ->
            View.derive ?flat source perm)
      in
      { t with source; perm; view })

(* Policy churn: the source is unchanged, the rule list is not.  The
   perm store hands back exactly the delta it re-resolved, so the view
   is patched over the same range; a session whose applicable rules are
   untouched pays two list comparisons.  [quiet] serves Txn staging like
   in {!apply_delta}: an aborted transaction must leave the registry
   bit-for-bit untouched. *)
let apply_policy ?(quiet = false) ?flat t policy =
  if t.policy == policy then (t, Delta.empty)
  else begin
    let count c = if not quiet then Obs.Metrics.inc c in
    let perm, delta =
      Obs.Trace.with_span "perm.update_policy" (fun () ->
          Perm.update_policy ?flat t.perm ~old_policy:t.policy policy t.source)
    in
    let local = Delta.local_rules (Policy.rules_for policy ~user:t.user) in
    match delta with
    | Delta.Local [] ->
      count m_delta_noop;
      ({ t with policy; perm; local }, delta)
    | Delta.All ->
      count m_refresh_full;
      let view =
        Obs.Trace.with_span "view.derive" (fun () ->
            View.derive ?flat t.source perm)
      in
      ({ t with policy; perm; view; local }, delta)
    | Delta.Local _ ->
      count m_patch_incremental;
      let view =
        Obs.Trace.with_span "view.patch" (fun () ->
            View.patch t.source ~view:t.view perm delta)
      in
      ({ t with policy; perm; view; local }, delta)
  end

let apply_delta ?(quiet = false) ?flat t source delta =
  let count c = if not quiet then Obs.Metrics.inc c in
  (match delta with
   | Delta.All -> ()
   | Delta.Local _ -> if not t.local then count m_delta_widened);
  let delta = if t.local then delta else Delta.all in
  match delta with
  | Delta.All -> refresh ~quiet ?flat t source
  | Delta.Local [] ->
    count m_delta_noop;
    { t with source }
  | Delta.Local _ ->
    count m_patch_incremental;
    Obs.Trace.with_span "session.apply_delta" (fun () ->
        Obs.Trace.annotate "user" t.user;
        let perm =
          Obs.Trace.with_span "perm.update" (fun () ->
              Perm.update ?flat t.perm t.policy source delta)
        in
        let view =
          Obs.Trace.with_span "view.patch" (fun () ->
              View.patch source ~view:t.view perm delta)
        in
        { t with source; perm; view })
