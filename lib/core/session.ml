type t = {
  user : string;
  policy : Policy.t;
  source : Xmldoc.Document.t;
  perm : Perm.t;
  view : Xmldoc.Document.t;
  local : bool;
      (* are all applicable rule paths downward, i.e. is delta-scoped
         invalidation sound for this session? decided once at login *)
}

exception Unknown_user of string

let login policy source ~user =
  if not (Subject.mem (Policy.subjects policy) user) then
    raise (Unknown_user user);
  let perm = Perm.compute policy source ~user in
  let view = View.derive source perm in
  let local = Delta.local_rules (Policy.rules_for policy ~user) in
  { user; policy; source; perm; view; local }

let user t = t.user
let policy t = t.policy
let source t = t.source
let perm t = t.perm
let view t = t.view
let policy_local t = t.local

let holds t privilege id = Perm.holds t.perm privilege id

let user_vars t = [ ("USER", Xpath.Value.Str t.user) ]

let query_expr t expr =
  Xpath.Eval.select (Xpath.Eval.env ~vars:(user_vars t) t.view) expr

let query t src = query_expr t (Xpath.Parser.parse_path src)

let query_source t src =
  Xpath.Eval.select_str ~vars:(user_vars t) t.source src

let refresh t source =
  let perm = Perm.compute t.policy source ~user:t.user in
  let view = View.derive source perm in
  { t with source; perm; view }

let apply_delta t source delta =
  let delta = if t.local then delta else Delta.all in
  match delta with
  | Delta.All -> refresh t source
  | Delta.Local [] -> { t with source }
  | Delta.Local _ ->
    let perm = Perm.update t.perm t.policy source delta in
    let view = View.patch source ~view:t.view perm delta in
    { t with source; perm; view }
