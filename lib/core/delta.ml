type t =
  | Local of Ordpath.t list
  | All

let empty = Local []
let all = All

let of_roots ids =
  if List.exists (Ordpath.equal Ordpath.document) ids then All
  else
    let sorted = List.sort_uniq Ordpath.compare ids in
    (* Sorted = document order, so a covering ancestor precedes the nodes
       it covers; one left-to-right pass drops them. *)
    let roots =
      List.fold_left
        (fun acc id ->
          match acc with
          | prev :: _ when Ordpath.is_ancestor_or_self ~ancestor:prev id -> acc
          | _ -> id :: acc)
        [] sorted
    in
    Local (List.rev roots)

let union a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Local xs, Local ys -> of_roots (xs @ ys)

let is_empty = function Local [] -> true | Local _ | All -> false

let affects t id =
  match t with
  | All -> true
  | Local roots ->
    List.exists (fun r -> Ordpath.is_ancestor_or_self ~ancestor:r id) roots

let roots = function Local rs -> Some rs | All -> None

let local_expr = Xpath.Ast.is_downward
let local_rules rules =
  List.for_all (fun (r : Rule.t) -> local_expr r.path) rules

let pp fmt = function
  | All -> Format.pp_print_string fmt "all"
  | Local [] -> Format.pp_print_string fmt "empty"
  | Local roots ->
    Format.fprintf fmt "subtrees{%s}"
      (String.concat ", " (List.map Ordpath.to_string roots))
