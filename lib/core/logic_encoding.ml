module D = Xmldoc.Document
module Op = Xupdate.Op
module T = Datalog.Term
module C = Datalog.Clause

let id_term id = T.Sym (Ordpath.to_string id)
let priv_term p = T.Sym (Privilege.to_string p)

(* --- EDB --------------------------------------------------------------- *)

let doc_facts prefix doc db =
  let node_pred = prefix ^ "node" and child_pred = prefix ^ "child" in
  D.fold
    (fun (n : Xmldoc.Node.t) db ->
      let db = Datalog.Db.add_fact db node_pred [ id_term n.id; T.Sym n.label ] in
      let db =
        match Ordpath.parent n.id with
        | Some p when D.mem doc p ->
          Datalog.Db.add_fact db child_pred [ id_term n.id; id_term p ]
        | _ -> db
      in
      match n.kind with
      | Xmldoc.Node.Element ->
        Datalog.Db.add_fact db "can_hold" [ id_term n.id ]
      | Xmldoc.Node.Document ->
        let db = Datalog.Db.add_fact db "can_hold" [ id_term n.id ] in
        Datalog.Db.add_fact db "doc_node" [ id_term n.id ]
      | Xmldoc.Node.Text | Xmldoc.Node.Attribute | Xmldoc.Node.Comment -> db)
    doc db

let session_db session =
  let doc = Session.source session in
  let policy = Session.policy session in
  let subjects = Policy.subjects policy in
  let db = Datalog.Db.empty in
  let db = doc_facts "" doc db in
  let db =
    List.fold_left
      (fun db s ->
        let db = Datalog.Db.add_fact db "subject" [ T.Sym s ] in
        List.fold_left
          (fun db super ->
            Datalog.Db.add_fact db "isa" [ T.Sym s; T.Sym super ])
          db (Subject.supers subjects s))
      db (Subject.subjects subjects)
  in
  let env = Xpath.Eval.env ~vars:(Session.user_vars session) doc in
  let db =
    List.fold_left
      (fun db (r : Rule.t) ->
        let db =
          Datalog.Db.add_fact db "rule"
            [
              T.Sym (Rule.decision_to_string r.decision);
              priv_term r.privilege;
              T.Sym r.path_src;
              T.Sym r.subject;
              T.Int r.priority;
            ]
        in
        let db = Datalog.Db.add_fact db "priority" [ T.Int r.priority ] in
        (* Materialise xpath(p, n, v) for this rule's path. *)
        List.fold_left
          (fun db id ->
            match D.label doc id with
            | None -> db
            | Some v ->
              Datalog.Db.add_fact db "xpath"
                [ T.Sym r.path_src; id_term id; T.Sym v ])
          db
          (Xpath.Eval.select env r.path))
      db (Policy.rules policy)
  in
  Datalog.Db.add_fact db "logged" [ T.Sym (Session.user session) ]

(* --- programs ---------------------------------------------------------- *)

let base_program =
  Datalog.Parse.program
    {|
      % axioms 11-12: reflexive-transitive closure of isa
      isa(S, S) :- subject(S).
      isa(S, S2) :- isa(S, S1), isa(S1, S2).

      % tree geometry (§3.2), from the child relation
      descendant_or_self(X, X) :- node(X, V).
      descendant_or_self(X, Z) :- child(X, Y), descendant_or_self(Y, Z).

      % axiom 14: conflict resolution; 'cancelled' linearises the negated
      % existential (a later deny covering the same privilege and node)
      cancelled(S, N, R, T) :-
        logged(S), isa(S, S2), rule(deny, R, P2, S2, T2),
        xpath(P2, N, V2), priority(T), T2 > T.
      perm(S, N, R) :-
        logged(S), isa(S, S1), rule(accept, R, P, S1, T),
        xpath(P, N, V), not cancelled(S, N, R, T).
    |}

let view_program =
  Datalog.Parse.program
    {|
      % axiom 15: the document node always belongs to the view
      node_view('/', '/').
      % axiom 16: readable nodes with a selected parent keep their label
      node_view(N, V) :-
        node(N, V), logged(S), perm(S, N, read),
        child(N, P), node_view(P, V2).
      % axiom 17: position-only nodes appear as RESTRICTED
      node_view(N, 'RESTRICTED') :-
        node(N, V), logged(S), perm(S, N, position), not perm(S, N, read),
        child(N, P), node_view(P, V2).
    |}

(* --- solving ----------------------------------------------------------- *)

let solve_views session =
  Datalog.Eval.solve (session_db session) (base_program @ view_program)

let decode_node_facts db pred =
  Datalog.Db.facts db pred
  |> List.filter_map (function
       | [ T.Sym id; T.Sym label ] -> Some (Ordpath.of_string id, label)
       | _ -> None)
  |> List.sort (fun (a, _) (b, _) -> Ordpath.compare a b)

let derive_view session = decode_node_facts (solve_views session) "node_view"

let derive_perm session =
  let db = Datalog.Eval.solve (session_db session) base_program in
  let user = T.Sym (Session.user session) in
  Datalog.Db.matching db "perm" [ user; T.Var "N"; T.Var "R" ]
  |> List.filter_map (function
       | [ _; T.Sym id; T.Sym r ] ->
         (match Privilege.of_string r with
          | Some p -> Some (p, Ordpath.of_string id)
          | None -> None)
       | _ -> None)
  |> List.sort_uniq compare

let document_node_facts doc =
  D.fold (fun (n : Xmldoc.Node.t) acc -> (n.id, n.label) :: acc) doc []
  |> List.sort (fun (a, _) (b, _) -> Ordpath.compare a b)

let view_parity session =
  derive_view session = document_node_facts (Session.view session)

let perm_parity session =
  let direct =
    Perm.facts (Session.perm session) (Session.source session)
    |> List.map (fun (p, id) -> (p, id))
    |> List.sort_uniq compare
  in
  derive_perm session = direct

(* --- write operations (axioms 18-25) ----------------------------------- *)

(* Synthetic identifiers for the nodes of TREE, in DFS order. *)
let tree_nodes tree =
  let counter = ref (-1) in
  let rec walk acc t =
    incr counter;
    let me = Printf.sprintf "t%d" !counter in
    let acc = (me, Xmldoc.Tree.name t) :: acc in
    List.fold_left walk acc (Xmldoc.Tree.children t)
  in
  List.rev (walk [] tree)

(* create_number facts: simulate the insertion of each target's
   instantiated tree independently on the source document, and record the
   identifier every tree node would receive.  The inserted subtree
   appears in the scratch document as the descendant-or-self run of the
   fresh root, in DFS order — matching [tree_nodes] order.  (The TREE may
   differ per target when the content holds value-of nodes, hence the
   per-target pairs.) *)
let create_number_facts doc target_trees where =
  let op_sym =
    match where with
    | `Append -> T.Sym "append"
    | `Before -> T.Sym "insert-before"
    | `After -> T.Sym "insert-after"
  in
  List.concat_map
    (fun (target, tree) ->
      let names = List.map fst (tree_nodes tree) in
      let insertion =
        match where with
        | `Append ->
          if
            match D.kind doc target with
            | Some (Xmldoc.Node.Element | Xmldoc.Node.Document) -> true
            | _ -> false
          then Some (D.append_tree doc ~parent:target tree)
          else None
        | `Before | `After ->
          (match Ordpath.parent target with
           | None -> None
           | Some parent ->
             let siblings =
               List.map (fun (n : Xmldoc.Node.t) -> n.id) (D.children doc parent)
             in
             let rec bounds prev = function
               | [] -> None
               | s :: rest when Ordpath.equal s target ->
                 if where = `Before then Some (prev, Some s)
                 else
                   Some
                     ( Some s,
                       match rest with [] -> None | next :: _ -> Some next )
               | s :: rest -> bounds (Some s) rest
             in
             (match bounds None siblings with
              | None -> None
              | Some (left, right) ->
                Some (D.add_subtree doc ~parent ~left ~right tree)))
      in
      match insertion with
      | None -> []
      | Some (scratch, root) ->
        let fresh_ids =
          List.of_seq
            (Seq.map
               (fun (n : Xmldoc.Node.t) -> n.id)
               (D.descendant_or_self_seq scratch root))
        in
        List.map2
          (fun name id ->
            C.atom "create_number"
              [ id_term target; T.Sym name; op_sym; id_term id ])
          names fresh_ids)
    target_trees

let update_program session op =
  let view = Session.view session in
  let source = Session.source session in
  let env = Xpath.Eval.env ~vars:(Session.user_vars session) view in
  let targets = Xpath.Eval.select env (Op.path op) in
  let path_sym = T.Sym (Xpath.Ast.to_string (Op.path op)) in
  let db = Datalog.Db.empty in
  (* xpath_view facts for the operation's PATH. *)
  let db =
    List.fold_left
      (fun db id ->
        match D.label view id with
        | None -> db
        | Some v ->
          Datalog.Db.add_fact db "xpath_view" [ path_sym; id_term id; T.Sym v ])
      db targets
  in
  (* child_view facts. *)
  let db =
    D.fold
      (fun (n : Xmldoc.Node.t) db ->
        match Ordpath.parent n.id with
        | Some p when D.mem view p ->
          Datalog.Db.add_fact db "child_view" [ id_term n.id; id_term p ]
        | _ -> db)
      view db
  in
  let var v = T.Var v in
  let pos p args = C.Pos (C.atom p args) in
  let neg p args = C.Neg (C.atom p args) in
  let logged = pos "logged" [ var "S" ] in
  let keep_unless aux =
    (* node_dbnew(N, V) :- node(N, V), not aux(N). *)
    C.clause
      (C.atom "node_dbnew" [ var "N"; var "V" ])
      [ pos "node" [ var "N"; var "V" ]; neg aux [ var "N" ] ]
  in
  let relabel_clauses aux vnew select_body =
    [
      C.clause (C.atom aux [ var "N" ]) select_body;
      C.clause
        (C.atom "node_dbnew" [ var "N"; T.Sym vnew ])
        [ pos aux [ var "N" ] ];
      keep_unless aux;
    ]
  in
  let insert_clauses where perm_on =
    let cn_op =
      match where with
      | `Append -> "append"
      | `Before -> "insert-before"
      | `After -> "insert-after"
    in
    [
      (* node_dbnew(N, V) :- node(N, V).  (axiom 6) *)
      C.clause
        (C.atom "node_dbnew" [ var "N"; var "V" ])
        [ pos "node" [ var "N"; var "V" ] ];
      (* node_tree is keyed by the addressed node, because value-of
         content instantiates per target. *)
      C.clause
        (C.atom "node_dbnew" [ var "N2"; var "V" ])
        ([
           pos "node_tree" [ var "N"; var "NT"; var "V" ];
           pos "xpath_view" [ path_sym; var "N"; var "VN" ];
         ]
        @ perm_on
        @ [
            logged;
            pos "create_number"
              [ var "N"; var "NT"; T.Sym cn_op; var "N2" ];
          ]);
    ]
  in
  let view_src = Xpath.Source.of_document view in
  let instantiate_for target content =
    Xupdate.Content.instantiate ~vars:(Session.user_vars session) view_src
      ~context:target content
  in
  let insert_db content where perm_on db =
    let target_trees =
      List.map (fun t -> (t, instantiate_for t content)) targets
    in
    let db =
      Datalog.Db.add_all db (create_number_facts source target_trees where)
    in
    let db =
      List.fold_left
        (fun db (target, tree) ->
          List.fold_left
            (fun db (name, label) ->
              Datalog.Db.add_fact db "node_tree"
                [ id_term target; T.Sym name; T.Sym label ])
            db (tree_nodes tree))
        db target_trees
    in
    (db, insert_clauses where perm_on)
  in
  let db, clauses =
    match op with
    | Op.Rename { new_label; _ } ->
      ( db,
        relabel_clauses "renamed" new_label
          [
            pos "xpath_view" [ path_sym; var "N"; var "VN" ];
            logged;
            pos "perm" [ var "S"; var "N"; T.Sym "update" ];
            pos "perm" [ var "S"; var "N"; T.Sym "read" ];
            neg "doc_node" [ var "N" ];
          ] )
    | Op.Update { new_label; _ } ->
      ( db,
        relabel_clauses "updated" new_label
          [
            pos "xpath_view" [ path_sym; var "NP"; var "VN" ];
            pos "child_view" [ var "N"; var "NP" ];
            logged;
            pos "perm" [ var "S"; var "N"; T.Sym "update" ];
            pos "perm" [ var "S"; var "N"; T.Sym "read" ];
          ] )
    | Op.Append { content; _ } ->
      let db, clauses =
        insert_db content `Append
          [
            pos "perm" [ var "S"; var "N"; T.Sym "insert" ];
            pos "can_hold" [ var "N" ];
          ]
          db
      in
      (db, clauses)
    | Op.Insert_before { content; _ } ->
      let db, clauses =
        insert_db content `Before
          [
            pos "child_view" [ var "N"; var "F" ];
            pos "perm" [ var "S"; var "F"; T.Sym "insert" ];
          ]
          db
      in
      (db, clauses)
    | Op.Insert_after { content; _ } ->
      let db, clauses =
        insert_db content `After
          [
            pos "child_view" [ var "N"; var "F" ];
            pos "perm" [ var "S"; var "F"; T.Sym "insert" ];
          ]
          db
      in
      (db, clauses)
    | Op.Remove _ ->
      ( db,
        [
          (* axiom 25, contrapositive: a node is deleted when some
             ancestor-or-self is addressed and deletable. *)
          C.clause
            (C.atom "deleted" [ var "N" ])
            [
              pos "node" [ var "N"; var "V" ];
              pos "descendant_or_self" [ var "N"; var "N2" ];
              pos "xpath_view" [ path_sym; var "N2"; var "V2" ];
              logged;
              pos "perm" [ var "S"; var "N2"; T.Sym "delete" ];
              neg "doc_node" [ var "N2" ];
            ];
          keep_unless "deleted";
        ] )
  in
  (db, clauses)

let derive_dbnew session op =
  let op_db, op_clauses = update_program session op in
  let db = Datalog.Db.union (session_db session) op_db in
  let solved = Datalog.Eval.solve db (base_program @ op_clauses) in
  decode_node_facts solved "node_dbnew"

let update_parity session op =
  let session', _report = Secure_update.apply session op in
  derive_dbnew session op = document_node_facts (Session.source session')
