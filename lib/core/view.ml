module D = Xmldoc.Document

let restricted = "RESTRICTED"

(* Document order visits parents before children, so a single fold
   implements the recursive axioms 15-17. *)
let derive_step perm (n : Xmldoc.Node.t) view =
  if n.kind = Xmldoc.Node.Document then view (* axiom 15: always there *)
  else
    let parent_selected =
      match Ordpath.parent n.id with
      | None -> false
      | Some pid -> D.mem view pid
    in
    if not parent_selected then view
    else if Perm.holds perm Privilege.Read n.id then
      D.add_node view n (* axiom 16 *)
    else if Perm.holds perm Privilege.Position n.id then
      D.add_node view { n with Xmldoc.Node.label = restricted } (* axiom 17 *)
    else view

let derive ?flat doc perm =
  match flat with
  | Some fl ->
    (* One merge-scan decides every node (see {!Perm.flat_visibility});
       building the view is then a straight sweep over the selected
       indexes — index 0 is the document node [D.empty] already holds. *)
    let vis = Perm.flat_visibility perm fl in
    let view = ref D.empty in
    for i = 1 to Xmldoc.Flat.size fl - 1 do
      match Bytes.unsafe_get vis i with
      | '\000' -> ()
      | '\001' -> view := D.add_node !view (Xmldoc.Flat.node fl i)
      | _ ->
        view :=
          D.add_node !view
            { (Xmldoc.Flat.node fl i) with Xmldoc.Node.label = restricted }
    done;
    !view
  | None -> D.fold (derive_step perm) doc D.empty

(* Delta-aware re-derivation: outside the affected range neither the
   source facts nor (for downward policies) the permissions changed, so
   the old view is already correct there.  Inside the range the old
   entries are dropped and axioms 15-17 re-run against the new source;
   because visibility is inherited top-down and the range is closed under
   descendants, the patched prefix is always available when a node asks
   whether its parent is selected. *)
let patch source ~view perm delta =
  match delta with
  | Delta.All -> derive source perm
  | Delta.Local [] -> view
  | Delta.Local roots ->
    let pruned = List.fold_left D.remove_subtree view roots in
    List.fold_left
      (fun acc root ->
        Seq.fold_left
          (fun acc (n : Xmldoc.Node.t) ->
            let parent_selected =
              match Ordpath.parent n.id with
              | None -> false
              | Some pid -> D.mem acc pid
            in
            if not parent_selected then acc
            else if Perm.holds perm Privilege.Read n.id then D.add_node acc n
            else if Perm.holds perm Privilege.Position n.id then
              D.add_node acc { n with Xmldoc.Node.label = restricted }
            else acc)
          acc
          (D.descendant_or_self_seq source root))
      pruned roots

let is_restricted view id =
  match D.label view id with
  | Some l -> String.equal l restricted
  | None -> false

let visible_count view = D.size view - 1
