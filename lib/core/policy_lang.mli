(** A small textual policy language, so policies can live in files next to
    the documents they protect (the Prolog prototype shipped its sample
    policy the same way):

    {v
    # subjects (fig. 3)
    role staff
    role doctor isa staff
    user laporte isa doctor

    # rules (axiom 13) — priorities default to issue order
    grant read on //* to staff
    deny read on //diagnosis/* to secretary
    grant position on //diagnosis/* to secretary priority 12
    v} *)

exception Error of { line : int; message : string }

val parse : string -> Policy.t
(** @raise Error with the offending line number. *)

val parse_file : string -> Policy.t
(** @raise Sys_error on unreadable files. *)

val parse_rule : priority:int -> string -> Rule.t
(** Parses one rule line — [grant read on //a to doctor [priority N]] —
    without a surrounding policy: the subject is {e not} checked against
    a hierarchy here (staging the resulting [Op.Add_rule] does that),
    and [priority] is used when the line carries no explicit one.  The
    building block of [xmlsecu policy --rule].
    @raise Error with line 1. *)

val to_string : Policy.t -> string
(** Round-trips through {!parse}. *)
