(** Query filtering without view materialisation — the implementation
    direction the paper's §5 sketches ("applying filters reflecting the
    user privileges on the queries and then evaluating the queries on the
    source document").

    A lazy view wraps the source database and the user's resolved
    permissions behind the {!Xpath.Source} interface: every axis call
    filters out invisible nodes and remaps position-only labels to
    [RESTRICTED] on the fly, with per-node memoisation.  Queries
    evaluated through it return exactly the answers the materialised
    {!View.derive} view would give — including RESTRICTED labels, the
    compatibility question §5 raises — but touch only the nodes the
    query actually visits. *)

type t

val create : ?flat:Xmldoc.Flat.t -> Xmldoc.Document.t -> Perm.t -> t
(** [?flat], when given, must be a frozen snapshot of the document; the
    compiled read path ({!Rewrite.select}) then folds the columnar
    arrays instead of the node map. *)

val of_session : ?flat:Xmldoc.Flat.t -> Session.t -> t

val visible : t -> Ordpath.t -> bool
(** Memoised: the node and all its ancestors are selected by
    axioms 15–17. *)

val label : t -> Ordpath.t -> string option
(** The view label: the source label under [read], [RESTRICTED] under
    position-only; [None] if invisible. *)

val source : t -> Xpath.Source.t
(** The virtual {!Xpath.Source} for {!Xpath.Eval.env_of_source}. *)

val doc : t -> Xmldoc.Document.t
(** The underlying shared source database (trusted callers only — the
    compiled {!Rewrite} read path folds over it with {!visible}/{!remap}
    applied per node). *)

val flat : t -> Xmldoc.Flat.t option
(** The frozen columnar snapshot of {!doc}, when one was supplied at
    creation/rebase time. *)

val flat_visibility : t -> (Xmldoc.Flat.t * Bytes.t) option
(** The snapshot paired with its byte-per-index visibility oracle
    ({!Perm.flat_visibility}): byte [i] is [0] (hidden), [1] (visible,
    source label) or [2] (visible as RESTRICTED).  Built on first demand
    and cached until the next {!rebase}; [None] without a snapshot. *)

val remap : t -> Xmldoc.Node.t -> Xmldoc.Node.t
(** The node as the view presents it: unchanged under [read], label
    replaced by [RESTRICTED] under position-only.  Does {e not} check
    {!visible} — pair it with a visibility test. *)

val select :
  ?vars:(string * Xpath.Value.t) list -> t -> Xpath.Ast.expr ->
  Ordpath.t list

val select_str :
  ?vars:(string * Xpath.Value.t) list -> t -> string -> Ordpath.t list

val materialize : t -> Xmldoc.Document.t
(** The equivalent materialised view (for testing and benchmarks). *)

val probed_nodes : t -> int
(** How many distinct nodes have had their visibility decided so far —
    the work-saving measure the E13 bench reports. *)

val rebase :
  ?flat:Xmldoc.Flat.t -> t -> Xmldoc.Document.t -> Perm.t -> Delta.t -> t
(** [rebase t doc perm delta] carries the memoised visibility decisions
    over to the updated source and permissions, evicting only the entries
    inside [delta] (a decision depends on the node and its ancestors
    only, so entries outside an affected subtree are still valid for a
    session whose rules are downward — widen to {!Delta.all} otherwise,
    e.g. when {!Session.policy_local} is false).  The memo table is
    shared, not copied: the old value must not be used after a rebase.
    Hit/miss counters survive the rebase. *)

val hits : t -> int
(** Memo lookups answered from the cache since creation (or the last
    {!reset_stats}). *)

val misses : t -> int
(** Memo lookups that had to decide visibility afresh. *)

val reset_stats : t -> unit
