type outcome =
  | Applied of Session.t * Secure_update.report
  | Rejected of { report : Secure_update.report; violations : int }

(* A schema-checked update is a single-op transaction whose end-to-end
   validation is the DTD: Txn stages it (tolerant per-target denials,
   §4.4.2), validates the staged document, and aborts — leaving session
   and registries untouched — on any violation. *)
let apply ~schema ?root session op =
  match
    Txn.commit ~on_denial:`Tolerate
      ~validate:(fun doc -> Xmldoc.Schema.validate ?root schema doc)
      session [ op ]
  with
  | Ok { Txn.session = session'; reports = [ report ]; _ } ->
    Applied (session', report)
  | Ok _ -> assert false
  | Error (Txn.Invalid { reports = [ report ]; violations }) ->
    Rejected { report; violations = List.length violations }
  | Error (Txn.Failed { exn; _ }) -> raise exn
  | Error _ ->
    (* Tolerant single-op commits only abort through validation. *)
    assert false

let apply_all ~schema ?root session ops =
  let session, outcomes =
    List.fold_left
      (fun (session, outcomes) op ->
        match apply ~schema ?root session op with
        | Applied (session', _) as o -> (session', o :: outcomes)
        | Rejected _ as o -> (session, o :: outcomes))
      (session, []) ops
  in
  (session, List.rev outcomes)
