(** The ordpath range affected by an XUpdate operation, and the locality
    analysis that makes range-based invalidation sound.

    Applying an operation (axioms 2–9) changes facts only inside the
    subtrees rooted at the nodes it relabelled, removed or inserted
    ({!Xupdate.Apply.affected_roots}).  For a session whose applicable
    rules are all {e downward} paths ({!Xpath.Ast.is_downward}), the
    selection of any node depends only on its own label and its ancestor
    chain — so permissions, view membership and memoised visibility can
    change {e only} inside that same range, and everything outside it
    survives the write untouched.  Sessions with non-downward rules
    (predicates, sibling or upward axes) fall back to {!all}, which is
    plain full re-derivation.

    Per-axiom ranges (see DESIGN.md, "Incremental maintenance"):
    rename (2–3) touches the subtree of each renamed node; update (4–5)
    the subtrees of the relabelled children; append / insert-before /
    insert-after (6–7, 22–24) the freshly numbered subtree; remove (8–9,
    25) the deleted subtree. *)

type t =
  | Local of Ordpath.t list
      (** The union of the subtrees rooted at these nodes; normalized
          (document order, no root an ancestor of another, no document
          node, no duplicates).  [Local []] is the empty delta. *)
  | All  (** Conservative: everything may have changed. *)

val empty : t
val all : t

val of_roots : Ordpath.t list -> t
(** Normalizes: sorts, deduplicates, drops roots covered by other roots.
    A list containing the document node widens to {!All}. *)

val union : t -> t -> t

val is_empty : t -> bool

val affects : t -> Ordpath.t -> bool
(** Is the node inside the range, i.e. equal to or descending from an
    affected root?  [All] affects every node. *)

val roots : t -> Ordpath.t list option
(** [Some roots] for a local delta, [None] for {!All}. *)

val local_expr : Xpath.Ast.expr -> bool
(** Alias of {!Xpath.Ast.is_downward}. *)

val local_rules : Rule.t list -> bool
(** Are all the rules' paths downward — i.e. is range-based invalidation
    sound for a session governed by exactly these rules? *)

val pp : Format.formatter -> t -> unit
