module StrMap = Map.Make (String)
module StrSet = Set.Make (String)

type kind = Role | User

type t = {
  kinds : kind StrMap.t;
  supers : StrSet.t StrMap.t;  (* direct isa edges *)
}

exception Unknown_subject of string
exception Cycle of string

let empty = { kinds = StrMap.empty; supers = StrMap.empty }

let add t kind name =
  match StrMap.find_opt name t.kinds with
  | Some k when k = kind -> t
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Subject.add: %s is already declared with another kind"
         name)
  | None -> { t with kinds = StrMap.add name kind t.kinds }

let add_role t name = add t Role name
let add_user t name = add t User name

let mem t name = StrMap.mem name t.kinds
let kind t name = StrMap.find_opt name t.kinds

let supers t name =
  match StrMap.find_opt name t.supers with
  | None -> []
  | Some s -> StrSet.elements s

let ancestors t name =
  let rec close visited frontier =
    match frontier with
    | [] -> visited
    | s :: rest ->
      if StrSet.mem s visited then close visited rest
      else close (StrSet.add s visited) (supers t s @ rest)
  in
  StrSet.elements (close StrSet.empty [ name ])

let isa t sub super = List.mem super (ancestors t sub)

let add_isa t ~sub ~super =
  if not (mem t sub) then raise (Unknown_subject sub);
  if not (mem t super) then raise (Unknown_subject super);
  if sub = super || isa t super sub then raise (Cycle sub);
  let edges =
    Option.value ~default:StrSet.empty (StrMap.find_opt sub t.supers)
  in
  { t with supers = StrMap.add sub (StrSet.add super edges) t.supers }

let remove_isa t ~sub ~super =
  if not (mem t sub) then raise (Unknown_subject sub);
  if not (mem t super) then raise (Unknown_subject super);
  match StrMap.find_opt sub t.supers with
  | Some edges when StrSet.mem super edges ->
    let edges = StrSet.remove super edges in
    {
      t with
      supers =
        (if StrSet.is_empty edges then StrMap.remove sub t.supers
         else StrMap.add sub edges t.supers);
    }
  | _ -> t

let has_isa_edge t ~sub ~super =
  match StrMap.find_opt sub t.supers with
  | Some edges -> StrSet.mem super edges
  | None -> false

let subjects t = List.map fst (StrMap.bindings t.kinds)

let users t =
  List.filter_map
    (fun (n, k) -> if k = User then Some n else None)
    (StrMap.bindings t.kinds)

let roles t =
  List.filter_map
    (fun (n, k) -> if k = Role then Some n else None)
    (StrMap.bindings t.kinds)

let of_list entries =
  List.fold_left
    (fun t (kind, name, ss) ->
      let t = add t kind name in
      List.fold_left (fun t super -> add_isa t ~sub:name ~super) t ss)
    empty entries

let pp fmt t =
  List.iter
    (fun name ->
      let k = match kind t name with Some Role -> "role" | _ -> "user" in
      match supers t name with
      | [] -> Format.fprintf fmt "%s %s@." k name
      | ss -> Format.fprintf fmt "%s %s isa %s@." k name (String.concat ", " ss))
    (subjects t)
