type t = {
  user : string;
  decisions : Rule.t Ordpath.Map.t array;  (* indexed by privilege rank *)
}

let privilege_index = function
  | Privilege.Position -> 0
  | Privilege.Read -> 1
  | Privilege.Insert -> 2
  | Privilege.Update -> 3
  | Privilege.Delete -> 4

let compute policy doc ~user =
  let vars = [ ("USER", Xpath.Value.Str user) ] in
  let env = Xpath.Eval.env ~vars doc in
  let cache : (string, Ordpath.t list) Hashtbl.t = Hashtbl.create 16 in
  let select (r : Rule.t) =
    match Hashtbl.find_opt cache r.path_src with
    | Some ids -> ids
    | None ->
      let ids = Xpath.Eval.select env r.path in
      Hashtbl.add cache r.path_src ids;
      ids
  in
  let decisions = Array.make 5 Ordpath.Map.empty in
  (* Ascending priority: later rules overwrite earlier decisions. *)
  List.iter
    (fun (r : Rule.t) ->
      let i = privilege_index r.privilege in
      List.iter
        (fun id -> decisions.(i) <- Ordpath.Map.add id r decisions.(i))
        (select r))
    (Policy.rules_for policy ~user);
  { user; decisions }

let user t = t.user

(* Delta-aware re-resolution: with downward rule paths, a node's selection
   depends only on its ancestor chain, so decisions outside the affected
   range are still valid on the new document.  Inside the range, stale
   entries (relabelled or removed nodes) are dropped and every surviving
   or fresh node is re-matched against the applicable rules in ascending
   priority — the same most-recent-wins fold as [compute], scoped to the
   range. *)
let update t policy doc delta =
  match delta with
  | Delta.All -> compute policy doc ~user:t.user
  | Delta.Local [] -> t
  | Delta.Local roots ->
    let rules = Policy.rules_for policy ~user:t.user in
    if not (Delta.local_rules rules) then compute policy doc ~user:t.user
    else begin
      let decisions =
        Array.map
          (Ordpath.Map.filter (fun id _ -> not (Delta.affects delta id)))
          t.decisions
      in
      let affected =
        List.concat_map
          (fun root ->
            List.map
              (fun (n : Xmldoc.Node.t) -> n.id)
              (Xmldoc.Document.descendant_or_self doc root))
          roots
      in
      let src = Xpath.Source.of_document doc in
      List.iter
        (fun (r : Rule.t) ->
          let i = privilege_index r.privilege in
          List.iter
            (fun id ->
              if Xpath.Eval.matches_down src r.path id then
                decisions.(i) <- Ordpath.Map.add id r decisions.(i))
            affected)
        rules;
      { t with decisions }
    end

let deciding_rule t privilege id =
  Ordpath.Map.find_opt id t.decisions.(privilege_index privilege)

let holds t privilege id =
  match deciding_rule t privilege id with
  | Some r -> r.Rule.decision = Rule.Accept
  | None -> false

let permitted t privilege =
  Ordpath.Map.fold
    (fun id (r : Rule.t) acc ->
      if r.decision = Rule.Accept then Ordpath.Set.add id acc else acc)
    t.decisions.(privilege_index privilege)
    Ordpath.Set.empty

let facts t doc =
  List.concat_map
    (fun privilege ->
      List.filter_map
        (fun (n : Xmldoc.Node.t) ->
          if holds t privilege n.id then Some (privilege, n.id) else None)
        (Xmldoc.Document.nodes doc))
    Privilege.all
