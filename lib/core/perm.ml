(* Decision store: per privilege, an immutable array of (node id, deciding
   rule) pairs sorted in document order.  The compiled matcher emits
   decisions in exactly that order, so [compute] builds each store in one
   O(n) pass instead of n [Map.add] rebalances; lookups are binary
   searches. *)
module Dmap = struct
  type 'a t = (Ordpath.t * 'a) array

  let find_opt id (t : 'a t) =
    let rec go lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) lsr 1 in
        let k, v = t.(mid) in
        let c = Ordpath.compare id k in
        if c = 0 then Some v else if c < 0 then go lo mid else go (mid + 1) hi
    in
    go 0 (Array.length t)

  (* Ascending key order, like [Map.fold]. *)
  let fold f (t : 'a t) init =
    Array.fold_left (fun acc (k, v) -> f k v acc) init t

  (* [rev] is descending (built by prepending an ascending stream). *)
  let of_rev_list rev : 'a t = Array.of_list (List.rev rev)

  (* Merge of ascending unique-key stores; [choose] decides on a key
     present in both.  [b] is typically the small side — a policy
     churn's additions against a document-sized store — so the loop is
     per-[b]-entry: a galloping search (exponential probe from the
     previous hit, then binary search inside the window — additions
     cluster, so successive insertion points are near) locates each key,
     a first pass counts the genuinely new ones, and a second pass
     assembles the exact-size result from wholesale blits of the
     untouched runs of [a].  Key compares thus scale with [lb log gap],
     not [la]. *)
  let merge choose (a : 'a t) (b : 'a t) =
    let la = Array.length a and lb = Array.length b in
    if lb = 0 then a
    else if la = 0 then b
    else begin
      (* First key >= [key] at or after [from]. *)
      let gallop from key =
        if from >= la || Ordpath.compare (fst a.(from)) key >= 0 then from
        else begin
          let step = ref 1 in
          while
            from + !step < la
            && Ordpath.compare (fst a.(from + !step)) key < 0
          do
            step := !step lsl 1
          done;
          let lo = ref (from + (!step lsr 1) + 1)
          and hi = ref (min (from + !step) la) in
          while !lo < !hi do
            let mid = (!lo + !hi) lsr 1 in
            if Ordpath.compare (fst a.(mid)) key < 0 then lo := mid + 1
            else hi := mid
          done;
          !lo
        end
      in
      let pos = Array.make lb 0 in
      let dup = Bytes.make lb '\000' in
      let news = ref 0 in
      let i = ref 0 in
      for j = 0 to lb - 1 do
        let p = gallop !i (fst b.(j)) in
        pos.(j) <- p;
        if p < la && Ordpath.compare (fst a.(p)) (fst b.(j)) = 0 then
          Bytes.set dup j '\001'
        else incr news;
        i := p
      done;
      let out = Array.make (la + !news) a.(0) in
      let i = ref 0 and k = ref 0 in
      for j = 0 to lb - 1 do
        let p = pos.(j) in
        Array.blit a !i out !k (p - !i);
        k := !k + (p - !i);
        i := p;
        let kb, vb = b.(j) in
        if Bytes.get dup j = '\001' then begin
          out.(!k) <- (kb, choose (snd a.(p)) vb);
          i := p + 1
        end
        else out.(!k) <- (kb, vb);
        incr k
      done;
      Array.blit a !i out !k (la - !i);
      out
    end

  (* [splice base roots additions] replaces the entries lying under the
     delta roots with [additions].  In document order the
     descendants-or-self of a root form one contiguous span of the sorted
     array, so with [roots] sorted and disjoint (see {!Delta.of_roots})
     and [additions] ascending with every key under some root, the result
     assembles from a handful of binary searches and array blits — no
     per-entry predicate over the unaffected bulk. *)
  let splice (base : 'a t) roots (additions : 'a t) =
    match roots with
    | [] -> base
    | roots ->
      let nb = Array.length base and na = Array.length additions in
      let segs = ref [] in (* (source, offset, length), reversed *)
      let prev = ref 0 and ac = ref 0 in
      List.iter
        (fun root ->
          (* First key >= root: the span start, if the span is non-empty. *)
          let rec lb lo hi =
            if lo >= hi then lo
            else
              let mid = (lo + hi) lsr 1 in
              if Ordpath.compare (fst base.(mid)) root < 0 then lb (mid + 1) hi
              else lb lo mid
          in
          let lo = lb !prev nb in
          let hi = ref lo in
          while
            !hi < nb
            && Ordpath.is_ancestor_or_self ~ancestor:root (fst base.(!hi))
          do
            incr hi
          done;
          if lo > !prev then segs := (base, !prev, lo - !prev) :: !segs;
          let a0 = !ac in
          while
            !ac < na
            && Ordpath.is_ancestor_or_self ~ancestor:root (fst additions.(!ac))
          do
            incr ac
          done;
          if !ac > a0 then segs := (additions, a0, !ac - a0) :: !segs;
          prev := !hi)
        roots;
      if nb > !prev then segs := (base, !prev, nb - !prev) :: !segs;
      (match List.rev !segs with
       | [] -> [||]
       | ((first, off, _) :: _) as segs ->
         let total = List.fold_left (fun t (_, _, l) -> t + l) 0 segs in
         let out = Array.make total first.(off) in
         let pos = ref 0 in
         List.iter
           (fun (src, off, len) ->
             Array.blit src off out !pos len;
             pos := !pos + len)
           segs;
         out)
end

type t = {
  user : string;
  decisions : Rule.t Dmap.t array;  (* indexed by privilege rank *)
}

let privilege_index = function
  | Privilege.Position -> 0
  | Privilege.Read -> 1
  | Privilege.Insert -> 2
  | Privilege.Update -> 3
  | Privilege.Delete -> 4

(* One compiled traversal hands a node *all* its matching rules at once,
   so the winner per privilege — the highest-priority rule, which under
   unique priorities is exactly the most-recent-wins overwrite of
   axiom 14 — is picked in the small payload list and emitted once.

   The matcher interns each distinct automaton state set once and hands
   every node in that set the *same physical* payload list, so the winner
   computation is cached under physical equality: a handful of distinct
   sets cover the whole document, turning the per-node cost into a short
   [==] scan plus one list prepend per decided privilege. *)
let winners_of rules =
  let best : Rule.t option array = Array.make 5 None in
  List.iter
    (fun (r : Rule.t) ->
      let i = privilege_index r.privilege in
      match best.(i) with
      | Some prev when prev.Rule.priority > r.priority -> ()
      | Some _ | None -> best.(i) <- Some r)
    rules;
  let out = ref [] in
  for i = 4 downto 0 do
    match best.(i) with Some r -> out := (i, r) :: !out | None -> ()
  done;
  !out

(* Per-rule decision telemetry.  [stats_index rules] registers every
   applicable rule with the global registry and returns a priority-keyed
   lookup (priorities are unique within a policy, so the key identifies
   the rule exactly); [None] while recording is disabled, so the hot
   paths below stay allocation-free. *)
let stats_index rules =
  if not (Obs.Rulestats.enabled ()) then None
  else begin
    let tbl = Hashtbl.create (2 * List.length rules + 1) in
    List.iter
      (fun (r : Rule.t) ->
        let e =
          (* Formatting the description dominates registration, and a
             rule re-resolves on every broadcast — only pay it once. *)
          match Obs.Rulestats.find ~key:r.priority with
          | Some e -> e
          | None ->
            Obs.Rulestats.register ~key:r.priority
              ~privilege:(Privilege.to_string r.privilege)
              ~desc:(Format.asprintf "%a" Rule.pp r)
        in
        Hashtbl.replace tbl r.priority e)
      rules;
    Some (fun (r : Rule.t) -> Hashtbl.find tbl r.Rule.priority)
  end

(* Decided = present in a final decision store: folding the stores after
   conflict resolution is exact for both the compiled and the fallback
   path (a downward winner later overridden by a fallback rule is not
   counted), unlike counting winners inside the traversal. *)
let count_decided stats (stores : Rule.t Dmap.t array) =
  match stats with
  | None -> ()
  | Some entry_of ->
    Array.iter
      (fun store ->
        Dmap.fold
          (fun _ (r : Rule.t) () -> Obs.Rulestats.add_decided (entry_of r) 1)
          store ())
      stores

(* [node_pusher () acc id rules] prepends [id]'s winning (id, rule) pair
   onto [acc.(privilege)].  Ids arrive in ascending document order, so the
   accumulators are descending rev-lists ready for [Dmap.of_rev_list].
   A node revisited through nested delta roots would emit the same
   winners; {!Delta.of_roots} guarantees disjoint roots, so ids are in
   fact unique.

   With [?stats], every node also bumps the matched counter of each
   distinct rule in its payload list.  The distinct-rule list is cached
   alongside the winners under the same physical-equality key (the
   matcher hands every node of one state set the same physical list), so
   the per-node telemetry cost is one list walk of already-resolved
   entries — no hashing. *)
let node_pusher ?stats () =
  let cache :
      (Rule.t list * ((int * Rule.t) list * Obs.Rulestats.entry list)) list ref
      =
    ref []
  in
  fun (acc : (Ordpath.t * Rule.t) list array) id rules ->
    let rec lookup = function
      | (key, w) :: _ when key == rules -> w
      | _ :: rest -> lookup rest
      | [] ->
        let entries =
          match stats with
          | None -> []
          | Some entry_of ->
            (* A payload list repeats a rule when several of its paths
               accept the node; matched counts nodes, so dedupe. *)
            let seen = Hashtbl.create 8 in
            List.filter_map
              (fun (r : Rule.t) ->
                if Hashtbl.mem seen r.Rule.priority then None
                else begin
                  Hashtbl.add seen r.Rule.priority ();
                  Some (entry_of r)
                end)
              rules
        in
        let w = (winners_of rules, entries) in
        cache := (rules, w) :: !cache;
        w
    in
    let winners, entries = lookup !cache in
    List.iter (fun e -> Obs.Rulestats.add_matched e 1) entries;
    List.iter (fun (i, r) -> acc.(i) <- (id, r) :: acc.(i)) winners

let matcher_of_rules rules =
  Xpath.Compile.compile (List.map (fun (r : Rule.t) -> (r, r.Rule.path)) rules)

let partition_rules rules =
  List.partition (fun (r : Rule.t) -> Xpath.Ast.is_downward r.path) rules

(* Priorities are unique, so "highest priority wins" is order-independent —
   which lets downward rules (resolved in one compiled pass) and fallback
   rules (general evaluator) merge in any order. *)
let higher_priority (a : Rule.t) (b : Rule.t) =
  if a.priority >= b.priority then a else b

(* Fallback: evaluate each non-downward rule with the general evaluator
   ($USER bound), sharing selections across rules with identical path
   text, and merge the resulting decisions into [decisions] by rule
   priority. *)
let merge_fallback ?stats ?flat doc ~user decisions rules =
  match rules with
  | [] -> decisions
  | rules ->
    let vars = [ ("USER", Xpath.Value.Str user) ] in
    let env =
      match flat with
      | Some fl -> Xpath.Eval.env_of_source ~vars (Xpath.Source.of_flat fl)
      | None -> Xpath.Eval.env ~vars doc
    in
    let cache : (string, Ordpath.t list) Hashtbl.t = Hashtbl.create 16 in
    let select (r : Rule.t) =
      match Hashtbl.find_opt cache r.path_src with
      | Some ids -> ids
      | None ->
        let ids = Xpath.Eval.select env r.path in
        Hashtbl.add cache r.path_src ids;
        ids
    in
    let extras : (Ordpath.t * Rule.t) list array = Array.make 5 [] in
    List.iter
      (fun (r : Rule.t) ->
        let i = privilege_index r.privilege in
        let ids = select r in
        (match stats with
        | Some entry_of ->
          Obs.Rulestats.add_matched (entry_of r) (List.length ids)
        | None -> ());
        List.iter (fun id -> extras.(i) <- (id, r) :: extras.(i)) ids)
      rules;
    Array.mapi
      (fun i base ->
        match extras.(i) with
        | [] -> base
        | pairs ->
          (* Sort by id, then priority; keep the last (highest-priority)
             entry of each id group. *)
          let sorted =
            List.sort
              (fun (a, (ra : Rule.t)) (b, (rb : Rule.t)) ->
                let c = Ordpath.compare a b in
                if c <> 0 then c else compare ra.priority rb.priority)
              pairs
          in
          let rec dedupe = function
            | (a, _) :: ((b, _) :: _ as rest) when Ordpath.equal a b ->
              dedupe rest
            | x :: rest -> x :: dedupe rest
            | [] -> []
          in
          Dmap.merge higher_priority base (Array.of_list (dedupe sorted)))
      decisions

let compute ?flat policy doc ~user =
  let rules = Policy.rules_for policy ~user in
  let stats = stats_index rules in
  let downward, fallback = partition_rules rules in
  let acc : (Ordpath.t * Rule.t) list array = Array.make 5 [] in
  (match downward with
   | [] -> ()
   | downward ->
     let matcher = matcher_of_rules downward in
     let push = node_pusher ?stats () in
     let f () (n : Xmldoc.Node.t) rules = push acc n.id rules in
     (match flat with
      | Some fl -> Xpath.Compile.fold_flat matcher fl ~init:() ~f
      | None -> Xpath.Compile.fold matcher doc ~init:() ~f));
  let decisions =
    merge_fallback ?stats ?flat doc ~user
      (Array.map Dmap.of_rev_list acc)
      fallback
  in
  count_decided stats decisions;
  { user; decisions }

(* The pre-compilation implementation — one [Eval.select] per applicable
   rule, most-recent-wins overwrite into a map — kept as the
   differential-testing and benchmarking baseline.  Only the final O(n)
   conversion into the sorted-array store differs from the original. *)
let compute_per_rule policy doc ~user =
  let vars = [ ("USER", Xpath.Value.Str user) ] in
  let env = Xpath.Eval.env ~vars doc in
  let cache : (string, Ordpath.t list) Hashtbl.t = Hashtbl.create 16 in
  let select (r : Rule.t) =
    match Hashtbl.find_opt cache r.path_src with
    | Some ids -> ids
    | None ->
      let ids = Xpath.Eval.select env r.path in
      Hashtbl.add cache r.path_src ids;
      ids
  in
  let maps = Array.make 5 Ordpath.Map.empty in
  (* Ascending priority: later rules overwrite earlier decisions. *)
  List.iter
    (fun (r : Rule.t) ->
      let i = privilege_index r.privilege in
      List.iter (fun id -> maps.(i) <- Ordpath.Map.add id r maps.(i)) (select r))
    (Policy.rules_for policy ~user);
  let decisions =
    Array.map
      (fun m ->
        Dmap.of_rev_list
          (Ordpath.Map.fold (fun id r acc -> (id, r) :: acc) m []))
      maps
  in
  { user; decisions }

let user t = t.user

let with_user t user = { t with user }

(* Permission-equivalence signature.  Priorities are unique within a
   policy, so the ascending priority list identifies the applicable rule
   list exactly; when no applicable rule mentions [$USER], every
   selection — and hence every decision store [compute] builds — is
   independent of the user name.  Users whose rules do mention [$USER]
   get their name appended, making them singleton classes (their
   decisions genuinely depend on who is asking). *)
let profile policy ~user =
  let rules = Policy.rules_for policy ~user in
  let b = Buffer.create 64 in
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string b (string_of_int r.priority);
      Buffer.add_char b ';')
    rules;
  if List.exists Rule.uses_user_variable rules then begin
    Buffer.add_char b '$';
    Buffer.add_string b user
  end;
  Buffer.contents b

(* Delta-aware re-resolution: with downward rule paths, a node's selection
   depends only on its ancestor chain, so decisions outside the affected
   range are still valid on the new document.  Inside the range, stale
   entries (relabelled or removed nodes) are dropped and each affected
   subtree is re-matched in one compiled sub-traversal that re-threads the
   automaton state down the root's ancestor chain.  {!Delta.of_roots}
   yields disjoint roots in document order, so the re-matched stream is
   itself ascending and replaces the affected spans of the sorted stores
   by splicing. *)
(* Shared tail of the two incremental paths: re-match the given rules
   over exactly the subtrees rooted at [roots] (one compiled
   sub-traversal per root, re-threading the automaton state down the
   root's ancestor chain) and splice the resulting spans into the sorted
   stores.  Sound whenever every rule path is downward and decisions
   outside [roots] are unchanged — the callers establish that. *)
let resplice ?flat t rules doc roots =
  let stats = stats_index rules in
  let matcher = matcher_of_rules rules in
  let acc : (Ordpath.t * Rule.t) list array = Array.make 5 [] in
  let push = node_pusher ?stats () in
  let f () (n : Xmldoc.Node.t) rules = push acc n.id rules in
  (match flat with
   | Some fl ->
     (* One shared run over all the roots — {!Delta.of_roots} yields them
        disjoint and ascending, which is exactly the plural fold's
        contract. *)
     let ixs = List.filter_map (Xmldoc.Flat.find_ix fl) roots in
     Xpath.Compile.fold_subtrees_flat matcher fl ~roots:ixs ~init:() ~f
   | None ->
     List.iter
       (fun root -> Xpath.Compile.fold_subtree matcher doc ~root ~init:() ~f)
       roots);
  let additions = Array.map Dmap.of_rev_list acc in
  (* Decided over the re-resolved spans only — the unaffected bulk
     was already counted when its decisions were first computed. *)
  count_decided stats additions;
  let decisions =
    Array.map2
      (fun base additions -> Dmap.splice base roots additions)
      t.decisions additions
  in
  { t with decisions }

let update ?flat t policy doc delta =
  match delta with
  | Delta.All -> compute ?flat policy doc ~user:t.user
  | Delta.Local [] -> t
  | Delta.Local roots ->
    let rules = Policy.rules_for policy ~user:t.user in
    if not (Delta.local_rules rules) then compute ?flat policy doc ~user:t.user
    else resplice ?flat t rules doc roots

(* Incremental re-resolution under policy churn: the document is
   unchanged, the applicable rule list is not.  A decision can only
   change where (a) an added/changed rule now matches — those nodes come
   from evaluating just the changed paths — or (b) a removed/changed
   rule used to decide — those nodes are read off the existing stores.
   Everything else keeps its winner: unchanged rules select the same
   nodes on the same document, and the most-recent-wins resolution at an
   unaffected node ranges over an unchanged applicable set.  The union
   of (a) and (b), widened to disjoint subtree roots, is then re-matched
   with exactly the {!update} machinery, so a one-rule churn costs one
   path evaluation plus a few subtree re-matches instead of a full
   {!compute} pass. *)
let update_policy ?flat t ~old_policy policy doc =
  if old_policy == policy then (t, Delta.empty)
  else begin
    let user = t.user in
    let old_rules = Policy.rules_for old_policy ~user in
    let new_rules = Policy.rules_for policy ~user in
    let unchanged =
      List.length old_rules = List.length new_rules
      && List.for_all2 Rule.equal old_rules new_rules
    in
    if unchanged then (t, Delta.empty)
    else if not (Delta.local_rules new_rules) then
      (compute ?flat policy doc ~user, Delta.all)
    else begin
      let module IM = Map.Make (Int) in
      let index rules =
        List.fold_left
          (fun m (r : Rule.t) -> IM.add r.priority r m)
          IM.empty rules
      in
      let om = index old_rules and nm = index new_rules in
      let changed other (r : Rule.t) =
        match IM.find_opt r.priority other with
        | Some r' -> not (Rule.equal r r')
        | None -> true
      in
      let added = List.filter (changed om) new_rules in
      let removed = List.filter (changed nm) old_rules in
      (* Candidate-root plan for the added paths.  The steps of a
         downward path thread parent-to-descendant, so every element
         name tested along a union branch is guaranteed to sit on the
         ancestor-or-self chain of each of that branch's matches.  With
         a flat snapshot, the label index then bounds the selection to
         the subtrees of the nodes bearing the branch's rarest such
         name — usually a handful of small subtrees instead of the
         whole document.  [None] when some branch carries no name test
         ([//node()]) or the candidates are too dense to beat one full
         scan. *)
      let anchored_roots fl =
        let module A = Xpath.Ast in
        let module F = Xmldoc.Flat in
        let branch_names (p : A.path) =
          List.filter_map
            (fun (s : A.step) ->
              match (s.axis, s.test) with
              | (A.Child | A.Descendant | A.Descendant_or_self | A.Self),
                A.Name l ->
                Some l
              | _ -> None)
            p.steps
        in
        let rec branches e acc =
          match (e : A.expr) with
          | A.Union (a, b) -> Option.bind (branches a acc) (branches b)
          | A.Path p -> (
            match branch_names p with
            | [] -> None
            | names -> Some (names :: acc))
          | _ -> None
        in
        match
          List.fold_left
            (fun acc (r : Rule.t) -> Option.bind acc (branches r.Rule.path))
            (Some []) added
        with
        | None -> None
        | Some branches ->
          let rarest names =
            List.fold_left
              (fun best l ->
                let n = Array.length (F.by_label_ix fl l) in
                match best with
                | Some (_, bn) when bn <= n -> best
                | _ -> Some (l, n))
              None names
          in
          let seen = Hashtbl.create 8 in
          let labels =
            List.filter_map
              (fun names ->
                match rarest names with
                | Some (l, _) when not (Hashtbl.mem seen l) ->
                  Hashtbl.add seen l ();
                  Some l
                | _ -> None)
              branches
          in
          let ixs =
            List.sort_uniq compare
              (List.concat_map
                 (fun l -> Array.to_list (F.by_label_ix fl l))
                 labels)
          in
          (* Nested candidates collapse into their outermost ancestor so
             the subtree folds stay disjoint. *)
          let limit = ref 0 and covered = ref 0 and nroots = ref 0 in
          let roots =
            List.filter
              (fun ix ->
                if ix < !limit then false
                else begin
                  limit := F.subtree_end fl ix;
                  covered := !covered + (!limit - ix);
                  incr nroots;
                  true
                end)
              ixs
          in
          (* Each root pays a short ancestor re-thread on top of its
             span; past that budget one full scan is cheaper. *)
          if !covered + (10 * !nroots) > F.size fl then None
          else Some roots
      in
      (* (a) nodes the added/changed rules now select — one compiled
         pass over just the changed paths (they are downward, or the
         [local_rules] guard above would have sent us to [compute]),
         emitting per-privilege winners among the added rules in
         document order. *)
      let select_added ?stats () =
        let matcher = matcher_of_rules added in
        let acc : (Ordpath.t * Rule.t) list array = Array.make 5 [] in
        let ids = ref [] in
        let f push () (n : Xmldoc.Node.t) rules =
          ids := n.id :: !ids;
          push acc n.id rules
        in
        let f = f (node_pusher ?stats ()) in
        (match flat with
         | Some fl -> (
           match anchored_roots fl with
           | Some roots ->
             Xpath.Compile.fold_subtrees_flat matcher fl ~roots ~init:() ~f
           | None -> Xpath.Compile.fold_flat matcher fl ~init:() ~f)
         | None -> Xpath.Compile.fold matcher doc ~init:() ~f);
        (Array.map Dmap.of_rev_list acc, List.rev !ids)
      in
      if removed = [] then begin
        (* Pure addition: nothing previously decided needs a runner-up,
           so the new winners merge straight into the sorted stores —
           an added rule overrides exactly where its timestamp is the
           most recent (axiom 14), everywhere else the standing winner
           survives the [higher_priority] merge.  No subtree
           re-matching at all. *)
        let stats = stats_index added in
        let additions, added_ids = select_added ?stats () in
        let decisions =
          Array.map2 (Dmap.merge higher_priority) t.decisions additions
        in
        (* Decided = the added-rule wins that survived the merge. *)
        (match stats with
         | None -> ()
         | Some entry_of ->
           Array.iteri
             (fun i additions ->
               Dmap.fold
                 (fun id (r : Rule.t) () ->
                   match Dmap.find_opt id decisions.(i) with
                   | Some w when w.Rule.priority = r.Rule.priority ->
                     Obs.Rulestats.add_decided (entry_of r) 1
                   | _ -> ())
                 additions ())
             additions);
        ({ t with decisions }, Delta.of_roots added_ids)
      end
      else begin
        let added_ids =
          if added = [] then [] else snd (select_added ())
        in
        (* (b) nodes the removed/changed rules currently decide *)
        let removed_prios =
          List.fold_left
            (fun m (r : Rule.t) -> IM.add r.priority () m)
            IM.empty removed
        in
        let removed_ids =
          Array.fold_left
            (fun acc store ->
              Dmap.fold
                (fun id (r : Rule.t) acc ->
                  if IM.mem r.priority removed_prios then id :: acc else acc)
                store acc)
            [] t.decisions
        in
        match Delta.of_roots (List.rev_append removed_ids added_ids) with
        | Delta.All -> (compute ?flat policy doc ~user, Delta.all)
        | Delta.Local [] -> (t, Delta.empty)
        | Delta.Local roots as delta ->
          (resplice ?flat t new_rules doc roots, delta)
      end
    end
  end

let deciding_rule t privilege id =
  Dmap.find_opt id t.decisions.(privilege_index privilege)

let holds t privilege id =
  match deciding_rule t privilege id with
  | Some r -> r.Rule.decision = Rule.Accept
  | None -> false

(* Visibility of every node of a frozen snapshot, one byte per flat
   index: 0 hidden, 1 visible with its source label, 2 visible as
   RESTRICTED (position-only) — axioms 15-17 in array form.  The decision
   stores are sorted in document order, which is exactly flat index
   order, so instead of a binary search per node the scan advances one
   pointer per store: O(n + |decisions|) total, no ordpath hashing.
   Parents precede children in index order, so the top-down "parent
   selected" premise reads the byte already written at [parent_ix]. *)
let flat_visibility t fl =
  let module F = Xmldoc.Flat in
  let n = F.size fl in
  let vis = Bytes.make n '\000' in
  if n > 0 then begin
    let read = t.decisions.(privilege_index Privilege.Read) in
    let pos = t.decisions.(privilege_index Privilege.Position) in
    let ri = ref 0 and pi = ref 0 in
    let accepts (store : Rule.t Dmap.t) ptr id =
      let len = Array.length store in
      let rec at () =
        if !ptr >= len then false
        else
          let c = Ordpath.compare (fst store.(!ptr)) id in
          if c < 0 then begin
            incr ptr;
            at ()
          end
          else c = 0
      in
      at () && (snd store.(!ptr)).Rule.decision = Rule.Accept
    in
    Bytes.unsafe_set vis 0 '\001' (* the document node: axiom 15 *);
    for i = 1 to n - 1 do
      let p = F.parent_ix fl i in
      if p >= 0 && Bytes.unsafe_get vis p <> '\000' then begin
        let id = (F.node fl i).Xmldoc.Node.id in
        if accepts read ri id then Bytes.unsafe_set vis i '\001'
        else if accepts pos pi id then Bytes.unsafe_set vis i '\002'
      end
    done
  end;
  vis

let permitted t privilege =
  Dmap.fold
    (fun id (r : Rule.t) acc ->
      if r.decision = Rule.Accept then Ordpath.Set.add id acc else acc)
    t.decisions.(privilege_index privilege)
    Ordpath.Set.empty

(* Folds the decision stores directly: the accepting entries are exactly
   the [perm] facts, already keyed in document order — no privileges ×
   nodes product. *)
let facts t doc =
  List.concat_map
    (fun privilege ->
      List.rev
        (Dmap.fold
           (fun id (r : Rule.t) acc ->
             if r.decision = Rule.Accept && Xmldoc.Document.mem doc id then
               (privilege, id) :: acc
             else acc)
           t.decisions.(privilege_index privilege)
           []))
    Privilege.all
