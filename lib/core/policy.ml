type t = {
  subjects : Subject.t;
  rules : Rule.t list;  (* ascending priority *)
}

let empty = { subjects = Subject.empty; rules = [] }

let check_distinct rules =
  let sorted =
    List.sort (fun (a : Rule.t) b -> Int.compare a.priority b.priority) rules
  in
  let rec dup = function
    | (a : Rule.t) :: (b : Rule.t) :: _ when a.priority = b.priority ->
      invalid_arg
        (Printf.sprintf "Policy: two rules share priority %d" a.priority)
    | _ :: rest -> dup rest
    | [] -> ()
  in
  dup sorted;
  sorted

let v subjects rules = { subjects; rules = check_distinct rules }

let subjects t = t.subjects
let rules t = t.rules
let with_subjects t subjects = { t with subjects }

let next_priority t =
  1 + List.fold_left (fun m (r : Rule.t) -> max m r.priority) 0 t.rules

let add_rule t (r : Rule.t) =
  if not (Subject.mem t.subjects r.subject) then
    raise (Subject.Unknown_subject r.subject);
  { t with rules = check_distinct (r :: t.rules) }

let grant t privilege ~path ~subject =
  add_rule t
    (Rule.accept privilege ~path ~subject ~priority:(next_priority t))

let deny t privilege ~path ~subject =
  add_rule t (Rule.deny privilege ~path ~subject ~priority:(next_priority t))

let revoke t ~priority =
  { t with rules = List.filter (fun (r : Rule.t) -> r.priority <> priority) t.rules }

let rule_with_priority t ~priority =
  List.find_opt (fun (r : Rule.t) -> r.priority = priority) t.rules

let add_isa t ~sub ~super =
  { t with subjects = Subject.add_isa t.subjects ~sub ~super }

let remove_isa t ~sub ~super =
  { t with subjects = Subject.remove_isa t.subjects ~sub ~super }

let rules_for t ~user =
  List.filter (fun (r : Rule.t) -> Subject.isa t.subjects user r.subject) t.rules

let pp fmt t =
  Subject.pp fmt t.subjects;
  List.iter (fun r -> Format.fprintf fmt "%a@." Rule.pp r) t.rules
