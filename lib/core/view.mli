(** View derivation (axioms 15–17): the pruned copy of the source database
    a user is permitted to see.  A node is selected iff its parent is
    selected and the user holds [read] or [position] on it; position-only
    nodes are shown with the {!restricted} label.  Selected nodes keep
    their source identifiers (the paper: "selected nodes are not
    renumbered in the view"). *)

val restricted : string
(** ["RESTRICTED"] — the label of §2.1, after Sandhu & Jajodia. *)

val derive : ?flat:Xmldoc.Flat.t -> Xmldoc.Document.t -> Perm.t -> Xmldoc.Document.t
(** The view as a first-class document: every query facility works on
    it unchanged.  When [?flat] is a frozen snapshot of the source, the
    selection pass iterates the columnar arrays instead of the node map;
    the result is identical. *)

val patch :
  Xmldoc.Document.t -> view:Xmldoc.Document.t -> Perm.t -> Delta.t ->
  Xmldoc.Document.t
(** [patch source ~view perm delta] re-derives the view incrementally:
    nodes of the old [view] outside [delta] are kept, nodes inside are
    re-selected by axioms 15–17 against the new [source] and [perm].
    Equal to [derive source perm] whenever [delta] covers the update and
    the session's rules are downward (see {!Delta.local_rules}); pass
    {!Delta.all} otherwise. *)

val is_restricted : Xmldoc.Document.t -> Ordpath.t -> bool
(** Is the node shown with the [RESTRICTED] label in this view?  (Checks
    the label, so apply it to view documents only.) *)

val visible_count : Xmldoc.Document.t -> int
(** Number of nodes excluding the document node. *)
