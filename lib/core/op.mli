(** The transactional operation alphabet: one commit order over document
    mutations (XUpdate, axioms 18–25) {e and} policy mutations (§4.3's
    one-at-a-time rule administration, plus [isa] edges of §4.2).

    A policy op carries its timestamp explicitly ({!Rule.t.priority} for
    {!Add_rule}, the target timestamp for {!Retract_rule}), so a
    journaled batch replays to exactly the policy the live commit
    produced — under axiom 14 the timestamps alone decide resolution.
    {!Serve.fresh_priority} hands out monotonic timestamps to live
    writers. *)

type policy_op =
  | Add_rule of Rule.t  (** issue a pre-timestamped rule *)
  | Retract_rule of { priority : int }
      (** administrative deletion of the rule issued at [priority] *)
  | Add_isa of { sub : string; super : string }
  | Remove_isa of { sub : string; super : string }

type t = Doc of Xupdate.Op.t | Policy of policy_op

val doc : Xupdate.Op.t -> t
val docs : Xupdate.Op.t list -> t list

val doc_ops : t list -> Xupdate.Op.t list
(** The document ops of a batch, in order. *)

val is_policy : t -> bool

val policy_kind : policy_op -> string
(** ["add_rule" | "retract_rule" | "add_isa" | "remove_isa"] — the label
    vocabulary of the [policy_ops_total] metric family. *)

val name : t -> string
(** {!Xupdate.Op.name} for document ops, {!policy_kind} for policy ops. *)

val pp_policy : Format.formatter -> policy_op -> unit
val pp : Format.formatter -> t -> unit

(** {1 Journal conversion}

    The store is policy-agnostic ({!Store.Journal.policy_op} carries
    wire fields); these converters are the single boundary between the
    typed and the journaled representation. *)

val to_journal : t -> Store.Journal.op

val of_journal : Store.Journal.op -> t
(** Re-parses rule path text ({!Rule.v}).  Journal scans validate paths
    and privilege names, so this cannot raise on scanned records. *)
