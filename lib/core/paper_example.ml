let document_xml =
  {|<patients>
  <franck>
    <service>otolarynology</service>
    <diagnosis>tonsillitis</diagnosis>
  </franck>
  <robert>
    <service>pneumology</service>
    <diagnosis>pneumonia</diagnosis>
  </robert>
</patients>|}

let document () = Xmldoc.Xml_parse.of_string document_xml

let beaufort = "beaufort"
let laporte = "laporte"
let richard = "richard"
let robert = "robert"
let franck = "franck"

let subjects =
  Subject.of_list
    [
      (Subject.Role, "staff", []);
      (Subject.Role, "secretary", [ "staff" ]);
      (Subject.Role, "doctor", [ "staff" ]);
      (Subject.Role, "epidemiologist", [ "staff" ]);
      (Subject.Role, "patient", []);
      (Subject.User, beaufort, [ "secretary" ]);
      (Subject.User, laporte, [ "doctor" ]);
      (Subject.User, richard, [ "epidemiologist" ]);
      (Subject.User, robert, [ "patient" ]);
      (Subject.User, franck, [ "patient" ]);
    ]

(* Axiom 13, rules 1-12 with the paper's priorities 10-21. *)
let policy =
  let r = Rule.v in
  Policy.v subjects
    [
      r Rule.Accept Privilege.Read ~path:"//node()" ~subject:"staff" ~priority:10;
      r Rule.Deny Privilege.Read ~path:"//diagnosis/node()" ~subject:"secretary"
        ~priority:11;
      r Rule.Accept Privilege.Position ~path:"//diagnosis/node()"
        ~subject:"secretary" ~priority:12;
      r Rule.Accept Privilege.Read ~path:"/patients" ~subject:"patient"
        ~priority:13;
      r Rule.Accept Privilege.Read
        ~path:"/patients/*[name() = $USER]/descendant-or-self::node()"
        ~subject:"patient" ~priority:14;
      r Rule.Deny Privilege.Read ~path:"/patients/*" ~subject:"epidemiologist"
        ~priority:15;
      r Rule.Accept Privilege.Position ~path:"/patients/*"
        ~subject:"epidemiologist" ~priority:16;
      r Rule.Accept Privilege.Insert ~path:"/patients" ~subject:"secretary"
        ~priority:17;
      r Rule.Accept Privilege.Update ~path:"/patients/*" ~subject:"secretary"
        ~priority:18;
      r Rule.Accept Privilege.Insert ~path:"//diagnosis" ~subject:"doctor"
        ~priority:19;
      r Rule.Accept Privilege.Update ~path:"//diagnosis/node()"
        ~subject:"doctor" ~priority:20;
      r Rule.Accept Privilege.Delete ~path:"//diagnosis/node()"
        ~subject:"doctor" ~priority:21;
    ]

let policy_text = Policy_lang.to_string policy

let login user = Session.login policy (document ()) ~user

let find doc label =
  match Xmldoc.Document.find_labelled doc label with
  | Some n -> n.Xmldoc.Node.id
  | None -> raise Not_found
