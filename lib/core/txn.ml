(* The transactional write engine: a batch of operations — document
   mutations (XUpdate) and policy mutations (Core.Op) in one commit
   order — staged op-by-op on the submitting user's session (each op
   sees the effects of the previous one: a document op staged after a
   rule change selects and checks against the new policy), validated
   end-to-end, and committed atomically.  All staging happens on
   persistent values, so rollback is free: abort simply drops the
   staged session, and because staging is registry-silent
   (Secure_update.stage + quiet rebases + quiet policy rebases), the
   only observable trace of an aborted batch is the txn_aborts_total
   counter. *)

type policy_denial = { index : int; op : Op.policy_op; reason : string }

type committed = {
  session : Session.t;
  reports : Secure_update.report list;
  policy_denials : policy_denial list;
  applied : Op.t list;
  delta : Delta.t;
  policy_delta : Delta.t;
  policy : Policy.t;
  policy_changed : bool;
}

type error =
  | Denied of {
      index : int;
      op : Xupdate.Op.t;
      denials : Secure_update.denial list;
    }
  | Policy_denied of { index : int; op : Op.policy_op; reason : string }
  | Invalid of {
      reports : Secure_update.report list;
      violations : string list;
    }
  | Failed of { index : int; op : Xupdate.Op.t; exn : exn }

exception Aborted of error

let m_commits =
  Obs.Metrics.counter Obs.Metrics.default "txn_commits_total"
    ~help:"Transactions committed (all ops staged, validation passed)"

let m_aborts =
  Obs.Metrics.counter Obs.Metrics.default "txn_aborts_total"
    ~help:"Transactions rolled back (denial, validation failure or exception)"

let m_txn_ops =
  Obs.Metrics.counter Obs.Metrics.default "txn_ops_total"
    ~help:"XUpdate operations inside committed transactions"

let m_policy_denials =
  Obs.Metrics.counter Obs.Metrics.default "txn_policy_denials_total"
    ~help:"Policy operations denied inside transactions (aborting or tolerated)"

let h_commit =
  Obs.Metrics.histogram Obs.Metrics.default "txn_commit_seconds"
    ~help:"Latency of committed transactions (staging + validation + flush)"

(* Outcome family: commit / abort / tolerated_denial (a `Tolerate commit
   that downgraded at least one denied target, §4.4.2).  The abort cell
   is the one labelled instrument an aborted transaction is allowed to
   move — it is the family view of txn_aborts_total. *)
let f_outcomes =
  Obs.Metrics.family Obs.Metrics.default "txn_outcomes_total"
    ~labels:[ "outcome" ]
    ~help:"Transaction outcomes by kind"

let cell_commit = Obs.Metrics.labels f_outcomes [ "commit" ]
let cell_abort = Obs.Metrics.labels f_outcomes [ "abort" ]
let cell_tolerated = Obs.Metrics.labels f_outcomes [ "tolerated_denial" ]

let f_ops_by_kind =
  Obs.Metrics.family Obs.Metrics.default "xupdate_ops_total"
    ~labels:[ "kind" ]
    ~help:"Committed XUpdate operations by operation kind"

let f_policy_ops =
  Obs.Metrics.family Obs.Metrics.default "policy_ops_total"
    ~labels:[ "kind" ]
    ~help:"Committed policy operations by kind \
           (add_rule/retract_rule/add_isa/remove_isa)"

let merged_delta reports =
  List.fold_left
    (fun acc (r : Secure_update.report) -> Delta.union acc r.delta)
    Delta.empty reports

let pp_error fmt = function
  | Denied { index; op; denials } ->
    Format.fprintf fmt
      "op %d (%s) denied on %d node(s); transaction rolled back" index
      (Xupdate.Op.name op) (List.length denials)
  | Policy_denied { index; op; reason } ->
    Format.fprintf fmt "op %d (%s) denied, transaction rolled back: %s" index
      (Op.policy_kind op) reason
  | Invalid { violations; _ } ->
    Format.fprintf fmt "validation failed, transaction rolled back: %s"
      (String.concat "; " violations)
  | Failed { index; op; exn } ->
    Format.fprintf fmt "op %d (%s) failed, transaction rolled back: %s" index
      (Xupdate.Op.name op) (Printexc.to_string exn)

let error_to_string e = Format.asprintf "%a" pp_error e

(* Authority over policy administration (see Admin): when the caller
   threads an administration state, every staged policy op is checked
   against it — the owner may do anything, a delegate may issue rules
   within its delegated (privilege, node set) authority and retract its
   own rules, and nobody else may touch the subject hierarchy.  Without
   [?admin] the transaction trusts its caller (the historical behaviour,
   and what recovery replay uses: journaled batches hold only ops that
   passed the live check). *)
let check_authority admin doc ~issuer pop =
  match admin with
  | None -> None
  | Some adm ->
    if String.equal issuer (Admin.owner adm) then None
    else (
      match (pop : Op.policy_op) with
      | Op.Add_rule r ->
        let nodes =
          Xpath.Eval.select
            (Xpath.Eval.env ~vars:[ ("USER", Xpath.Value.Str issuer) ] doc)
            r.Rule.path
        in
        if Admin.authority adm doc ~issuer r.Rule.privilege nodes then None
        else
          Some
            (Printf.sprintf "%s has no authority to issue %s rules here"
               issuer
               (Privilege.to_string r.Rule.privilege))
      | Op.Retract_rule { priority } -> (
        match Admin.issuer_of adm ~priority with
        | Some orig when String.equal orig issuer -> None
        | _ ->
          Some (Printf.sprintf "%s may not retract rule %d" issuer priority))
      | Op.Add_isa _ | Op.Remove_isa _ ->
        Some
          (Printf.sprintf "%s may not administer the subject hierarchy" issuer))

(* One policy op against the session's current policy.  Failures come
   back as denial reasons, not exceptions: under `Tolerate they are
   recorded and skipped, under `Abort they roll the batch back. *)
let apply_policy_op policy pop =
  match (pop : Op.policy_op) with
  | Op.Add_rule r -> (
    match Policy.add_rule policy r with
    | p -> Ok p
    | exception Subject.Unknown_subject s ->
      Error (Printf.sprintf "unknown subject %s" s)
    | exception Invalid_argument m -> Error m)
  | Op.Retract_rule { priority } -> (
    match Policy.rule_with_priority policy ~priority with
    | Some _ -> Ok (Policy.revoke policy ~priority)
    | None -> Error (Printf.sprintf "no rule with timestamp %d" priority))
  | Op.Add_isa { sub; super } -> (
    match Policy.add_isa policy ~sub ~super with
    | p -> Ok p
    | exception Subject.Unknown_subject s ->
      Error (Printf.sprintf "unknown subject %s" s)
    | exception Subject.Cycle _ ->
      Error (Printf.sprintf "isa edge %s -> %s would create a cycle" sub super))
  | Op.Remove_isa { sub; super } ->
    if Subject.has_isa_edge (Policy.subjects policy) ~sub ~super then
      Ok (Policy.remove_isa policy ~sub ~super)
    else Error (Printf.sprintf "no isa edge %s -> %s" sub super)

let commit_ops ?(on_denial = `Abort) ?(validate = Xmldoc.Invariants.check)
    ?admin session ops =
  Obs.Trace.with_span "txn.commit" @@ fun () ->
  Obs.Trace.annotate "user" (Session.user session);
  Obs.Trace.annotate "ops" (string_of_int (List.length ops));
  (* Correlation id: reuse the ambient one when a caller (Serve.commit)
     already opened a transaction scope, otherwise start our own so a
     standalone commit's events still correlate. *)
  let txn =
    match Obs.Events.current_txn () with
    | 0 -> Obs.Events.next_txn ()
    | id -> id
  in
  Obs.Events.with_txn txn @@ fun () ->
  Obs.Trace.annotate "txn" (string_of_int txn);
  Obs.Events.emit
    (Obs.Events.Txn_begin
       { user = Session.user session; ops = List.length ops });
  let t0 = Obs.Mono.now () in
  let issuer = Session.user session in
  let defer = Queue.create () in
  let abort err =
    Obs.Trace.annotate "outcome" "aborted";
    Obs.Metrics.inc m_aborts;
    Obs.Metrics.inc cell_abort;
    Obs.Events.emit (Obs.Events.Abort { reason = error_to_string err });
    Error err
  in
  (* Staging accumulator: reports, applied ops and policy denials are
     rev-lists in op order; [pdelta] unions the spans the writer's own
     decisions were re-resolved over (what its lazy view must widen to,
     on top of the document delta). *)
  let rec stage_all i session reports applied denials pdelta = function
    | [] ->
      Ok (session, List.rev reports, List.rev applied, List.rev denials, pdelta)
    | Op.Doc op :: rest -> (
      match Secure_update.stage ~defer session op with
      | exception exn -> Error (Failed { index = i; op; exn })
      | session', report ->
        Obs.Events.emit
          (Obs.Events.Stage { index = i; op = Xupdate.Op.name op });
        if on_denial = `Abort && report.Secure_update.denied <> [] then begin
          Obs.Events.emit
            (Obs.Events.Denial
               {
                 index = i;
                 op = Xupdate.Op.name op;
                 denied = List.length report.Secure_update.denied;
               });
          Error
            (Denied { index = i; op; denials = report.Secure_update.denied })
        end
        else
          stage_all (i + 1) session' (report :: reports)
            (Op.Doc op :: applied) denials pdelta rest)
    | Op.Policy pop :: rest -> (
      let deny reason =
        Obs.Events.emit
          (Obs.Events.Policy_denial
             { index = i; op = Op.policy_kind pop; reason });
        if on_denial = `Abort then
          Error (Policy_denied { index = i; op = pop; reason })
        else begin
          Obs.Metrics.inc m_policy_denials;
          stage_all (i + 1) session reports applied
            ({ index = i; op = pop; reason } :: denials)
            pdelta rest
        end
      in
      match check_authority admin (Session.source session) ~issuer pop with
      | Some reason -> deny reason
      | None -> (
        match apply_policy_op (Session.policy session) pop with
        | Error reason -> deny reason
        | Ok policy' ->
          let session', d =
            Obs.Trace.with_span "txn.stage_policy" (fun () ->
                Session.apply_policy ~quiet:true session policy')
          in
          Obs.Events.emit
            (Obs.Events.Policy_stage { index = i; op = Op.policy_kind pop });
          stage_all (i + 1) session' reports
            (Op.Policy pop :: applied)
            denials (Delta.union pdelta d) rest))
  in
  match stage_all 0 session [] [] [] Delta.empty ops with
  | Error err -> abort err
  | Ok (session', reports, applied, policy_denials, policy_delta) -> (
    match
      Obs.Trace.with_span "txn.validate" (fun () ->
          validate (Session.source session'))
    with
    | exception exn ->
      abort (Invalid { reports; violations = [ Printexc.to_string exn ] })
    | _ :: _ as violations ->
      Obs.Events.emit
        (Obs.Events.Validation_failure { violations = List.length violations });
      abort (Invalid { reports; violations })
    | [] ->
      (* Commit point: the staged observations become real. *)
      Queue.iter (fun event -> event ()) defer;
      Secure_update.record_committed reports;
      let policy_ops =
        List.filter_map
          (function Op.Policy p -> Some p | Op.Doc _ -> None)
          applied
      in
      Obs.Metrics.inc m_commits;
      Obs.Metrics.add m_txn_ops (List.length reports);
      let denied =
        List.fold_left
          (fun acc (r : Secure_update.report) ->
            acc + List.length r.denied)
          0 reports
        + List.length policy_denials
      in
      Obs.Metrics.inc (if denied > 0 then cell_tolerated else cell_commit);
      List.iter
        (fun (r : Secure_update.report) ->
          Obs.Metrics.inc
            (Obs.Metrics.labels f_ops_by_kind
               [ Xupdate.Op.name r.Secure_update.op ]))
        reports;
      List.iter
        (fun pop ->
          Obs.Metrics.inc
            (Obs.Metrics.labels f_policy_ops [ Op.policy_kind pop ]);
          (* A retracted rule must leave the coverage registry — see
             Obs.Rulestats.retire. *)
          match pop with
          | Op.Retract_rule { priority } ->
            if Obs.Rulestats.enabled () then Obs.Rulestats.retire ~key:priority
          | _ -> ())
        policy_ops;
      Obs.Metrics.observe h_commit (Obs.Mono.now () -. t0);
      Obs.Events.emit
        (Obs.Events.Commit { ops = List.length applied; denied });
      Obs.Trace.annotate "outcome" "committed";
      let policy = Session.policy session' in
      Ok
        {
          session = session';
          reports;
          policy_denials;
          applied;
          delta = merged_delta reports;
          policy_delta;
          policy;
          policy_changed = policy_ops <> [];
        })

let commit ?on_denial ?validate session ops =
  commit_ops ?on_denial ?validate session (Op.docs ops)

let commit_exn ?on_denial ?validate session ops =
  match commit ?on_denial ?validate session ops with
  | Ok c -> c
  | Error err -> raise (Aborted err)

(* Crash recovery: Store.recover parameterised with the secure replay.
   A journal record holds the submitting user and the ops as committed
   (document ops as submitted, policy ops as applied); re-running them
   through the same commit path over the same evolving policy is
   deterministic — ordpath allocation depends only on the document,
   target selection only on the user's view, and policy resolution only
   on the recorded timestamps — so the recovered store AND the recovered
   policy equal the pre-crash state at the last commit boundary.
   Sessions are cached across records, rebased with each commit's
   document delta and re-keyed onto each commit's policy, mirroring what
   Serve does live.  No [?admin] is threaded: the live commit already
   enforced authority, and journaled batches hold only ops that passed
   it. *)

type recovered = {
  doc : Xmldoc.Document.t;
  policy : Policy.t;
  seq : int;
  snapshot_seq : int;
  replayed : int;
  torn_bytes : int;
}

let recover policy dir =
  Obs.Trace.with_span "txn.recover" @@ fun () ->
  let sessions : (string, Session.t) Hashtbl.t = Hashtbl.create 8 in
  let current = ref policy in
  let replay doc ~user ~mode jops =
    let ops = List.map Op.of_journal jops in
    let session =
      match Hashtbl.find_opt sessions user with
      | Some s -> s
      | None -> Session.login !current doc ~user
    in
    let on_denial =
      match mode with `Atomic -> `Abort | `Tolerant -> `Tolerate
    in
    match commit_ops ~on_denial session ops with
    | Error err ->
      raise
        (Store.Error
           (Printf.sprintf "replay aborted for user %s: %s" user
              (error_to_string err)))
    | Ok c ->
      let doc' = Session.source c.session in
      current := c.policy;
      let others =
        Hashtbl.fold
          (fun u s acc -> if String.equal u user then acc else (u, s) :: acc)
          sessions []
      in
      Hashtbl.replace sessions user c.session;
      List.iter
        (fun (u, s) ->
          let s = Session.apply_delta s doc' c.delta in
          let s =
            if c.policy_changed then fst (Session.apply_policy s c.policy)
            else s
          in
          Hashtbl.replace sessions u s)
        others;
      doc'
  in
  let r = Store.recover ~replay dir in
  {
    doc = r.Store.doc;
    policy = !current;
    seq = r.Store.seq;
    snapshot_seq = r.Store.snapshot_seq;
    replayed = r.Store.replayed;
    torn_bytes = r.Store.torn_bytes;
  }
