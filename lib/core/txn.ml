(* The transactional write engine: a batch of XUpdate operations staged
   op-by-op on the submitting user's view (each op sees the effects of
   the previous one, exactly as a sequential Secure_update.apply would),
   validated end-to-end, and committed atomically.  All staging happens
   on persistent values, so rollback is free: abort simply drops the
   staged session, and because staging is registry-silent
   (Secure_update.stage + quiet rebases), the only observable trace of
   an aborted batch is the txn_aborts_total counter. *)

type committed = {
  session : Session.t;
  reports : Secure_update.report list;
  delta : Delta.t;
}

type error =
  | Denied of {
      index : int;
      op : Xupdate.Op.t;
      denials : Secure_update.denial list;
    }
  | Invalid of {
      reports : Secure_update.report list;
      violations : string list;
    }
  | Failed of { index : int; op : Xupdate.Op.t; exn : exn }

exception Aborted of error

let m_commits =
  Obs.Metrics.counter Obs.Metrics.default "txn_commits_total"
    ~help:"Transactions committed (all ops staged, validation passed)"

let m_aborts =
  Obs.Metrics.counter Obs.Metrics.default "txn_aborts_total"
    ~help:"Transactions rolled back (denial, validation failure or exception)"

let m_txn_ops =
  Obs.Metrics.counter Obs.Metrics.default "txn_ops_total"
    ~help:"XUpdate operations inside committed transactions"

let h_commit =
  Obs.Metrics.histogram Obs.Metrics.default "txn_commit_seconds"
    ~help:"Latency of committed transactions (staging + validation + flush)"

(* Outcome family: commit / abort / tolerated_denial (a `Tolerate commit
   that downgraded at least one denied target, §4.4.2).  The abort cell
   is the one labelled instrument an aborted transaction is allowed to
   move — it is the family view of txn_aborts_total. *)
let f_outcomes =
  Obs.Metrics.family Obs.Metrics.default "txn_outcomes_total"
    ~labels:[ "outcome" ]
    ~help:"Transaction outcomes by kind"

let cell_commit = Obs.Metrics.labels f_outcomes [ "commit" ]
let cell_abort = Obs.Metrics.labels f_outcomes [ "abort" ]
let cell_tolerated = Obs.Metrics.labels f_outcomes [ "tolerated_denial" ]

let f_ops_by_kind =
  Obs.Metrics.family Obs.Metrics.default "xupdate_ops_total"
    ~labels:[ "kind" ]
    ~help:"Committed XUpdate operations by operation kind"

let merged_delta reports =
  List.fold_left
    (fun acc (r : Secure_update.report) -> Delta.union acc r.delta)
    Delta.empty reports

let pp_error fmt = function
  | Denied { index; op; denials } ->
    Format.fprintf fmt
      "op %d (%s) denied on %d node(s); transaction rolled back" index
      (Xupdate.Op.name op) (List.length denials)
  | Invalid { violations; _ } ->
    Format.fprintf fmt "validation failed, transaction rolled back: %s"
      (String.concat "; " violations)
  | Failed { index; op; exn } ->
    Format.fprintf fmt "op %d (%s) failed, transaction rolled back: %s" index
      (Xupdate.Op.name op) (Printexc.to_string exn)

let error_to_string e = Format.asprintf "%a" pp_error e

let commit ?(on_denial = `Abort) ?(validate = Xmldoc.Invariants.check) session
    ops =
  Obs.Trace.with_span "txn.commit" @@ fun () ->
  Obs.Trace.annotate "user" (Session.user session);
  Obs.Trace.annotate "ops" (string_of_int (List.length ops));
  (* Correlation id: reuse the ambient one when a caller (Serve.commit)
     already opened a transaction scope, otherwise start our own so a
     standalone commit's events still correlate. *)
  let txn =
    match Obs.Events.current_txn () with
    | 0 -> Obs.Events.next_txn ()
    | id -> id
  in
  Obs.Events.with_txn txn @@ fun () ->
  Obs.Trace.annotate "txn" (string_of_int txn);
  Obs.Events.emit
    (Obs.Events.Txn_begin
       { user = Session.user session; ops = List.length ops });
  let t0 = Obs.Mono.now () in
  let defer = Queue.create () in
  let abort err =
    Obs.Trace.annotate "outcome" "aborted";
    Obs.Metrics.inc m_aborts;
    Obs.Metrics.inc cell_abort;
    Obs.Events.emit (Obs.Events.Abort { reason = error_to_string err });
    Error err
  in
  let rec stage_all i session reports = function
    | [] -> Ok (session, List.rev reports)
    | op :: rest -> (
      match Secure_update.stage ~defer session op with
      | exception exn -> Error (Failed { index = i; op; exn })
      | session', report ->
        Obs.Events.emit
          (Obs.Events.Stage { index = i; op = Xupdate.Op.name op });
        if on_denial = `Abort && report.Secure_update.denied <> [] then begin
          Obs.Events.emit
            (Obs.Events.Denial
               {
                 index = i;
                 op = Xupdate.Op.name op;
                 denied = List.length report.Secure_update.denied;
               });
          Error
            (Denied { index = i; op; denials = report.Secure_update.denied })
        end
        else stage_all (i + 1) session' (report :: reports) rest)
  in
  match stage_all 0 session [] ops with
  | Error err -> abort err
  | Ok (session', reports) -> (
    match
      Obs.Trace.with_span "txn.validate" (fun () ->
          validate (Session.source session'))
    with
    | exception exn ->
      abort (Invalid { reports; violations = [ Printexc.to_string exn ] })
    | _ :: _ as violations ->
      Obs.Events.emit
        (Obs.Events.Validation_failure { violations = List.length violations });
      abort (Invalid { reports; violations })
    | [] ->
      (* Commit point: the staged observations become real. *)
      Queue.iter (fun event -> event ()) defer;
      Secure_update.record_committed reports;
      Obs.Metrics.inc m_commits;
      Obs.Metrics.add m_txn_ops (List.length reports);
      let denied =
        List.fold_left
          (fun acc (r : Secure_update.report) ->
            acc + List.length r.denied)
          0 reports
      in
      Obs.Metrics.inc (if denied > 0 then cell_tolerated else cell_commit);
      List.iter
        (fun (r : Secure_update.report) ->
          Obs.Metrics.inc
            (Obs.Metrics.labels f_ops_by_kind
               [ Xupdate.Op.name r.Secure_update.op ]))
        reports;
      Obs.Metrics.observe h_commit (Obs.Mono.now () -. t0);
      Obs.Events.emit
        (Obs.Events.Commit { ops = List.length reports; denied });
      Obs.Trace.annotate "outcome" "committed";
      Ok { session = session'; reports; delta = merged_delta reports })

let commit_exn ?on_denial ?validate session ops =
  match commit ?on_denial ?validate session ops with
  | Ok c -> c
  | Error err -> raise (Aborted err)

(* Crash recovery: Store.recover parameterised with the secure replay.
   A journal record holds the submitting user and the ops as submitted;
   re-running them through the same commit path over the same policy is
   deterministic — ordpath allocation depends only on the document, and
   target selection only on the user's view — so the recovered store is
   Document.equal to the pre-crash state at the last commit boundary.
   Sessions are cached across records and rebased with each commit's
   merged delta, mirroring what Serve does live. *)

type recovered = {
  doc : Xmldoc.Document.t;
  seq : int;
  snapshot_seq : int;
  replayed : int;
  torn_bytes : int;
}

let recover policy dir =
  Obs.Trace.with_span "txn.recover" @@ fun () ->
  let sessions : (string, Session.t) Hashtbl.t = Hashtbl.create 8 in
  let replay doc ~user ~mode ops =
    let session =
      match Hashtbl.find_opt sessions user with
      | Some s -> s
      | None -> Session.login policy doc ~user
    in
    let on_denial =
      match mode with `Atomic -> `Abort | `Tolerant -> `Tolerate
    in
    match commit ~on_denial session ops with
    | Error err ->
      raise
        (Store.Error
           (Printf.sprintf "replay aborted for user %s: %s" user
              (error_to_string err)))
    | Ok c ->
      let doc' = Session.source c.session in
      let others =
        Hashtbl.fold
          (fun u s acc -> if String.equal u user then acc else (u, s) :: acc)
          sessions []
      in
      Hashtbl.replace sessions user c.session;
      List.iter
        (fun (u, s) ->
          Hashtbl.replace sessions u (Session.apply_delta s doc' c.delta))
        others;
      doc'
  in
  let r = Store.recover ~replay dir in
  {
    doc = r.Store.doc;
    seq = r.Store.seq;
    snapshot_seq = r.Store.snapshot_seq;
    replayed = r.Store.replayed;
    torn_bytes = r.Store.torn_bytes;
  }
