(** Write access controls (§4.4.2, axioms 18–25): XUpdate operations whose
    target selection happens {e on the user's view}, with the paper's
    per-operation privilege requirements:

    - [xupdate:rename] — [update] on each addressed node, which must not
      be shown [RESTRICTED] (prose of §4.4.2, consistent with axioms
      20–21), i.e. [read] is required too;
    - [xupdate:update] — [update] {e and} [read] on each view-child of an
      addressed node;
    - [xupdate:append] — [insert] on the addressed node;
    - [xupdate:insert-before] / [insert-after] — [insert] on the {e parent}
      of the addressed node;
    - [xupdate:remove] — [delete] on the addressed node; the whole source
      subtree is removed, including invisible descendants (axiom 25:
      confidentiality over integrity).

    Selecting targets on the view closes the §2.2 covert channel: an
    operation can never be influenced by — and therefore can never
    reveal — data outside the view. *)

type denial = {
  target : Ordpath.t;  (** the node addressed by [PATH] *)
  node : Ordpath.t;
      (** the node the privilege was required on (a child or parent of
          [target] for update/insert-before/insert-after) *)
  privilege : Privilege.t;
  reason : string;
}

type report = {
  op : Xupdate.Op.t;
  targets : Ordpath.t list;  (** nodes selected by [PATH] on the view *)
  relabelled : Ordpath.t list;
  removed : Ordpath.t list;
  inserted : Ordpath.t list;  (** roots of freshly numbered copies *)
  denied : denial list;
  skipped : (Ordpath.t * string) list;
  delta : Delta.t;
      (** the affected ordpath range — what other sessions sharing the
          document must invalidate (see {!Serve}) *)
}

val apply : Session.t -> Xupdate.Op.t -> Session.t * report
(** Applies the operation and returns the rebased session: permissions
    and view are maintained incrementally inside the report's [delta]
    ({!Session.apply_delta}) rather than re-derived from scratch.  The
    operation may succeed on some targets and be denied on others
    (§4.4.2). *)

val stage :
  defer:(unit -> unit) Queue.t -> Session.t -> Xupdate.Op.t ->
  Session.t * report
(** [apply] with {e zero} registry side effects — the building block of
    {!Txn}.  The semantics (target selection on the view, per-axiom
    privilege checks, incremental rebase of the returned session) are
    identical, but no metric counter moves and every audit event is
    pushed onto [defer] instead of the ring; a transaction runs the
    queued events only at its commit point, so an aborted batch is
    observationally absent. *)

val record_committed : report list -> unit
(** Folds staged reports into the per-op counters
    ([secure_update_ops_total] / [..._denials_total] / [..._skips_total])
    — the metrics half of the commit point.  [apply] is exactly
    [stage] + [record_committed] + audit flush. *)

val apply_all : Session.t -> Xupdate.Op.t list -> Session.t * report list

val fully_applied : report -> bool
(** No denials and no skips. *)

val pp_report : Format.formatter -> report -> unit
