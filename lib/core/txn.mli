(** Atomic transactions over the secure update pipeline.

    The paper formalises each XUpdate operation as a single derivation
    step (axioms 18–25); an [<xupdate:modifications>] document is a
    {e sequence} of such steps.  A transaction stages the sequence
    op-by-op on the submitting user's view — each op selecting its
    targets on the view produced by the previous one, exactly as
    sequential {!Secure_update.apply} would — then validates the final
    document end-to-end and commits atomically.

    Rollback is observationally complete: staging happens on persistent
    values with the registry silenced ({!Secure_update.stage},
    [Session.apply_delta ~quiet:true]), so an aborted batch leaves the
    source, every session, the audit ring and all metrics bit-for-bit
    untouched except for one [txn_aborts_total] increment.  Audit events
    of the staged privilege checks are queued and run only at the commit
    point (their decision and deciding-rule strings are captured at
    check time). *)

type committed = {
  session : Session.t;  (** the rebased writer session *)
  reports : Secure_update.report list;  (** one per op, in order *)
  delta : Delta.t;
      (** union of the per-op deltas — what one broadcast must cover
          (see {!Serve}) *)
}

type error =
  | Denied of {
      index : int;
      op : Xupdate.Op.t;
      denials : Secure_update.denial list;
    }  (** an op hit a privilege denial under [`Abort] *)
  | Invalid of {
      reports : Secure_update.report list;
      violations : string list;
    }
      (** end-to-end validation rejected the staged document; the staged
          reports are returned for diagnosis (nothing was applied) *)
  | Failed of { index : int; op : Xupdate.Op.t; exn : exn }
      (** an op raised (e.g. {!Xpath.Eval.Error}) *)

exception Aborted of error

val commit :
  ?on_denial:[ `Abort | `Tolerate ] ->
  ?validate:(Xmldoc.Document.t -> string list) ->
  Session.t -> Xupdate.Op.t list ->
  (committed, error) result
(** [commit session ops] stages, validates and commits the batch.

    [on_denial] (default [`Abort]) selects between strict atomicity and
    the paper's §4.4.2 semantics: [`Tolerate] lets an op succeed on some
    targets and be denied on others (the denials stay in its report) —
    that mode is what the thin per-op wrappers ({!Serve.update}, the CLI
    [update] command) use to preserve the historical behaviour.

    [validate] (default {!Xmldoc.Invariants.check}) runs on the staged
    final document; any returned violation aborts.  {!Validated} passes
    schema validation here. *)

val commit_exn :
  ?on_denial:[ `Abort | `Tolerate ] ->
  ?validate:(Xmldoc.Document.t -> string list) ->
  Session.t -> Xupdate.Op.t list -> committed
(** @raise Aborted instead of returning [Error]. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Crash recovery} *)

type recovered = {
  doc : Xmldoc.Document.t;  (** the state at the last commit boundary *)
  seq : int;  (** sequence number of the last replayed transaction *)
  snapshot_seq : int;  (** the snapshot recovery started from *)
  replayed : int;  (** journal records replayed on top of it *)
  torn_bytes : int;  (** bytes of torn final record(s) discarded *)
}

val recover : Policy.t -> string -> recovered
(** [recover policy dir] = {!Store.recover} with the secure replay:
    latest valid snapshot + deterministic re-execution of the journal
    tail through {!commit} (per-record mode preserved, sessions cached
    and rebased across records).  Replay needs no renumbering because
    ordpath identifiers are persistent — the snapshot serialisation keeps
    them and insertion re-derives the same fresh labels.
    @raise Store.Error on a corrupt store or a replay divergence. *)
