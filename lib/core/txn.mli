(** Atomic transactions over the secure update pipeline.

    The paper formalises each XUpdate operation as a single derivation
    step (axioms 18–25); an [<xupdate:modifications>] document is a
    {e sequence} of such steps.  A transaction stages a sequence of
    {!Core.Op.t} — document mutations and policy mutations in one commit
    order — op-by-op on the submitting user's session: each op sees the
    effects of the previous one, so a document op staged after an
    [Add_rule] selects and checks against the {e new} policy, exactly as
    the paper's administration timestamps imply.  The staged document is
    then validated end-to-end and the batch commits atomically.

    Rollback is observationally complete: staging happens on persistent
    values with the registry silenced ({!Secure_update.stage},
    [Session.apply_delta ~quiet:true], [Session.apply_policy
    ~quiet:true]), so an aborted batch leaves the source, the policy,
    every session, the audit ring and all metrics bit-for-bit untouched
    except for one [txn_aborts_total] increment.  Audit events of the
    staged privilege checks are queued and run only at the commit point
    (their decision and deciding-rule strings are captured at check
    time). *)

type policy_denial = { index : int; op : Op.policy_op; reason : string }
(** A tolerated policy-op denial: position in the batch, the op, and a
    human-readable reason (no authority, unknown subject, duplicate or
    missing timestamp, cycle, missing isa edge). *)

type committed = {
  session : Session.t;  (** the rebased writer session *)
  reports : Secure_update.report list;
      (** one per {e document} op, in order *)
  policy_denials : policy_denial list;
      (** policy ops denied and skipped under [`Tolerate] *)
  applied : Op.t list;
      (** the effective batch in commit order: document ops that staged
          plus policy ops that applied (denied-and-skipped ops are
          absent) — this is what {!Serve} journals, so recovery replay
          never re-litigates authority *)
  delta : Delta.t;
      (** union of the per-op {e document} deltas — what one broadcast
          must cover (see {!Serve}) *)
  policy_delta : Delta.t;
      (** union of the spans over which the writer's own decisions were
          re-resolved by staged policy ops ({!Perm.update_policy});
          [Delta.all] when any policy op forced a full recompute *)
  policy : Policy.t;  (** the policy after the batch *)
  policy_changed : bool;
      (** at least one policy op applied — {!Serve} re-keys
          permission-equivalence classes iff this is set *)
}

type error =
  | Denied of {
      index : int;
      op : Xupdate.Op.t;
      denials : Secure_update.denial list;
    }  (** a document op hit a privilege denial under [`Abort] *)
  | Policy_denied of { index : int; op : Op.policy_op; reason : string }
      (** a policy op was denied under [`Abort]: no administrative
          authority, unknown subject, duplicate or missing timestamp,
          isa cycle, or missing isa edge *)
  | Invalid of {
      reports : Secure_update.report list;
      violations : string list;
    }
      (** end-to-end validation rejected the staged document; the staged
          reports are returned for diagnosis (nothing was applied) *)
  | Failed of { index : int; op : Xupdate.Op.t; exn : exn }
      (** a document op raised (e.g. {!Xpath.Eval.Error}) *)

exception Aborted of error

val commit_ops :
  ?on_denial:[ `Abort | `Tolerate ] ->
  ?validate:(Xmldoc.Document.t -> string list) ->
  ?admin:Admin.t ->
  Session.t -> Op.t list ->
  (committed, error) result
(** [commit_ops session ops] stages, validates and commits a mixed
    batch of document and policy operations.

    [on_denial] (default [`Abort]) selects between strict atomicity and
    the paper's §4.4.2 semantics: [`Tolerate] lets a document op succeed
    on some targets and be denied on others (the denials stay in its
    report) and lets a denied policy op be skipped (recorded in
    [policy_denials]) while the rest of the batch proceeds.

    [admin] activates administrative authority checks (§4.3 via
    {!Admin}) with the session user as issuer: the owner may do
    anything; a delegate may issue rules within its delegated
    (privilege, node set) authority — the rule path is evaluated against
    the staged source with [$USER] bound to the issuer — and retract its
    own rules; only the owner may touch the subject hierarchy.  Without
    [admin] the transaction trusts its caller (recovery replay does,
    because journaled batches hold only ops that already passed the
    live check).

    [validate] (default {!Xmldoc.Invariants.check}) runs on the staged
    final document; any returned violation aborts.  {!Validated} passes
    schema validation here. *)

val commit :
  ?on_denial:[ `Abort | `Tolerate ] ->
  ?validate:(Xmldoc.Document.t -> string list) ->
  Session.t -> Xupdate.Op.t list ->
  (committed, error) result
(** [commit session ops] = [commit_ops session (Op.docs ops)] — the
    historical document-only entry point. *)

val commit_exn :
  ?on_denial:[ `Abort | `Tolerate ] ->
  ?validate:(Xmldoc.Document.t -> string list) ->
  Session.t -> Xupdate.Op.t list -> committed
(** @raise Aborted instead of returning [Error]. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Crash recovery} *)

type recovered = {
  doc : Xmldoc.Document.t;  (** the state at the last commit boundary *)
  policy : Policy.t;
      (** the seed policy with every journaled policy op replayed in
          commit order *)
  seq : int;  (** sequence number of the last replayed transaction *)
  snapshot_seq : int;  (** the snapshot recovery started from *)
  replayed : int;  (** journal records replayed on top of it *)
  torn_bytes : int;  (** bytes of torn final record(s) discarded *)
}

val recover : Policy.t -> string -> recovered
(** [recover policy dir] = {!Store.recover} with the secure replay:
    latest valid snapshot + deterministic re-execution of the journal
    tail through {!commit_ops} (per-record mode preserved, sessions
    cached, rebased across records and re-keyed onto each record's
    resulting policy).  [policy] seeds the replay; the returned
    [recovered.policy] reflects all journaled policy ops.  Replay needs
    no renumbering because ordpath identifiers are persistent — the
    snapshot serialisation keeps them and insertion re-derives the same
    fresh labels — and needs no authority state because journaled
    batches hold only ops that passed the live check.
    @raise Store.Error on a corrupt store or a replay divergence. *)
