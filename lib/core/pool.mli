(** A Domain-based work pool for the server's fan-out paths.

    A pool of size [n] runs a batch of independent tasks on up to [n]
    domains: the calling domain is worker 0 and up to [n - 1] helper
    domains are spawned per batch, all pulling tasks from a shared
    queue.  Size 1 runs every task in the caller, in order — exactly the
    sequential semantics the server had before pools existed, which is
    the differential baseline ({e pool 1 ≡ sequential}, bit for bit).

    Tasks in one batch must be independent (the server hands each worker
    disjoint session entries).  Worker domains have their own
    {!Obs.Trace} span stacks, so spans opened inside a task surface as
    separate roots rather than children of the caller's span; tasks
    receive their worker index to annotate spans with the domain that
    ran them.

    Utilisation is aggregated in {!Obs.Metrics.default}:
    [pool_runs_total], [pool_tasks_total], [pool_domains_spawned_total]
    and per-slot [pool_worker_<i>_tasks_total]. *)

type t

val create : int -> t
(** [create size] — [size >= 1] workers.
    @raise Invalid_argument on [size < 1]. *)

val size : t -> int

val default_size : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    available to this process. *)

val of_env : unit -> t
(** A pool sized from the [POOL_SIZE] environment variable; unset,
    unparsable or sub-1 values give size 1 (the sequential baseline).
    This is [Serve.create]'s default pool, so [POOL_SIZE=4 dune runtest]
    runs the whole suite through real multi-domain fan-outs. *)

val run : t -> (int -> unit) list -> unit
(** Executes all tasks, each applied to the index of the worker slot
    running it, and waits for completion.  If tasks raise, one of the
    exceptions is re-raised after the batch drains; the others are
    dropped. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] (order preserved).  Same exception behaviour as
    {!run}. *)
