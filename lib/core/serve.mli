(** A multi-session server: N logged sessions share one source document,
    and every write broadcasts its {!Delta.t} so each session invalidates
    only the affected ordpath range instead of re-deriving its
    permissions and view from scratch — the update-aware enforcement the
    §5 outlook calls for once several subjects query the same database
    concurrently.

    Sessions are grouped into {e permission-equivalence classes}
    ({!Perm.profile}): users whose applicable rules are identical and
    [$USER]-free provably resolve to the same decisions, so they share
    one session state — one decision store, one materialised view, one
    memoised {!Lazy_view}, one broadcast rebase.  Logins, fan-out work
    and memory scale with the number of distinct permission profiles,
    not the number of logged users; users carrying a [$USER] rule form
    singleton classes and behave exactly as dedicated sessions.

    Each class carries both enforcement engines: the incrementally
    maintained materialised view (axioms 15–17 via {!Session.apply_delta})
    and a memoised {!Lazy_view} for query filtering, rebased on each
    broadcast; {!query} answers through the compiled {!Rewrite} read path
    (plans cached per query text, shared by every session).  Classes
    whose rules are not downward ({!Session.policy_local}) transparently
    fall back to full re-derivation on every write — same answers, no
    locality. *)

type t

val create : ?pool:Pool.t -> ?persist:Store.t -> Policy.t -> Xmldoc.Document.t -> t
(** [?pool] (default: {!Pool.of_env}, i.e. sequential unless [POOL_SIZE]
    says otherwise) runs the write-broadcast fan-out and {!login_many}
    batches on its workers.  The session and class tables are
    mutex-guarded; each class is still owned by one worker at a time, so
    answers are identical for every pool size.

    [?persist] attaches a write-ahead journal: every committed batch is
    appended ({!Store.append}) before it becomes visible to readers, so
    {!Txn.recover} reproduces the exact pre-crash state.  The caller is
    responsible for opening the store on the matching document (fresh
    store initialised from [source], or [source] = recovered state). *)

val pool : t -> Pool.t
val persist : t -> Store.t option

val login : t -> user:string -> unit
(** Registers a session for [user]; already-logged users keep their
    session (and its caches).  Joining an existing permission class costs
    O(1) — conflict resolution runs only when [user]'s profile is new.
    @raise Session.Unknown_user *)

val login_many : t -> string list -> unit
(** Batch {!login}: conflict resolution runs once per {e new} permission
    class on the pool (one task per class, not per user); every other
    fresh user binds to its class in O(1).  If any representative login
    raises (e.g. [Session.Unknown_user]), no fresh session from this
    batch is registered.
    @raise Session.Unknown_user *)

val logout : t -> user:string -> unit

val users : t -> string list
(** Logged users, sorted. *)

val classes : t -> int
(** Number of distinct permission-equivalence classes among the logged
    sessions — what server memory actually scales with. *)

val source : t -> Xmldoc.Document.t
(** The current shared source database. *)

val policy : t -> Policy.t
(** The current policy — rewritten by every committed batch carrying
    policy ops. *)

val writes : t -> int
(** Number of update operations applied since {!create}. *)

val fresh_priority : t -> int
(** The next administration timestamp (paper §4.3: rule priorities ARE
    timestamps).  Monotonic and never reused, even across retracts and
    aborted batches — each call burns the returned value.  Use it to
    build [Op.Add_rule] payloads for {!commit_ops}. *)

val session : t -> user:string -> Session.t
(** The user's session — the class representative impersonated to
    [user] (see {!Session.impersonate}); permissions and views are the
    shared class state.
    @raise Session.Unknown_user if the user is not logged in. *)

val lazy_view : t -> user:string -> Lazy_view.t
(** The user's {e class}'s lazy view — shared by every member. *)

val view : t -> user:string -> Xmldoc.Document.t
(** The user's materialised view (incrementally maintained). *)

val query : t -> user:string -> string -> Ordpath.t list
(** Evaluates through the {!Rewrite} read path on the user's class state
    ([$USER] bound on the fallback path; compiled plans are cached per
    query text and shared across sessions).  Logs the user in on first
    use.
    @raise Session.Unknown_user
    @raise Xpath.Parser.Error
    @raise Xpath.Eval.Error *)

type committed = {
  reports : Secure_update.report list;
      (** one per {e document} op, in order *)
  delta : Delta.t;  (** merged — what the single broadcast covered *)
  policy_denials : Txn.policy_denial list;
      (** policy ops denied and skipped under [`Tolerate] *)
  policy_changed : bool;
      (** the batch applied at least one policy op (the
          permission-equivalence classes were re-keyed) *)
}

val commit_ops :
  ?on_denial:[ `Abort | `Tolerate ] ->
  ?admin:Admin.t ->
  t -> user:string -> Op.t list ->
  (committed, Txn.error) result
(** The authoritative write path, generalised to mixed batches of
    document and policy mutations: stages the batch as one
    {!Txn.commit_ops} on [user]'s session (later ops see earlier ops'
    effects, including rule changes), journals the {e applied} ops (when
    [?persist] is attached), then publishes the new epoch.  A
    document-only batch broadcasts the merged delta once per class; a
    batch carrying policy ops re-keys the permission-equivalence classes
    instead — sessions regroup by their new {!Perm.profile}, classes
    split or merge as rule applicability changes
    ([serve_class_splits_total] / [serve_class_merges_total]), and each
    class is rebased exactly once against the new (document, policy)
    epoch, reusing incremental re-resolution ({!Perm.update_policy}) and
    migrating lazy views where sound.

    [?admin] activates §4.3 administrative authority checks with [user]
    as issuer (see {!Txn.commit_ops}).

    On [Error] nothing is observable: no source or policy change, no
    journal record, no broadcast, no metric beyond [txn_aborts_total].
    Logs the user in on first use. *)

val commit :
  ?on_denial:[ `Abort | `Tolerate ] ->
  t -> user:string -> Xupdate.Op.t list ->
  (committed, Txn.error) result
(** [commit t ~user ops] = [commit_ops t ~user (Op.docs ops)] — the
    historical document-only write path. *)

val update : t -> user:string -> Xupdate.Op.t -> Secure_update.report
(** Thin wrapper: [commit ~on_denial:`Tolerate] of the single op — the
    paper's §4.4.2 semantics, where an op may succeed on some targets
    and be denied on others.  Re-raises the op's exception if it failed
    (matching the historical behaviour of the per-op path). *)

val update_all :
  t -> user:string -> Xupdate.Op.t list -> Secure_update.report list
(** [commit ~on_denial:`Tolerate] of the whole batch: per-target denial
    semantics per op, one broadcast for the batch. *)
