(** A multi-session server: N logged sessions share one source document,
    and every write broadcasts its {!Delta.t} so each session invalidates
    only the affected ordpath range instead of re-deriving its
    permissions and view from scratch — the update-aware enforcement the
    §5 outlook calls for once several subjects query the same database
    concurrently.

    Each user carries both enforcement engines: the incrementally
    maintained materialised view (axioms 15–17 via {!Session.apply_delta})
    and a memoised {!Lazy_view} for query filtering, rebased on each
    broadcast.  Sessions whose rules are not downward
    ({!Session.policy_local}) transparently fall back to full
    re-derivation on every write — same answers, no locality. *)

type t

val create : Policy.t -> Xmldoc.Document.t -> t

val login : t -> user:string -> unit
(** Registers a session for [user]; already-logged users keep their
    session (and its caches).
    @raise Session.Unknown_user *)

val logout : t -> user:string -> unit

val users : t -> string list
(** Logged users, sorted. *)

val source : t -> Xmldoc.Document.t
(** The current shared source database. *)

val policy : t -> Policy.t
val writes : t -> int
(** Number of update operations applied since {!create}. *)

val session : t -> user:string -> Session.t
(** @raise Session.Unknown_user if the user is not logged in. *)

val lazy_view : t -> user:string -> Lazy_view.t

val view : t -> user:string -> Xmldoc.Document.t
(** The user's materialised view (incrementally maintained). *)

val query : t -> user:string -> string -> Ordpath.t list
(** Evaluates on the user's {e lazy} view, [$USER] bound.  Logs the user
    in on first use.
    @raise Session.Unknown_user
    @raise Xpath.Parser.Error
    @raise Xpath.Eval.Error *)

val update : t -> user:string -> Xupdate.Op.t -> Secure_update.report
(** Applies a secure update on behalf of [user] and broadcasts the
    report's delta: every other session (and every lazy view) evicts only
    the affected range.  Logs the user in on first use. *)

val update_all :
  t -> user:string -> Xupdate.Op.t list -> Secure_update.report list

val cache_stats : t -> user:string -> int * int
(** The user's lazy-view [(hits, misses)] counters.

    @deprecated Thin shim kept for compatibility: the same counters (and
    the widen-to-full-refresh events this accessor never exposed) are
    aggregated in {!Obs.Metrics.default} as [lazy_view_hits_total],
    [lazy_view_misses_total], [serve_rebase_incremental_total] and
    [serve_rebase_full_total]. *)
