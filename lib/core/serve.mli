(** A multi-session server: N logged sessions share one source document,
    and every write broadcasts its {!Delta.t} so each session invalidates
    only the affected ordpath range instead of re-deriving its
    permissions and view from scratch — the update-aware enforcement the
    §5 outlook calls for once several subjects query the same database
    concurrently.

    Each user carries both enforcement engines: the incrementally
    maintained materialised view (axioms 15–17 via {!Session.apply_delta})
    and a memoised {!Lazy_view} for query filtering, rebased on each
    broadcast.  Sessions whose rules are not downward
    ({!Session.policy_local}) transparently fall back to full
    re-derivation on every write — same answers, no locality. *)

type t

val create : ?pool:Pool.t -> Policy.t -> Xmldoc.Document.t -> t
(** [?pool] (default: size 1, i.e. sequential) runs the write-broadcast
    fan-out and {!login_many} batches on its workers.  The session table
    is mutex-guarded; each session entry is still owned by one worker at
    a time, so answers are identical for every pool size. *)

val pool : t -> Pool.t

val login : t -> user:string -> unit
(** Registers a session for [user]; already-logged users keep their
    session (and its caches).
    @raise Session.Unknown_user *)

val login_many : t -> string list -> unit
(** Batch {!login}: conflict resolution for the fresh users runs on the
    pool (one task per user).  If any login raises (e.g.
    [Session.Unknown_user]), no fresh session from this batch is
    registered.
    @raise Session.Unknown_user *)

val logout : t -> user:string -> unit

val users : t -> string list
(** Logged users, sorted. *)

val source : t -> Xmldoc.Document.t
(** The current shared source database. *)

val policy : t -> Policy.t
val writes : t -> int
(** Number of update operations applied since {!create}. *)

val session : t -> user:string -> Session.t
(** @raise Session.Unknown_user if the user is not logged in. *)

val lazy_view : t -> user:string -> Lazy_view.t

val view : t -> user:string -> Xmldoc.Document.t
(** The user's materialised view (incrementally maintained). *)

val query : t -> user:string -> string -> Ordpath.t list
(** Evaluates on the user's {e lazy} view, [$USER] bound.  Logs the user
    in on first use.
    @raise Session.Unknown_user
    @raise Xpath.Parser.Error
    @raise Xpath.Eval.Error *)

val update : t -> user:string -> Xupdate.Op.t -> Secure_update.report
(** Applies a secure update on behalf of [user] and broadcasts the
    report's delta: every other session (and every lazy view) evicts only
    the affected range.  Logs the user in on first use. *)

val update_all :
  t -> user:string -> Xupdate.Op.t list -> Secure_update.report list
