type t = { size : int }

let m_runs =
  Obs.Metrics.counter Obs.Metrics.default "pool_runs_total"
    ~help:"Task batches executed through Core.Pool"

let m_tasks =
  Obs.Metrics.counter Obs.Metrics.default "pool_tasks_total"
    ~help:"Tasks executed through Core.Pool (all workers)"

let m_spawned =
  Obs.Metrics.counter Obs.Metrics.default "pool_domains_spawned_total"
    ~help:"Helper domains spawned for pool batches"

let g_inflight =
  Obs.Metrics.gauge Obs.Metrics.default "pool_inflight_tasks"
    ~help:"Tasks queued or running in the current pool batch"

(* Per-slot utilisation counters, registered on first use; the registry
   deduplicates by name so repeated lookups are cheap and idempotent. *)
let worker_counter =
  let tbl : (int, Obs.Metrics.counter) Hashtbl.t = Hashtbl.create 8 in
  let lock = Mutex.create () in
  fun i ->
    Mutex.lock lock;
    let c =
      match Hashtbl.find_opt tbl i with
      | Some c -> c
      | None ->
        let c =
          Obs.Metrics.counter Obs.Metrics.default
            (Printf.sprintf "pool_worker_%d_tasks_total" i)
            ~help:"Tasks executed by this pool worker slot"
        in
        Hashtbl.add tbl i c;
        c
    in
    Mutex.unlock lock;
    c

let create size =
  if size < 1 then invalid_arg "Core.Pool.create: size < 1";
  { size }

let size t = t.size

let default_size () = Domain.recommended_domain_count ()

(* [POOL_SIZE=4 dune runtest] stress-runs every pool path without touching
   call sites: this is the default pool of [Serve.create]. *)
let of_env () =
  match Sys.getenv_opt "POOL_SIZE" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> create n
     | Some _ | None -> create 1)
  | None -> create 1

let run t tasks =
  match tasks with
  | [] -> ()
  | tasks ->
    Obs.Metrics.inc m_runs;
    let n = List.length tasks in
    Obs.Metrics.add m_tasks n;
    (* Queue-depth gauge: +batch on entry, -1 as each task finishes; the
       protect rewinds whatever is left if a task escapes (size-1 path)
       so the gauge returns to its resting level either way. *)
    Obs.Metrics.add_gauge g_inflight (float n);
    let done_count = Atomic.make 0 in
    let task_done () =
      Atomic.incr done_count;
      Obs.Metrics.add_gauge g_inflight (-1.)
    in
    Fun.protect
      ~finally:(fun () ->
        Obs.Metrics.add_gauge g_inflight
          (float (Atomic.get done_count - n)))
      (fun () ->
        if t.size = 1 then begin
          let c0 = worker_counter 0 in
          List.iter
            (fun task ->
              Obs.Metrics.inc c0;
              task 0;
              task_done ())
            tasks
        end
        else begin
          let arr = Array.of_list tasks in
          let next = Atomic.make 0 in
          let failure = Atomic.make None in
          let worker slot =
            let c = worker_counter slot in
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < Array.length arr then begin
                (try
                   Obs.Metrics.inc c;
                   arr.(i) slot
                 with e ->
                   let bt = Printexc.get_raw_backtrace () in
                   (* keep the first failure; the batch still drains so no
                      task is silently skipped *)
                   ignore
                     (Atomic.compare_and_set failure None (Some (e, bt))));
                task_done ();
                loop ()
              end
            in
            loop ()
          in
          let helpers = min t.size (Array.length arr) - 1 in
          Obs.Metrics.add m_spawned helpers;
          let domains =
            List.init helpers (fun k -> Domain.spawn (fun () -> worker (k + 1)))
          in
          worker 0;
          List.iter Domain.join domains;
          match Atomic.get failure with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ()
        end)

let map t f xs =
  let arr = Array.of_list xs in
  let out = Array.make (Array.length arr) None in
  run t
    (List.init (Array.length arr) (fun i _slot ->
         out.(i) <- Some (f arr.(i))));
  Array.to_list (Array.map Option.get out)
