module Journal = Journal
module Snapshot = Snapshot
module Audit_log = Audit_log

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let m_appends =
  Obs.Metrics.counter Obs.Metrics.default "store_journal_appends_total"
    ~help:"Transactions appended to the write-ahead journal"

let m_bytes =
  Obs.Metrics.counter Obs.Metrics.default "store_journal_bytes_total"
    ~help:"Bytes appended to the write-ahead journal"

let m_fsyncs =
  Obs.Metrics.counter Obs.Metrics.default "store_journal_fsyncs_total"
    ~help:"fsync(2) calls after journal appends"

let m_snapshots =
  Obs.Metrics.counter Obs.Metrics.default "store_snapshots_total"
    ~help:"Snapshots written"

let m_recoveries =
  Obs.Metrics.counter Obs.Metrics.default "store_recoveries_total"
    ~help:"Crash recoveries performed"

let m_replayed =
  Obs.Metrics.counter Obs.Metrics.default "store_recovered_txns_total"
    ~help:"Journal records replayed during recoveries"

let m_torn =
  Obs.Metrics.counter Obs.Metrics.default "store_torn_bytes_total"
    ~help:"Torn journal tail bytes discarded (truncated record after a crash)"

let h_append =
  Obs.Metrics.histogram Obs.Metrics.default "store_append_seconds"
    ~help:"Journal append latency (encode + write + flush [+ fsync])"

let h_snapshot =
  Obs.Metrics.histogram Obs.Metrics.default "store_snapshot_seconds"
    ~help:"Snapshot write latency"

let h_recover =
  Obs.Metrics.histogram Obs.Metrics.default "store_recover_seconds"
    ~help:"Recovery latency (snapshot load + journal replay)"

let h_fsync =
  Obs.Metrics.histogram Obs.Metrics.default "store_fsync_seconds"
    ~help:"fsync(2) latency on the journal after an append"

let g_journal_bytes =
  Obs.Metrics.gauge Obs.Metrics.default "store_journal_bytes"
    ~help:"Current size of the write-ahead journal on disk"

(* Monotonic instant of the most recent snapshot write in this process;
   nan until the first one.  Feeds the seconds-since-snapshot gauge the
   health endpoint compares against --snapshot-every. *)
let last_snapshot_at = Atomic.make Float.nan

let seconds_since_snapshot () =
  let t = Atomic.get last_snapshot_at in
  if Float.is_nan t then None else Some (Obs.Mono.now () -. t)

let () =
  Obs.Metrics.gauge_fn Obs.Metrics.default "store_seconds_since_snapshot"
    ~help:"Seconds since the last snapshot write (-1 before the first)"
    (fun () ->
      match seconds_since_snapshot () with Some s -> s | None -> -1.)

type t = {
  dir : string;
  fsync : bool;
  snapshot_every : int;
  mutable seq : int;
  mutable snap_seq : int; (* seq covered by the newest snapshot; 0 = none *)
  mutable has_history : bool;
  oc : out_channel;
}

let journal_path dir = Filename.concat dir "journal.log"

let dir t = t.dir
let seq t = t.seq
let is_fresh t = not t.has_history

let open_dir ?(fsync = false) ?(snapshot_every = 0) dir =
  (try
     if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
     else if not (Sys.is_directory dir) then fail "%s: not a directory" dir
   with Sys_error m -> fail "%s" m);
  let jp = journal_path dir in
  if not (Sys.file_exists jp) then begin
    try
      let oc = open_out_bin jp in
      output_string oc Journal.header_line;
      close_out oc
    with Sys_error m -> fail "%s" m
  end;
  let scan = try Journal.scan jp with Journal.Error m -> fail "%s" m in
  (* Repair: drop any torn tail so appends resume on a record boundary. *)
  if scan.Journal.torn_bytes > 0 then begin
    Obs.Metrics.add m_torn scan.Journal.torn_bytes;
    try
      let fd = Unix.openfile jp [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd scan.Journal.valid_bytes;
      Unix.close fd
    with Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e)
  end;
  let journal_seq =
    match List.rev scan.Journal.records with
    | r :: _ -> r.Journal.seq
    | [] -> 0
  in
  let snapshots = try Snapshot.list ~dir with Snapshot.Error m -> fail "%s" m in
  let snapshot_seq = match snapshots with (n, _) :: _ -> n | [] -> 0 in
  let oc =
    try open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 jp
    with Sys_error m -> fail "%s" m
  in
  (try Obs.Metrics.set_gauge g_journal_bytes (float (Unix.stat jp).st_size)
   with Unix.Unix_error _ -> ());
  {
    dir;
    fsync;
    snapshot_every;
    seq = max journal_seq snapshot_seq;
    snap_seq = snapshot_seq;
    has_history = scan.Journal.records <> [] || snapshots <> [];
    oc;
  }

let snapshot_every t = t.snapshot_every

let snapshot_lag t = t.seq - t.snap_seq

let snapshot t doc =
  Obs.Metrics.time h_snapshot @@ fun () ->
  Obs.Trace.with_span "store.snapshot" @@ fun () ->
  Obs.Trace.annotate "seq" (string_of_int t.seq);
  (try ignore (Snapshot.write ~dir:t.dir ~seq:t.seq doc)
   with Snapshot.Error m -> fail "%s" m);
  t.has_history <- true;
  t.snap_seq <- t.seq;
  Atomic.set last_snapshot_at (Obs.Mono.now ());
  Obs.Metrics.inc m_snapshots;
  Obs.Events.emit (Obs.Events.Snapshot { seq = t.seq })

let init t doc =
  if t.has_history then fail "%s: store already initialised" t.dir;
  snapshot t doc

let append t ~user ~mode ~doc ops =
  Obs.Metrics.time h_append @@ fun () ->
  Obs.Trace.with_span "store.append" @@ fun () ->
  if is_fresh t then fail "%s: store not initialised (no base snapshot)" t.dir;
  let seq = t.seq + 1 in
  let bytes = Journal.encode { Journal.seq; user; mode; ops } in
  (try
     output_string t.oc bytes;
     flush t.oc;
     Obs.Events.emit
       (Obs.Events.Journal_append { seq; bytes = String.length bytes });
     if t.fsync then begin
       let t0 = Obs.Mono.now () in
       Unix.fsync (Unix.descr_of_out_channel t.oc);
       let dt = Obs.Mono.now () -. t0 in
       Obs.Metrics.inc m_fsyncs;
       Obs.Metrics.observe h_fsync dt;
       Obs.Events.emit (Obs.Events.Fsync { seconds = dt })
     end
   with
   | Sys_error m -> fail "%s" m
   | Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e));
  t.seq <- seq;
  Obs.Metrics.inc m_appends;
  Obs.Metrics.add m_bytes (String.length bytes);
  Obs.Metrics.add_gauge g_journal_bytes (float (String.length bytes));
  if t.snapshot_every > 0 && seq mod t.snapshot_every = 0 then snapshot t doc;
  seq

let close t = close_out_noerr t.oc

type recovery = {
  doc : Xmldoc.Document.t;
  seq : int;
  snapshot_seq : int;
  replayed : int;
  torn_bytes : int;
}

let recover ~replay dir =
  Obs.Metrics.time h_recover @@ fun () ->
  Obs.Trace.with_span "store.recover" @@ fun () ->
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    fail "%s: no such store" dir;
  let jp = journal_path dir in
  let scan =
    if Sys.file_exists jp then
      try Journal.scan jp with Journal.Error m -> fail "%s" m
    else { Journal.records = []; valid_bytes = 0; torn_bytes = 0 }
  in
  let snapshot_seq, doc0 =
    match Snapshot.load_latest ~dir with
    | Some (seq, doc) -> (seq, doc)
    | None ->
      if scan.Journal.records <> [] then
        fail "%s: journal without a loadable base snapshot" dir;
      (0, Xmldoc.Document.empty)
  in
  let doc, seq, replayed =
    List.fold_left
      (fun (doc, seq, k) (r : Journal.record) ->
        if r.Journal.seq <= snapshot_seq then (doc, seq, k)
        else if r.Journal.seq <> seq + 1 then
          fail "%s: journal gap (expected seq %d, found %d)" dir (seq + 1)
            r.Journal.seq
        else begin
          Obs.Events.emit (Obs.Events.Replay { seq = r.Journal.seq });
          ( replay doc ~user:r.Journal.user ~mode:r.Journal.mode r.Journal.ops,
            r.Journal.seq,
            k + 1 )
        end)
      (doc0, snapshot_seq, 0) scan.Journal.records
  in
  Obs.Metrics.inc m_recoveries;
  Obs.Metrics.add m_replayed replayed;
  Obs.Metrics.add m_torn scan.Journal.torn_bytes;
  Obs.Trace.annotate "replayed" (string_of_int replayed);
  { doc; seq; snapshot_seq; replayed; torn_bytes = scan.Journal.torn_bytes }
