(** Durable audit journal: a size-rotated, crash-recoverable sink for
    {!Obs.Audit} events.

    The in-memory audit ring is bounded and lossy by design; this sink
    makes the audit trail durable.  Each event is one framed record —
    {!Journal.frame}'s [magic | 8-byte BE length | 4-byte BE Adler-32 |
    payload] discipline with magic ["AUD!"] — whose payload is a compact
    [<audit/>] element, so segments are inspectable with XML tooling yet
    byte-exact under reparse.  Segments [audit-NNNNNN.log] rotate once
    they would exceed [max_bytes]; {!scan} concatenates the longest
    valid prefix of every segment in index order, so a crash mid-append
    costs at most the final torn frame ({!open_dir} truncates it before
    resuming). *)

exception Error of string

val header_line : string
val magic : string

val payload : Obs.Audit.event -> string
val event_of_payload : string -> Obs.Audit.event
(** @raise Error on malformed payloads. *)

val encode : Obs.Audit.event -> string
(** The full frame. *)

val default_max_bytes : int
(** 4 MiB. *)

val seconds_since_rotation : unit -> float option
(** Monotonic seconds since this process last opened a fresh segment
    ({!open_dir} or a size rotation); [None] before any.  Also exposed
    as the [seconds_since_audit_rotation] callback gauge (-1 before
    any), next to the [audit_segments] gauge and the
    [audit_records_total{decision}] counter family. *)

type t

val open_dir : ?fsync:bool -> ?max_bytes:int -> string -> t
(** Creates [dir] if needed, resumes appending to the highest-index
    segment (truncating any torn tail to the last record boundary), or
    starts [audit-000001.log].  [fsync] (default off) forces every
    append to stable storage.
    @raise Error on I/O failure.
    @raise Invalid_argument when [max_bytes < 1024]. *)

val dir : t -> string
val segment : t -> string
(** Path of the segment currently being appended to. *)

val append : t -> Obs.Audit.event -> unit
(** Thread-safe; rotates first when the frame would push the current
    segment past [max_bytes].  Under [fsync:false] frames are group
    committed: they accumulate in-process and reach the segment in one
    write per ~8 KiB (and on rotation, {!flush} and {!close}), so a
    crash loses at most the buffered tail — always on a frame boundary.
    [fsync:true] writes and syncs every event individually.
    @raise Error after {!close} or on I/O failure. *)

val sink : t -> Obs.Audit.event -> unit
(** {!append} with post-{!close} errors swallowed — plug straight into
    [Obs.Audit.set_sink] without racing shutdown. *)

val flush : t -> unit
(** Push any group-committed frames to the segment file.  No-op after
    {!close} or under [fsync:true].  @raise Error on I/O failure. *)

val close : t -> unit
(** Flushes buffered frames, fsyncs and closes the current segment.
    Idempotent; I/O failures at this point are swallowed. *)

(** {1 Reading} *)

type scan = {
  events : Obs.Audit.event list;
      (** every recoverable event, segment order then file order *)
  files : string list;  (** the segment paths scanned, index order *)
  valid_bytes : int;  (** summed valid prefixes across segments *)
  torn_bytes : int;  (** summed torn tails across segments *)
}

val scan : string -> scan
(** Longest-valid-prefix read of every segment in [dir]: a frame that is
    short, checksum-failing or semantically unparseable ends that
    segment's prefix.  @raise Error when [dir] is missing or a segment
    has a corrupt header. *)
