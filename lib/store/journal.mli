(** Write-ahead journal framing: one record per committed transaction.

    On disk: a header line, then a sequence of
    [magic | 8-byte BE length | 4-byte BE Adler-32 | payload] frames.
    The payload is a [<txn seq user mode>] envelope wrapping the
    compact canonical XUpdate-XML of the batch
    ({!Xupdate.Xupdate_xml.to_tree}), so a journal is inspectable with
    any XML tooling yet byte-exact under reparse.

    A {!scan} accepts the longest valid prefix: the first short,
    checksum-failing or unparseable frame ends it, and everything after
    that offset is a torn tail — exactly what a crash mid-append
    produces. *)

exception Error of string

type mode = [ `Atomic | `Tolerant ]
(** Whether the transaction was committed under [`Abort] or [`Tolerate]
    denial semantics — replay must preserve it (a tolerated record may
    legitimately contain denials). *)

type record = {
  seq : int;  (** 1-based, contiguous *)
  user : string;
  mode : mode;
  ops : Xupdate.Op.t list;
}

val header_line : string
val magic : string

val adler32 : string -> int
val mode_to_string : mode -> string
val mode_of_string : string -> mode

val payload : record -> string
val record_of_payload : string -> record
(** @raise Error on malformed payloads. *)

val encode : record -> string
(** The full frame (magic + length + checksum + payload). *)

(** {1 Generic framing}

    The frame discipline, decoupled from the transaction payload, so
    other durable logs (the audit journal, {!Audit_log}) inherit the
    same torn-tail semantics. *)

val frame : magic:string -> string -> string
(** [frame ~magic payload] = [magic | 8-byte BE length | 4-byte BE
    Adler-32 | payload].  @raise Invalid_argument unless [magic] is
    exactly 4 bytes. *)

val scan_frames : magic:string -> header:string -> string -> (string * int) list
(** Checksum-valid frames of a file image, in order, each paired with
    the offset just past its frame (= where the valid prefix ends if
    this frame is the last accepted one).  Scanning stops at the first
    short, wrong-magic or checksum-failing frame.
    @raise Error when the header is wrong.
    @raise Invalid_argument unless [magic] is exactly 4 bytes. *)

type scan = {
  records : record list;
  valid_bytes : int;
      (** file offset just past the last valid record — where a repair
          truncates to, and where appends resume *)
  torn_bytes : int;
}

val scan_string : string -> scan
val scan : string -> scan
(** @raise Error when the file is unreadable or its header is wrong
    (a torn {e tail} is not an error; a bad {e header} is). *)
