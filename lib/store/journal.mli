(** Write-ahead journal framing: one record per committed transaction.

    On disk: a header line, then a sequence of
    [magic | 8-byte BE length | 4-byte BE Adler-32 | payload] frames.
    The payload is a [<txn seq user mode>] envelope wrapping the
    compact canonical XUpdate-XML of the batch
    ({!Xupdate.Xupdate_xml.to_tree}), so a journal is inspectable with
    any XML tooling yet byte-exact under reparse.

    Payload versions: a batch holding only document ops is written in
    the historical version-1 shape (one [<xupdate:modifications>]
    child, no version attribute) — old journals parse unchanged and
    old readers keep reading new document-only journals.  A batch with
    at least one policy op is tagged [ver="2"] and interleaves runs of
    XUpdate instructions with policy-administration elements in commit
    order.  The store stays policy-agnostic: a {!policy_op} carries the
    wire fields (decision, privilege name, path text, subject,
    timestamp); [Core.Op] converts to and from typed rules.

    A {!scan} accepts the longest valid prefix: the first short,
    checksum-failing or unparseable frame ends it, and everything after
    that offset is a torn tail — exactly what a crash mid-append
    produces. *)

exception Error of string

type mode = [ `Atomic | `Tolerant ]
(** Whether the transaction was committed under [`Abort] or [`Tolerate]
    denial semantics — replay must preserve it (a tolerated record may
    legitimately contain denials). *)

type policy_op =
  | Padd of {
      decision : [ `Accept | `Deny ];
      privilege : string;  (** one of the five privilege names *)
      path : string;  (** XPath concrete syntax; validated at decode *)
      subject : string;
      priority : int;  (** the rule's issue timestamp *)
    }
  | Pretract of { priority : int }
  | Pisa of { sub : string; super : string }
  | Premove_isa of { sub : string; super : string }

type op = Doc of Xupdate.Op.t | Policy of policy_op

val docs : Xupdate.Op.t list -> op list
(** Wraps a document-only batch. *)

val doc_ops : op list -> Xupdate.Op.t list
(** The document ops of a batch, in order (policy ops dropped). *)

type record = {
  seq : int;  (** 1-based, contiguous *)
  user : string;
  mode : mode;
  ops : op list;
}

val header_line : string
val magic : string

val adler32 : string -> int
val mode_to_string : mode -> string
val mode_of_string : string -> mode

val payload : record -> string
val record_of_payload : string -> record
(** @raise Error on malformed payloads. *)

val encode : record -> string
(** The full frame (magic + length + checksum + payload). *)

(** {1 Generic framing}

    The frame discipline, decoupled from the transaction payload, so
    other durable logs (the audit journal, {!Audit_log}) inherit the
    same torn-tail semantics. *)

val frame : magic:string -> string -> string
(** [frame ~magic payload] = [magic | 8-byte BE length | 4-byte BE
    Adler-32 | payload].  @raise Invalid_argument unless [magic] is
    exactly 4 bytes. *)

val scan_frames : magic:string -> header:string -> string -> (string * int) list
(** Checksum-valid frames of a file image, in order, each paired with
    the offset just past its frame (= where the valid prefix ends if
    this frame is the last accepted one).  Scanning stops at the first
    short, wrong-magic or checksum-failing frame.
    @raise Error when the header is wrong.
    @raise Invalid_argument unless [magic] is exactly 4 bytes. *)

type scan = {
  records : record list;
  valid_bytes : int;
      (** file offset just past the last valid record — where a repair
          truncates to, and where appends resume *)
  torn_bytes : int;
}

val scan_string : string -> scan
val scan : string -> scan
(** @raise Error when the file is unreadable or its header is wrong
    (a torn {e tail} is not an error; a bad {e header} is). *)
