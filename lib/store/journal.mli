(** Write-ahead journal framing: one record per committed transaction.

    On disk: a header line, then a sequence of
    [magic | 8-byte BE length | 4-byte BE Adler-32 | payload] frames.
    The payload is a [<txn seq user mode>] envelope wrapping the
    compact canonical XUpdate-XML of the batch
    ({!Xupdate.Xupdate_xml.to_tree}), so a journal is inspectable with
    any XML tooling yet byte-exact under reparse.

    A {!scan} accepts the longest valid prefix: the first short,
    checksum-failing or unparseable frame ends it, and everything after
    that offset is a torn tail — exactly what a crash mid-append
    produces. *)

exception Error of string

type mode = [ `Atomic | `Tolerant ]
(** Whether the transaction was committed under [`Abort] or [`Tolerate]
    denial semantics — replay must preserve it (a tolerated record may
    legitimately contain denials). *)

type record = {
  seq : int;  (** 1-based, contiguous *)
  user : string;
  mode : mode;
  ops : Xupdate.Op.t list;
}

val header_line : string
val magic : string

val adler32 : string -> int
val mode_to_string : mode -> string
val mode_of_string : string -> mode

val payload : record -> string
val record_of_payload : string -> record
(** @raise Error on malformed payloads. *)

val encode : record -> string
(** The full frame (magic + length + checksum + payload). *)

type scan = {
  records : record list;
  valid_bytes : int;
      (** file offset just past the last valid record — where a repair
          truncates to, and where appends resume *)
  torn_bytes : int;
}

val scan_string : string -> scan
val scan : string -> scan
(** @raise Error when the file is unreadable or its header is wrong
    (a torn {e tail} is not an error; a bad {e header} is). *)
