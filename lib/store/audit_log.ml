(* Durable audit journal: every Obs.Audit event, framed with the same
   [magic | length | Adler-32 | payload] discipline as the write-ahead
   journal (Journal.frame), appended to size-rotated segment files
   audit-NNNNNN.log.  The in-memory audit ring is bounded and lossy by
   design; this sink is the unbounded, crash-recoverable record.  A
   reader accepts the longest valid prefix of each segment, so a crash
   mid-append costs at most the torn final frame. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let header_line = "xmlsecu-audit 1\n"
let magic = "AUD!"

let m_appends =
  Obs.Metrics.counter Obs.Metrics.default "audit_journal_appends_total"
    ~help:"Audit events appended to the durable audit journal"

let m_bytes =
  Obs.Metrics.counter Obs.Metrics.default "audit_journal_bytes_total"
    ~help:"Bytes appended to the durable audit journal"

let m_rotations =
  Obs.Metrics.counter Obs.Metrics.default "audit_journal_rotations_total"
    ~help:"Audit journal segment rotations"

let g_segments =
  Obs.Metrics.gauge Obs.Metrics.default "audit_segments"
    ~help:"Segment files in the durable audit journal directory"

let f_records =
  Obs.Metrics.family Obs.Metrics.default "audit_records_total"
    ~labels:[ "decision" ]
    ~help:"Audit events appended to the durable audit journal by decision"

let c_allow = Obs.Metrics.labels f_records [ "allow" ]
let c_deny = Obs.Metrics.labels f_records [ "deny" ]

(* nan = no segment opened yet this process; mirrors the snapshot-age
   gauge the store exposes *)
let last_rotation_at = Atomic.make Float.nan

let seconds_since_rotation () =
  let t0 = Atomic.get last_rotation_at in
  if Float.is_nan t0 then None else Some (Obs.Mono.now () -. t0)

let () =
  Obs.Metrics.gauge_fn Obs.Metrics.default "seconds_since_audit_rotation"
    ~help:
      "Seconds since the audit journal last opened a fresh segment (-1 \
       before any)"
    (fun () ->
      match seconds_since_rotation () with Some s -> s | None -> -1.)

(* The payload is one compact <audit/> element — inspectable with any
   XML tooling, byte-exact under reparse (attribute values escape).
   Built straight into a buffer: the append path runs once per access
   decision, so it skips the Tree/pretty-printer round trip. *)
let payload (e : Obs.Audit.event) =
  let decision =
    match e.Obs.Audit.decision with
    | Obs.Audit.Allowed -> "allow"
    | Obs.Audit.Denied -> "deny"
  in
  let b = Buffer.create 192 in
  let attr name v =
    Buffer.add_char b ' ';
    Buffer.add_string b name;
    Buffer.add_string b "=\"";
    Buffer.add_string b (Xmldoc.Xml_print.escape_attr v);
    Buffer.add_char b '"'
  in
  Buffer.add_string b "<audit";
  attr "seq" (string_of_int e.seq);
  attr "time" (Printf.sprintf "%.6f" e.time);
  attr "mono" (Printf.sprintf "%.9f" e.mono);
  attr "user" e.user;
  attr "action" e.action;
  attr "privilege" e.privilege;
  attr "target" e.target;
  attr "decision" decision;
  attr "rule" e.rule;
  attr "detail" e.detail;
  Buffer.add_string b "/>";
  Buffer.contents b

let event_of_payload s : Obs.Audit.event =
  let tree =
    try Xmldoc.Xml_parse.fragment_of_string ~strip_whitespace:false s
    with Xmldoc.Xml_parse.Error _ -> fail "unparseable audit record"
  in
  match tree with
  | Xmldoc.Tree.Element ("audit", kids) ->
    let attr name =
      match
        List.find_map
          (function
            | Xmldoc.Tree.Attr (n, v) when String.equal n name -> Some v
            | _ -> None)
          kids
      with
      | Some v -> v
      | None -> fail "audit record missing %s attribute" name
    in
    let int_attr name =
      match int_of_string_opt (attr name) with
      | Some n -> n
      | None -> fail "bad audit record %s %S" name (attr name)
    in
    let float_attr name =
      match float_of_string_opt (attr name) with
      | Some f -> f
      | None -> fail "bad audit record %s %S" name (attr name)
    in
    let decision =
      match attr "decision" with
      | "allow" -> Obs.Audit.Allowed
      | "deny" -> Obs.Audit.Denied
      | d -> fail "bad audit record decision %S" d
    in
    {
      Obs.Audit.seq = int_attr "seq";
      time = float_attr "time";
      mono = float_attr "mono";
      user = attr "user";
      action = attr "action";
      privilege = attr "privilege";
      target = attr "target";
      decision;
      rule = attr "rule";
      detail = attr "detail";
    }
  | _ -> fail "audit record is not an <audit> element"

let encode e = Journal.frame ~magic (payload e)

(* Segment files: audit-000001.log, audit-000002.log, … in one
   directory.  The index orders segments; a reader concatenates their
   valid prefixes. *)
let segment_name index = Printf.sprintf "audit-%06d.log" index

let segment_index name =
  match Scanf.sscanf_opt name "audit-%06d.log%!" (fun i -> i) with
  | Some i when i > 0 -> Some i
  | _ -> None

let segments dir =
  match Sys.readdir dir with
  | entries ->
    List.sort compare
      (List.filter_map segment_index (Array.to_list entries))
  | exception Sys_error m -> fail "%s" m

let default_max_bytes = 4 * 1024 * 1024

type t = {
  dir : string;
  fsync : bool;
  max_bytes : int;
  lock : Mutex.t;
      (* appends come from every thread/domain that records an audit
         event (the sink runs outside the ring lock) *)
  buf : Buffer.t;
      (* group commit: under [fsync:false] frames accumulate here and
         reach the fd in one write per ~[flush_bytes], not one write
         per event — the append path runs on every access decision and
         a syscall per decision is the dominant cost.  A crash loses at
         most the buffered tail, always on a frame boundary; [fsync]
         mode bypasses the buffer entirely. *)
  mutable index : int;
  mutable fd : Unix.file_descr;
  mutable size : int;
      (* logical bytes in the current segment: written + buffered *)
  mutable closed : bool;
}

let flush_bytes = 8192

let open_segment dir index ~at =
  let path = Filename.concat dir (segment_name index) in
  let fd =
    try Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
    with Unix.Unix_error (e, _, _) -> fail "%s: %s" path (Unix.error_message e)
  in
  (match at with
   | Some off ->
     (* Resume on a record boundary: drop the torn tail, seek to it. *)
     (try
        Unix.ftruncate fd off;
        ignore (Unix.lseek fd off Unix.SEEK_SET)
      with Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        fail "%s: %s" path (Unix.error_message e))
   | None ->
     let h = Bytes.of_string header_line in
     ignore (Unix.write fd h 0 (Bytes.length h)));
  fd

(* Longest valid prefix of one segment: checksum-valid frames whose
   payloads also parse.  Returns the events and the resume offset. *)
let scan_segment path =
  let ic = try open_in_bin path with Sys_error m -> fail "%s" m in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let frames =
    try Journal.scan_frames ~magic ~header:header_line s
    with Journal.Error m -> fail "%s: %s" path m
  in
  let rec take acc valid = function
    | [] -> (acc, valid)
    | (p, endoff) :: rest -> (
      match event_of_payload p with
      | e -> take (e :: acc) endoff rest
      | exception Error _ -> (acc, valid))
  in
  let events, valid_bytes = take [] (String.length header_line) frames in
  (List.rev events, valid_bytes, String.length s - valid_bytes)

let open_dir ?(fsync = false) ?(max_bytes = default_max_bytes) dir =
  if max_bytes < 1024 then
    invalid_arg "Audit_log.open_dir: max_bytes < 1024";
  (try
     if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
     else if not (Sys.is_directory dir) then fail "%s: not a directory" dir
   with Sys_error m -> fail "%s" m);
  let existing = segments dir in
  let index, at, size =
    match List.rev existing with
    | [] -> (1, None, String.length header_line)
    | last :: _ ->
      let _, valid, _ = scan_segment (Filename.concat dir (segment_name last)) in
      (last, Some valid, valid)
  in
  Obs.Metrics.set_gauge g_segments
    (Float.of_int (Stdlib.max 1 (List.length existing)));
  Atomic.set last_rotation_at (Obs.Mono.now ());
  {
    dir;
    fsync;
    max_bytes;
    lock = Mutex.create ();
    buf = Buffer.create flush_bytes;
    index;
    fd = open_segment dir index ~at;
    size;
    closed = false;
  }

let dir t = t.dir
let segment t = Filename.concat t.dir (segment_name t.index)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let flush_locked t =
  if Buffer.length t.buf > 0 then begin
    let pending = Buffer.contents t.buf in
    Buffer.clear t.buf;
    try write_all t.fd pending
    with Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e)
  end

let append t event =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.closed then fail "audit journal is closed";
      let f = encode event in
      if t.size + String.length f > t.max_bytes
         && t.size > String.length header_line
      then begin
        (* Rotate: the current segment stays behind as history; appends
           continue in a fresh one so no single file grows unbounded. *)
        flush_locked t;
        Unix.close t.fd;
        Obs.Metrics.inc m_rotations;
        t.index <- t.index + 1;
        t.fd <- open_segment t.dir t.index ~at:None;
        t.size <- String.length header_line;
        Obs.Metrics.add_gauge g_segments 1.;
        Atomic.set last_rotation_at (Obs.Mono.now ())
      end;
      if t.fsync then begin
        (try write_all t.fd f
         with Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e));
        (try Unix.fsync t.fd with Unix.Unix_error _ -> ())
      end
      else begin
        Buffer.add_string t.buf f;
        if Buffer.length t.buf >= flush_bytes then flush_locked t
      end;
      t.size <- t.size + String.length f;
      Obs.Metrics.inc m_appends;
      Obs.Metrics.add m_bytes (String.length f);
      Obs.Metrics.inc
        (match event.Obs.Audit.decision with
         | Obs.Audit.Allowed -> c_allow
         | Obs.Audit.Denied -> c_deny))

(* [sink t] plugs straight into [Obs.Audit.set_sink].  Failures are
   swallowed after the journal is closed — a late event from another
   thread must not crash the process during shutdown. *)
let sink t event = try append t event with Error _ -> ()

let flush t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> if not t.closed then flush_locked t)

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.closed then begin
        (try flush_locked t with Error _ -> ());
        t.closed <- true;
        (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
        Unix.close t.fd
      end)

type scan = {
  events : Obs.Audit.event list;
  files : string list;
  valid_bytes : int;
  torn_bytes : int;
}

let scan dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    fail "%s: not a directory" dir;
  let idxs = segments dir in
  let events, files, valid, torn =
    List.fold_left
      (fun (es, fs, v, t) idx ->
        let path = Filename.concat dir (segment_name idx) in
        let segment_events, valid_bytes, torn_bytes = scan_segment path in
        (es @ segment_events, fs @ [ path ], v + valid_bytes, t + torn_bytes))
      ([], [], 0, 0) idxs
  in
  { events; files; valid_bytes = valid; torn_bytes = torn }
