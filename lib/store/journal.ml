(* The append-only write-ahead journal: one framed record per committed
   transaction.  Framing is [magic "TXN!" | 8-byte BE payload length |
   4-byte BE Adler-32 of the payload | payload]; the payload is a <txn>
   envelope (seq, user, mode) wrapping the canonical compact XUpdate-XML
   of the batch.  A scan stops at the first frame that is short, fails
   its checksum or does not parse — everything before it is the valid
   prefix, everything after is a torn tail the writer did not complete.

   Two payload versions share the envelope.  Version 1 (no [ver]
   attribute) carries a document-only batch as one
   <xupdate:modifications> child — the historical format, still written
   whenever a batch holds no policy op, so old journals and old readers
   keep working both ways.  Version 2 ([ver="2"]) interleaves runs of
   XUpdate instructions with policy-administration elements
   (<policy:add-rule/>, <policy:retract/>, <policy:add-isa/>,
   <policy:remove-isa/>) in commit order.  The store stays
   policy-agnostic: policy ops are carried as their wire fields (strings
   and ints), validated for well-formedness at decode time; Core.Op
   converts them to and from typed rules. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type mode = [ `Atomic | `Tolerant ]

type policy_op =
  | Padd of {
      decision : [ `Accept | `Deny ];
      privilege : string;
      path : string;
      subject : string;
      priority : int;
    }
  | Pretract of { priority : int }
  | Pisa of { sub : string; super : string }
  | Premove_isa of { sub : string; super : string }

type op = Doc of Xupdate.Op.t | Policy of policy_op

type record = {
  seq : int;
  user : string;
  mode : mode;
  ops : op list;
}

let docs ops = List.map (fun o -> Doc o) ops

let doc_ops ops =
  List.filter_map (function Doc o -> Some o | Policy _ -> None) ops

let header_line = "xmlsecu-journal 1\n"
let magic = "TXN!"

(* Adler-32 (RFC 1950), hand-rolled — cheap, and strong enough to decide
   where a torn tail begins. *)
let adler32 s =
  (* Deferred modulo: 5552 is the largest chunk for which [b] stays
     below 2^63 with every byte at 0xff, so one [mod] per chunk gives
     the same sums as one per byte. *)
  let a = ref 1 and b = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let stop = min n (!i + 5552) in
    while !i < stop do
      a := !a + Char.code (String.unsafe_get s !i);
      b := !b + !a;
      incr i
    done;
    a := !a mod 65521;
    b := !b mod 65521
  done;
  (!b lsl 16) lor !a

let mode_to_string = function `Atomic -> "atomic" | `Tolerant -> "tolerant"

let mode_of_string = function
  | "atomic" -> `Atomic
  | "tolerant" -> `Tolerant
  | s -> fail "unknown transaction mode %S" s

(* Wire vocabulary of the policy elements.  The privilege names are a
   fixed wire-format constant (they mirror Core.Privilege, which the
   store deliberately does not depend on); an unknown name ends the
   valid prefix exactly like malformed XUpdate would. *)
let known_privileges = [ "position"; "read"; "insert"; "update"; "delete" ]

let decision_to_string = function `Accept -> "accept" | `Deny -> "deny"

let decision_of_string = function
  | "accept" -> `Accept
  | "deny" -> `Deny
  | s -> fail "unknown rule decision %S" s

let policy_op_to_tree = function
  | Padd { decision; privilege; path; subject; priority } ->
    Xmldoc.Tree.Element
      ( "policy:add-rule",
        [
          Xmldoc.Tree.Attr ("decision", decision_to_string decision);
          Xmldoc.Tree.Attr ("privilege", privilege);
          Xmldoc.Tree.Attr ("path", path);
          Xmldoc.Tree.Attr ("subject", subject);
          Xmldoc.Tree.Attr ("priority", string_of_int priority);
        ] )
  | Pretract { priority } ->
    Xmldoc.Tree.Element
      ("policy:retract", [ Xmldoc.Tree.Attr ("priority", string_of_int priority) ])
  | Pisa { sub; super } ->
    Xmldoc.Tree.Element
      ( "policy:add-isa",
        [ Xmldoc.Tree.Attr ("sub", sub); Xmldoc.Tree.Attr ("super", super) ] )
  | Premove_isa { sub; super } ->
    Xmldoc.Tree.Element
      ( "policy:remove-isa",
        [ Xmldoc.Tree.Attr ("sub", sub); Xmldoc.Tree.Attr ("super", super) ] )

let policy_op_of_element name attrs =
  let attr n =
    match
      List.find_map
        (function
          | Xmldoc.Tree.Attr (k, v) when String.equal k n -> Some v
          | _ -> None)
        attrs
    with
    | Some v -> v
    | None -> fail "%s element missing %s attribute" name n
  in
  let priority () =
    match int_of_string_opt (attr "priority") with
    | Some n when n > 0 -> n
    | _ -> fail "bad %s priority %S" name (attr "priority")
  in
  match name with
  | "policy:add-rule" ->
    let privilege = attr "privilege" in
    if not (List.mem privilege known_privileges) then
      fail "unknown privilege %S in journal record" privilege;
    let path = attr "path" in
    (try ignore (Xpath.Parser.parse_path path)
     with Xpath.Parser.Error _ ->
       fail "unparseable rule path in journal record");
    Padd
      {
        decision = decision_of_string (attr "decision");
        privilege;
        path;
        subject = attr "subject";
        priority = priority ();
      }
  | "policy:retract" -> Pretract { priority = priority () }
  | "policy:add-isa" -> Pisa { sub = attr "sub"; super = attr "super" }
  | "policy:remove-isa" -> Premove_isa { sub = attr "sub"; super = attr "super" }
  | _ -> fail "unknown policy element %s in journal record" name

(* The ops are printed compactly (no indentation whitespace) and reparsed
   with whitespace kept, so even whitespace-only text content round-trips
   exactly.  Maximal runs of document ops share one
   <xupdate:modifications> element; a version-2 payload is emitted only
   when the batch holds at least one policy op, so document-only batches
   stay byte-identical to the historical format. *)
let op_kids ops =
  let flush run acc =
    match run with
    | [] -> acc
    | run -> Xupdate.Xupdate_xml.to_tree (List.rev run) :: acc
  in
  let rec go run acc = function
    | [] -> List.rev (flush run acc)
    | Doc o :: rest -> go (o :: run) acc rest
    | Policy p :: rest -> go [] (policy_op_to_tree p :: flush run acc) rest
  in
  go [] [] ops

let payload r =
  let mixed = List.exists (function Policy _ -> true | Doc _ -> false) r.ops in
  let version = if mixed then [ Xmldoc.Tree.Attr ("ver", "2") ] else [] in
  Xmldoc.Xml_print.fragment_to_string ~indent:false
    (Xmldoc.Tree.Element
       ( "txn",
         [
           Xmldoc.Tree.Attr ("seq", string_of_int r.seq);
           Xmldoc.Tree.Attr ("user", r.user);
           Xmldoc.Tree.Attr ("mode", mode_to_string r.mode);
         ]
         @ version
         @ op_kids r.ops ))

let record_of_payload s =
  let tree =
    try Xmldoc.Xml_parse.fragment_of_string ~strip_whitespace:false s
    with Xmldoc.Xml_parse.Error _ -> fail "unparseable journal record"
  in
  match tree with
  | Xmldoc.Tree.Element ("txn", kids) -> (
    let attr_opt name =
      List.find_map
        (function
          | Xmldoc.Tree.Attr (n, v) when String.equal n name -> Some v
          | _ -> None)
        kids
    in
    let attr name =
      match attr_opt name with
      | Some v -> v
      | None -> fail "journal record missing %s attribute" name
    in
    let seq =
      match int_of_string_opt (attr "seq") with
      | Some n when n > 0 -> n
      | _ -> fail "bad journal record seq %S" (attr "seq")
    in
    let xupdate_ops t =
      match Xupdate.Xupdate_xml.ops_of_tree t with
      | ops -> ops
      | exception (Xupdate.Xupdate_xml.Error _ | Xpath.Parser.Error _) ->
        fail "journal record holds malformed XUpdate"
    in
    let ops =
      match attr_opt "ver" with
      | None ->
        (* Version 1: exactly one <xupdate:modifications> child. *)
        let mods =
          match
            List.find_opt
              (function
                | Xmldoc.Tree.Element ("xupdate:modifications", _) -> true
                | _ -> false)
              kids
          with
          | Some t -> t
          | None -> fail "journal record missing xupdate:modifications"
        in
        docs (xupdate_ops mods)
      | Some "2" ->
        List.concat_map
          (function
            | Xmldoc.Tree.Element ("xupdate:modifications", _) as t ->
              docs (xupdate_ops t)
            | Xmldoc.Tree.Element (name, attrs) ->
              [ Policy (policy_op_of_element name attrs) ]
            | Xmldoc.Tree.Attr _ -> []
            | _ -> fail "unexpected content in version-2 journal record")
          kids
      | Some v -> fail "unsupported journal record version %S" v
    in
    { seq; user = attr "user"; mode = mode_of_string (attr "mode"); ops })
  | _ -> fail "journal record is not a <txn> element"

(* Generic framing, shared with the audit journal ({!Audit_log}): any
   payload stream framed as [magic | 8-byte BE length | 4-byte BE
   Adler-32 | payload] gets the same torn-tail discipline for free. *)
let frame ~magic:m p =
  if String.length m <> 4 then invalid_arg "Journal.frame: magic must be 4 bytes";
  let len = String.length p in
  let buf = Buffer.create (len + 16) in
  Buffer.add_string buf m;
  let add_be n width =
    for i = width - 1 downto 0 do
      Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
    done
  in
  add_be len 8;
  add_be (adler32 p) 4;
  Buffer.add_string buf p;
  Buffer.contents buf

let encode r = frame ~magic (payload r)

type scan = {
  records : record list;  (* the valid prefix, in journal order *)
  valid_bytes : int;  (* file offset just past the last valid record *)
  torn_bytes : int;  (* trailing bytes not forming a valid record *)
}

let be s off width =
  let n = ref 0 in
  for i = 0 to width - 1 do
    n := (!n lsl 8) lor Char.code s.[off + i]
  done;
  !n

let scan_frames ~magic:m ~header s =
  if String.length m <> 4 then
    invalid_arg "Journal.scan_frames: magic must be 4 bytes";
  let n = String.length s in
  let hl = String.length header in
  if n < hl || not (String.equal (String.sub s 0 hl) header) then
    fail "bad journal header";
  let rec go off acc =
    if off + 16 > n then acc
    else if not (String.equal (String.sub s off 4) m) then acc
    else
      let len = be s (off + 4) 8 in
      let crc = be s (off + 12) 4 in
      if len < 0 || len > n - (off + 16) then acc
      else
        let p = String.sub s (off + 16) len in
        if adler32 p <> crc then acc else go (off + 16 + len) ((p, off + 16 + len) :: acc)
  in
  List.rev (go hl [])

let scan_string s =
  let frames = scan_frames ~magic ~header:header_line s in
  (* A checksum-valid frame whose payload does not parse still ends the
     valid prefix — the semantic content, not just the framing, must be
     sound for appends to resume past it. *)
  let rec take acc valid = function
    | [] -> (acc, valid)
    | (p, endoff) :: rest -> (
      match record_of_payload p with
      | r -> take (r :: acc) endoff rest
      | exception Error _ -> (acc, valid))
  in
  let records, valid_bytes = take [] (String.length header_line) frames in
  {
    records = List.rev records;
    valid_bytes;
    torn_bytes = String.length s - valid_bytes;
  }

let read_file path =
  let ic = try open_in_bin path with Sys_error m -> fail "%s" m in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan path = scan_string (read_file path)
