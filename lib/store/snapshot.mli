(** Snapshots: the canonical id-preserving serialisation
    ({!Xmldoc.Xml_print.to_canonical}) of the document at a transaction
    boundary, named by the covered sequence number.  Because ordpath
    identifiers are persistent, a reloaded snapshot is
    {!Xmldoc.Document.equal} to the original — journal replay continues
    from it without renumbering. *)

exception Error of string

val header : string
val file_name : int -> string

val write : dir:string -> seq:int -> Xmldoc.Document.t -> string
(** Atomic (temp file + rename); returns the path.
    @raise Error on I/O failure. *)

val load : string -> int * Xmldoc.Document.t
(** @raise Error on a corrupt or truncated snapshot. *)

val list : dir:string -> (int * string) list
(** All snapshots, newest first. *)

val load_latest : dir:string -> (int * Xmldoc.Document.t) option
(** The newest {e loadable} snapshot — corrupt ones are skipped, so a
    crash mid-snapshot (or bit rot in the latest file) falls back to the
    previous good one. *)
