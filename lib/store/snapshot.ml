(* Periodic snapshots: the canonical id-preserving serialisation of the
   whole document, named by the transaction sequence number it covers.
   Written atomically (temp file + rename) so a crash mid-snapshot never
   clobbers an older good one; the loader falls back past corrupt or
   torn snapshots to the newest loadable. *)

exception Error of string

let m_fallbacks =
  Obs.Metrics.counter Obs.Metrics.default "store_snapshot_fallbacks_total"
    ~help:"Corrupt or torn snapshots skipped while loading the newest"

let header = "xmlsecu-snapshot 1"

let file_name seq = Printf.sprintf "snapshot-%012d.snap" seq

let read_file path =
  let ic = try open_in_bin path with Sys_error m -> raise (Error m) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write ~dir ~seq doc =
  let path = Filename.concat dir (file_name seq) in
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc (header ^ "\n");
         output_string oc (Printf.sprintf "seq %d\n" seq);
         output_string oc (Xmldoc.Xml_print.to_canonical doc);
         flush oc);
     Sys.rename tmp path
   with Sys_error m -> raise (Error m));
  path

let load path =
  let s = read_file path in
  let line_end from =
    match String.index_from_opt s from '\n' with
    | Some i -> i
    | None -> raise (Error (path ^ ": truncated snapshot"))
  in
  let nl1 = line_end 0 in
  if not (String.equal (String.sub s 0 nl1) header) then
    raise (Error (path ^ ": bad snapshot header"));
  let nl2 = line_end (nl1 + 1) in
  let seq =
    match
      String.split_on_char ' ' (String.sub s (nl1 + 1) (nl2 - nl1 - 1))
    with
    | [ "seq"; n ] -> (
      match int_of_string_opt n with
      | Some seq when seq >= 0 -> seq
      | _ -> raise (Error (path ^ ": bad snapshot seq")))
    | _ -> raise (Error (path ^ ": bad snapshot seq line"))
  in
  let doc =
    try
      Xmldoc.Xml_parse.of_canonical
        (String.sub s (nl2 + 1) (String.length s - nl2 - 1))
    with Xmldoc.Xml_parse.Error _ ->
      raise (Error (path ^ ": corrupt snapshot body"))
  in
  (seq, doc)

(* Newest first; seqs parsed from the file names. *)
let list ~dir =
  (try Array.to_list (Sys.readdir dir) with Sys_error m -> raise (Error m))
  |> List.filter_map (fun f ->
         match Scanf.sscanf f "snapshot-%d.snap%!" (fun n -> n) with
         | n -> Some (n, Filename.concat dir f)
         | exception _ -> None)
  |> List.sort (fun (a, _) (b, _) -> Int.compare b a)

let load_latest ~dir =
  let rec go = function
    | [] -> None
    | (_, path) :: rest -> (
      match load path with
      | seq, doc -> Some (seq, doc)
      | exception Error _ ->
        Obs.Metrics.inc m_fallbacks;
        go rest)
  in
  go (list ~dir)
