(** Durability for the transactional write pipeline (see {!Txn}): an
    append-only write-ahead {!Journal} of committed transactions plus
    periodic {!Snapshot}s, and crash recovery = newest loadable snapshot
    + replay of the journal tail, truncating a torn final record.

    The store is deliberately policy-agnostic: it records {e what} was
    committed (user, mode, ops); {!recover} is parameterised by the
    secure replay function, which {!Txn.recover} supplies.  Single
    writer; no locking across processes. *)

module Journal = Journal
module Snapshot = Snapshot
module Audit_log = Audit_log

exception Error of string

type t
(** An open store directory: [journal.log] plus [snapshot-*.snap]. *)

val open_dir : ?fsync:bool -> ?snapshot_every:int -> string -> t
(** Creates the directory and an empty journal when missing; scans the
    journal, truncating any torn tail so appends resume on a record
    boundary.  [fsync] (default [false]) forces an [fsync(2)] after each
    append; [snapshot_every] (default [0] = never) writes a snapshot
    automatically every N appends.
    @raise Error on I/O failure or a corrupt journal header. *)

val dir : t -> string
val seq : t -> int
(** Sequence number of the last recorded transaction (0 when fresh). *)

val snapshot_every : t -> int
(** The automatic-snapshot period this store was opened with (0 =
    never). *)

val snapshot_lag : t -> int
(** Transactions journalled since the newest snapshot — the health
    probe compares this against [snapshot_every]. *)

val seconds_since_snapshot : unit -> float option
(** Monotonic seconds since the last snapshot written by this process
    (any store); [None] before the first.  Also exposed as the
    [store_seconds_since_snapshot] gauge. *)

val is_fresh : t -> bool
(** No snapshot and no journal record yet — {!init} is required before
    the first {!append}. *)

val init : t -> Xmldoc.Document.t -> unit
(** Writes the base snapshot (seq 0) for a fresh store.
    @raise Error if the store already has history. *)

val append :
  t -> user:string -> mode:Journal.mode -> doc:Xmldoc.Document.t ->
  Journal.op list -> int
(** Journals one committed transaction (document and/or policy ops, in
    commit order — see {!Journal.op}) and returns its sequence number.
    [doc] is the post-commit document, used only when [snapshot_every]
    triggers an automatic snapshot.
    @raise Error on I/O failure or an uninitialised store. *)

val snapshot : t -> Xmldoc.Document.t -> unit
(** Writes a snapshot covering the current sequence number. *)

val close : t -> unit

type recovery = {
  doc : Xmldoc.Document.t;
  seq : int;  (** last transaction reflected in [doc] *)
  snapshot_seq : int;
  replayed : int;
  torn_bytes : int;  (** discarded torn-tail bytes (not repaired here) *)
}

val recover :
  replay:
    (Xmldoc.Document.t -> user:string -> mode:Journal.mode ->
     Journal.op list -> Xmldoc.Document.t) ->
  string -> recovery
(** Read-only recovery: loads the newest loadable snapshot and folds
    [replay] over the journal records past it.  The torn tail (if any)
    is ignored — {!open_dir} is what repairs it on the next write
    session.
    @raise Error on a corrupt store, a journal gap, or when [replay]
    raises it (e.g. {!Txn.recover} on a replay divergence). *)
