(** Structured transaction event log.

    A bounded, mutex-guarded ring of typed events, each carrying a
    per-transaction {e correlation id}: one id is allocated when a
    transaction enters the pipeline and every event the transaction
    causes — staging, denial, journal append, fsync, snapshot, commit,
    broadcast, per-session rebase — is stamped with it, so
    [by_txn id] reconstructs the full story of one write after the
    fact (Dapper-style, but in-process).

    The id travels ambiently in domain-local storage ({!with_txn});
    pipeline stages call {!emit} with no id argument.  Code running on
    another domain (pool workers) passes [?txn] explicitly, because
    domain-local state does not cross domains.

    Recording is off by default; a disabled {!emit} is a single boolean
    load. *)

type kind =
  | Txn_begin of { user : string; ops : int }
  | Stage of { index : int; op : string }
  | Denial of { index : int; op : string; denied : int }
  | Validation_failure of { violations : int }
  | Journal_append of { seq : int; bytes : int }
  | Fsync of { seconds : float }
  | Snapshot of { seq : int }
  | Commit of { ops : int; denied : int }
  | Abort of { reason : string }
  | Broadcast of { sessions : int }
  | Rebase of { user : string; mode : string }
  | Replay of { seq : int }
  | Policy_stage of { index : int; op : string }
      (** a policy op staged inside a transaction ([op] is the
          {!Core.Op.policy_kind} label) *)
  | Policy_denial of { index : int; op : string; reason : string }
      (** a policy op denied (aborting or tolerated, per the
          transaction mode) *)
  | Rekey of { classes : int; splits : int; merges : int }
      (** permission-equivalence classes re-keyed after policy churn *)
  | Custom of { name : string; detail : string }

type event = {
  id : int;  (** ring-wide sequence number, 1-based *)
  txn : int;  (** correlation id; 0 = outside any transaction *)
  time : float;  (** wall-clock ([Unix.gettimeofday]) — display only *)
  mono : float;
      (** {!Mono.now} at emission — ordering and intervals between
          events come from this clock, so an NTP step between two
          pipeline stages cannot reorder a transaction's timeline *)
  kind : kind;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Correlation ids} *)

val next_txn : unit -> int
(** A fresh correlation id (1-based, process-wide). *)

val with_txn : int -> (unit -> 'a) -> 'a
(** Runs the thunk with [txn] as this domain's ambient correlation id;
    restores the previous ambient id on exit (even on raise). *)

val current_txn : unit -> int
(** This domain's ambient correlation id; 0 when none is in flight. *)

(** {1 Recording} *)

val emit : ?txn:int -> kind -> unit
(** Appends an event stamped [?txn] (default: the ambient id).  No-op
    while disabled.  The oldest event is dropped once the ring exceeds
    its capacity. *)

val default_capacity : int

val set_capacity : int -> unit
(** @raise Invalid_argument on a non-positive capacity. *)

val set_sink : (event -> unit) option -> unit
(** Streams every recorded event (called outside the ring lock), e.g.
    [set_sink (Some (jsonl_sink stderr))]. *)

val jsonl_sink : out_channel -> event -> unit
(** One JSON object per line; pair with {!set_sink}. *)

val set_tap : name:string -> (event -> unit) option -> unit
(** Registers (or, with [None], removes) a named observer that runs
    after the sink on every emitted event — how {!Anomaly} listens for
    aborts without occupying the sink slot.  Re-registering a name
    replaces it; taps run outside the ring lock. *)

(** {1 Queries} *)

val events : unit -> event list
(** Retained events, oldest first. *)

val by_txn : int -> event list
(** Retained events carrying the given correlation id, oldest first. *)

val length : unit -> int
val dropped : unit -> int

val clear : unit -> unit
(** Forgets retained events and resets the ring sequence (the
    correlation-id counter keeps running so ids stay unique). *)

(** {1 Rendering} *)

val kind_name : kind -> string
val event_to_json : event -> string
val to_jsonl : ?txn:int -> unit -> string
val to_json : ?txn:int -> unit -> string
