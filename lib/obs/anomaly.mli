(** Streaming security-anomaly detection and alerting over the audit
    stream.

    Four detectors run over one windowed state machine fed by
    {!Audit.event}s (and transaction {!Events.event}s for aborts):

    - [denial_spike] — a user's denials in a closed window beat both an
      absolute floor and a multiple of that user's own trailing-window
      baseline;
    - [subtree_probe] — one user accumulates many {e distinct} denied
      ordpath targets under one ordpath prefix within a window: the
      signature of a principal walking a hidden subtree (the paper's
      covert-channel concern for denied operations);
    - [dormant_rule] — a rule decides for the first time in N windows;
    - [abort_storm] — transaction aborts in a window cross a floor.

    {b Determinism contract.} Windows are logical
    ([floor (mono / window)]) and detector state advances only when an
    event is fed or {!finalize} is called — never from the wall clock
    and never from a reader ([/alertz] observes, it does not tick).
    Replaying the same event sequence therefore always yields the same
    alert timeline: the live tap and the offline segment replay of
    [xmlsecu analyze] are literally the same code path, and
    test/test_analytics.ml property-tests that equivalence. *)

type config = {
  window : float;  (** seconds per logical window *)
  baseline : int;  (** trailing windows forming the denial baseline *)
  spike_factor : float;
  spike_min : int;
  probe_targets : int;
      (** distinct denied targets under one prefix, per window *)
  probe_depth : int;  (** ordpath components forming the subtree prefix *)
  dormant_windows : int;
  abort_min : int;
  resolve_after : int;
      (** quiet closed windows before a firing alert resolves *)
}

val default_config : config
(** 10 s windows, baseline 6, spike 4× / floor 8, probe 8 targets at
    depth 2, dormant 6, aborts 8, resolve after 3. *)

type state = Firing | Resolved

val state_to_string : state -> string

type transition = {
  t_window : int;
  t_detector : string;
  t_subject : string;
  t_state : state;
  t_detail : string;
}

type alert_view = {
  detector : string;
  subject : string;
  a_state : state;
  first_window : int;  (** start of the current firing episode *)
  last_window : int;  (** last window the condition held *)
  episodes : int;
  detail : string;
}

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on non-positive window or
    baseline/resolve_after < 1. *)

val default : t
(** The process-wide engine {!install} wires the taps to. *)

val config : t -> config

(** {1 Ingestion} *)

val observe_audit : t -> Audit.event -> unit
(** Feed one audit decision; closes every logical window the event's
    [mono] stamp has moved past (empty gaps are skipped in O(users),
    with baselines aged identically to one-at-a-time closes). *)

val observe_event : t -> Events.event -> unit
(** Feed one transaction event; only [Abort] advances state. *)

val finalize : t -> unit
(** Close [resolve_after + 1] windows past the open one, so every alert
    whose condition has gone quiet reaches [Resolved].  Deterministic —
    uses only window arithmetic, no clock. *)

val replay : ?config:config -> Audit.event list -> t
(** A fresh engine fed the events in order — the offline half of the
    live/offline equivalence.  Call {!finalize} afterwards to settle
    resolutions. *)

val install : ?t:t -> unit -> unit
(** Register taps on {!Audit.default} and {!Events} feeding [t]
    (default {!default}).  Taps ride alongside the durable-journal sink;
    they do not displace it. *)

val uninstall : unit -> unit

val ordpath_prefix : depth:int -> string -> string option
(** [Some "1.3"] for a dotted-integer ordpath target strictly deeper
    than [depth] components; [None] for query strings and shallow
    targets. *)

(** {1 Reading} *)

val alerts : t -> alert_view list
(** Sorted by (detector, subject). *)

val transitions : t -> transition list
(** Firing/resolved timeline, oldest first (bounded; oldest dropped past
    8192). *)

val open_window : t -> int option

type user_row = { ur_user : string; ur_allowed : int; ur_denied : int }

type subtree_row = {
  sr_prefix : string;
  sr_denied : int;
  sr_targets : int;  (** distinct denied targets ever seen under it *)
  sr_users : string list;
}

type report = { users : user_row list; subtrees : subtree_row list }

val report : t -> report
(** Cumulative per-user / per-subtree denial report (sorted by denials
    descending, then name) — the output of [xmlsecu analyze]. *)

val to_json : t -> string
val summary : t -> string
(** Human-readable alerts + timeline + report. *)
