(** Span tracing: a lightweight scope API turning a request into a tree
    of timed spans.

    Tracing is off by default; a disabled {!with_span} is a single
    boolean load and the direct call of the thunk — no allocation, no
    clock read.  When enabled, spans nest along the dynamic extent of
    {!with_span} calls, closed spans attach to their parent (or to a
    bounded list of completed root spans), and {!annotate} hangs
    key/value metadata on the innermost open span. *)

type span = {
  name : string;
  start : float;  (** {!Mono.now} at entry (monotonic; arbitrary epoch) *)
  mutable elapsed : float;  (** seconds; set when the span closes *)
  mutable children : span list;  (** in execution order once closed *)
  mutable meta : (string * string) list;  (** in annotation order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a fresh span.  The span closes (and records its
    duration) even when the thunk raises.  When tracing is disabled this
    is just [f ()]. *)

val annotate : string -> string -> unit
(** Attaches [key=value] to the innermost open span; no-op when tracing
    is disabled or no span is open. *)

val roots : unit -> span list
(** Completed root spans, oldest first.  At most {!max_roots} are
    retained; older ones are dropped (counted by {!dropped}). *)

val max_roots : int

val dropped : unit -> int

val clear : unit -> unit
(** Forgets completed roots and the dropped count (open spans are
    unaffected). *)

val to_string : span -> string
(** Indented tree rendering, durations in microseconds. *)

val span_to_json : span -> string
val roots_to_json : unit -> string

val to_chrome_json : unit -> string
(** Completed roots in Chrome trace-event format (one [ph:"X"] complete
    event per span, µs timestamps rebased to the earliest root, one tid
    per root tree); loadable in [chrome://tracing] or Perfetto. *)
