type decision = Allowed | Denied

type event = {
  seq : int;
  time : float;
  mono : float;
  user : string;
  action : string;
  privilege : string;
  target : string;
  decision : decision;
  rule : string;
  detail : string;
}

type t = {
  lock : Mutex.t;
      (* serialises ring mutation: decisions are recorded from every
         Core.Pool worker domain during parallel fan-outs *)
  mutable capacity : int;
  ring : event Queue.t;
  mutable seen : int;
  mutable sink : (event -> unit) option;
  mutable taps : (string * (event -> unit)) list;
      (* named observers running after the sink: the sink slot belongs
         to the durable journal, taps let the anomaly engine (and tests)
         ride alongside without displacing it *)
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Obs.Audit.create: capacity < 1";
  { lock = Mutex.create (); capacity; ring = Queue.create (); seen = 0;
    sink = None; taps = [] }

let default = create ()

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let set_capacity t capacity =
  if capacity < 1 then invalid_arg "Obs.Audit.set_capacity: capacity < 1";
  Mutex.lock t.lock;
  t.capacity <- capacity;
  while Queue.length t.ring > capacity do
    ignore (Queue.pop t.ring)
  done;
  Mutex.unlock t.lock

let capacity t = t.capacity
let set_sink t sink = t.sink <- sink

let set_tap t ~name tap =
  Mutex.lock t.lock;
  let rest = List.filter (fun (n, _) -> n <> name) t.taps in
  t.taps <- (match tap with None -> rest | Some f -> (name, f) :: rest);
  Mutex.unlock t.lock

let record t ~user ~action ?(privilege = "") ?(target = "") ?(rule = "")
    ?(detail = "") decision =
  (* Wall time is display-only; ordering and intervals come from the
     monotonic clock, which an NTP step cannot reorder. *)
  let time = Unix.gettimeofday () and mono = Mono.now () in
  Mutex.lock t.lock;
  let event =
    {
      seq = t.seen;
      time;
      mono;
      user;
      action;
      privilege;
      target;
      decision;
      rule;
      detail;
    }
  in
  t.seen <- t.seen + 1;
  Queue.push event t.ring;
  if Queue.length t.ring > t.capacity then ignore (Queue.pop t.ring);
  let sink = t.sink and taps = t.taps in
  Mutex.unlock t.lock;
  (* Sink and taps outside the lock: a slow journal or detector must not
     stall recorders on other domains. *)
  (match sink with None -> () | Some f -> f event);
  List.iter (fun (_, f) -> f event) taps;
  if Timeseries.enabled () then
    Timeseries.bump Timeseries.default ~now:mono
      (match decision with
       | Allowed -> "audit_allow"
       | Denied -> "audit_deny")

let events t = List.of_seq (Queue.to_seq t.ring)
let length t = Queue.length t.ring
let seen t = t.seen
let dropped t = t.seen - Queue.length t.ring

let clear t =
  Mutex.lock t.lock;
  Queue.clear t.ring;
  t.seen <- 0;
  Mutex.unlock t.lock

let decision_to_string = function Allowed -> "allow" | Denied -> "deny"

let event_to_string e =
  Printf.sprintf "#%-4d %-10s %-18s %-8s %-10s %-5s %s%s" e.seq e.user
    e.action
    (if e.privilege = "" then "-" else e.privilege)
    (if e.target = "" then "-" else e.target)
    (decision_to_string e.decision)
    (if e.rule = "" then "-" else e.rule)
    (if e.detail = "" then "" else " (" ^ e.detail ^ ")")

let event_to_json e =
  Printf.sprintf
    "{\"seq\":%d,\"time\":%.6f,\"user\":%s,\"action\":%s,\"privilege\":%s,\"target\":%s,\
     \"decision\":%s,\"rule\":%s,\"detail\":%s}"
    e.seq e.time
    (Metrics.json_string e.user)
    (Metrics.json_string e.action)
    (Metrics.json_string e.privilege)
    (Metrics.json_string e.target)
    (Metrics.json_string (decision_to_string e.decision))
    (Metrics.json_string e.rule)
    (Metrics.json_string e.detail)

let to_json t =
  "[" ^ String.concat "," (List.map event_to_json (events t)) ^ "]"
