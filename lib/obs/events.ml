(* A bounded ring of typed events, each stamped with a per-transaction
   correlation id.  The id is allocated once per transaction (by
   Serve.commit, or by Txn.commit when running standalone) and carried
   ambiently in domain-local storage, so the stages of the pipeline —
   staging, denial, journal append, fsync, snapshot, broadcast — emit
   without threading an id argument through every signature.  Pool
   workers run on other domains and therefore pass [?txn] explicitly. *)

type kind =
  | Txn_begin of { user : string; ops : int }
  | Stage of { index : int; op : string }
  | Denial of { index : int; op : string; denied : int }
  | Validation_failure of { violations : int }
  | Journal_append of { seq : int; bytes : int }
  | Fsync of { seconds : float }
  | Snapshot of { seq : int }
  | Commit of { ops : int; denied : int }
  | Abort of { reason : string }
  | Broadcast of { sessions : int }
  | Rebase of { user : string; mode : string }
  | Replay of { seq : int }
  | Policy_stage of { index : int; op : string }
  | Policy_denial of { index : int; op : string; reason : string }
  | Rekey of { classes : int; splits : int; merges : int }
  | Custom of { name : string; detail : string }

type event = { id : int; txn : int; time : float; mono : float; kind : kind }

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let default_capacity = 4096

let lock = Mutex.create ()
let ring : event Queue.t = Queue.create ()
let capacity = ref default_capacity
let seen = ref 0
let next_id = ref 0
let sink : (event -> unit) option ref = ref None

let txn_counter = Atomic.make 0
let next_txn () = 1 + Atomic.fetch_and_add txn_counter 1

(* 0 = no transaction in flight on this domain. *)
let current_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let current_txn () = !(Domain.DLS.get current_key)

let with_txn txn f =
  let cell = Domain.DLS.get current_key in
  let saved = !cell in
  cell := txn;
  Fun.protect ~finally:(fun () -> cell := saved) f

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Events.set_capacity";
  Mutex.lock lock;
  capacity := n;
  while Queue.length ring > n do
    ignore (Queue.pop ring)
  done;
  Mutex.unlock lock

let set_sink s = sink := s

(* Named observers running after the sink — same contract as
   Audit.set_tap: the sink slot stays free for streaming exports while
   the anomaly engine listens for aborts. *)
let taps : (string * (event -> unit)) list ref = ref []

let set_tap ~name tap =
  Mutex.lock lock;
  let rest = List.filter (fun (n, _) -> n <> name) !taps in
  taps := (match tap with None -> rest | Some f -> (name, f) :: rest);
  Mutex.unlock lock

let emit ?txn kind =
  if Atomic.get enabled_flag then begin
    let txn = match txn with Some t -> t | None -> current_txn () in
    (* Wall time is kept for display; ordering and intervals come from
       the monotonic clock, immune to NTP steps. *)
    let time = Unix.gettimeofday () and mono = Mono.now () in
    Mutex.lock lock;
    incr next_id;
    let e = { id = !next_id; txn; time; mono; kind } in
    incr seen;
    Queue.push e ring;
    if Queue.length ring > !capacity then ignore (Queue.pop ring);
    let tap_list = !taps in
    Mutex.unlock lock;
    (* Sink and taps outside the lock: a slow sink (stderr, file) must
       not stall emitters on other domains. *)
    (match !sink with None -> () | Some f -> f e);
    List.iter (fun (_, f) -> f e) tap_list;
    if Timeseries.enabled () then
      match kind with
      | Commit _ -> Timeseries.bump Timeseries.default ~now:mono "txn_commit"
      | Abort _ -> Timeseries.bump Timeseries.default ~now:mono "txn_abort"
      | _ -> ()
  end

let events () =
  Mutex.lock lock;
  let l = List.of_seq (Queue.to_seq ring) in
  Mutex.unlock lock;
  l

let by_txn txn = List.filter (fun e -> e.txn = txn) (events ())

let length () =
  Mutex.lock lock;
  let n = Queue.length ring in
  Mutex.unlock lock;
  n

let dropped () =
  Mutex.lock lock;
  let d = !seen - Queue.length ring in
  Mutex.unlock lock;
  d

let clear () =
  Mutex.lock lock;
  Queue.clear ring;
  seen := 0;
  next_id := 0;
  Mutex.unlock lock

let kind_name = function
  | Txn_begin _ -> "txn_begin"
  | Stage _ -> "stage"
  | Denial _ -> "denial"
  | Validation_failure _ -> "validation_failure"
  | Journal_append _ -> "journal_append"
  | Fsync _ -> "fsync"
  | Snapshot _ -> "snapshot"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
  | Broadcast _ -> "broadcast"
  | Rebase _ -> "rebase"
  | Replay _ -> "replay"
  | Policy_stage _ -> "policy_stage"
  | Policy_denial _ -> "policy_denial"
  | Rekey _ -> "rekey"
  | Custom { name; _ } -> name

let kind_fields = function
  | Txn_begin { user; ops } ->
    [ ("user", Metrics.json_string user); ("ops", string_of_int ops) ]
  | Stage { index; op } ->
    [ ("index", string_of_int index); ("op", Metrics.json_string op) ]
  | Denial { index; op; denied } ->
    [ ("index", string_of_int index);
      ("op", Metrics.json_string op);
      ("denied", string_of_int denied) ]
  | Validation_failure { violations } ->
    [ ("violations", string_of_int violations) ]
  | Journal_append { seq; bytes } ->
    [ ("seq", string_of_int seq); ("bytes", string_of_int bytes) ]
  | Fsync { seconds } -> [ ("seconds", Printf.sprintf "%.9f" seconds) ]
  | Snapshot { seq } -> [ ("seq", string_of_int seq) ]
  | Commit { ops; denied } ->
    [ ("ops", string_of_int ops); ("denied", string_of_int denied) ]
  | Abort { reason } -> [ ("reason", Metrics.json_string reason) ]
  | Broadcast { sessions } -> [ ("sessions", string_of_int sessions) ]
  | Rebase { user; mode } ->
    [ ("user", Metrics.json_string user); ("mode", Metrics.json_string mode) ]
  | Replay { seq } -> [ ("seq", string_of_int seq) ]
  | Policy_stage { index; op } ->
    [ ("index", string_of_int index); ("op", Metrics.json_string op) ]
  | Policy_denial { index; op; reason } ->
    [ ("index", string_of_int index);
      ("op", Metrics.json_string op);
      ("reason", Metrics.json_string reason) ]
  | Rekey { classes; splits; merges } ->
    [ ("classes", string_of_int classes);
      ("splits", string_of_int splits);
      ("merges", string_of_int merges) ]
  | Custom { detail; _ } -> [ ("detail", Metrics.json_string detail) ]

let event_to_json e =
  let fields =
    [ ("id", string_of_int e.id);
      ("txn", string_of_int e.txn);
      ("time", Printf.sprintf "%.6f" e.time);
      ("mono", Printf.sprintf "%.9f" e.mono);
      ("kind", Metrics.json_string (kind_name e.kind)) ]
    @ kind_fields e.kind
  in
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Metrics.json_string k ^ ":" ^ v) fields)
  ^ "}"

let to_jsonl ?txn () =
  let evs = match txn with None -> events () | Some t -> by_txn t in
  String.concat "" (List.map (fun e -> event_to_json e ^ "\n") evs)

let to_json ?txn () =
  let evs = match txn with None -> events () | Some t -> by_txn t in
  "[" ^ String.concat "," (List.map event_to_json evs) ^ "]"

let jsonl_sink oc e =
  output_string oc (event_to_json e);
  output_char oc '\n'
