(** Query-plan explainability and the slow-query log.

    Each served query records a structured {!plan} — the chosen read
    path (compiled rewrite vs lazy-view fallback), determinised
    automaton product-state count, nodes visited and pruned by ordpath
    contiguity, the deciding-rule set over the answers, the permission
    class, and the latency from the monotonic clock — into a bounded
    mutex-guarded ring.  Plans at or above the configurable latency
    {!threshold} are additionally retained in a dedicated slow ring
    (what [/slowz] and [xmlsecu slow] serve), so fast traffic cannot
    evict the evidence of a slow query.

    Recording is off by default; call sites guard on {!enabled}. *)

type plan = {
  seq : int;
  time : float;  (** wall clock ([Unix.gettimeofday]), display only *)
  mono : float;  (** monotonic stamp — ordering and intervals *)
  user : string;
  query : string;
  compiled : bool;  (** [true] = rewrite product, [false] = fallback *)
  states : int;  (** distinct determinised automaton state sets *)
  visited : int;  (** nodes the traversal consumed *)
  pruned : int;  (** nodes skipped wholesale by ordpath contiguity *)
  answers : int;
  rules : string list;  (** deciding rules over the answer set *)
  cls : string;  (** [Perm.profile] class id *)
  seconds : float;  (** latency on the monotonic clock *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val default_threshold : float
(** 10 ms. *)

val set_threshold : float -> unit
(** Plans with [seconds >= threshold] also land in the slow ring. *)

val threshold : unit -> float

val default_capacity : int

val set_capacity : int -> unit
(** Applies to both rings. @raise Invalid_argument when non-positive. *)

val record :
  user:string -> query:string -> compiled:bool -> states:int ->
  visited:int -> pruned:int -> answers:int -> rules:string list ->
  cls:string -> seconds:float -> plan
(** Unconditional — callers guard on {!enabled}. *)

val recent : unit -> plan list
(** Retained plans, oldest first. *)

val slow : unit -> plan list
(** Retained at-or-above-threshold plans, oldest first. *)

val seen : unit -> int
val clear : unit -> unit

val plan_to_json : plan -> string
val plan_to_string : plan -> string
val recent_json : unit -> string
val slow_json : unit -> string
