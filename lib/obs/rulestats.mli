(** Per-rule decision telemetry: runtime rule coverage under axiom 14.

    Every conflict resolution ([Core.Perm.compute]/[update]) counts, per
    security rule, how many nodes the rule's path {e matched} and how
    many of those it actually {e decided} (won the most-recent-wins
    resolution for its privilege).  [matched - decided] is the number of
    nodes where the rule was overridden by a more recent rule; a rule
    with zero decisions despite matches is a {e runtime-shadowed}
    candidate — dead weight the planned [xmlsecu lint] static analyser
    can cross-check.

    Rules are keyed by their priority (unique within a policy).
    Counters are process-wide atomics, safe to bump from [Core.Pool]
    worker domains; recording is off by default and call sites guard on
    {!enabled}, so a disabled registry costs one boolean load. *)

type entry
(** A registered rule's counter cell. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val register : key:int -> privilege:string -> desc:string -> entry
(** Idempotent by [key] (the rule priority): re-registering returns the
    existing cell, so cumulative counts survive re-resolution. *)

val find : key:int -> entry option
(** The already-registered cell, if any — lets hot call sites skip
    building [register]'s description on re-resolution. *)

val add_matched : entry -> int -> unit
(** The rule's path selected [n] more nodes (whether or not it won). *)

val add_decided : entry -> int -> unit
(** The rule won the most-recent-wins resolution on [n] more nodes. *)

val note_class : profile:string -> keys:int list -> unit
(** Associates a permission-equivalence class ({!Core.Perm.profile})
    with the priorities of its applicable rules.  Idempotent. *)

val note_member : profile:string -> unit
(** One more session joined the class (no-op for unknown profiles). *)

val retire : key:int -> unit
(** The rule issued at this timestamp was retracted: forget its
    counters (it must not be reported as shadowed forever) and drop the
    timestamp from every class's rule list.  Unknown keys are a no-op;
    re-registering the key later starts from zero. *)

(** {1 Reporting} *)

type report = {
  r_key : int;
  r_privilege : string;
  r_desc : string;
  r_matched : int;
  r_decided : int;
  r_overridden : int;  (** [max 0 (matched - decided)] *)
}

val reports : unit -> report list
(** All registered rules, ascending priority. *)

val shadowed : unit -> report list
(** Rules with zero decisions so far — runtime-shadowed candidates. *)

type class_report = {
  c_profile : string;
  c_keys : int list;
  c_members : int;
}

val class_reports : unit -> class_report list

val clear : unit -> unit
(** Forgets every registered rule and class. *)

val to_json : unit -> string
(** [{"rules":[...],"classes":[...]}] — what [/rulez] serves. *)

val to_string : unit -> string
(** Human-readable coverage table, shadowed rules flagged. *)
