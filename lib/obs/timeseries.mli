(** Fixed-window time-series ring: per-window named counters plus latency
    quantile sketches, rotated in O(1) at window boundaries.

    Windows are {e logical}: an observation stamped [now] lands in window
    [floor (now / window)], so the series is a pure function of the
    stamps fed in — the clock is injected ([?now]), never read by the
    readers.  This is the determinism contract the anomaly detectors
    inherit (DESIGN § security analytics): replaying the same event
    stamps rebuilds the same windows.

    Recording is guarded by a global {!enabled} flag at the call sites
    (audit decisions, transaction events, query latency), so a disabled
    series costs one boolean load.  Sketches share the Metrics histogram
    ladder (powers of two, 1µs..~8s), which makes merging windows an
    element-wise add. *)

type t

val create : ?window:float -> ?slots:int -> unit -> t
(** [window] seconds per window (default 10); [slots] ring length
    (default 60, i.e. 10 minutes of history).
    @raise Invalid_argument when [window <= 0] or [slots < 2]. *)

val default : t
(** The process-wide series the instrumented call sites feed. *)

val set_enabled : bool -> unit
(** Global switch shared by every series (call sites guard on it). *)

val enabled : unit -> bool

val window : t -> float
val index_of : t -> float -> int
(** The logical window index a stamp falls in. *)

(** {1 Recording} *)

val bump : t -> ?now:float -> ?n:int -> string -> unit
(** Adds [n] (default 1) to counter [series] in the window containing
    [now] (default {!Mono.now}).  Skipped windows materialise as zero
    windows; a stamp older than the ring's reach is dropped and counted
    in {!late_drops}. *)

val observe : t -> ?now:float -> string -> float -> unit
(** Feeds one duration (seconds) into sketch [series] of the window
    containing [now]. *)

val rotations : t -> int
val late_drops : t -> int
val clear : t -> unit

(** {1 Reading} *)

type sketch_view = {
  count : int;
  sum : float;
  buckets : int array;  (** per-bucket counts, overflow last *)
}

type window_view = {
  index : int;  (** covers [[index*window, (index+1)*window)] *)
  counters : (string * int) list;  (** sorted by name *)
  sketches : (string * sketch_view) list;  (** sorted by name *)
}

val windows : t -> window_view list
(** Retained windows, oldest first (gap windows included, empty). *)

val current : t -> int option
(** Newest window index, or [None] before any observation. *)

val merge : sketch_view list -> sketch_view
(** Element-wise bucket sum — merging windows loses nothing because all
    sketches share one ladder. *)

val quantile : sketch_view -> float -> float
(** Upper bound of the bucket holding the q-th sample (0 on empty;
    overflow reports twice the last bound). *)

val to_json : t -> string
