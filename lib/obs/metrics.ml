(* Instruments are shared across domains (the Core.Pool fan-out
   increments them from workers): counters and gauges are atomics,
   histograms take a per-instrument mutex, labelled-family child lookup
   takes the family mutex, and registration itself is serialised. *)
type counter = {
  c_name : string;
  c_help : string;
  c_value : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_help : string;
  g_value : float Atomic.t;
}

type family = {
  f_name : string;
  f_help : string;
  f_labels : string list;
  f_lock : Mutex.t;
  f_children : (string list, counter) Hashtbl.t; (* label values -> cell *)
}

(* Fixed log-scale bucket bounds, in seconds: 1µs, 2µs, 4µs, … ~8.4s,
   then +Inf.  Fixed bounds keep exposition comparable across runs and
   make observation a constant-time scan with no allocation. *)
let bucket_bounds =
  Array.init 24 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

type histogram = {
  h_name : string;
  h_help : string;
  h_lock : Mutex.t;
  h_counts : int array; (* one per bound, non-cumulative; overflow last *)
  mutable h_sum : float;
  mutable h_count : int;
}

type t = {
  reg_lock : Mutex.t;
  mutable counters : counter list; (* insertion order, newest first *)
  mutable gauges : gauge list;
  mutable gauge_fns : (string * string * (unit -> float)) list;
  mutable families : family list;
  mutable histograms : histogram list;
}

let create () =
  {
    reg_lock = Mutex.create ();
    counters = [];
    gauges = [];
    gauge_fns = [];
    families = [];
    histograms = [];
  }

let default = create ()

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter ?(help = "") t name =
  locked t.reg_lock @@ fun () ->
  match List.find_opt (fun c -> String.equal c.c_name name) t.counters with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_help = help; c_value = Atomic.make 0 } in
    t.counters <- c :: t.counters;
    c

let inc c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Obs.Metrics.add: negative amount";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value
let counter_name c = c.c_name

let gauge ?(help = "") t name =
  locked t.reg_lock @@ fun () ->
  match List.find_opt (fun g -> String.equal g.g_name name) t.gauges with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_help = help; g_value = Atomic.make 0. } in
    t.gauges <- g :: t.gauges;
    g

let set_gauge g v = Atomic.set g.g_value v

let add_gauge g d =
  (* CAS loop: gauges move both ways, so no fetch_and_add shortcut. *)
  let rec go () =
    let old = Atomic.get g.g_value in
    if not (Atomic.compare_and_set g.g_value old (old +. d)) then go ()
  in
  go ()

let gauge_value g = Atomic.get g.g_value
let gauge_name g = g.g_name

let gauge_fn ?(help = "") t name f =
  locked t.reg_lock @@ fun () ->
  if not (List.exists (fun (n, _, _) -> String.equal n name) t.gauge_fns)
  then t.gauge_fns <- (name, help, f) :: t.gauge_fns

let render_labels names values =
  let buf = Buffer.create 32 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      String.iter
        (fun ch ->
          match ch with
          | '\\' -> Buffer.add_string buf "\\\\"
          | '"' -> Buffer.add_string buf "\\\""
          | '\n' -> Buffer.add_string buf "\\n"
          | c -> Buffer.add_char buf c)
        v;
      Buffer.add_char buf '"')
    (List.combine names values);
  Buffer.add_char buf '}';
  Buffer.contents buf

let family ?(help = "") t name ~labels =
  if labels = [] then invalid_arg "Obs.Metrics.family: no label names";
  locked t.reg_lock @@ fun () ->
  match List.find_opt (fun f -> String.equal f.f_name name) t.families with
  | Some f ->
    if f.f_labels <> labels then
      invalid_arg
        (Printf.sprintf
           "Obs.Metrics.family: %s re-registered with different labels" name);
    f
  | None ->
    let f =
      {
        f_name = name;
        f_help = help;
        f_labels = labels;
        f_lock = Mutex.create ();
        f_children = Hashtbl.create 8;
      }
    in
    t.families <- f :: t.families;
    f

let labels f values =
  if List.length values <> List.length f.f_labels then
    invalid_arg
      (Printf.sprintf "Obs.Metrics.labels: %s wants %d label values"
         f.f_name
         (List.length f.f_labels));
  locked f.f_lock @@ fun () ->
  match Hashtbl.find_opt f.f_children values with
  | Some c -> c
  | None ->
    let c =
      {
        c_name = f.f_name ^ render_labels f.f_labels values;
        c_help = f.f_help;
        c_value = Atomic.make 0;
      }
    in
    Hashtbl.add f.f_children values c;
    c

let family_name f = f.f_name
let family_labels f = f.f_labels

let family_cells f =
  let cells =
    locked f.f_lock @@ fun () ->
    Hashtbl.fold
      (fun values c acc -> (values, Atomic.get c.c_value) :: acc)
      f.f_children []
  in
  List.sort compare cells

let histogram ?(help = "") t name =
  locked t.reg_lock @@ fun () ->
  match List.find_opt (fun h -> String.equal h.h_name name) t.histograms with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_help = help;
        h_lock = Mutex.create ();
        h_counts = Array.make (Array.length bucket_bounds + 1) 0;
        h_sum = 0.;
        h_count = 0;
      }
    in
    t.histograms <- h :: t.histograms;
    h

let observe h v =
  let n = Array.length bucket_bounds in
  let rec slot i = if i >= n || v <= bucket_bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  locked h.h_lock @@ fun () ->
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let count h = h.h_count
let sum h = h.h_sum

let buckets h =
  let acc = ref 0 in
  let cumulative =
    Array.to_list
      (Array.mapi
         (fun i c ->
           acc := !acc + c;
           let bound =
             if i < Array.length bucket_bounds then bucket_bounds.(i)
             else infinity
           in
           (bound, !acc))
         h.h_counts)
  in
  cumulative

let time h f =
  let t0 = Mono.now () in
  Fun.protect ~finally:(fun () -> observe h (Mono.now () -. t0)) f

let by_name name_of l = List.sort (fun a b -> compare (name_of a) (name_of b)) l

let counters t =
  List.map
    (fun c -> (c.c_name, Atomic.get c.c_value))
    (by_name (fun c -> c.c_name) t.counters)

let gauges t =
  let settable =
    List.map (fun g -> (g.g_name, Atomic.get g.g_value)) t.gauges
  in
  let sampled = List.map (fun (n, _, f) -> (n, f ())) t.gauge_fns in
  List.sort compare (settable @ sampled)

let families t =
  List.concat_map
    (fun f ->
      List.map
        (fun (values, v) -> (f.f_name, List.combine f.f_labels values, v))
        (family_cells f))
    (by_name (fun f -> f.f_name) t.families)

let histogram_names t =
  List.map (fun h -> h.h_name) (by_name (fun h -> h.h_name) t.histograms)

let le_label bound =
  if bound = infinity then "+Inf" else Printf.sprintf "%g" bound

(* Exposition-format escaping: in HELP text, backslash and newline are
   escaped; label values additionally escape the double quote (done in
   [render_labels], which child cells bake into their names). *)
let escape_help s =
  if String.exists (fun c -> c = '\\' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun ch ->
        match ch with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let gauge_text v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun c ->
      header c.c_name c.c_help "counter";
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" c.c_name (Atomic.get c.c_value)))
    (by_name (fun c -> c.c_name) t.counters);
  let sampled =
    List.map (fun g -> (g.g_name, g.g_help, Atomic.get g.g_value)) t.gauges
    @ List.map (fun (n, h, f) -> (n, h, f ())) t.gauge_fns
  in
  List.iter
    (fun (name, help, v) ->
      header name help "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" name (gauge_text v)))
    (List.sort compare sampled);
  List.iter
    (fun f ->
      header f.f_name f.f_help "counter";
      List.iter
        (fun (values, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" f.f_name
               (render_labels f.f_labels values)
               v))
        (family_cells f))
    (by_name (fun f -> f.f_name) t.families);
  List.iter
    (fun h ->
      header h.h_name h.h_help "histogram";
      List.iter
        (fun (bound, c) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name
               (le_label bound) c))
        (buckets h);
      Buffer.add_string buf (Printf.sprintf "%s_sum %.9f\n" h.h_name h.h_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name h.h_count))
    (by_name (fun h -> h.h_name) t.histograms);
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float v =
  if v = infinity then "\"+Inf\""
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%s:%d" (json_string name) v))
    (counters t);
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%s:%s" (json_string name) (json_float v)))
    (gauges t);
  Buffer.add_string buf "},\"families\":[";
  List.iteri
    (fun i (name, pairs, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%s,\"labels\":{" (json_string name));
      List.iteri
        (fun j (k, lv) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "%s:%s" (json_string k) (json_string lv)))
        pairs;
      Buffer.add_string buf (Printf.sprintf "},\"value\":%d}" v))
    (families t);
  Buffer.add_string buf "],\"histograms\":{";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%s:{\"count\":%d,\"sum\":%s,\"buckets\":["
           (json_string h.h_name) h.h_count (json_float h.h_sum));
      List.iteri
        (fun j (bound, c) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float bound) c))
        (buckets h);
      Buffer.add_string buf "]}")
    (by_name (fun h -> h.h_name) t.histograms);
  Buffer.add_string buf "}}";
  Buffer.contents buf

let reset t =
  List.iter (fun c -> Atomic.set c.c_value 0) t.counters;
  List.iter (fun g -> Atomic.set g.g_value 0.) t.gauges;
  List.iter
    (fun f ->
      locked f.f_lock @@ fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) f.f_children)
    t.families;
  List.iter
    (fun h ->
      locked h.h_lock @@ fun () ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_sum <- 0.;
      h.h_count <- 0)
    t.histograms
