(* Instruments are shared across domains (the Core.Pool fan-out
   increments them from workers): counters are atomics, histograms take a
   per-instrument mutex, and registration itself is serialised. *)
type counter = {
  c_name : string;
  c_help : string;
  c_value : int Atomic.t;
}

(* Fixed log-scale bucket bounds, in seconds: 1µs, 2µs, 4µs, … ~8.4s,
   then +Inf.  Fixed bounds keep exposition comparable across runs and
   make observation a constant-time scan with no allocation. *)
let bucket_bounds =
  Array.init 24 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

type histogram = {
  h_name : string;
  h_help : string;
  h_lock : Mutex.t;
  h_counts : int array; (* one per bound, non-cumulative; overflow last *)
  mutable h_sum : float;
  mutable h_count : int;
}

type t = {
  reg_lock : Mutex.t;
  mutable counters : counter list; (* insertion order, newest first *)
  mutable histograms : histogram list;
}

let create () =
  { reg_lock = Mutex.create (); counters = []; histograms = [] }

let default = create ()

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter ?(help = "") t name =
  locked t.reg_lock @@ fun () ->
  match List.find_opt (fun c -> String.equal c.c_name name) t.counters with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_help = help; c_value = Atomic.make 0 } in
    t.counters <- c :: t.counters;
    c

let inc c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Obs.Metrics.add: negative amount";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value
let counter_name c = c.c_name

let histogram ?(help = "") t name =
  locked t.reg_lock @@ fun () ->
  match List.find_opt (fun h -> String.equal h.h_name name) t.histograms with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_help = help;
        h_lock = Mutex.create ();
        h_counts = Array.make (Array.length bucket_bounds + 1) 0;
        h_sum = 0.;
        h_count = 0;
      }
    in
    t.histograms <- h :: t.histograms;
    h

let observe h v =
  let n = Array.length bucket_bounds in
  let rec slot i = if i >= n || v <= bucket_bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  locked h.h_lock @@ fun () ->
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let count h = h.h_count
let sum h = h.h_sum

let buckets h =
  let acc = ref 0 in
  let cumulative =
    Array.to_list
      (Array.mapi
         (fun i c ->
           acc := !acc + c;
           let bound =
             if i < Array.length bucket_bounds then bucket_bounds.(i)
             else infinity
           in
           (bound, !acc))
         h.h_counts)
  in
  cumulative

let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

let by_name name_of l = List.sort (fun a b -> compare (name_of a) (name_of b)) l

let counters t =
  List.map
    (fun c -> (c.c_name, Atomic.get c.c_value))
    (by_name (fun c -> c.c_name) t.counters)

let histogram_names t =
  List.map (fun h -> h.h_name) (by_name (fun h -> h.h_name) t.histograms)

let le_label bound =
  if bound = infinity then "+Inf" else Printf.sprintf "%g" bound

let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      if c.c_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" c.c_name c.c_help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" c.c_name);
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" c.c_name (Atomic.get c.c_value)))
    (by_name (fun c -> c.c_name) t.counters);
  List.iter
    (fun h ->
      if h.h_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" h.h_name h.h_help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" h.h_name);
      List.iter
        (fun (bound, c) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name
               (le_label bound) c))
        (buckets h);
      Buffer.add_string buf (Printf.sprintf "%s_sum %.9f\n" h.h_name h.h_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name h.h_count))
    (by_name (fun h -> h.h_name) t.histograms);
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float v =
  if v = infinity then "\"+Inf\""
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%s:%d" (json_string name) v))
    (counters t);
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%s:{\"count\":%d,\"sum\":%s,\"buckets\":["
           (json_string h.h_name) h.h_count (json_float h.h_sum));
      List.iteri
        (fun j (bound, c) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float bound) c))
        (buckets h);
      Buffer.add_string buf "]}")
    (by_name (fun h -> h.h_name) t.histograms);
  Buffer.add_string buf "}}";
  Buffer.contents buf

let reset t =
  List.iter (fun c -> Atomic.set c.c_value 0) t.counters;
  List.iter
    (fun h ->
      locked h.h_lock @@ fun () ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_sum <- 0.;
      h.h_count <- 0)
    t.histograms
