(** Metrics registry: named monotonic counters and latency histograms
    with Prometheus-style text exposition and JSON dumps.

    A registry is a flat namespace of instruments; registering the same
    name twice returns the same instrument, so modules can resolve their
    counters once at initialisation and increment a plain record field on
    the hot path.  Counter increments and histogram observations never
    allocate.  Recorded values carry no wall-clock dependence beyond the
    [Unix.gettimeofday] spans fed into histograms by {!time}. *)

type t
(** A registry. *)

type counter
type histogram

val create : unit -> t

val default : t
(** The process-wide registry every instrumented module reports into. *)

(** {1 Counters} *)

val counter : ?help:string -> t -> string -> counter
(** Registers (or finds) the monotonic counter [name].  [help] is kept
    first-wins for exposition. *)

val inc : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative amount (counters are
    monotonic). *)

val value : counter -> int
val counter_name : counter -> string

(** {1 Histograms} *)

val histogram : ?help:string -> t -> string -> histogram
(** Registers (or finds) a latency histogram with fixed log-scale buckets
    (powers of two from 1µs to ~8s, plus +Inf).  Observations are in
    seconds. *)

val observe : histogram -> float -> unit
val count : histogram -> int
val sum : histogram -> float

val buckets : histogram -> (float * int) list
(** Cumulative [(upper_bound_seconds, count)] pairs, +Inf last
    (represented as [infinity]). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Runs the thunk and observes its [Unix.gettimeofday] duration;
    observes even when the thunk raises. *)

(** {1 Exposition} *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val histogram_names : t -> string list

val to_prometheus : t -> string
(** Prometheus text exposition format (counters and histograms, sorted
    by name). *)

val to_json : t -> string

val reset : t -> unit
(** Zeroes every instrument (registrations survive).  For tests and
    benches only — production counters are monotonic. *)

(** {1 JSON plumbing} *)

val json_string : string -> string
(** Escapes and quotes a string for JSON; shared by the other [Obs]
    emitters. *)
