(** Metrics registry: named monotonic counters, gauges, labelled counter
    families and latency histograms with Prometheus-style text exposition
    and JSON dumps.

    A registry is a flat namespace of instruments; registering the same
    name twice returns the same instrument, so modules can resolve their
    counters once at initialisation and increment a plain record field on
    the hot path.  Counter increments and histogram observations never
    allocate.  Durations fed into histograms by {!time} are measured on
    the monotonic clock ({!Mono.now}) so wall-clock jumps cannot corrupt
    them. *)

type t
(** A registry. *)

type counter
type gauge
type family
type histogram

val create : unit -> t

val default : t
(** The process-wide registry every instrumented module reports into. *)

(** {1 Counters} *)

val counter : ?help:string -> t -> string -> counter
(** Registers (or finds) the monotonic counter [name].  [help] is kept
    first-wins for exposition. *)

val inc : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative amount (counters are
    monotonic). *)

val value : counter -> int
val counter_name : counter -> string

(** {1 Gauges}

    Gauges are instantaneous levels (queue depth, live sessions, bytes on
    disk): they move both ways and are exposed as floats. *)

val gauge : ?help:string -> t -> string -> gauge
(** Registers (or finds) the settable gauge [name]. *)

val set_gauge : gauge -> float -> unit

val add_gauge : gauge -> float -> unit
(** Adds [d] (either sign) atomically. *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

val gauge_fn : ?help:string -> t -> string -> (unit -> float) -> unit
(** Registers a callback gauge sampled at exposition time (e.g.
    seconds-since-last-snapshot).  First registration under a name wins;
    the callback must be domain-safe and non-blocking. *)

(** {1 Labelled counter families}

    A family is one metric name with a fixed list of label names; each
    distinct label-value vector owns an independent counter cell exposed
    as [name{k="v",...}].  Cells are created on first use and live
    forever (label values must therefore be low-cardinality — privilege
    names, outcome kinds, not user ids). *)

val family : ?help:string -> t -> string -> labels:string list -> family
(** Registers (or finds) the family [name] with the given label names.
    @raise Invalid_argument if [labels] is empty or the name was already
    registered with different label names. *)

val labels : family -> string list -> counter
(** The cell for one label-value vector (positional, matching the
    family's label names); creates it at zero on first use.  The
    returned counter's {!counter_name} is the full rendered
    [name{k="v"}] sample name.
    @raise Invalid_argument on a value-count mismatch. *)

val family_name : family -> string
val family_labels : family -> string list

val family_cells : family -> (string list * int) list
(** Every cell as [(label values, value)], sorted. *)

(** {1 Histograms} *)

val histogram : ?help:string -> t -> string -> histogram
(** Registers (or finds) a latency histogram with fixed log-scale buckets
    (powers of two from 1µs to ~8s, plus +Inf).  Observations are in
    seconds. *)

val observe : histogram -> float -> unit
val count : histogram -> int
val sum : histogram -> float

val buckets : histogram -> (float * int) list
(** Cumulative [(upper_bound_seconds, count)] pairs, +Inf last
    (represented as [infinity]). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Runs the thunk and observes its duration on the monotonic clock;
    observes even when the thunk raises. *)

(** {1 Exposition} *)

val counters : t -> (string * int) list
(** Plain (unlabelled) counters, sorted by name.  Family cells are
    reported by {!families}. *)

val gauges : t -> (string * float) list
(** Settable and callback gauges, sampled now, sorted by name. *)

val families : t -> (string * (string * string) list * int) list
(** Every family cell as [(family name, label pairs, value)], sorted. *)

val histogram_names : t -> string list

val to_prometheus : t -> string
(** Prometheus text exposition format: counters, gauges, labelled
    families, then histograms, each sorted by name, with [# HELP]
    / [# TYPE] headers.  HELP text and label values are escaped per the
    exposition format (backslash, double quote, newline). *)

val to_json : t -> string

val reset : t -> unit
(** Zeroes every instrument (registrations survive; callback gauges are
    left to their callbacks).  For tests and benches only — production
    counters are monotonic. *)

(** {1 JSON plumbing} *)

val json_string : string -> string
(** Escapes and quotes a string for JSON; shared by the other [Obs]
    emitters. *)
