(* Per-rule decision telemetry: how often each security rule's path
   matched a node, and how often the rule actually decided that node
   under axiom 14's most-recent-wins resolution.  A rule that keeps
   matching but never decides is runtime-shadowed — dead weight a policy
   author should see (the empirical counterpart of the static
   shadowed-rule analyses the ROADMAP's `xmlsecu lint` direction cites).

   Rules are keyed by priority: the paper makes priorities unique within
   a policy (they are administration timestamps), so the key identifies
   the rule exactly.  Counters are atomic — conflict resolution runs on
   Core.Pool worker domains during login fan-outs — and bumping is
   guarded by a global enabled flag so a disabled registry costs the
   call sites one boolean load. *)

type entry = {
  key : int;  (* rule priority — unique within a policy *)
  privilege : string;
  desc : string;
  matched : int Atomic.t;
  decided : int Atomic.t;
}

type class_info = {
  profile : string;
  keys : int list;
  members : int Atomic.t;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Registration and reporting are rare and mutex-guarded; the per-node
   hot path only touches the entries' atomic counters. *)
let lock = Mutex.create ()
let rules : (int, entry) Hashtbl.t = Hashtbl.create 64
let classes : (string, class_info) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register ~key ~privilege ~desc =
  locked (fun () ->
      match Hashtbl.find_opt rules key with
      | Some e -> e
      | None ->
        let e =
          { key; privilege; desc;
            matched = Atomic.make 0; decided = Atomic.make 0 }
        in
        Hashtbl.add rules key e;
        e)

let find ~key = locked (fun () -> Hashtbl.find_opt rules key)

let add_matched e n = if n > 0 then ignore (Atomic.fetch_and_add e.matched n)
let add_decided e n = if n > 0 then ignore (Atomic.fetch_and_add e.decided n)

let note_class ~profile ~keys =
  locked (fun () ->
      match Hashtbl.find_opt classes profile with
      | Some _ -> ()
      | None ->
        Hashtbl.add classes profile
          { profile; keys; members = Atomic.make 0 })

let note_member ~profile =
  match locked (fun () -> Hashtbl.find_opt classes profile) with
  | Some c -> Atomic.incr c.members
  | None -> ()

(* A retracted rule must stop being reported: its counters would
   otherwise read as "shadowed forever" (zero further decisions) even
   though the rule no longer exists.  Classes keyed on the old profile
   drop the timestamp too; the re-keyed classes register fresh. *)
let retire ~key =
  locked (fun () ->
      Hashtbl.remove rules key;
      let updated =
        Hashtbl.fold
          (fun profile c acc ->
            if List.mem key c.keys then
              (profile, { c with keys = List.filter (fun k -> k <> key) c.keys })
              :: acc
            else acc)
          classes []
      in
      List.iter (fun (profile, c) -> Hashtbl.replace classes profile c) updated)

type report = {
  r_key : int;
  r_privilege : string;
  r_desc : string;
  r_matched : int;
  r_decided : int;
  r_overridden : int;
      (* matched - decided: nodes where the rule's path applied but a
         more recent rule of the same privilege won *)
}

let report_of e =
  let m = Atomic.get e.matched and d = Atomic.get e.decided in
  { r_key = e.key; r_privilege = e.privilege; r_desc = e.desc;
    r_matched = m; r_decided = d; r_overridden = max 0 (m - d) }

let reports () =
  let l = locked (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) rules []) in
  List.sort (fun a b -> compare a.r_key b.r_key) (List.map report_of l)

let shadowed () = List.filter (fun r -> r.r_decided = 0) (reports ())

type class_report = {
  c_profile : string;
  c_keys : int list;
  c_members : int;
}

let class_reports () =
  let l =
    locked (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) classes [])
  in
  List.sort
    (fun a b -> compare a.c_profile b.c_profile)
    (List.map
       (fun c ->
         { c_profile = c.profile; c_keys = c.keys;
           c_members = Atomic.get c.members })
       l)

let clear () =
  locked (fun () ->
      Hashtbl.reset rules;
      Hashtbl.reset classes)

let report_to_json r =
  Printf.sprintf
    "{\"priority\":%d,\"privilege\":%s,\"rule\":%s,\"matched\":%d,\
     \"decided\":%d,\"overridden\":%d,\"shadowed\":%b}"
    r.r_key
    (Metrics.json_string r.r_privilege)
    (Metrics.json_string r.r_desc)
    r.r_matched r.r_decided r.r_overridden (r.r_decided = 0)

let class_to_json c =
  Printf.sprintf "{\"profile\":%s,\"rules\":[%s],\"members\":%d}"
    (Metrics.json_string c.c_profile)
    (String.concat "," (List.map string_of_int c.c_keys))
    c.c_members

let to_json () =
  Printf.sprintf "{\"rules\":[%s],\"classes\":[%s]}"
    (String.concat "," (List.map report_to_json (reports ())))
    (String.concat "," (List.map class_to_json (class_reports ())))

let report_to_string r =
  Printf.sprintf "%-9s prio %-4d matched %-8d decided %-8d overridden %-8d %s%s"
    r.r_privilege r.r_key r.r_matched r.r_decided r.r_overridden r.r_desc
    (if r.r_decided = 0 then "  [SHADOWED: zero decisions]" else "")

let to_string () =
  let b = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string b (report_to_string r);
      Buffer.add_char b '\n')
    (reports ());
  (match class_reports () with
   | [] -> ()
   | cs ->
     Buffer.add_string b "-- permission classes --\n";
     List.iter
       (fun c ->
         Buffer.add_string b
           (Printf.sprintf "%-32s %d member(s), rules [%s]\n"
              (if c.c_profile = "" then "(empty profile)" else c.c_profile)
              c.c_members
              (String.concat "; " (List.map string_of_int c.c_keys))))
       cs);
  Buffer.contents b
