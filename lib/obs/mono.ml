external now : unit -> float = "xmlsecu_obs_mono_now"
