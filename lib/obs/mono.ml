external now : unit -> (float[@unboxed])
  = "xmlsecu_obs_mono_now" "xmlsecu_obs_mono_now_unboxed"
[@@noalloc]
