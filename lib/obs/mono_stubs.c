/* Monotonic clock for latency measurement.  OCaml 5.1's Unix module has
   no clock_gettime binding and the mtime package is not a dependency, so
   this one-function stub reads CLOCK_MONOTONIC directly.  Returns seconds
   as a double; the epoch is arbitrary (boot-relative on Linux), only
   differences are meaningful. */

#include <time.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>

/* The unboxed variant is the hot path: with [@@unboxed] [@@noalloc] on
   the OCaml side, reading the clock is a plain (vDSO) call with no
   float boxing — it runs twice per traced span.  clock_gettime never
   raises, allocates or calls back into the runtime. */
CAMLprim double xmlsecu_obs_mono_now_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

CAMLprim value xmlsecu_obs_mono_now(value unit)
{
  return caml_copy_double(xmlsecu_obs_mono_now_unboxed(unit));
}
