/* Monotonic clock for latency measurement.  OCaml 5.1's Unix module has
   no clock_gettime binding and the mtime package is not a dependency, so
   this one-function stub reads CLOCK_MONOTONIC directly.  Returns seconds
   as a double; the epoch is arbitrary (boot-relative on Linux), only
   differences are meaningful. */

#include <time.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value xmlsecu_obs_mono_now(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
