(* Query-plan explainability and the slow-query log.  Each served query
   records a structured plan — which read path answered it (compiled
   rewrite vs lazy-view fallback), how many determinised automaton
   product states the traversal needed, how many nodes it visited and
   how many it pruned by ordpath contiguity, the deciding-rule set for
   the answers, the permission class, and the latency measured on the
   monotonic clock — into a bounded mutex-guarded ring.  Plans slower
   than the configurable threshold are additionally retained in a
   dedicated slow ring, so a burst of fast queries cannot evict the
   evidence of a slow one. *)

type plan = {
  seq : int;
  time : float;  (* wall clock, display only *)
  mono : float;  (* monotonic stamp: ordering and intervals *)
  user : string;
  query : string;
  compiled : bool;  (* true = rewrite product path, false = fallback *)
  states : int;  (* distinct determinised automaton state sets *)
  visited : int;  (* nodes the traversal consumed *)
  pruned : int;  (* nodes skipped wholesale by ordpath contiguity *)
  answers : int;
  rules : string list;  (* deciding rules over the answer set *)
  cls : string;  (* Perm.profile class id *)
  seconds : float;  (* monotonic latency *)
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Plans at or above the threshold also land in the slow ring.  The
   default is deliberately low — explainability beats losing evidence —
   and [xmlsecu slow] / bench harnesses override it. *)
let default_threshold = 0.010
let threshold_cell = Atomic.make default_threshold
let set_threshold s = Atomic.set threshold_cell s
let threshold () = Atomic.get threshold_cell

let default_capacity = 256

let lock = Mutex.create ()
let recent_ring : plan Queue.t = Queue.create ()
let slow_ring : plan Queue.t = Queue.create ()
let capacity = ref default_capacity
let seen_count = ref 0

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Planlog.set_capacity";
  Mutex.lock lock;
  capacity := n;
  let trim q =
    while Queue.length q > n do
      ignore (Queue.pop q)
    done
  in
  trim recent_ring;
  trim slow_ring;
  Mutex.unlock lock

let record ~user ~query ~compiled ~states ~visited ~pruned ~answers ~rules
    ~cls ~seconds =
  let time = Unix.gettimeofday () and mono = Mono.now () in
  Mutex.lock lock;
  let p =
    { seq = !seen_count; time; mono; user; query; compiled; states; visited;
      pruned; answers; rules; cls; seconds }
  in
  incr seen_count;
  let push q =
    Queue.push p q;
    if Queue.length q > !capacity then ignore (Queue.pop q)
  in
  push recent_ring;
  if seconds >= Atomic.get threshold_cell then push slow_ring;
  Mutex.unlock lock;
  p

let snapshot q =
  Mutex.lock lock;
  let l = List.of_seq (Queue.to_seq q) in
  Mutex.unlock lock;
  l

let recent () = snapshot recent_ring
let slow () = snapshot slow_ring

let seen () =
  Mutex.lock lock;
  let n = !seen_count in
  Mutex.unlock lock;
  n

let clear () =
  Mutex.lock lock;
  Queue.clear recent_ring;
  Queue.clear slow_ring;
  seen_count := 0;
  Mutex.unlock lock

let plan_to_json p =
  Printf.sprintf
    "{\"seq\":%d,\"time\":%.6f,\"user\":%s,\"query\":%s,\"path\":%s,\
     \"states\":%d,\"visited\":%d,\"pruned\":%d,\"answers\":%d,\
     \"rules\":[%s],\"class\":%s,\"seconds\":%.9f}"
    p.seq p.time
    (Metrics.json_string p.user)
    (Metrics.json_string p.query)
    (Metrics.json_string (if p.compiled then "rewrite" else "fallback"))
    p.states p.visited p.pruned p.answers
    (String.concat "," (List.map Metrics.json_string p.rules))
    (Metrics.json_string p.cls)
    p.seconds

let plan_to_string p =
  Printf.sprintf
    "#%-4d %-10s %-40s %s path, %d state set(s), %d visited / %d pruned, \
     %d answer(s), %.3f ms%s\n%s"
    p.seq p.user p.query
    (if p.compiled then "rewrite" else "fallback")
    p.states p.visited p.pruned p.answers (1000. *. p.seconds)
    (if p.cls = "" then "" else Printf.sprintf " [class %s]" p.cls)
    (match p.rules with
     | [] -> "      deciding rules: (none)\n"
     | rules ->
       "      deciding rules: " ^ String.concat "; " rules ^ "\n")

let to_json plans =
  "[" ^ String.concat "," (List.map plan_to_json plans) ^ "]"

let recent_json () = to_json (recent ())
let slow_json () = to_json (slow ())
