(* Streaming security-anomaly detection over the audit/event stream.

   Four detectors share one windowed state machine:

   - denial_spike: a user's denials in the closed window exceed both an
     absolute floor and a multiple of their own trailing-window baseline;
   - subtree_probe: one user collects many *distinct* denied ordpath
     targets under one ordpath prefix inside a window — the shape of a
     principal walking a hidden subtree (the covert-channel concern the
     paper raises for denied operations);
   - dormant_rule: a rule decides for the first time in N windows — a
     policy path nobody exercised suddenly carrying decisions;
   - abort_storm: transaction aborts in a window cross a floor.

   Determinism contract: windows are logical ([floor (mono / window)],
   the Timeseries discipline) and state only advances when an event
   arrives or [finalize] runs — never from wall clock, never from a
   reader.  Feeding the same event sequence therefore always produces
   the same alert timeline, which is what makes the live sink and the
   offline segment replay (`xmlsecu analyze`) one code path, and what
   the property suite in test/test_analytics.ml checks. *)

type config = {
  window : float;  (* seconds per logical window *)
  baseline : int;  (* trailing windows forming the denial baseline *)
  spike_factor : float;  (* fire when denials > factor * baseline avg *)
  spike_min : int;  (* ... and >= this absolute floor *)
  probe_targets : int;  (* distinct denied targets per prefix per window *)
  probe_depth : int;  (* ordpath components forming the subtree prefix *)
  dormant_windows : int;  (* quiet windows before a rule counts dormant *)
  abort_min : int;  (* aborts per window *)
  resolve_after : int;  (* quiet windows before a firing alert resolves *)
}

let default_config =
  {
    window = 10.;
    baseline = 6;
    spike_factor = 4.;
    spike_min = 8;
    probe_targets = 8;
    probe_depth = 2;
    dormant_windows = 6;
    abort_min = 8;
    resolve_after = 3;
  }

type state = Firing | Resolved

let state_to_string = function Firing -> "firing" | Resolved -> "resolved"

type transition = {
  t_window : int;
  t_detector : string;
  t_subject : string;
  t_state : state;
  t_detail : string;
}

type alert_view = {
  detector : string;
  subject : string;
  a_state : state;
  first_window : int;  (* start of the current episode *)
  last_window : int;  (* last window the condition held *)
  episodes : int;
  detail : string;
}

type alert = {
  al_detector : string;
  al_subject : string;
  mutable al_state : state;
  mutable al_first : int;
  mutable al_last : int;
  mutable al_episodes : int;
  mutable al_detail : string;
}

type user_tot = { mutable ut_allowed : int; mutable ut_denied : int }

type prefix_tot = {
  mutable pt_denied : int;
  pt_targets : (string, unit) Hashtbl.t;
  pt_users : (string, unit) Hashtbl.t;
}

let no_window = min_int
let max_transitions = 8192

type t = {
  lock : Mutex.t;
  config : config;
  (* open-window accumulators, cleared at each close *)
  mutable open_w : int;  (* [no_window] before the first event *)
  denials_w : (string, int ref) Hashtbl.t;  (* user -> denials *)
  probes_w : (string * string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* (user, prefix) -> distinct denied targets *)
  rules_w : (string, unit) Hashtbl.t;  (* rules that decided *)
  mutable aborts_w : int;
  (* cross-window state *)
  denial_hist : (string, int list ref) Hashtbl.t;
      (* user -> denial counts of trailing closed windows, newest first *)
  rule_last : (string, int) Hashtbl.t;  (* rule -> last deciding window *)
  alerts_tbl : (string * string, alert) Hashtbl.t;
  mutable trans : transition list;  (* newest first, bounded *)
  mutable trans_n : int;
  mutable trans_dropped : int;
  (* cumulative report (never windowed, never cleared by closes) *)
  users_tot : (string, user_tot) Hashtbl.t;
  prefixes_tot : (string, prefix_tot) Hashtbl.t;
}

let create ?(config = default_config) () =
  if config.window <= 0. then invalid_arg "Obs.Anomaly.create: window <= 0";
  if config.baseline < 1 || config.resolve_after < 1 then
    invalid_arg "Obs.Anomaly.create: baseline/resolve_after < 1";
  {
    lock = Mutex.create ();
    config;
    open_w = no_window;
    denials_w = Hashtbl.create 16;
    probes_w = Hashtbl.create 16;
    rules_w = Hashtbl.create 16;
    aborts_w = 0;
    denial_hist = Hashtbl.create 16;
    rule_last = Hashtbl.create 16;
    alerts_tbl = Hashtbl.create 8;
    trans = [];
    trans_n = 0;
    trans_dropped = 0;
    users_tot = Hashtbl.create 16;
    prefixes_tot = Hashtbl.create 16;
  }

let default = create ()
let config t = t.config

let g_firing =
  Metrics.gauge Metrics.default "anomaly_alerts_firing"
    ~help:"Security alerts currently in the firing state"

let f_alerts =
  Metrics.family Metrics.default "anomaly_alerts_total"
    ~labels:[ "detector" ]
    ~help:"Security alert firing transitions by detector"

(* A target counts for subtree probing only when it *is* an ordpath
   (dotted integers, as Ordpath.to_string renders decision targets) deep
   enough to sit strictly under a [depth]-component prefix.  Query
   strings and XPath summaries fall out here. *)
let ordpath_prefix ~depth target =
  if depth < 1 || target = "" || target = "/" then None
  else
    let comps = String.split_on_char '.' target in
    let numeric c =
      c <> ""
      && String.for_all (fun ch -> (ch >= '0' && ch <= '9') || ch = '-') c
    in
    if List.length comps <= depth || not (List.for_all numeric comps) then
      None
    else
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      Some (String.concat "." (take depth comps))

let window_of t mono = int_of_float (Float.floor (mono /. t.config.window))

(* --- alert engine (all called with the lock held) ---------------------- *)

let push_transition t tr =
  if t.trans_n >= max_transitions then begin
    (* drop the oldest; the bound only exists so a runaway stream cannot
       grow the timeline without limit *)
    t.trans <- (match List.rev t.trans with _ :: r -> List.rev r | [] -> []);
    t.trans_n <- t.trans_n - 1;
    t.trans_dropped <- t.trans_dropped + 1
  end;
  t.trans <- tr :: t.trans;
  t.trans_n <- t.trans_n + 1;
  if tr.t_state = Firing then
    Metrics.inc (Metrics.labels f_alerts [ tr.t_detector ])

let firing_count t =
  Hashtbl.fold
    (fun _ a n -> if a.al_state = Firing then n + 1 else n)
    t.alerts_tbl 0

let any_firing t =
  Hashtbl.fold
    (fun _ a b -> b || a.al_state = Firing)
    t.alerts_tbl false

(* The detector condition held for (detector, subject) in window [w]. *)
let condition t w detector subject detail =
  match Hashtbl.find_opt t.alerts_tbl (detector, subject) with
  | Some a when a.al_state = Firing ->
    a.al_last <- w;
    a.al_detail <- detail
  | Some a ->
    a.al_state <- Firing;
    a.al_first <- w;
    a.al_last <- w;
    a.al_episodes <- a.al_episodes + 1;
    a.al_detail <- detail;
    push_transition t
      { t_window = w; t_detector = detector; t_subject = subject;
        t_state = Firing; t_detail = detail }
  | None ->
    Hashtbl.replace t.alerts_tbl (detector, subject)
      {
        al_detector = detector;
        al_subject = subject;
        al_state = Firing;
        al_first = w;
        al_last = w;
        al_episodes = 1;
        al_detail = detail;
      };
    push_transition t
      { t_window = w; t_detector = detector; t_subject = subject;
        t_state = Firing; t_detail = detail }

let all_zero l = List.for_all (fun x -> x = 0) l

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

(* Ages every user's denial baseline by [k] empty windows.  Equivalent,
   by construction, to closing [k] event-free windows one at a time —
   the fast path [close_through] takes across long gaps must land on
   the same state as the slow path. *)
let age_baselines t k =
  if k >= t.config.baseline then Hashtbl.reset t.denial_hist
  else begin
    let zeros = List.init k (fun _ -> 0) in
    let stale = ref [] in
    Hashtbl.iter
      (fun user r ->
        r := take t.config.baseline (zeros @ !r);
        if all_zero !r then stale := user :: !stale)
      t.denial_hist;
    List.iter (Hashtbl.remove t.denial_hist) !stale
  end

let accums_empty t =
  Hashtbl.length t.denials_w = 0
  && Hashtbl.length t.probes_w = 0
  && Hashtbl.length t.rules_w = 0
  && t.aborts_w = 0

(* Close window [w]: run every detector over its accumulators, update
   alert state, age the baselines, clear the accumulators.  Conditions
   and resolutions are sorted before they touch the timeline so the
   transition order is a function of the event sequence alone — hash
   randomisation (OCAMLRUNPARAM=R) must not be able to reorder the
   timeline the live/offline equivalence compares. *)
let close_one t w =
  let cfg = t.config in
  let conds = ref [] in
  let cond detector subject detail =
    conds := (detector, subject, detail) :: !conds
  in
  (* denial-rate spike vs the user's own trailing baseline *)
  Hashtbl.iter
    (fun user cnt ->
      let hist =
        match Hashtbl.find_opt t.denial_hist user with
        | Some r -> !r
        | None -> []
      in
      let avg =
        match hist with
        | [] -> 0.
        | l ->
          Float.of_int (List.fold_left ( + ) 0 l)
          /. Float.of_int (List.length l)
      in
      if !cnt >= cfg.spike_min && Float.of_int !cnt > cfg.spike_factor *. avg
      then
        cond "denial_spike" user
          (Printf.sprintf "%d denials vs trailing avg %.1f" !cnt avg))
    t.denials_w;
  (* baseline update: users seen this window push their count, everyone
     else ages with a zero; all-zero histories are dropped *)
  let pushed = Hashtbl.create 16 in
  Hashtbl.iter
    (fun user cnt ->
      Hashtbl.replace pushed user ();
      match Hashtbl.find_opt t.denial_hist user with
      | Some r -> r := take cfg.baseline (!cnt :: !r)
      | None -> Hashtbl.replace t.denial_hist user (ref [ !cnt ]))
    t.denials_w;
  let stale = ref [] in
  Hashtbl.iter
    (fun user r ->
      if not (Hashtbl.mem pushed user) then begin
        r := take cfg.baseline (0 :: !r);
        if all_zero !r then stale := user :: !stale
      end)
    t.denial_hist;
  List.iter (Hashtbl.remove t.denial_hist) !stale;
  (* subtree probing: distinct denied targets under one prefix *)
  Hashtbl.iter
    (fun (user, prefix) targets ->
      let n = Hashtbl.length targets in
      if n >= cfg.probe_targets then
        cond "subtree_probe"
          (user ^ "@" ^ prefix)
          (Printf.sprintf "%d distinct denied targets under %s" n prefix))
    t.probes_w;
  (* dormant-rule activation *)
  Hashtbl.iter
    (fun rule () ->
      (match Hashtbl.find_opt t.rule_last rule with
       | Some last when w - last >= cfg.dormant_windows ->
         cond "dormant_rule" rule
           (Printf.sprintf "first decision in %d windows" (w - last))
       | _ -> ());
      Hashtbl.replace t.rule_last rule w)
    t.rules_w;
  (* abort storm *)
  if t.aborts_w >= cfg.abort_min then
    cond "abort_storm" "txn"
      (Printf.sprintf "%d aborts in one window" t.aborts_w);
  List.iter
    (fun (d, s, detail) -> condition t w d s detail)
    (List.sort compare !conds);
  (* resolution: a firing alert whose condition has been quiet for
     [resolve_after] closed windows resolves at this close *)
  let resolved = ref [] in
  Hashtbl.iter
    (fun _ a ->
      if a.al_state = Firing && w - a.al_last >= cfg.resolve_after then
        resolved := a :: !resolved)
    t.alerts_tbl;
  List.iter
    (fun a ->
      a.al_state <- Resolved;
      push_transition t
        { t_window = w; t_detector = a.al_detector; t_subject = a.al_subject;
          t_state = Resolved; t_detail = "" })
    (List.sort
       (fun a b ->
         match String.compare a.al_detector b.al_detector with
         | 0 -> String.compare a.al_subject b.al_subject
         | c -> c)
       !resolved);
  Hashtbl.reset t.denials_w;
  Hashtbl.reset t.probes_w;
  Hashtbl.reset t.rules_w;
  t.aborts_w <- 0;
  if t == default then
    Metrics.set_gauge g_firing (Float.of_int (firing_count t))

(* Close every window below [target].  Once the accumulators are empty
   and nothing is firing, the remaining empty windows cannot change any
   detector or alert — skip them in O(users), which is what makes a
   week-long gap in an audit segment cost nothing to replay. *)
let close_through t target =
  let continue = ref true in
  while !continue && t.open_w < target do
    if accums_empty t && not (any_firing t) then begin
      age_baselines t (target - t.open_w);
      t.open_w <- target
    end
    else begin
      close_one t t.open_w;
      t.open_w <- t.open_w + 1
    end;
    if t.open_w >= target then continue := false
  done

(* --- ingestion --------------------------------------------------------- *)

let advance_locked t w =
  if t.open_w = no_window then t.open_w <- w
  else if w > t.open_w then close_through t w
(* w < open_w: a late event (sink racing the window edge) folds into the
   open window — deterministic, since the fold depends only on event
   order *)

let observe_audit t (e : Audit.event) =
  Mutex.lock t.lock;
  advance_locked t (window_of t e.Audit.mono);
  (* cumulative per-user report *)
  let ut =
    match Hashtbl.find_opt t.users_tot e.Audit.user with
    | Some ut -> ut
    | None ->
      let ut = { ut_allowed = 0; ut_denied = 0 } in
      Hashtbl.replace t.users_tot e.Audit.user ut;
      ut
  in
  (match e.Audit.decision with
   | Audit.Allowed -> ut.ut_allowed <- ut.ut_allowed + 1
   | Audit.Denied ->
     ut.ut_denied <- ut.ut_denied + 1;
     (match Hashtbl.find_opt t.denials_w e.Audit.user with
      | Some r -> incr r
      | None -> Hashtbl.replace t.denials_w e.Audit.user (ref 1));
     (match ordpath_prefix ~depth:t.config.probe_depth e.Audit.target with
      | None -> ()
      | Some prefix ->
        let targets =
          match Hashtbl.find_opt t.probes_w (e.Audit.user, prefix) with
          | Some tbl -> tbl
          | None ->
            let tbl = Hashtbl.create 16 in
            Hashtbl.replace t.probes_w (e.Audit.user, prefix) tbl;
            tbl
        in
        Hashtbl.replace targets e.Audit.target ();
        let pt =
          match Hashtbl.find_opt t.prefixes_tot prefix with
          | Some pt -> pt
          | None ->
            let pt =
              {
                pt_denied = 0;
                pt_targets = Hashtbl.create 16;
                pt_users = Hashtbl.create 4;
              }
            in
            Hashtbl.replace t.prefixes_tot prefix pt;
            pt
        in
        pt.pt_denied <- pt.pt_denied + 1;
        Hashtbl.replace pt.pt_targets e.Audit.target ();
        Hashtbl.replace pt.pt_users e.Audit.user ()));
  if e.Audit.rule <> "" then Hashtbl.replace t.rules_w e.Audit.rule ();
  Mutex.unlock t.lock

let observe_event t (ev : Events.event) =
  match ev.Events.kind with
  | Events.Abort _ ->
    Mutex.lock t.lock;
    advance_locked t (window_of t ev.Events.mono);
    t.aborts_w <- t.aborts_w + 1;
    Mutex.unlock t.lock
  | _ -> ()

let finalize t =
  Mutex.lock t.lock;
  if t.open_w <> no_window then
    close_through t (t.open_w + t.config.resolve_after + 1);
  Mutex.unlock t.lock

let replay ?config events =
  let t = create ?config () in
  List.iter (observe_audit t) events;
  t

(* --- live wiring -------------------------------------------------------- *)

let tap_name = "anomaly"

let install ?(t = default) () =
  Audit.set_tap Audit.default ~name:tap_name
    (Some (fun e -> observe_audit t e));
  Events.set_tap ~name:tap_name (Some (fun e -> observe_event t e))

let uninstall () =
  Audit.set_tap Audit.default ~name:tap_name None;
  Events.set_tap ~name:tap_name None

(* --- reading ------------------------------------------------------------ *)

let view_of_alert a =
  {
    detector = a.al_detector;
    subject = a.al_subject;
    a_state = a.al_state;
    first_window = a.al_first;
    last_window = a.al_last;
    episodes = a.al_episodes;
    detail = a.al_detail;
  }

let alerts t =
  Mutex.lock t.lock;
  let l = Hashtbl.fold (fun _ a acc -> view_of_alert a :: acc) t.alerts_tbl [] in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      match String.compare a.detector b.detector with
      | 0 -> String.compare a.subject b.subject
      | c -> c)
    l

let transitions t =
  Mutex.lock t.lock;
  let l = List.rev t.trans in
  Mutex.unlock t.lock;
  l

let open_window t =
  Mutex.lock t.lock;
  let w = t.open_w in
  Mutex.unlock t.lock;
  if w = no_window then None else Some w

type user_row = { ur_user : string; ur_allowed : int; ur_denied : int }

type subtree_row = {
  sr_prefix : string;
  sr_denied : int;
  sr_targets : int;
  sr_users : string list;
}

type report = { users : user_row list; subtrees : subtree_row list }

let report t =
  Mutex.lock t.lock;
  let users =
    Hashtbl.fold
      (fun user ut acc ->
        { ur_user = user; ur_allowed = ut.ut_allowed; ur_denied = ut.ut_denied }
        :: acc)
      t.users_tot []
  in
  let subtrees =
    Hashtbl.fold
      (fun prefix pt acc ->
        {
          sr_prefix = prefix;
          sr_denied = pt.pt_denied;
          sr_targets = Hashtbl.length pt.pt_targets;
          sr_users =
            List.sort String.compare
              (Hashtbl.fold (fun u () l -> u :: l) pt.pt_users []);
        }
        :: acc)
      t.prefixes_tot []
  in
  Mutex.unlock t.lock;
  {
    users =
      List.sort
        (fun a b ->
          match compare b.ur_denied a.ur_denied with
          | 0 -> String.compare a.ur_user b.ur_user
          | c -> c)
        users;
    subtrees =
      List.sort
        (fun a b ->
          match compare b.sr_denied a.sr_denied with
          | 0 -> String.compare a.sr_prefix b.sr_prefix
          | c -> c)
        subtrees;
  }

(* --- rendering ----------------------------------------------------------- *)

let alert_json a =
  Printf.sprintf
    "{\"detector\":%s,\"subject\":%s,\"state\":%s,\"first_window\":%d,\
     \"last_window\":%d,\"episodes\":%d,\"detail\":%s}"
    (Metrics.json_string a.detector)
    (Metrics.json_string a.subject)
    (Metrics.json_string (state_to_string a.a_state))
    a.first_window a.last_window a.episodes
    (Metrics.json_string a.detail)

let transition_json tr =
  Printf.sprintf
    "{\"window\":%d,\"detector\":%s,\"subject\":%s,\"state\":%s,\"detail\":%s}"
    tr.t_window
    (Metrics.json_string tr.t_detector)
    (Metrics.json_string tr.t_subject)
    (Metrics.json_string (state_to_string tr.t_state))
    (Metrics.json_string tr.t_detail)

let config_json c =
  Printf.sprintf
    "{\"window\":%g,\"baseline\":%d,\"spike_factor\":%g,\"spike_min\":%d,\
     \"probe_targets\":%d,\"probe_depth\":%d,\"dormant_windows\":%d,\
     \"abort_min\":%d,\"resolve_after\":%d}"
    c.window c.baseline c.spike_factor c.spike_min c.probe_targets
    c.probe_depth c.dormant_windows c.abort_min c.resolve_after

let report_json r =
  let user_row u =
    Printf.sprintf "{\"user\":%s,\"allowed\":%d,\"denied\":%d}"
      (Metrics.json_string u.ur_user)
      u.ur_allowed u.ur_denied
  in
  let subtree_row s =
    Printf.sprintf
      "{\"prefix\":%s,\"denied\":%d,\"distinct_targets\":%d,\"users\":[%s]}"
      (Metrics.json_string s.sr_prefix)
      s.sr_denied s.sr_targets
      (String.concat "," (List.map Metrics.json_string s.sr_users))
  in
  Printf.sprintf "{\"users\":[%s],\"subtrees\":[%s]}"
    (String.concat "," (List.map user_row r.users))
    (String.concat "," (List.map subtree_row r.subtrees))

let to_json t =
  let open_w =
    match open_window t with None -> "null" | Some w -> string_of_int w
  in
  Printf.sprintf
    "{\"config\":%s,\"open_window\":%s,\"alerts\":[%s],\"transitions\":[%s],\
     \"report\":%s}"
    (config_json t.config) open_w
    (String.concat "," (List.map alert_json (alerts t)))
    (String.concat "," (List.map transition_json (transitions t)))
    (report_json (report t))

let summary t =
  let b = Buffer.create 1024 in
  let al = alerts t in
  Buffer.add_string b "-- alerts --\n";
  if al = [] then Buffer.add_string b "(none)\n"
  else
    List.iter
      (fun a ->
        Buffer.add_string b
          (Printf.sprintf "%-9s %-14s %-30s windows %d..%d x%d %s\n"
             (state_to_string a.a_state)
             a.detector a.subject a.first_window a.last_window a.episodes
             a.detail))
      al;
  Buffer.add_string b "-- timeline --\n";
  List.iter
    (fun tr ->
      Buffer.add_string b
        (Printf.sprintf "window %-10d %-9s %-14s %s %s\n" tr.t_window
           (state_to_string tr.t_state)
           tr.t_detector tr.t_subject tr.t_detail))
    (transitions t);
  let r = report t in
  Buffer.add_string b "-- users --\n";
  List.iter
    (fun u ->
      Buffer.add_string b
        (Printf.sprintf "%-12s allowed %-6d denied %d\n" u.ur_user u.ur_allowed
           u.ur_denied))
    r.users;
  Buffer.add_string b "-- denied subtrees --\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%-12s denied %-6d distinct targets %-6d users %s\n"
           s.sr_prefix s.sr_denied s.sr_targets
           (String.concat "," s.sr_users)))
    r.subtrees;
  Buffer.contents b
