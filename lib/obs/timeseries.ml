(* Fixed-window time-series ring: named per-window counters plus latency
   quantile sketches, rotated in O(1) as the (injected) clock crosses a
   window boundary.  Windows are *logical*: a window's identity is
   [floor (now / window)], so feeding the same monotonic stamps always
   lands events in the same windows — the determinism the anomaly
   detectors and their property tests build on.  Wall-clock never drives
   rotation; reading the series ([windows], [to_json]) observes, it
   never advances. *)

(* Same log2 ladder as the Metrics histograms: powers of two from 1µs to
   ~8s.  A sketch is a fixed histogram, so merging two windows is an
   element-wise add and a quantile is a cumulative walk — no stored
   samples, O(1) memory per (window, series). *)
let bucket_bounds = Array.init 24 (fun i -> 1e-6 *. Float.of_int (1 lsl i))
let n_buckets = Array.length bucket_bounds + 1 (* + overflow *)

type sketch = {
  mutable s_count : int;
  mutable s_sum : float;
  s_buckets : int array; (* per-bucket (not cumulative), overflow last *)
}

type sketch_view = { count : int; sum : float; buckets : int array }

type window_view = {
  index : int; (* logical index: window covers [index*w, (index+1)*w) *)
  counters : (string * int) list; (* sorted by name *)
  sketches : (string * sketch_view) list; (* sorted by name *)
}

type slot = {
  mutable w : int; (* logical window index; [empty_w] = unused slot *)
  s_counters : (string, int ref) Hashtbl.t;
  s_sketches : (string, sketch) Hashtbl.t;
}

let empty_w = min_int

type t = {
  lock : Mutex.t;
      (* bumps come from every domain that records an audit event or
         emits a transaction event *)
  t_window : float;
  slots : slot array;
  mutable head : int; (* slot holding the newest window *)
  mutable t_rotations : int;
  mutable t_late_drops : int;
      (* events older than the ring's reach; counted, never folded in *)
}

let default_window = 10.
let default_slots = 60

let create ?(window = default_window) ?(slots = default_slots) () =
  if window <= 0. then invalid_arg "Obs.Timeseries.create: window <= 0";
  if slots < 2 then invalid_arg "Obs.Timeseries.create: slots < 2";
  {
    lock = Mutex.create ();
    t_window = window;
    slots =
      Array.init slots (fun _ ->
          {
            w = empty_w;
            s_counters = Hashtbl.create 8;
            s_sketches = Hashtbl.create 4;
          });
    head = 0;
    t_rotations = 0;
    t_late_drops = 0;
  }

let default = create ()

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let window t = t.t_window
let index_of t now = int_of_float (Float.floor (now /. t.t_window))

let reset_slot slot w =
  slot.w <- w;
  Hashtbl.reset slot.s_counters;
  Hashtbl.reset slot.s_sketches

(* The slot for logical window [idx], rotating the ring forward as
   needed.  Skipped windows (a gap with no events) are materialised as
   zero windows so the series shows the gap; a gap wider than the ring
   clears it wholesale — still O(slots), never O(gap).  Events that fall
   behind the ring's reach are dropped (counted in [late_drops]); events
   within reach land in their own (possibly past) window. *)
let slot_for t idx =
  let n = Array.length t.slots in
  let cur = t.slots.(t.head).w in
  if cur = empty_w then begin
    reset_slot t.slots.(t.head) idx;
    Some t.slots.(t.head)
  end
  else if idx = cur then Some t.slots.(t.head)
  else if idx > cur then begin
    let steps = idx - cur in
    if steps >= n then begin
      Array.iter (fun s -> reset_slot s empty_w) t.slots;
      t.head <- 0;
      reset_slot t.slots.(0) idx
    end
    else
      for k = 1 to steps do
        t.head <- (t.head + 1) mod n;
        reset_slot t.slots.(t.head) (cur + k)
      done;
    t.t_rotations <- t.t_rotations + min steps n;
    Some t.slots.(t.head)
  end
  else begin
    let back = cur - idx in
    if back < n then begin
      let pos = (((t.head - back) mod n) + n) mod n in
      let s = t.slots.(pos) in
      if s.w = idx then Some s
      else if s.w = empty_w then begin
        (* hole left by a wholesale clear: position is still correct *)
        reset_slot s idx;
        Some s
      end
      else begin
        t.t_late_drops <- t.t_late_drops + 1;
        None
      end
    end
    else begin
      t.t_late_drops <- t.t_late_drops + 1;
      None
    end
  end

let bump t ?now ?(n = 1) series =
  let now = match now with Some x -> x | None -> Mono.now () in
  Mutex.lock t.lock;
  (match slot_for t (index_of t now) with
   | None -> ()
   | Some slot -> (
     match Hashtbl.find_opt slot.s_counters series with
     | Some r -> r := !r + n
     | None -> Hashtbl.replace slot.s_counters series (ref n)));
  Mutex.unlock t.lock

let bucket_of v =
  let rec go i =
    if i >= Array.length bucket_bounds then i
    else if v <= bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let observe t ?now series v =
  let now = match now with Some x -> x | None -> Mono.now () in
  Mutex.lock t.lock;
  (match slot_for t (index_of t now) with
   | None -> ()
   | Some slot ->
     let sk =
       match Hashtbl.find_opt slot.s_sketches series with
       | Some sk -> sk
       | None ->
         let sk =
           { s_count = 0; s_sum = 0.; s_buckets = Array.make n_buckets 0 }
         in
         Hashtbl.replace slot.s_sketches series sk;
         sk
     in
     sk.s_count <- sk.s_count + 1;
     sk.s_sum <- sk.s_sum +. v;
     let b = bucket_of v in
     sk.s_buckets.(b) <- sk.s_buckets.(b) + 1);
  Mutex.unlock t.lock

let rotations t = t.t_rotations
let late_drops t = t.t_late_drops

let clear t =
  Mutex.lock t.lock;
  Array.iter (fun s -> reset_slot s empty_w) t.slots;
  t.head <- 0;
  t.t_rotations <- 0;
  t.t_late_drops <- 0;
  Mutex.unlock t.lock

(* --- views ------------------------------------------------------------ *)

let view_of_sketch sk =
  { count = sk.s_count; sum = sk.s_sum; buckets = Array.copy sk.s_buckets }

let sorted_bindings tbl f =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])

let windows t =
  Mutex.lock t.lock;
  let n = Array.length t.slots in
  let acc = ref [] in
  (* newest first from head going back, then reverse: oldest first *)
  for k = 0 to n - 1 do
    let s = t.slots.((((t.head - k) mod n) + n) mod n) in
    if s.w <> empty_w then
      acc :=
        {
          index = s.w;
          counters = sorted_bindings s.s_counters (fun r -> !r);
          sketches = sorted_bindings s.s_sketches view_of_sketch;
        }
        :: !acc
  done;
  Mutex.unlock t.lock;
  !acc

let current t =
  Mutex.lock t.lock;
  let w = t.slots.(t.head).w in
  Mutex.unlock t.lock;
  if w = empty_w then None else Some w

let empty_sketch_view = { count = 0; sum = 0.; buckets = Array.make n_buckets 0 }

let merge views =
  match views with
  | [] -> empty_sketch_view
  | _ ->
    let buckets = Array.make n_buckets 0 in
    let count = ref 0 and sum = ref 0. in
    List.iter
      (fun v ->
        count := !count + v.count;
        sum := !sum +. v.sum;
        Array.iteri (fun i x -> buckets.(i) <- buckets.(i) + x) v.buckets)
      views;
    { count = !count; sum = !sum; buckets }

(* Upper bound of the bucket holding the q-th sample; the overflow
   bucket reports twice the last bound (there is no finite upper edge to
   quote).  0 on an empty sketch. *)
let quantile v q =
  if v.count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = Stdlib.max 1 (int_of_float (Float.ceil (q *. Float.of_int v.count))) in
    let cum = ref 0 and i = ref 0 and res = ref Float.nan in
    while Float.is_nan !res && !i < n_buckets do
      cum := !cum + v.buckets.(!i);
      if !cum >= target then
        res :=
          (if !i < Array.length bucket_bounds then bucket_bounds.(!i)
           else 2. *. bucket_bounds.(Array.length bucket_bounds - 1));
      incr i
    done;
    if Float.is_nan !res then 0. else !res
  end

let sketch_json name v =
  Printf.sprintf
    "%s:{\"count\":%d,\"sum\":%.9f,\"p50\":%.9f,\"p90\":%.9f,\"p99\":%.9f}"
    (Metrics.json_string name) v.count v.sum (quantile v 0.5) (quantile v 0.9)
    (quantile v 0.99)

let window_json t wv =
  let counters =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%s:%d" (Metrics.json_string k) v)
         wv.counters)
  in
  let sketches =
    String.concat "," (List.map (fun (k, v) -> sketch_json k v) wv.sketches)
  in
  Printf.sprintf
    "{\"index\":%d,\"start\":%.3f,\"counters\":{%s},\"sketches\":{%s}}"
    wv.index
    (Float.of_int wv.index *. t.t_window)
    counters sketches

let to_json t =
  let ws = windows t in
  Printf.sprintf
    "{\"window_seconds\":%g,\"slots\":%d,\"rotations\":%d,\"late_drops\":%d,\
     \"windows\":[%s]}"
    t.t_window (Array.length t.slots) t.t_rotations t.t_late_drops
    (String.concat "," (List.map (window_json t) ws))
