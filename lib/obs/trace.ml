type span = {
  name : string;
  start : float;
  mutable elapsed : float;
  mutable children : span list;
  mutable meta : (string * string) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Innermost-first stack of open spans, one stack per domain: a span
   opened inside a Core.Pool worker nests under whatever that worker has
   open (usually nothing, so it finishes as its own root), never under a
   span of another domain. *)
let stack_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let max_roots = 256

(* Finished roots live in a fixed circular buffer shared across
   domains; the mutex serialises pushes.  A saturated buffer must stay
   O(1) per close — a traced server closes one root per request, and an
   earlier list-based trim rebuilt all [max_roots] cells on every close
   once full, which E18 measured as double-digit overhead. *)
let finished_lock = Mutex.create ()
let ring : span option array = Array.make max_roots None
let head = ref 0 (* next write position *)
let count = ref 0
let dropped_count = ref 0

let dropped () = !dropped_count

let clear () =
  Mutex.lock finished_lock;
  Array.fill ring 0 max_roots None;
  head := 0;
  count := 0;
  dropped_count := 0;
  Mutex.unlock finished_lock

let close span =
  span.elapsed <- Mono.now () -. span.start;
  span.children <- List.rev span.children;
  span.meta <- List.rev span.meta;
  match !(stack ()) with
  | parent :: _ -> parent.children <- span :: parent.children
  | [] ->
    Mutex.lock finished_lock;
    (match ring.(!head) with
     | Some _ -> incr dropped_count (* overwrote the oldest root *)
     | None -> incr count);
    ring.(!head) <- Some span;
    head := (!head + 1) mod max_roots;
    Mutex.unlock finished_lock

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let span =
      { name; start = Mono.now (); elapsed = 0.; children = [];
        meta = [] }
    in
    let stack = stack () in
    stack := span :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
         | s :: rest when s == span -> stack := rest
         | other ->
           (* Defensive: unwind to below this span if inner spans leaked
              (Fun.protect makes this unreachable in practice). *)
           let rec pop = function
             | s :: rest -> if s == span then rest else pop rest
             | [] -> []
           in
           stack := pop other);
        close span)
      f
  end

let annotate key value =
  if Atomic.get enabled_flag then
    match !(stack ()) with
    | [] -> ()
    | span :: _ -> span.meta <- (key, value) :: span.meta

let roots () =
  Mutex.lock finished_lock;
  let n = !count in
  let start = (!head - n + max_roots) mod max_roots in
  let out =
    List.init n (fun i ->
        match ring.((start + i) mod max_roots) with
        | Some s -> s
        | None -> assert false)
  in
  Mutex.unlock finished_lock;
  out

let to_string span =
  let buf = Buffer.create 256 in
  let rec go indent span =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %.1fus%s\n" indent span.name
         (span.elapsed *. 1e6)
         (match span.meta with
          | [] -> ""
          | kvs ->
            " ["
            ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
            ^ "]"));
    List.iter (go (indent ^ "  ")) span.children
  in
  go "" span;
  Buffer.contents buf

let rec span_to_json span =
  Printf.sprintf
    "{\"name\":%s,\"elapsed_seconds\":%.9f,\"meta\":{%s},\"children\":[%s]}"
    (Metrics.json_string span.name) span.elapsed
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf "%s:%s" (Metrics.json_string k)
              (Metrics.json_string v))
          span.meta))
    (String.concat "," (List.map span_to_json span.children))

let roots_to_json () =
  "[" ^ String.concat "," (List.map span_to_json (roots ())) ^ "]"

(* Chrome trace-event format (chrome://tracing, Perfetto, speedscope):
   one complete event (ph "X") per span, timestamps and durations in
   microseconds.  Span starts are monotonic-clock readings, so we rebase
   them against the earliest start across all roots — viewers only care
   about relative placement.  Each root tree gets its own tid so
   concurrent requests land on separate rows. *)
let to_chrome_json () =
  let roots = roots () in
  let base =
    List.fold_left (fun acc s -> Float.min acc s.start) infinity roots
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit tid span =
    let rec go span =
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
           (Metrics.json_string span.name)
           ((span.start -. base) *. 1e6)
           (span.elapsed *. 1e6)
           tid
           (String.concat ","
              (List.map
                 (fun (k, v) ->
                   Printf.sprintf "%s:%s" (Metrics.json_string k)
                     (Metrics.json_string v))
                 span.meta)));
      List.iter go span.children
    in
    go span
  in
  List.iteri (fun i root -> emit (i + 1) root) roots;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf
