(** Monotonic time source for durations.

    Wall-clock jumps (NTP steps, manual clock changes) corrupt latency
    histograms and span durations computed from [Unix.gettimeofday];
    every duration in [Obs] is measured against this clock instead.
    Wall-clock time is kept only for event {e timestamps}. *)

val now : unit -> float
(** Seconds on [CLOCK_MONOTONIC].  The epoch is arbitrary — only
    differences between two [now] readings are meaningful. *)
