(** Security audit log: a bounded in-memory ring of access decisions plus
    an optional sink.

    Recording is off by default; every instrumented call site guards on
    {!enabled} before building an event, so a disabled log costs a single
    boolean load.  When enabled, every access decision the enforcement
    pipeline takes — privilege checks with their deciding rule, query
    evaluations, logins, denied or downgraded secure updates — lands in
    the ring (oldest events dropped past {!capacity}) and is offered to
    the sink. *)

type decision = Allowed | Denied

type event = {
  seq : int;  (** global sequence number, 0-based *)
  time : float;  (** [Unix.gettimeofday] at recording — display only *)
  mono : float;
      (** {!Mono.now} at recording — ordering and intervals; wall-clock
          steps cannot reorder or corrupt it *)
  user : string;
  action : string;
      (** what was being decided: ["login"], ["query"],
          ["xupdate:rename"], … *)
  privilege : string;  (** [""] when no single privilege applies *)
  target : string;  (** ordpath of the node decided on, or a path *)
  decision : decision;
  rule : string;
      (** the deciding rule (via [Perm.deciding_rule] / [Explain]), or
          [""] when not rule-driven *)
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 1024. @raise Invalid_argument on capacity < 1. *)

val default : t

val set_enabled : bool -> unit
(** Global switch shared by every log (call sites guard on it). *)

val enabled : unit -> bool

val set_capacity : t -> int -> unit
(** Shrinks/grows the ring, dropping oldest events as needed.
    @raise Invalid_argument on capacity < 1. *)

val capacity : t -> int

val set_sink : t -> (event -> unit) option -> unit
(** [Some f] offers every recorded event to [f] (after ring insertion);
    [None] restores the default no-op sink. *)

val set_tap : t -> name:string -> (event -> unit) option -> unit
(** Registers (or, with [None], removes) a named observer that runs
    after the sink on every recorded event.  The single sink slot
    belongs to the durable journal; taps let consumers like
    {!Anomaly} ride alongside without displacing it.  Re-registering a
    name replaces it.  Taps run outside the ring lock. *)

val record :
  t ->
  user:string ->
  action:string ->
  ?privilege:string ->
  ?target:string ->
  ?rule:string ->
  ?detail:string ->
  decision ->
  unit
(** Unconditional recording — callers are expected to guard on
    {!enabled} so disabled instrumentation stays allocation-free. *)

val events : t -> event list
(** Retained events, oldest first. *)

val length : t -> int
val seen : t -> int
(** Total events ever recorded (including dropped ones). *)

val dropped : t -> int
val clear : t -> unit

val event_to_string : event -> string
(** One line: seq, user, action, privilege, target, decision, rule,
    detail. *)

val event_to_json : event -> string
val to_json : t -> string
