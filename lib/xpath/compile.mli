(** One-pass compiled matcher for the downward fragment ({!Ast.is_downward}).

    [compile] merges any number of payload-carrying downward paths into a
    single NFA keyed by label tests; a traversal then resolves {e all}
    payloads for {e every} node in one top-down pass over the document,
    threading the automaton state from parent to child, instead of one
    {!Eval.select} per path.  Matching agrees with {!Eval.select}
    membership on the fragment (starting context = document node, the
    tree axes skipping attribute nodes and their text values).

    The compiled value is immutable — it can be shared freely across
    domains (see [Core.Pool]); the determinised state-set memo is private
    to each traversal. *)

type 'a t
(** An automaton whose accepting states carry ['a] payloads. *)

val compile : ('a * Ast.expr) list -> 'a t
(** Merge the given (payload, path) pairs — each expression a union of
    downward paths — into one automaton.
    @raise Invalid_argument if an expression is outside the downward
    fragment (guard with {!Ast.is_downward}). *)

val state_count : 'a t -> int
(** Number of NFA states (diagnostics). *)

val fold :
  'a t -> Xmldoc.Document.t -> init:'b ->
  f:('b -> Xmldoc.Node.t -> 'a list -> 'b) -> 'b
(** Single document-order pass; [f] is called exactly once for every node
    at least one payload accepts (document node included), with the
    accepted payloads.  Payload order within the list is unspecified and
    a payload may repeat when several of its paths accept the node. *)

type stats = {
  mutable visited : int;  (** nodes the automaton consumed *)
  mutable pruned : int;
      (** nodes skipped wholesale — a pruned root plus every node inside
          its contiguous ordpath range *)
  mutable states : int;  (** distinct determinised state sets interned *)
}
(** Per-traversal counters for plan explainability.  This library sits
    below the observability layer, so the counters are a plain mutable
    record; callers aggregate them (see [Obs.Planlog]). *)

val stats : unit -> stats
(** A fresh all-zero counter record. *)

val fold_view :
  ?stats:stats ->
  'a t -> Xmldoc.Document.t ->
  view:(Xmldoc.Node.t -> Xmldoc.Node.t option) ->
  init:'b -> f:('b -> Xmldoc.Node.t -> 'a list -> 'b) -> 'b
(** {!fold} over the {e virtual} document induced by [view]: a node for
    which [view] returns [None] is pruned together with its whole
    subtree; otherwise the returned node (which must keep the source
    identifier, but may carry a different label — e.g. [RESTRICTED])
    is what the automaton consumes and what [f] receives.  Equivalent
    to materialising the virtual document and running {!fold} on it —
    the product of the query automaton with the visibility predicate,
    computed in one shared pass ([Core.Rewrite]'s read path).  When
    [?stats] is given its counters are incremented in place (visited and
    pruned per node, states once at the end of the pass). *)

val fold_subtree :
  'a t -> Xmldoc.Document.t -> root:Ordpath.t -> init:'b ->
  f:('b -> Xmldoc.Node.t -> 'a list -> 'b) -> 'b
(** {!fold} restricted to the subtree rooted at [root] (inclusive): the
    automaton state is re-threaded down the ancestor chain of [root] and
    the traversal then covers only the subtree — the delta-locality path
    of [Core.Perm.update].  No-op returning [init] when [root] is not in
    the document. *)

(** {1 Flat-snapshot traversals}

    The same runs over an {!Xmldoc.Flat} columnar snapshot.  Answers
    coincide with the map-backed folds over the frozen document; the
    traversal itself is an index scan — the ancestor stack pops on one
    integer compare per node and a pruned subtree is skipped by jumping
    to its [subtree_end] instead of visiting it. *)

val fold_flat :
  'a t -> Xmldoc.Flat.t -> init:'b ->
  f:('b -> Xmldoc.Node.t -> 'a list -> 'b) -> 'b
(** {!fold} over a flat snapshot. *)

val fold_view_flat :
  ?stats:stats ->
  'a t -> Xmldoc.Flat.t ->
  view:(int -> Xmldoc.Node.t -> Xmldoc.Node.t option) ->
  init:'b -> f:('b -> Xmldoc.Node.t -> 'a list -> 'b) -> 'b
(** {!fold_view} over a flat snapshot; pruned subtrees cost O(1).  The
    [view] callback additionally receives the node's flat index, so a
    caller holding a per-index visibility oracle (e.g.
    [Core.Perm.flat_visibility]) answers in O(1) with no ordpath
    hashing. *)

val fold_subtree_flat :
  'a t -> Xmldoc.Flat.t -> root:Ordpath.t -> init:'b ->
  f:('b -> Xmldoc.Node.t -> 'a list -> 'b) -> 'b
(** {!fold_subtree} over a flat snapshot. *)

val fold_subtrees_flat :
  'a t -> Xmldoc.Flat.t -> roots:int list -> init:'b ->
  f:('b -> Xmldoc.Node.t -> 'a list -> 'b) -> 'b
(** Several disjoint subtrees in one shared run: [roots] are the
    subtrees' flat indices, ascending, no root inside another's span.
    The determinised-set memo, the interning tables and the ancestor
    stack persist across roots — re-threading rewinds only from the
    deepest frame still covering the next root — so a thousand small
    subtrees cost one traversal's setup, not a thousand.  Equivalent to
    folding {!fold_subtree_flat} over the roots in order. *)
