(** Abstract syntax of the XPath 1.0 subset used as the query language of
    §3.4 and as the [PATH] parameter of security rules (§4.3). *)

type axis =
  | Ancestor
  | Ancestor_or_self
  | Attribute
  | Child
  | Descendant
  | Descendant_or_self
  | Following
  | Following_sibling
  | Parent
  | Preceding
  | Preceding_sibling
  | Self

type node_test =
  | Name of string
  | Star
  | Text_test
  | Node_test
  | Comment_test

type cmp = Eq | Neq | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod

type expr =
  | Or of expr * expr
  | And of expr * expr
  | Cmp of cmp * expr * expr
  | Arith of arith * expr * expr
  | Neg of expr
  | Union of expr * expr
  | Literal of string
  | Number of float
  | Var of string
  | Call of string * expr list
  | Path of path
  | Filter of expr * expr list * step list
      (** primary expression, its predicates, then a relative
          continuation, e.g. [(//a)[1]/b]. *)

and path = {
  absolute : bool;
  steps : step list;
}

and step = {
  axis : axis;
  test : node_test;
  preds : expr list;
}

val axis_of_string : string -> axis option
val axis_to_string : axis -> string

val is_reverse_axis : axis -> bool
(** Reverse axes ([ancestor], [preceding], …) number their positions in
    reverse document order. *)

val is_downward : expr -> bool
(** Is the expression a predicate-free path (or union of paths) using only
    the [child], [descendant], [descendant-or-self], [self] and
    [attribute] axes?  Selection by such a path depends only on the node
    and its ancestor chain, so membership is testable per node
    ({!Eval.matches_down}) and document updates affect its selection only
    inside the updated subtrees — the locality class of [Core.Delta]. *)

val pp : Format.formatter -> expr -> unit
val to_string : expr -> string
(** Re-prints an expression in XPath concrete syntax. *)
