(** The node source an XPath evaluation runs against.  The usual source is
    a materialised {!Xmldoc.Document}; [Core.Lazy_view] provides a virtual
    one that filters and relabels the source database on the fly — the
    "apply filters reflecting the user privileges on the queries"
    implementation direction of the paper's §5. *)

type t = {
  find : Ordpath.t -> Xmldoc.Node.t option;
  children : Ordpath.t -> Xmldoc.Node.t list;
  parent : Ordpath.t -> Xmldoc.Node.t option;
  descendants : Ordpath.t -> Xmldoc.Node.t list;
  descendant_or_self : Ordpath.t -> Xmldoc.Node.t list;
  ancestors : Ordpath.t -> Xmldoc.Node.t list;
  ancestor_or_self : Ordpath.t -> Xmldoc.Node.t list;
  following_siblings : Ordpath.t -> Xmldoc.Node.t list;
  preceding_siblings : Ordpath.t -> Xmldoc.Node.t list;
  following : Ordpath.t -> Xmldoc.Node.t list;
  preceding : Ordpath.t -> Xmldoc.Node.t list;
  attributes : Ordpath.t -> Xmldoc.Node.t list;
  string_value : Ordpath.t -> string;
  by_label : (string -> Xmldoc.Node.t list) option;
  (** Per-label index: all nodes carrying the label, in document order.
      [None] when the source has no exact index (the evaluator then falls
      back to axis enumeration); a source providing it must return every
      node whose {e visible} label matches, or descendant name-tests go
      wrong. *)
}

val of_document : Xmldoc.Document.t -> t

val of_flat : Xmldoc.Flat.t -> t
(** A source over a flat columnar snapshot ({!Xmldoc.Flat}): axis
    answers coincide with {!of_document} over the frozen document, but
    run on index arrays instead of map walks. *)
