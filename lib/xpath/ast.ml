type axis =
  | Ancestor
  | Ancestor_or_self
  | Attribute
  | Child
  | Descendant
  | Descendant_or_self
  | Following
  | Following_sibling
  | Parent
  | Preceding
  | Preceding_sibling
  | Self

type node_test =
  | Name of string
  | Star
  | Text_test
  | Node_test
  | Comment_test

type cmp = Eq | Neq | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod

type expr =
  | Or of expr * expr
  | And of expr * expr
  | Cmp of cmp * expr * expr
  | Arith of arith * expr * expr
  | Neg of expr
  | Union of expr * expr
  | Literal of string
  | Number of float
  | Var of string
  | Call of string * expr list
  | Path of path
  | Filter of expr * expr list * step list

and path = {
  absolute : bool;
  steps : step list;
}

and step = {
  axis : axis;
  test : node_test;
  preds : expr list;
}

let axis_of_string = function
  | "ancestor" -> Some Ancestor
  | "ancestor-or-self" -> Some Ancestor_or_self
  | "attribute" -> Some Attribute
  | "child" -> Some Child
  | "descendant" -> Some Descendant
  | "descendant-or-self" -> Some Descendant_or_self
  | "following" -> Some Following
  | "following-sibling" -> Some Following_sibling
  | "parent" -> Some Parent
  | "preceding" -> Some Preceding
  | "preceding-sibling" -> Some Preceding_sibling
  | "self" -> Some Self
  | _ -> None

let axis_to_string = function
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Attribute -> "attribute"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Following -> "following"
  | Following_sibling -> "following-sibling"
  | Parent -> "parent"
  | Preceding -> "preceding"
  | Preceding_sibling -> "preceding-sibling"
  | Self -> "self"

let is_reverse_axis = function
  | Ancestor | Ancestor_or_self | Preceding | Preceding_sibling -> true
  | Attribute | Child | Descendant | Descendant_or_self | Following
  | Following_sibling | Parent | Self ->
    false

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* '-' must be surrounded by spaces: a preceding name would otherwise
   swallow it (NCNames may contain hyphens). *)
let arith_to_string = function
  | Add -> " + "
  | Sub -> " - "
  | Mul -> " * "
  | Div -> " div "
  | Mod -> " mod "

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else string_of_float f

let test_to_string = function
  | Name n -> n
  | Star -> "*"
  | Text_test -> "text()"
  | Node_test -> "node()"
  | Comment_test -> "comment()"

(* Binding strength, loosest first; printing parenthesizes any operand
   that does not bind strictly tighter than its context (a conservative
   rule that is trivially re-parse-correct for the left-associative
   grammar). *)
let level = function
  | Or _ -> 1
  | And _ -> 2
  | Cmp ((Eq | Neq), _, _) -> 3
  | Cmp ((Lt | Le | Gt | Ge), _, _) -> 4
  | Arith ((Add | Sub), _, _) -> 5
  | Arith ((Mul | Div | Mod), _, _) -> 6
  | Neg _ -> 7
  | Union _ -> 8
  | Literal _ | Number _ | Var _ | Call _ | Path _ | Filter _ -> 9

let rec expr_to_string e =
  let operand parent_level child =
    let s = expr_to_string child in
    if level child > parent_level then s else "(" ^ s ^ ")"
  in
  (* The left operand of a left-associative operator may share the level. *)
  let left_operand parent_level child =
    let s = expr_to_string child in
    if level child >= parent_level then s else "(" ^ s ^ ")"
  in
  match e with
  | Or (a, b) ->
    Printf.sprintf "%s or %s" (left_operand 1 a) (operand 1 b)
  | And (a, b) ->
    Printf.sprintf "%s and %s" (left_operand 2 a) (operand 2 b)
  | Cmp (op, a, b) ->
    let l = level e in
    Printf.sprintf "%s %s %s" (left_operand l a) (cmp_to_string op)
      (operand l b)
  | Arith (op, a, b) ->
    let l = level e in
    Printf.sprintf "%s%s%s" (left_operand l a) (arith_to_string op)
      (operand l b)
  | Neg inner -> "-" ^ operand 6 inner
  | Union (a, b) ->
    Printf.sprintf "%s | %s" (left_operand 8 a) (operand 8 b)
  | Literal s -> Printf.sprintf "%S" s
  | Number f -> number_to_string f
  | Var v -> "$" ^ v
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Path p -> path_to_string p
  | Filter (e, preds, steps) ->
    let base = Printf.sprintf "(%s)%s" (expr_to_string e) (preds_to_string preds) in
    if steps = [] then base
    else base ^ "/" ^ String.concat "/" (List.map step_to_string steps)

and preds_to_string preds =
  String.concat "" (List.map (fun p -> "[" ^ expr_to_string p ^ "]") preds)

and step_to_string { axis; test; preds } =
  let base =
    match axis, test with
    | Child, t -> test_to_string t
    | Attribute, t -> "@" ^ test_to_string t
    | Self, Node_test -> "."
    | Parent, Node_test -> ".."
    | axis, t -> axis_to_string axis ^ "::" ^ test_to_string t
  in
  base ^ preds_to_string preds

and path_to_string { absolute; steps } =
  let body = String.concat "/" (List.map step_to_string steps) in
  if absolute then "/" ^ body else body

let to_string = expr_to_string
let pp fmt e = Format.pp_print_string fmt (to_string e)

(* A path is "downward" when selection of a node depends only on the node
   itself and its ancestor chain: every step walks down the tree (child,
   descendant(-or-self), attribute, self) and carries no predicate.  Such
   paths admit a per-node membership test ({!Eval.matches_down}) and are
   the class for which update deltas stay local (see [Core.Delta]). *)
let rec is_downward = function
  | Union (a, b) -> is_downward a && is_downward b
  | Path { steps; _ } ->
    List.for_all
      (fun { axis; preds; _ } ->
        preds = []
        &&
        match axis with
        | Child | Descendant | Descendant_or_self | Self | Attribute -> true
        | Ancestor | Ancestor_or_self | Following | Following_sibling
        | Parent | Preceding | Preceding_sibling ->
          false)
      steps
  | Or _ | And _ | Cmp _ | Arith _ | Neg _ | Literal _ | Number _ | Var _
  | Call _ | Filter _ ->
    false
