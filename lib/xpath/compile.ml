open Ast

(* NFA over top-down tree traversal.  A state stands for "this many steps
   of some path consumed, ending at the current node".  Three transition
   kinds:

   - [consume]: fires while descending one level, against the child node
     being entered.  [K_tree] requires the child to be an in-tree node
     (not an attribute, nor an attribute's text value) and tests with
     principal kind Element — the child and descendant axes.  [K_attr]
     requires an attribute child and tests with principal kind Attribute
     — the attribute axis.

   - [eps]: unconditional, consumes nothing.  Used to enter the loop
     state a descendant step compiles to.

   - [self_eps]: conditional on the *current* node (already consumed),
     consumes nothing.  [need_tree] distinguishes descendant-or-self's
     self branch (axis enumeration is tree-filtered) from the self axis
     (which is not).

   A descendant step [q -- descendant::t --> q'] becomes a fresh loop
   state [l] with [q --eps--> l], [l --consume(K_tree, node())--> l] and
   [l --consume(K_tree, t)--> q']: the loop keeps the obligation alive
   down the tree, the exit consumes the matching node, and strictness is
   inherent (an exit always descends at least one level). *)

type kindreq = K_tree | K_attr

type 'a state = {
  mutable eps : int list;
  mutable self_eps : (bool * node_test * int) list;
      (* need_tree, test, target *)
  mutable consume : (kindreq * node_test * int) list;
  mutable accepts : 'a list;
}

type 'a t = { states : 'a state array }

let state_count t = Array.length t.states

let compile rules =
  let rev_states = ref [] in
  let count = ref 0 in
  let fresh () =
    let s = { eps = []; self_eps = []; consume = []; accepts = [] } in
    rev_states := s :: !rev_states;
    let i = !count in
    incr count;
    (i, s)
  in
  let _, start = fresh () in
  let add_path payload steps =
    let rec go (q : 'a state) = function
      | [] -> q.accepts <- payload :: q.accepts
      | { axis; test; preds } :: rest ->
        if preds <> [] then
          invalid_arg "Xpath.Compile.compile: path carries a predicate";
        let i', s' = fresh () in
        (match axis with
         | Child -> q.consume <- (K_tree, test, i') :: q.consume
         | Attribute -> q.consume <- (K_attr, test, i') :: q.consume
         | Self -> q.self_eps <- (false, test, i') :: q.self_eps
         | Descendant | Descendant_or_self ->
           if axis = Descendant_or_self then
             q.self_eps <- (true, test, i') :: q.self_eps;
           let li, l = fresh () in
           q.eps <- li :: q.eps;
           l.consume <- [ (K_tree, Node_test, li); (K_tree, test, i') ]
         | (Ancestor | Ancestor_or_self | Following | Following_sibling
           | Parent | Preceding | Preceding_sibling) as axis ->
           invalid_arg
             (Printf.sprintf "Xpath.Compile.compile: %s is not a downward axis"
                (Ast.axis_to_string axis)));
        go s' rest
    in
    go start steps
  in
  let rec add_expr payload = function
    | Union (a, b) ->
      add_expr payload a;
      add_expr payload b
    | Path { steps; _ } -> add_path payload steps
    | e ->
      invalid_arg
        (Printf.sprintf "Xpath.Compile.compile: not a downward path: %s"
           (Ast.to_string e))
  in
  List.iter (fun (payload, expr) -> add_expr payload expr) rules;
  { states = Array.of_list (List.rev !rev_states) }

(* ---- Running ---- *)

(* Node classification during traversal, derived from the node's kind and
   its parent's class.  [C_skip] is an attribute's text value: unreachable
   by any downward axis, so states never survive there. *)
type cls = C_tree | C_attr | C_skip

let cls_code = function C_tree -> 0 | C_attr -> 1 | C_skip -> 2

let kind_code : Xmldoc.Node.kind -> int = function
  | Xmldoc.Node.Document -> 0
  | Xmldoc.Node.Element -> 1
  | Xmldoc.Node.Attribute -> 2
  | Xmldoc.Node.Text -> 3
  | Xmldoc.Node.Comment -> 4

let child_cls parent_cls (n : Xmldoc.Node.t) =
  if n.kind = Xmldoc.Node.Attribute then C_attr
  else match parent_cls with C_attr -> C_skip | C_tree | C_skip -> C_tree

let test_ok principal (test : node_test) (n : Xmldoc.Node.t) =
  match test with
  | Node_test -> true
  | Text_test -> n.kind = Xmldoc.Node.Text
  | Comment_test -> n.kind = Xmldoc.Node.Comment
  | Star -> n.kind = principal
  | Name name -> n.kind = principal && String.equal n.label name

(* ε-closure of [set] evaluated at node [n] of class [cls]; returns the
   sorted state list.  Self transitions have principal kind Element (the
   self and descendant-or-self axes). *)
let closure t cls (n : Xmldoc.Node.t) set =
  let mark = Array.make (Array.length t.states) false in
  let rec add i =
    if not mark.(i) then begin
      mark.(i) <- true;
      let s = t.states.(i) in
      List.iter add s.eps;
      List.iter
        (fun (need_tree, test, j) ->
          if (not need_tree || cls = C_tree)
             && test_ok Xmldoc.Node.Element test n
          then add j)
        s.self_eps
    end
  in
  List.iter add set;
  let acc = ref [] in
  for i = Array.length mark - 1 downto 0 do
    if mark.(i) then acc := i :: !acc
  done;
  !acc

(* One descent: the state set at a child node from its parent's set. *)
let step t cls (n : Xmldoc.Node.t) parent_set =
  let raw =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun (kreq, test, j) ->
            let fires =
              match kreq with
              | K_tree -> cls = C_tree && test_ok Xmldoc.Node.Element test n
              | K_attr -> cls = C_attr && test_ok Xmldoc.Node.Attribute test n
            in
            if fires then Some j else None)
          t.states.(i).consume)
      parent_set
  in
  closure t cls n raw

(* Per-traversal determinisation: state sets are interned to small ids and
   one transition is computed per (parent set, node class, kind, label)
   key, so repeated shapes cost one integer-keyed hash lookup.  Labels are
   interned to small ids so the key packs into a single int.  Private to
   the traversal — the compiled automaton itself is never mutated. *)
type 'a run = {
  t : 'a t;
  ids : (int list, int) Hashtbl.t;  (* state set -> set id *)
  mutable set_arr : int list array;  (* set id -> state set *)
  mutable payload_arr : 'a list array;  (* set id -> accepted payloads *)
  mutable n_sets : int;
  labels : (string, int) Hashtbl.t;  (* label -> label id *)
  memo : (int, int) Hashtbl.t;  (* packed transition key -> set id *)
}

let new_run t =
  { t; ids = Hashtbl.create 64;
    set_arr = Array.make 16 []; payload_arr = Array.make 16 [];
    n_sets = 0; labels = Hashtbl.create 64; memo = Hashtbl.create 256 }

let intern run set =
  match Hashtbl.find_opt run.ids set with
  | Some id -> id
  | None ->
    let id = run.n_sets in
    Hashtbl.add run.ids set id;
    if id = Array.length run.set_arr then begin
      run.set_arr <- Array.append run.set_arr (Array.make id []);
      run.payload_arr <- Array.append run.payload_arr (Array.make id [])
    end;
    run.set_arr.(id) <- set;
    run.payload_arr.(id) <-
      List.concat_map (fun i -> run.t.states.(i).accepts) set;
    run.n_sets <- id + 1;
    id

let label_id run label =
  match Hashtbl.find run.labels label with
  | i -> i
  | exception Not_found ->
    let i = Hashtbl.length run.labels in
    Hashtbl.add run.labels label i;
    i

(* Packed key: label ids stay well under 2^20 for any realistic document,
   and set ids are bounded by the number of distinct reachable state sets
   (tiny), so the pack cannot collide within a 63-bit int. *)
let transition run ~parent_id cls (n : Xmldoc.Node.t) =
  (* Name tests only ever inspect Element and Attribute labels, so other
     kinds share one label slot and skip the string hash. *)
  let lid =
    match n.kind with
    | Xmldoc.Node.Element | Xmldoc.Node.Attribute -> label_id run n.label
    | _ -> 0
  in
  let key =
    (((parent_id * 3 + cls_code cls) * 5 + kind_code n.kind) lsl 20) lor lid
  in
  match Hashtbl.find run.memo key with
  | id -> id
  | exception Not_found ->
    let id = intern run (step run.t cls n run.set_arr.(parent_id)) in
    Hashtbl.add run.memo key id;
    id

(* State at the document node: closure of the start state. *)
let enter_document run (n : Xmldoc.Node.t) =
  intern run (closure run.t C_tree n [ 0 ])

(* The traversal keeps the current ancestor chain's (id, set id, class)
   entries on a stack instead of a per-node side table: document order
   visits a node's parent before the node and pops are amortised O(1), so
   threading state costs one [is_ancestor] check per node instead of
   hashing ordpaths. *)
type frame = { f_id : Ordpath.t; f_set : int; f_cls : cls }

(* Shared per-node logic: compute the node's (set id, class) from the top
   of the stack, push it, fold [f] over accepted payloads. *)
let visit run stack acc (n : Xmldoc.Node.t) ~f =
  let rec unwind () =
    match !stack with
    | top :: rest
      when not (Ordpath.is_ancestor ~ancestor:top.f_id n.id) ->
      stack := rest;
      unwind ()
    | _ -> ()
  in
  let finish set_id cls =
    stack := { f_id = n.id; f_set = set_id; f_cls = cls } :: !stack;
    match run.payload_arr.(set_id) with
    | [] -> acc
    | payloads -> f acc n payloads
  in
  if Ordpath.equal n.id Ordpath.document then
    finish (enter_document run n) C_tree
  else begin
    unwind ();
    match !stack with
    | [] -> acc (* orphan: no state can have survived *)
    | top :: _ ->
      (* [top] is the nearest visited ancestor — the parent in any
         well-formed document. *)
      let cls = child_cls top.f_cls n in
      finish (transition run ~parent_id:top.f_set cls n) cls
  end

let fold t doc ~init ~f =
  let run = new_run t in
  let stack = ref [] in
  Xmldoc.Document.fold (fun n acc -> visit run stack acc n ~f) doc init

(* Traversal statistics, filled on demand by [fold_view].  A plain
   mutable record rather than an [Obs] histogram: this library sits below
   the observability layer, so the caller owns aggregation. *)
type stats = {
  mutable visited : int;
  mutable pruned : int;
  mutable states : int;
}

let stats () = { visited = 0; pruned = 0; states = 0 }

(* The automaton run over a *virtual* document: [view] prunes (None) or
   remaps (Some n', same identifier) each source node.  Pruned subtrees
   are contiguous in document order, so skipping them costs one ancestor
   check per node against the last pruned root — no side table.  The
   remapped node is what the automaton consumes, so name tests see the
   virtual labels, never the source's. *)
let fold_view ?stats t doc ~view ~init ~f =
  let run = new_run t in
  let stack = ref [] in
  let pruned = ref None in
  let acc =
    Xmldoc.Document.fold
      (fun (n : Xmldoc.Node.t) acc ->
        let skip =
          match !pruned with
          | Some root -> Ordpath.is_ancestor_or_self ~ancestor:root n.id
          | None -> false
        in
        if skip then begin
          (match stats with Some s -> s.pruned <- s.pruned + 1 | None -> ());
          acc
        end
        else begin
          pruned := None;
          match view n with
          | None ->
            pruned := Some n.id;
            (match stats with
            | Some s -> s.pruned <- s.pruned + 1
            | None -> ());
            acc
          | Some n' ->
            (match stats with
            | Some s -> s.visited <- s.visited + 1
            | None -> ());
            visit run stack acc n' ~f
        end)
      doc init
  in
  (match stats with Some s -> s.states <- s.states + run.n_sets | None -> ());
  acc

(* ---- Flat-snapshot traversals ----

   The same automaton run over an {!Xmldoc.Flat} columnar snapshot.
   Document order is index order, so the ancestor stack needs no ordpath
   prefix checks at all: a frame is live while the current index is
   inside its [subtree_end] span, one integer compare per pop.  A pruned
   subtree is skipped by jumping the index straight to [subtree_end] —
   O(1) instead of one ancestor check per skipped node. *)

(* Mutable integer-indexed frame stack shared by the flat folds. *)
type flat_stack = {
  mutable ixs : int array;  (* flat index of the frame's node *)
  mutable ends : int array;  (* subtree_end of the frame's node *)
  mutable sets : int array;  (* interned state-set id *)
  mutable clss : cls array;
  mutable depth : int;
}

let flat_stack () =
  { ixs = Array.make 64 0; ends = Array.make 64 0; sets = Array.make 64 0;
    clss = Array.make 64 C_tree; depth = 0 }

let flat_push st ix e set cls =
  if st.depth = Array.length st.ends then begin
    let grow a fill =
      let a' = Array.make (2 * Array.length a) fill in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    st.ixs <- grow st.ixs 0;
    st.ends <- grow st.ends 0;
    st.sets <- grow st.sets 0;
    st.clss <- grow st.clss C_tree
  end;
  st.ixs.(st.depth) <- ix;
  st.ends.(st.depth) <- e;
  st.sets.(st.depth) <- set;
  st.clss.(st.depth) <- cls;
  st.depth <- st.depth + 1

let flat_pop_to st i =
  while st.depth > 0 && st.ends.(st.depth - 1) <= i do
    st.depth <- st.depth - 1
  done

(* Consume node [ix]; push its frame; fold accepted payloads. *)
let flat_visit run stk fl ix (n : Xmldoc.Node.t) acc ~f =
  let set_id, cls =
    if ix = 0 then (enter_document run n, C_tree)
    else begin
      let cls = child_cls stk.clss.(stk.depth - 1) n in
      (transition run ~parent_id:stk.sets.(stk.depth - 1) cls n, cls)
    end
  in
  flat_push stk ix (Xmldoc.Flat.subtree_end fl ix) set_id cls;
  match run.payload_arr.(set_id) with
  | [] -> acc
  | payloads -> f acc n payloads

let fold_flat t fl ~init ~f =
  let run = new_run t in
  let stk = flat_stack () in
  let n = Xmldoc.Flat.size fl in
  let acc = ref init in
  for i = 0 to n - 1 do
    flat_pop_to stk i;
    acc := flat_visit run stk fl i (Xmldoc.Flat.node fl i) !acc ~f
  done;
  !acc

let fold_view_flat ?stats t fl ~view ~init ~f =
  let run = new_run t in
  let stk = flat_stack () in
  let n = Xmldoc.Flat.size fl in
  let acc = ref init in
  let i = ref 0 in
  while !i < n do
    let ix = !i in
    flat_pop_to stk ix;
    match view ix (Xmldoc.Flat.node fl ix) with
    | None ->
      let stop = Xmldoc.Flat.subtree_end fl ix in
      (match stats with
      | Some s -> s.pruned <- s.pruned + (stop - ix)
      | None -> ());
      i := stop
    | Some n' ->
      (match stats with Some s -> s.visited <- s.visited + 1 | None -> ());
      acc := flat_visit run stk fl ix n' !acc ~f;
      incr i
  done;
  (match stats with Some s -> s.states <- s.states + run.n_sets | None -> ());
  !acc

let fold_subtree_flat t fl ~root ~init ~f =
  match Xmldoc.Flat.find_ix fl root with
  | None -> init
  | Some r ->
    let run = new_run t in
    let stk = flat_stack () in
    (* Re-thread the automaton down the ancestor chain, outermost first,
       without folding [f] over it. *)
    let rec chain acc p =
      if p < 0 then acc else chain (p :: acc) (Xmldoc.Flat.parent_ix fl p)
    in
    let ancestors = chain [] (Xmldoc.Flat.parent_ix fl r) in
    List.iter
      (fun a ->
        ignore
          (flat_visit run stk fl a (Xmldoc.Flat.node fl a) init
             ~f:(fun acc _ _ -> acc)))
      ancestors;
    let stop = Xmldoc.Flat.subtree_end fl r in
    let acc = ref init in
    for i = r to stop - 1 do
      flat_pop_to stk i;
      acc := flat_visit run stk fl i (Xmldoc.Flat.node fl i) !acc ~f
    done;
    !acc

let fold_subtrees_flat t fl ~roots ~init ~f =
  let run = new_run t in
  let stk = flat_stack () in
  List.fold_left
    (fun acc r ->
      (* Frames from earlier roots whose spans have closed pop off; what
         survives is exactly the already-threaded ancestor prefix of
         [r], so only the chain below the deepest live frame needs
         re-threading. *)
      flat_pop_to stk r;
      let known = if stk.depth = 0 then -1 else stk.ixs.(stk.depth - 1) in
      let rec chain acc p =
        if p < 0 || p = known then acc
        else chain (p :: acc) (Xmldoc.Flat.parent_ix fl p)
      in
      List.iter
        (fun a ->
          ignore
            (flat_visit run stk fl a (Xmldoc.Flat.node fl a) ()
               ~f:(fun acc _ _ -> acc)))
        (chain [] (Xmldoc.Flat.parent_ix fl r));
      let stop = Xmldoc.Flat.subtree_end fl r in
      let acc = ref acc in
      for i = r to stop - 1 do
        flat_pop_to stk i;
        acc := flat_visit run stk fl i (Xmldoc.Flat.node fl i) !acc ~f
      done;
      !acc)
    init roots

let fold_subtree t doc ~root ~init ~f =
  if not (Xmldoc.Document.mem doc root) then init
  else begin
    let run = new_run t in
    let stack = ref [] in
    (* Re-thread the automaton down the strict ancestor chain, outermost
       first, without folding [f] over it. *)
    let ancestors =
      List.rev (Xmldoc.Document.ancestors doc root)
    in
    List.iter
      (fun n -> ignore (visit run stack init n ~f:(fun acc _ _ -> acc)))
      ancestors;
    Seq.fold_left
      (fun acc n -> visit run stack acc n ~f)
      init
      (Xmldoc.Document.descendant_or_self_seq doc root)
  end
