open Ast

type env = {
  src : Source.t;
  vars : (string * Value.t) list;
}

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let env_of_source ?(vars = []) src = { src; vars }
let env ?vars doc = env_of_source ?vars (Source.of_document doc)

type context = {
  node : Ordpath.t;
  position : int;
  size : int;
}

(* Axis enumeration, in axis order (reverse axes nearest-first).

   The store keeps attribute nodes as children of their element, but in the
   XPath data model attributes (and their text values) are reachable only
   through the [attribute] axis, so the tree axes filter them out. *)
let axis_nodes env axis id : Xmldoc.Node.t list =
  let src = env.src in
  let in_tree (n : Xmldoc.Node.t) =
    n.kind <> Xmldoc.Node.Attribute
    &&
    match src.Source.parent n.id with
    | Some p -> p.kind <> Xmldoc.Node.Attribute
    | None -> true
  in
  let tree = List.filter in_tree in
  match axis with
  | Child -> tree (src.Source.children id)
  | Descendant -> tree (src.Source.descendants id)
  | Descendant_or_self -> tree (src.Source.descendant_or_self id)
  | Parent -> (match src.Source.parent id with None -> [] | Some n -> [ n ])
  | Ancestor -> src.Source.ancestors id
  | Ancestor_or_self -> src.Source.ancestor_or_self id
  | Following_sibling -> tree (src.Source.following_siblings id)
  | Preceding_sibling -> tree (src.Source.preceding_siblings id)
  | Following -> tree (src.Source.following id)
  | Preceding -> tree (src.Source.preceding id)
  | Self -> (match src.Source.find id with None -> [] | Some n -> [ n ])
  | Attribute -> src.Source.attributes id

let test_matches axis (test : node_test) (n : Xmldoc.Node.t) =
  let principal_kind =
    match axis with Attribute -> Xmldoc.Node.Attribute | _ -> Xmldoc.Node.Element
  in
  match test with
  | Node_test -> true
  | Text_test -> n.kind = Xmldoc.Node.Text
  | Comment_test -> n.kind = Xmldoc.Node.Comment
  | Star -> n.kind = principal_kind
  | Name name -> n.kind = principal_kind && String.equal n.label name

let rec eval_expr env ctx expr : Value.t =
  match expr with
  | Or (a, b) ->
    Value.Bool
      (Value.to_bool env.src (eval_expr env ctx a)
      || Value.to_bool env.src (eval_expr env ctx b))
  | And (a, b) ->
    Value.Bool
      (Value.to_bool env.src (eval_expr env ctx a)
      && Value.to_bool env.src (eval_expr env ctx b))
  | Cmp (op, a, b) ->
    Value.Bool
      (Value.compare_values env.src op (eval_expr env ctx a)
         (eval_expr env ctx b))
  | Arith (op, a, b) ->
    let x = Value.to_num env.src (eval_expr env ctx a) in
    let y = Value.to_num env.src (eval_expr env ctx b) in
    Value.Num
      (match op with
       | Add -> x +. y
       | Sub -> x -. y
       | Mul -> x *. y
       | Div -> x /. y
       | Mod -> Float.rem x y)
  | Neg e -> Value.Num (-.Value.to_num env.src (eval_expr env ctx e))
  | Union (a, b) ->
    let na = eval_nodes env ctx a and nb = eval_nodes env ctx b in
    Value.nodeset (na @ nb)
  | Literal s -> Value.Str s
  | Number f -> Value.Num f
  | Var v ->
    (match List.assoc_opt v env.vars with
     | Some value -> value
     | None -> fail "unbound variable $%s" v)
  | Call (f, args) -> eval_call env ctx f args
  | Path p -> Value.nodeset (eval_path env ctx p)
  | Filter (e, preds, steps) ->
    let base = eval_nodes env ctx e in
    (* Predicates on a filter expression number nodes in document order. *)
    let filtered =
      List.fold_left (fun ids pred -> filter_predicate env ids pred) base preds
    in
    if steps = [] then Value.nodeset filtered
    else
      Value.nodeset
        (List.concat_map (fun id -> eval_steps env id steps) filtered)

and eval_nodes env ctx e =
  match eval_expr env ctx e with
  | Value.Nodeset ns -> ns
  | v ->
    fail "expected a node-set but got %s"
      (Format.asprintf "%a" (Value.pp env.src) v)

and eval_path env ctx { absolute; steps } =
  let start = if absolute then Ordpath.document else ctx.node in
  eval_steps env start steps

and eval_steps env start steps =
  match steps with
  | [] -> [ start ]
  | step :: rest ->
    let here = eval_step env start step in
    let next = List.concat_map (fun id -> eval_steps env id rest) here in
    List.sort_uniq Ordpath.compare next

and eval_step env start { axis; test; preds } =
  let candidates =
    (* Descendant name-tests answer from the per-label index when the
       source has one: the index is in document order (= axis order for
       the downward axes), so predicate numbering is unaffected.  The
       subtree and [in_tree] checks reapply the axis semantics the slow
       path gets from [axis_nodes]. *)
    match axis, test, env.src.Source.by_label with
    | (Descendant | Descendant_or_self), Name name, Some labelled ->
      let or_self = axis = Descendant_or_self in
      List.filter
        (fun (n : Xmldoc.Node.t) ->
          n.kind = Xmldoc.Node.Element
          && (match env.src.Source.parent n.id with
              | Some p -> p.kind <> Xmldoc.Node.Attribute
              | None -> true)
          && ((or_self && Ordpath.equal n.id start)
             || (not (Ordpath.equal n.id start)
                && Ordpath.is_ancestor ~ancestor:start n.id)))
        (labelled name)
    | _ ->
      List.filter (test_matches axis test) (axis_nodes env axis start)
  in
  let ids = List.map (fun (n : Xmldoc.Node.t) -> n.id) candidates in
  (* Each predicate re-numbers the surviving nodes in axis order. *)
  List.fold_left
    (fun ids pred -> filter_predicate env ids pred)
    ids preds

and filter_predicate env ids pred =
  let size = List.length ids in
  List.filteri
    (fun i id ->
      let ctx = { node = id; position = i + 1; size } in
      match eval_expr env ctx pred with
      | Value.Num f -> f = float_of_int ctx.position
      | v -> Value.to_bool env.src v)
    ids

and eval_call env ctx f args =
  let doc = env.src in
  let arg i =
    match List.nth_opt args i with
    | Some e -> eval_expr env ctx e
    | None -> fail "%s: missing argument %d" f (i + 1)
  in
  let str i = Value.to_string doc (arg i) in
  let num i = Value.to_num doc (arg i) in
  let optional_nodeset_arg () =
    match args with
    | [] -> [ ctx.node ]
    | e :: _ ->
      (match eval_expr env ctx e with
       | Value.Nodeset ns -> ns
       | _ -> fail "%s: expected a node-set argument" f)
  in
  let arity n =
    if List.length args <> n then
      fail "%s: expected %d argument(s), got %d" f n (List.length args)
  in
  match f with
  | "last" ->
    arity 0;
    Value.Num (float_of_int ctx.size)
  | "position" ->
    arity 0;
    Value.Num (float_of_int ctx.position)
  | "count" ->
    arity 1;
    (match arg 0 with
     | Value.Nodeset ns -> Value.Num (float_of_int (List.length ns))
     | _ -> fail "count: expected a node-set")
  | "name" | "local-name" ->
    (match optional_nodeset_arg () with
     | [] -> Value.Str ""
     | id :: _ ->
       (match env.src.Source.find id with
        | Some { kind = Xmldoc.Node.Element | Xmldoc.Node.Attribute; label; _ }
          ->
          Value.Str label
        | Some _ | None -> Value.Str ""))
  | "string" ->
    if args = [] then Value.Str (Value.to_string doc (Value.nodeset [ ctx.node ]))
    else Value.Str (str 0)
  | "concat" ->
    if List.length args < 2 then fail "concat: expected at least 2 arguments";
    Value.Str (String.concat "" (List.mapi (fun i _ -> str i) args))
  | "starts-with" ->
    arity 2;
    let s = str 0 and prefix = str 1 in
    Value.Bool
      (String.length s >= String.length prefix
      && String.sub s 0 (String.length prefix) = prefix)
  | "contains" ->
    arity 2;
    let s = str 0 and sub = str 1 in
    let n = String.length s and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    Value.Bool (m = 0 || scan 0)
  | "substring-before" ->
    arity 2;
    let s = str 0 and sep = str 1 in
    let n = String.length s and m = String.length sep in
    let rec scan i =
      if i + m > n then None
      else if String.sub s i m = sep then Some i
      else scan (i + 1)
    in
    Value.Str
      (if m = 0 then ""
       else match scan 0 with None -> "" | Some i -> String.sub s 0 i)
  | "substring-after" ->
    arity 2;
    let s = str 0 and sep = str 1 in
    let n = String.length s and m = String.length sep in
    let rec scan i =
      if i + m > n then None
      else if String.sub s i m = sep then Some (i + m)
      else scan (i + 1)
    in
    Value.Str
      (if m = 0 then s
       else match scan 0 with None -> "" | Some i -> String.sub s i (n - i))
  | "substring" ->
    let s = str 0 in
    let start = Float.round (num 1) in
    let len =
      if List.length args >= 3 then Float.round (num 2) else Float.infinity
    in
    let n = String.length s in
    let first = int_of_float (Float.max 1. start) in
    let last_excl =
      if Float.is_integer len || len = Float.infinity then
        let stop = start +. len in
        if stop > float_of_int n +. 1. then n + 1
        else if Float.is_nan stop || stop < 1. then first
        else int_of_float stop
      else first
    in
    if Float.is_nan start || first >= last_excl then Value.Str ""
    else Value.Str (String.sub s (first - 1) (last_excl - first))
  | "string-length" ->
    let s = if args = [] then Value.to_string doc (Value.nodeset [ ctx.node ]) else str 0 in
    Value.Num (float_of_int (String.length s))
  | "normalize-space" ->
    let s = if args = [] then Value.to_string doc (Value.nodeset [ ctx.node ]) else str 0 in
    let words =
      String.split_on_char ' '
        (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
      |> List.filter (fun w -> w <> "")
    in
    Value.Str (String.concat " " words)
  | "translate" ->
    arity 3;
    let s = str 0 and from = str 1 and into = str 2 in
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match String.index_opt from c with
        | None -> Buffer.add_char buf c
        | Some i -> if i < String.length into then Buffer.add_char buf into.[i])
      s;
    Value.Str (Buffer.contents buf)
  | "boolean" ->
    arity 1;
    Value.Bool (Value.to_bool doc (arg 0))
  | "not" ->
    arity 1;
    Value.Bool (not (Value.to_bool doc (arg 0)))
  | "true" ->
    arity 0;
    Value.Bool true
  | "false" ->
    arity 0;
    Value.Bool false
  | "number" ->
    if args = [] then Value.Num (Value.to_num doc (Value.nodeset [ ctx.node ]))
    else Value.Num (num 0)
  | "sum" ->
    arity 1;
    (match arg 0 with
     | Value.Nodeset ns ->
       Value.Num
         (List.fold_left
            (fun acc id ->
              acc +. Value.number_of_string (env.src.Source.string_value id))
            0. ns)
     | _ -> fail "sum: expected a node-set")
  | "floor" ->
    arity 1;
    Value.Num (Float.floor (num 0))
  | "ceiling" ->
    arity 1;
    Value.Num (Float.ceil (num 0))
  | "round" ->
    arity 1;
    (* XPath rounds halves towards +infinity: floor(x + 0.5). *)
    let x = num 0 in
    Value.Num
      (if Float.is_nan x || Float.is_integer x then x
       else Float.floor (x +. 0.5))
  | _ -> fail "unknown function %s()" f

let eval env ~context expr =
  eval_expr env { node = context; position = 1; size = 1 } expr

let select env expr =
  match eval env ~context:Ordpath.document expr with
  | Value.Nodeset ns -> ns
  | v ->
    fail "expression does not select nodes: %s"
      (Format.asprintf "%a" (Value.pp env.src) v)

let select_str ?vars doc src = select (env ?vars doc) (Parser.parse src)

let matches env expr id =
  List.exists (Ordpath.equal id) (select env expr)

(* Per-node membership for the downward class ({!Ast.is_downward}),
   evaluated backwards over the reversed steps: the candidate's own label
   and ancestor chain decide, so the test never enumerates the document.
   Must agree with [select] membership on that class — mirrored details:
   [select] starts at the document node even for relative paths, and the
   tree axes (child/descendant) skip attribute nodes and their text
   children (the [in_tree] filter of [axis_nodes]). *)
let matches_down src expr id =
  let in_tree (n : Xmldoc.Node.t) =
    n.kind <> Xmldoc.Node.Attribute
    &&
    match src.Source.parent n.id with
    | Some p -> p.kind <> Xmldoc.Node.Attribute
    | None -> true
  in
  (* [steps_match rev_steps id]: does [id] end a chain consuming all the
     steps, starting from the document node? *)
  let rec steps_match rev_steps id =
    match rev_steps with
    | [] -> Ordpath.equal id Ordpath.document
    | { axis; test; preds } :: rest ->
      if preds <> [] then fail "matches_down: path carries a predicate"
      else (
        match src.Source.find id with
        | None -> false
        | Some n ->
          test_matches axis test n
          &&
          let up_strict match_rest =
            let rec up = function
              | None -> false
              | Some a -> match_rest a || up (Ordpath.parent a)
            in
            up (Ordpath.parent id)
          in
          (match axis with
           | Self -> steps_match rest id
           | Child ->
             in_tree n
             && (match Ordpath.parent id with
                 | None -> false
                 | Some p -> steps_match rest p)
           | Attribute ->
             n.kind = Xmldoc.Node.Attribute
             && (match Ordpath.parent id with
                 | None -> false
                 | Some p -> steps_match rest p)
           | Descendant -> in_tree n && up_strict (steps_match rest)
           | Descendant_or_self ->
             in_tree n && (steps_match rest id || up_strict (steps_match rest))
           | Ancestor | Ancestor_or_self | Following | Following_sibling
           | Parent | Preceding | Preceding_sibling ->
             fail "matches_down: %s is not a downward axis"
               (Ast.axis_to_string axis)))
  in
  let rec expr_matches = function
    | Union (a, b) -> expr_matches a || expr_matches b
    | Path { steps; _ } -> steps_match (List.rev steps) id
    | e -> fail "matches_down: not a downward path: %s" (Ast.to_string e)
  in
  expr_matches expr
