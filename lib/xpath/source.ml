type t = {
  find : Ordpath.t -> Xmldoc.Node.t option;
  children : Ordpath.t -> Xmldoc.Node.t list;
  parent : Ordpath.t -> Xmldoc.Node.t option;
  descendants : Ordpath.t -> Xmldoc.Node.t list;
  descendant_or_self : Ordpath.t -> Xmldoc.Node.t list;
  ancestors : Ordpath.t -> Xmldoc.Node.t list;
  ancestor_or_self : Ordpath.t -> Xmldoc.Node.t list;
  following_siblings : Ordpath.t -> Xmldoc.Node.t list;
  preceding_siblings : Ordpath.t -> Xmldoc.Node.t list;
  following : Ordpath.t -> Xmldoc.Node.t list;
  preceding : Ordpath.t -> Xmldoc.Node.t list;
  attributes : Ordpath.t -> Xmldoc.Node.t list;
  string_value : Ordpath.t -> string;
  by_label : (string -> Xmldoc.Node.t list) option;
      (* label -> all nodes carrying it, document order; [None] when the
         source cannot answer from an index (e.g. a lazy view, whose
         RESTRICTED remapping changes labels on the fly) *)
}

let of_flat fl =
  let module F = Xmldoc.Flat in
  {
    find = F.find fl;
    children = F.children fl;
    parent = F.parent fl;
    descendants = F.descendants fl;
    descendant_or_self = F.descendant_or_self fl;
    ancestors = F.ancestors fl;
    ancestor_or_self = F.ancestor_or_self fl;
    following_siblings = F.following_siblings fl;
    preceding_siblings = F.preceding_siblings fl;
    following = F.following fl;
    preceding = F.preceding fl;
    attributes = F.attributes fl;
    string_value = F.string_value fl;
    by_label = Some (F.labelled fl);
  }

let of_document doc =
  let module D = Xmldoc.Document in
  {
    find = D.find doc;
    children = D.children doc;
    parent = D.parent doc;
    descendants = D.descendants doc;
    descendant_or_self = D.descendant_or_self doc;
    ancestors = D.ancestors doc;
    ancestor_or_self = D.ancestor_or_self doc;
    following_siblings = D.following_siblings doc;
    preceding_siblings = D.preceding_siblings doc;
    following = D.following doc;
    preceding = D.preceding doc;
    attributes = D.attributes doc;
    string_value = D.string_value doc;
    by_label = Some (D.labelled doc);
  }
