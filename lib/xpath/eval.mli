(** XPath 1.0 evaluation over a {!Xmldoc.Document}.  The logical reading is
    the paper's [xpath(p, n, v)] predicate (§3.4): [select doc p] is the set
    of nodes [n] addressed by path [p]. *)

type env = {
  src : Source.t;
  vars : (string * Value.t) list;
      (** variable bindings, e.g. [("USER", Str "robert")] for the
          [$USER] session variable of §4.3 *)
}

exception Error of string
(** Raised on type errors (e.g. a union of non-node-sets), unknown
    functions, or unbound variables. *)

val env : ?vars:(string * Value.t) list -> Xmldoc.Document.t -> env

val env_of_source : ?vars:(string * Value.t) list -> Source.t -> env
(** Evaluate against a virtual source (e.g. a lazily-filtered view). *)

val eval : env -> context:Ordpath.t -> Ast.expr -> Value.t
(** Evaluates with context size 1 and position 1. *)

val select : env -> Ast.expr -> Ordpath.t list
(** Evaluates an expression with the document node as context and returns
    the selected nodes in document order.
    @raise Error if the result is not a node-set. *)

val select_str : ?vars:(string * Value.t) list ->
  Xmldoc.Document.t -> string -> Ordpath.t list
(** Parses and selects in one call.
    @raise Parser.Error on syntax errors, [Error] on evaluation errors. *)

val matches : env -> Ast.expr -> Ordpath.t -> bool
(** [matches env path n]: is node [n] addressed by [path]?  (The
    [xpath(p, n, v)] test used by the access-control axioms.) *)

val matches_down : Source.t -> Ast.expr -> Ordpath.t -> bool
(** [matches_down src path n]: same membership test as {!matches}, but
    decided from [n]'s label and ancestor chain alone — no document
    enumeration.  Only defined on the {!Ast.is_downward} class; the
    incremental permission maintenance of [Core.Perm.update] relies on it
    to re-resolve rules inside an updated subtree.
    @raise Error if [path] is not downward. *)
