(** Persistent node labels for ordered trees, in the style of ORDPATH
    (O'Neil et al., SIGMOD 2004) and of the persistent labelling scheme the
    paper relies on ([12] in its bibliography).

    A label is a sequence of integer components.  Odd components mark tree
    levels; even components are insertion "carets" that glue to the
    components following them without adding a level.  The scheme supports
    {!append}, {!insert_before}, {!insert_after} and arbitrary
    {!between}-sibling insertion while guaranteeing that labels already
    assigned are never changed ("no renumbering after an update", §3.1 of
    the paper), and that every tree axis (parent, ancestor, sibling order,
    document order) is derivable from the labels alone. *)

type t
(** A node label.  The document node is {!document}. *)

val document : t
(** Label of the (unique) document node, printed ["/"]. *)

val root : t
(** Label of the conventional root element, the first child of
    {!document}. *)

val of_components : int list -> t
(** [of_components cs] builds a label from raw components.
    @raise Invalid_argument if [cs] is not a well-formed label: every
    level must consist of zero or more even components followed by exactly
    one odd component, and the whole list must end on an odd component
    (except for the empty list, which is {!document}). *)

val to_components : t -> int list

val compare : t -> t -> int
(** Total order = document order.  An ancestor precedes its
    descendants; siblings are ordered left to right. *)

val equal : t -> t -> bool
val hash : t -> int

val depth : t -> int
(** Number of levels: [depth document = 0], [depth root = 1]. *)

val parent : t -> t option
(** [parent t] is [None] iff [t] is {!document}. *)

val is_ancestor : ancestor:t -> t -> bool
(** Strict: [is_ancestor ~ancestor:t t = false]. *)

val is_ancestor_or_self : ancestor:t -> t -> bool

val is_child : parent:t -> t -> bool

val is_sibling : t -> t -> bool
(** Same parent and distinct. *)

val first_child : t -> t
(** The label given to the first child inserted under an empty node. *)

val append_after : t -> last:t option -> t
(** [append_after p ~last] is a fresh label for a new last child of [p],
    where [last] is the label of the current last child (or [None] if [p]
    has no children).
    @raise Invalid_argument if [last] is not a child of [p]. *)

val insert_before : t -> t
(** [insert_before n] is a fresh label for a new immediately-preceding
    sibling of [n] assuming [n] is currently the first child; use
    {!between} when [n] has a preceding sibling.
    @raise Invalid_argument if [n] is {!document}. *)

val between : left:t -> right:t -> t
(** A fresh label strictly between two sibling labels.
    @raise Invalid_argument if [left] and [right] are not siblings or
    [left >= right]. *)

val child_under : parent:t -> left:t option -> right:t option -> t
(** Generic allocation: a fresh child label of [parent] strictly between
    the sibling labels [left] and [right] (either may be [None] meaning
    no bound on that side).
    @raise Invalid_argument on non-children bounds or [left >= right]. *)

val relationship : t -> t -> [ `Self | `Ancestor | `Descendant
                             | `Preceding | `Following ]
(** [relationship a b] classifies [b] relative to [a]: e.g. [`Ancestor]
    means [b] is an ancestor of [a]. *)

val to_string : t -> string
(** Dotted components, e.g. ["1.3.2.1"]; the document node is ["/"]. *)

val of_string : string -> t
(** Inverse of {!to_string}. @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

(** {2 Packed binary keys}

    A packed key is a compact byte string whose byte-wise lexicographic
    order coincides with {!compare} (document order) and whose string
    prefixes coincide with label prefixes (ancestry).  Packed keys let a
    columnar store compare and range-scan labels with [memcmp]-style
    string comparison instead of walking boxed int lists. *)

val pack : t -> string
(** Order-preserving binary encoding of a label.  The document node packs
    to the empty string.
    @raise Invalid_argument if a component exceeds 55 bits. *)

val unpack : string -> t
(** Inverse of {!pack}. @raise Invalid_argument on malformed input. *)

val compare_packed : string -> string -> int
(** [compare_packed (pack a) (pack b) = compare a b]; implemented as a
    plain string comparison. *)

val is_packed_prefix : string -> string -> bool
(** [is_packed_prefix (pack a) (pack b)] iff [a] is an ancestor-or-self
    of [b]. *)

val is_packed_strict_prefix : string -> string -> bool
(** [is_packed_strict_prefix (pack a) (pack b)] iff [a] is a strict
    ancestor of [b]. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
