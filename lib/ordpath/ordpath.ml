type t = int list

let is_odd x = x land 1 <> 0
let is_even x = x land 1 = 0

let document = []
let root = [ 1 ]

(* A well-formed label is a sequence of levels, each level being zero or
   more even components followed by exactly one odd component. *)
let is_well_formed cs =
  let rec check = function
    | [] -> true
    | c :: rest -> if is_odd c then check rest else rest <> [] && check rest
  in
  check cs

let of_components cs =
  if is_well_formed cs then cs
  else invalid_arg "Ordpath.of_components: malformed label"

let to_components t = t

let rec compare a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x <> y then Int.compare x y else compare a' b'

let equal a b = compare a b = 0
let hash t = Hashtbl.hash t

let depth t = List.length (List.filter is_odd t)

(* The last level of a label is its trailing odd component together with
   the maximal run of even components immediately before it. *)
let parent = function
  | [] -> None
  | t ->
    let rec drop_evens = function
      | e :: rest when is_even e -> drop_evens rest
      | rest -> rest
    in
    (match List.rev t with
     | [] -> None
     | _last :: rev_rest -> Some (List.rev (drop_evens rev_rest)))

let rec is_prefix p t =
  match p, t with
  | [], _ -> true
  | _, [] -> false
  | x :: p', y :: t' -> x = y && is_prefix p' t'

(* One walk, no length passes: [p] is a strict prefix iff [p] runs out
   while [t] still has components. *)
let rec is_strict_prefix p t =
  match p, t with
  | [], _ :: _ -> true
  | _, [] -> false
  | x :: p', y :: t' -> x = y && is_strict_prefix p' t'

let is_ancestor ~ancestor t = is_strict_prefix ancestor t
let is_ancestor_or_self ~ancestor t = is_prefix ancestor t

let is_child ~parent:p t =
  match parent t with Some q -> equal p q | None -> false

let is_sibling a b =
  (not (equal a b))
  &&
  match parent a, parent b with
  | Some pa, Some pb -> equal pa pb
  | _ -> false

let next_odd_after x = if is_odd x then x + 2 else x + 1
let prev_odd_before x = if is_odd x then x - 2 else x - 1

(* [level_between left right] is a fresh level strictly between the sibling
   levels [left] and [right] (either bound may be absent).  Levels compare
   lexicographically; distinct valid levels never share an odd head, which
   the recursion relies on. *)
let rec level_between left right =
  match left, right with
  | None, None -> [ 1 ]
  | Some (ha :: _), None -> [ next_odd_after ha ]
  | None, Some (hb :: _) -> [ prev_odd_before hb ]
  | Some (ha :: ta), Some (hb :: tb) ->
    if ha = hb then begin
      assert (is_even ha);
      ha :: level_between (Some ta) (Some tb)
    end
    else if hb - ha >= 2 then begin
      let o = if is_odd (ha + 1) then ha + 1 else ha + 2 in
      if o < hb then [ o ] else (ha + 1) :: level_between None None
    end
    else begin
      (* hb = ha + 1 *)
      if is_odd ha then hb :: level_between None (Some tb)
      else ha :: level_between (Some ta) None
    end
  | Some [], _ | _, Some [] ->
    invalid_arg "Ordpath: empty level"

let strip_parent ~parent:p t =
  let rec strip p t =
    match p, t with
    | [], suffix -> suffix
    | x :: p', y :: t' when x = y -> strip p' t'
    | _ -> invalid_arg "Ordpath: not a child of the given parent"
  in
  strip p t

let child_under ~parent:p ~left ~right =
  let level_of bound =
    match bound with
    | None -> None
    | Some b ->
      if not (is_child ~parent:p b) then
        invalid_arg "Ordpath.child_under: bound is not a child of parent";
      Some (strip_parent ~parent:p b)
  in
  let ll = level_of left and rl = level_of right in
  (match ll, rl with
   | Some a, Some b when compare a b >= 0 ->
     invalid_arg "Ordpath.child_under: left >= right"
   | _ -> ());
  p @ level_between ll rl

let first_child p = p @ [ 1 ]

let append_after p ~last = child_under ~parent:p ~left:last ~right:None

let insert_before n =
  match parent n with
  | None -> invalid_arg "Ordpath.insert_before: document node"
  | Some p -> child_under ~parent:p ~left:None ~right:(Some n)

let between ~left ~right =
  if not (is_sibling left right) then
    invalid_arg "Ordpath.between: not siblings";
  match parent left with
  | None -> invalid_arg "Ordpath.between: document node"
  | Some p -> child_under ~parent:p ~left:(Some left) ~right:(Some right)

let relationship a b =
  if equal a b then `Self
  else if is_strict_prefix b a then `Ancestor
  else if is_strict_prefix a b then `Descendant
  else if compare b a < 0 then `Preceding
  else `Following

let to_string = function
  | [] -> "/"
  | t -> String.concat "." (List.map string_of_int t)

let of_string s =
  if s = "/" then []
  else
    match String.split_on_char '.' s with
    | [] -> invalid_arg "Ordpath.of_string: empty"
    | parts ->
      let cs =
        List.map
          (fun p ->
            match int_of_string_opt p with
            | Some i -> i
            | None -> invalid_arg "Ordpath.of_string: bad component")
          parts
      in
      of_components cs

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
