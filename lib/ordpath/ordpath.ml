type t = int list

let is_odd x = x land 1 <> 0
let is_even x = x land 1 = 0

let document = []
let root = [ 1 ]

(* A well-formed label is a sequence of levels, each level being zero or
   more even components followed by exactly one odd component. *)
let is_well_formed cs =
  let rec check = function
    | [] -> true
    | c :: rest -> if is_odd c then check rest else rest <> [] && check rest
  in
  check cs

let of_components cs =
  if is_well_formed cs then cs
  else invalid_arg "Ordpath.of_components: malformed label"

let to_components t = t

let rec compare a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x <> y then Int.compare x y else compare a' b'

let equal a b = compare a b = 0
let hash t = Hashtbl.hash t

let depth t = List.length (List.filter is_odd t)

(* The last level of a label is its trailing odd component together with
   the maximal run of even components immediately before it. *)
let parent = function
  | [] -> None
  | t ->
    let rec drop_evens = function
      | e :: rest when is_even e -> drop_evens rest
      | rest -> rest
    in
    (match List.rev t with
     | [] -> None
     | _last :: rev_rest -> Some (List.rev (drop_evens rev_rest)))

let rec is_prefix p t =
  match p, t with
  | [], _ -> true
  | _, [] -> false
  | x :: p', y :: t' -> x = y && is_prefix p' t'

(* One walk, no length passes: [p] is a strict prefix iff [p] runs out
   while [t] still has components. *)
let rec is_strict_prefix p t =
  match p, t with
  | [], _ :: _ -> true
  | _, [] -> false
  | x :: p', y :: t' -> x = y && is_strict_prefix p' t'

let is_ancestor ~ancestor t = is_strict_prefix ancestor t
let is_ancestor_or_self ~ancestor t = is_prefix ancestor t

let is_child ~parent:p t =
  match parent t with Some q -> equal p q | None -> false

let is_sibling a b =
  (not (equal a b))
  &&
  match parent a, parent b with
  | Some pa, Some pb -> equal pa pb
  | _ -> false

let next_odd_after x = if is_odd x then x + 2 else x + 1
let prev_odd_before x = if is_odd x then x - 2 else x - 1

(* [level_between left right] is a fresh level strictly between the sibling
   levels [left] and [right] (either bound may be absent).  Levels compare
   lexicographically; distinct valid levels never share an odd head, which
   the recursion relies on. *)
let rec level_between left right =
  match left, right with
  | None, None -> [ 1 ]
  | Some (ha :: _), None -> [ next_odd_after ha ]
  | None, Some (hb :: _) -> [ prev_odd_before hb ]
  | Some (ha :: ta), Some (hb :: tb) ->
    if ha = hb then begin
      assert (is_even ha);
      ha :: level_between (Some ta) (Some tb)
    end
    else if hb - ha >= 2 then begin
      let o = if is_odd (ha + 1) then ha + 1 else ha + 2 in
      if o < hb then [ o ] else (ha + 1) :: level_between None None
    end
    else begin
      (* hb = ha + 1 *)
      if is_odd ha then hb :: level_between None (Some tb)
      else ha :: level_between (Some ta) None
    end
  | Some [], _ | _, Some [] ->
    invalid_arg "Ordpath: empty level"

let strip_parent ~parent:p t =
  let rec strip p t =
    match p, t with
    | [], suffix -> suffix
    | x :: p', y :: t' when x = y -> strip p' t'
    | _ -> invalid_arg "Ordpath: not a child of the given parent"
  in
  strip p t

let child_under ~parent:p ~left ~right =
  let level_of bound =
    match bound with
    | None -> None
    | Some b ->
      if not (is_child ~parent:p b) then
        invalid_arg "Ordpath.child_under: bound is not a child of parent";
      Some (strip_parent ~parent:p b)
  in
  let ll = level_of left and rl = level_of right in
  (match ll, rl with
   | Some a, Some b when compare a b >= 0 ->
     invalid_arg "Ordpath.child_under: left >= right"
   | _ -> ());
  p @ level_between ll rl

let first_child p = p @ [ 1 ]

let append_after p ~last = child_under ~parent:p ~left:last ~right:None

let insert_before n =
  match parent n with
  | None -> invalid_arg "Ordpath.insert_before: document node"
  | Some p -> child_under ~parent:p ~left:None ~right:(Some n)

let between ~left ~right =
  if not (is_sibling left right) then
    invalid_arg "Ordpath.between: not siblings";
  match parent left with
  | None -> invalid_arg "Ordpath.between: document node"
  | Some p -> child_under ~parent:p ~left:(Some left) ~right:(Some right)

let relationship a b =
  if equal a b then `Self
  else if is_strict_prefix b a then `Ancestor
  else if is_strict_prefix a b then `Descendant
  else if compare b a < 0 then `Preceding
  else `Following

let to_string = function
  | [] -> "/"
  | t -> String.concat "." (List.map string_of_int t)

let of_string s =
  if s = "/" then []
  else
    match String.split_on_char '.' s with
    | [] -> invalid_arg "Ordpath.of_string: empty"
    | parts ->
      let cs =
        List.map
          (fun p ->
            match int_of_string_opt p with
            | Some i -> i
            | None -> invalid_arg "Ordpath.of_string: bad component")
          parts
      in
      of_components cs

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Packed binary keys.

   Each component is encoded as one header byte plus a big-endian payload
   whose length the header determines, chosen so that byte-wise
   lexicographic comparison of concatenated codes coincides with
   component-wise comparison of labels:

   - non-negative [v] with minimal payload length [n] (1..7 bytes):
     header [0x80 + n], payload = big-endian [v];
   - negative [v] with minimal payload length [n]:
     header [0x80 - n], payload = big-endian [v + 2^(8n)].

   Negative headers (0x79..0x7F) sort below positive ones (0x81..0x87);
   within a sign, longer payloads mean larger magnitude and the headers
   order them accordingly.  Codes are prefix-free, so a label is a strict
   prefix of another iff its packed form is a strict string prefix. *)

let packed_component_max = (1 lsl 55) - 1

let payload_len v =
  (* minimal n in 1..7 with the payload fitting n bytes *)
  let u = if v >= 0 then v else -1 - v in
  let rec go n bound = if u < bound then n else go (n + 1) (bound lsl 8) in
  go 1 256

let pack t =
  let b = Buffer.create 16 in
  List.iter
    (fun v ->
      if v > packed_component_max || v < -packed_component_max then
        invalid_arg "Ordpath.pack: component out of range";
      let n = payload_len v in
      let u = if v >= 0 then v else v + (1 lsl (8 * n)) in
      Buffer.add_char b
        (Char.chr (if v >= 0 then 0x80 + n else 0x80 - n));
      for i = n - 1 downto 0 do
        Buffer.add_char b (Char.chr ((u lsr (8 * i)) land 0xff))
      done)
    t;
  Buffer.contents b

let unpack s =
  let len = String.length s in
  let rec go pos acc =
    if pos = len then List.rev acc
    else begin
      let h = Char.code s.[pos] in
      let n, neg =
        if h > 0x80 && h <= 0x87 then h - 0x80, false
        else if h >= 0x79 && h < 0x80 then 0x80 - h, true
        else invalid_arg "Ordpath.unpack: bad header byte"
      in
      if pos + n >= len + 1 then invalid_arg "Ordpath.unpack: truncated";
      let u = ref 0 in
      for i = pos + 1 to pos + n do
        u := (!u lsl 8) lor Char.code s.[i]
      done;
      let v = if neg then !u - (1 lsl (8 * n)) else !u in
      go (pos + n + 1) (v :: acc)
    end
  in
  of_components (go 0 [])

let compare_packed (a : string) (b : string) = String.compare a b

let is_packed_prefix p t =
  let lp = String.length p and lt = String.length t in
  lp <= lt && String.equal p (String.sub t 0 lp)

let is_packed_strict_prefix p t =
  String.length p < String.length t && is_packed_prefix p t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
