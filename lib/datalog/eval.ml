exception Unsafe of string
exception Unstratifiable of string

(* Rule-evaluation counters (Obs.Metrics.default): how much bottom-up
   work the logical executions of the axioms perform. *)
let m_clause_evals =
  Obs.Metrics.counter Obs.Metrics.default "datalog_clause_evals_total"
    ~help:"Clause body evaluations across all solve calls"

let m_facts_derived =
  Obs.Metrics.counter Obs.Metrics.default "datalog_facts_derived_total"
    ~help:"Fresh facts added to the database by solve"

let m_rounds =
  Obs.Metrics.counter Obs.Metrics.default "datalog_seminaive_rounds_total"
    ~help:"Semi-naive delta rounds across all solve calls"

let m_solves =
  Obs.Metrics.counter Obs.Metrics.default "datalog_solves_total"
    ~help:"Bottom-up solve calls (semi-naive and naive)"

module StrMap = Map.Make (String)
module StrSet = Set.Make (String)

(* --- substitutions ---------------------------------------------------- *)

type subst = Term.t StrMap.t

let apply_term (s : subst) = function
  | Term.Var v as t -> (match StrMap.find_opt v s with Some g -> g | None -> t)
  | t -> t

let apply_atom s (a : Clause.atom) =
  { a with Clause.args = List.map (apply_term s) a.Clause.args }

(* Match a pattern atom against a ground tuple, extending [s]. *)
let match_tuple s (pattern : Term.t list) (tuple : Term.t list) : subst option =
  let rec go s ps ts =
    match ps, ts with
    | [], [] -> Some s
    | p :: ps, t :: ts ->
      (match apply_term s p with
       | Term.Var v -> go (StrMap.add v t s) ps ts
       | g -> if Term.equal g t then go s ps ts else None)
    | _ -> None
  in
  go s pattern tuple

let is_ground_atom s (a : Clause.atom) =
  List.for_all (fun t -> Term.is_ground (apply_term s t)) a.Clause.args

let eval_cmp s op x y : bool option =
  match apply_term s x, apply_term s y with
  | (Term.Var _, _ | _, Term.Var _) -> None
  | gx, gy ->
    let c = Term.compare gx gy in
    Some
      (match op with
       | Clause.Lt -> c < 0
       | Clause.Le -> c <= 0
       | Clause.Gt -> c > 0
       | Clause.Ge -> c >= 0
       | Clause.Eq -> c = 0
       | Clause.Ne -> c <> 0)

(* --- stratification --------------------------------------------------- *)

let stratify (program : Clause.t list) =
  let idb =
    List.fold_left
      (fun acc (c : Clause.t) -> StrSet.add c.Clause.head.Clause.pred acc)
      StrSet.empty program
  in
  let strata = ref StrMap.empty in
  let stratum p = Option.value ~default:0 (StrMap.find_opt p !strata) in
  (* In a stratifiable program every stratum is below the number of IDB
     predicates; a stratum exceeding it witnesses a negative cycle. *)
  let n = StrSet.cardinal idb in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (c : Clause.t) ->
        let h = c.Clause.head.Clause.pred in
        List.iter
          (fun lit ->
            let requirement =
              match lit with
              | Clause.Pos a when StrSet.mem a.Clause.pred idb ->
                Some (stratum a.Clause.pred)
              | Clause.Neg a when StrSet.mem a.Clause.pred idb ->
                Some (stratum a.Clause.pred + 1)
              | Clause.Pos _ | Clause.Neg _ | Clause.Cmp _ -> None
            in
            match requirement with
            | Some r when stratum h < r ->
              if r > n then
                raise (Unstratifiable "negation through a recursive cycle");
              strata := StrMap.add h r !strata;
              changed := true
            | _ -> ())
          c.Clause.body)
      program
  done;
  StrSet.fold (fun p acc -> (p, stratum p) :: acc) idb []
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)

(* --- body evaluation --------------------------------------------------

   Positive literals are consumed left to right; negations and comparisons
   are deferred until their variables are bound (they always become bound,
   by the safety check).  [source] selects the fact source for the k-th
   positive literal, which is how the semi-naive pass restricts one
   occurrence to the delta. *)

let eval_body ~(source : int -> Clause.atom -> Term.t list list) ~neg_db body
    (emit : subst -> unit) =
  let try_constraints s constraints =
    (* Returns [Some remaining] if no bound constraint failed. *)
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | (Clause.Neg a as c) :: rest ->
        if is_ground_atom s a then
          if Db.mem neg_db (apply_atom s a) then None else go acc rest
        else go (c :: acc) rest
      | (Clause.Cmp (op, x, y) as c) :: rest ->
        (match eval_cmp s op x y with
         | Some true -> go acc rest
         | Some false -> None
         | None -> go (c :: acc) rest)
      | Clause.Pos _ :: _ -> assert false
    in
    go [] constraints
  in
  let positives =
    List.filteri (fun _ l -> match l with Clause.Pos _ -> true | _ -> false)
      body
  in
  let constraints =
    List.filter (function Clause.Pos _ -> false | _ -> true) body
  in
  let rec go k s positives constraints =
    match try_constraints s constraints with
    | None -> ()
    | Some constraints ->
      (match positives with
       | [] ->
         (* Safety guarantees constraints are ground here. *)
         if constraints = [] then emit s
         else (
           match try_constraints s constraints with
           | Some [] -> emit s
           | Some _ | None -> ())
       | Clause.Pos a :: rest ->
         let pattern = List.map (apply_term s) a.Clause.args in
         List.iter
           (fun tuple ->
             match match_tuple s pattern tuple with
             | Some s' -> go (k + 1) s' rest constraints
             | None -> ())
           (source k a)
       | (Clause.Neg _ | Clause.Cmp _) :: _ -> assert false)
  in
  go 0 StrMap.empty positives constraints

let check_program program =
  List.iter
    (fun c ->
      match Clause.check_safety c with
      | Ok () -> ()
      | Error msg -> raise (Unsafe (msg ^ " in " ^ Clause.to_string c)))
    program

(* --- semi-naive solve -------------------------------------------------- *)

let solve edb program =
  check_program program;
  Obs.Metrics.inc m_solves;
  let strata = stratify program in
  let stratum_of p = Option.value ~default:0 (List.assoc_opt p strata) in
  let max_stratum = List.fold_left (fun m (_, s) -> max m s) 0 strata in
  let db = ref edb in
  for s = 0 to max_stratum do
    let clauses =
      List.filter
        (fun (c : Clause.t) -> stratum_of c.Clause.head.Clause.pred = s)
        program
    in
    let stratum_preds =
      List.fold_left
        (fun acc (c : Clause.t) -> StrSet.add c.Clause.head.Clause.pred acc)
        StrSet.empty clauses
    in
    (* Round 0: every clause against the full database. *)
    let fresh = ref [] in
    let run_clause ~delta_at ~delta (c : Clause.t) =
      Obs.Metrics.inc m_clause_evals;
      let source k (a : Clause.atom) =
        let from_db =
          if delta_at = Some k then
            Db.matching delta a.Clause.pred
              (List.map (fun _ -> Term.Var "_any") a.Clause.args)
          else Db.matching !db a.Clause.pred a.Clause.args
        in
        from_db
      in
      eval_body ~source ~neg_db:!db c.Clause.body (fun subst ->
          let head = apply_atom subst c.Clause.head in
          if not (Db.mem !db head) then begin
            db := Db.add !db head;
            Obs.Metrics.inc m_facts_derived;
            fresh := head :: !fresh
          end)
    in
    List.iter (fun c -> run_clause ~delta_at:None ~delta:Db.empty c) clauses;
    (* Semi-naive rounds: one positive occurrence restricted to delta. *)
    let rec iterate delta_facts =
      if delta_facts <> [] then begin
        Obs.Metrics.inc m_rounds;
        let delta = Db.add_all Db.empty delta_facts in
        fresh := [];
        List.iter
          (fun (c : Clause.t) ->
            let positive_preds =
              List.filteri (fun _ l ->
                  match l with Clause.Pos _ -> true | _ -> false)
                c.Clause.body
            in
            List.iteri
              (fun k lit ->
                match lit with
                | Clause.Pos a when StrSet.mem a.Clause.pred stratum_preds ->
                  run_clause ~delta_at:(Some k) ~delta c
                | Clause.Pos _ | Clause.Neg _ | Clause.Cmp _ -> ())
              positive_preds)
          clauses;
        iterate !fresh
      end
    in
    iterate !fresh
  done;
  !db

(* The delta source above matches all tuples of the delta relation; the
   caller still unifies against the pattern, so correctness holds, but we
   refine it here to use the pattern for index access. *)

let query edb program pred pattern =
  let db = solve edb program in
  Db.matching db pred pattern

(* --- naive reference --------------------------------------------------- *)

let naive_solve edb program =
  check_program program;
  Obs.Metrics.inc m_solves;
  let strata = stratify program in
  let stratum_of p = Option.value ~default:0 (List.assoc_opt p strata) in
  let max_stratum = List.fold_left (fun m (_, s) -> max m s) 0 strata in
  let db = ref edb in
  for s = 0 to max_stratum do
    let clauses =
      List.filter
        (fun (c : Clause.t) -> stratum_of c.Clause.head.Clause.pred = s)
        program
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (c : Clause.t) ->
          Obs.Metrics.inc m_clause_evals;
          let source _k (a : Clause.atom) =
            Db.matching !db a.Clause.pred a.Clause.args
          in
          eval_body ~source ~neg_db:!db c.Clause.body (fun subst ->
              let head = apply_atom subst c.Clause.head in
              if not (Db.mem !db head) then begin
                db := Db.add !db head;
                Obs.Metrics.inc m_facts_derived;
                changed := true
              end))
        clauses
    done
  done;
  !db
