(** Policy generators.

    {!hospital} scales the axiom-13 policy to the {!Gen_doc} databases
    (same roles, same shapes, patients registered as users).

    {!random} emits arbitrary accept/deny rule sequences over a pool of
    path templates — input for the policy-size scaling bench (E9) and for
    differential testing. *)

val hospital : Gen_doc.config -> Core.Policy.t
(** The figure-3 roles, one user per generated patient, and the twelve
    axiom-13 rules. *)

val hospital_staff : string list
(** The non-patient logins of {!hospital}:
    [beaufort; laporte; richard]. *)

type random_config = {
  rules : int;
  deny_fraction : float;
  seed : int;
}

val path_pool : string list
(** The default rule-path pool of {!random} — {!Gen_doc}-schema paths,
    downward and predicate-bearing alike. *)

val random : ?paths:string list -> random_config -> Core.Policy.t
(** Roles [r1 <- r2 <- u(user)]; rules target the {!Gen_doc} schema's
    element names unless a custom [paths] pool is supplied. *)
