(** Synthetic medical-records databases scaling the figure-2 schema: a
    [patients] root holding one element per patient (named after the
    patient, as in the paper), each with a service, an optional diagnosis
    and a visit history.  Deterministic in the seed. *)

type config = {
  patients : int;
  visits_per_patient : int;  (** upper bound; actual count is random *)
  diagnosed_fraction : float;  (** patients with a diagnosis posed *)
  seed : int;
}

val default : config
(** 50 patients, up to 3 visits, 0.8 diagnosed, seed 42. *)

val generate : config -> Xmldoc.Document.t

val patient_names : config -> string list
(** The patient element names of the generated database, in order —
    usable as [$USER] logins. *)

val services : string list
val diagnoses : string list

val pick_labelled :
  Prng.t -> Xmldoc.Document.t -> label:string -> count:int ->
  Prng.t * Ordpath.t list
(** [count] update targets drawn (with replacement) among the nodes
    carrying [label], via the document's per-label index — no tree scan.
    Empty when no node carries the label. *)

val dtd : config -> string
(** A document type matching {!generate}'s output (one [ELEMENT]
    declaration per patient name, plus the record structure), parseable
    by {!Xmldoc.Schema.of_string}. *)
