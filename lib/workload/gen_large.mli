(** Large synthetic documents for the million-node hot path (bench E25
    and the streaming-ingest smoke): 10⁵–10⁶ nodes with Zipf-skewed
    element labels, so query and update mixes drawn from the same
    distribution concentrate on a hot label set with a long tail.
    Deterministic in the seed: {!generate} and {!write_xml} replay the
    same event stream, so the streamed bytes re-parse to exactly the
    document {!generate} builds. *)

type config = {
  target_nodes : int;  (** approximate total node count (document model) *)
  distinct_labels : int;  (** size of the label alphabet [e0..e{n-1}] *)
  zipf_s : float;  (** skew exponent; rank [k] has weight [1/(k+1)^s] *)
  max_depth : int;  (** nesting bound below the root element *)
  max_children : int;  (** fan-out bound per interior element *)
  attr_fraction : float;  (** elements carrying an [id] attribute *)
  text_fraction : float;  (** interior elements cut short by a text leaf *)
  text_len : int;
      (** minimum byte length of text payloads — short numeric payloads
          are padded up to it (0 = no padding).  Grows the byte volume
          without growing the node count, which is how the
          streaming-ingest smoke reaches ≥50 MB at ~10⁶ nodes. *)
  seed : int;
}

val default : config
(** 100k nodes, 64 labels, s = 1.1, depth ≤ 10, fan-out ≤ 8, no text
    padding, seed 42. *)

val generate : config -> Xmldoc.Document.t

val write_xml : config -> out_channel -> unit
(** Streams the same document as XML bytes without materialising it:
    memory stays bounded by the nesting depth.  Feed it through a pipe or
    file into {!Xmldoc.Xml_parse.flat_of_channel} for end-to-end
    streaming ingest. *)

val to_xml_string : config -> string
(** [write_xml] into a string (small configs and tests). *)

val label_of_rank : int -> string
(** [e<k>]; rank 0 is the hottest label. *)

val sample_label : config -> Prng.t -> Prng.t * string
(** One Zipf draw from the label alphabet. *)

val sample_rank : config -> Prng.t -> Prng.t * int

val queries : config -> Prng.t -> count:int -> Prng.t * string list
(** Descendant queries [//label] with Zipf-sampled labels — the E25 read
    mix. *)

val pick_update_targets :
  config -> Prng.t -> Xmldoc.Document.t -> count:int ->
  Prng.t * Ordpath.t list
(** Update targets drawn by Zipf label then uniformly among that label's
    nodes (skips labels absent from the document). *)
