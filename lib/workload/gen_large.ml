open Xmldoc

type config = {
  target_nodes : int;
  distinct_labels : int;
  zipf_s : float;
  max_depth : int;
  max_children : int;
  attr_fraction : float;
  text_fraction : float;
  text_len : int;
  seed : int;
}

let default =
  {
    target_nodes = 100_000;
    distinct_labels = 64;
    zipf_s = 1.1;
    max_depth = 10;
    max_children = 8;
    attr_fraction = 0.2;
    text_fraction = 0.4;
    text_len = 0;
    seed = 42;
  }

let label_of_rank k = "e" ^ string_of_int k

(* Cumulative Zipf weights over label ranks: rank k (0-based) has weight
   1/(k+1)^s, so low ranks are hot and the tail is long. *)
let zipf_cum config =
  let n = max 1 config.distinct_labels in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (k + 1) ** config.zipf_s));
    cum.(k) <- !total
  done;
  cum

let rand_float rng =
  let rng, v = Prng.int rng (1 lsl 30) in
  (rng, float_of_int v /. float_of_int (1 lsl 30))

let sample_rank_cum rng cum =
  let rng, u = rand_float rng in
  let target = u *. cum.(Array.length cum - 1) in
  (* Smallest rank whose cumulative weight exceeds the dart. *)
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) > target then hi := mid else lo := mid + 1
  done;
  (rng, !lo)

let sample_rank config rng = sample_rank_cum rng (zipf_cum config)

let sample_label config rng =
  let rng, k = sample_rank config rng in
  (rng, label_of_rank k)

(* The single event source both frontends share: {!generate} and
   {!write_xml} replay exactly the same sequence, so the streamed bytes
   re-parse to the very document {!generate} builds. *)
type sink = {
  start_element : string -> unit;
  attribute : string -> string -> unit;
  text : string -> unit;
  end_element : string -> unit;
}

let run config sink =
  let cum = zipf_cum config in
  let rng = ref (Prng.create config.seed) in
  let rand_int bound =
    let r, v = Prng.int !rng bound in
    rng := r;
    v
  in
  let chance p =
    let r, b = Prng.bool !rng p in
    rng := r;
    b
  in
  let pick_label () =
    let r, k = sample_rank_cum !rng cum in
    rng := r;
    label_of_rank k
  in
  (* Node accounting matches the document model: element = 1, attribute =
     2 (the value becomes a text child), text = 1; the document node and
     the root element cost the initial 2. *)
  let budget = ref (max 0 (config.target_nodes - 2)) in
  let rec node depth =
    if !budget > 0 then begin
      decr budget;
      let lbl = pick_label () in
      sink.start_element lbl;
      if !budget >= 2 && chance config.attr_fraction then begin
        budget := !budget - 2;
        sink.attribute "id" (string_of_int (rand_int 1_000_000))
      end;
      if depth >= config.max_depth || chance config.text_fraction then begin
        if !budget > 0 then begin
          decr budget;
          let s = "t" ^ string_of_int (rand_int 10_000) in
          let s =
            (* Padding grows bytes without growing the node count — how
               the streaming-ingest smoke reaches tens of MB. *)
            if String.length s >= config.text_len then s
            else s ^ String.make (config.text_len - String.length s) 'x'
          in
          sink.text s
        end
      end
      else begin
        let kids = 1 + rand_int (max 1 config.max_children) in
        for _ = 1 to kids do
          node (depth + 1)
        done
      end;
      sink.end_element lbl
    end
  in
  sink.start_element "root";
  while !budget > 0 do
    node 1
  done;
  sink.end_element "root"

type frame = { name : string; mutable rev_kids : Tree.t list }

let generate config =
  let stack = ref [ { name = "#document"; rev_kids = [] } ] in
  let push k =
    match !stack with
    | f :: _ -> f.rev_kids <- k :: f.rev_kids
    | [] -> assert false
  in
  run config
    {
      start_element =
        (fun name -> stack := { name; rev_kids = [] } :: !stack);
      attribute = (fun n v -> push (Tree.attr n v));
      text = (fun s -> push (Tree.text s));
      end_element =
        (fun _ ->
          match !stack with
          | f :: rest ->
            stack := rest;
            push (Tree.element f.name (List.rev f.rev_kids))
          | [] -> assert false);
    };
  match !stack with
  | [ { rev_kids = [ root ]; _ } ] -> Document.of_tree root
  | _ -> assert false

let emit_xml config ~out =
  let buf = Buffer.create 65536 in
  let spill () =
    if Buffer.length buf >= 32768 then begin
      out (Buffer.contents buf);
      Buffer.clear buf
    end
  in
  (* Generated labels and payloads are alphanumeric, so no escaping is
     needed; no whitespace is emitted between tags, keeping the byte
     stream an exact serialisation of {!generate}'s document. *)
  let open_tag = ref false in
  let close_open () =
    if !open_tag then begin
      Buffer.add_char buf '>';
      open_tag := false
    end
  in
  run config
    {
      start_element =
        (fun name ->
          close_open ();
          Buffer.add_char buf '<';
          Buffer.add_string buf name;
          open_tag := true;
          spill ());
      attribute =
        (fun n v ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf n;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf v;
          Buffer.add_char buf '"');
      text =
        (fun s ->
          close_open ();
          Buffer.add_string buf s);
      end_element =
        (fun name ->
          if !open_tag then begin
            Buffer.add_string buf "/>";
            open_tag := false
          end
          else begin
            Buffer.add_string buf "</";
            Buffer.add_string buf name;
            Buffer.add_char buf '>'
          end;
          spill ());
    };
  out (Buffer.contents buf);
  Buffer.clear buf

let write_xml config oc = emit_xml config ~out:(output_string oc)

let to_xml_string config =
  let all = Buffer.create (16 * config.target_nodes) in
  emit_xml config ~out:(Buffer.add_string all);
  Buffer.contents all

let queries config rng ~count =
  let rec go rng acc i =
    if i = count then (rng, List.rev acc)
    else
      let rng, lbl = sample_label config rng in
      go rng (("//" ^ lbl) :: acc) (i + 1)
  in
  go rng [] 0

let pick_update_targets config rng doc ~count =
  let rec go rng acc i =
    if i = count then (rng, List.rev acc)
    else
      let rng, lbl = sample_label config rng in
      match Document.by_label doc lbl with
      | [] -> go rng acc (i + 1)
      | ids ->
        let rng, id = Prng.pick rng ids in
        go rng (id :: acc) (i + 1)
  in
  go rng [] 0
