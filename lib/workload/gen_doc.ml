open Xmldoc

type config = {
  patients : int;
  visits_per_patient : int;
  diagnosed_fraction : float;
  seed : int;
}

let default =
  { patients = 50; visits_per_patient = 3; diagnosed_fraction = 0.8; seed = 42 }

let services =
  [
    "otolarynology"; "pneumology"; "cardiology"; "neurology"; "oncology";
    "pediatrics"; "radiology"; "surgery";
  ]

let diagnoses =
  [
    "tonsillitis"; "pneumonia"; "arrhythmia"; "migraine"; "lymphoma";
    "bronchitis"; "fracture"; "appendicitis"; "influenza"; "sinusitis";
  ]

let first_names =
  [
    "franck"; "robert"; "albert"; "gaston"; "henri"; "marie"; "claire";
    "paul"; "lucie"; "jean"; "sophie"; "louis"; "emma"; "hugo"; "jules";
    "lea"; "nina"; "victor"; "alice"; "simon";
  ]

let patient_name i =
  let base = List.nth first_names (i mod List.length first_names) in
  if i < List.length first_names then base
  else Printf.sprintf "%s%d" base (i / List.length first_names)

let patient_names config = List.init config.patients patient_name

let visit rng i =
  let rng, note =
    Prng.pick rng
      [ "routine"; "follow-up"; "emergency"; "vaccination"; "checkup" ]
  in
  let rng, day = Prng.int rng 28 in
  let rng, month = Prng.int rng 12 in
  ( rng,
    Tree.element "visit"
      [
        Tree.attr "n" (string_of_int (i + 1));
        Tree.element "date"
          [ Tree.text (Printf.sprintf "2004-%02d-%02d" (month + 1) (day + 1)) ];
        Tree.element "note" [ Tree.text note ];
      ] )

let patient rng i config =
  let rng, service = Prng.pick rng services in
  let rng, diagnosed = Prng.bool rng config.diagnosed_fraction in
  let rng, diagnosis_text =
    if diagnosed then
      let rng, d = Prng.pick rng diagnoses in
      (rng, [ Tree.text d ])
    else (rng, [])
  in
  let rng, visit_count =
    if config.visits_per_patient = 0 then (rng, 0)
    else Prng.int rng (config.visits_per_patient + 1)
  in
  let rng, visits =
    let rec go rng acc i =
      if i = visit_count then (rng, List.rev acc)
      else
        let rng, v = visit rng i in
        go rng (v :: acc) (i + 1)
    in
    go rng [] 0
  in
  ( rng,
    Tree.element (patient_name i)
      (Tree.element "service" [ Tree.text service ]
       :: Tree.element "diagnosis" diagnosis_text
       :: visits) )

let dtd config =
  let names = patient_names config in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "<!ELEMENT patients (%s)*>\n" (String.concat " | " names));
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "<!ELEMENT %s (service, diagnosis, visit*)>\n" name))
    names;
  Buffer.add_string buf
    {|<!ELEMENT service (#PCDATA)>
<!ELEMENT diagnosis (#PCDATA)>
<!ELEMENT visit (date, note)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ATTLIST visit n CDATA #REQUIRED>
|};
  Buffer.contents buf

let pick_labelled rng doc ~label ~count =
  match Document.by_label doc label with
  | [] -> (rng, [])
  | ids ->
    let rec go rng acc i =
      if i = count then (rng, List.rev acc)
      else
        let rng, id = Prng.pick rng ids in
        go rng (id :: acc) (i + 1)
    in
    go rng [] 0

let generate config =
  let rng = Prng.create config.seed in
  let _, patients =
    let rec go rng acc i =
      if i = config.patients then (rng, List.rev acc)
      else
        let rng, p = patient rng i config in
        go rng (p :: acc) (i + 1)
    in
    go rng [] 0
  in
  Document.of_tree (Tree.element "patients" patients)
