(** Live monitoring endpoint: a dependency-free HTTP/1.0 exporter over
    [Unix] sockets serving the process-wide [Obs] registries.

    Endpoints:
    - [GET /metrics] — Prometheus text exposition
      ([text/plain; version=0.0.4]) of every counter, gauge, labelled
      family and histogram;
    - [GET /healthz] — JSON probe report; HTTP 200 when every probe
      passes, 503 otherwise (so [curl -f] has proper liveness-probe
      exit semantics);
    - [GET /tracez] — completed span trees as JSON
      ([?chrome=1] for Chrome trace-event format);
    - [GET /auditz] — the audit ring as JSON;
    - [GET /alertz] — the security-anomaly engine ([Obs.Anomaly]):
      alert states, the firing/resolved timeline and the cumulative
      per-user / per-subtree denial report;
    - [GET /timeseriez] — the windowed time-series ring
      ([Obs.Timeseries]): per-window counters and latency quantile
      sketches;
    - [GET /eventz] — the transaction event log as JSON;
      [?txn=<id>] filters to one correlation id;
    - [GET /rulez] — per-rule decision telemetry ([Obs.Rulestats]):
      matched/decided/overridden counters and permission classes;
    - [GET /slowz] — the slow-query plan ring ([Obs.Planlog]);
    - [GET /explainz] — the recent-query plan ring.

    [HEAD] is answered on every endpoint: same status and headers
    (including the [Content-Length] the GET would carry), empty body.
    Every response carries [Cache-Control: no-store] — a scrape is a
    live reading and must not be served stale by an intermediary.

    The accept loop runs on a dedicated systhread (one more per in-flight
    connection), so scrapes proceed concurrently with mutations on the
    main domain and with pool fan-outs. *)

type t
(** A running exporter. *)

type probe = { name : string; ok : bool; detail : string }

val probe : name:string -> ok:bool -> detail:string -> probe

val writable_dir_probe : string -> probe
(** Health of a journal directory: exists, is a directory, and a probe
    file can actually be created in it (checked by creating one — root
    passes [access(2)] even on read-only directories). *)

val start :
  ?addr:string -> ?port:int -> ?probes:(unit -> probe list) -> unit -> t
(** Binds [addr] (default loopback) on [port] (default 0 = ephemeral;
    read the chosen one back with {!port}) and serves until {!stop}.
    [probes] is sampled on each [/healthz] request.
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int

val stop : t -> unit
(** Closes the listening socket and joins the accept loop.  Idempotent. *)

(**/**)

(* Exposed for tests. *)
type response = { status : int; content_type : string; body : string }

val handle :
  probes:(unit -> probe list) -> meth:string -> target:string -> response

val split_target : string -> string * (string * string) list
