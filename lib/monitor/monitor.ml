(* A minimal HTTP/1.0 exporter over Unix sockets: one accept-loop thread,
   one short-lived thread per connection, no third-party HTTP stack.  The
   endpoints only read the process-wide Obs registries (plus the caller's
   health probes), so serving a scrape never takes any lock a mutation
   path holds for long — a write storm and a scrape proceed together.

   Threads (not pool domains) carry the accept loop: the Core.Pool is a
   batch executor whose workers live only for one fan-out, while the
   exporter must outlive every batch.  systhreads interleave with the
   domain runtime, so a blocked accept costs nothing. *)

type probe = { name : string; ok : bool; detail : string }

let probe ~name ~ok ~detail = { name; ok; detail }

let writable_dir_probe dir =
  let ok, detail =
    if not (Sys.file_exists dir) then (false, "missing")
    else if not (Sys.is_directory dir) then (false, "not a directory")
    else
      (* access(2) answers for the effective uid — but root passes W_OK
         on read-only directories, so prove writability by creating and
         removing a probe file. *)
      let tmp = Filename.concat dir ".healthz-probe" in
      match
        let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
        Unix.close fd;
        Sys.remove tmp
      with
      | () -> (true, "writable")
      | exception (Unix.Unix_error _ | Sys_error _) -> (false, "not writable")
  in
  { name = "journal_dir"; ok; detail }

let f_requests =
  Obs.Metrics.family Obs.Metrics.default "monitor_requests_total"
    ~labels:[ "path"; "status" ]
    ~help:"HTTP requests served by the monitoring endpoint"

type t = {
  sock : Unix.file_descr;
  m_port : int;
  thread : Thread.t;
  stopping : bool Atomic.t;
}

let port t = t.m_port

type response = { status : int; content_type : string; body : string }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let json_response status body =
  { status; content_type = "application/json"; body }

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let health_body probes =
  let ok = List.for_all (fun p -> p.ok) probes in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"status\":%s,\"probes\":["
       (Obs.Metrics.json_string (if ok then "ok" else "degraded")));
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%s,\"ok\":%b,\"detail\":%s}"
           (Obs.Metrics.json_string p.name)
           p.ok
           (Obs.Metrics.json_string p.detail)))
    probes;
  Buffer.add_string buf "]}";
  (ok, Buffer.contents buf)

(* "/eventz?txn=12" -> ("/eventz", [("txn", "12")]) *)
let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    let path = String.sub target 0 i in
    let query = String.sub target (i + 1) (String.length target - i - 1) in
    let params =
      List.filter_map
        (fun kv ->
          match String.index_opt kv '=' with
          | None -> None
          | Some j ->
            Some
              ( String.sub kv 0 j,
                String.sub kv (j + 1) (String.length kv - j - 1) ))
        (String.split_on_char '&' query)
    in
    (path, params)

let handle ~probes ~meth ~target =
  (* HEAD is GET without the body; [serve_connection] omits it while
     keeping the Content-Length the GET would have carried. *)
  if meth <> "GET" && meth <> "HEAD" then
    json_response 405 "{\"error\":\"only GET and HEAD are supported\"}"
  else
    let path, params = split_target target in
    match path with
    | "/metrics" ->
      {
        status = 200;
        content_type = prometheus_content_type;
        body = Obs.Metrics.to_prometheus Obs.Metrics.default;
      }
    | "/healthz" ->
      let ok, body = health_body (probes ()) in
      json_response (if ok then 200 else 503) body
    | "/tracez" ->
      if List.mem_assoc "chrome" params then
        json_response 200 (Obs.Trace.to_chrome_json ())
      else json_response 200 (Obs.Trace.roots_to_json ())
    | "/auditz" -> json_response 200 (Obs.Audit.to_json Obs.Audit.default)
    | "/alertz" -> json_response 200 (Obs.Anomaly.to_json Obs.Anomaly.default)
    | "/timeseriez" ->
      json_response 200 (Obs.Timeseries.to_json Obs.Timeseries.default)
    | "/rulez" -> json_response 200 (Obs.Rulestats.to_json ())
    | "/slowz" -> json_response 200 (Obs.Planlog.slow_json ())
    | "/explainz" -> json_response 200 (Obs.Planlog.recent_json ())
    | "/eventz" -> (
      match List.assoc_opt "txn" params with
      | None -> json_response 200 (Obs.Events.to_json ())
      | Some v -> (
        match int_of_string_opt v with
        | Some txn when txn > 0 ->
          json_response 200 (Obs.Events.to_json ~txn ())
        | _ ->
          json_response 400
            "{\"error\":\"txn must be a positive integer\"}"))
    | _ -> json_response 404 "{\"error\":\"unknown endpoint\"}"

(* Read until the blank line ending the request head; HTTP/1.0, no body
   on GET, so nothing else is needed.  Bounded so a hostile peer cannot
   grow the buffer. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let has_terminator =
          let rec find i =
            i >= 0
            && (String.sub s i 2 = "\n\n"
                || (i + 3 < String.length s && String.sub s i 4 = "\r\n\r\n")
                || find (i - 1))
          in
          String.length s >= 2 && find (String.length s - 2)
        in
        if has_terminator then s else go ()
      end
  in
  go ()

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.of_string s in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let serve_connection ~probes fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let head = read_head fd in
      let request_line =
        match String.index_opt head '\n' with
        | Some i -> String.trim (String.sub head 0 i)
        | None -> String.trim head
      in
      let meth, resp =
        match String.split_on_char ' ' request_line with
        | meth :: target :: _ -> (meth, handle ~probes ~meth ~target)
        | _ ->
          ("GET", json_response 400 "{\"error\":\"malformed request line\"}")
      in
      let path_label =
        match String.split_on_char ' ' request_line with
        | _ :: target :: _ -> fst (split_target target)
        | _ -> "malformed"
      in
      Obs.Metrics.inc
        (Obs.Metrics.labels f_requests
           [ path_label; string_of_int resp.status ]);
      (* Every response is a live reading — caching a scrape would serve
         stale telemetry, so tell intermediaries not to store it.  A HEAD
         response carries the GET's Content-Length but no body. *)
      write_all fd
        (Printf.sprintf
           "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: \
            %d\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n%s"
           resp.status (status_text resp.status) resp.content_type
           (String.length resp.body)
           (if meth = "HEAD" then "" else resp.body)))

let no_probes () = []

let start ?(addr = "127.0.0.1") ?(port = 0) ?(probes = no_probes) () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port))
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 16;
  let m_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.accept sock with
          | conn, _ ->
            ignore (Thread.create (fun () -> serve_connection ~probes conn) ());
            loop ()
          | exception Unix.Unix_error _ ->
            (* The listening socket was closed by [stop] (or the accept
               failed terminally); either way the loop ends. *)
            if not (Atomic.get stopping) then ()
        in
        loop ())
      ()
  in
  { sock; m_port; thread; stopping }

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Thread.join t.thread
  end
