(** Unsecured XUpdate evaluation — the semantics of §3.4 (formulae 2–9),
    with target selection on the {e source} database.  This is the layer
    the paper's §2.2 criticises when used directly by untrusted subjects;
    the secure evaluator in [Core.Secure_update] re-derives it with
    selection on the user's view. *)

type outcome = {
  doc : Xmldoc.Document.t;  (** the new database [dbnew] *)
  targets : Ordpath.t list;
      (** nodes addressed by [PATH], document order *)
  relabelled : Ordpath.t list;
      (** nodes whose label changed (rename/update) *)
  removed : Ordpath.t list;  (** roots of removed subtrees *)
  inserted : Ordpath.t list;
      (** roots of freshly inserted copies of [TREE] *)
  skipped : (Ordpath.t * string) list;
      (** targets the operation does not apply to, with reasons (e.g.
          appending under a text node) *)
}

val apply :
  ?vars:(string * Xpath.Value.t) list -> Xmldoc.Document.t -> Op.t -> outcome
(** @raise Xpath.Eval.Error if the path does not select nodes. *)

val apply_all :
  ?vars:(string * Xpath.Value.t) list ->
  Xmldoc.Document.t -> Op.t list -> Xmldoc.Document.t
(** Folds {!apply} over a modification list, as an
    [<xupdate:modifications>] document does. *)

val affected_roots : outcome -> Ordpath.t list
(** The ordpath range the operation touched: every node whose [node(n,v)]
    fact differs between [db] and [dbnew] is one of these roots or a
    descendant of one (rename/update → the relabelled nodes, remove → the
    deleted subtree roots, insert/append → the freshly numbered roots).
    Input for the delta-aware invalidation of [Core.Delta]. *)
