(** The XUpdate XML wire syntax (Laux & Martin, xmldb.org working draft):
    parses an [<xupdate:modifications>] document into {!Op.t} values.

    Supported instructions: [xupdate:update], [xupdate:rename],
    [xupdate:append], [xupdate:insert-before], [xupdate:insert-after],
    [xupdate:remove].  Content may mix literal XML with the
    [xupdate:element] / [xupdate:attribute] / [xupdate:text] /
    [xupdate:comment] constructors.

    An insertion instruction containing several top-level content nodes
    expands into one {!Op.t} per node (ordered so the result preserves
    content order). *)

exception Error of string

val ops_of_string : ?strip_whitespace:bool -> string -> Op.t list
(** [strip_whitespace] (default [true]) is forwarded to the XML parser;
    the journal passes [false] so whitespace-only text content survives
    a round trip.
    @raise Error on malformed modification documents,
    [Xmldoc.Xml_parse.Error] on malformed XML,
    [Xpath.Parser.Error] on a bad [select] path. *)

val ops_of_tree : Xmldoc.Tree.t -> Op.t list

val to_tree : Op.t list -> Xmldoc.Tree.t
(** The [<xupdate:modifications>] element (with version and namespace
    attributes) for a list of operations — the journal embeds it inside
    its per-transaction envelope. *)

val to_string : ?indent:bool -> Op.t list -> string
(** Re-prints operations as an [<xupdate:modifications>] document.
    [indent] defaults to [true]; the journal prints compactly
    ([~indent:false]) so reparsing with whitespace kept is exact. *)
