module D = Xmldoc.Document

type outcome = {
  doc : D.t;
  targets : Ordpath.t list;
  relabelled : Ordpath.t list;
  removed : Ordpath.t list;
  inserted : Ordpath.t list;
  skipped : (Ordpath.t * string) list;
}

let empty_outcome doc targets =
  { doc; targets; relabelled = []; removed = []; inserted = []; skipped = [] }

let can_hold_children doc id =
  match D.kind doc id with
  | Some (Xmldoc.Node.Element | Xmldoc.Node.Document) -> true
  | Some (Xmldoc.Node.Text | Xmldoc.Node.Comment | Xmldoc.Node.Attribute)
  | None ->
    false

let relabel_targets outcome ids new_label =
  List.fold_left
    (fun acc id ->
      match D.kind acc.doc id with
      | None -> acc
      | Some Xmldoc.Node.Document ->
        { acc with skipped = (id, "the document node cannot be relabelled") :: acc.skipped }
      | Some _ ->
        {
          acc with
          doc = D.relabel acc.doc id new_label;
          relabelled = id :: acc.relabelled;
        })
    outcome ids

(* Fresh numbers for an inserted subtree come from the paper's
   [create_number(n, n', o, n'')] predicate: allocation is relative to the
   target node [n] and the operation kind [o], against the current
   database.  Content instantiation (value-of) is evaluated on the same
   database, with the target as context — the unsecured semantics. *)
let insert_at ?vars outcome target content where =
  let doc = outcome.doc in
  let tree =
    Content.instantiate ?vars (Xpath.Source.of_document doc) ~context:target
      content
  in
  let skip reason =
    { outcome with skipped = (target, reason) :: outcome.skipped }
  in
  match where with
  | `Append ->
    if not (can_hold_children doc target) then
      skip "only element nodes accept children"
    else
      let doc, id = D.append_tree doc ~parent:target tree in
      { outcome with doc; inserted = id :: outcome.inserted }
  | `Before | `After ->
    let before = where = `Before in
    (match Ordpath.parent target with
     | None -> skip "the document node has no siblings"
     | Some parent ->
       let siblings =
         List.map (fun (n : Xmldoc.Node.t) -> n.id) (D.children doc parent)
       in
       let rec bounds prev = function
         | [] -> (None, None) (* target vanished: treat as skip below *)
         | s :: rest when Ordpath.equal s target ->
           if before then (prev, Some s)
           else (Some s, (match rest with [] -> None | next :: _ -> Some next))
         | s :: rest -> bounds (Some s) rest
       in
       (match bounds None siblings with
        | None, None when not (List.exists (Ordpath.equal target) siblings) ->
          skip "target no longer present"
        | left, right ->
          let doc, id = D.add_subtree doc ~parent ~left ~right tree in
          { outcome with doc; inserted = id :: outcome.inserted }))

let finalize outcome =
  {
    outcome with
    relabelled = List.rev outcome.relabelled;
    removed = List.rev outcome.removed;
    inserted = List.rev outcome.inserted;
    skipped = List.rev outcome.skipped;
  }

let apply ?vars doc op =
  let env = Xpath.Eval.env ?vars doc in
  let targets = Xpath.Eval.select env (Op.path op) in
  let outcome = empty_outcome doc targets in
  let outcome =
    match op with
    | Op.Rename { new_label; _ } -> relabel_targets outcome targets new_label
    | Op.Update { new_label; _ } ->
      (* Formulae 4–5: the children of each addressed node take VNEW. *)
      let children_of id =
        List.map (fun (n : Xmldoc.Node.t) -> n.id) (D.children doc id)
      in
      relabel_targets outcome (List.concat_map children_of targets) new_label
    | Op.Append { content; _ } ->
      List.fold_left
        (fun acc target -> insert_at ?vars acc target content `Append)
        outcome targets
    | Op.Insert_before { content; _ } ->
      List.fold_left
        (fun acc target -> insert_at ?vars acc target content `Before)
        outcome targets
    | Op.Insert_after { content; _ } ->
      List.fold_left
        (fun acc target -> insert_at ?vars acc target content `After)
        outcome targets
    | Op.Remove _ ->
      List.fold_left
        (fun acc target ->
          if Ordpath.equal target Ordpath.document then
            { acc with
              skipped = (target, "the document node cannot be removed") :: acc.skipped
            }
          else if not (D.mem acc.doc target) then
            (* Already gone: PATH selected both an ancestor and its
               descendant. *)
            acc
          else
            {
              acc with
              doc = D.remove_subtree acc.doc target;
              removed = target :: acc.removed;
            })
        outcome targets
  in
  finalize outcome

let apply_all ?vars doc ops =
  List.fold_left (fun doc op -> (apply ?vars doc op).doc) doc ops

(* The ordpath range an operation touched: every node whose facts may
   differ between [db] and [dbnew] lies inside (or descends from) one of
   these roots.  Rename/update relabel a node, so the node and — through
   ancestor-label paths — its subtree may re-select; insert and remove
   introduce or delete a whole subtree.  Skipped targets touched
   nothing. *)
let affected_roots outcome =
  outcome.relabelled @ outcome.removed @ outcome.inserted
