open Xmldoc

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let find_attr name kids =
  List.find_map
    (function Tree.Attr (n, v) when n = name -> Some v | _ -> None)
    kids

let require_select instr kids =
  match find_attr "select" kids with
  | Some path -> Xpath.Parser.parse_path path
  | None -> fail "%s: missing select attribute" instr

let content kids =
  List.filter (function Tree.Attr _ -> false | _ -> true) kids

let select_expr instr kids =
  match find_attr "select" kids with
  | Some s -> Xpath.Parser.parse s
  | None -> fail "%s: missing select attribute" instr

(* Translate xupdate:element / attribute / text / comment / value-of
   constructors; literal XML passes through. *)
let rec build_content (t : Tree.t) : Content.t =
  match t with
  | Tree.Element ("xupdate:element", kids) ->
    (match find_attr "name" kids with
     | None -> fail "xupdate:element: missing name attribute"
     | Some name ->
       Content.Element (name, List.map build_content (content kids)))
  | Tree.Element ("xupdate:attribute", kids) ->
    (match find_attr "name" kids with
     | None -> fail "xupdate:attribute: missing name attribute"
     | Some name ->
       Content.Attr
         ( name,
           List.map
             (function
               | Tree.Text s -> Content.Text s
               | Tree.Element ("xupdate:value-of", ks) ->
                 Content.Value_of (select_expr "xupdate:value-of" ks)
               | _ -> fail "xupdate:attribute: expected text content")
             (content kids) ))
  | Tree.Element ("xupdate:text", kids) ->
    Content.Text
      (String.concat ""
         (List.map
            (function
              | Tree.Text s -> s
              | _ -> fail "xupdate:text: expected text content")
            (content kids)))
  | Tree.Element ("xupdate:comment", kids) ->
    Content.Comment
      (String.concat ""
         (List.map
            (function
              | Tree.Text s -> s
              | _ -> fail "xupdate:comment: expected text content")
            (content kids)))
  | Tree.Element ("xupdate:value-of", kids) ->
    Content.Value_of (select_expr "xupdate:value-of" kids)
  | Tree.Element (name, _kids) when String.length name > 8
                                 && String.sub name 0 8 = "xupdate:" ->
    fail "unexpected instruction %s inside content" name
  | Tree.Element (name, kids) ->
    Content.Element (name, List.map build_content kids)
  | Tree.Attr (name, value) -> Content.Attr (name, [ Content.Text value ])
  | Tree.Text s -> Content.Text s
  | Tree.Comment s -> Content.Comment s

let text_content instr kids =
  match content kids with
  | [ Tree.Text s ] -> s
  | [] -> fail "%s: missing content" instr
  | _ -> fail "%s: expected a single text content" instr

let op_of_instruction (t : Tree.t) : Op.t list =
  match t with
  | Tree.Element (("xupdate:update" as instr), kids) ->
    [ Op.Update { path = require_select instr kids;
                  new_label = text_content instr kids } ]
  | Tree.Element (("xupdate:rename" as instr), kids) ->
    [ Op.Rename { path = require_select instr kids;
                  new_label = text_content instr kids } ]
  | Tree.Element (("xupdate:remove" as instr), kids) ->
    [ Op.Remove { path = require_select instr kids } ]
  | Tree.Element (("xupdate:append" as instr), kids) ->
    let path = require_select instr kids in
    List.map
      (fun c -> Op.Append { path; content = build_content c })
      (content kids)
  | Tree.Element (("xupdate:insert-before" as instr), kids) ->
    let path = require_select instr kids in
    List.map
      (fun c -> Op.Insert_before { path; content = build_content c })
      (content kids)
  | Tree.Element (("xupdate:insert-after" as instr), kids) ->
    let path = require_select instr kids in
    (* Reversed so consecutive insert-afters preserve content order. *)
    List.rev_map
      (fun c -> Op.Insert_after { path; content = build_content c })
      (content kids)
  | Tree.Element (name, _) -> fail "unknown XUpdate instruction %s" name
  | Tree.Text _ -> fail "unexpected text at modification level"
  | Tree.Attr _ | Tree.Comment _ -> []

let ops_of_tree = function
  | Tree.Element ("xupdate:modifications", kids) ->
    List.concat_map op_of_instruction (content kids)
  | t -> fail "expected <xupdate:modifications>, found %s" (Tree.name t)

let ops_of_string ?strip_whitespace src =
  ops_of_tree (Xml_parse.fragment_of_string ?strip_whitespace src)

let rec content_to_tree (c : Content.t) : Tree.t =
  match c with
  | Content.Attr (n, parts) ->
    Tree.Element
      ( "xupdate:attribute",
        Tree.Attr ("name", n) :: List.map content_to_tree parts )
  | Content.Element (n, kids) -> Tree.Element (n, List.map content_to_tree kids)
  | Content.Comment s ->
    (* Raw <!-- --> would be dropped on reparse; use the constructor. *)
    Tree.Element ("xupdate:comment", [ Tree.Text s ])
  | Content.Text s -> Tree.Text s
  | Content.Value_of e ->
    Tree.Element
      ("xupdate:value-of", [ Tree.Attr ("select", Xpath.Ast.to_string e) ])

let op_to_tree (op : Op.t) : Tree.t =
  let select path = Tree.Attr ("select", Xpath.Ast.to_string path) in
  match op with
  | Op.Update { path; new_label } ->
    Tree.Element ("xupdate:update", [ select path; Tree.Text new_label ])
  | Op.Rename { path; new_label } ->
    Tree.Element ("xupdate:rename", [ select path; Tree.Text new_label ])
  | Op.Remove { path } -> Tree.Element ("xupdate:remove", [ select path ])
  | Op.Append { path; content } ->
    Tree.Element ("xupdate:append", [ select path; content_to_tree content ])
  | Op.Insert_before { path; content } ->
    Tree.Element
      ("xupdate:insert-before", [ select path; content_to_tree content ])
  | Op.Insert_after { path; content } ->
    Tree.Element
      ("xupdate:insert-after", [ select path; content_to_tree content ])

let to_tree ops =
  Tree.Element
    ( "xupdate:modifications",
      Tree.Attr ("version", "1.0")
      :: Tree.Attr ("xmlns:xupdate", "http://www.xmldb.org/xupdate")
      :: List.map op_to_tree ops )

let to_string ?(indent = true) ops =
  Xml_print.fragment_to_string ~indent (to_tree ops)
