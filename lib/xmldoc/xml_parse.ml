exception Error of { line : int; column : int; message : string }

(* The parser reads from a refillable sliding buffer rather than a
   string, so the same code path serves both in-memory parsing and
   streaming ingest from a channel: [of_string] and [fold_events] cannot
   disagree because they are the same automaton.  Lookahead never
   exceeds the longest literal ("<![CDATA["), far below the buffer
   size. *)

type state = {
  input : Bytes.t -> int -> int -> int;
      (* [input buf ofs len] reads at most [len] bytes; 0 = end of input *)
  ibuf : Bytes.t;
  mutable lo : int;  (* next unread byte *)
  mutable hi : int;  (* end of valid bytes *)
  mutable at_eof : bool;
  mutable line : int;
  mutable col : int;
  keep_comments : bool;
  strip_whitespace : bool;
}

let buf_size = 65536

let make_state ~input ~keep_comments ~strip_whitespace =
  {
    input;
    ibuf = Bytes.create buf_size;
    lo = 0;
    hi = 0;
    at_eof = false;
    line = 1;
    col = 1;
    keep_comments;
    strip_whitespace;
  }

let input_of_string src =
  let pos = ref 0 in
  fun buf ofs len ->
    let n = min len (String.length src - !pos) in
    Bytes.blit_string src !pos buf ofs n;
    pos := !pos + n;
    n

let refill st =
  if not st.at_eof then begin
    if st.lo > 0 then begin
      let rem = st.hi - st.lo in
      Bytes.blit st.ibuf st.lo st.ibuf 0 rem;
      st.lo <- 0;
      st.hi <- rem
    end;
    let n = st.input st.ibuf st.hi (Bytes.length st.ibuf - st.hi) in
    if n = 0 then st.at_eof <- true else st.hi <- st.hi + n
  end

let ensure st n =
  while st.hi - st.lo < n && not st.at_eof do
    refill st
  done

let fail st message = raise (Error { line = st.line; column = st.col; message })

let eof st =
  ensure st 1;
  st.lo >= st.hi

let peek st =
  ensure st 1;
  if st.lo >= st.hi then '\000' else Bytes.get st.ibuf st.lo

let peek2 st =
  ensure st 2;
  if st.lo + 1 >= st.hi then '\000' else Bytes.get st.ibuf (st.lo + 1)

let advance st =
  ensure st 1;
  if st.lo < st.hi then begin
    if Bytes.get st.ibuf st.lo = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.lo <- st.lo + 1
  end

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected %C" c);
  advance st

let looking_at st prefix =
  let n = String.length prefix in
  ensure st n;
  st.hi - st.lo >= n
  &&
  let rec go i = i = n || (Bytes.get st.ibuf (st.lo + i) = prefix.[i] && go (i + 1)) in
  go 0

let skip_string st prefix =
  if not (looking_at st prefix) then
    fail st (Printf.sprintf "expected %S" prefix);
  String.iter (fun _ -> advance st) prefix

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let buf = Buffer.create 16 in
  while (not (eof st)) && is_name_char (peek st) do
    Buffer.add_char buf (peek st);
    advance st
  done;
  Buffer.contents buf

(* Character and entity references inside text and attribute values. *)
let parse_reference st =
  expect st '&';
  let nbuf = Buffer.create 8 in
  while (not (eof st)) && peek st <> ';' do
    Buffer.add_char nbuf (peek st);
    advance st
  done;
  if eof st then fail st "unterminated entity reference";
  expect st ';';
  let name = Buffer.contents nbuf in
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    let numeric =
      if String.length name > 1 && name.[0] = '#' then
        let body = String.sub name 1 (String.length name - 1) in
        let code =
          if String.length body > 1 && (body.[0] = 'x' || body.[0] = 'X') then
            int_of_string_opt ("0x" ^ String.sub body 1 (String.length body - 1))
          else int_of_string_opt body
        in
        Option.map
          (fun code ->
            let buf = Buffer.create 4 in
            Buffer.add_utf_8_uchar buf (Uchar.of_int code);
            Buffer.contents buf)
          code
      else None
    in
    (match numeric with
     | Some s -> s
     | None -> fail st (Printf.sprintf "unknown entity &%s;" name))

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let parse_comment st =
  skip_string st "<!--";
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then begin
      skip_string st "-->";
      Buffer.contents buf
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ()

let parse_cdata st =
  skip_string st "<![CDATA[";
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      skip_string st "]]>";
      Buffer.contents buf
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ()

let skip_pi st =
  skip_string st "<?";
  while (not (eof st)) && not (looking_at st "?>") do
    advance st
  done;
  if eof st then fail st "unterminated processing instruction";
  skip_string st "?>"

let skip_doctype st =
  skip_string st "<!DOCTYPE";
  (* Skip to the matching '>', allowing one level of bracketed subset. *)
  let depth = ref 0 in
  let rec loop () =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
        incr depth;
        advance st;
        loop ()
      | ']' ->
        decr depth;
        advance st;
        loop ()
      | '>' when !depth = 0 -> advance st
      | _ ->
        advance st;
        loop ()
  in
  loop ()

let is_blank s = String.for_all is_space s

let skip_prolog st =
  skip_spaces st;
  if looking_at st "<?" then skip_pi st;
  let rec misc () =
    skip_spaces st;
    if looking_at st "<!--" then begin
      ignore (parse_comment st);
      misc ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      misc ()
    end
    else if looking_at st "<?" then begin
      skip_pi st;
      misc ()
    end
  in
  misc ()

(* ---- SAX core ---- *)

type event =
  | Start_element of string
  | Attribute of string * string
  | Text of string
  | Comment of string
  | End_element of string

(* Parse one whole document (prolog, root element, trailing misc),
   emitting events.  Element depth is tracked with an explicit name
   stack, so memory is O(depth), never O(document). *)
let run_events st ~init ~f =
  skip_prolog st;
  if eof st || peek st <> '<' then fail st "expected a root element";
  let acc = ref init in
  let emit e = acc := f !acc e in
  let stack = ref [] in
  let buf = Buffer.create 64 in
  let flush_text () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if s <> "" && not (st.strip_whitespace && is_blank s) then emit (Text s)
  in
  (* Opens one element: emits Start_element and Attribute events; pushes
     the name unless the element is empty ([<a/>]). *)
  let open_element () =
    expect st '<';
    let name = parse_name st in
    emit (Start_element name);
    let rec parse_attrs () =
      skip_spaces st;
      if is_name_start (peek st) then begin
        let attr_name = parse_name st in
        skip_spaces st;
        expect st '=';
        skip_spaces st;
        let value = parse_attr_value st in
        emit (Attribute (attr_name, value));
        parse_attrs ()
      end
    in
    parse_attrs ();
    if looking_at st "/>" then begin
      skip_string st "/>";
      emit (End_element name)
    end
    else begin
      expect st '>';
      stack := name :: !stack
    end
  in
  open_element ();
  while !stack <> [] do
    let element_name = List.hd !stack in
    if eof st then
      fail st (Printf.sprintf "unterminated element <%s>" element_name)
    else if looking_at st "</" then begin
      flush_text ();
      skip_string st "</";
      let close = parse_name st in
      if close <> element_name then
        fail st
          (Printf.sprintf "mismatched close tag </%s> for <%s>" close
             element_name);
      skip_spaces st;
      expect st '>';
      stack := List.tl !stack;
      emit (End_element close)
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      let body = parse_comment st in
      if st.keep_comments then emit (Comment body)
    end
    else if looking_at st "<![CDATA[" then
      Buffer.add_string buf (parse_cdata st)
    else if looking_at st "<?" then begin
      flush_text ();
      skip_pi st
    end
    else if peek st = '<' && is_name_start (peek2 st) then begin
      flush_text ();
      open_element ()
    end
    else if peek st = '<' then fail st "unexpected '<'"
    else if peek st = '&' then Buffer.add_string buf (parse_reference st)
    else begin
      Buffer.add_char buf (peek st);
      advance st
    end
  done;
  skip_spaces st;
  (if (not (eof st)) && looking_at st "<!--" then
     let rec trailing () =
       skip_spaces st;
       if looking_at st "<!--" then begin
         ignore (parse_comment st);
         trailing ()
       end
     in
     trailing ());
  skip_spaces st;
  if not (eof st) then fail st "trailing content after the root element";
  !acc

let fold_events ?(keep_comments = false) ?(strip_whitespace = true) ic ~init
    ~f =
  let st =
    make_state ~input:(input ic) ~keep_comments ~strip_whitespace
  in
  run_events st ~init ~f

(* ---- Tree reconstruction (the in-memory entry points) ---- *)

type tree_frame = { name : string; mutable rev_kids : Tree.t list }

let tree_of_events st =
  let result = ref None in
  let frames = ref [] in
  let push_kid t =
    match !frames with
    | [] -> result := Some t
    | fr :: _ -> fr.rev_kids <- t :: fr.rev_kids
  in
  let () =
    run_events st ~init:() ~f:(fun () ev ->
        match ev with
        | Start_element name -> frames := { name; rev_kids = [] } :: !frames
        | Attribute (name, value) ->
          (match !frames with
           | fr :: _ -> fr.rev_kids <- Tree.Attr (name, value) :: fr.rev_kids
           | [] -> assert false)
        | Text s -> push_kid (Tree.Text s)
        | Comment s -> push_kid (Tree.Comment s)
        | End_element _ ->
          (match !frames with
           | fr :: rest ->
             frames := rest;
             push_kid (Tree.Element (fr.name, List.rev fr.rev_kids))
           | [] -> assert false))
  in
  match !result with Some t -> t | None -> assert false

let fragment_of_string ?(keep_comments = false) ?(strip_whitespace = true) src =
  let st =
    make_state ~input:(input_of_string src) ~keep_comments ~strip_whitespace
  in
  tree_of_events st

let of_string ?keep_comments ?strip_whitespace src =
  Document.of_tree (fragment_of_string ?keep_comments ?strip_whitespace src)

(* ---- Streaming ingest into the columnar store ----

   Events feed {!Flat.Builder} directly; ordpath identifiers are
   allocated with the same [append_after] sequence {!Document.graft}
   uses, so a streamed snapshot is node-for-node identical to
   [Flat.of_document (of_string bytes)] — without ever materialising a
   [Tree.t] DOM or a map-backed store. *)

type ingest_frame = { id : Ordpath.t; mutable last : Ordpath.t option }

let flat_of_events st =
  let b = Flat.Builder.create () in
  Flat.Builder.add b ~id:Ordpath.document ~kind:Node.Document ~label:"/";
  let stack = ref [ { id = Ordpath.document; last = None } ] in
  let alloc () =
    match !stack with
    | [] -> assert false
    | fr :: _ ->
      let id = Ordpath.append_after fr.id ~last:fr.last in
      fr.last <- Some id;
      id
  in
  let () =
    run_events st ~init:() ~f:(fun () ev ->
        match ev with
        | Start_element name ->
          let id = alloc () in
          Flat.Builder.add b ~id ~kind:Node.Element ~label:name;
          stack := { id; last = None } :: !stack
        | Attribute (name, value) ->
          let id = alloc () in
          Flat.Builder.add b ~id ~kind:Node.Attribute ~label:name;
          Flat.Builder.add b ~id:(Ordpath.first_child id) ~kind:Node.Text
            ~label:value
        | Text s ->
          let id = alloc () in
          Flat.Builder.add b ~id ~kind:Node.Text ~label:s
        | Comment s ->
          let id = alloc () in
          Flat.Builder.add b ~id ~kind:Node.Comment ~label:s
        | End_element _ ->
          (match !stack with
           | _ :: rest -> stack := rest
           | [] -> assert false))
  in
  Flat.Builder.finish b

let flat_of_channel ?(keep_comments = false) ?(strip_whitespace = true) ic =
  let st =
    make_state ~input:(input ic) ~keep_comments ~strip_whitespace
  in
  flat_of_events st

let flat_of_string ?(keep_comments = false) ?(strip_whitespace = true) src =
  let st =
    make_state ~input:(input_of_string src) ~keep_comments ~strip_whitespace
  in
  flat_of_events st

let error_to_string = function
  | Error { line; column; message } ->
    Some (Printf.sprintf "XML parse error at line %d, column %d: %s" line column message)
  | _ -> None

(* Canonical id-preserving deserialisation — the inverse of
   {!Xml_print.to_canonical}.  Nodes arrive in document order (parents
   first), so rebuilding is a fold of {!Document.add_node} with the
   caller-chosen persistent identifiers. *)

let canonical_err line message = raise (Error { line; column = 0; message })

let unescape_canonical line s =
  if not (String.contains s '%') then s
  else begin
    let n = String.length s in
    let buf = Buffer.create n in
    let rec go i =
      if i < n then
        if s.[i] = '%' then begin
          if i + 2 >= n then canonical_err line "truncated % escape";
          (match String.sub s (i + 1) 2 with
           | "25" -> Buffer.add_char buf '%'
           | "0A" -> Buffer.add_char buf '\n'
           | "0D" -> Buffer.add_char buf '\r'
           | e -> canonical_err line ("unknown escape %" ^ e));
          go (i + 3)
        end
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents buf
  end

let canonical_kind line = function
  | 'D' -> Node.Document
  | 'E' -> Node.Element
  | 'A' -> Node.Attribute
  | 'T' -> Node.Text
  | 'C' -> Node.Comment
  | c -> canonical_err line (Printf.sprintf "unknown node kind %C" c)

let of_canonical src =
  match String.split_on_char '\n' src with
  | [] -> canonical_err 1 "empty canonical document"
  | header :: lines ->
    if String.trim header <> Xml_print.canonical_header then
      canonical_err 1
        (Printf.sprintf "bad canonical header (expected %S)"
           Xml_print.canonical_header);
    let doc, _ =
      List.fold_left
        (fun (doc, lineno) line ->
          if line = "" then (doc, lineno + 1)
          else begin
            let n = String.length line in
            if n < 3 || line.[1] <> ' ' then
              canonical_err lineno "malformed canonical line";
            let kind = canonical_kind lineno line.[0] in
            let sp =
              try String.index_from line 2 ' '
              with Not_found -> canonical_err lineno "malformed canonical line"
            in
            let id_src = String.sub line 2 (sp - 2) in
            let id =
              try Ordpath.of_string id_src
              with _ ->
                canonical_err lineno ("bad node identifier " ^ id_src)
            in
            let label =
              unescape_canonical lineno (String.sub line (sp + 1) (n - sp - 1))
            in
            (Document.add_node doc (Node.v ~id ~kind label), lineno + 1)
          end)
        (Document.empty, 2) lines
    in
    doc
