exception Error of { line : int; column : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  keep_comments : bool;
  strip_whitespace : bool;
}

let fail st message = raise (Error { line = st.line; column = st.col; message })

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected %C" c);
  advance st

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src
  && String.sub st.src st.pos n = prefix

let skip_string st prefix =
  if not (looking_at st prefix) then
    fail st (Printf.sprintf "expected %S" prefix);
  String.iter (fun _ -> advance st) prefix

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Character and entity references inside text and attribute values. *)
let parse_reference st =
  expect st '&';
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity reference";
  let name = String.sub st.src start (st.pos - start) in
  expect st ';';
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    let numeric =
      if String.length name > 1 && name.[0] = '#' then
        let body = String.sub name 1 (String.length name - 1) in
        let code =
          if String.length body > 1 && (body.[0] = 'x' || body.[0] = 'X') then
            int_of_string_opt ("0x" ^ String.sub body 1 (String.length body - 1))
          else int_of_string_opt body
        in
        Option.map
          (fun code ->
            let buf = Buffer.create 4 in
            Buffer.add_utf_8_uchar buf (Uchar.of_int code);
            Buffer.contents buf)
          code
      else None
    in
    (match numeric with
     | Some s -> s
     | None -> fail st (Printf.sprintf "unknown entity &%s;" name))

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let parse_comment st =
  skip_string st "<!--";
  let start = st.pos in
  let rec loop () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then begin
      let body = String.sub st.src start (st.pos - start) in
      skip_string st "-->";
      body
    end
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let parse_cdata st =
  skip_string st "<![CDATA[";
  let start = st.pos in
  let rec loop () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      let body = String.sub st.src start (st.pos - start) in
      skip_string st "]]>";
      body
    end
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_pi st =
  skip_string st "<?";
  while (not (eof st)) && not (looking_at st "?>") do
    advance st
  done;
  if eof st then fail st "unterminated processing instruction";
  skip_string st "?>"

let skip_doctype st =
  skip_string st "<!DOCTYPE";
  (* Skip to the matching '>', allowing one level of bracketed subset. *)
  let depth = ref 0 in
  let rec loop () =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
        incr depth;
        advance st;
        loop ()
      | ']' ->
        decr depth;
        advance st;
        loop ()
      | '>' when !depth = 0 -> advance st
      | _ ->
        advance st;
        loop ()
  in
  loop ()

let is_blank s = String.for_all is_space s

let rec parse_element st : Tree.t =
  expect st '<';
  let name = parse_name st in
  let rec parse_attrs acc =
    skip_spaces st;
    if is_name_start (peek st) then begin
      let attr_name = parse_name st in
      skip_spaces st;
      expect st '=';
      skip_spaces st;
      let value = parse_attr_value st in
      parse_attrs (Tree.Attr (attr_name, value) :: acc)
    end
    else List.rev acc
  in
  let attrs = parse_attrs [] in
  if looking_at st "/>" then begin
    skip_string st "/>";
    Tree.Element (name, attrs)
  end
  else begin
    expect st '>';
    let kids = parse_content st name in
    Tree.Element (name, attrs @ kids)
  end

and parse_content st element_name =
  let buf = Buffer.create 16 in
  let acc = ref [] in
  let flush_text () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if s <> "" && not (st.strip_whitespace && is_blank s) then
      acc := Tree.Text s :: !acc
  in
  let rec loop () =
    if eof st then fail st (Printf.sprintf "unterminated element <%s>" element_name)
    else if looking_at st "</" then begin
      flush_text ();
      skip_string st "</";
      let close = parse_name st in
      if close <> element_name then
        fail st
          (Printf.sprintf "mismatched close tag </%s> for <%s>" close
             element_name);
      skip_spaces st;
      expect st '>'
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      let body = parse_comment st in
      if st.keep_comments then acc := Tree.Comment body :: !acc;
      loop ()
    end
    else if looking_at st "<![CDATA[" then begin
      Buffer.add_string buf (parse_cdata st);
      loop ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      skip_pi st;
      loop ()
    end
    else if peek st = '<' && is_name_start (peek2 st) then begin
      flush_text ();
      acc := parse_element st :: !acc;
      loop ()
    end
    else if peek st = '<' then fail st "unexpected '<'"
    else if peek st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  List.rev !acc

let skip_prolog st =
  skip_spaces st;
  if looking_at st "<?" then skip_pi st;
  let rec misc () =
    skip_spaces st;
    if looking_at st "<!--" then begin
      ignore (parse_comment st);
      misc ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      misc ()
    end
    else if looking_at st "<?" then begin
      skip_pi st;
      misc ()
    end
  in
  misc ()

let fragment_of_string ?(keep_comments = false) ?(strip_whitespace = true) src =
  let st =
    { src; pos = 0; line = 1; col = 1; keep_comments; strip_whitespace }
  in
  skip_prolog st;
  if eof st || peek st <> '<' then fail st "expected a root element";
  let root = parse_element st in
  skip_spaces st;
  (if (not (eof st)) && looking_at st "<!--" then
     let rec trailing () =
       skip_spaces st;
       if looking_at st "<!--" then begin
         ignore (parse_comment st);
         trailing ()
       end
     in
     trailing ());
  skip_spaces st;
  if not (eof st) then fail st "trailing content after the root element";
  root

let of_string ?keep_comments ?strip_whitespace src =
  Document.of_tree (fragment_of_string ?keep_comments ?strip_whitespace src)

let error_to_string = function
  | Error { line; column; message } ->
    Some (Printf.sprintf "XML parse error at line %d, column %d: %s" line column message)
  | _ -> None

(* Canonical id-preserving deserialisation — the inverse of
   {!Xml_print.to_canonical}.  Nodes arrive in document order (parents
   first), so rebuilding is a fold of {!Document.add_node} with the
   caller-chosen persistent identifiers. *)

let canonical_err line message = raise (Error { line; column = 0; message })

let unescape_canonical line s =
  if not (String.contains s '%') then s
  else begin
    let n = String.length s in
    let buf = Buffer.create n in
    let rec go i =
      if i < n then
        if s.[i] = '%' then begin
          if i + 2 >= n then canonical_err line "truncated % escape";
          (match String.sub s (i + 1) 2 with
           | "25" -> Buffer.add_char buf '%'
           | "0A" -> Buffer.add_char buf '\n'
           | "0D" -> Buffer.add_char buf '\r'
           | e -> canonical_err line ("unknown escape %" ^ e));
          go (i + 3)
        end
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents buf
  end

let canonical_kind line = function
  | 'D' -> Node.Document
  | 'E' -> Node.Element
  | 'A' -> Node.Attribute
  | 'T' -> Node.Text
  | 'C' -> Node.Comment
  | c -> canonical_err line (Printf.sprintf "unknown node kind %C" c)

let of_canonical src =
  match String.split_on_char '\n' src with
  | [] -> canonical_err 1 "empty canonical document"
  | header :: lines ->
    if String.trim header <> Xml_print.canonical_header then
      canonical_err 1
        (Printf.sprintf "bad canonical header (expected %S)"
           Xml_print.canonical_header);
    let doc, _ =
      List.fold_left
        (fun (doc, lineno) line ->
          if line = "" then (doc, lineno + 1)
          else begin
            let n = String.length line in
            if n < 3 || line.[1] <> ' ' then
              canonical_err lineno "malformed canonical line";
            let kind = canonical_kind lineno line.[0] in
            let sp =
              try String.index_from line 2 ' '
              with Not_found -> canonical_err lineno "malformed canonical line"
            in
            let id_src = String.sub line 2 (sp - 2) in
            let id =
              try Ordpath.of_string id_src
              with _ ->
                canonical_err lineno ("bad node identifier " ^ id_src)
            in
            let label =
              unescape_canonical lineno (String.sub line (sp + 1) (n - sp - 1))
            in
            (Document.add_node doc (Node.v ~id ~kind label), lineno + 1)
          end)
        (Document.empty, 2) lines
    in
    doc
