(** A small, dependency-free XML 1.0 parser covering the data model of the
    paper: elements, attributes, character data (with the predefined and
    numeric character references), CDATA sections and comments.  DOCTYPE
    declarations and processing instructions are skipped.  Namespaces are
    not interpreted; prefixed names are kept verbatim (which is how the
    XUpdate wire syntax [xupdate:append] is recognised). *)

exception Error of { line : int; column : int; message : string }

(** {1 Streaming (SAX) interface}

    The parser core reads from a refillable buffer, so in-memory parsing
    and channel streaming share one code path: [fold_events] and
    {!of_string} cannot disagree on the same bytes. *)

type event =
  | Start_element of string
  | Attribute of string * string
      (** Attributes of an element are emitted immediately after its
          [Start_element], before any content event. *)
  | Text of string
  | Comment of string  (** Only when [keep_comments] is set. *)
  | End_element of string

val fold_events :
  ?keep_comments:bool -> ?strip_whitespace:bool ->
  in_channel -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Parses one whole document from a channel (prolog, root element,
    trailing comments), folding [f] over its events.  Memory is
    O(element depth + largest single token), never O(document).
    @raise Error on malformed input, with the same positions and
    messages as {!of_string}. *)

val flat_of_channel :
  ?keep_comments:bool -> ?strip_whitespace:bool -> in_channel -> Flat.t
(** Streaming ingest: feeds the event stream straight into
    {!Flat.Builder}, allocating the same ordpath identifiers
    {!Document.of_tree} would — the resulting snapshot is node-for-node
    identical to [Flat.of_document (of_string bytes)], without ever
    materialising a [Tree.t] DOM or a map-backed store.
    @raise Error on malformed input. *)

val flat_of_string :
  ?keep_comments:bool -> ?strip_whitespace:bool -> string -> Flat.t
(** {!flat_of_channel} over an in-memory string. *)

(** {1 In-memory interface} *)

val fragment_of_string :
  ?keep_comments:bool -> ?strip_whitespace:bool -> string -> Tree.t
(** Parses a single element (after an optional XML declaration).
    [strip_whitespace] (default [true]) drops whitespace-only text nodes,
    matching the data-centric reading of the paper's figures.
    [keep_comments] defaults to [false].
    @raise Error on malformed input. *)

val of_string :
  ?keep_comments:bool -> ?strip_whitespace:bool -> string -> Document.t
(** [fragment_of_string] followed by {!Document.of_tree}. *)

val of_canonical : string -> Document.t
(** Parses the canonical id-preserving serialisation written by
    {!Xml_print.to_canonical}, reconstructing every node under its
    original persistent identifier ([of_canonical (to_canonical d)] is
    {!Document.equal} to [d]).
    @raise Error on malformed input. *)

val error_to_string : exn -> string option
(** Human-readable rendering of {!Error}; [None] on other exceptions. *)
