(** A small, dependency-free XML 1.0 parser covering the data model of the
    paper: elements, attributes, character data (with the predefined and
    numeric character references), CDATA sections and comments.  DOCTYPE
    declarations and processing instructions are skipped.  Namespaces are
    not interpreted; prefixed names are kept verbatim (which is how the
    XUpdate wire syntax [xupdate:append] is recognised). *)

exception Error of { line : int; column : int; message : string }

val fragment_of_string :
  ?keep_comments:bool -> ?strip_whitespace:bool -> string -> Tree.t
(** Parses a single element (after an optional XML declaration).
    [strip_whitespace] (default [true]) drops whitespace-only text nodes,
    matching the data-centric reading of the paper's figures.
    [keep_comments] defaults to [false].
    @raise Error on malformed input. *)

val of_string :
  ?keep_comments:bool -> ?strip_whitespace:bool -> string -> Document.t
(** [fragment_of_string] followed by {!Document.of_tree}. *)

val of_canonical : string -> Document.t
(** Parses the canonical id-preserving serialisation written by
    {!Xml_print.to_canonical}, reconstructing every node under its
    original persistent identifier ([of_canonical (to_canonical d)] is
    {!Document.equal} to [d]).
    @raise Error on malformed input. *)

val error_to_string : exn -> string option
(** Human-readable rendering of {!Error}; [None] on other exceptions. *)
