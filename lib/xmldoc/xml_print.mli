(** Serializers: XML wire syntax (compact and indented), the ASCII tree
    rendering used by the paper's figures, and the [F = { node(...), ... }]
    fact-set notation of §3.3. *)

val escape_text : string -> string
val escape_attr : string -> string

val fragment_to_string : ?indent:bool -> Tree.t -> string

val to_string : ?indent:bool -> Document.t -> string
(** Serializes every document-level node; the usual case is a single root
    element. *)

val subtree_to_string : ?indent:bool -> Document.t -> Ordpath.t -> string

val canonical_header : string
(** First line of the canonical serialisation, ["xmlsecu-canonical 1"]. *)

val to_canonical : Document.t -> string
(** Canonical {e id-preserving} serialisation: header line, then one line
    per non-document node in document order —
    [<kind-letter> <ordpath> <escaped-label>].  Unlike {!to_string}, the
    persistent identifiers survive, so
    {!Xml_parse.of_canonical} reconstructs a store that is
    {!Document.equal} to the original — the exactness store snapshots and
    journal replay rely on.  Labels are percent-escaped ([%25]/[%0A]/[%0D])
    to keep the format line-based. *)

val tree_view : ?show_ids:bool -> Document.t -> string
(** Figure-style rendering, one node per line, e.g.:
    {v
    /            /
    1            /patients
    1.1          /franck
    1.1.1        /service
    1.1.1.1      text()otolarynology
    v} *)

val facts : Document.t -> string
(** The paper's set-of-facts notation:
    [{ node(/, /), node(1, patients), ... }]. *)

val pp : Format.formatter -> Document.t -> unit
(** [tree_view] with identifiers. *)
