let needs_escape ~in_attr s =
  let rec go i =
    i < String.length s
    && (match String.unsafe_get s i with
       | '<' | '>' | '&' -> true
       | '"' when in_attr -> true
       | _ -> go (i + 1))
  in
  go 0

let escape ~in_attr s =
  (* Most strings escape to themselves; skip the copy for those. *)
  if not (needs_escape ~in_attr s) then s
  else begin
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '&' -> Buffer.add_string buf "&amp;"
        | '"' when in_attr -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let escape_text = escape ~in_attr:false
let escape_attr = escape ~in_attr:true

let split_attrs kids =
  List.partition (function Tree.Attr _ -> true | _ -> false) kids

let rec emit_fragment buf ~indent depth (tree : Tree.t) =
  let pad () = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match tree with
  | Tree.Text s ->
    pad ();
    Buffer.add_string buf (escape_text s);
    newline ()
  | Tree.Comment s ->
    pad ();
    Buffer.add_string buf ("<!--" ^ s ^ "-->");
    newline ()
  | Tree.Attr (n, v) ->
    (* A free-standing attribute only appears when serializing a fragment
       rooted at an attribute node. *)
    pad ();
    Buffer.add_string buf (Printf.sprintf "%s=\"%s\"" n (escape_attr v));
    newline ()
  | Tree.Element (name, kids) ->
    let attrs, content = split_attrs kids in
    pad ();
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (function
        | Tree.Attr (n, v) ->
          Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" n (escape_attr v))
        | _ -> ())
      attrs;
    let mixed =
      List.exists (function Tree.Text _ -> true | _ -> false) content
    in
    (match content with
     | [] -> Buffer.add_string buf "/>"
     | content when mixed || not indent ->
       (* Mixed content must not gain whitespace: print compactly. *)
       Buffer.add_char buf '>';
       List.iter (emit_fragment buf ~indent:false 0) content;
       Buffer.add_string buf (Printf.sprintf "</%s>" name)
     | content ->
       Buffer.add_char buf '>';
       newline ();
       List.iter (emit_fragment buf ~indent (depth + 1)) content;
       pad ();
       Buffer.add_string buf (Printf.sprintf "</%s>" name));
    newline ()

let fragment_to_string ?(indent = false) tree =
  let buf = Buffer.create 256 in
  emit_fragment buf ~indent 0 tree;
  let s = Buffer.contents buf in
  if indent then s else String.trim s

let subtree_to_string ?indent doc id =
  match Document.to_tree doc id with
  | None -> ""
  | Some tree -> fragment_to_string ?indent tree

let to_string ?indent doc =
  let tops = Document.children doc Ordpath.document in
  String.concat
    (match indent with Some true -> "" | _ -> "\n")
    (List.filter_map
       (fun (n : Node.t) ->
         Option.map (fragment_to_string ?indent) (Document.to_tree doc n.id))
       tops)

(* Canonical id-preserving serialisation (store snapshots): one node per
   line, [<kind-letter> <ordpath> <escaped-label>], document order.  The
   XML wire syntax cannot serve here: re-parsing it assigns fresh dense
   identifiers, while recovery needs the exact persistent numbering so a
   journal replays without renumbering.  Labels are percent-escaped just
   enough ('%', newline, carriage return) to keep the format line-based;
   the label is the final field, so spaces pass through verbatim. *)

let canonical_header = "xmlsecu-canonical 1"

let escape_canonical s =
  if String.exists (fun c -> c = '%' || c = '\n' || c = '\r') s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '%' -> Buffer.add_string buf "%25"
        | '\n' -> Buffer.add_string buf "%0A"
        | '\r' -> Buffer.add_string buf "%0D"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let kind_letter = function
  | Node.Document -> 'D'
  | Node.Element -> 'E'
  | Node.Attribute -> 'A'
  | Node.Text -> 'T'
  | Node.Comment -> 'C'

let to_canonical doc =
  let buf = Buffer.create (Document.size doc * 16) in
  Buffer.add_string buf canonical_header;
  Buffer.add_char buf '\n';
  Document.iter
    (fun (n : Node.t) ->
      if not (Ordpath.equal n.id Ordpath.document) then begin
        Buffer.add_char buf (kind_letter n.kind);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Ordpath.to_string n.id);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (escape_canonical n.label);
        Buffer.add_char buf '\n'
      end)
    doc;
  Buffer.contents buf

let render_label (n : Node.t) =
  match n.kind with
  | Node.Document -> "/"
  | Node.Element -> "/" ^ n.label
  | Node.Attribute -> "@" ^ n.label
  | Node.Text -> "text()" ^ n.label
  | Node.Comment -> "comment()" ^ n.label

let tree_view ?(show_ids = true) doc =
  let buf = Buffer.create 256 in
  Document.iter
    (fun n ->
      let indent = String.make (2 * Ordpath.depth n.id) ' ' in
      if show_ids then
        Buffer.add_string buf
          (Printf.sprintf "%-12s %s%s\n" (Ordpath.to_string n.id) indent
             (render_label n))
      else Buffer.add_string buf (Printf.sprintf "%s%s\n" indent (render_label n)))
    doc;
  Buffer.contents buf

let facts doc =
  let items =
    Seq.map
      (fun (n : Node.t) ->
        Printf.sprintf "node(%s, %s)" (Ordpath.to_string n.id) n.label)
      (Document.to_seq doc)
  in
  "{ " ^ String.concat ", " (List.of_seq items) ^ " }"

let pp fmt doc = Format.pp_print_string fmt (tree_view doc)
