(* Immutable struct-of-arrays snapshot of a document in document order.

   The map-backed {!Document} store is the write-side truth: persistent,
   cheap to update incrementally, expensive to traverse (pointer-chasing
   a balanced map of boxed nodes).  [Flat.t] is the read-side twin: one
   freeze walks the document once and lays every column out in document
   order —

   - [keys]: packed binary ordpath keys ({!Ordpath.pack}), so document
     order is [String.compare] and ancestry is a string-prefix test;
   - [kinds]: one byte per node;
   - [labels]: interned ids into a shared string [pool];
   - [parent] / [first_child] / [next_sibling] / [subtree_end]: index
     arrays making every §3.2 axis an O(1) index step or a linear scan,
     and making an ordpath-contiguous subtree prune a single jump to
     [subtree_end].

   Axis answers are defined to coincide exactly with {!Document}'s — the
   differential suite in [test/test_flat.ml] checks this on random
   documents — so a flat snapshot can stand in for the map behind
   [Xpath.Source] without changing any answer. *)

type t = {
  count : int;
  keys : string array;          (* packed ordpath key per node *)
  kinds : Bytes.t;              (* Node.kind code per node *)
  labels : int array;           (* label pool id per node *)
  pool : string array;          (* label id -> label *)
  nodes : Node.t array;         (* boxed view of each node, built once *)
  parent : int array;           (* parent index, -1 at the document node *)
  first_child : int array;      (* -1 when childless *)
  next_sibling : int array;     (* -1 at a last child *)
  subtree_end : int array;      (* exclusive end of the subtree span *)
  by_label : (string, int array) Hashtbl.t;
}

let kind_code : Node.kind -> int = function
  | Node.Document -> 0
  | Node.Element -> 1
  | Node.Attribute -> 2
  | Node.Text -> 3
  | Node.Comment -> 4

let kind_of_code = function
  | 0 -> Node.Document
  | 1 -> Node.Element
  | 2 -> Node.Attribute
  | 3 -> Node.Text
  | _ -> Node.Comment

(* ---- Builder ---- *)

(* Growable column buffers: nodes must arrive in document order with
   every parent before its children (exactly what {!Document.fold} and
   the streaming parser produce).  Geometry is derived on the fly from a
   stack of open nodes — the packed key of the top of the stack is a
   strict prefix of the current key iff the top is an ancestor. *)
module Builder = struct
  type frame = { ix : int; key : string; mutable last_child : int }

  type b = {
    mutable n : int;
    mutable keys : string array;
    mutable kinds : Bytes.t;
    mutable labels : int array;
    mutable parent : int array;
    mutable first_child : int array;
    mutable next_sibling : int array;
    mutable subtree_end : int array;
    pool_ids : (string, int) Hashtbl.t;
    mutable pool_rev : string list;
    mutable pool_n : int;
    mutable stack : frame list;
  }

  let create () =
    {
      n = 0;
      keys = Array.make 64 "";
      kinds = Bytes.make 64 '\000';
      labels = Array.make 64 0;
      parent = Array.make 64 (-1);
      first_child = Array.make 64 (-1);
      next_sibling = Array.make 64 (-1);
      subtree_end = Array.make 64 0;
      pool_ids = Hashtbl.create 64;
      pool_rev = [];
      pool_n = 0;
      stack = [];
    }

  let grow b =
    let cap = Array.length b.keys in
    let cap' = cap * 2 in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    b.keys <- extend b.keys "";
    b.labels <- extend b.labels 0;
    b.parent <- extend b.parent (-1);
    b.first_child <- extend b.first_child (-1);
    b.next_sibling <- extend b.next_sibling (-1);
    b.subtree_end <- extend b.subtree_end 0;
    let k = Bytes.make cap' '\000' in
    Bytes.blit b.kinds 0 k 0 cap;
    b.kinds <- k

  let pool_id b label =
    match Hashtbl.find_opt b.pool_ids label with
    | Some i -> i
    | None ->
      let i = b.pool_n in
      Hashtbl.add b.pool_ids label i;
      b.pool_rev <- label :: b.pool_rev;
      b.pool_n <- i + 1;
      i

  let add b ~id ~kind ~label =
    if b.n = Array.length b.keys then grow b;
    let i = b.n in
    let key = Ordpath.pack id in
    let rec unwind () =
      match b.stack with
      | top :: rest when not (Ordpath.is_packed_strict_prefix top.key key) ->
        b.subtree_end.(top.ix) <- i;
        b.stack <- rest;
        unwind ()
      | _ -> ()
    in
    unwind ();
    (match b.stack with
     | [] -> b.parent.(i) <- -1
     | top :: _ ->
       b.parent.(i) <- top.ix;
       if top.last_child < 0 then b.first_child.(top.ix) <- i
       else b.next_sibling.(top.last_child) <- i;
       top.last_child <- i);
    b.keys.(i) <- key;
    Bytes.set b.kinds i (Char.chr (kind_code kind));
    b.labels.(i) <- pool_id b label;
    b.stack <- { ix = i; key; last_child = -1 } :: b.stack;
    b.n <- i + 1

  let finish b =
    List.iter (fun fr -> b.subtree_end.(fr.ix) <- b.n) b.stack;
    b.stack <- [];
    let n = b.n in
    let pool = Array.make (max 1 b.pool_n) "" in
    List.iteri (fun i l -> pool.(b.pool_n - 1 - i) <- l) b.pool_rev;
    let trim a = Array.sub a 0 n in
    let keys = trim b.keys in
    let labels = trim b.labels in
    let kinds = Bytes.sub b.kinds 0 n in
    let nodes =
      Array.init n (fun i ->
          Node.v
            ~id:(Ordpath.unpack keys.(i))
            ~kind:(kind_of_code (Char.code (Bytes.get kinds i)))
            pool.(labels.(i)))
    in
    (* Per-label posting lists, document order (indexes ascend as we
       scan).  Built as reversed lists per pool id, then materialised. *)
    let postings = Array.make (max 1 b.pool_n) [] in
    for i = n - 1 downto 0 do
      postings.(labels.(i)) <- i :: postings.(labels.(i))
    done;
    let by_label = Hashtbl.create (max 16 b.pool_n) in
    Array.iteri
      (fun lid label ->
        match postings.(lid) with
        | [] -> ()
        | ixs -> Hashtbl.replace by_label label (Array.of_list ixs))
      pool;
    {
      count = n;
      keys;
      kinds;
      labels;
      pool;
      nodes;
      parent = trim b.parent;
      first_child = trim b.first_child;
      next_sibling = trim b.next_sibling;
      subtree_end = trim b.subtree_end;
      by_label;
    }
end

let of_document doc =
  let b = Builder.create () in
  Document.iter
    (fun (n : Node.t) -> Builder.add b ~id:n.id ~kind:n.kind ~label:n.label)
    doc;
  Builder.finish b

let to_document t =
  let doc = ref Document.empty in
  Array.iter (fun n -> doc := Document.add_node !doc n) t.nodes;
  !doc

(* ---- Accessors ---- *)

let size t = t.count
let node t i = t.nodes.(i)
let id t i = (t.nodes.(i) : Node.t).id
let kind_ix t i = kind_of_code (Char.code (Bytes.get t.kinds i))
let label_ix t i = t.pool.(t.labels.(i))
let key t i = t.keys.(i)
let parent_ix t i = t.parent.(i)
let first_child_ix t i = t.first_child.(i)
let next_sibling_ix t i = t.next_sibling.(i)
let subtree_end t i = t.subtree_end.(i)
let pool_size t = Array.length t.pool

(* Binary search over the packed key column: branchless-comparison
   [String.compare] per probe, no ordpath list walking. *)
let find_key t key =
  let lo = ref 0 and hi = ref (t.count - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Ordpath.compare_packed t.keys.(mid) key in
    if c = 0 then begin
      res := mid;
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !res

(* First index whose key is [>= key] (= [count] when none). *)
let lower_bound t key =
  let lo = ref 0 and hi = ref t.count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Ordpath.compare_packed t.keys.(mid) key < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

let find_ix t ordpath =
  let i = find_key t (Ordpath.pack ordpath) in
  if i < 0 then None else Some i

let find t ordpath = Option.map (node t) (find_ix t ordpath)
let mem t ordpath = find_key t (Ordpath.pack ordpath) >= 0
let label t ordpath = Option.map (label_ix t) (find_ix t ordpath)
let kind t ordpath = Option.map (kind_ix t) (find_ix t ordpath)

let fold f t acc =
  let acc = ref acc in
  for i = 0 to t.count - 1 do
    acc := f t.nodes.(i) !acc
  done;
  !acc

let iter f t = Array.iter f t.nodes
let nodes t = Array.to_list t.nodes

let to_seq t =
  let rec go i () =
    if i >= t.count then Seq.Nil else Seq.Cons (t.nodes.(i), go (i + 1))
  in
  go 0

(* ---- Per-label index ---- *)

let by_label_ix t label =
  match Hashtbl.find_opt t.by_label label with
  | Some ixs -> ixs
  | None -> [||]

let by_label t label =
  Array.to_list (Array.map (id t) (by_label_ix t label))

let labelled t label =
  Array.to_list (Array.map (node t) (by_label_ix t label))

let find_labelled t label =
  let ixs = by_label_ix t label in
  if Array.length ixs = 0 then None else Some (node t ixs.(0))

(* ---- Axes (answers coincide with {!Document}'s) ---- *)

let children_ix t i =
  let rec go acc c = if c < 0 then List.rev acc else go (c :: acc) (t.next_sibling.(c)) in
  go [] t.first_child.(i)

let children t ordpath =
  match find_ix t ordpath with
  | None -> []
  | Some i -> List.map (node t) (children_ix t i)

let element_children t ordpath =
  List.filter (fun (n : Node.t) -> n.kind <> Node.Attribute)
    (children t ordpath)

let attributes t ordpath =
  List.filter (fun (n : Node.t) -> n.kind = Node.Attribute)
    (children t ordpath)

let last_child t ordpath =
  match find_ix t ordpath with
  | None -> None
  | Some i ->
    let rec go c =
      if c < 0 then None
      else if t.next_sibling.(c) < 0 then Some (node t c)
      else go t.next_sibling.(c)
    in
    go t.first_child.(i)

let descendants t ordpath =
  match find_ix t ordpath with
  | None -> []
  | Some i ->
    let stop = t.subtree_end.(i) in
    let rec go acc j = if j >= stop then List.rev acc else go (t.nodes.(j) :: acc) (j + 1) in
    go [] (i + 1)

let descendant_or_self t ordpath =
  match find_ix t ordpath with
  | None -> []
  | Some i ->
    let stop = t.subtree_end.(i) in
    let rec go acc j = if j >= stop then List.rev acc else go (t.nodes.(j) :: acc) (j + 1) in
    go [] i

(* Nearest first, like {!Document.ancestors}. *)
let ancestors_ix t i =
  let rec go acc p = if p < 0 then List.rev acc else go (p :: acc) t.parent.(p) in
  go [] t.parent.(i)

let ancestors t ordpath =
  match find_ix t ordpath with
  | Some i -> List.map (node t) (ancestors_ix t i)
  | None ->
    (* Mirror {!Document.ancestors} on an unknown identifier: step to the
       ordpath parent; if that node exists, its chain answers. *)
    (match Ordpath.parent ordpath with
     | None -> []
     | Some pid ->
       (match find_ix t pid with
        | None -> []
        | Some j -> node t j :: List.map (node t) (ancestors_ix t j)))

let ancestor_or_self t ordpath =
  match find_ix t ordpath with
  | None -> []
  | Some i -> node t i :: List.map (node t) (ancestors_ix t i)

let siblings_fallback t ordpath =
  (* Unknown identifier: answer from the would-be parent's children, the
     way the map-backed store does. *)
  match Ordpath.parent ordpath with
  | None -> []
  | Some pid -> children t pid

let following_siblings t ordpath =
  match find_ix t ordpath with
  | Some i ->
    let rec go acc c = if c < 0 then List.rev acc else go (t.nodes.(c) :: acc) t.next_sibling.(c) in
    go [] t.next_sibling.(i)
  | None ->
    List.filter (fun (n : Node.t) -> Ordpath.compare n.id ordpath > 0)
      (siblings_fallback t ordpath)

let preceding_siblings t ordpath =
  match find_ix t ordpath with
  | Some i ->
    let p = t.parent.(i) in
    if p < 0 then []
    else begin
      let rec go acc c =
        if c = i then acc else go (t.nodes.(c) :: acc) t.next_sibling.(c)
      in
      go [] t.first_child.(p)
    end
  | None ->
    List.rev
      (List.filter (fun (n : Node.t) -> Ordpath.compare n.id ordpath < 0)
         (siblings_fallback t ordpath))

let following t ordpath =
  match find_ix t ordpath with
  | Some i ->
    let rec go acc j =
      if j >= t.count then List.rev acc else go (t.nodes.(j) :: acc) (j + 1)
    in
    go [] t.subtree_end.(i)
  | None ->
    let key = Ordpath.pack ordpath in
    let start = lower_bound t key in
    let rec go acc j =
      if j >= t.count then List.rev acc
      else if Ordpath.is_packed_prefix key t.keys.(j) then go acc (j + 1)
      else go (t.nodes.(j) :: acc) (j + 1)
    in
    go [] start

let preceding t ordpath =
  match find_ix t ordpath with
  | Some i ->
    let rec mark acc p = if p < 0 then acc else mark (p :: acc) t.parent.(p) in
    let ancs = mark [] t.parent.(i) in
    let is_anc j = List.mem j ancs in
    let rec go acc j =
      if j >= i then acc
      else
        let acc =
          if is_anc j || kind_ix t j = Node.Document then acc
          else t.nodes.(j) :: acc
        in
        go acc (j + 1)
    in
    go [] 0
  | None ->
    (* The exclusion set is exactly what {!ancestors} answers on this
       unknown identifier (the map-backed walk stops at the first missing
       parent, so deeper strays exclude fewer nodes than true ordpath
       ancestry would). *)
    let key = Ordpath.pack ordpath in
    let stop = lower_bound t key in
    let anc = List.map (fun (n : Node.t) -> n.id) (ancestors t ordpath) in
    let rec go acc j =
      if j >= stop then acc
      else
        let acc =
          if
            List.exists (Ordpath.equal t.nodes.(j).Node.id) anc
            || kind_ix t j = Node.Document
          then acc
          else t.nodes.(j) :: acc
        in
        go acc (j + 1)
    in
    go [] 0

let is_child t ~child ordpath =
  mem t child && Ordpath.is_child ~parent:ordpath child

let is_descendant t ~descendant ordpath =
  mem t descendant && Ordpath.is_ancestor ~ancestor:ordpath descendant

let root_element t =
  let rec go c =
    if c < 0 then None
    else if kind_ix t c = Node.Element then Some (node t c)
    else go t.next_sibling.(c)
  in
  if t.count = 0 then None else go t.first_child.(0)

let parent t ordpath =
  match find_ix t ordpath with
  | Some i -> if t.parent.(i) < 0 then None else Some (node t t.parent.(i))
  | None ->
    (match Ordpath.parent ordpath with
     | None -> None
     | Some pid -> find t pid)

(* XPath string value over the subtree span: attribute subtrees other
   than the start node are jumped over via [subtree_end]. *)
let string_value t ordpath =
  match find_ix t ordpath with
  | None -> ""
  | Some start ->
    let buf = Buffer.create 32 in
    let stop = t.subtree_end.(start) in
    let j = ref start in
    while !j < stop do
      let i = !j in
      if i <> start && kind_ix t i = Node.Attribute then j := t.subtree_end.(i)
      else begin
        if kind_ix t i = Node.Text then Buffer.add_string buf (label_ix t i);
        incr j
      end
    done;
    Buffer.contents buf

(* ---- Size accounting ---- *)

let bytes t =
  let word = Sys.word_size / 8 in
  let str s = word * (2 + (String.length s / word)) in
  let int_array a = word * (1 + Array.length a) in
  let keys_bytes = Array.fold_left (fun acc k -> acc + word + str k) 0 t.keys in
  let pool_bytes = Array.fold_left (fun acc l -> acc + word + str l) 0 t.pool in
  let nodes_bytes =
    Array.fold_left
      (fun acc (n : Node.t) ->
        acc + word + (4 * word)
        + (word * (1 + List.length (Ordpath.to_components n.id))))
      0 t.nodes
  in
  keys_bytes + pool_bytes + nodes_bytes
  + Bytes.length t.kinds
  + int_array t.labels + int_array t.parent + int_array t.first_child
  + int_array t.next_sibling + int_array t.subtree_end

let bytes_per_node t = if t.count = 0 then 0. else float_of_int (bytes t) /. float_of_int t.count
