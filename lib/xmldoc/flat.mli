(** Immutable struct-of-arrays snapshot of a {!Document} in document
    order: interned labels, kind bytes, packed binary ordpath keys
    ({!Ordpath.pack}) and [parent]/[first_child]/[next_sibling]/
    [subtree_end] index arrays.  Every §3.2 axis is an O(1) index step or
    a linear scan, and an ordpath-contiguous subtree prune is a single
    jump to [subtree_end] — this is the hot read path behind
    [Xpath.Source] and the compiled-NFA folds.

    A snapshot is immutable: writers keep mutating the map-backed
    {!Document}; an epoch publisher (e.g. [Core.Serve.commit]) freezes a
    fresh snapshot per committed delta.  All axis answers coincide
    exactly with {!Document}'s (checked differentially in
    [test/test_flat.ml]). *)

type t

(** {1 Building}

    Nodes must be appended in document order with every parent before
    its children — the order {!Document.iter} and the streaming parser
    both produce. *)

module Builder : sig
  type b

  val create : unit -> b

  val add : b -> id:Ordpath.t -> kind:Node.kind -> label:string -> unit
  (** Append the next node in document order. *)

  val finish : b -> t
end

val of_document : Document.t -> t
(** Freeze: one document-order walk of the map-backed store. *)

val to_document : t -> Document.t
(** Thaw: rebuild the map-backed store ([to_document (of_document d)] is
    {!Document.equal} to [d]). *)

(** {1 Columns and index arrays}

    Index-based accessors; [0 <= i < size t], index order is document
    order, index [0] is the document node. *)

val size : t -> int
val node : t -> int -> Node.t
val id : t -> int -> Ordpath.t
val kind_ix : t -> int -> Node.kind
val label_ix : t -> int -> string
val key : t -> int -> string
(** The packed ordpath key ({!Ordpath.pack}). *)

val parent_ix : t -> int -> int
(** [-1] at the document node. *)

val first_child_ix : t -> int -> int
(** [-1] when childless. *)

val next_sibling_ix : t -> int -> int
(** [-1] at a last child. *)

val subtree_end : t -> int -> int
(** Exclusive end of the subtree span: the strict descendants of [i] are
    exactly the indexes [i+1 .. subtree_end t i - 1]. *)

val pool_size : t -> int
(** Number of distinct labels in the string pool. *)

val find_ix : t -> Ordpath.t -> int option
(** Binary search over the packed key column. *)

val lower_bound : t -> string -> int
(** First index whose packed key is [>=] the given key ([size t] when
    none). *)

(** {1 Document-compatible reads} *)

val find : t -> Ordpath.t -> Node.t option
val mem : t -> Ordpath.t -> bool
val label : t -> Ordpath.t -> string option
val kind : t -> Ordpath.t -> Node.kind option
val fold : (Node.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Node.t -> unit) -> t -> unit
val nodes : t -> Node.t list
val to_seq : t -> Node.t Seq.t
val root_element : t -> Node.t option

val by_label_ix : t -> string -> int array
(** Indexes of all nodes carrying the label, document order. *)

val by_label : t -> string -> Ordpath.t list
val labelled : t -> string -> Node.t list
val find_labelled : t -> string -> Node.t option

val parent : t -> Ordpath.t -> Node.t option
val children : t -> Ordpath.t -> Node.t list
val children_ix : t -> int -> int list
val element_children : t -> Ordpath.t -> Node.t list
val attributes : t -> Ordpath.t -> Node.t list
val last_child : t -> Ordpath.t -> Node.t option
val descendants : t -> Ordpath.t -> Node.t list
val descendant_or_self : t -> Ordpath.t -> Node.t list
val ancestors : t -> Ordpath.t -> Node.t list
val ancestor_or_self : t -> Ordpath.t -> Node.t list
val following_siblings : t -> Ordpath.t -> Node.t list
val preceding_siblings : t -> Ordpath.t -> Node.t list
val following : t -> Ordpath.t -> Node.t list
val preceding : t -> Ordpath.t -> Node.t list
val is_child : t -> child:Ordpath.t -> Ordpath.t -> bool
val is_descendant : t -> descendant:Ordpath.t -> Ordpath.t -> bool
val string_value : t -> Ordpath.t -> string

(** {1 Size accounting} *)

val bytes : t -> int
(** Approximate heap footprint of the snapshot in bytes. *)

val bytes_per_node : t -> float
