(** The XML database of §3: a set of [node(n, v)] facts keyed by persistent
    {!Ordpath} identifiers.  Because ordpath order {e is} document order,
    the store is a map whose in-order traversal visits nodes in document
    order, with every parent visited before its children.

    All tree-geometry predicates of §3.2 ([child], [descendant],
    [following_sibling], …) are derived from identifiers, never stored. *)

type t

val empty : t
(** Contains only the document node [node(/, /)]. *)

val of_tree : Tree.t -> t
(** Builds a database whose root element is the given fragment. *)

val of_forest : Tree.t list -> t
(** Generalisation of {!of_tree} for several document-level nodes (e.g. a
    root element plus comments). *)

(** {1 Facts} *)

val find : t -> Ordpath.t -> Node.t option
val mem : t -> Ordpath.t -> bool
val label : t -> Ordpath.t -> string option
val kind : t -> Ordpath.t -> Node.kind option
val size : t -> int
(** Number of nodes, including the document node. *)

val nodes : t -> Node.t list
(** All nodes in document order (document node first). *)

val fold : (Node.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds in document order. *)

val iter : (Node.t -> unit) -> t -> unit

val to_seq : t -> Node.t Seq.t
(** All nodes in document order, without materialising a list. *)

val equal : t -> t -> bool

val root_element : t -> Node.t option
(** The first element child of the document node. *)

(** {1 Per-label index}

    The database maintains a persistent label → nodes index alongside the
    node map, kept exact by every mutator below (including the
    no-renumbering XUpdate primitives) — descendant name-tests and
    workload target selection read it instead of scanning the tree. *)

val by_label : t -> string -> Ordpath.t list
(** All nodes (any kind) carrying exactly this label, in document
    order. *)

val labelled : t -> string -> Node.t list
(** {!by_label}, resolved to nodes. *)

val find_labelled : t -> string -> Node.t option
(** The first node (document order) carrying this label. *)

(** {1 Geometry (§3.2)} *)

val parent : t -> Ordpath.t -> Node.t option
val children : t -> Ordpath.t -> Node.t list
val element_children : t -> Ordpath.t -> Node.t list
(** Children that are not attribute nodes. *)

val attributes : t -> Ordpath.t -> Node.t list
val last_child : t -> Ordpath.t -> Node.t option
val descendants : t -> Ordpath.t -> Node.t list
(** Strict descendants, document order. *)

val descendant_or_self : t -> Ordpath.t -> Node.t list

val descendants_seq : t -> Ordpath.t -> Node.t Seq.t
(** {!descendants} as a lazy sequence — the contiguous ordpath run is
    consumed without allocating a list (hot traversal paths fold over
    this). *)

val descendant_or_self_seq : t -> Ordpath.t -> Node.t Seq.t
val ancestors : t -> Ordpath.t -> Node.t list
(** Strict ancestors, nearest first (reverse document order, the XPath
    [ancestor] axis direction). *)

val ancestor_or_self : t -> Ordpath.t -> Node.t list
val following_siblings : t -> Ordpath.t -> Node.t list
val preceding_siblings : t -> Ordpath.t -> Node.t list
(** Nearest first (reverse document order). *)

val following : t -> Ordpath.t -> Node.t list
(** Nodes after the subtree of the given node in document order,
    excluding descendants and attributes of ancestors. *)

val preceding : t -> Ordpath.t -> Node.t list
(** Nodes wholly before the given node, excluding ancestors; nearest
    first. *)

val is_child : t -> child:Ordpath.t -> Ordpath.t -> bool
val is_descendant : t -> descendant:Ordpath.t -> Ordpath.t -> bool

val string_value : t -> Ordpath.t -> string
(** Concatenation of the labels of all text descendants (XPath string
    value); for a text node, its own label. *)

(** {1 Updates}

    These are the raw single-node/subtree mutators the XUpdate layer is
    built on.  They never renumber existing nodes. *)

val relabel : t -> Ordpath.t -> string -> t
(** Changes the label of a node, keeping its identifier and kind.
    Unknown identifiers are returned unchanged. *)

val add_node : t -> Node.t -> t
(** Inserts a node with a caller-chosen identifier, replacing any node
    already carrying it.  This is the raw primitive view derivation uses
    to copy source nodes (with their identifiers) into the view. *)

val add_subtree :
  t -> parent:Ordpath.t -> left:Ordpath.t option -> right:Ordpath.t option ->
  Tree.t -> t * Ordpath.t
(** [add_subtree t ~parent ~left ~right tree] inserts [tree] under
    [parent], strictly between siblings [left] and [right], allocating
    fresh persistent identifiers; returns the new database and the
    identifier of the inserted root.
    @raise Invalid_argument if [parent] is not in the database or the
    bounds are not its children. *)

val append_tree : t -> parent:Ordpath.t -> Tree.t -> t * Ordpath.t
(** [add_subtree] after the current last child. *)

val remove_subtree : t -> Ordpath.t -> t
(** Removes a node and all its descendants.  Removing the document node
    is ignored; unknown identifiers are ignored. *)

val to_tree : t -> Ordpath.t -> Tree.t option
(** Extracts the subtree rooted at a node as an un-numbered fragment. *)
